// Tests for the error-mitigation suite: ZNE folding + extrapolation, REM
// confusion estimation/inversion, DD insertion, Pauli twirling, circuit
// cutting, PEC overheads and the stacked pipeline signatures.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/library.hpp"
#include "mitigation/cutting.hpp"
#include "mitigation/dd.hpp"
#include "mitigation/pec.hpp"
#include "mitigation/pipeline.hpp"
#include "mitigation/rem.hpp"
#include "mitigation/twirling.hpp"
#include "mitigation/zne.hpp"
#include "qpu/fleet.hpp"
#include "simulator/esp.hpp"
#include "simulator/metrics.hpp"
#include "simulator/noise.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::mitigation {
namespace {

using circuit::Circuit;

TEST(Zne, GlobalFoldScalesGateCount) {
  Circuit c = circuit::ghz(4);
  const std::size_t base_ops = c.operation_count();
  const Circuit folded3 = fold_global(c, 3.0);
  const Circuit folded5 = fold_global(c, 5.0);
  EXPECT_EQ(folded3.operation_count(), 3 * base_ops);
  EXPECT_EQ(folded5.operation_count(), 5 * base_ops);
  // Measurements are preserved exactly once.
  EXPECT_EQ(folded3.measurement_count(), c.measurement_count());
}

TEST(Zne, FoldingPreservesSemantics) {
  const Circuit c = circuit::ghz(4);
  const auto ideal = sim::ideal_distribution(c);
  for (double scale : {1.0, 2.0, 3.0, 5.0}) {
    const auto folded = fold_global(c, scale);
    EXPECT_GT(sim::hellinger_fidelity(ideal, sim::ideal_distribution(folded)), 1.0 - 1e-9)
        << "scale=" << scale;
  }
}

TEST(Zne, RejectsScaleBelowOne) {
  EXPECT_THROW(fold_global(circuit::ghz(3), 0.5), std::invalid_argument);
}

TEST(Zne, LinearFactoryExactOnLine) {
  LinearFactory factory;
  // v(s) = 1 - 0.1 s: zero-noise value 1.
  EXPECT_NEAR(factory.extrapolate({1.0, 3.0, 5.0}, {0.9, 0.7, 0.5}), 1.0, 1e-10);
}

TEST(Zne, RichardsonExactOnQuadratic) {
  RichardsonFactory factory;
  // v(s) = 2 - s + 0.25 s^2.
  auto v = [](double s) { return 2.0 - s + 0.25 * s * s; };
  EXPECT_NEAR(factory.extrapolate({1.0, 2.0, 3.0}, {v(1), v(2), v(3)}), 2.0, 1e-9);
}

TEST(Zne, ExpFactoryRecoversAmplitude) {
  ExpFactory factory;
  auto v = [](double s) { return 0.8 * std::exp(-0.3 * s); };
  EXPECT_NEAR(factory.extrapolate({1.0, 3.0, 5.0}, {v(1), v(3), v(5)}), 0.8, 1e-6);
}

TEST(Zne, FactoriesValidateInput) {
  EXPECT_THROW(LinearFactory().extrapolate({1.0}, {0.5}), std::invalid_argument);
  EXPECT_THROW(RichardsonFactory().extrapolate({1.0, 1.0}, {0.5, 0.6}), std::invalid_argument);
}

TEST(Zne, EndToEndImprovesGhzParityEstimate) {
  // Honest ZNE: estimate <Z...Z> parity of a GHZ state under noise at
  // scales {1,3,5}, extrapolate, and compare with the unmitigated estimate.
  const auto fleet = qpu::make_ibm_like_fleet(1, 77);
  const auto& backend = *fleet.backends[0];
  const Circuit c = circuit::ghz(4);
  const auto t = transpiler::transpile(c, backend);
  const double ideal_parity = 1.0;  // GHZ: outcomes 0000/1111 both even parity

  Rng rng(5);
  auto parity = [&rng, &backend](const Circuit& physical) {
    const auto counts = sim::run_noisy(physical, backend, 6000, rng, sim::HiddenNoise::none());
    double acc = 0.0;
    std::uint64_t total = 0;
    for (const auto& [outcome, n] : counts) {
      acc += ((__builtin_popcountll(outcome) % 2 == 0) ? 1.0 : -1.0) * static_cast<double>(n);
      total += n;
    }
    return acc / static_cast<double>(total);
  };

  ZneConfig config;
  config.factory = std::make_shared<LinearFactory>();
  const double unmitigated = parity(t.circuit);
  const double mitigated = zne_expectation(t.circuit, config, parity);
  EXPECT_LT(std::abs(mitigated - ideal_parity), std::abs(unmitigated - ideal_parity));
}

TEST(Rem, CalibrationConfusionMatchesBackend) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 13);
  const auto& backend = *fleet.backends[0];
  const auto confusion = calibration_confusion(backend, {0, 1, 2});
  ASSERT_EQ(confusion.size(), 3u);
  EXPECT_DOUBLE_EQ(confusion[0].p01, backend.calibration().qubits[0].readout_error);
}

TEST(Rem, MeasuredConfusionApproximatesTruth) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 13);
  const auto& backend = *fleet.backends[0];
  Rng rng(7);
  const auto measured = measure_confusion(backend, {0, 1}, 20000, rng, sim::HiddenNoise::none());
  const auto truth = calibration_confusion(backend, {0, 1});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(measured[i].p01, truth[i].p01, 0.02);
    EXPECT_NEAR(measured[i].p10, truth[i].p10, 0.02);
  }
}

TEST(Rem, InversionRecoversCleanDistribution) {
  // Apply known confusion to a clean distribution analytically, then undo.
  const std::map<std::uint64_t, double> clean = {{0b00, 0.5}, {0b11, 0.5}};
  const std::vector<Confusion> confusion = {{0.1, 0.05}, {0.08, 0.12}};
  // Forward-apply the confusion.
  std::map<std::uint64_t, double> noisy;
  for (const auto& [outcome, p] : clean) {
    for (std::uint64_t read = 0; read < 4; ++read) {
      double prob = p;
      for (int bit = 0; bit < 2; ++bit) {
        const bool truth_bit = outcome & (1ULL << bit);
        const bool read_bit = read & (1ULL << bit);
        const auto& c = confusion[static_cast<std::size_t>(bit)];
        if (truth_bit) {
          prob *= read_bit ? (1.0 - c.p10) : c.p10;
        } else {
          prob *= read_bit ? c.p01 : (1.0 - c.p01);
        }
      }
      noisy[read] += prob;
    }
  }
  const auto corrected = apply_rem(noisy, confusion, 2);
  EXPECT_NEAR(corrected.at(0b00), 0.5, 1e-9);
  EXPECT_NEAR(corrected.at(0b11), 0.5, 1e-9);
  EXPECT_GT(sim::hellinger_fidelity(corrected, clean), 1.0 - 1e-9);
}

TEST(Rem, ImprovesNoisyExecutionFidelity) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 29);
  const auto& backend = *fleet.backends[0];
  const Circuit c = circuit::ghz(4);
  const auto t = transpiler::transpile(c, backend);
  Rng rng(11);
  sim::TrajectoryOptions readout_only;
  readout_only.gate_noise = false;
  readout_only.idle_noise = false;
  const auto counts = sim::run_noisy(t.circuit, backend, 20000, rng, sim::HiddenNoise::none(),
                                     readout_only);
  const auto ideal = sim::ideal_distribution(c);
  const auto raw_dist = sim::counts_to_distribution(counts);

  // Correct with the physical qubits actually measured.
  std::vector<int> measured_phys(4, 0);
  for (const auto& g : t.circuit.gates()) {
    if (g.kind == circuit::GateKind::kMeasure) measured_phys[static_cast<std::size_t>(g.qubits[1])] = g.qubit(0);
  }
  const auto confusion = calibration_confusion(backend, measured_phys);
  const auto corrected = apply_rem(raw_dist, confusion, 4);
  EXPECT_GT(sim::hellinger_fidelity(corrected, ideal),
            sim::hellinger_fidelity(raw_dist, ideal));
}

TEST(Rem, ValidatesArguments) {
  const std::map<std::uint64_t, double> dist = {{0, 1.0}};
  EXPECT_THROW(apply_rem(dist, {}, 1), std::invalid_argument);
  EXPECT_THROW(apply_rem(dist, {{0.5, 0.5}}, 1), std::invalid_argument);  // singular
  EXPECT_THROW(apply_rem(dist, {{0.0, 0.0}}, 25), std::invalid_argument);
}

TEST(Dd, InsertsPulsesIntoIdleWindows) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 31);
  const auto& backend = *fleet.backends[0];
  // Qubit 1 idles while qubit 0 runs a long gate chain.
  Circuit c(backend.num_qubits());
  c.sx(1);
  for (int i = 0; i < 40; ++i) c.sx(0);
  c.cx(0, 1);
  c.measure(0);
  c.measure(1);
  const auto result = insert_dd(c, backend);
  EXPECT_GT(result.pulses_inserted, 0u);
  EXPECT_GT(result.protected_idle_seconds, 0.0);
  // XpXm pairs come in twos and preserve unitary semantics (X X = I).
  EXPECT_EQ(result.pulses_inserted % 2, 0u);
}

TEST(Dd, PreservesSemantics) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 31);
  const auto& backend = *fleet.backends[0];
  const Circuit c = circuit::ghz(5);
  const auto t = transpiler::transpile(c, backend);
  const auto dd = insert_dd(t.circuit, backend);
  const auto ideal = sim::ideal_distribution(c);
  Rng rng(3);
  const auto counts = sim::run_ideal(dd.circuit, 4000, rng);
  EXPECT_GT(sim::hellinger_fidelity(counts, ideal), 0.98);
}

TEST(Dd, DoesNotIncreaseScheduleDuration) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 31);
  const auto& backend = *fleet.backends[0];
  const auto t = transpiler::transpile(circuit::qft(6), backend);
  const auto dd = insert_dd(t.circuit, backend);
  const auto before = transpiler::asap_schedule(t.circuit, backend).duration;
  const auto after = transpiler::asap_schedule(dd.circuit, backend).duration;
  EXPECT_LE(after, before * 1.001);
}

TEST(Twirl, PreservesUnitarySemantics) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const Circuit c = circuit::random_circuit(4, 5, 100 + static_cast<std::uint64_t>(trial));
    const Circuit twirled = pauli_twirl(c, rng);
    EXPECT_GT(sim::hellinger_fidelity(sim::ideal_distribution(c),
                                      sim::ideal_distribution(twirled)),
              1.0 - 1e-9)
        << "trial " << trial;
  }
}

TEST(Twirl, WrapsEveryCx) {
  Rng rng(19);
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const Circuit twirled = pauli_twirl(c, rng);
  EXPECT_EQ(twirled.gate_counts().at("cx"), 1u);
  EXPECT_GE(twirled.size(), c.size());  // paulis may be identity, never fewer
}

TEST(Twirl, InstancesAreDeterministicInSeed) {
  const Circuit c = circuit::ghz(3);
  const auto a = pauli_twirl_instances(c, 4, 55);
  const auto b = pauli_twirl_instances(c, 4, 55);
  ASSERT_EQ(a.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (std::size_t g = 0; g < a[i].size(); ++g) {
      EXPECT_TRUE(a[i].gates()[g] == b[i].gates()[g]);
    }
  }
  EXPECT_THROW(pauli_twirl_instances(c, 0, 1), std::invalid_argument);
}

TEST(Cutting, PlanMinimizesCrossings) {
  // A GHZ chain: the contiguous bipartition cuts exactly one CX.
  const Circuit c = circuit::ghz(8);
  const auto plan = plan_bipartition(c);
  EXPECT_EQ(plan.crossing_gates, 1u);
  EXPECT_EQ(plan.group_a.size() + plan.group_b.size(), 8u);
}

TEST(Cutting, FragmentsHaveCorrectShape) {
  const Circuit c = circuit::ghz(8);
  const auto cut = cut_circuit(c);
  EXPECT_EQ(cut.fragment_a.num_qubits() + cut.fragment_b.num_qubits(), 8);
  EXPECT_DOUBLE_EQ(cut.sampling_overhead, 9.0);  // one cut
  EXPECT_EQ(cut.circuit_variants, 4u);
  // Fragments keep their original clbits (no overlap).
  EXPECT_EQ(cut.fragment_a.measurement_count() + cut.fragment_b.measurement_count(), 8u);
}

TEST(Cutting, KnitIsExactForProductStates) {
  // Two independent Bell pairs: cutting between them crosses zero gates and
  // knitting reconstructs the joint distribution exactly.
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.h(2);
  c.cx(2, 3);
  c.measure_all();
  const auto cut = cut_circuit(c);
  EXPECT_EQ(cut.plan.crossing_gates, 0u);
  const auto da = sim::ideal_distribution(cut.fragment_a);
  const auto db = sim::ideal_distribution(cut.fragment_b);
  const auto knitted = knit_distributions(da, db);
  EXPECT_GT(sim::hellinger_fidelity(knitted, sim::ideal_distribution(c)), 1.0 - 1e-9);
}

TEST(Cutting, KnittedFidelityModel) {
  EXPECT_NEAR(knitted_fidelity(0.9, 0.9, 0), 0.81, 1e-12);
  EXPECT_LT(knitted_fidelity(0.9, 0.9, 2), knitted_fidelity(0.9, 0.9, 1));
}

TEST(Cutting, FragmentEspBeatsWholeCircuitEsp) {
  // The fidelity rationale of Fig. 2a: each fragment is narrower/shallower,
  // so its ESP is higher than the full circuit's.
  const auto fleet = qpu::make_ibm_like_fleet(1, 41);
  const auto& backend = *fleet.backends[0];
  const Circuit c = circuit::qft(16);
  const auto whole = transpiler::transpile(c, backend);
  const auto cut = cut_circuit(c);
  const auto frag_a = transpiler::transpile(cut.fragment_a, backend);
  const double f_whole = sim::esp_fidelity(whole.circuit, backend, sim::HiddenNoise::none());
  const double f_frag = sim::esp_fidelity(frag_a.circuit, backend, sim::HiddenNoise::none());
  EXPECT_GT(f_frag, f_whole);
}

TEST(Pec, GammaGrowsWithError) {
  EXPECT_NEAR(pec_gamma(0.0), 1.0, 1e-12);
  EXPECT_GT(pec_gamma(0.1), pec_gamma(0.01));
  EXPECT_THROW(pec_gamma(1.0), std::invalid_argument);
  EXPECT_THROW(pec_gamma(-0.1), std::invalid_argument);
}

TEST(Pec, OverheadGrowsWithCircuitSize) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 43);
  const auto& backend = *fleet.backends[0];
  const auto small = transpiler::transpile(circuit::ghz(4), backend);
  const auto large = transpiler::transpile(circuit::ghz(12), backend);
  EXPECT_GT(pec_sampling_overhead(large.circuit, backend),
            pec_sampling_overhead(small.circuit, backend));
  EXPECT_GE(pec_sampling_overhead(small.circuit, backend), 1.0);
}

TEST(Pec, InstancesCarrySignsAndPreserveLength) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 43);
  const auto& backend = *fleet.backends[0];
  const auto t = transpiler::transpile(circuit::ghz(6), backend);
  const auto instances = pec_instances(t.circuit, backend, 32, 7);
  ASSERT_EQ(instances.size(), 32u);
  bool any_negative = false;
  for (const auto& inst : instances) {
    EXPECT_GE(inst.circuit.size(), t.circuit.size());
    EXPECT_TRUE(inst.sign == 1 || inst.sign == -1);
    if (inst.sign == -1) any_negative = true;
  }
  // With dozens of noisy gates, some instance should flip sign.
  EXPECT_TRUE(any_negative);
}

TEST(Pipeline, SignatureOfEmptyStackIsNeutral) {
  const auto sig = compute_signature({}, 8, 20, 10, 8, 1e-2, Accelerator::kCpu);
  EXPECT_DOUBLE_EQ(sig.error_residual, 1.0);
  EXPECT_DOUBLE_EQ(sig.quantum_runtime_multiplier, 1.0);
  EXPECT_FALSE(sig.cuts_circuit);
}

TEST(Pipeline, ZneSignatureMatchesConfig) {
  MitigationSpec spec;
  spec.stack = {Technique::kZne};
  const auto sig = compute_signature(spec, 8, 20, 10, 8, 1e-2, Accelerator::kCpu);
  EXPECT_DOUBLE_EQ(sig.circuit_instances, 3.0);          // factors {1,3,5}
  EXPECT_DOUBLE_EQ(sig.quantum_runtime_multiplier, 9.0); // 1+3+5
  EXPECT_LT(sig.error_residual, 1.0);
}

TEST(Pipeline, StackingMultipliesResiduals) {
  MitigationSpec zne;
  zne.stack = {Technique::kZne};
  MitigationSpec zne_rem;
  zne_rem.stack = {Technique::kZne, Technique::kRem};
  const auto a = compute_signature(zne, 8, 20, 10, 8, 1e-2, Accelerator::kCpu);
  const auto b = compute_signature(zne_rem, 8, 20, 10, 8, 1e-2, Accelerator::kCpu);
  EXPECT_LT(b.error_residual, a.error_residual);
  EXPECT_GT(b.classical_postprocess_seconds, a.classical_postprocess_seconds);
}

TEST(Pipeline, GpuAcceleratesPostprocessing) {
  MitigationSpec cutting;
  cutting.stack = {Technique::kCutting};
  const auto cpu = compute_signature(cutting, 16, 60, 40, 16, 1e-2, Accelerator::kCpu);
  const auto gpu = compute_signature(cutting, 16, 60, 40, 16, 1e-2, Accelerator::kGpu);
  EXPECT_GT(cpu.classical_postprocess_seconds, gpu.classical_postprocess_seconds);
  EXPECT_DOUBLE_EQ(cpu.quantum_runtime_multiplier, gpu.quantum_runtime_multiplier);
}

TEST(Pipeline, MitigatedFidelityReducesError) {
  MitigationSpec spec;
  spec.stack = {Technique::kZne, Technique::kRem, Technique::kDd};
  const auto sig = compute_signature(spec, 8, 20, 10, 8, 1e-2, Accelerator::kCpu);
  const double base = 0.6;
  const double mitigated = mitigated_fidelity(base, sig);
  EXPECT_GT(mitigated, base);
  EXPECT_LE(mitigated, 1.0);
}

TEST(Pipeline, DdSetsDephasingResidual) {
  MitigationSpec spec;
  spec.stack = {Technique::kDd};
  const auto sig = compute_signature(spec, 8, 20, 10, 8, 1e-2, Accelerator::kCpu);
  EXPECT_LT(sig.delay_dephasing_residual, 1.0);
}

TEST(Pipeline, MenuIsOrderedAndNamed) {
  const auto menu = standard_mitigation_menu();
  ASSERT_GE(menu.size(), 6u);
  EXPECT_EQ(menu.front().to_string(), "none");
  EXPECT_EQ(menu[4].to_string(), "zne");
  bool has_cutting = false;
  for (const auto& spec : menu) {
    if (spec.uses(Technique::kCutting)) has_cutting = true;
  }
  EXPECT_TRUE(has_cutting);
}

}  // namespace
}  // namespace qon::mitigation
