// Unit and property tests for the mlcore linear algebra and regression stack.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "mlcore/matrix.hpp"
#include "mlcore/model_selection.hpp"
#include "mlcore/regression.hpp"

namespace qon::ml {
namespace {

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(Matrix({{1.0}, {1.0, 2.0}}), std::invalid_argument);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(5);
  Matrix m(3, 5);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 5; ++j) m(i, j) = rng.normal();
  }
  const Matrix tt = m.transpose().transpose();
  EXPECT_NEAR((tt - m).frobenius_norm(), 0.0, 1e-15);
}

TEST(Matrix, IdentityIsMultiplicativeUnit) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix i = Matrix::identity(2);
  EXPECT_NEAR(((a * i) - a).frobenius_norm(), 0.0, 1e-15);
  EXPECT_NEAR(((i * a) - a).frobenius_norm(), 0.0, 1e-15);
}

TEST(LinAlg, CholeskySolvesSpdSystem) {
  // A = [[4,2],[2,3]], b = [6,5]; solution x = [1,1].
  Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const auto x = cholesky_solve(a, {6.0, 5.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(LinAlg, CholeskyRejectsIndefinite) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_THROW(cholesky_solve(a, {1.0, 1.0}), std::runtime_error);
}

TEST(LinAlg, QrLeastSquaresExactOnConsistentSystem) {
  // Overdetermined but consistent: y = 2x + 1 sampled at 4 points.
  Matrix a(4, 2);
  std::vector<double> b(4);
  for (int i = 0; i < 4; ++i) {
    a(static_cast<std::size_t>(i), 0) = 1.0;
    a(static_cast<std::size_t>(i), 1) = i;
    b[static_cast<std::size_t>(i)] = 1.0 + 2.0 * i;
  }
  const auto x = qr_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(LinAlg, QrLeastSquaresMatchesNormalEquations) {
  Rng rng(77);
  const std::size_t m = 40;
  const std::size_t n = 5;
  Matrix a(m, n);
  std::vector<double> b(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    b[i] = rng.normal();
  }
  const auto x_qr = qr_least_squares(a, b);
  const auto x_ne = ridge_normal_equations(a, b, 0.0);
  for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(x_qr[j], x_ne[j], 1e-8);
}

TEST(LinAlg, QrRejectsUnderdetermined) {
  Matrix a(2, 3);
  EXPECT_THROW(qr_least_squares(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(LinAlg, RidgeShrinksCoefficients) {
  Rng rng(88);
  Matrix a(30, 3);
  std::vector<double> b(30);
  for (std::size_t i = 0; i < 30; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.normal();
    b[i] = 3.0 * a(i, 0) + rng.normal(0.0, 0.1);
  }
  const auto ols = ridge_normal_equations(a, b, 0.0);
  const auto ridge = ridge_normal_equations(a, b, 100.0);
  EXPECT_LT(std::abs(ridge[0]), std::abs(ols[0]));
}

TEST(Scaler, StandardizesColumns) {
  Matrix x{{1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  // Column means ~0.
  for (std::size_t j = 0; j < 2; ++j) {
    double m = 0.0;
    for (std::size_t i = 0; i < 3; ++i) m += z(i, j);
    EXPECT_NEAR(m / 3.0, 0.0, 1e-12);
  }
  EXPECT_THROW(StandardScaler().transform(x), std::logic_error);
}

TEST(Scaler, ConstantColumnPassesThrough) {
  Matrix x{{5.0}, {5.0}, {5.0}};
  StandardScaler scaler;
  const Matrix z = scaler.fit_transform(x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(z(i, 0), 0.0, 1e-12);
}

TEST(PolyFeatures, CountMatchesBinomial) {
  EXPECT_EQ(polynomial_feature_count(2, 2), 6u);   // 1,a,b,a2,ab,b2
  EXPECT_EQ(polynomial_feature_count(3, 2), 10u);
  EXPECT_EQ(polynomial_feature_count(4, 3), 35u);
  Matrix x{{2.0, 3.0}};
  EXPECT_EQ(polynomial_features(x, 2).cols(), 6u);
}

TEST(PolyFeatures, ValuesIncludeCrossTerms) {
  Matrix x{{2.0, 3.0}};
  const Matrix f = polynomial_features(x, 2);
  // Expansion order: 1, a, a2, ab, b, b2 (prefix-recursive). Verify the set.
  std::vector<double> vals(f.data());
  std::sort(vals.begin(), vals.end());
  const std::vector<double> expected = {1.0, 2.0, 3.0, 4.0, 6.0, 9.0};
  ASSERT_EQ(vals.size(), expected.size());
  for (std::size_t i = 0; i < vals.size(); ++i) EXPECT_DOUBLE_EQ(vals[i], expected[i]);
}

TEST(Regression, LinearRecoversPlane) {
  Rng rng(101);
  Matrix x(60, 2);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    x(i, 1) = rng.uniform(-2.0, 2.0);
    y[i] = 4.0 - 1.5 * x(i, 0) + 0.75 * x(i, 1);
  }
  LinearRegression model;
  model.fit(x, y);
  EXPECT_NEAR(model.intercept(), 4.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[0], -1.5, 1e-9);
  EXPECT_NEAR(model.coefficients()[1], 0.75, 1e-9);
  EXPECT_NEAR(r2_score(y, model.predict(x)), 1.0, 1e-12);
}

TEST(Regression, PolynomialFitsQuadraticExactly) {
  Rng rng(103);
  Matrix x(80, 2);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    const double a = rng.uniform(-1.5, 1.5);
    const double b = rng.uniform(-1.5, 1.5);
    x(i, 0) = a;
    x(i, 1) = b;
    y[i] = 1.0 + 2.0 * a - b + 0.5 * a * a + a * b - 2.0 * b * b;
  }
  PolynomialRegression model(2, 1e-10);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.999999);
}

TEST(Regression, PolynomialDegreeOneEqualsLinear) {
  Rng rng(105);
  Matrix x(40, 1);
  std::vector<double> y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = rng.uniform(0.0, 5.0);
    y[i] = 2.0 * x(i, 0) + 1.0 + rng.normal(0.0, 0.01);
  }
  PolynomialRegression poly(1, 1e-12);
  LinearRegression linear;
  poly.fit(x, y);
  linear.fit(x, y);
  const auto yp = poly.predict(x);
  const auto yl = linear.predict(x);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(yp[i], yl[i], 1e-6);
}

TEST(Regression, KnnInterpolatesLocally) {
  Matrix x(5, 1);
  std::vector<double> y(5);
  for (std::size_t i = 0; i < 5; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i) * 10.0;
  }
  KnnRegression model(1);
  model.fit(x, y);
  EXPECT_DOUBLE_EQ(model.predict_one({2.1}), 20.0);
  EXPECT_DOUBLE_EQ(model.predict_one({3.9}), 40.0);
}

TEST(Regression, PredictBeforeFitThrows) {
  Matrix x(1, 1);
  EXPECT_THROW(RidgeRegression().predict(x), std::logic_error);
  EXPECT_THROW(KnnRegression().predict(x), std::logic_error);
}

TEST(Metrics, R2PerfectAndMeanBaseline) {
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(r2_score(y, y), 1.0);
  const std::vector<double> mean_pred = {2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(r2_score(y, mean_pred), 0.0);
}

TEST(Metrics, MaeAndRmse) {
  const std::vector<double> t = {0.0, 0.0};
  const std::vector<double> p = {3.0, -4.0};
  EXPECT_DOUBLE_EQ(mean_absolute_error(t, p), 3.5);
  EXPECT_NEAR(rmse(t, p), std::sqrt(12.5), 1e-12);
}

TEST(CrossValidation, FoldsPartitionData) {
  Rng rng(107);
  Matrix x(50, 1);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    y[i] = 3.0 * x(i, 0);
  }
  const auto result = k_fold_cross_validate(
      [] { return std::make_unique<LinearRegression>(); }, x, y, 5);
  EXPECT_EQ(result.fold_r2.size(), 5u);
  EXPECT_GT(result.mean_r2, 0.999);
  EXPECT_EQ(result.model_name, "linear");
}

TEST(CrossValidation, RejectsBadFoldCount) {
  Matrix x(3, 1);
  std::vector<double> y = {1.0, 2.0, 3.0};
  auto factory = [] { return std::make_unique<LinearRegression>(); };
  EXPECT_THROW(k_fold_cross_validate(factory, x, y, 1), std::invalid_argument);
  EXPECT_THROW(k_fold_cross_validate(factory, x, y, 4), std::invalid_argument);
}

TEST(CrossValidation, SelectBestModelPrefersPolynomialOnQuadraticData) {
  Rng rng(109);
  Matrix x(120, 1);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    x(i, 0) = rng.uniform(-2.0, 2.0);
    y[i] = x(i, 0) * x(i, 0) + rng.normal(0.0, 0.02);
  }
  const auto results = select_best_model(
      {[] { return std::make_unique<LinearRegression>(); },
       [] { return std::make_unique<PolynomialRegression>(2); }},
      x, y, 5);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].model_name, "polynomial(d=2)");
  EXPECT_GT(results[0].mean_r2, results[1].mean_r2);
}

// Parameterized sweep: polynomial regression reaches near-perfect R2 on
// matching-degree synthetic data for several degrees.
class PolyDegreeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PolyDegreeSweep, FitsOwnDegree) {
  const int degree = GetParam();
  Rng rng(200 + static_cast<std::uint64_t>(degree));
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.uniform(-1.0, 1.0);
    double v = 0.0;
    for (int d = 0; d <= degree; ++d) v += std::pow(x(i, 0), d) * (d + 1);
    y[i] = v;
  }
  PolynomialRegression model(degree, 1e-10);
  model.fit(x, y);
  EXPECT_GT(r2_score(y, model.predict(x)), 0.99999) << "degree=" << degree;
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyDegreeSweep, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace qon::ml
