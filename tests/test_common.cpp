// Unit tests for the common substrate: RNG, statistics, thread pool, tables.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"

namespace qon {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(1234);
  Rng b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 50000;
  double mean = 0.0;
  double m2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    mean += x;
    m2 += x * x;
  }
  mean /= n;
  m2 /= n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(m2 - mean * mean, 1.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(17);
  for (double lambda : {0.5, 4.0, 30.0, 100.0}) {
    double acc = 0.0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.poisson(lambda));
    EXPECT_NEAR(acc / n, lambda, lambda * 0.1 + 0.15) << "lambda=" << lambda;
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  const double lambda = 2.5;
  double acc = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(lambda);
  EXPECT_NEAR(acc / n, 1.0 / lambda, 0.02);
}

TEST(Rng, WeightedIndexProportions) {
  Rng rng(23);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> hits(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++hits[rng.weighted_index(w)];
  EXPECT_EQ(hits[2], 0);
  EXPECT_NEAR(hits[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(hits[3] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, WeightedIndexRejectsDegenerate) {
  Rng rng(29);
  std::vector<double> zero = {0.0, 0.0};
  std::vector<double> negative = {1.0, -1.0};
  EXPECT_THROW(rng.weighted_index(zero), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index(negative), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to match
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // Child stream should not equal the parent's continued stream.
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, EmptyInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(min_of({}), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
}

TEST(Stats, PercentileRejectsOutOfRange) {
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const auto cdf = empirical_cdf({3.0, 1.0, 2.0});
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].value, cdf[i].value);
    EXPECT_LE(cdf[i - 1].probability, cdf[i].probability);
  }
}

TEST(Stats, CdfAtThreshold) {
  const std::vector<double> xs = {0.05, 0.2, 0.4, 0.9};
  EXPECT_DOUBLE_EQ(cdf_at(xs, 0.1), 0.25);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(cdf_at(xs, 0.0), 0.0);
}

TEST(Stats, HistogramClampsOutliers) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(5.0);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.counts().front(), 1u);
  EXPECT_EQ(h.counts().back(), 1u);
  EXPECT_DOUBLE_EQ(h.bucket_center(0), 1.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(41);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    rs.add(x);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(rs.max(), max_of(xs));
}

TEST(Stats, TimeWeightedAverage) {
  TimeWeightedAverage twa;
  twa.record(0.0, 10.0);   // value 10 from t=0
  twa.record(1.0, 20.0);   // value 10 held for 1s, then 20
  twa.record(3.0, 0.0);    // value 20 held for 2s
  // average = (10*1 + 20*2) / 3
  EXPECT_NEAR(twa.average(), 50.0 / 3.0, 1e-12);
}

TEST(Stats, TimeWeightedAverageRejectsBackwardsTime) {
  TimeWeightedAverage twa;
  twa.record(5.0, 1.0);
  EXPECT_THROW(twa.record(4.0, 1.0), std::invalid_argument);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_each_index(
      0, hits.size(), [&hits](std::size_t i) { hits[i].fetch_add(1); }, &pool, 16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SubmitReturnsTaskValue) {
  ThreadPool pool(2);
  auto answer = pool.submit([] { return 6 * 7; });
  auto text = pool.submit([] { return std::string("qon"); });
  EXPECT_EQ(answer.get(), 42);
  EXPECT_EQ(text.get(), "qon");
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = static_cast<double>(i % 97);
  std::atomic<long long> par_sum{0};
  parallel_for_blocked(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        long long local = 0;
        for (std::size_t i = lo; i < hi; ++i) local += static_cast<long long>(xs[i]);
        par_sum.fetch_add(local);
      },
      &pool, 128);
  long long serial = 0;
  for (double x : xs) serial += static_cast<long long>(x);
  EXPECT_EQ(par_sum.load(), serial);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for_blocked(5, 5, [&calls](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ShutdownRejectsLateSubmissionsTyped) {
  ThreadPool pool(2);
  EXPECT_FALSE(pool.stopping());
  pool.shutdown();
  pool.shutdown();  // idempotent
  EXPECT_TRUE(pool.stopping());
  // try_submit reports the rejection as a value; submit keeps the throwing
  // contract for call sites that treat it as a logic error.
  auto rejected = pool.try_submit([] { return 1; });
  EXPECT_FALSE(rejected.has_value());
  EXPECT_THROW(pool.submit([] { return 1; }), std::logic_error);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  std::promise<void> block;
  auto block_future = block.get_future().share();
  ThreadPool pool(1);
  // First task occupies the single worker; the rest pile up in the queue.
  pool.submit([block_future, &executed] {
    block_future.wait();
    ++executed;
  });
  for (int i = 0; i < 8; ++i) {
    pool.submit([&executed] { ++executed; });
  }
  std::thread shutter([&pool] { pool.shutdown(); });  // blocks until drained
  block.set_value();
  shutter.join();
  // Every accepted task ran before the workers were joined.
  EXPECT_EQ(executed.load(), 9);
}

TEST(ThreadPool, ConcurrentSubmitVersusShutdownNeverDropsAcceptedWork) {
  // Submitters race shutdown(): each submission must either be accepted
  // (and then run to completion) or be rejected with nullopt — never
  // silently dropped, never a crash or deadlock. Run under TSAN in CI.
  constexpr int kSubmitters = 4;
  ThreadPool pool(2);
  std::atomic<int> accepted{0};
  std::atomic<int> executed{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    // Each submitter hammers the pool until it observes the shutdown as a
    // rejection, so the race window is hit deterministically.
    submitters.emplace_back([&pool, &accepted, &executed, &rejected] {
      for (;;) {
        auto fut = pool.try_submit([&executed] { ++executed; });
        if (!fut.has_value()) {
          ++rejected;
          break;
        }
        ++accepted;
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  pool.shutdown();
  for (auto& t : submitters) t.join();

  EXPECT_EQ(rejected.load(), kSubmitters);  // every submitter saw the stop
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_GT(accepted.load(), 0);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream oss;
  t.print(oss, "demo");
  const std::string out = oss.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(sw.seconds(), 0.0);
  EXPECT_GE(sw.millis(), sw.seconds());
}

TEST(LogRateLimiter, PassesOneInEveryAndReportsSuppressed) {
  LogRateLimiter limiter(100);
  std::uint64_t suppressed = 123;
  EXPECT_TRUE(limiter.allow(&suppressed));
  EXPECT_EQ(suppressed, 0u);  // nothing swallowed before the first emission

  // Calls 2..100 are suppressed; call 101 passes and reports the 99 skips.
  std::uint64_t blocked = 0;
  for (int i = 0; i < 99; ++i) {
    if (!limiter.allow()) ++blocked;
  }
  EXPECT_EQ(blocked, 99u);
  EXPECT_TRUE(limiter.allow(&suppressed));
  EXPECT_EQ(suppressed, 99u);
  EXPECT_EQ(limiter.total(), 101u);
}

TEST(LogRateLimiter, EveryOneLetsEverythingThroughAndZeroIsClamped) {
  LogRateLimiter always(1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(always.allow());
  LogRateLimiter clamped(0);  // degenerate config must not divide by zero
  EXPECT_TRUE(clamped.allow());
  EXPECT_TRUE(clamped.allow());
}

TEST(LogRateLimiter, IsWaitFreeUnderConcurrentCallers) {
  LogRateLimiter limiter(10);
  std::atomic<std::uint64_t> allowed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 250; ++i) {
        if (limiter.allow()) allowed.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  // 1000 calls at 1-in-10: exactly 100 pass, regardless of interleaving.
  EXPECT_EQ(limiter.total(), 1000u);
  EXPECT_EQ(allowed.load(), 100u);
}

}  // namespace
}  // namespace qon
