// Lock-hierarchy layer (common/thread_safety.hpp): rank bookkeeping on the
// happy path, non-LIFO release (condition-variable waits), and the death
// tests proving that hierarchy violations — including a genuine two-thread
// ABBA acquisition — abort deterministically instead of deadlocking.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/thread_safety.hpp"

namespace qon {
namespace {

// Test mutexes are static function-locals, not stack objects: TSAN's
// lock-order detector keys the acquisition graph on mutex addresses, and
// std::mutex's trivial destructor never unregisters one — so sequential
// tests reusing the same stack slots would be conflated into one false
// cycle. Statics get distinct addresses for the life of the process.

TEST(LockRank, IncreasingRanksNest) {
  static Mutex outer(LockRank::kEngine, "test_outer");
  static Mutex mid(LockRank::kMonitor, "test_mid");
  static Mutex leaf(LockRank::kLogging, "test_leaf");
  EXPECT_EQ(lock_rank::held_count(), 0);
  {
    MutexLock a(outer);
    EXPECT_EQ(lock_rank::held_count(), 1);
    {
      MutexLock b(mid);
      MutexLock c(leaf);
      EXPECT_EQ(lock_rank::held_count(), 3);
    }
    EXPECT_EQ(lock_rank::held_count(), 1);
  }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRank, ReacquireAfterFullReleaseIsFine) {
  static Mutex m(LockRank::kRunTable, "test_reacquire");
  for (int i = 0; i < 3; ++i) {
    MutexLock lock(m);
    EXPECT_EQ(lock_rank::held_count(), 1);
  }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRank, NonLifoReleaseIsSupported) {
  // condition_variable_any::wait unlocks the waited mutex from mid-stack;
  // the checker must tolerate any release order.
  static Mutex low(LockRank::kEngine, "test_low");
  static Mutex high(LockRank::kMonitor, "test_high");
  low.lock();
  high.lock();
  EXPECT_EQ(lock_rank::held_count(), 2);
  low.unlock();  // not the most recent acquisition
  EXPECT_EQ(lock_rank::held_count(), 1);
  high.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRank, UnrankedOptsOutOfOrdering) {
  // kUnranked mutexes may interleave with any rank in any order (recursion
  // is still fatal — covered by the death tests). Two distinct pairs, one
  // per ordering: the same pair in both orders would be a real cycle in
  // TSAN's acquisition graph, which is exactly the hazard opting out of
  // the hierarchy accepts — don't model it in-process here.
  static Mutex ranked_a(LockRank::kMonitor, "test_ranked_a");
  static Mutex unranked_a(LockRank::kUnranked, "test_unranked_a");
  static Mutex ranked_b(LockRank::kMonitor, "test_ranked_b");
  static Mutex unranked_b(LockRank::kUnranked, "test_unranked_b");
  {
    MutexLock a(ranked_a);
    MutexLock b(unranked_a);  // unranked after ranked
  }
  {
    MutexLock b(unranked_b);
    MutexLock a(ranked_b);  // ranked after unranked — also fine
  }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRank, SameMutexSequentiallyAcrossThreads) {
  // The held set is per-thread: two threads taking the same mutex in turn
  // never trip the checker.
  static Mutex m(LockRank::kRunEngine, "test_cross_thread");
  std::thread t([&] {
    MutexLock lock(m);
    EXPECT_EQ(lock_rank::held_count(), 1);
  });
  t.join();
  MutexLock lock(m);
  EXPECT_EQ(lock_rank::held_count(), 1);
}

TEST(LockRank, CondVarWaitReleasesAndReacquiresRank) {
  static Mutex m(LockRank::kMonitor, "test_cv_m");
  CondVar cv;
  bool flag = false;
  std::thread waiter([&] {
    MutexLock lock(m);
    while (!flag) cv.wait(m);
    // Woken with the mutex re-acquired: exactly one lock on record.
    EXPECT_EQ(lock_rank::held_count(), 1);
  });
  {
    // Acquiring the same mutex from this thread is only possible because
    // the waiter's wait() released it (and its rank entry) mid-stack.
    MutexLock lock(m);
    flag = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(lock_rank::held_count(), 0);
}

#if QON_LOCK_RANK_CHECKS

using LockRankDeathTest = ::testing::Test;

TEST(LockRankDeathTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex inner(LockRank::kMonitor, "death_inner");
        Mutex outer(LockRank::kEngine, "death_outer");
        MutexLock a(inner);  // rank 500 first…
        MutexLock b(outer);  // …then rank 100: inversion
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, EqualRankPairAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Strictly increasing means two distinct same-rank locks can never nest
  // (in either order one of the two arms would be the inversion).
  EXPECT_DEATH(
      {
        Mutex first(LockRank::kMonitor, "death_eq_first");
        Mutex second(LockRank::kMonitor, "death_eq_second");
        MutexLock a(first);
        MutexLock b(second);
      },
      "lock-rank violation");
}

TEST(LockRankDeathTest, RecursiveAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Mutex m(LockRank::kMonitor, "death_recursive");
        m.lock();
        m.lock();  // std::mutex UB; the checker makes it a deterministic abort
      },
      "recursive lock");
}

TEST(LockRankDeathTest, RecursiveUnrankedAcquisitionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Opting out of the hierarchy does not opt out of recursion detection.
  EXPECT_DEATH(
      {
        Mutex m(LockRank::kUnranked, "death_recursive_unranked");
        m.lock();
        m.lock();
      },
      "recursive lock");
}

TEST(LockRankDeathTest, AbbaAcquisitionAbortsInsteadOfDeadlocking) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The regression this layer exists for: two threads acquiring two locks
  // in opposite orders. Without the checker this interleaving deadlocks
  // (thread 1 holds A wanting B, thread 2 holds B wanting A) and only the
  // 300 s ctest timeout would catch it. With the checker, thread 2's
  // out-of-rank attempt aborts BEFORE it blocks — the process dies
  // deterministically on the first execution, no unlucky timing needed.
  EXPECT_DEATH(
      {
        Mutex a(LockRank::kEngine, "abba_a");    // low rank
        Mutex b(LockRank::kMonitor, "abba_b");   // high rank
        std::atomic<bool> a_held{false};
        std::thread t1([&] {
          MutexLock la(a);  // correct order: A (low)…
          a_held.store(true);
          // Park long enough for t2 to run its inverted arm; the abort
          // kills the whole process, so this sleep never completes.
          std::this_thread::sleep_for(std::chrono::seconds(30));
          MutexLock lb(b);  // …then B (high)
        });
        std::thread t2([&] {
          while (!a_held.load()) std::this_thread::yield();
          MutexLock lb(b);  // inverted order: B (high) first…
          MutexLock la(a);  // …then A (low): aborts before blocking on t1
        });
        t2.join();
        t1.join();
      },
      "lock-rank violation");
}

#endif  // QON_LOCK_RANK_CHECKS

}  // namespace
}  // namespace qon
