// Tests for the telemetry subsystem (src/obs/): metrics-registry instrument
// semantics (Prometheus le-inclusive histogram buckets, counter/gauge
// concurrency, idempotent registration), trace ring wraparound and tracer
// retention, the Prometheus/JSON renderers, the end-to-end run-lifecycle
// trace surface (batch AND immediate mode, both clocks on every span), the
// getRunTrace error contract, and the stats-surface coherence guarantee:
// getSchedulerStats / getAdmissionStats / prepCacheHits are views over the
// same registry instruments one getMetrics snapshot exports.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "obs/delta.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace qon {
namespace {

using namespace std::chrono_literals;

// ---- Histogram: Prometheus le-inclusive bucket semantics ---------------------

TEST(ObsHistogram, LeInclusiveBucketBoundaries) {
  obs::Histogram hist({1.0, 2.0});
  hist.observe(1.0);  // == bound 1 -> bucket 0 (le is inclusive)
  hist.observe(1.5);  // -> bucket 1
  hist.observe(2.0);  // == bound 2 -> bucket 1
  hist.observe(2.1);  // above the last bound -> +Inf

  api::MetricValue value;
  hist.read(value);
  ASSERT_EQ(value.bucket_bounds.size(), 2u);
  EXPECT_EQ(value.bucket_counts[0], 1u);
  EXPECT_EQ(value.bucket_counts[1], 2u);
  EXPECT_EQ(value.inf_count, 1u);
  EXPECT_EQ(value.count, 4u);
  EXPECT_DOUBLE_EQ(value.sum, 1.0 + 1.5 + 2.0 + 2.1);
}

TEST(ObsHistogram, BoundsAreSortedAndDeduplicated) {
  obs::Histogram hist({5.0, 1.0, 5.0, 3.0});
  ASSERT_EQ(hist.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(hist.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(hist.bounds()[2], 5.0);
}

// ---- Counter / Gauge: lock-free updates stay exact under contention ----------

TEST(ObsMetrics, CounterAndGaugeConcurrency) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.counter("t_events_total", "test");
  obs::Gauge* gauge = registry.gauge("t_level", "test");
  obs::Histogram* hist = registry.histogram("t_latency", "test", {0.5});

  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->inc();
        gauge->add(1.0);
        hist->observe(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(counter->value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(gauge->value(), static_cast<double>(kThreads * kPerThread));
  api::MetricValue value;
  hist->read(value);
  EXPECT_EQ(value.count, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(value.bucket_counts[0], value.inf_count);  // even/odd split
}

TEST(ObsMetrics, RegistrationIsIdempotentPerLabelSet) {
  obs::MetricsRegistry registry;
  obs::Counter* a = registry.counter("t_total", "test", "priority=\"batch\"");
  obs::Counter* b = registry.counter("t_total", "test", "priority=\"batch\"");
  obs::Counter* c = registry.counter("t_total", "test", "priority=\"standard\"");
  EXPECT_EQ(a, b);    // same (name, labels) -> same instrument
  EXPECT_NE(a, c);    // different label set -> distinct series
  a->inc(3);
  c->inc(1);

  registry.gauge_fn("t_cb", "test", [] { return 7.0; });
  const api::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.metrics.size(), 3u);  // two series + the callback gauge
  EXPECT_DOUBLE_EQ(snapshot.metrics[0].value, 3.0);
  EXPECT_DOUBLE_EQ(snapshot.metrics[1].value, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.metrics[2].value, 7.0);
}

// ---- RunTraceBuffer: bounded ring with drop accounting -----------------------

TEST(ObsTrace, RingWrapsAndCountsDrops) {
  obs::RunTraceBuffer buffer(42, 4);
  for (int i = 0; i < 10; ++i) {
    api::TraceSpan span;
    span.name = "span-" + std::to_string(i);
    span.virtual_start = span.virtual_end = static_cast<double>(i);
    buffer.record(std::move(span));
  }
  const api::RunTrace trace = buffer.snapshot();
  EXPECT_EQ(trace.run, 42u);
  ASSERT_EQ(trace.spans.size(), 4u);
  EXPECT_EQ(trace.recorded, 10u);
  EXPECT_EQ(trace.dropped, 6u);
  // Oldest retained first: spans 6..9 survive in record order.
  EXPECT_EQ(trace.spans.front().name, "span-6");
  EXPECT_EQ(trace.spans.back().name, "span-9");
}

TEST(ObsTrace, TracerEvictsOldestBeyondRetention) {
  obs::Tracer tracer(/*max_runs=*/2, /*spans_per_run=*/8);
  tracer.start(1);
  tracer.start(2);
  tracer.start(3);  // evicts run 1
  EXPECT_EQ(tracer.trace(1).status().code(), api::StatusCode::kNotFound);
  EXPECT_TRUE(tracer.trace(2).ok());
  EXPECT_TRUE(tracer.trace(3).ok());
  EXPECT_EQ(tracer.trace(99).status().code(), api::StatusCode::kNotFound);
}

TEST(ObsTrace, FinalizeFeedsSinkOutsideTheMapLock) {
  std::vector<api::RunTrace> finished;
  obs::Tracer tracer(4, 8, [&finished](const api::RunTrace& trace) {
    finished.push_back(trace);
  });
  const obs::TraceContext trace = tracer.start(7);
  trace->record(tracer.point("submit", 0.0));
  tracer.finalize(trace);
  ASSERT_EQ(finished.size(), 1u);
  EXPECT_EQ(finished[0].run, 7u);
  ASSERT_EQ(finished[0].spans.size(), 1u);
  EXPECT_EQ(finished[0].spans[0].name, "submit");
}

// ---- Exporters ---------------------------------------------------------------

TEST(ObsExport, PrometheusRendersCumulativeBucketsAndOneHeaderPerFamily) {
  obs::MetricsRegistry registry;
  registry.counter("t_total", "counted", "priority=\"batch\"")->inc(2);
  registry.counter("t_total", "counted", "priority=\"standard\"")->inc(5);
  obs::Histogram* hist = registry.histogram("t_seconds", "timed", {1.0, 2.0});
  hist->observe(0.5);
  hist->observe(1.5);
  hist->observe(9.0);

  const std::string text = obs::render_prometheus(registry.snapshot());
  // One HELP/TYPE header per family even with two label sets.
  EXPECT_EQ(text.find("# HELP t_total counted"), text.rfind("# HELP t_total counted"));
  EXPECT_NE(text.find("t_total{priority=\"batch\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_total{priority=\"standard\"} 5"), std::string::npos);
  // Cumulative le series: 1 at le=1, 2 at le=2, 3 at +Inf == _count.
  EXPECT_NE(text.find("t_seconds_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_count 3"), std::string::npos);
  EXPECT_NE(text.find("t_seconds_sum 11"), std::string::npos);
}

TEST(ObsExport, ChromeTraceEventsEmitOneJsonObjectPerSpan) {
  api::RunTrace trace;
  trace.run = 11;
  api::TraceSpan closed;
  closed.name = "qpu_exec";
  closed.wall_start_us = 10.0;
  closed.wall_end_us = 250.0;
  trace.spans.push_back(closed);
  api::TraceSpan instant;
  instant.name = "settle";
  instant.wall_start_us = instant.wall_end_us = 300.0;
  trace.spans.push_back(instant);

  const std::string jsonl = obs::chrome_trace_events(trace);
  EXPECT_NE(jsonl.find("\"ph\": \"X\""), std::string::npos);  // closed span
  EXPECT_NE(jsonl.find("\"dur\": 240"), std::string::npos);
  EXPECT_NE(jsonl.find("\"ph\": \"i\""), std::string::npos);  // point span
  EXPECT_NE(jsonl.find("\"tid\": 11"), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
}

// ---- the run-lifecycle trace surface end to end ------------------------------

workflow::ImageId deploy_quantum(api::QonductorClient& client, const std::string& name) {
  api::CreateWorkflowRequest create;
  create.name = name;
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(3), 64));
  auto created = client.createWorkflow(std::move(create));
  EXPECT_TRUE(created.ok()) << created.status().to_string();
  api::DeployRequest deploy;
  deploy.image = created->image;
  auto deployed = client.deploy(deploy);
  EXPECT_TRUE(deployed.ok()) << deployed.status().to_string();
  return created->image;
}

std::ptrdiff_t span_index(const api::RunTrace& trace, const std::string& name) {
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    if (trace.spans[i].name == name) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

TEST(ObsEndToEnd, BatchModeTraceCoversSubmitToSettleOnBothClocks) {
  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 11;
  config.trajectory_width_limit = 0;  // analytic model: fast
  config.scheduler_service.queue_threshold = 1;
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "trace-batch");

  api::InvokeRequest request;
  request.image = image;
  request.preferences.priority = api::Priority::kInteractive;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  ASSERT_EQ(handle->wait(), api::RunStatus::kCompleted);

  api::GetRunTraceRequest trace_request;
  trace_request.run = handle->id();
  auto response = client.getRunTrace(trace_request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  const api::RunTrace& trace = response->trace;
  EXPECT_EQ(trace.run, handle->id());
  EXPECT_EQ(trace.dropped, 0u);

  // The full batch-mode lifecycle, in record order: admission, park into
  // the pending queue, the cycle's queue-wait + stage spans, dispatch,
  // execution, settlement.
  const std::vector<std::string> expected = {
      "submit",         "admitted",       "park",    "queue_wait",
      "cycle_preprocess", "cycle_optimize", "cycle_select", "dispatch",
      "qpu_exec",       "settle"};
  std::ptrdiff_t previous = -1;
  for (const auto& name : expected) {
    const std::ptrdiff_t index = span_index(trace, name);
    ASSERT_GE(index, 0) << "missing span " << name;
    EXPECT_GT(index, previous) << "span " << name << " out of order";
    previous = index;
  }
  // Every span carries both clocks, well-formed.
  for (const auto& span : trace.spans) {
    EXPECT_GE(span.virtual_end, span.virtual_start) << span.name;
    EXPECT_GE(span.wall_end_us, span.wall_start_us) << span.name;
  }
  // The queue-wait span carries the dispatch verdict.
  const auto& wait = trace.spans[static_cast<std::size_t>(span_index(trace, "queue_wait"))];
  EXPECT_NE(wait.detail.find("dispatched qpu="), std::string::npos) << wait.detail;
  // The settle point sits at the run's terminal virtual time.
  const auto& settle = trace.spans[static_cast<std::size_t>(span_index(trace, "settle"))];
  EXPECT_EQ(settle.detail, "completed");
}

TEST(ObsEndToEnd, ImmediateModeRunsAreTracedToo) {
  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 12;
  config.trajectory_width_limit = 0;
  config.scheduler_service.mode = api::SchedulingMode::kImmediate;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "trace-immediate");

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  ASSERT_EQ(handle->wait(), api::RunStatus::kCompleted);

  api::GetRunTraceRequest trace_request;
  trace_request.run = handle->id();
  auto response = client.getRunTrace(trace_request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  // No park/queue_wait in immediate mode — but the lifecycle frame and the
  // execution span are all there, ordered.
  std::ptrdiff_t previous = -1;
  for (const auto& name : {"submit", "qpu_exec", "settle"}) {
    const std::ptrdiff_t index = span_index(response->trace, name);
    ASSERT_GE(index, 0) << "missing span " << name;
    EXPECT_GT(index, previous);
    previous = index;
  }
  EXPECT_EQ(span_index(response->trace, "park"), -1);
}

TEST(ObsEndToEnd, GetRunTraceErrorContract) {
  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 13;
  config.trajectory_width_limit = 0;
  config.telemetry.trace_runs = 1;  // retention window of a single run
  config.scheduler_service.queue_threshold = 1;
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "trace-evict");

  api::InvokeRequest request;
  request.image = image;
  auto first = client.invoke(request);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->wait(), api::RunStatus::kCompleted);
  auto second = client.invoke(request);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->wait(), api::RunStatus::kCompleted);

  // Unknown id -> NOT_FOUND.
  api::GetRunTraceRequest unknown;
  unknown.run = 424242;
  EXPECT_EQ(client.getRunTrace(unknown).status().code(), api::StatusCode::kNotFound);
  // The first run's trace was evicted by the second (retention = 1).
  api::GetRunTraceRequest evicted;
  evicted.run = first->id();
  EXPECT_EQ(client.getRunTrace(evicted).status().code(), api::StatusCode::kNotFound);
  api::GetRunTraceRequest retained;
  retained.run = second->id();
  EXPECT_TRUE(client.getRunTrace(retained).ok());

  // Tracing disabled -> FAILED_PRECONDITION (and no spans are recorded).
  core::QonductorConfig off_config = config;
  off_config.telemetry.tracing = false;
  api::QonductorClient off(off_config);
  const auto off_image = deploy_quantum(off, "trace-off");
  api::InvokeRequest off_request;
  off_request.image = off_image;
  auto off_handle = off.invoke(off_request);
  ASSERT_TRUE(off_handle.ok());
  ASSERT_EQ(off_handle->wait(), api::RunStatus::kCompleted);
  api::GetRunTraceRequest off_trace;
  off_trace.run = off_handle->id();
  EXPECT_EQ(off.getRunTrace(off_trace).status().code(),
            api::StatusCode::kFailedPrecondition);
}

// ---- stats surfaces as registry views ----------------------------------------

double metric_value(const api::MetricsSnapshot& snapshot, const std::string& name,
                    const std::string& labels = "") {
  for (const auto& metric : snapshot.metrics) {
    if (metric.name == name && metric.labels == labels) return metric.value;
  }
  ADD_FAILURE() << "metric not found: " << name << "{" << labels << "}";
  return -1.0;
}

TEST(ObsEndToEnd, LegacyStatsSurfacesMatchOneRegistrySnapshot) {
  constexpr std::size_t kRuns = 12;
  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 14;
  config.trajectory_width_limit = 0;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 4;
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "stats-view");

  std::vector<api::InvokeRequest> requests(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    requests[i].image = image;
    requests[i].preferences.priority =
        static_cast<api::Priority>(i % api::kNumPriorities);
  }
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();
  for (auto& handle : *handles) ASSERT_EQ(handle.wait(), api::RunStatus::kCompleted);
  // wait() returns when the terminal status is published; the engine worker
  // retires the finishing continuation just after. Drain to quiescence so
  // the live-run gauge assertion below is deterministic.
  auto& backend = client.backend();
  for (int i = 0; i < 2000 && backend.runEngine().stats().live_runs != 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }

  // Quiescent system: the legacy surfaces and a registry snapshot must
  // agree exactly — they are views over the same instruments.
  auto metrics = client.getMetrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().to_string();
  const api::MetricsSnapshot& snapshot = metrics->snapshot;

  auto sched = client.getSchedulerStats();
  ASSERT_TRUE(sched.ok());
  EXPECT_EQ(static_cast<double>(sched->stats.cycles),
            metric_value(snapshot, "qon_sched_cycles_total"));
  EXPECT_EQ(static_cast<double>(sched->stats.jobs_scheduled),
            metric_value(snapshot, "qon_sched_jobs_scheduled_total"));
  EXPECT_EQ(sched->stats.jobs_scheduled, kRuns);
  EXPECT_EQ(static_cast<double>(sched->stats.jobs_filtered),
            metric_value(snapshot, "qon_sched_jobs_filtered_total"));
  EXPECT_EQ(static_cast<double>(sched->stats.jobs_expired),
            metric_value(snapshot, "qon_sched_jobs_expired_total"));

  auto admission = client.getAdmissionStats();
  ASSERT_TRUE(admission.ok());
  double accepted_total = 0.0;
  for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
    const std::string label =
        std::string("priority=\"") +
        api::priority_name(static_cast<api::Priority>(p)) + "\"";
    EXPECT_EQ(static_cast<double>(admission->stats.accepted[p]),
              metric_value(snapshot, "qon_admission_accepted_total", label));
    accepted_total += static_cast<double>(admission->stats.accepted[p]);
  }
  EXPECT_EQ(accepted_total, static_cast<double>(kRuns));

  // The satellite fix: hit/miss ratio from ONE snapshot is coherent — and
  // the accessor pair agrees with it on a quiescent system.
  EXPECT_EQ(static_cast<double>(backend.prepCacheHits()),
            metric_value(snapshot, "qon_prep_cache_hits_total"));
  EXPECT_EQ(static_cast<double>(backend.prepCacheMisses()),
            metric_value(snapshot, "qon_prep_cache_misses_total"));
  EXPECT_EQ(backend.prepCacheHits() + backend.prepCacheMisses(), kRuns);

  EXPECT_EQ(static_cast<double>(backend.runEngine().peak_live_runs()),
            metric_value(snapshot, "qon_engine_peak_live_runs"));
  EXPECT_EQ(metric_value(snapshot, "qon_engine_live_runs"), 0.0);
  EXPECT_EQ(metric_value(snapshot, "qon_runs_finished_total", "status=\"completed\""),
            static_cast<double>(kRuns));

  // Histograms observed: one run-latency sample per settled run.
  std::uint64_t latency_samples = 0;
  for (const auto& metric : snapshot.metrics) {
    if (metric.name == "qon_run_latency_seconds") latency_samples += metric.count;
  }
  EXPECT_EQ(latency_samples, kRuns);
}

TEST(ObsEndToEnd, MetricsKnobOffStillServesLegacySurfaces) {
  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 15;
  config.trajectory_width_limit = 0;
  config.telemetry.metrics = false;  // gates ONLY histogram observations
  config.scheduler_service.queue_threshold = 1;
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "metrics-off");

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  ASSERT_EQ(handle->wait(), api::RunStatus::kCompleted);

  auto sched = client.getSchedulerStats();
  ASSERT_TRUE(sched.ok());
  EXPECT_GE(sched->stats.cycles, 1u);      // counters stay maintained
  EXPECT_EQ(sched->stats.jobs_scheduled, 1u);

  auto metrics = client.getMetrics();
  ASSERT_TRUE(metrics.ok());
  std::uint64_t histogram_samples = 0;
  for (const auto& metric : metrics->snapshot.metrics) {
    if (metric.kind == api::MetricKind::kHistogram) histogram_samples += metric.count;
  }
  EXPECT_EQ(histogram_samples, 0u);  // observations gated off
}

TEST(ObsEndToEnd, JsonlTraceSinkReceivesEveryFinishedRun) {
  const std::string path = ::testing::TempDir() + "qon_trace_sink_test.jsonl";
  std::remove(path.c_str());
  {
    core::QonductorConfig config;
    config.num_qpus = 2;
    config.seed = 16;
    config.trajectory_width_limit = 0;
    config.telemetry.trace_sink = obs::make_jsonl_file_sink(path);
    config.scheduler_service.queue_threshold = 1;
    config.scheduler_service.linger = 5ms;
    api::QonductorClient client(config);
    const auto image = deploy_quantum(client, "sink");
    api::InvokeRequest request;
    request.image = image;
    auto handle = client.invoke(request);
    ASSERT_TRUE(handle.ok());
    ASSERT_EQ(handle->wait(), api::RunStatus::kCompleted);
  }
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  const std::string text = content.str();
  EXPECT_NE(text.find("\"queue_wait\""), std::string::npos);
  EXPECT_NE(text.find("\"settle\""), std::string::npos);
  std::remove(path.c_str());
}

// ---- telemetry self-observation ----------------------------------------------

TEST(ObsTelemetry, BuildInfoGaugeCarriesIdentityLabels) {
  obs::Telemetry telemetry;
  const auto snapshot = telemetry.snapshot(0.0);
  const api::MetricValue* info = nullptr;
  for (const auto& metric : snapshot.metrics) {
    if (metric.name == "qon_build_info") info = &metric;
  }
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->value, 1.0);  // constant 1: the information IS the labels
  EXPECT_NE(info->labels.find("version=\"v1\""), std::string::npos);
  EXPECT_NE(info->labels.find("compiler=\""), std::string::npos);
  EXPECT_NE(info->labels.find("build=\""), std::string::npos);
}

TEST(ObsTelemetry, SnapshotPassTimesItselfIntoTheNextSnapshot) {
  obs::Telemetry telemetry;
  // The snapshot pass is observed AFTER the registry read, so the first
  // snapshot sees an empty histogram and each pass lands in the next one.
  const auto first = telemetry.snapshot(0.0);
  const api::MetricValue* duration =
      obs::find_metric(first, "qon_metrics_snapshot_duration_seconds");
  ASSERT_NE(duration, nullptr);
  EXPECT_EQ(duration->count, 0u);

  const auto second = telemetry.snapshot(0.0);
  duration = obs::find_metric(second, "qon_metrics_snapshot_duration_seconds");
  ASSERT_NE(duration, nullptr);
  EXPECT_EQ(duration->count, 1u);
  EXPECT_GE(duration->sum, 0.0);
}

// ---- snapshot deltas with mid-interval registration --------------------------

TEST(ObsDelta, MidIntervalRegistrationContributesFullValue) {
  obs::MetricsRegistry registry;
  auto* settled = registry.counter("settled_total", "runs settled");
  auto* depth = registry.gauge("queue_depth", "current depth");
  settled->inc(5);
  depth->set(7.0);
  const auto prev = registry.snapshot();

  // An instrument registered BETWEEN snapshots must stream its full
  // current value, not a bogus subtraction against a missing baseline.
  auto* shed = registry.counter("shed_total", "runs shed");
  shed->inc(3);
  settled->inc(2);
  depth->set(4.0);
  const auto cur = registry.snapshot();

  const auto delta = obs::snapshot_delta(prev, cur);
  const api::MetricValue* settled_delta = obs::find_metric(delta, "settled_total");
  ASSERT_NE(settled_delta, nullptr);
  EXPECT_EQ(settled_delta->value, 2.0);  // 7 - 5
  const api::MetricValue* shed_delta = obs::find_metric(delta, "shed_total");
  ASSERT_NE(shed_delta, nullptr);
  EXPECT_EQ(shed_delta->value, 3.0);  // fresh series: full current value
  const api::MetricValue* depth_delta = obs::find_metric(delta, "queue_depth");
  ASSERT_NE(depth_delta, nullptr);
  EXPECT_EQ(depth_delta->value, 4.0);  // gauges pass through
  EXPECT_EQ(obs::find_metric(delta, "missing_total"), nullptr);
}

}  // namespace
}  // namespace qon
