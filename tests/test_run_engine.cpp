// Tests for the event-driven run engine: engine-level unit tests on fake
// step functions (park/resume, fairness reposts, shutdown drain, submit
// rejection), the lifecycle regressions the continuation model introduces
// (cancel while a continuation is parked, shutdown mid-resume, resume-with-
// error ordering), and the scale acceptance scenario — a burst of 2000
// concurrent runs completing on executor_threads = 2 in batch mode, which
// the pre-engine thread-per-run executor could not even batch (two parked
// tasks maximum meant the queue threshold was unreachable).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "core/run_engine.hpp"

namespace qon::core {
namespace {

using namespace std::chrono_literals;

// ---- engine on fake step functions -------------------------------------------

TEST(RunEngine, StepsRunsToCompletionAndCountsEvents) {
  constexpr std::size_t kRuns = 16;
  constexpr std::size_t kNodes = 4;
  std::atomic<std::size_t> finished{0};
  RunEngine engine(3, [&finished](const std::shared_ptr<RunContinuation>& cont) {
    if (cont->cursor < kNodes) {
      ++cont->cursor;
      return StepOutcome::kProgress;
    }
    finished.fetch_add(1);
    return StepOutcome::kFinished;
  });
  EXPECT_EQ(engine.workers(), 3u);

  for (std::size_t r = 0; r < kRuns; ++r) {
    ASSERT_TRUE(engine.submit(std::make_shared<RunContinuation>()));
  }
  engine.shutdown();

  EXPECT_EQ(finished.load(), kRuns);
  EXPECT_EQ(engine.live_runs(), 0u);
  // Early submissions may finish while later ones are still arriving, so
  // the peak is only bounded; the park test below pins it exactly.
  EXPECT_GE(engine.peak_live_runs(), 1u);
  EXPECT_LE(engine.peak_live_runs(), kRuns);
  // One submit event + kNodes progress reposts + one finishing step each.
  EXPECT_EQ(engine.events_dispatched(), kRuns * (kNodes + 1));
}

// The decoupling property at the engine level: one worker holds dozens of
// parked runs at once — parking frees the worker instead of blocking it.
TEST(RunEngine, OneWorkerParksManyRunsAndResumesThemAll) {
  constexpr std::size_t kRuns = 64;
  std::mutex mutex;
  std::vector<std::shared_ptr<RunContinuation>> parked;
  std::atomic<std::size_t> finished{0};
  RunEngine engine(1, [&](const std::shared_ptr<RunContinuation>& cont) {
    if (!cont->started) {
      cont->started = true;
      std::lock_guard<std::mutex> lock(mutex);
      parked.push_back(cont);
      return StepOutcome::kParked;
    }
    finished.fetch_add(1);
    return StepOutcome::kFinished;
  });

  for (std::size_t r = 0; r < kRuns; ++r) {
    ASSERT_TRUE(engine.submit(std::make_shared<RunContinuation>()));
  }
  // With a single worker every run must reach its park: wait for that.
  for (int i = 0; i < 5000; ++i) {
    std::lock_guard<std::mutex> lock(mutex);
    if (parked.size() == kRuns) break;
    std::this_thread::sleep_for(1ms);
  }
  {
    std::lock_guard<std::mutex> lock(mutex);
    ASSERT_EQ(parked.size(), kRuns);  // 64 live runs on one worker
  }
  EXPECT_EQ(engine.live_runs(), kRuns);
  EXPECT_EQ(finished.load(), 0u);

  // External completions (a scheduling cycle, in production) resume them.
  {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto& cont : parked) engine.resume(cont);
  }
  engine.shutdown();
  EXPECT_EQ(finished.load(), kRuns);
  EXPECT_EQ(engine.live_runs(), 0u);
  EXPECT_EQ(engine.peak_live_runs(), kRuns);
}

TEST(RunEngine, ShutdownRejectsNewSubmissionsButDrainsLiveRuns) {
  std::mutex mutex;
  std::shared_ptr<RunContinuation> parked;
  RunEngine engine(2, [&](const std::shared_ptr<RunContinuation>& cont) {
    if (!cont->started) {
      cont->started = true;
      std::lock_guard<std::mutex> lock(mutex);
      parked = cont;
      return StepOutcome::kParked;
    }
    return StepOutcome::kFinished;
  });
  ASSERT_TRUE(engine.submit(std::make_shared<RunContinuation>()));
  for (int i = 0; i < 5000; ++i) {
    std::lock_guard<std::mutex> lock(mutex);
    if (parked) break;
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_NE(parked, nullptr);

  // Shutdown blocks on the parked run; resume it from another thread —
  // exactly what a scheduler-service flush cycle does during drain.
  std::thread resumer([&] {
    std::this_thread::sleep_for(20ms);
    engine.resume(parked);
  });
  engine.shutdown();
  resumer.join();
  EXPECT_EQ(engine.live_runs(), 0u);

  // Closed for good: new runs are refused, so the caller can fail them
  // UNAVAILABLE instead of leaving waiters stranded.
  EXPECT_FALSE(engine.submit(std::make_shared<RunContinuation>()));
  engine.shutdown();  // idempotent
}

// ---- serving-path fixtures ---------------------------------------------------

workflow::ImageId deploy_image(api::QonductorClient& client, const std::string& name,
                               bool classical_prologue, int shots = 64) {
  api::CreateWorkflowRequest create;
  create.name = name;
  if (classical_prologue) {
    create.tasks.push_back(workflow::HybridTask::classical(name + "-prep", 0.1));
  }
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(3), shots));
  auto created = client.createWorkflow(std::move(create));
  EXPECT_TRUE(created.ok()) << created.status().to_string();
  api::DeployRequest deploy;
  deploy.image = created->image;
  auto deployed = client.deploy(deploy);
  EXPECT_TRUE(deployed.ok()) << deployed.status().to_string();
  return created->image;
}

// ---- lifecycle regressions of the continuation model -------------------------

// Cancel while the continuation is parked: the classical prologue already
// ran when cancel() pulls the parked quantum task out of the queue. The
// resume event must collect the cancel verdict, end the run kCancelled and
// keep the prologue's result in the report.
TEST(RunEngineServing, CancelWhileContinuationParkedResumesCancelled) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 101;
  config.executor_threads = 2;
  config.scheduler_service.queue_threshold = 100;  // never reached
  config.scheduler_service.linger = 10s;           // no timer rescue either
  api::QonductorClient client(config);
  const auto image = deploy_image(client, "cancel-parked", /*classical_prologue=*/true);

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  // Wait until the quantum task is parked (classical prologue done).
  for (int i = 0; i < 5000; ++i) {
    auto stats = client.getSchedulerStats();
    ASSERT_TRUE(stats.ok());
    if (stats->stats.queue_depth == 1) break;
    std::this_thread::sleep_for(1ms);
  }

  EXPECT_TRUE(handle->cancel());
  EXPECT_EQ(handle->wait(), api::RunStatus::kCancelled);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kCancelled);
  ASSERT_EQ(result->tasks.size(), 1u);  // the prologue ran, the quantum task did not
  EXPECT_EQ(result->tasks[0].kind, workflow::TaskKind::kClassical);
  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.queue_depth, 0u);     // the queue slot was reclaimed
  EXPECT_EQ(stats->stats.jobs_scheduled, 0u);  // no cycle ever dispatched it
}

// Resume-with-error ordering: when a scheduling cycle filters the parked
// task (offline fleet -> RESOURCE_EXHAUSTED), the resume event must fail
// the run with the typed status AFTER booking the prologue's result, and
// the terminal record must be fully stamped.
TEST(RunEngineServing, ResumeWithErrorKeepsPriorTaskResultsAndTypedStatus) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 103;
  config.executor_threads = 2;
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_image(client, "resume-error", /*classical_prologue=*/true);
  auto& monitor = client.backend().monitor();
  for (const auto& name : monitor.qpu_names()) {
    ASSERT_TRUE(monitor.set_qpu_online(name, false).has_value());
  }

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  EXPECT_EQ(handle->wait(), api::RunStatus::kFailed);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kResourceExhausted);
  ASSERT_EQ(result->tasks.size(), 1u);  // the classical prologue's record survives
  EXPECT_EQ(result->tasks[0].kind, workflow::TaskKind::kClassical);

  auto info = handle->info();
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->started_at, 0.0);
  EXPECT_GE(info->finished_at, info->started_at);
}

// Shutdown mid-resume: shutdown() begins while parked runs are being
// resumed by in-flight cycles. Every live run must drain to a terminal
// state; none may be stranded parked.
TEST(RunEngineServing, ShutdownMidResumeDrainsEveryLiveRun) {
  constexpr std::size_t kRuns = 32;
  QonductorConfig config;
  config.num_qpus = 3;
  config.seed = 107;
  config.trajectory_width_limit = 0;  // analytic model: fast terminal states
  config.executor_threads = 2;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 8;  // cycles fire mid-burst
  config.scheduler_service.max_batch_size = 8;
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_image(client, "shutdown-mid-resume",
                                  /*classical_prologue=*/false);

  std::vector<api::InvokeRequest> requests(kRuns);
  for (auto& request : requests) request.image = image;
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();

  // Shut down immediately: some runs are parked, some are resuming off the
  // first cycles, some are still waiting for their first step.
  client.backend().shutdown();

  for (const auto& handle : *handles) {
    EXPECT_EQ(handle.poll(), api::RunStatus::kCompleted);
  }
  EXPECT_EQ(client.backend().runEngine().live_runs(), 0u);
  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.queue_depth, 0u);
  EXPECT_EQ(stats->stats.jobs_scheduled, kRuns);
}

// ---- the scale acceptance scenario -------------------------------------------

// A burst of 2000 concurrent runs completes on executor_threads = 2 in
// batch mode. Impossible pre-engine: two blocked executor threads meant a
// scheduling cycle could see at most two parked jobs, so the 200-job
// threshold below could never fire. With the engine, two workers park the
// whole burst and the cycles batch it by the hundreds.
TEST(RunEngineServing, TwoThousandConcurrentRunsCompleteOnTwoWorkers) {
  constexpr std::size_t kRuns = 2000;
  QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 109;
  config.trajectory_width_limit = 0;  // analytic model: keep the burst fast
  config.executor_threads = 2;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 200;
  config.scheduler_service.max_batch_size = 200;
  config.scheduler_service.linger = 50ms;
  api::QonductorClient client(config);
  const auto image = deploy_image(client, "burst-2000", /*classical_prologue=*/false);

  std::vector<api::InvokeRequest> requests(kRuns);
  for (auto& request : requests) request.image = image;
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();
  ASSERT_EQ(handles->size(), kRuns);

  std::size_t completed = 0;
  for (const auto& handle : *handles) {
    if (handle.wait() == api::RunStatus::kCompleted) ++completed;
  }
  EXPECT_EQ(completed, kRuns);

  const RunEngine& engine = client.backend().runEngine();
  EXPECT_EQ(engine.workers(), 2u);
  // The whole burst was live at once on two workers — the decoupling the
  // engine exists for (pre-engine, live parked runs were capped at 2).
  EXPECT_GE(engine.peak_live_runs(), kRuns / 2);
  // live_runs() lags the terminal record by the worker's bookkeeping beat;
  // after the drain it must be exactly zero.
  client.backend().shutdown();
  EXPECT_EQ(engine.live_runs(), 0u);

  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.jobs_scheduled, kRuns);
  EXPECT_EQ(stats->stats.jobs_filtered, 0u);
  EXPECT_EQ(stats->stats.queue_depth, 0u);
  // Cycles batched by the hundreds: the threshold actually fired, which
  // two blocked executor threads could never reach.
  EXPECT_GE(stats->stats.max_batch_size_seen, config.scheduler_service.queue_threshold);
  EXPECT_GE(stats->stats.queue_high_watermark, config.scheduler_service.queue_threshold);
}

}  // namespace
}  // namespace qon::core
