// Unit tests for the yamlite YAML-subset parser.

#include <gtest/gtest.h>

#include "yamlite/yamlite.hpp"

namespace qon::yaml {
namespace {

TEST(Yamlite, ParsesFlatMapping) {
  const auto doc = parse("name: qaoa\nqubits: 20\nratio: 0.5\nenabled: true\n");
  EXPECT_EQ(doc.at("name").as_string(), "qaoa");
  EXPECT_EQ(doc.at("qubits").as_int(), 20);
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_double(), 0.5);
  EXPECT_TRUE(doc.at("enabled").as_bool());
}

TEST(Yamlite, ParsesNestedMapping) {
  const auto doc = parse(
      "resources:\n"
      "  limits:\n"
      "    qpu: 1\n"
      "    qubits: 20\n");
  EXPECT_EQ(doc.at("resources").at("limits").at("qubits").as_int(), 20);
}

TEST(Yamlite, ParsesPaperListingOne) {
  // The deployment configuration from paper Listing 1 (§5), verbatim shape.
  const std::string text =
      "spec:\n"
      "  containers:\n"
      "  - name: qaoa-error-mitigated\n"
      "    image: nvidia/cuda:11.0-base\n"
      "    resources:\n"
      "      limits:\n"
      "        nvidia.com/gpu: 1 # Request one GPU\n"
      "  - name: qaoa-algorithm\n"
      "    image: qaoa:latest\n"
      "    resources:\n"
      "      limits:\n"
      "        quantum.ibm.com/qpu: 1 # Request one QPU\n"
      "        qubits: 20 # Request QPU size >= 20\n";
  const auto doc = parse(text);
  const auto& containers = doc.at("spec").at("containers");
  ASSERT_TRUE(containers.is_sequence());
  ASSERT_EQ(containers.size(), 2u);
  EXPECT_EQ(containers.items()[0].at("name").as_string(), "qaoa-error-mitigated");
  EXPECT_EQ(containers.items()[0].at("resources").at("limits").at("nvidia.com/gpu").as_int(), 1);
  EXPECT_EQ(containers.items()[1].at("resources").at("limits").at("qubits").as_int(), 20);
}

TEST(Yamlite, ParsesScalarList) {
  const auto doc = parse("backends:\n  - mumbai\n  - kolkata\n  - cairo\n");
  const auto& list = doc.at("backends");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list.items()[1].as_string(), "kolkata");
}

TEST(Yamlite, StripsCommentsAndBlankLines) {
  const auto doc = parse("# header comment\n\na: 1  # trailing\n\n# another\nb: 2\n");
  EXPECT_EQ(doc.at("a").as_int(), 1);
  EXPECT_EQ(doc.at("b").as_int(), 2);
}

TEST(Yamlite, QuotedStringsPreserveHashesAndColons) {
  const auto doc = parse("msg: \"hello # not a comment\"\nurl: 'http://x'\n");
  EXPECT_EQ(doc.at("msg").as_string(), "hello # not a comment");
  EXPECT_EQ(doc.at("url").as_string(), "http://x");
}

TEST(Yamlite, EmptyDocumentIsNull) {
  EXPECT_TRUE(parse("").is_null());
  EXPECT_TRUE(parse("\n  \n# only comments\n").is_null());
}

TEST(Yamlite, MissingKeyBehaviour) {
  const auto doc = parse("a: 1\n");
  EXPECT_THROW(doc.at("b"), std::out_of_range);
  EXPECT_TRUE(doc.get("b").is_null());
  EXPECT_EQ(doc.get("b").as_int_or(7), 7);
  EXPECT_TRUE(doc.has("a"));
  EXPECT_FALSE(doc.has("b"));
}

TEST(Yamlite, RejectsTabs) {
  EXPECT_THROW(parse("a:\n\tb: 1\n"), ParseError);
}

TEST(Yamlite, RejectsNonMappingLine) {
  EXPECT_THROW(parse("just a scalar line\n"), ParseError);
}

TEST(Yamlite, ScalarConversionErrors) {
  const auto doc = parse("a: hello\n");
  EXPECT_THROW(doc.at("a").as_int(), std::logic_error);
  EXPECT_THROW(doc.at("a").as_bool(), std::logic_error);
  EXPECT_EQ(doc.at("a").as_string_or("x"), "hello");
}

TEST(Yamlite, NullValueForKeyWithoutBlock) {
  const auto doc = parse("a:\nb: 2\n");
  EXPECT_TRUE(doc.at("a").is_null());
  EXPECT_EQ(doc.at("b").as_int(), 2);
}

TEST(Yamlite, DumpParseRoundTrip) {
  const std::string text =
      "spec:\n"
      "  containers:\n"
      "  - name: one\n"
      "    image: img:1\n"
      "  - name: two\n"
      "limits:\n"
      "  qubits: 12\n";
  const auto doc = parse(text);
  const auto round = parse(doc.dump());
  EXPECT_EQ(round.at("spec").at("containers").size(), 2u);
  EXPECT_EQ(round.at("spec").at("containers").items()[0].at("image").as_string(), "img:1");
  EXPECT_EQ(round.at("limits").at("qubits").as_int(), 12);
}

TEST(Yamlite, ParseErrorCarriesLineNumber) {
  try {
    parse("ok: 1\nbroken line\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Yamlite, ProgrammaticConstruction) {
  Node root;
  root["alpha"] = Node("1");
  root["nested"]["beta"] = Node("x");
  Node list = Node::make_sequence();
  list.push_back(Node("a"));
  list.push_back(Node("b"));
  root["items"] = list;
  const auto round = parse(root.dump());
  EXPECT_EQ(round.at("alpha").as_int(), 1);
  EXPECT_EQ(round.at("nested").at("beta").as_string(), "x");
  EXPECT_EQ(round.at("items").size(), 2u);
}

}  // namespace
}  // namespace qon::yaml
