// Tests for the scheduler service subsystem (§7, Fig. 5): the bounded
// PendingQueue, the SchedulerService driven by fake hooks (threshold and
// timer cycles, shutdown flush, infeasible filtering), config validation
// surfacing as typed INVALID_ARGUMENT, and the batch-scheduling serving
// path end to end — a burst of concurrent invoke()s dispatched in multiple
// hybrid-scheduler cycles, observed through getSchedulerStats and the
// on_task_start observer, with the kImmediate fallback kept working.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "core/pending_queue.hpp"
#include "core/scheduler_service.hpp"

namespace qon::core {
namespace {

using namespace std::chrono_literals;

std::shared_ptr<PendingQuantumTask> make_task(
    api::RunId run, int qubits, std::size_t num_qpus,
    api::Priority priority = api::Priority::kStandard) {
  auto task = std::make_shared<PendingQuantumTask>();
  task->run = run;
  task->task_name = "task-" + std::to_string(run);
  task->qubits = qubits;
  task->shots = 100;
  task->priority = priority;
  task->est_fidelity.assign(num_qpus, 0.9);
  task->est_exec_seconds.assign(num_qpus, 2.0);
  return task;
}

// ---- PendingQueue ------------------------------------------------------------

TEST(PendingQueue, FifoOrderAndBatchCap) {
  PendingQueue queue;
  for (api::RunId r = 1; r <= 5; ++r) queue.push(make_task(r, 4, 2));
  EXPECT_EQ(queue.size(), 5u);
  EXPECT_EQ(queue.high_watermark(), 5u);

  auto first = queue.take_batch(3);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0]->run, 1u);
  EXPECT_EQ(first[2]->run, 3u);

  auto rest = queue.take_batch(0);  // 0 = everything
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->run, 4u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.high_watermark(), 5u);  // watermark survives the drain
}

TEST(PendingQueue, BoundedPushBlocksUntilTake) {
  PendingQueue queue(2);
  EXPECT_TRUE(queue.push(make_task(1, 4, 2)));
  EXPECT_TRUE(queue.push(make_task(2, 4, 2)));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(make_task(3, 4, 2)));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());  // still parked on the capacity bound

  auto batch = queue.take_batch(1);  // frees one slot
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 2u);
}

TEST(PendingQueue, CloseRejectsPushesAndWakesBlockedProducers) {
  PendingQueue queue(1);
  EXPECT_TRUE(queue.push(make_task(1, 4, 2)));

  std::thread producer([&] {
    EXPECT_FALSE(queue.push(make_task(2, 4, 2)));  // blocked, then rejected
  });
  std::this_thread::sleep_for(10ms);
  queue.close();
  producer.join();

  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.push(make_task(3, 4, 2)));
  EXPECT_EQ(queue.size(), 1u);  // the pre-close item is still drainable
}

TEST(PendingQueue, BatchesFormInPriorityOrder) {
  PendingQueue queue;
  queue.push(make_task(1, 4, 2, api::Priority::kBatch));
  queue.push(make_task(2, 4, 2, api::Priority::kInteractive));
  queue.push(make_task(3, 4, 2, api::Priority::kStandard));
  queue.push(make_task(4, 4, 2, api::Priority::kInteractive));

  auto first = queue.take_batch(2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0]->run, 2u);  // the interactive lane drains first, FIFO within
  EXPECT_EQ(first[1]->run, 4u);
  auto rest = queue.take_batch(0);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->run, 3u);  // then standard, then batch
  EXPECT_EQ(rest[1]->run, 1u);
}

// Priority aging: a job whose virtual wait exceeds the budget competes one
// lane above its own, ranked by enqueue time within the effective lane — so
// an aged job beats a fresh stream instead of joining the back of its lane.
TEST(PendingQueue, AgingPromotesLongWaitingJobsExactlyOneLane) {
  PendingQueue queue;
  auto batch_old = make_task(1, 4, 2, api::Priority::kBatch);        // waited 100 s
  auto std_old = make_task(2, 4, 2, api::Priority::kStandard);       // waited 100 s
  auto std_fresh = make_task(3, 4, 2, api::Priority::kStandard);
  std_fresh->enqueued_at = 90.0;                                     // waited 10 s
  auto inter_fresh = make_task(4, 4, 2, api::Priority::kInteractive);
  inter_fresh->enqueued_at = 90.0;
  for (const auto& task : {batch_old, std_old, std_fresh, inter_fresh}) {
    queue.push(task);
  }

  // At t=100 with a 30 s budget: std_old is promoted to the interactive
  // lane and outranks the fresher native interactive job; batch_old is
  // promoted exactly ONE lane (to standard, never to interactive), so it
  // loses the capped slots despite being the oldest item overall.
  auto first = queue.take_batch(2, /*now=*/100.0, /*aging_seconds=*/30.0);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0]->run, 2u);  // aged standard, effective interactive
  EXPECT_EQ(first[1]->run, 4u);  // native interactive
  auto rest = queue.take_batch(0, 100.0, 30.0);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->run, 1u);  // aged batch, effective standard, older
  EXPECT_EQ(rest[1]->run, 3u);  // native standard

  // aging_seconds = 0 disables the rule: strict priority order.
  queue.push(batch_old);
  queue.push(inter_fresh);
  auto strict = queue.take_batch(0, 100.0, 0.0);
  ASSERT_EQ(strict.size(), 2u);
  EXPECT_EQ(strict[0]->run, 4u);
  EXPECT_EQ(strict[1]->run, 1u);
}

TEST(PendingQueue, TakeExpiredPullsOnlyOverdueDeadlines) {
  PendingQueue queue;
  auto overdue = make_task(1, 4, 2);
  overdue->deadline_seconds = 5.0;
  auto future = make_task(2, 4, 2);
  future->deadline_seconds = 50.0;
  auto no_deadline = make_task(3, 4, 2);
  queue.push(overdue);
  queue.push(future);
  queue.push(no_deadline);

  auto expired = queue.take_expired(10.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->run, 1u);
  EXPECT_EQ(queue.size(), 2u);
  // Just before the deadline the job still schedules…
  EXPECT_TRUE(queue.take_expired(49.9).empty());
  // …but the bound is inclusive: a cycle firing exactly at the deadline
  // would dispatch with zero slack, which the at/before contract counts as
  // a miss — the same boundary the submit-time admission check rejects.
  auto boundary = queue.take_expired(50.0);
  ASSERT_EQ(boundary.size(), 1u);
  EXPECT_EQ(boundary[0]->run, 2u);
  EXPECT_EQ(queue.size(), 1u);  // only the no-deadline job remains
}

TEST(PendingQueue, RemoveFreesSlotAndIgnoresUnknownItems) {
  PendingQueue queue(2);
  auto a = make_task(1, 4, 2);
  auto b = make_task(2, 4, 2);
  queue.push(a);
  queue.push(b);
  EXPECT_TRUE(queue.remove(a));
  EXPECT_FALSE(queue.remove(a));  // already gone
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.push(make_task(3, 4, 2)));  // the capacity slot was freed
  auto batch = queue.take_batch(0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0]->run, 2u);
}

// All three drain paths — take_batch, take_expired, remove — must free a
// capacity slot for a blocked producer, and none may distort the
// high-watermark statistic past the bound.
TEST(PendingQueue, BoundedPushFreedByTakeExpired) {
  PendingQueue queue(2);
  auto overdue = make_task(1, 4, 2);
  overdue->deadline_seconds = 5.0;
  queue.push(overdue);
  queue.push(make_task(2, 4, 2));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(make_task(3, 4, 2)));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());

  auto expired = queue.take_expired(10.0);  // frees the overdue job's slot
  ASSERT_EQ(expired.size(), 1u);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.high_watermark(), 2u);  // never exceeded the bound
}

TEST(PendingQueue, BoundedPushFreedByRemove) {
  PendingQueue queue(2);
  auto cancelled = make_task(1, 4, 2);
  queue.push(cancelled);
  queue.push(make_task(2, 4, 2));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.push(make_task(3, 4, 2)));  // blocks: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(20ms);
  EXPECT_FALSE(pushed.load());

  EXPECT_TRUE(queue.remove(cancelled));  // the cancellation path frees a slot
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.high_watermark(), 2u);
}

TEST(PendingQueue, HighWatermarkStableAcrossAllDrainPaths) {
  PendingQueue queue(3);
  auto expiring = make_task(1, 4, 2);
  expiring->deadline_seconds = 1.0;
  auto removable = make_task(2, 4, 2);
  queue.push(expiring);
  queue.push(removable);
  queue.push(make_task(3, 4, 2));
  EXPECT_EQ(queue.high_watermark(), 3u);

  EXPECT_EQ(queue.take_expired(2.0).size(), 1u);
  EXPECT_TRUE(queue.remove(removable));
  EXPECT_EQ(queue.take_batch(0).size(), 1u);
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.high_watermark(), 3u);  // the drains never reset or inflate it
}

// ---- PendingQueue::offer — the non-blocking capacity waitlist ----------------

TEST(PendingQueue, OfferQueuesWithCapacityAndWaitlistsWhenFull) {
  PendingQueue queue(2);
  EXPECT_EQ(queue.offer(make_task(1, 4, 2)), PendingQueue::Offer::kQueued);
  EXPECT_EQ(queue.offer(make_task(2, 4, 2)), PendingQueue::Offer::kQueued);
  // Full: the third offer returns immediately instead of blocking, parked
  // on the waitlist — it does NOT count toward size().
  EXPECT_EQ(queue.offer(make_task(3, 4, 2)), PendingQueue::Offer::kWaitlisted);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.waitlist_depth(), 1u);
  EXPECT_EQ(queue.waitlist_parks(), 1u);
  EXPECT_EQ(queue.waitlist_high_watermark(), 1u);
  EXPECT_EQ(queue.high_watermark(), 2u);

  // take_batch frees both slots and promotes the waitlisted item into its
  // lane atomically under the queue lock.
  auto batch = queue.take_batch(0);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.waitlist_depth(), 0u);
  auto promoted = queue.take_batch(0);
  ASSERT_EQ(promoted.size(), 1u);
  EXPECT_EQ(promoted[0]->run, 3u);
  // The park statistics survive the promotion (they are cumulative).
  EXPECT_EQ(queue.waitlist_parks(), 1u);
  EXPECT_EQ(queue.waitlist_high_watermark(), 1u);
}

TEST(PendingQueue, WaitlistPromotesFifoByPriority) {
  PendingQueue queue(2);
  queue.offer(make_task(1, 4, 2));
  queue.offer(make_task(2, 4, 2));
  // Waitlisted in arrival order: batch, interactive, interactive, standard.
  EXPECT_EQ(queue.offer(make_task(3, 4, 2, api::Priority::kBatch)),
            PendingQueue::Offer::kWaitlisted);
  EXPECT_EQ(queue.offer(make_task(4, 4, 2, api::Priority::kInteractive)),
            PendingQueue::Offer::kWaitlisted);
  EXPECT_EQ(queue.offer(make_task(5, 4, 2, api::Priority::kInteractive)),
            PendingQueue::Offer::kWaitlisted);
  EXPECT_EQ(queue.offer(make_task(6, 4, 2, api::Priority::kStandard)),
            PendingQueue::Offer::kWaitlisted);
  EXPECT_EQ(queue.waitlist_depth(), 4u);
  EXPECT_EQ(queue.waitlist_high_watermark(), 4u);

  // Draining the queue frees 2 slots: the waitlist promotes its highest
  // class first (both interactive jobs, FIFO within the class) — the
  // earlier-arrived batch job keeps waiting.
  queue.take_batch(0);
  EXPECT_EQ(queue.waitlist_depth(), 2u);
  auto second = queue.take_batch(0);
  ASSERT_EQ(second.size(), 2u);
  EXPECT_EQ(second[0]->run, 4u);
  EXPECT_EQ(second[1]->run, 5u);
  // Next drain promotes standard before batch.
  auto third = queue.take_batch(0);
  ASSERT_EQ(third.size(), 2u);
  EXPECT_EQ(third[0]->run, 6u);
  EXPECT_EQ(third[1]->run, 3u);
  EXPECT_EQ(queue.waitlist_depth(), 0u);
}

TEST(PendingQueue, TakeExpiredSweepsTheWaitlistToo) {
  PendingQueue queue(1);
  queue.offer(make_task(1, 4, 2));
  auto waitlisted = make_task(2, 4, 2);
  waitlisted->deadline_seconds = 5.0;
  EXPECT_EQ(queue.offer(waitlisted), PendingQueue::Offer::kWaitlisted);

  // The waitlisted job's deadline passes while it waits for a capacity
  // slot: the expiry sweep must find it there, not only in the queue.
  auto expired = queue.take_expired(5.0);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0]->run, 2u);
  EXPECT_EQ(queue.waitlist_depth(), 0u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(PendingQueue, RemovePullsWaitlistedItem) {
  PendingQueue queue(1);
  queue.offer(make_task(1, 4, 2));
  auto waitlisted = make_task(2, 4, 2);
  EXPECT_EQ(queue.offer(waitlisted), PendingQueue::Offer::kWaitlisted);

  // A cancelled run's task leaves the waitlist sideways, exactly like a
  // queued task leaves the queue.
  EXPECT_TRUE(queue.remove(waitlisted));
  EXPECT_FALSE(queue.remove(waitlisted));  // already gone
  EXPECT_EQ(queue.waitlist_depth(), 0u);
  EXPECT_EQ(queue.size(), 1u);
}

TEST(PendingQueue, ClosePromotesWaitlistIntoTheFinalFlush) {
  PendingQueue queue(1);
  queue.offer(make_task(1, 4, 2));
  EXPECT_EQ(queue.offer(make_task(2, 4, 2)), PendingQueue::Offer::kWaitlisted);

  queue.close();
  // The flush drain must see BOTH items: a waitlisted task still needs its
  // terminal verdict, so close() promotes past the capacity bound.
  EXPECT_EQ(queue.waitlist_depth(), 0u);
  EXPECT_EQ(queue.wait_for_batch(100, 10s), PendingQueue::Wake::kFlush);
  auto flush = queue.take_batch(0);
  ASSERT_EQ(flush.size(), 2u);
  EXPECT_EQ(queue.wait_for_batch(100, 10s), PendingQueue::Wake::kClosed);

  // And after close, offers are rejected outright.
  EXPECT_EQ(queue.offer(make_task(3, 4, 2)), PendingQueue::Offer::kClosed);
}

TEST(PendingQueue, OldestWaitTracksTheStalestParkedItem) {
  PendingQueue queue(1);
  EXPECT_DOUBLE_EQ(queue.oldest_wait_seconds(100.0), 0.0);  // nothing parked

  auto queued = make_task(1, 4, 2);
  queued->enqueued_at = 10.0;
  queue.offer(queued);
  EXPECT_DOUBLE_EQ(queue.oldest_wait_seconds(100.0), 90.0);

  // The queue-stall SLI must see the capacity waitlist too: a task starved
  // of a slot is exactly the wait the gauge exists to expose.
  auto waitlisted = make_task(2, 4, 2);
  waitlisted->enqueued_at = 4.0;
  EXPECT_EQ(queue.offer(waitlisted), PendingQueue::Offer::kWaitlisted);
  EXPECT_DOUBLE_EQ(queue.oldest_wait_seconds(100.0), 96.0);

  // Draining the queue promotes the waitlisted item; it is now the only —
  // and oldest — parked task.
  auto batch = queue.take_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->run, 1u);
  EXPECT_DOUBLE_EQ(queue.oldest_wait_seconds(100.0), 96.0);
  ASSERT_EQ(queue.take_batch(0).size(), 1u);
  EXPECT_DOUBLE_EQ(queue.oldest_wait_seconds(100.0), 0.0);  // drained
}

TEST(PendingQueue, FirstSettlementWins) {
  auto task = make_task(1, 4, 2);
  task->fail(api::Cancelled("cancelled while parked"), 1.0);
  task->complete(0, 2.0);  // a racing cycle completion must be a no-op
  task->await();
  EXPECT_TRUE(task->settled());
  EXPECT_EQ(task->error.code(), api::StatusCode::kCancelled);
  EXPECT_LT(task->assigned_qpu, 0);
  EXPECT_DOUBLE_EQ(task->dispatched_at, 1.0);
}

TEST(PendingQueue, WaitWakesOnThreshold) {
  PendingQueue queue;
  std::thread producer([&] {
    for (api::RunId r = 1; r <= 3; ++r) queue.push(make_task(r, 4, 2));
  });
  const auto wake = queue.wait_for_batch(3, 10s);
  producer.join();
  EXPECT_EQ(wake, PendingQueue::Wake::kThreshold);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(PendingQueue, WaitWakesOnLingerWithSubThresholdBatch) {
  PendingQueue queue;
  queue.push(make_task(1, 4, 2));
  const auto wake = queue.wait_for_batch(100, 10ms);
  EXPECT_EQ(wake, PendingQueue::Wake::kLinger);
  EXPECT_EQ(queue.size(), 1u);  // single consumer: nothing vanished
}

TEST(PendingQueue, WaitReportsFlushThenClosed) {
  PendingQueue queue;
  queue.push(make_task(1, 4, 2));
  queue.close();
  EXPECT_EQ(queue.wait_for_batch(100, 10s), PendingQueue::Wake::kFlush);
  queue.take_batch(0);
  EXPECT_EQ(queue.wait_for_batch(100, 10s), PendingQueue::Wake::kClosed);
}

// ---- SchedulerService on fake hooks ------------------------------------------

/// Fake engine: an atomic virtual clock plus a uniform fleet of `num_qpus`
/// QPUs of `qpu_size` qubits.
struct FakeEngine {
  explicit FakeEngine(std::size_t num_qpus, int qpu_size = 27)
      : num_qpus(num_qpus), qpu_size(qpu_size) {}

  SchedulerServiceHooks hooks() {
    SchedulerServiceHooks hooks;
    hooks.now = [this] { return clock.load(); };
    hooks.snapshot_qpus = [this](double advance_to) {
      double seen = clock.load();
      while (advance_to > seen && !clock.compare_exchange_weak(seen, advance_to)) {
      }
      std::vector<sched::QpuState> qpus;
      for (std::size_t q = 0; q < num_qpus; ++q) {
        qpus.push_back({"fake" + std::to_string(q), qpu_size, 0.0, true});
      }
      return qpus;
    };
    return hooks;
  }

  std::atomic<double> clock{0.0};
  std::size_t num_qpus;
  int qpu_size;
};

TEST(SchedulerService, ThresholdCycleFiresWithoutTimer) {
  FakeEngine engine(2);
  SchedulerServiceConfig config;
  config.queue_threshold = 2;
  config.linger = 10s;  // only the threshold can fire this fast
  SchedulerService service(config, 7, {}, engine.hooks());

  auto a = make_task(1, 4, 2);
  auto b = make_task(2, 4, 2);
  ASSERT_TRUE(service.enqueue(a));
  ASSERT_TRUE(service.enqueue(b));
  a->await();
  b->await();

  EXPECT_TRUE(a->error.ok()) << a->error.to_string();
  EXPECT_TRUE(b->error.ok()) << b->error.to_string();
  EXPECT_GE(a->assigned_qpu, 0);
  EXPECT_LT(a->assigned_qpu, 2);
  EXPECT_DOUBLE_EQ(a->dispatched_at, 0.0);  // no timer warp on a threshold fire

  const auto stats = service.stats();
  EXPECT_EQ(stats.cycles, 1u);
  EXPECT_EQ(stats.jobs_scheduled, 2u);
  ASSERT_EQ(stats.recent_cycles.size(), 1u);
  EXPECT_EQ(stats.recent_cycles[0].trigger, api::CycleTrigger::kThreshold);
  EXPECT_EQ(stats.recent_cycles[0].batch_size, 2u);
  service.shutdown();
}

TEST(SchedulerService, TimerCycleAdvancesTheVirtualClockToTheDeadline) {
  FakeEngine engine(2);
  SchedulerServiceConfig config;
  config.queue_threshold = 100;  // unreachable: only the timer can fire
  config.interval_seconds = 60.0;
  config.linger = 1ms;
  SchedulerService service(config, 7, {}, engine.hooks());

  auto task = make_task(1, 4, 2);
  ASSERT_TRUE(service.enqueue(task));
  task->await();

  EXPECT_TRUE(task->error.ok()) << task->error.to_string();
  // The linger elapsed in real time, so the cycle fired as the virtual
  // timer running out: the fleet clock jumped to the 60 s deadline.
  EXPECT_DOUBLE_EQ(task->dispatched_at, 60.0);
  EXPECT_DOUBLE_EQ(engine.clock.load(), 60.0);

  const auto stats = service.stats();
  ASSERT_EQ(stats.recent_cycles.size(), 1u);
  EXPECT_EQ(stats.recent_cycles[0].trigger, api::CycleTrigger::kTimer);
  EXPECT_DOUBLE_EQ(stats.recent_cycles[0].mean_queue_wait_seconds, 60.0);
  service.shutdown();
}

TEST(SchedulerService, ShutdownFlushesTheFinalCycle) {
  FakeEngine engine(2);
  SchedulerServiceConfig config;
  config.queue_threshold = 100;
  config.linger = 10s;  // neither trigger can fire before the shutdown flush
  SchedulerService service(config, 7, {}, engine.hooks());

  std::vector<std::shared_ptr<PendingQuantumTask>> tasks;
  for (api::RunId r = 1; r <= 3; ++r) {
    tasks.push_back(make_task(r, 4, 2));
    ASSERT_TRUE(service.enqueue(tasks.back()));
  }
  service.shutdown();  // must drain: close, flush one final cycle, join

  for (const auto& task : tasks) {
    task->await();  // already complete — returns immediately
    EXPECT_TRUE(task->error.ok()) << task->error.to_string();
    EXPECT_GE(task->assigned_qpu, 0);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_scheduled, 3u);
  EXPECT_EQ(stats.queue_depth, 0u);
  ASSERT_EQ(stats.recent_cycles.size(), 1u);
  // The drain is reported as a flush, not mislabeled as timer/threshold.
  EXPECT_EQ(stats.recent_cycles[0].trigger, api::CycleTrigger::kFlush);
  EXPECT_FALSE(service.enqueue(make_task(9, 4, 2)));  // closed for good
}

// The QoS-deadline acceptance scenario at the service level: a job parked
// past its deadline fails DEADLINE_EXCEEDED at cycle start and never
// consumes a batch slot or a QPU; its batch sibling is scheduled normally.
TEST(SchedulerService, DeadlineExpiredParkedJobFailsAtCycleStart) {
  FakeEngine engine(2);
  SchedulerServiceConfig config;
  config.queue_threshold = 100;  // unreachable: the timer fires, at t=60
  config.interval_seconds = 60.0;
  config.linger = 200ms;
  SchedulerService service(config, 7, {}, engine.hooks());

  auto expired = make_task(1, 4, 2);
  expired->deadline_seconds = 10.0;  // passes before the timer cycle
  auto alive = make_task(2, 4, 2);
  alive->deadline_seconds = 120.0;  // still good at t=60
  ASSERT_TRUE(service.enqueue(expired));
  ASSERT_TRUE(service.enqueue(alive));
  expired->await();
  alive->await();

  EXPECT_EQ(expired->error.code(), api::StatusCode::kDeadlineExceeded);
  EXPECT_LT(expired->assigned_qpu, 0);  // no QPU consumed
  EXPECT_TRUE(alive->error.ok()) << alive->error.to_string();
  EXPECT_GE(alive->assigned_qpu, 0);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_expired, 1u);
  EXPECT_EQ(stats.jobs_scheduled, 1u);
  EXPECT_EQ(stats.jobs_filtered, 0u);
  std::size_t expired_in_cycles = 0;
  for (const auto& cycle : stats.recent_cycles) expired_in_cycles += cycle.expired;
  EXPECT_EQ(expired_in_cycles, 1u);
  service.shutdown();
}

// Priority-ordered batch formation isolates queue waits: with a cycle cap
// of 2, the interactive pair dispatches in the threshold cycle at t=0 and
// the batch-class pair waits for the timer cycle at t=60.
TEST(SchedulerService, PriorityOrderIsolatesQueueWaits) {
  FakeEngine engine(2);
  SchedulerServiceConfig config;
  config.queue_threshold = 4;
  config.max_batch_size = 2;
  config.interval_seconds = 60.0;
  config.linger = 200ms;
  SchedulerService service(config, 7, {}, engine.hooks());

  auto b1 = make_task(1, 4, 2, api::Priority::kBatch);
  auto b2 = make_task(2, 4, 2, api::Priority::kBatch);
  auto i1 = make_task(3, 4, 2, api::Priority::kInteractive);
  auto i2 = make_task(4, 4, 2, api::Priority::kInteractive);
  for (const auto& task : {b1, b2, i1, i2}) ASSERT_TRUE(service.enqueue(task));
  for (const auto& task : {b1, b2, i1, i2}) task->await();

  EXPECT_DOUBLE_EQ(i1->dispatched_at, 0.0);
  EXPECT_DOUBLE_EQ(i2->dispatched_at, 0.0);
  EXPECT_DOUBLE_EQ(b1->dispatched_at, 60.0);
  EXPECT_DOUBLE_EQ(b2->dispatched_at, 60.0);

  const auto stats = service.stats();
  const auto& interactive_waits = stats.recent_queue_waits_by_priority[static_cast<
      std::size_t>(api::Priority::kInteractive)];
  const auto& batch_waits =
      stats.recent_queue_waits_by_priority[static_cast<std::size_t>(api::Priority::kBatch)];
  EXPECT_EQ(interactive_waits, (std::vector<double>{0.0, 0.0}));
  EXPECT_EQ(batch_waits, (std::vector<double>{60.0, 60.0}));
  EXPECT_TRUE(stats.recent_queue_waits_by_priority[static_cast<std::size_t>(
                  api::Priority::kStandard)]
                  .empty());
  service.shutdown();
}

// Starvation regression: with strict priority order a capped cycle hands
// every slot to the higher lanes, so a parked batch-class job is passed
// over; with aging_seconds set, its virtual wait promotes it into slot
// competition and it dispatches in the first cycle.
TEST(SchedulerService, AgingRescuesStarvedLowPriorityJob) {
  for (const bool aging_on : {false, true}) {
    FakeEngine engine(2);
    SchedulerServiceConfig config;
    config.queue_threshold = 3;   // fires when the fresh pair joins
    config.max_batch_size = 2;    // the starved job must win a slot to go
    config.interval_seconds = 60.0;
    config.linger = 200ms;
    config.aging_seconds = aging_on ? 30.0 : 0.0;
    SchedulerService service(config, 7, {}, engine.hooks());

    // The batch-class job has been parked since t=0…
    auto starved = make_task(1, 4, 2, api::Priority::kBatch);
    ASSERT_TRUE(service.enqueue(starved));
    // …and at t=100 a fresh pair of standard jobs trips the threshold.
    engine.clock.store(100.0);
    auto fresh_a = make_task(2, 4, 2, api::Priority::kStandard);
    fresh_a->enqueued_at = 100.0;
    auto fresh_b = make_task(3, 4, 2, api::Priority::kStandard);
    fresh_b->enqueued_at = 100.0;
    ASSERT_TRUE(service.enqueue(fresh_a));
    ASSERT_TRUE(service.enqueue(fresh_b));

    starved->await();
    fresh_a->await();
    fresh_b->await();
    service.shutdown();

    if (aging_on) {
      // Aged past the 30 s budget, the batch job competes as standard and
      // its older enqueue time wins the first capped cycle at t=100.
      EXPECT_DOUBLE_EQ(starved->dispatched_at, 100.0);
      EXPECT_GT(std::max(fresh_a->dispatched_at, fresh_b->dispatched_at), 100.0);
    } else {
      // Strict priority: the standard pair takes both slots and the batch
      // job waits for a later cycle — the starvation the knob closes.
      EXPECT_DOUBLE_EQ(fresh_a->dispatched_at, 100.0);
      EXPECT_DOUBLE_EQ(fresh_b->dispatched_at, 100.0);
      EXPECT_GT(starved->dispatched_at, 100.0);
    }
  }
}

TEST(SchedulerService, InfeasibleTaskFailsResourceExhausted) {
  FakeEngine engine(2, /*qpu_size=*/5);
  SchedulerServiceConfig config;
  config.queue_threshold = 2;
  config.linger = 10s;
  SchedulerService service(config, 7, {}, engine.hooks());

  auto fits = make_task(1, 4, 2);
  auto too_big = make_task(2, 20, 2);  // fits no 5-qubit QPU
  ASSERT_TRUE(service.enqueue(fits));
  ASSERT_TRUE(service.enqueue(too_big));
  fits->await();
  too_big->await();

  EXPECT_TRUE(fits->error.ok());
  EXPECT_GE(fits->assigned_qpu, 0);
  EXPECT_EQ(too_big->error.code(), api::StatusCode::kResourceExhausted);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_scheduled, 1u);
  EXPECT_EQ(stats.jobs_filtered, 1u);
  ASSERT_EQ(stats.recent_cycles.size(), 1u);
  EXPECT_EQ(stats.recent_cycles[0].filtered, 1u);
  service.shutdown();
}

TEST(SchedulerService, ValidatesConfigWithoutThrowing) {
  SchedulerServiceConfig good;
  EXPECT_TRUE(validate_scheduler_config(good).ok());

  SchedulerServiceConfig zero_threshold;
  zero_threshold.queue_threshold = 0;
  EXPECT_EQ(validate_scheduler_config(zero_threshold).code(),
            api::StatusCode::kInvalidArgument);

  SchedulerServiceConfig bad_interval;
  bad_interval.interval_seconds = 0.0;
  EXPECT_EQ(validate_scheduler_config(bad_interval).code(),
            api::StatusCode::kInvalidArgument);

  SchedulerServiceConfig negative_linger;
  negative_linger.linger = -1ms;
  EXPECT_EQ(validate_scheduler_config(negative_linger).code(),
            api::StatusCode::kInvalidArgument);

  // A capacity below the threshold could never fire the threshold trigger.
  SchedulerServiceConfig starved;
  starved.queue_capacity = 50;
  starved.queue_threshold = 100;
  EXPECT_EQ(validate_scheduler_config(starved).code(),
            api::StatusCode::kInvalidArgument);
  SchedulerServiceConfig unbounded;
  unbounded.queue_capacity = 0;  // unbounded queue is fine with any threshold
  unbounded.queue_threshold = 100;
  EXPECT_TRUE(validate_scheduler_config(unbounded).ok());

  SchedulerServiceConfig negative_aging;
  negative_aging.aging_seconds = -1.0;
  EXPECT_EQ(validate_scheduler_config(negative_aging).code(),
            api::StatusCode::kInvalidArgument);

  good.aging_seconds = 45.0;
  const auto view = to_config_view(good);
  EXPECT_EQ(view.mode, api::SchedulingMode::kBatch);
  EXPECT_EQ(view.queue_threshold, good.queue_threshold);
  EXPECT_DOUBLE_EQ(view.interval_seconds, good.interval_seconds);
  EXPECT_EQ(view.queue_capacity, good.queue_capacity);
  EXPECT_DOUBLE_EQ(view.aging_seconds, 45.0);
}

// ---- the batch-scheduling serving path end to end ----------------------------

workflow::ImageId deploy_quantum(api::QonductorClient& client, const std::string& name,
                                 const circuit::Circuit& circ, int shots = 128) {
  api::CreateWorkflowRequest create;
  create.name = name;
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circ, shots));
  auto created = client.createWorkflow(std::move(create));
  EXPECT_TRUE(created.ok()) << created.status().to_string();
  api::DeployRequest deploy;
  deploy.image = created->image;
  auto deployed = client.deploy(deploy);
  EXPECT_TRUE(deployed.ok()) << deployed.status().to_string();
  return created->image;
}

void take_fleet_offline(api::QonductorClient& client) {
  auto& monitor = client.backend().monitor();
  for (const auto& name : monitor.qpu_names()) {
    ASSERT_TRUE(monitor.set_qpu_online(name, false).has_value());
  }
}

// The acceptance scenario: a burst of 100 concurrent invoke()s is
// dispatched in >= 2 scheduling cycles whose per-cycle batches come from
// the hybrid scheduler, observed through getSchedulerStats and the
// on_task_start observer.
TEST(BatchServing, BurstIsDispatchedInMultipleSchedulerCycles) {
  constexpr std::size_t kRuns = 100;
  QonductorConfig config;
  config.num_qpus = 3;
  config.seed = 77;
  config.trajectory_width_limit = 8;
  config.executor_threads = kRuns;  // every run can park a pending task at once
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 25;
  config.scheduler_service.max_batch_size = 40;  // forces >= 3 cycles for 100 jobs
  config.scheduler_service.linger = 200ms;
  std::atomic<std::size_t> quantum_starts{0};
  config.on_task_start = [&quantum_starts](RunId, const std::string& name) {
    if (name == "ghz") quantum_starts.fetch_add(1);
  };
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "burst", circuit::ghz(3));

  std::vector<api::InvokeRequest> requests(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    requests[i].image = image;
    // A mixed-tenant burst: priorities cycle through all three classes.
    requests[i].preferences.priority = static_cast<api::Priority>(i % api::kNumPriorities);
  }
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();
  for (const auto& handle : *handles) {
    EXPECT_EQ(handle.wait(), api::RunStatus::kCompleted);
  }
  EXPECT_EQ(quantum_starts.load(), kRuns);

  // Every run prepared its quantum task exactly once (cache or transpile);
  // the burst re-uses cached preps once the first prep lands.
  EXPECT_EQ(client.backend().prepCacheHits() + client.backend().prepCacheMisses(), kRuns);
  EXPECT_GE(client.backend().prepCacheHits(), 1u);

  auto stats_response = client.getSchedulerStats();
  ASSERT_TRUE(stats_response.ok()) << stats_response.status().to_string();
  const api::SchedulerStats& stats = stats_response->stats;
  EXPECT_GE(stats.cycles, 2u);  // batched, not one-cycle-per-job and not one mega-cycle
  EXPECT_EQ(stats.jobs_scheduled, kRuns);
  EXPECT_EQ(stats.jobs_filtered, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.max_batch_size_seen, 40u);
  EXPECT_GT(stats.max_batch_size_seen, 1u);

  // Every job was dispatched through a cycle's hybrid-scheduler decision.
  std::size_t batched = 0;
  for (const auto& cycle : stats.recent_cycles) {
    EXPECT_LE(cycle.batch_size, 40u);
    EXPECT_EQ(cycle.scheduled + cycle.filtered, cycle.batch_size);
    EXPECT_GE(cycle.optimize_seconds, 0.0);
    batched += cycle.batch_size;
  }
  EXPECT_EQ(batched, kRuns);
  EXPECT_EQ(stats.recent_queue_waits.size(), kRuns);
  // Per-priority histories partition the overall wait history.
  std::size_t by_priority = 0;
  for (const auto& waits : stats.recent_queue_waits_by_priority) {
    by_priority += waits.size();
  }
  EXPECT_EQ(by_priority, kRuns);

  // The config view echoes the deployment's knobs.
  EXPECT_EQ(stats_response->config.mode, api::SchedulingMode::kBatch);
  EXPECT_EQ(stats_response->config.queue_threshold, 25u);
  EXPECT_EQ(stats_response->config.max_batch_size, 40u);
}

// Regression for the ROADMAP open item: cancelling a run whose quantum
// task is parked pulls the task out of the pending queue immediately — the
// scheduling threshold is never reached, so only the cancel can end it.
TEST(BatchServing, CancelPullsParkedTaskOutOfThePendingQueue) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 41;
  config.scheduler_service.queue_threshold = 100;  // never reached
  config.scheduler_service.linger = 10s;           // no timer rescue either
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "cancel-parked", circuit::ghz(3));

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  // Wait until the task is parked in the pending queue.
  for (int i = 0; i < 5000; ++i) {
    auto stats = client.getSchedulerStats();
    ASSERT_TRUE(stats.ok());
    if (stats->stats.queue_depth == 1) break;
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(handle->cancel());
  EXPECT_EQ(handle->wait(), api::RunStatus::kCancelled);

  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kCancelled);
  EXPECT_TRUE(result->tasks.empty());  // nothing executed
  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.queue_depth, 0u);     // the slot was reclaimed
  EXPECT_EQ(stats->stats.jobs_scheduled, 0u);  // no cycle ever dispatched it
}

// §7 reservations as a typed API: a QPU reserved while jobs are already
// parked is honored by the in-flight cycle that dispatches them.
TEST(BatchServing, MidCycleReservationIsHonoredByTheNextCycle) {
  constexpr std::size_t kRuns = 6;
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 53;
  config.trajectory_width_limit = 8;
  config.executor_threads = kRuns;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = kRuns;  // fires on the last invoke
  config.scheduler_service.linger = 10s;             // backstop only
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "reserve", circuit::ghz(3));

  // Park all but one job: one short of the threshold, nothing dispatches.
  std::vector<api::InvokeRequest> requests(kRuns - 1);
  for (auto& request : requests) request.image = image;
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();
  for (int i = 0; i < 5000; ++i) {
    auto stats = client.getSchedulerStats();
    ASSERT_TRUE(stats.ok());
    if (stats->stats.queue_depth == kRuns - 1) break;
    std::this_thread::sleep_for(1ms);
  }

  // Reserve one of the two QPUs mid-cycle, while the jobs are parked.
  const auto names = client.backend().monitor().qpu_names();
  ASSERT_EQ(names.size(), 2u);
  api::ReserveQpuRequest reserve;
  reserve.qpu = names[0];
  auto reserved = client.reserveQpu(reserve);
  ASSERT_TRUE(reserved.ok()) << reserved.status().to_string();
  EXPECT_EQ(reserved->qpu, names[0]);
  EXPECT_EQ(client.reserveQpu(reserve).status().code(), api::StatusCode::kAlreadyExists);

  // Trip the threshold: the firing cycle must route every job around the
  // reserved QPU.
  api::InvokeRequest last;
  last.image = image;
  auto last_handle = client.invoke(last);
  ASSERT_TRUE(last_handle.ok()) << last_handle.status().to_string();

  std::vector<api::RunHandle> all = *handles;
  all.push_back(*last_handle);
  for (const auto& handle : all) {
    EXPECT_EQ(handle.wait(), api::RunStatus::kCompleted);
    auto result = handle.result();
    ASSERT_TRUE(result.ok());
    for (const auto& task : result->tasks) {
      if (task.kind == workflow::TaskKind::kQuantum) {
        EXPECT_NE(task.resource, names[0]) << "scheduled onto a reserved QPU";
      }
    }
  }

  // Release returns it to rotation; the error paths are typed.
  api::ReleaseQpuRequest release;
  release.qpu = names[0];
  ASSERT_TRUE(client.releaseQpu(release).ok());
  EXPECT_EQ(client.releaseQpu(release).status().code(),
            api::StatusCode::kFailedPrecondition);
  api::ReserveQpuRequest unknown;
  unknown.qpu = "no-such-qpu";
  EXPECT_EQ(client.reserveQpu(unknown).status().code(), api::StatusCode::kNotFound);
}

// §7 reservation time windows: a reservation with duration_seconds holds
// against every scheduling snapshot mid-window, then auto-releases at the
// first cycle firing at/after the virtual deadline — that very cycle
// already schedules onto the released QPU.
TEST(BatchServing, ReservationWindowAutoReleasesAtVirtualDeadline) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 83;
  config.trajectory_width_limit = 8;
  config.scheduler_service.queue_threshold = 100;  // timer-only cycles…
  config.scheduler_service.interval_seconds = 60.0;  // …at t=60, 120, …
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "window", circuit::ghz(3));
  const auto names = client.backend().monitor().qpu_names();
  ASSERT_EQ(names.size(), 2u);
  // The window's QPU is the only healthy one: mid-window snapshots see an
  // empty fleet, post-window snapshots see it again.
  ASSERT_TRUE(client.backend().monitor().set_qpu_online(names[1], false).has_value());

  // The duration is validated like every other preference.
  api::ReserveQpuRequest bad;
  bad.qpu = names[0];
  bad.duration_seconds = 0.0;
  EXPECT_EQ(client.reserveQpu(bad).status().code(), api::StatusCode::kInvalidArgument);

  api::ReserveQpuRequest reserve;
  reserve.qpu = names[0];
  reserve.duration_seconds = 100.0;  // release_at t=100, between the cycles
  auto reserved = client.reserveQpu(reserve);
  ASSERT_TRUE(reserved.ok()) << reserved.status().to_string();
  ASSERT_TRUE(reserved->release_at.has_value());
  EXPECT_DOUBLE_EQ(*reserved->release_at, 100.0);

  // Mid-window: the timer cycle at t=60 < 100 still honors the
  // reservation — with the sibling offline, the job is filtered.
  api::InvokeRequest request;
  request.image = image;
  auto mid_window = client.invoke(request);
  ASSERT_TRUE(mid_window.ok()) << mid_window.status().to_string();
  EXPECT_EQ(mid_window->wait(), api::RunStatus::kFailed);
  auto mid_result = mid_window->result();
  ASSERT_TRUE(mid_result.ok());
  EXPECT_EQ(mid_result->error.code(), api::StatusCode::kResourceExhausted);

  // Post-window: the next timer cycle fires at t=120 >= 100, auto-releases
  // the window and schedules this very batch onto the released QPU.
  auto post_window = client.invoke(request);
  ASSERT_TRUE(post_window.ok()) << post_window.status().to_string();
  EXPECT_EQ(post_window->wait(), api::RunStatus::kCompleted);
  auto post_result = post_window->result();
  ASSERT_TRUE(post_result.ok());
  ASSERT_EQ(post_result->tasks.size(), 1u);
  EXPECT_EQ(post_result->tasks[0].resource, names[0]);

  // The flag is gone for good: releasing again is a typed precondition
  // failure, and a fresh open-ended reservation starts from a clean slate.
  api::ReleaseQpuRequest release;
  release.qpu = names[0];
  EXPECT_EQ(client.releaseQpu(release).status().code(),
            api::StatusCode::kFailedPrecondition);
  api::ReserveQpuRequest open_ended;
  open_ended.qpu = names[0];
  auto again = client.reserveQpu(open_ended);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->release_at.has_value());
  ASSERT_TRUE(client.releaseQpu(release).ok());
}

// Reservation (§7) and health are independent bits: reserving a faulted
// QPU is legal, and releasing the reservation must not bring it back into
// rotation.
TEST(BatchServing, ReservationDoesNotMaskQpuHealth) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 71;
  api::QonductorClient client(config);
  auto& monitor = client.backend().monitor();
  const auto names = monitor.qpu_names();
  ASSERT_EQ(names.size(), 2u);

  // Device manager takes the QPU down for health reasons (atomic flag
  // setter — a raw qpu()/update_qpu() read-modify-write could race a
  // concurrent reservation).
  ASSERT_TRUE(monitor.set_qpu_online(names[0], false).has_value());

  // It is down, not reserved: reserve succeeds (it is not ALREADY_EXISTS).
  api::ReserveQpuRequest reserve;
  reserve.qpu = names[0];
  ASSERT_TRUE(client.reserveQpu(reserve).ok());
  // Releasing the reservation leaves the health flag alone.
  api::ReleaseQpuRequest release;
  release.qpu = names[0];
  ASSERT_TRUE(client.releaseQpu(release).ok());
  const auto after = *monitor.qpu(names[0]);
  EXPECT_FALSE(after.online);    // still faulted
  EXPECT_FALSE(after.reserved);  // no longer reserved
}

// End-to-end QoS deadline: a run whose task is parked past its deadline
// fails with the typed DEADLINE_EXCEEDED and executes nothing.
TEST(BatchServing, DeadlinePreferenceFailsTypedDeadlineExceeded) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 59;
  config.scheduler_service.queue_threshold = 100;   // only the timer fires…
  config.scheduler_service.interval_seconds = 120.0;  // …at t=120, past the deadline
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "deadline", circuit::ghz(3));

  api::InvokeRequest request;
  request.image = image;
  request.preferences.deadline_seconds = 10.0;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  EXPECT_EQ(handle->wait(), api::RunStatus::kFailed);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result->tasks.empty());  // no QPU consumed

  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.jobs_expired, 1u);
  EXPECT_EQ(stats->stats.jobs_scheduled, 0u);

  // The expiry cycle advanced the fleet clock: a run that missed t=10
  // must not report finishing before t=10.
  auto info = client.getRun(handle->id());
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->finished_at, 10.0);
}

// ROADMAP open item: a burst of runs of one image transpiles its circuits
// once — every later run hits the (image task, calibration) prep cache.
TEST(BatchServing, BurstHitsThePrepCache) {
  constexpr std::size_t kRuns = 6;
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 67;
  config.trajectory_width_limit = 8;
  config.executor_threads = 1;  // sequential executors: deterministic hits
  config.scheduler_service.mode = SchedulingMode::kImmediate;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "prep-cache", circuit::ghz(3));

  for (std::size_t i = 0; i < kRuns; ++i) {
    api::InvokeRequest request;
    request.image = image;
    auto handle = client.invoke(request);
    ASSERT_TRUE(handle.ok());
    EXPECT_EQ(handle->wait(), api::RunStatus::kCompleted);
  }
  EXPECT_EQ(client.backend().prepCacheMisses(), 1u);
  EXPECT_EQ(client.backend().prepCacheHits(), kRuns - 1);
}

TEST(BatchServing, OfflineFleetFailsRunsResourceExhausted) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 11;
  config.scheduler_service.linger = 5ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "offline", circuit::ghz(3));
  take_fleet_offline(client);

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  EXPECT_EQ(handle->wait(), api::RunStatus::kFailed);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kResourceExhausted);

  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.jobs_filtered, 1u);
}

TEST(BatchServing, ShutdownDrainsThePendingQueue) {
  constexpr std::size_t kRuns = 8;
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 23;
  config.trajectory_width_limit = 8;
  config.executor_threads = kRuns;
  // The threshold is unreachable and the linger long: when shutdown()
  // arrives, the tasks are still parked and only the drain can finish them.
  config.scheduler_service.queue_threshold = 100;
  config.scheduler_service.linger = 150ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "drain", circuit::ghz(3));

  std::vector<api::InvokeRequest> requests(kRuns);
  for (auto& request : requests) request.image = image;
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();

  client.backend().shutdown();  // drains the executor AND the pending queue

  for (const auto& handle : *handles) {
    EXPECT_EQ(handle.poll(), api::RunStatus::kCompleted);
  }
  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.jobs_scheduled, kRuns);
  EXPECT_EQ(stats->stats.queue_depth, 0u);

  api::InvokeRequest late;
  late.image = image;
  auto rejected = client.invoke(late);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), api::StatusCode::kUnavailable);
}

TEST(BatchServing, ImmediateModeIsTheExplicitFallback) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 31;
  config.trajectory_width_limit = 8;
  config.scheduler_service.mode = SchedulingMode::kImmediate;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "immediate", circuit::ghz(3));

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  EXPECT_EQ(handle->wait(), api::RunStatus::kCompleted);

  // No scheduler service runs: the stats surface answers with zero cycles.
  auto stats = client.getSchedulerStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->config.mode, api::SchedulingMode::kImmediate);
  EXPECT_EQ(stats->stats.cycles, 0u);
  EXPECT_EQ(stats->stats.jobs_scheduled, 0u);
}

TEST(BatchServing, ImmediateModeOfflineFleetIsTypedResourceExhausted) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 37;
  config.scheduler_service.mode = SchedulingMode::kImmediate;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "immediate-offline", circuit::ghz(3));
  take_fleet_offline(client);

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->wait(), api::RunStatus::kFailed);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kResourceExhausted);
}

TEST(BatchServing, BadSchedulerKnobsSurfaceAsInvalidArgument) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.scheduler_service.queue_threshold = 0;  // ScheduleTrigger would throw
  api::QonductorClient client(config);  // must not throw
  const auto image = deploy_quantum(client, "bad-knobs", circuit::ghz(3));

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), api::StatusCode::kInvalidArgument);
  auto batch = client.invokeAll({request});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), api::StatusCode::kInvalidArgument);

  QonductorConfig bad_weight;
  bad_weight.num_qpus = 2;
  bad_weight.fidelity_weight = 1.5;  // schedule_cycle would throw
  api::QonductorClient weight_client(bad_weight);
  const auto weight_image = deploy_quantum(weight_client, "bad-weight", circuit::ghz(3));
  api::InvokeRequest weight_request;
  weight_request.image = weight_image;
  auto weight_handle = weight_client.invoke(weight_request);
  ASSERT_FALSE(weight_handle.ok());
  EXPECT_EQ(weight_handle.status().code(), api::StatusCode::kInvalidArgument);
}

// Deadline-boundary regression, site 2 of 3 (the mid-batch filter): the
// fleet frontier can overshoot the cycle's fire time while the snapshot is
// taken, landing exactly on a batched job's deadline. Dispatch at that
// instant has zero slack — the job must fail DEADLINE_EXCEEDED, not
// execute at its deadline (the old strict `<` let it through).
TEST(SchedulerService, MidBatchFilterUsesInclusiveDeadlineBoundary) {
  std::atomic<double> clock{0.0};
  SchedulerServiceHooks hooks;
  hooks.now = [&clock] { return clock.load(); };
  hooks.snapshot_qpus = [&clock](double advance_to) {
    // Overshoot: a concurrent dispatch advanced the frontier to t=70
    // while this threshold cycle (fired at t=0) snapshotted.
    clock.store(std::max(advance_to, 70.0));
    std::vector<sched::QpuState> qpus;
    for (int q = 0; q < 2; ++q) {
      qpus.push_back({"fake" + std::to_string(q), 27, 0.0, true});
    }
    return qpus;
  };
  SchedulerServiceConfig config;
  config.queue_threshold = 2;
  config.linger = 10s;  // only the threshold fires
  SchedulerService service(config, 7, {}, std::move(hooks));

  auto boundary = make_task(1, 4, 2);
  boundary->deadline_seconds = 70.0;  // == the post-snapshot frontier exactly
  auto alive = make_task(2, 4, 2);
  alive->deadline_seconds = 1000.0;
  ASSERT_TRUE(service.enqueue(boundary));
  ASSERT_TRUE(service.enqueue(alive));
  boundary->await();
  alive->await();

  EXPECT_EQ(boundary->error.code(), api::StatusCode::kDeadlineExceeded);
  EXPECT_LT(boundary->assigned_qpu, 0);  // never reached a QPU
  EXPECT_TRUE(alive->error.ok()) << alive->error.to_string();
  EXPECT_GE(alive->assigned_qpu, 0);

  const auto stats = service.stats();
  EXPECT_EQ(stats.jobs_expired, 1u);
  EXPECT_EQ(stats.jobs_scheduled, 1u);
  service.shutdown();
}

// Satellite regression: enqueue/offer against a closing queue. The service
// must reject the hand-off — and the orchestrator call site settles the run
// with a typed UNAVAILABLE (covered end to end below in
// BatchServing.ShutdownRacingAnEngineStepFailsTheRunUnavailable).
TEST(SchedulerService, OfferAfterShutdownIsRejectedAsClosed) {
  FakeEngine engine(2);
  SchedulerServiceConfig config;
  SchedulerService service(config, 7, {}, engine.hooks());
  service.shutdown();
  EXPECT_FALSE(service.enqueue(make_task(1, 4, 2)));
  EXPECT_EQ(service.offer(make_task(2, 4, 2)), PendingQueue::Offer::kClosed);
}

// Overload relief at the service level: offers beyond the queue capacity
// waitlist (never block), the waitlist drains into later cycles, and every
// task still gets a verdict.
TEST(SchedulerService, OffersBeyondCapacityWaitlistAndDrainThroughCycles) {
  FakeEngine engine(2);
  SchedulerServiceConfig config;
  config.queue_threshold = 2;
  config.queue_capacity = 2;
  config.max_batch_size = 2;
  config.linger = 50ms;
  SchedulerService service(config, 7, {}, engine.hooks());

  // Six offers against a 2-slot queue, from this one thread: with blocking
  // push this would deadlock (no consumer progress until we return); offer
  // must return immediately for all six.
  std::vector<std::shared_ptr<PendingQuantumTask>> tasks;
  for (api::RunId r = 1; r <= 6; ++r) {
    tasks.push_back(make_task(r, 4, 2));
    ASSERT_NE(service.offer(tasks.back()), PendingQueue::Offer::kClosed);
  }
  for (const auto& task : tasks) {
    task->await();
    EXPECT_TRUE(task->error.ok()) << task->error.to_string();
    EXPECT_GE(task->assigned_qpu, 0);
  }
  EXPECT_GE(service.waitlist_parks(), 1u);
  EXPECT_EQ(service.waitlist_depth(), 0u);  // fully drained
  service.shutdown();
}

// ---- admission control (the front-door gate) ---------------------------------

TEST(AdmissionControl, ValidatesConfigWithoutThrowing) {
  AdmissionConfig off;  // max_live_runs = 0: gate disabled, knobs ignored
  off.shed_batch_at = -3.0;
  EXPECT_TRUE(validate_admission_config(off).ok());

  AdmissionConfig good;
  good.max_live_runs = 100;
  EXPECT_TRUE(validate_admission_config(good).ok());

  AdmissionConfig bad_fraction = good;
  bad_fraction.shed_batch_at = 0.0;
  EXPECT_EQ(validate_admission_config(bad_fraction).code(),
            api::StatusCode::kInvalidArgument);

  AdmissionConfig inverted = good;
  inverted.shed_batch_at = 0.9;
  inverted.shed_standard_at = 0.5;  // batch would outlive standard under load
  EXPECT_EQ(validate_admission_config(inverted).code(),
            api::StatusCode::kInvalidArgument);

  AdmissionConfig bad_retry = good;
  bad_retry.retry_after_seconds = 0.0;
  EXPECT_EQ(validate_admission_config(bad_retry).code(),
            api::StatusCode::kInvalidArgument);

  // A bad admission config surfaces as INVALID_ARGUMENT from invoke(),
  // never as an exception from the constructor.
  QonductorConfig config;
  config.num_qpus = 2;
  config.admission.max_live_runs = 10;
  config.admission.retry_after_seconds = -1.0;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "bad-admission", circuit::ghz(3));
  api::InvokeRequest request;
  request.image = image;
  EXPECT_EQ(client.invoke(request).status().code(), api::StatusCode::kInvalidArgument);
}

// The shedding staircase: with max_live_runs=4, batch sheds at 2 live
// runs, standard at 3, interactive only at the full bound — each shed is a
// typed RESOURCE_EXHAUSTED carrying the configured retry-after hint, and
// the gate reopens as runs leave the system.
TEST(AdmissionControl, ShedsByPriorityClassWithRetryAfter) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 97;
  config.executor_threads = 8;
  config.scheduler_service.queue_threshold = 100;  // parked runs stay live…
  config.scheduler_service.linger = 10s;           // …for the whole test
  config.admission.max_live_runs = 4;
  config.admission.shed_batch_at = 0.5;     // batch limit: 2
  config.admission.shed_standard_at = 0.75; // standard limit: 3
  config.admission.retry_after_seconds = 2.5;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "shed", circuit::ghz(3));

  const auto invoke_as = [&](api::Priority priority) {
    api::InvokeRequest request;
    request.image = image;
    request.preferences.priority = priority;
    return client.invoke(request);
  };

  // 2 batch runs fill the batch share; the third is shed.
  std::vector<api::RunHandle> live;
  for (int i = 0; i < 2; ++i) {
    auto handle = invoke_as(api::Priority::kBatch);
    ASSERT_TRUE(handle.ok()) << handle.status().to_string();
    live.push_back(*std::move(handle));
  }
  auto shed_batch = invoke_as(api::Priority::kBatch);
  ASSERT_FALSE(shed_batch.ok());
  EXPECT_EQ(shed_batch.status().code(), api::StatusCode::kResourceExhausted);
  ASSERT_TRUE(shed_batch.status().retry_after_seconds().has_value());
  EXPECT_DOUBLE_EQ(*shed_batch.status().retry_after_seconds(), 2.5);

  // Standard still fits (limit 3)… once.
  auto standard = invoke_as(api::Priority::kStandard);
  ASSERT_TRUE(standard.ok()) << standard.status().to_string();
  live.push_back(*std::move(standard));
  auto shed_standard = invoke_as(api::Priority::kStandard);
  ASSERT_FALSE(shed_standard.ok());
  EXPECT_EQ(shed_standard.status().code(), api::StatusCode::kResourceExhausted);

  // Interactive gets the full bound: one more admit, then even it sheds.
  auto interactive = invoke_as(api::Priority::kInteractive);
  ASSERT_TRUE(interactive.ok()) << interactive.status().to_string();
  live.push_back(*std::move(interactive));
  auto shed_interactive = invoke_as(api::Priority::kInteractive);
  ASSERT_FALSE(shed_interactive.ok());
  EXPECT_EQ(shed_interactive.status().code(), api::StatusCode::kResourceExhausted);
  EXPECT_TRUE(shed_interactive.status().retry_after_seconds().has_value());

  auto stats = client.getAdmissionStats();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats->stats.accepted[static_cast<std::size_t>(api::Priority::kBatch)], 2u);
  EXPECT_EQ(stats->stats.accepted[static_cast<std::size_t>(api::Priority::kStandard)], 1u);
  EXPECT_EQ(stats->stats.accepted[static_cast<std::size_t>(api::Priority::kInteractive)], 1u);
  EXPECT_EQ(stats->stats.shed[static_cast<std::size_t>(api::Priority::kBatch)], 1u);
  EXPECT_EQ(stats->stats.shed[static_cast<std::size_t>(api::Priority::kStandard)], 1u);
  EXPECT_EQ(stats->stats.shed[static_cast<std::size_t>(api::Priority::kInteractive)], 1u);
  EXPECT_EQ(stats->stats.live_runs, 4u);
  EXPECT_EQ(stats->stats.max_live_runs, 4u);

  // Runs leaving the system reopen the gate.
  for (auto& handle : live) {
    EXPECT_TRUE(handle.cancel());
    EXPECT_EQ(handle.wait(), api::RunStatus::kCancelled);
  }
  for (int i = 0; i < 5000; ++i) {
    auto drained = client.getAdmissionStats();
    ASSERT_TRUE(drained.ok());
    if (drained->stats.live_runs == 0) break;
    std::this_thread::sleep_for(1ms);
  }
  auto reopened = invoke_as(api::Priority::kBatch);
  ASSERT_TRUE(reopened.ok()) << reopened.status().to_string();
  EXPECT_TRUE(reopened->cancel());
}

// invokeAll admits atomically, counting the batch's own entries against
// the bound: one shed rejects the whole batch (nothing started) with the
// index-prefixed message and the retry-after hint intact.
TEST(AdmissionControl, InvokeAllShedsAtomically) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 89;
  config.scheduler_service.queue_threshold = 100;
  config.scheduler_service.linger = 10s;
  config.admission.max_live_runs = 4;
  config.admission.shed_batch_at = 0.5;  // batch limit: 2
  config.admission.retry_after_seconds = 1.5;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "shed-all", circuit::ghz(3));

  std::vector<api::InvokeRequest> requests(3);
  for (auto& request : requests) {
    request.image = image;
    request.preferences.priority = api::Priority::kBatch;
  }
  auto handles = client.invokeAll(requests);
  ASSERT_FALSE(handles.ok());
  EXPECT_EQ(handles.status().code(), api::StatusCode::kResourceExhausted);
  EXPECT_NE(handles.status().message().find("invokeAll[2]:"), std::string::npos)
      << handles.status().message();
  ASSERT_TRUE(handles.status().retry_after_seconds().has_value());
  EXPECT_DOUBLE_EQ(*handles.status().retry_after_seconds(), 1.5);

  // Atomic: nothing was admitted or started.
  auto stats = client.getAdmissionStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.live_runs, 0u);
  for (const auto accepted : stats->stats.accepted) EXPECT_EQ(accepted, 0u);
}

// ---- more end-to-end serving-path coverage -----------------------------------

// Deadline-boundary regression, site 3 of 3 (the immediate path): a
// classical prep task advances the fleet clock to exactly the quantum
// task's deadline, so dispatch would happen AT the deadline with zero
// slack — the run must fail DEADLINE_EXCEEDED. (Submit-time admission
// passes: the deadline lies beyond the frontier at invoke.)
TEST(BatchServing, ImmediateDispatchExactlyAtDeadlineIsAMiss) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 101;
  config.scheduler_service.mode = SchedulingMode::kImmediate;
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "boundary";
  // chain_workflow wires prep -> ghz: the quantum task is ready at t=0.25.
  create.tasks.push_back(workflow::HybridTask::classical("prep", 0.25));
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(3), 128));
  auto created = client.createWorkflow(std::move(create));
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  api::DeployRequest deploy;
  deploy.image = created->image;
  ASSERT_TRUE(client.deploy(deploy).ok());

  api::InvokeRequest request;
  request.image = created->image;
  request.preferences.deadline_seconds = 0.25;  // == the dispatch instant
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  EXPECT_EQ(handle->wait(), api::RunStatus::kFailed);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kDeadlineExceeded);
}

// Satellite regression: a scheduler-service shutdown racing a late engine
// step. The on_task_start observer fires right before the quantum task
// parks — shutting the service down there forces the offer to hit a closed
// queue, and the run must settle with a typed UNAVAILABLE instead of the
// task being silently dropped (which would leave the run in-flight
// forever).
TEST(BatchServing, ShutdownRacingAnEngineStepFailsTheRunUnavailable) {
  QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 103;
  config.scheduler_service.queue_threshold = 100;
  config.scheduler_service.linger = 10s;
  core::Qonductor* backend = nullptr;
  std::atomic<bool> closed{false};
  config.on_task_start = [&](RunId, const std::string& name) {
    if (name == "ghz" && !closed.exchange(true)) {
      backend->schedulerService()->shutdown();
    }
  };
  api::QonductorClient client(config);
  backend = &client.backend();
  const auto image = deploy_quantum(client, "shutdown-race", circuit::ghz(3));

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  EXPECT_EQ(handle->wait(), api::RunStatus::kFailed);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->error.code(), api::StatusCode::kUnavailable);
  EXPECT_NE(result->error.message().find("shutting down"), std::string::npos)
      << result->error.message();
  EXPECT_TRUE(closed.load());
}

// The overload acceptance scenario scaled to a test: a flood of runs
// against a tiny queue completes with engine workers never blocking in
// push — the surplus takes the waitlist path (asserted via waitlist_parks)
// and drains FIFO-by-priority through later cycles.
TEST(BatchServing, FloodAgainstTinyQueueRidesTheWaitlist) {
  constexpr std::size_t kRuns = 64;
  QonductorConfig config;
  config.num_qpus = 4;
  config.seed = 107;
  config.trajectory_width_limit = 0;  // analytic model: fast flood
  config.executor_threads = 4;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 8;
  config.scheduler_service.queue_capacity = 8;  // 64 runs vs 8 slots
  config.scheduler_service.max_batch_size = 4;
  config.scheduler_service.linger = 50ms;
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "flood", circuit::ghz(3));

  std::vector<api::InvokeRequest> requests(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    requests[i].image = image;
    requests[i].preferences.priority =
        static_cast<api::Priority>(i % api::kNumPriorities);
  }
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();
  for (const auto& handle : *handles) {
    EXPECT_EQ(handle.wait(), api::RunStatus::kCompleted);
  }

  auto admission = client.getAdmissionStats();
  ASSERT_TRUE(admission.ok()) << admission.status().to_string();
  // The flood overran the 8-slot queue: the surplus took the non-blocking
  // waitlist path instead of convoying the 4 engine workers…
  EXPECT_GE(admission->stats.waitlist_parks, 1u);
  EXPECT_GE(admission->stats.waitlist_high_watermark, 1u);
  // …and everything drained: no task is left parked anywhere.
  EXPECT_EQ(admission->stats.waitlist_depth, 0u);
  auto sched_stats = client.getSchedulerStats();
  ASSERT_TRUE(sched_stats.ok());
  EXPECT_EQ(sched_stats->stats.queue_depth, 0u);
  EXPECT_EQ(sched_stats->stats.jobs_scheduled, kRuns);
  // The queue itself never exceeded its bound pre-shutdown.
  EXPECT_LE(sched_stats->stats.queue_high_watermark,
            config.scheduler_service.queue_capacity);
}

}  // namespace
}  // namespace qon::core
