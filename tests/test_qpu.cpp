// Tests for topologies, calibration sampling/drift and the fleet factory.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "qpu/backend.hpp"
#include "qpu/calibration.hpp"
#include "qpu/fleet.hpp"
#include "qpu/topology.hpp"

namespace qon::qpu {
namespace {

TEST(Topology, LineProperties) {
  const auto t = Topology::line(5);
  EXPECT_EQ(t.num_qubits(), 5);
  EXPECT_EQ(t.edges().size(), 4u);
  EXPECT_TRUE(t.connected(2, 3));
  EXPECT_FALSE(t.connected(0, 4));
  EXPECT_EQ(t.distance(0, 4), 4);
  EXPECT_TRUE(t.is_connected());
}

TEST(Topology, RingWrapsAround) {
  const auto t = Topology::ring(6);
  EXPECT_EQ(t.edges().size(), 6u);
  EXPECT_TRUE(t.connected(0, 5));
  EXPECT_EQ(t.distance(0, 3), 3);
  EXPECT_EQ(t.distance(0, 5), 1);
}

TEST(Topology, GridDimensions) {
  const auto t = Topology::grid(3, 4);
  EXPECT_EQ(t.num_qubits(), 12);
  // 3*3 horizontal + 2*4 vertical = 17 edges.
  EXPECT_EQ(t.edges().size(), 17u);
  EXPECT_EQ(t.distance(0, 11), 5);  // manhattan distance corner to corner
}

TEST(Topology, HeavyHexFalcon27Structure) {
  const auto t = Topology::heavy_hex_falcon27();
  EXPECT_EQ(t.num_qubits(), 27);
  EXPECT_EQ(t.edges().size(), 28u);
  EXPECT_TRUE(t.is_connected());
  // Heavy-hex degree is bounded by 3.
  for (const auto& neighbors : t.adjacency()) {
    EXPECT_LE(neighbors.size(), 3u);
    EXPECT_GE(neighbors.size(), 1u);
  }
}

TEST(Topology, FullyConnectedDistanceIsOne) {
  const auto t = Topology::fully_connected(5);
  EXPECT_EQ(t.edges().size(), 10u);
  EXPECT_EQ(t.distance(0, 4), 1);
}

TEST(Topology, RejectsInvalidEdges) {
  EXPECT_THROW(Topology(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Topology(2, {{0, 5}}), std::out_of_range);
  EXPECT_THROW(Topology(0, {}), std::invalid_argument);
}

TEST(Topology, DeduplicatesEdges) {
  const Topology t(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(t.edges().size(), 1u);
}

TEST(Calibration, SampleCoversTopology) {
  Rng rng(5);
  const auto topo = Topology::heavy_hex_falcon27();
  const auto cal = sample_calibration(topo, CalibrationProfile{}, rng);
  EXPECT_EQ(cal.qubits.size(), 27u);
  EXPECT_EQ(cal.edges.size(), topo.edges().size());
  for (const auto& q : cal.qubits) {
    EXPECT_GT(q.t1, 0.0);
    EXPECT_GT(q.t2, 0.0);
    EXPECT_LE(q.t2, 2.0 * q.t1);  // physical constraint
    EXPECT_GT(q.readout_error, 0.0);
    EXPECT_LE(q.readout_error, 0.5);
  }
  EXPECT_NO_THROW(cal.edge(1, 0));
  EXPECT_THROW(cal.edge(0, 26), std::out_of_range);
}

TEST(Calibration, QualityScalesErrors) {
  Rng rng1(9);
  Rng rng2(9);
  CalibrationProfile good;
  good.quality = 0.5;
  CalibrationProfile bad;
  bad.quality = 2.0;
  const auto topo = Topology::line(10);
  const auto cal_good = sample_calibration(topo, good, rng1);
  const auto cal_bad = sample_calibration(topo, bad, rng2);
  EXPECT_LT(cal_good.mean_gate_error_2q(), cal_bad.mean_gate_error_2q());
  EXPECT_LT(cal_good.mean_readout_error(), cal_bad.mean_readout_error());
  EXPECT_GT(cal_good.mean_t1(), cal_bad.mean_t1());
}

TEST(Calibration, DriftChangesValuesButStaysSane) {
  Rng rng(13);
  const auto topo = Topology::heavy_hex_falcon27();
  auto cal = sample_calibration(topo, CalibrationProfile{}, rng);
  const CalibrationDrift drift{CalibrationProfile{}};
  const auto next = drift.next(cal, rng);
  EXPECT_EQ(next.cycle, cal.cycle + 1);
  bool any_changed = false;
  for (std::size_t q = 0; q < cal.qubits.size(); ++q) {
    if (std::abs(next.qubits[q].readout_error - cal.qubits[q].readout_error) > 1e-12) {
      any_changed = true;
    }
    EXPECT_GT(next.qubits[q].readout_error, 0.0);
    EXPECT_LE(next.qubits[q].readout_error, 0.5);
    EXPECT_LE(next.qubits[q].t2, 2.0 * next.qubits[q].t1);
  }
  EXPECT_TRUE(any_changed);
}

TEST(Calibration, DriftMeanRevertsOverManyCycles) {
  Rng rng(17);
  const auto topo = Topology::line(8);
  CalibrationProfile profile;
  auto cal = sample_calibration(topo, profile, rng);
  // Push the first qubit's error far above the median, then drift.
  cal.qubits[0].gate_error_1q = 0.2;
  const CalibrationDrift drift{profile};
  for (int i = 0; i < 50; ++i) cal = drift.next(cal, rng);
  // Should have reverted to within an order of magnitude of the median.
  EXPECT_LT(cal.qubits[0].gate_error_1q, 0.05);
}

TEST(Calibration, DriftValidatesParameters) {
  EXPECT_THROW(CalibrationDrift(CalibrationProfile{}, -0.1), std::invalid_argument);
  EXPECT_THROW(CalibrationDrift(CalibrationProfile{}, 0.1, 1.5), std::invalid_argument);
}

TEST(Backend, ConstructionValidatesWidth) {
  Rng rng(19);
  auto model = std::make_shared<QpuModel>();
  model->name = "m";
  model->topology = Topology::line(4);
  model->basis_gates = falcon_basis();
  auto cal = sample_calibration(Topology::line(3), CalibrationProfile{}, rng);
  EXPECT_THROW(Backend("x", model, cal, CalibrationProfile{}), std::invalid_argument);
}

TEST(Backend, BasisMembership) {
  QpuModel model;
  model.basis_gates = falcon_basis();
  EXPECT_TRUE(model.in_basis(circuit::GateKind::kCX));
  EXPECT_TRUE(model.in_basis(circuit::GateKind::kMeasure));  // always legal
  EXPECT_TRUE(model.in_basis(circuit::GateKind::kBarrier));
  EXPECT_FALSE(model.in_basis(circuit::GateKind::kH));
  EXPECT_FALSE(model.in_basis(circuit::GateKind::kSwap));
}

TEST(Backend, RecalibrateAdvancesCycle) {
  auto fleet = make_ibm_like_fleet(2, 23);
  auto b = fleet.backends[0];
  Rng rng(29);
  const auto before = b->calibration().cycle;
  b->recalibrate(fleet.drift, rng, 3600.0);
  EXPECT_EQ(b->calibration().cycle, before + 1);
  EXPECT_DOUBLE_EQ(b->calibration().timestamp, 3600.0);
}

TEST(Fleet, NamesAndSizes) {
  const auto fleet = make_ibm_like_fleet(8, 42);
  ASSERT_EQ(fleet.backends.size(), 8u);
  std::set<std::string> names;
  for (const auto& b : fleet.backends) {
    names.insert(b->name());
    EXPECT_EQ(b->num_qubits(), 27);
  }
  EXPECT_EQ(names.size(), 8u);  // unique names
  EXPECT_NO_THROW(fleet.backend("auckland"));
  EXPECT_THROW(fleet.backend("nonexistent"), std::out_of_range);
}

TEST(Fleet, QualitySpreadProducesFidelityVariance) {
  const auto fleet = make_ibm_like_fleet(6, 7);
  std::vector<double> mean_errors;
  for (const auto& b : fleet.backends) {
    mean_errors.push_back(b->calibration().mean_gate_error_2q());
  }
  const double lo = *std::min_element(mean_errors.begin(), mean_errors.end());
  const double hi = *std::max_element(mean_errors.begin(), mean_errors.end());
  // Spatial heterogeneity: the default quality band spans ~2.15x in error,
  // so sampled means should spread by at least 1.5x (Fig. 2b).
  EXPECT_GT(hi / lo, 1.5);
}

TEST(Fleet, TemplateBackendAveragesCalibrations) {
  const auto fleet = make_ibm_like_fleet(4, 31);
  const auto templates = fleet.template_backends();
  ASSERT_EQ(templates.size(), 1u);  // one model in the fleet
  const auto& tmpl = templates[0];
  EXPECT_EQ(tmpl.num_qubits(), 27);
  // The template's mean error equals the across-backend average.
  double expected = 0.0;
  for (const auto& b : fleet.backends) expected += b->calibration().mean_gate_error_2q();
  expected /= static_cast<double>(fleet.backends.size());
  EXPECT_NEAR(tmpl.calibration().mean_gate_error_2q(), expected, 1e-12);
}

TEST(Fleet, RecalibrateAllAdvancesEveryBackend) {
  auto fleet = make_ibm_like_fleet(3, 37);
  Rng rng(41);
  fleet.recalibrate_all(rng, 7200.0);
  for (const auto& b : fleet.backends) {
    EXPECT_EQ(b->calibration().cycle, 1u);
    EXPECT_DOUBLE_EQ(b->calibration().timestamp, 7200.0);
  }
}

TEST(Fleet, DeterministicInSeed) {
  const auto a = make_ibm_like_fleet(4, 99);
  const auto b = make_ibm_like_fleet(4, 99);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.backends[i]->name(), b.backends[i]->name());
    EXPECT_DOUBLE_EQ(a.backends[i]->calibration().mean_gate_error_2q(),
                     b.backends[i]->calibration().mean_gate_error_2q());
  }
}

TEST(Fleet, RejectsBadArguments) {
  EXPECT_THROW(make_ibm_like_fleet(0, 1), std::invalid_argument);
  EXPECT_THROW(make_ibm_like_fleet(2, 1, 2.0, 1.0), std::invalid_argument);
}

TEST(TemplateBackend, RejectsModelMismatch) {
  auto fleet_a = make_ibm_like_fleet(1, 1);
  auto other_model = std::make_shared<QpuModel>();
  other_model->name = "different";
  other_model->topology = Topology::heavy_hex_falcon27();
  other_model->basis_gates = falcon_basis();
  std::vector<const Backend*> backends{fleet_a.backends[0].get()};
  EXPECT_THROW(make_template_backend(other_model, backends), std::invalid_argument);
  EXPECT_THROW(make_template_backend(other_model, {}), std::invalid_argument);
}

}  // namespace
}  // namespace qon::qpu
