// Run-table lifecycle suite: retention-policy unit tests (capacity/LRU,
// TTL, never-evict-in-flight, handle-outlives-eviction), a multi-threaded
// stress test over the table's whole surface (run under TSAN in CI), and
// an orchestrator-level listRuns/getRun round trip across eviction.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "common/rng.hpp"
#include "core/orchestrator.hpp"
#include "core/run_table.hpp"

namespace qon::core {
namespace {

std::shared_ptr<api::RunState> make_state() {
  return std::make_shared<api::RunState>();
}

/// Drives a record to a terminal state the way the executor would, so that
/// handle-level queries (poll/result) see a finished run.
void finish_state(const std::shared_ptr<api::RunState>& state, api::RunStatus status) {
  {
    MutexLock lock(state->mutex);
    state->status = status;
    state->result.run = state->id;
    state->result.status = status;
  }
  state->cv.notify_all();
}

// ---- retention policy --------------------------------------------------------

TEST(RunTable, InsertAssignsMonotonicIdsAndStampsRecord) {
  RunTable table;
  const auto a = make_state();
  const auto b = make_state();
  EXPECT_EQ(table.insert(a), 1u);
  EXPECT_EQ(table.insert(b), 2u);
  EXPECT_EQ(a->id, 1u);
  EXPECT_EQ(b->id, 2u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.find(1), a);
  EXPECT_EQ(table.find(3), nullptr);
}

TEST(RunTable, CapacityEvictsLeastRecentlyUsedTerminalRun) {
  RunRetentionPolicy policy;
  policy.max_terminal_runs = 2;
  RunTable table(policy);
  std::vector<api::RunId> evicted;
  table.set_eviction_observer([&evicted](api::RunId id) { evicted.push_back(id); });

  for (int i = 0; i < 3; ++i) table.insert(make_state());
  table.mark_terminal(1);
  table.mark_terminal(2);
  EXPECT_EQ(table.size(), 3u);  // within budget: nothing evicted
  EXPECT_TRUE(evicted.empty());

  table.mark_terminal(3);  // over budget: the oldest terminal run goes
  EXPECT_EQ(evicted, (std::vector<api::RunId>{1}));
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_NE(table.find(2), nullptr);
  EXPECT_NE(table.find(3), nullptr);
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_EQ(table.terminal_count(), 2u);
}

TEST(RunTable, LookupRefreshesLruRecency) {
  RunRetentionPolicy policy;
  policy.max_terminal_runs = 2;
  RunTable table(policy);
  for (int i = 0; i < 3; ++i) table.insert(make_state());
  table.mark_terminal(1);
  table.mark_terminal(2);
  ASSERT_NE(table.find(1), nullptr);  // touch: run 1 becomes most recent
  table.mark_terminal(3);
  EXPECT_NE(table.find(1), nullptr);  // survived thanks to the touch
  EXPECT_EQ(table.find(2), nullptr);  // run 2 was the LRU victim instead
  EXPECT_NE(table.find(3), nullptr);
}

TEST(RunTable, TtlEvictsExpiredTerminalRuns) {
  double now = 0.0;
  RunRetentionPolicy policy;
  policy.terminal_ttl_seconds = 10.0;
  policy.clock = [&now] { return now; };
  RunTable table(policy);
  table.insert(make_state());
  table.insert(make_state());
  table.mark_terminal(1);  // terminal at t=0

  now = 5.0;
  EXPECT_NE(table.find(1), nullptr);  // younger than the TTL

  now = 15.0;
  EXPECT_EQ(table.find(1), nullptr);  // expired: lookup evicts and misses
  EXPECT_EQ(table.evictions(), 1u);
  EXPECT_NE(table.find(2), nullptr);  // in-flight: TTL does not apply
}

TEST(RunTable, SweepCollectsAllExpiredRuns) {
  double now = 0.0;
  RunRetentionPolicy policy;
  policy.terminal_ttl_seconds = 10.0;
  policy.clock = [&now] { return now; };
  RunTable table(policy);
  for (int i = 0; i < 4; ++i) table.insert(make_state());
  table.mark_terminal(1);
  table.mark_terminal(2);
  now = 8.0;
  table.mark_terminal(3);  // young terminal: must survive the sweep

  now = 12.0;  // runs 1-2 are 12s old, run 3 only 4s
  EXPECT_EQ(table.sweep(), 2u);
  EXPECT_EQ(table.find(1), nullptr);
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_NE(table.find(3), nullptr);
  EXPECT_NE(table.find(4), nullptr);  // still in flight
  EXPECT_EQ(table.sweep(), 0u);       // idempotent once clean
}

TEST(RunTable, InFlightRunsAreNeverEvicted) {
  double now = 0.0;
  RunRetentionPolicy policy;
  policy.max_terminal_runs = 1;
  policy.terminal_ttl_seconds = 1.0;
  policy.clock = [&now] { return now; };
  RunTable table(policy);
  for (int i = 0; i < 8; ++i) table.insert(make_state());

  now = 100.0;  // way past any TTL, way over any capacity
  table.sweep();
  EXPECT_EQ(table.size(), 8u);  // all in flight: pinned
  for (api::RunId id = 1; id <= 8; ++id) EXPECT_NE(table.find(id), nullptr);

  table.mark_terminal(5);
  table.mark_terminal(6);  // capacity 1: run 5 evicted, 6 retained
  EXPECT_EQ(table.find(5), nullptr);
  EXPECT_NE(table.find(6), nullptr);
  for (api::RunId id : {1u, 2u, 3u, 4u, 7u, 8u}) {
    EXPECT_NE(table.find(id), nullptr) << "in-flight run " << id << " was evicted";
  }
}

TEST(RunTable, HandleOutlivesEviction) {
  RunRetentionPolicy policy;
  policy.max_terminal_runs = 1;
  RunTable table(policy);
  const auto state = make_state();
  table.insert(state);
  table.insert(make_state());
  api::RunHandle handle(state);

  finish_state(state, api::RunStatus::kCompleted);
  table.mark_terminal(1);
  table.mark_terminal(2);  // evicts run 1 (capacity 1)
  ASSERT_EQ(table.find(1), nullptr);

  // The shared record answers through the handle regardless of eviction.
  EXPECT_TRUE(handle.valid());
  EXPECT_EQ(handle.poll(), api::RunStatus::kCompleted);
  auto result = handle.result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->run, 1u);
  auto info = handle.info();
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->status, api::RunStatus::kCompleted);
}

TEST(RunTable, EraseRetractsWithoutCountingAsEviction) {
  RunTable table;
  table.insert(make_state());
  EXPECT_TRUE(table.erase(1));
  EXPECT_FALSE(table.erase(1));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.evictions(), 0u);
}

TEST(RunTable, MarkTerminalIgnoresUnknownAndRepeatedIds) {
  RunRetentionPolicy policy;
  policy.max_terminal_runs = 2;
  RunTable table(policy);
  table.insert(make_state());
  table.mark_terminal(99);  // unknown: no effect
  table.mark_terminal(1);
  table.mark_terminal(1);  // repeated: not double-counted in the LRU
  EXPECT_EQ(table.terminal_count(), 1u);
}

TEST(RunTable, ListAfterPagesInRunIdOrder) {
  RunRetentionPolicy policy;
  policy.max_terminal_runs = 2;
  RunTable table(policy);
  for (int i = 0; i < 5; ++i) table.insert(make_state());
  table.mark_terminal(1);
  table.mark_terminal(2);
  table.mark_terminal(3);  // evicts 1

  const auto all = table.list_after(0);
  ASSERT_EQ(all.size(), 4u);  // 2,3,4,5 — 1 was evicted
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->id, all[i]->id);
  }
  const auto tail = table.list_after(3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0]->id, 4u);
  EXPECT_EQ(tail[1]->id, 5u);
}

// ---- multi-threaded stress (run under TSAN in CI) ----------------------------

// N submitter threads insert runs and drive most of them to terminal states
// while M chaos threads concurrently poll, cancel, query, sweep and page
// the table. Invariants checked live and at the end:
//   - an in-flight run is never evicted,
//   - the terminal population respects the capacity bound (once settled),
//   - ids are unique and every surviving record is consistent.
TEST(RunTableStress, ConcurrentSubmitPollCancelEvict) {
  constexpr int kSubmitters = 4;
  constexpr int kChaos = 3;
  constexpr int kRunsPerSubmitter = 250;
  constexpr std::size_t kCapacity = 32;

  RunRetentionPolicy policy;
  policy.max_terminal_runs = kCapacity;
  RunTable table(policy);
  std::atomic<std::uint64_t> eviction_events{0};
  table.set_eviction_observer([&eviction_events](api::RunId) { ++eviction_events; });

  std::atomic<bool> stop{false};
  std::atomic<api::RunId> max_id{0};
  // Ids each submitter left in flight on purpose (never marked terminal).
  std::vector<std::vector<api::RunId>> in_flight(kSubmitters);

  std::vector<std::thread> threads;
  threads.reserve(kSubmitters + kChaos);
  for (int s = 0; s < kSubmitters; ++s) {
    threads.emplace_back([&, s] {
      Rng rng(1000 + static_cast<std::uint64_t>(s));
      for (int r = 0; r < kRunsPerSubmitter; ++r) {
        const auto state = make_state();
        const api::RunId id = table.insert(state);
        api::RunId seen = max_id.load();
        while (id > seen && !max_id.compare_exchange_weak(seen, id)) {
        }
        if (rng.uniform() < 0.9) {
          finish_state(state, rng.bernoulli(0.5) ? api::RunStatus::kCompleted
                                                 : api::RunStatus::kFailed);
          table.mark_terminal(id);
        } else {
          in_flight[static_cast<std::size_t>(s)].push_back(id);
        }
        // Interleave queries with submissions from the same thread.
        if (rng.bernoulli(0.25)) table.find(rng.uniform_int(1, static_cast<std::int64_t>(id)));
      }
    });
  }
  for (int c = 0; c < kChaos; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(9000 + static_cast<std::uint64_t>(c));
      while (!stop.load()) {
        const api::RunId upper = std::max<api::RunId>(1, max_id.load());
        const auto id =
            static_cast<api::RunId>(rng.uniform_int(1, static_cast<std::int64_t>(upper)));
        if (auto state = table.find(id)) {
          api::RunHandle handle(std::move(state));
          handle.poll();
          // Cooperative flag only (no executor involved); already-terminal
          // records legitimately refuse, so the verdict is not asserted.
          (void)handle.cancel();
          (void)handle.info();
        }
        if (rng.bernoulli(0.2)) table.sweep();
        if (rng.bernoulli(0.2)) {
          const auto page = table.list_after(rng.bernoulli(0.5) ? upper / 2 : 0);
          for (std::size_t i = 1; i < page.size(); ++i) {
            ASSERT_LT(page[i - 1]->id, page[i]->id);
          }
        }
        if (rng.bernoulli(0.1)) {
          table.terminal_count();
          table.evictions();
        }
      }
    });
  }
  for (int s = 0; s < kSubmitters; ++s) threads[static_cast<std::size_t>(s)].join();
  stop.store(true);
  for (int c = 0; c < kChaos; ++c) {
    threads[static_cast<std::size_t>(kSubmitters + c)].join();
  }

  // Every run intentionally left in flight survived the storm.
  std::size_t in_flight_total = 0;
  for (const auto& ids : in_flight) {
    in_flight_total += ids.size();
    for (const api::RunId id : ids) {
      ASSERT_NE(table.find(id), nullptr) << "in-flight run " << id << " was evicted";
    }
  }
  // Settled terminal population respects the capacity bound exactly.
  EXPECT_LE(table.terminal_count(), kCapacity);
  EXPECT_EQ(table.size(), in_flight_total + table.terminal_count());
  EXPECT_EQ(table.evictions(), eviction_events.load());
  // Ids in the final listing are unique and sorted.
  const auto survivors = table.list_after(0);
  std::set<api::RunId> ids;
  for (const auto& state : survivors) ids.insert(state->id);
  EXPECT_EQ(ids.size(), survivors.size());
}

// ---- orchestrator round trip -------------------------------------------------

class RunLifecycleFixture : public ::testing::Test {
 protected:
  static QonductorConfig config_with_retention(std::size_t max_terminal) {
    QonductorConfig config;
    config.num_qpus = 3;
    config.seed = 4242;
    config.retention.max_terminal_runs = max_terminal;
    return config;
  }

  static workflow::ImageId deploy_classical(api::QonductorClient& client,
                                            const std::string& name) {
    api::CreateWorkflowRequest create;
    create.name = name;
    create.tasks.push_back(workflow::HybridTask::classical(name + "-t", 0.1));
    auto created = client.createWorkflow(std::move(create));
    EXPECT_TRUE(created.ok()) << created.status().to_string();
    api::DeployRequest deploy_request;
    deploy_request.image = created->image;
    EXPECT_TRUE(client.deploy(deploy_request).ok());
    return created->image;
  }
};

TEST_F(RunLifecycleFixture, ListRunsGetRunRoundTripAcrossEviction) {
  api::QonductorClient client(config_with_retention(4));
  const auto image = deploy_classical(client, "soak");

  // Complete 10 runs strictly in order so the LRU victim order is exact.
  for (int r = 0; r < 10; ++r) {
    api::InvokeRequest request;
    request.image = image;
    auto handle = client.invoke(request);
    ASSERT_TRUE(handle.ok()) << handle.status().to_string();
    EXPECT_EQ(handle->wait(), api::RunStatus::kCompleted);
  }

  // Retention keeps the 4 most recent terminal runs: ids 7..10.
  for (api::RunId run = 1; run <= 6; ++run) {
    auto info = client.getRun(run);
    ASSERT_FALSE(info.ok()) << "run " << run << " should have been evicted";
    EXPECT_EQ(info.status().code(), api::StatusCode::kNotFound);
    // The monitor record was garbage-collected along with the run.
    EXPECT_FALSE(client.backend().monitor().workflow_status(run).has_value());
  }
  for (api::RunId run = 7; run <= 10; ++run) {
    auto info = client.getRun(run);
    ASSERT_TRUE(info.ok()) << info.status().to_string();
    EXPECT_EQ(info->status, api::RunStatus::kCompleted);
    EXPECT_EQ(info->image, image);
    EXPECT_TRUE(info->error.ok());
    EXPECT_LE(info->submitted_at, info->finished_at);
  }

  // The introspection surface agrees with the policy's arithmetic.
  RunTable& table = client.backend().runTable();
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.terminal_count(), 4u);
  EXPECT_EQ(table.evictions(), 6u);

  // Full listing sees exactly the retained tail, in id order.
  auto all = client.listRuns();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->runs.size(), 4u);
  EXPECT_EQ(all->next_page_token, 0u);
  for (std::size_t i = 0; i < all->runs.size(); ++i) {
    EXPECT_EQ(all->runs[i].run, 7u + i);
  }

  // Pagination walks the same set in two pages.
  api::ListRunsRequest page_request;
  page_request.page_size = 2;
  auto page1 = client.listRuns(page_request);
  ASSERT_TRUE(page1.ok());
  ASSERT_EQ(page1->runs.size(), 2u);
  EXPECT_EQ(page1->runs[0].run, 7u);
  EXPECT_EQ(page1->next_page_token, 8u);
  page_request.page_token = page1->next_page_token;
  auto page2 = client.listRuns(page_request);
  ASSERT_TRUE(page2.ok());
  ASSERT_EQ(page2->runs.size(), 2u);
  EXPECT_EQ(page2->runs[1].run, 10u);
  EXPECT_EQ(page2->next_page_token, 0u);

  // Filters: all retained runs completed; none running; image filter.
  api::ListRunsRequest by_status;
  by_status.status = api::RunStatus::kCompleted;
  auto completed = client.listRuns(by_status);
  ASSERT_TRUE(completed.ok());
  EXPECT_EQ(completed->runs.size(), 4u);
  by_status.status = api::RunStatus::kRunning;
  auto running = client.listRuns(by_status);
  ASSERT_TRUE(running.ok());
  EXPECT_TRUE(running->runs.empty());
  api::ListRunsRequest by_image;
  by_image.image = image + 100;  // no such image
  auto none = client.listRuns(by_image);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->runs.empty());
}

TEST_F(RunLifecycleFixture, ListRunsSeesInFlightRunsAndVersionIsChecked) {
  auto config = config_with_retention(4);
  std::promise<void> entered;
  std::promise<void> release;
  auto release_future = release.get_future().share();
  std::atomic<bool> armed{true};
  config.on_task_start = [&](RunId, const std::string&) {
    if (armed.exchange(false)) {
      entered.set_value();
      release_future.wait();
    }
  };
  api::QonductorClient client(config);
  const auto image = deploy_classical(client, "inflight");

  api::InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  entered.get_future().wait();  // the run is now kRunning

  api::ListRunsRequest by_status;
  by_status.status = api::RunStatus::kRunning;
  auto running = client.listRuns(by_status);
  ASSERT_TRUE(running.ok());
  ASSERT_EQ(running->runs.size(), 1u);
  EXPECT_EQ(running->runs[0].run, handle->id());
  EXPECT_GE(running->runs[0].started_at, 0.0);
  EXPECT_EQ(running->runs[0].finished_at, -1.0);

  // Versioning applies to the new surface like every other call.
  api::ListRunsRequest future_version;
  future_version.api_version = api::kApiVersion + 1;
  auto rejected = client.listRuns(future_version);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), api::StatusCode::kUnimplemented);
  api::GetRunRequest future_get;
  future_get.api_version = 99;
  future_get.run = handle->id();
  auto rejected_get = client.getRun(future_get);
  ASSERT_FALSE(rejected_get.ok());
  EXPECT_EQ(rejected_get.status().code(), api::StatusCode::kUnimplemented);

  release.set_value();
  EXPECT_EQ(handle->wait(), api::RunStatus::kCompleted);
}

}  // namespace
}  // namespace qon::core
