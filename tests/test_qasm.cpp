// Tests for the OpenQASM 2.0 subset parser: round-trips with
// Circuit::to_qasm() and semantic preservation through the simulator.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/library.hpp"
#include "circuit/qasm.hpp"
#include "simulator/metrics.hpp"
#include "simulator/statevector.hpp"

namespace qon::circuit {
namespace {

TEST(Qasm, ParsesMinimalProgram) {
  const auto c = parse_qasm(
      "OPENQASM 2.0;\n"
      "include \"qelib1.inc\";\n"
      "qreg q[2];\n"
      "creg c[2];\n"
      "h q[0];\n"
      "cx q[0], q[1];\n"
      "measure q[0] -> c[0];\n"
      "measure q[1] -> c[1];\n");
  EXPECT_EQ(c.num_qubits(), 2);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.gates()[0].kind, GateKind::kH);
  EXPECT_EQ(c.gates()[1].kind, GateKind::kCX);
  EXPECT_EQ(c.measurement_count(), 2u);
}

TEST(Qasm, ParsesPiExpressions) {
  const auto c = parse_qasm(
      "qreg q[1];\n"
      "rz(pi) q[0];\n"
      "rx(-pi/2) q[0];\n"
      "ry(0.5*pi) q[0];\n"
      "rz(2*pi/4) q[0];\n"
      "rx(1.25) q[0];\n");
  EXPECT_NEAR(c.gates()[0].param, M_PI, 1e-12);
  EXPECT_NEAR(c.gates()[1].param, -M_PI / 2.0, 1e-12);
  EXPECT_NEAR(c.gates()[2].param, M_PI / 2.0, 1e-12);
  EXPECT_NEAR(c.gates()[3].param, M_PI / 2.0, 1e-12);
  EXPECT_NEAR(c.gates()[4].param, 1.25, 1e-12);
}

TEST(Qasm, IgnoresCommentsAndBlankLines) {
  const auto c = parse_qasm(
      "// header comment\n"
      "qreg q[1];\n"
      "\n"
      "x q[0]; // flip\n");
  EXPECT_EQ(c.size(), 1u);
}

TEST(Qasm, MeasureMapsClassicalBits) {
  const auto c = parse_qasm(
      "qreg q[2];\n"
      "measure q[0] -> c[1];\n");
  EXPECT_EQ(c.gates()[0].qubit(0), 0);
  EXPECT_EQ(c.gates()[0].qubits[1], 1);
  EXPECT_EQ(c.num_clbits(), 2);
}

TEST(Qasm, BarrierAndTwoQubitGates) {
  const auto c = parse_qasm(
      "qreg q[3];\n"
      "swap q[0], q[2];\n"
      "cz q[1], q[2];\n"
      "rzz(0.5) q[0], q[1];\n"
      "barrier q;\n");
  EXPECT_EQ(c.gates()[0].kind, GateKind::kSwap);
  EXPECT_EQ(c.gates()[1].kind, GateKind::kCZ);
  EXPECT_NEAR(c.gates()[2].param, 0.5, 1e-12);
  EXPECT_EQ(c.gates()[3].kind, GateKind::kBarrier);
}

TEST(Qasm, ErrorsCarryLineNumbers) {
  try {
    parse_qasm("qreg q[2];\nbogus q[0];\n");
    FAIL() << "expected QasmParseError";
  } catch (const QasmParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Qasm, RejectsMalformedPrograms) {
  EXPECT_THROW(parse_qasm("x q[0];\n"), QasmParseError);               // before qreg
  EXPECT_THROW(parse_qasm("qreg q[1];\nx q[0]\n"), QasmParseError);    // missing ;
  EXPECT_THROW(parse_qasm("qreg q[1];\ncx q[0];\n"), QasmParseError);  // arity
  EXPECT_THROW(parse_qasm("qreg q[1];\nh(0.5) q[0];\n"), QasmParseError);  // param
  EXPECT_THROW(parse_qasm("qreg q[1];\nmeasure q[0];\n"), QasmParseError); // no ->
  EXPECT_THROW(parse_qasm(""), QasmParseError);                        // empty
  EXPECT_THROW(parse_qasm("qreg q[0];\n"), QasmParseError);            // empty reg
}

// Round-trip property: dump -> parse preserves measured semantics for every
// benchmark family.
class QasmRoundTrip : public ::testing::TestWithParam<BenchmarkFamily> {};

TEST_P(QasmRoundTrip, PreservesDistribution) {
  const Circuit original = make_benchmark(GetParam(), 4, 13);
  const Circuit round = parse_qasm(original.to_qasm());
  EXPECT_EQ(round.num_qubits(), original.num_qubits());
  EXPECT_EQ(round.size(), original.size());
  const auto d1 = sim::ideal_distribution(original);
  const auto d2 = sim::ideal_distribution(round);
  EXPECT_GT(sim::hellinger_fidelity(d1, d2), 1.0 - 1e-9)
      << benchmark_family_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Families, QasmRoundTrip,
                         ::testing::ValuesIn(all_benchmark_families()));

}  // namespace
}  // namespace qon::circuit
