// Tests for the state-vector simulator, noise channels, trajectory execution
// and the analytic ESP fidelity model.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/library.hpp"
#include "qpu/fleet.hpp"
#include "simulator/esp.hpp"
#include "simulator/metrics.hpp"
#include "simulator/noise.hpp"
#include "simulator/statevector.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::sim {
namespace {

using circuit::Circuit;
using circuit::GateKind;

TEST(StateVector, InitializesToZeroState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dimension(), 8u);
  EXPECT_NEAR(std::norm(sv.amplitudes()[0]), 1.0, 1e-15);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, RejectsBadWidths) {
  EXPECT_THROW(StateVector(0), std::invalid_argument);
  EXPECT_THROW(StateVector(29), std::invalid_argument);
}

TEST(StateVector, BellStateAmplitudes) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  StateVector sv(2);
  sv.run(c);
  const auto probs = sv.probabilities();
  EXPECT_NEAR(probs[0], 0.5, 1e-12);
  EXPECT_NEAR(probs[3], 0.5, 1e-12);
  EXPECT_NEAR(probs[1] + probs[2], 0.0, 1e-12);
}

TEST(StateVector, AllGateUnitariesPreserveNorm) {
  Circuit c(3);
  c.h(0);
  c.x(1);
  c.y(2);
  c.z(0);
  c.s(1);
  c.sdg(2);
  c.t(0);
  c.tdg(1);
  c.sx(2);
  c.rx(0, 0.3);
  c.ry(1, -1.2);
  c.rz(2, 2.2);
  c.cx(0, 1);
  c.cz(1, 2);
  c.swap(0, 2);
  c.rzz(0, 1, 0.7);
  StateVector sv(3);
  sv.run(c);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
}

TEST(StateVector, SwapGateExchangesQubits) {
  Circuit c(2);
  c.x(0);
  c.swap(0, 1);
  StateVector sv(2);
  sv.run(c);
  EXPECT_NEAR(std::norm(sv.amplitudes()[2]), 1.0, 1e-12);  // |10> (qubit1 set)
}

TEST(StateVector, CxControlConvention) {
  // Control is the first operand: CX(0, 1) with qubit 0 set flips qubit 1.
  Circuit c(2);
  c.x(0);
  c.cx(0, 1);
  StateVector sv(2);
  sv.run(c);
  EXPECT_NEAR(std::norm(sv.amplitudes()[3]), 1.0, 1e-12);
  // Reversed: CX(1, 0) with only qubit 0 set does nothing.
  Circuit d(2);
  d.x(0);
  d.cx(1, 0);
  StateVector sv2(2);
  sv2.run(d);
  EXPECT_NEAR(std::norm(sv2.amplitudes()[1]), 1.0, 1e-12);
}

TEST(StateVector, MeasuredDistributionUsesClbits) {
  Circuit c(2);
  c.x(0);
  c.measure(0, 1);  // qubit 0 -> clbit 1
  c.measure(1, 0);  // qubit 1 -> clbit 0
  StateVector sv(2);
  sv.run(c);
  const auto dist = sv.measured_distribution(c);
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_NEAR(dist.at(0b10), 1.0, 1e-12);  // clbit 1 set
}

TEST(StateVector, PartialMeasurementTracesOut) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.measure(0);  // only qubit 0 measured
  StateVector sv(2);
  sv.run(c);
  const auto dist = sv.measured_distribution(c);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist.at(0), 0.5, 1e-12);
  EXPECT_NEAR(dist.at(1), 0.5, 1e-12);
}

TEST(StateVector, SampleCountsTotalsShots) {
  Rng rng(3);
  const Circuit c = circuit::ghz(3);
  StateVector sv(3);
  sv.run(c);
  const auto counts = sv.sample_counts(c, 1000, rng);
  std::uint64_t total = 0;
  for (const auto& [k, v] : counts) {
    (void)k;
    total += v;
  }
  EXPECT_EQ(total, 1000u);
  // Only the two GHZ outcomes appear.
  for (const auto& [outcome, v] : counts) {
    (void)v;
    EXPECT_TRUE(outcome == 0 || outcome == 0b111);
  }
}

TEST(StateVector, MeasuredDistributionRequiresMeasurements) {
  Circuit c(1);
  c.h(0);
  StateVector sv(1);
  sv.run(c);
  EXPECT_THROW(sv.measured_distribution(c), std::invalid_argument);
}

TEST(Bitstring, FormatsQiskitOrder) {
  EXPECT_EQ(bitstring(0b101, 3), "101");
  EXPECT_EQ(bitstring(0b1, 4), "0001");
  EXPECT_EQ(bitstring(0, 2), "00");
}

TEST(Metrics, HellingerIdenticalIsOne) {
  std::map<std::uint64_t, double> p = {{0, 0.5}, {3, 0.5}};
  EXPECT_NEAR(hellinger_fidelity(p, p), 1.0, 1e-12);
}

TEST(Metrics, HellingerDisjointIsZero) {
  std::map<std::uint64_t, double> p = {{0, 1.0}};
  std::map<std::uint64_t, double> q = {{1, 1.0}};
  EXPECT_DOUBLE_EQ(hellinger_fidelity(p, q), 0.0);
}

TEST(Metrics, HellingerIsSymmetric) {
  std::map<std::uint64_t, double> p = {{0, 0.7}, {1, 0.3}};
  std::map<std::uint64_t, double> q = {{0, 0.4}, {1, 0.6}};
  EXPECT_NEAR(hellinger_fidelity(p, q), hellinger_fidelity(q, p), 1e-14);
}

TEST(Metrics, TvdProperties) {
  std::map<std::uint64_t, double> p = {{0, 1.0}};
  std::map<std::uint64_t, double> q = {{1, 1.0}};
  EXPECT_DOUBLE_EQ(total_variation_distance(p, q), 1.0);
  EXPECT_DOUBLE_EQ(total_variation_distance(p, p), 0.0);
}

TEST(Metrics, CountsToDistributionNormalizes) {
  Counts counts = {{0, 30}, {7, 70}};
  const auto dist = counts_to_distribution(counts);
  EXPECT_NEAR(dist.at(0), 0.3, 1e-12);
  EXPECT_NEAR(dist.at(7), 0.7, 1e-12);
}

TEST(Noise, IdlePauliRatesGrowWithTime) {
  const auto fast = idle_pauli_rates(1e-6, 100e-6, 80e-6);
  const auto slow = idle_pauli_rates(50e-6, 100e-6, 80e-6);
  EXPECT_GT(slow.total(), fast.total());
  EXPECT_DOUBLE_EQ(idle_pauli_rates(0.0, 1.0, 1.0).total(), 0.0);
  EXPECT_GE(fast.p_z, 0.0);
}

TEST(Noise, HiddenNoiseIsDeterministic) {
  const HiddenNoise h(42, 0.3);
  EXPECT_DOUBLE_EQ(h.factor("mumbai", 3, 7), h.factor("mumbai", 3, 7));
  EXPECT_NE(h.factor("mumbai", 3, 7), h.factor("mumbai", 4, 7));
  EXPECT_NE(h.factor("mumbai", 3, 7), h.factor("kolkata", 3, 7));
  EXPECT_DOUBLE_EQ(HiddenNoise::none().factor("x", 0, 0), 1.0);
}

TEST(Noise, HiddenFactorsCenterAroundOne) {
  const HiddenNoise h(7, 0.25);
  double log_acc = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    log_acc += std::log(h.factor("backend", 0, static_cast<std::uint64_t>(i)));
  }
  EXPECT_NEAR(log_acc / n, 0.0, 0.05);
}

class NoisyExecution : public ::testing::Test {
 protected:
  NoisyExecution() : fleet_(qpu::make_ibm_like_fleet(1, 12)), backend_(*fleet_.backends[0]) {}

  qpu::Fleet fleet_;
  const qpu::Backend& backend_;
};

TEST_F(NoisyExecution, GhzFidelityIsDegradedButUseful) {
  Rng rng(5);
  const Circuit c = circuit::ghz(5);
  const auto t = transpiler::transpile(c, backend_);
  const auto counts = run_noisy(t.circuit, backend_, 2000, rng, HiddenNoise(1, 0.2));
  const double fid = hellinger_fidelity(counts, ideal_distribution(c));
  EXPECT_LT(fid, 0.999);
  EXPECT_GT(fid, 0.3);
}

TEST_F(NoisyExecution, NoiseDisabledGivesNearPerfectFidelity) {
  Rng rng(7);
  const Circuit c = circuit::ghz(4);
  const auto t = transpiler::transpile(c, backend_);
  TrajectoryOptions opt;
  opt.gate_noise = false;
  opt.readout_noise = false;
  opt.idle_noise = false;
  const auto counts = run_noisy(t.circuit, backend_, 4000, rng, HiddenNoise::none(), opt);
  EXPECT_GT(hellinger_fidelity(counts, ideal_distribution(c)), 0.99);
}

TEST_F(NoisyExecution, MoreNoiseSourcesLowerFidelity) {
  Rng rng1(9);
  Rng rng2(9);
  const Circuit c = circuit::ghz(6);
  const auto t = transpiler::transpile(c, backend_);
  TrajectoryOptions readout_only;
  readout_only.gate_noise = false;
  readout_only.idle_noise = false;
  const auto partial = run_noisy(t.circuit, backend_, 4000, rng1, HiddenNoise::none(), readout_only);
  const auto full = run_noisy(t.circuit, backend_, 4000, rng2, HiddenNoise::none());
  const auto ideal = ideal_distribution(c);
  EXPECT_GT(hellinger_fidelity(partial, ideal), hellinger_fidelity(full, ideal));
}

TEST_F(NoisyExecution, RunIdealMatchesIdealDistribution) {
  Rng rng(11);
  const Circuit c = circuit::ghz(4);
  const auto t = transpiler::transpile(c, backend_);
  const auto counts = run_ideal(t.circuit, 4000, rng);
  EXPECT_GT(hellinger_fidelity(counts, ideal_distribution(c)), 0.99);
}

TEST_F(NoisyExecution, ValidatesArguments) {
  Rng rng(13);
  const Circuit c = circuit::ghz(3);
  const auto t = transpiler::transpile(c, backend_);
  EXPECT_THROW(run_noisy(t.circuit, backend_, 0, rng, HiddenNoise::none()),
               std::invalid_argument);
  Circuit no_meas(backend_.num_qubits());
  no_meas.sx(0);
  EXPECT_THROW(run_noisy(no_meas, backend_, 100, rng, HiddenNoise::none()),
               std::invalid_argument);
}

TEST_F(NoisyExecution, EspFidelityInUnitInterval) {
  const Circuit c = circuit::qft(8);
  const auto t = transpiler::transpile(c, backend_);
  const double f = esp_fidelity(t.circuit, backend_, HiddenNoise::none());
  EXPECT_GT(f, 0.0);
  EXPECT_LE(f, 1.0);
}

TEST_F(NoisyExecution, EspDecreasesWithCircuitSize) {
  const auto t_small = transpiler::transpile(circuit::ghz(4), backend_);
  const auto t_large = transpiler::transpile(circuit::ghz(20), backend_);
  EXPECT_GT(esp_fidelity(t_small.circuit, backend_, HiddenNoise::none()),
            esp_fidelity(t_large.circuit, backend_, HiddenNoise::none()));
}

TEST_F(NoisyExecution, EspTracksTrajectoryFidelity) {
  // The analytic model should be within coarse agreement of the trajectory
  // simulation for a mid-size GHZ (they share the same calibration).
  Rng rng(15);
  const Circuit c = circuit::ghz(6);
  const auto t = transpiler::transpile(c, backend_);
  const auto counts = run_noisy(t.circuit, backend_, 4000, rng, HiddenNoise::none());
  const double traj = hellinger_fidelity(counts, ideal_distribution(c));
  const double esp = esp_fidelity(t.circuit, backend_, HiddenNoise::none());
  // ESP's product form is systematically pessimistic (Z errors are partially
  // invisible in the computational basis), so only coarse agreement holds.
  EXPECT_NEAR(esp, traj, 0.3);
}

TEST_F(NoisyExecution, GroundTruthAddsShotNoise) {
  Rng rng(17);
  const auto t = transpiler::transpile(circuit::ghz(10), backend_);
  const HiddenNoise hidden(3, 0.25);
  const double base = esp_fidelity(t.circuit, backend_, hidden, 1.08);
  double spread = 0.0;
  for (int i = 0; i < 20; ++i) {
    spread = std::max(
        spread, std::abs(ground_truth_fidelity(t.circuit, backend_, hidden, 1000, rng) - base));
  }
  EXPECT_GT(spread, 0.0);
  EXPECT_LT(spread, 0.2);
}

TEST_F(NoisyExecution, HiddenNoiseShiftsGroundTruthAwayFromEstimate) {
  const auto t = transpiler::transpile(circuit::qft(10), backend_);
  const double published = esp_fidelity(t.circuit, backend_, HiddenNoise::none());
  const double truth = esp_fidelity(t.circuit, backend_, HiddenNoise(99, 0.35), 1.08);
  EXPECT_NE(published, truth);
}

}  // namespace
}  // namespace qon::sim
