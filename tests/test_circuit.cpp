// Tests for the circuit IR, DAG view and the benchmark generator library.
// Several checks use the state-vector simulator to verify semantic
// properties (BV recovers its secret, GHZ is 50/50, W-state is uniform...).

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "circuit/dag.hpp"
#include "circuit/library.hpp"
#include "simulator/metrics.hpp"
#include "simulator/statevector.hpp"

namespace qon::circuit {
namespace {

TEST(Circuit, RejectsBadQubits) {
  Circuit c(2);
  EXPECT_THROW(c.x(2), std::out_of_range);
  EXPECT_THROW(c.x(-1), std::out_of_range);
  EXPECT_THROW(c.cx(0, 0), std::invalid_argument);
  EXPECT_THROW(Circuit(0), std::invalid_argument);
}

TEST(Circuit, DepthCountsDependentChains) {
  Circuit c(3);
  c.h(0);
  c.h(1);      // parallel with h(0)
  c.cx(0, 1);  // depends on both
  c.x(2);      // parallel with everything above
  EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, BarrierSynchronizesDepth) {
  Circuit c(2);
  c.h(0);
  c.barrier();
  c.x(1);  // after the barrier, so below h(0)
  EXPECT_EQ(c.depth(), 2);
}

TEST(Circuit, GateCountsAndMetrics) {
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  EXPECT_EQ(c.two_qubit_gate_count(), 2u);
  EXPECT_EQ(c.operation_count(), 3u);
  EXPECT_EQ(c.measurement_count(), 3u);
  EXPECT_EQ(c.num_clbits(), 3);
  const auto counts = c.gate_counts();
  EXPECT_EQ(counts.at("cx"), 2u);
  EXPECT_EQ(counts.at("measure"), 3u);
}

TEST(Circuit, RespectsCoupling) {
  Circuit c(3);
  c.cx(0, 1);
  c.cx(1, 2);
  const std::vector<std::pair<int, int>> line = {{0, 1}, {1, 2}};
  EXPECT_TRUE(c.respects_coupling(line));
  Circuit far(3);
  far.cx(0, 2);
  EXPECT_FALSE(far.respects_coupling(line));
}

TEST(Circuit, RemappedMovesOperands) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const Circuit wide = c.remapped({5, 2}, 6);
  EXPECT_EQ(wide.num_qubits(), 6);
  EXPECT_EQ(wide.gates()[1].qubit(0), 5);
  EXPECT_EQ(wide.gates()[1].qubit(1), 2);
  // Classical bits are preserved under remapping.
  EXPECT_EQ(wide.gates()[2].qubits[1], 0);
  EXPECT_EQ(wide.num_clbits(), 2);
}

TEST(Circuit, ExtendAppendsGates) {
  Circuit a(2);
  a.h(0);
  Circuit b(2);
  b.cx(0, 1);
  a.extend(b);
  EXPECT_EQ(a.size(), 2u);
  Circuit wider(3);
  EXPECT_THROW(b.extend(wider), std::invalid_argument);
}

TEST(Circuit, WithoutMeasurementsDropsOnlyMeasures) {
  Circuit c(2);
  c.h(0);
  c.measure_all();
  const Circuit u = c.without_measurements();
  EXPECT_EQ(u.size(), 1u);
  EXPECT_EQ(u.measurement_count(), 0u);
}

TEST(Circuit, QasmDumpContainsStructure) {
  Circuit c(2, "bell");
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const std::string qasm = c.to_qasm();
  EXPECT_NE(qasm.find("qreg q[2]"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q[1] -> c[1];"), std::string::npos);
}

// Inverse property: C followed by C.inverse() acts as identity on |0...0>.
class InverseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InverseProperty, RoundTripsToZeroState) {
  const auto seed = GetParam();
  Circuit c = random_circuit(4, 6, seed).without_measurements();
  Circuit round_trip = c;
  round_trip.extend(c.inverse());
  sim::StateVector sv(4);
  sv.run(round_trip);
  EXPECT_NEAR(std::norm(sv.amplitudes()[0]), 1.0, 1e-9) << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, InverseProperty, ::testing::Values(1, 2, 3, 7, 11, 42));

TEST(Dag, LayersRespectDependencies) {
  Circuit c(3);
  c.h(0);       // layer 0
  c.cx(0, 1);   // layer 1
  c.x(2);       // layer 0
  c.cx(1, 2);   // layer 2
  const CircuitDag dag(c);
  EXPECT_EQ(dag.layers()[0], 0u);
  EXPECT_EQ(dag.layers()[1], 1u);
  EXPECT_EQ(dag.layers()[2], 0u);
  EXPECT_EQ(dag.layers()[3], 2u);
  EXPECT_EQ(dag.layer_count(), 3u);
}

TEST(Dag, EdgesFollowSharedQubits) {
  Circuit c(2);
  c.h(0);
  c.h(1);
  c.cx(0, 1);
  const CircuitDag dag(c);
  EXPECT_EQ(dag.successors(0), std::vector<std::size_t>{2});
  EXPECT_EQ(dag.successors(1), std::vector<std::size_t>{2});
  EXPECT_EQ(dag.predecessors(2).size(), 2u);
}

TEST(Dag, BarrierDependsOnAllWires) {
  Circuit c(2);
  c.h(0);
  c.barrier();
  c.x(1);
  const CircuitDag dag(c);
  // x(1) must come after the barrier even though qubit 1 was untouched.
  EXPECT_EQ(dag.layers()[2], 2u);
}

TEST(Library, GhzShape) {
  const Circuit c = ghz(5);
  EXPECT_EQ(c.num_qubits(), 5);
  EXPECT_EQ(c.two_qubit_gate_count(), 4u);
  EXPECT_EQ(c.measurement_count(), 5u);
}

TEST(Library, GhzDistributionIsHalfHalf) {
  const Circuit c = ghz(4);
  const auto dist = sim::ideal_distribution(c);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_NEAR(dist.at(0), 0.5, 1e-12);
  EXPECT_NEAR(dist.at(0b1111), 0.5, 1e-12);
}

TEST(Library, QftOnZeroIsUniform) {
  const Circuit c = qft(3);
  const auto dist = sim::ideal_distribution(c);
  ASSERT_EQ(dist.size(), 8u);
  for (const auto& [outcome, p] : dist) {
    (void)outcome;
    EXPECT_NEAR(p, 1.0 / 8.0, 1e-9);
  }
}

TEST(Library, BernsteinVaziraniRecoversSecret) {
  const std::vector<bool> secret = {true, false, true, true, false};
  const Circuit c = bernstein_vazirani(secret);
  EXPECT_EQ(c.num_qubits(), 6);  // 5 data + ancilla
  const auto dist = sim::ideal_distribution(c);
  // The data register must read the secret deterministically.
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < secret.size(); ++i) {
    if (secret[i]) expected |= (1ULL << i);
  }
  ASSERT_EQ(dist.size(), 1u);
  EXPECT_NEAR(dist.at(expected), 1.0, 1e-9);
}

TEST(Library, WStateIsUniformOverOneHotOutcomes) {
  const int n = 5;
  const Circuit c = w_state(n);
  const auto dist = sim::ideal_distribution(c);
  ASSERT_EQ(dist.size(), static_cast<std::size_t>(n));
  for (const auto& [outcome, p] : dist) {
    EXPECT_EQ(__builtin_popcountll(outcome), 1) << "outcome not one-hot";
    EXPECT_NEAR(p, 1.0 / n, 1e-9);
  }
}

TEST(Library, GroverTwoQubitFindsMarkedState) {
  // For 2 qubits one Grover iteration is exact: the marked state has
  // probability 1.
  const Circuit c = grover_like(2, 1, 99);
  const auto dist = sim::ideal_distribution(c);
  double max_p = 0.0;
  for (const auto& [outcome, p] : dist) {
    (void)outcome;
    max_p = std::max(max_p, p);
  }
  EXPECT_NEAR(max_p, 1.0, 1e-9);
}

TEST(Library, QaoaUsesGraphEdges) {
  const Graph g = random_graph(6, 0.4, 5);
  const Circuit c = qaoa_maxcut(g, 2, 5);
  EXPECT_EQ(c.num_qubits(), 6);
  // Each edge contributes one RZZ per layer.
  EXPECT_EQ(c.gate_counts().at("rzz"), 2u * g.edges.size());
}

TEST(Library, RandomGraphIsConnectedAndDeduplicated) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Graph g = random_graph(8, 0.2, seed);
    std::set<std::pair<int, int>> set(g.edges.begin(), g.edges.end());
    EXPECT_EQ(set.size(), g.edges.size());
    EXPECT_GE(g.edges.size(), 7u);  // at least a spanning chain
    for (const auto& [a, b] : g.edges) EXPECT_LT(a, b);
  }
}

TEST(Library, GeneratorsAreDeterministicInSeed) {
  const Circuit a = random_circuit(5, 8, 77);
  const Circuit b = random_circuit(5, 8, 77);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a.gates()[i] == b.gates()[i]);
}

TEST(Library, MakeBenchmarkCoversAllFamilies) {
  for (const auto family : all_benchmark_families()) {
    const Circuit c = make_benchmark(family, 4, 11);
    EXPECT_GE(c.num_qubits(), 4) << benchmark_family_name(family);
    EXPECT_GT(c.measurement_count(), 0u) << benchmark_family_name(family);
  }
}

// Width sweep: every family produces measured circuits across widths.
class FamilyWidthSweep
    : public ::testing::TestWithParam<std::tuple<BenchmarkFamily, int>> {};

TEST_P(FamilyWidthSweep, ProducesValidCircuit) {
  const auto [family, width] = GetParam();
  const Circuit c = make_benchmark(family, width, 3);
  EXPECT_GE(c.num_qubits(), width);
  EXPECT_GT(c.size(), 0u);
  EXPECT_GT(c.depth(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Families, FamilyWidthSweep,
    ::testing::Combine(::testing::ValuesIn(all_benchmark_families()),
                       ::testing::Values(2, 5, 12, 27)));

}  // namespace
}  // namespace qon::circuit
