// Tests for the resource estimator: feature extraction, synthetic run
// archive, regression model training (R² targets), the numerical baseline
// comparison of Fig. 7b/c, resource-plan generation and the pricing model.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "estimator/dataset.hpp"
#include "estimator/execution_model.hpp"
#include "estimator/models.hpp"
#include "estimator/numerical.hpp"
#include "estimator/plans.hpp"
#include "estimator/pricing.hpp"
#include "qpu/fleet.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::estimator {
namespace {

class EstimatorFixture : public ::testing::Test {
 protected:
  EstimatorFixture() : fleet_(qpu::make_ibm_like_fleet(4, 88)) {
    ArchiveConfig config;
    config.num_runs = 700;
    config.seed = 5;
    archive_ = generate_run_archive(fleet_, config);
  }

  qpu::Fleet fleet_;
  std::vector<RunRecord> archive_;
};

TEST_F(EstimatorFixture, ArchiveHasRequestedSizeAndSaneRanges) {
  EXPECT_EQ(archive_.size(), 700u);
  for (const auto& r : archive_) {
    EXPECT_GE(r.fidelity, 0.0);
    EXPECT_LE(r.fidelity, 1.0);
    EXPECT_GT(r.quantum_seconds, 0.0);
    EXPECT_GE(r.classical_seconds, 0.0);
    EXPECT_GE(r.features.width, 2.0);
  }
}

TEST_F(EstimatorFixture, ArchiveCoversMitigationVariety) {
  std::size_t mitigated = 0;
  for (const auto& r : archive_) {
    if (r.features.zne + r.features.pec + r.features.rem + r.features.dd +
            r.features.twirling + r.features.cutting >
        0.0) {
      ++mitigated;
    }
  }
  // The menu has 8 non-trivial stacks out of 9 entries.
  EXPECT_GT(mitigated, archive_.size() / 2);
  EXPECT_LT(mitigated, archive_.size());
}

TEST_F(EstimatorFixture, RuntimeModelReachesHighR2) {
  RuntimeEstimator model;
  const auto report = model.train(archive_);
  // Paper: R² 0.998 for execution time. Our synthetic labels are close to
  // polynomial in the features, so the bar is high.
  EXPECT_GT(report.cv_r2, 0.95) << "selected: " << report.selected_model;
  EXPECT_TRUE(model.trained());
}

TEST_F(EstimatorFixture, FidelityModelReachesUsefulR2) {
  FidelityEstimator model;
  const auto report = model.train(archive_);
  // Paper: R² 0.976 for fidelity; hidden noise bounds what is learnable.
  EXPECT_GT(report.cv_r2, 0.7) << "selected: " << report.selected_model;
}

TEST_F(EstimatorFixture, ModelSelectionReportsAllCandidates) {
  RuntimeEstimator model;
  const auto report = model.train(archive_);
  EXPECT_EQ(report.all_models.size(), 3u);
  // Results are sorted best-first.
  for (std::size_t i = 1; i < report.all_models.size(); ++i) {
    EXPECT_GE(report.all_models[i - 1].mean_r2, report.all_models[i].mean_r2);
  }
}

TEST_F(EstimatorFixture, EstimatesAreFiniteAndClamped) {
  FidelityEstimator fid;
  RuntimeEstimator run;
  fid.train(archive_);
  run.train(archive_);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto& f = archive_[i].features;
    const double est_f = fid.estimate(f);
    const double est_t = run.estimate(f);
    EXPECT_GE(est_f, 0.0);
    EXPECT_LE(est_f, 1.0);
    EXPECT_GE(est_t, 0.0);
    EXPECT_TRUE(std::isfinite(est_t));
  }
}

TEST_F(EstimatorFixture, RegressionBeatsNumericalBaselineOnFidelity) {
  // Fig. 7b: the regression model sees mitigation effects and the learned
  // crosstalk bias; the numerical baseline does not.
  FidelityEstimator model;
  model.train(archive_);

  Rng rng(17);
  const sim::HiddenNoise hidden(1234, 0.25);
  std::vector<double> err_model;
  std::vector<double> err_numerical;
  const auto menu = mitigation::standard_mitigation_menu();
  for (int i = 0; i < 60; ++i) {
    const int width = static_cast<int>(rng.uniform_int(3, 20));
    const auto circ = circuit::make_benchmark(
        circuit::all_benchmark_families()[static_cast<std::size_t>(rng.uniform_int(0, 7))],
        width, rng());
    const auto& backend = *fleet_.backends[static_cast<std::size_t>(rng.uniform_int(0, 3))];
    if (circ.num_qubits() > backend.num_qubits()) continue;
    const auto& spec = menu[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(menu.size()) - 1))];
    const auto t = transpiler::transpile(circ, backend);
    const auto sig = mitigation::compute_signature(
        spec, static_cast<std::size_t>(circ.num_qubits()),
        static_cast<std::size_t>(t.circuit.depth()), t.circuit.two_qubit_gate_count(),
        static_cast<std::size_t>(t.circuit.num_clbits()),
        backend.calibration().mean_gate_error_2q(), mitigation::Accelerator::kCpu);
    const double truth =
        executed_fidelity(t.circuit, backend, sig, hidden, 1.08, 4000, rng);
    const auto features = extract_features(t, 4000, spec, backend);
    err_model.push_back(std::abs(model.estimate(features) - truth));
    err_numerical.push_back(std::abs(numerical_fidelity_estimate(t.circuit, backend) - truth));
  }
  ASSERT_GT(err_model.size(), 30u);
  EXPECT_LT(mean(err_model), mean(err_numerical));
}

TEST(Features, VectorsHaveDeclaredArity) {
  JobFeatures f;
  EXPECT_EQ(runtime_feature_vector(f).size(), runtime_feature_count());
  EXPECT_EQ(fidelity_feature_vector(f).size(), fidelity_feature_count());
}

TEST(Features, ExtractionReflectsMitigationStack) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 3);
  const auto& backend = *fleet.backends[0];
  const auto t = transpiler::transpile(circuit::ghz(5), backend);
  mitigation::MitigationSpec spec;
  spec.stack = {mitigation::Technique::kZne, mitigation::Technique::kDd};
  const auto f = extract_features(t, 2000, spec, backend);
  EXPECT_DOUBLE_EQ(f.zne, 1.0);
  EXPECT_DOUBLE_EQ(f.dd, 1.0);
  EXPECT_DOUBLE_EQ(f.pec, 0.0);
  EXPECT_DOUBLE_EQ(f.shots, 2000.0);
  EXPECT_EQ(static_cast<int>(f.width), 5);
  EXPECT_GT(f.mean_gate_error_2q, 0.0);
}

TEST(ExecutionModel, PredictionMatchesExecutionWithoutHiddenNoise) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 5);
  const auto& backend = *fleet.backends[0];
  const auto t = transpiler::transpile(circuit::qft(8), backend);
  mitigation::MitigationSpec spec;
  spec.stack = {mitigation::Technique::kRem};
  const auto sig = mitigation::compute_signature(
      spec, 8, static_cast<std::size_t>(t.circuit.depth()), t.circuit.two_qubit_gate_count(),
      static_cast<std::size_t>(t.circuit.num_clbits()),
      backend.calibration().mean_gate_error_2q(), mitigation::Accelerator::kCpu);
  Rng rng(5);
  const double predicted = predicted_fidelity(t.circuit, backend, sig);
  // Ablation (DESIGN.md decision 1): with hidden noise off and many shots,
  // ground truth collapses onto the prediction up to crosstalk.
  const double truth = executed_fidelity(t.circuit, backend, sig, sim::HiddenNoise::none(),
                                         1.0, 1000000, rng);
  EXPECT_NEAR(predicted, truth, 0.01);
}

TEST(Plans, GeneratesParetoAndRecommendations) {
  const auto fleet = qpu::make_ibm_like_fleet(3, 21);
  const auto templates = fleet.template_backends();
  const auto plans = generate_resource_plans(circuit::qaoa_maxcut(12, 1, 7), templates, {});
  EXPECT_GT(plans.all.size(), 8u);
  EXPECT_FALSE(plans.pareto.empty());
  EXPECT_LE(plans.recommended.size(), 3u);
  EXPECT_GE(plans.recommended.size(), 1u);

  // Pareto members must be mutually non-dominated in (time, 1-fidelity).
  for (const auto& a : plans.pareto) {
    for (const auto& b : plans.pareto) {
      const bool dominates = a.est_total_seconds < b.est_total_seconds &&
                             a.est_fidelity > b.est_fidelity;
      EXPECT_FALSE(dominates);
    }
  }
  // Sorted by total time.
  for (std::size_t i = 1; i < plans.pareto.size(); ++i) {
    EXPECT_LE(plans.pareto[i - 1].est_total_seconds, plans.pareto[i].est_total_seconds);
  }
}

TEST(Plans, MitigatedPlansTradeTimeForFidelity) {
  const auto fleet = qpu::make_ibm_like_fleet(2, 23);
  const auto templates = fleet.template_backends();
  const auto plans = generate_resource_plans(circuit::qft(14), templates, {});
  const ResourcePlan* none = nullptr;
  const ResourcePlan* zne = nullptr;
  for (const auto& p : plans.all) {
    if (p.accelerator != mitigation::Accelerator::kCpu) continue;
    if (p.spec.to_string() == "none") none = &p;
    if (p.spec.to_string() == "zne") zne = &p;
  }
  ASSERT_NE(none, nullptr);
  ASSERT_NE(zne, nullptr);
  EXPECT_GT(zne->est_fidelity, none->est_fidelity);
  EXPECT_GT(zne->est_total_seconds, none->est_total_seconds);
  EXPECT_GT(zne->est_cost_dollars, none->est_cost_dollars);
}

TEST(Plans, RespectsQubitFilter) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 25);
  const auto templates = fleet.template_backends();
  // 28-qubit circuit does not fit 27-qubit templates: no plans.
  circuit::Circuit big(28);
  big.h(0);
  big.measure_all();
  const auto plans = generate_resource_plans(big, templates, {});
  EXPECT_TRUE(plans.all.empty());
  EXPECT_THROW(generate_resource_plans(big, {}, {}), std::invalid_argument);
}

TEST(Pricing, Table1Ordering) {
  const PriceTable prices;
  // QPU-hours cost two orders of magnitude more than high-end VM-hours.
  EXPECT_GT(prices.qpu_per_hour / prices.highend_vm_per_hour, 100.0);
  EXPECT_GT(prices.highend_vm_per_hour, prices.standard_vm_per_hour);
  EXPECT_GT(prices.per_task(ResourceClass::kQpu), prices.per_task(ResourceClass::kHighEndVm));
}

TEST(Pricing, JobCostComposition) {
  const PriceTable prices;
  // 10 s of QPU + 60 s of standard VM.
  const double cost = job_cost_dollars(10.0, 60.0, mitigation::Accelerator::kCpu, prices);
  const double expected = prices.qpu_per_hour * 10.0 / 3600.0 +
                          prices.standard_vm_per_hour * 60.0 / 3600.0;
  EXPECT_NEAR(cost, expected, 1e-12);
  // GPU work is billed on high-end VMs.
  EXPECT_GT(job_cost_dollars(0.0, 60.0, mitigation::Accelerator::kGpu, prices),
            job_cost_dollars(0.0, 60.0, mitigation::Accelerator::kCpu, prices));
  EXPECT_THROW(job_cost_dollars(-1.0, 0.0, mitigation::Accelerator::kCpu, prices),
               std::invalid_argument);
}

TEST(Numerical, BaselineIgnoresMitigation) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 27);
  const auto& backend = *fleet.backends[0];
  const auto t = transpiler::transpile(circuit::ghz(8), backend);
  // The numerical estimate depends only on the circuit and calibration.
  const double f = numerical_fidelity_estimate(t.circuit, backend);
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 1.0);
  const double runtime = numerical_runtime_estimate(t, 4000);
  EXPECT_GT(runtime, 0.0);
}

}  // namespace
}  // namespace qon::estimator
