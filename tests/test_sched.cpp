// Tests for the hybrid scheduler: the Eq. 1 problem encoding, the three
// scheduling stages, MCDM priorities, triggers, baselines and the classical
// filter/score scheduler.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "sched/baselines.hpp"
#include "sched/classical_scheduler.hpp"
#include "sched/hybrid_scheduler.hpp"
#include "sched/problem.hpp"
#include "sched/triggers.hpp"

namespace qon::sched {
namespace {

// Builds a synthetic input: `n` jobs over `q` QPUs with seeded random
// estimates. QPU 0 is the high-fidelity hotspot; later QPUs are faster to
// access but noisier, giving a genuine fidelity-JCT tradeoff.
SchedulingInput make_input(std::size_t n, std::size_t q, std::uint64_t seed,
                           int max_job_qubits = 20) {
  Rng rng(seed);
  SchedulingInput input;
  for (std::size_t i = 0; i < q; ++i) {
    QpuState state;
    state.name = "qpu" + std::to_string(i);
    state.size = 27;
    state.queue_wait_seconds = rng.uniform(0.0, 300.0);
    input.qpus.push_back(state);
  }
  for (std::size_t j = 0; j < n; ++j) {
    QuantumJob job;
    job.id = j;
    job.qubits = static_cast<int>(rng.uniform_int(2, max_job_qubits));
    job.shots = 4000;
    for (std::size_t i = 0; i < q; ++i) {
      // Fidelity decays with QPU index; execution time is similar.
      const double fid = 0.95 - 0.06 * static_cast<double>(i) - rng.uniform(0.0, 0.05);
      job.est_fidelity.push_back(std::max(0.1, fid));
      job.est_exec_seconds.push_back(rng.uniform(2.0, 10.0));
    }
    input.jobs.push_back(job);
  }
  return input;
}

TEST(Problem, Eq1HandExample) {
  // 2 jobs, 2 QPUs. Assignment {0, 0}: both on QPU0.
  SchedulingInput input;
  input.qpus = {{"a", 27, 100.0, true}, {"b", 27, 0.0, true}};
  QuantumJob j0;
  j0.id = 0;
  j0.qubits = 5;
  j0.est_fidelity = {0.9, 0.8};
  j0.est_exec_seconds = {10.0, 12.0};
  QuantumJob j1 = j0;
  j1.id = 1;
  j1.est_fidelity = {0.7, 0.6};
  j1.est_exec_seconds = {20.0, 24.0};
  input.jobs = {j0, j1};

  SchedulingProblem problem(input);
  std::vector<double> objectives;
  // Both on QPU a: per Eq. 1 each job's JCT = w_a + (t0 + t1) = 100 + 30.
  problem.evaluate({0, 0}, objectives);
  EXPECT_NEAR(objectives[0], 130.0, 1e-12);
  EXPECT_NEAR(objectives[1], 1.0 - 0.8, 1e-12);  // mean error of {0.9, 0.7}

  // Split {0, 1}: j0 on a (100 + 10), j1 on b (0 + 24); mean = 67.
  problem.evaluate({0, 1}, objectives);
  EXPECT_NEAR(objectives[0], 67.0, 1e-12);
  EXPECT_NEAR(objectives[1], 1.0 - (0.9 + 0.6) / 2.0, 1e-12);
}

TEST(Problem, RepairSnapsToFeasibleQpu) {
  SchedulingInput input;
  input.qpus = {{"small", 5, 0.0, true}, {"big", 27, 0.0, true}};
  QuantumJob job;
  job.id = 0;
  job.qubits = 10;  // only fits "big"
  job.est_fidelity = {0.9, 0.9};
  job.est_exec_seconds = {1.0, 1.0};
  input.jobs = {job};
  SchedulingProblem problem(input);
  std::vector<int> genome = {0};
  problem.repair(genome);
  EXPECT_EQ(genome[0], 1);
}

TEST(Problem, OfflineQpusExcluded) {
  SchedulingInput input;
  input.qpus = {{"a", 27, 0.0, false}, {"b", 27, 0.0, true}};  // a reserved
  QuantumJob job;
  job.id = 0;
  job.qubits = 5;
  job.est_fidelity = {0.99, 0.5};
  job.est_exec_seconds = {1.0, 1.0};
  input.jobs = {job};
  SchedulingProblem problem(input);
  std::vector<int> genome = {0};
  problem.repair(genome);
  EXPECT_EQ(genome[0], 1);  // snapped off the reserved QPU
}

TEST(Problem, ThrowsWhenJobFitsNowhere) {
  SchedulingInput input;
  input.qpus = {{"tiny", 3, 0.0, true}};
  QuantumJob job;
  job.id = 0;
  job.qubits = 10;
  job.est_fidelity = {0.9};
  job.est_exec_seconds = {1.0};
  input.jobs = {job};
  EXPECT_THROW(SchedulingProblem{input}, std::invalid_argument);
}

TEST(Preprocess, FiltersOversizedJobs) {
  SchedulingInput input;
  input.qpus = {{"a", 10, 0.0, true}};
  QuantumJob fits;
  fits.id = 0;
  fits.qubits = 8;
  fits.est_fidelity = {0.9};
  fits.est_exec_seconds = {1.0};
  QuantumJob too_big = fits;
  too_big.id = 1;
  too_big.qubits = 20;
  input.jobs = {fits, too_big};
  const auto pre = preprocess_jobs(input);
  EXPECT_EQ(pre.compact.jobs.size(), 1u);
  EXPECT_EQ(pre.kept_indices, (std::vector<std::size_t>{0}));
  EXPECT_EQ(pre.filtered_indices, (std::vector<std::size_t>{1}));
}

TEST(Scheduler, AssignsEveryFeasibleJob) {
  const auto input = make_input(40, 4, 7);
  SchedulerConfig config;
  config.nsga2.seed = 3;
  const auto decision = schedule_cycle(input, config);
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    ASSERT_GE(decision.assignment[j], 0) << "job " << j;
    ASSERT_LT(decision.assignment[j], 4);
    // Capacity constraint honored.
    EXPECT_LE(input.jobs[j].qubits,
              input.qpus[static_cast<std::size_t>(decision.assignment[j])].size);
  }
  EXPECT_FALSE(decision.pareto_front.empty());
  EXPECT_GT(decision.optimize_seconds, 0.0);
}

TEST(Scheduler, FidelityPriorityRaisesFidelity) {
  const auto input = make_input(60, 4, 11);
  SchedulerConfig jct_config;
  jct_config.fidelity_weight = 0.0;
  jct_config.nsga2.seed = 5;
  SchedulerConfig fid_config;
  fid_config.fidelity_weight = 1.0;
  fid_config.nsga2.seed = 5;
  const auto jct_decision = schedule_cycle(input, jct_config);
  const auto fid_decision = schedule_cycle(input, fid_config);
  EXPECT_GE(fid_decision.chosen.mean_fidelity(), jct_decision.chosen.mean_fidelity());
  EXPECT_LE(jct_decision.chosen.mean_jct, fid_decision.chosen.mean_jct);
}

TEST(Scheduler, BalancedSitsBetweenExtremes) {
  const auto input = make_input(60, 4, 13);
  SchedulerConfig balanced;
  balanced.fidelity_weight = 0.5;
  balanced.nsga2.seed = 9;
  const auto decision = schedule_cycle(input, balanced);
  // The chosen point lies inside the front's bounding box.
  double min_jct = decision.pareto_front[0].mean_jct;
  double max_jct = min_jct;
  for (const auto& p : decision.pareto_front) {
    min_jct = std::min(min_jct, p.mean_jct);
    max_jct = std::max(max_jct, p.mean_jct);
  }
  EXPECT_GE(decision.chosen.mean_jct, min_jct - 1e-9);
  EXPECT_LE(decision.chosen.mean_jct, max_jct + 1e-9);
}

// The per-job QoS acceptance scenario: the same batch submitted twice with
// opposite per-job fidelity_weight preferences produces measurably
// different placements — higher mean estimated fidelity / lower mean JCT
// respectively.
TEST(Scheduler, OppositePerJobPreferencesShiftPlacements) {
  auto fid_input = make_input(60, 4, 11);
  auto jct_input = fid_input;
  for (auto& job : fid_input.jobs) job.fidelity_weight = 1.0;
  for (auto& job : jct_input.jobs) job.fidelity_weight = 0.0;
  SchedulerConfig config;  // the cycle default (0.5) is overridden per job
  config.nsga2.seed = 5;
  const auto fid_decision = schedule_cycle(fid_input, config);
  const auto jct_decision = schedule_cycle(jct_input, config);
  EXPECT_GT(fid_decision.chosen.mean_fidelity(), jct_decision.chosen.mean_fidelity());
  EXPECT_LT(jct_decision.chosen.mean_jct, fid_decision.chosen.mean_jct);
}

// Heterogeneous preferences inside ONE cycle: each job takes its placement
// from the Pareto point matching its own weight, so fidelity-preferring
// tenants land on higher-fidelity QPUs than JCT-preferring tenants sharing
// the batch.
TEST(Scheduler, MixedPreferencesInOneCycleServePerJobTradeoffs) {
  auto input = make_input(40, 4, 43);
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    input.jobs[j].fidelity_weight = (j % 2 == 0) ? 0.95 : 0.05;
  }
  SchedulerConfig config;
  config.nsga2.seed = 7;
  const auto decision = schedule_cycle(input, config);
  double fid_pref_mean = 0.0;
  double jct_pref_mean = 0.0;
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    ASSERT_GE(decision.assignment[j], 0);
    const auto q = static_cast<std::size_t>(decision.assignment[j]);
    (j % 2 == 0 ? fid_pref_mean : jct_pref_mean) += input.jobs[j].est_fidelity[q];
  }
  fid_pref_mean /= 20.0;
  jct_pref_mean /= 20.0;
  EXPECT_GT(fid_pref_mean, jct_pref_mean);
}

TEST(Scheduler, RejectsBadPerJobWeight) {
  auto input = make_input(5, 2, 19);
  input.jobs[2].fidelity_weight = 1.5;
  SchedulerConfig config;
  EXPECT_THROW(schedule_cycle(input, config), std::invalid_argument);
}

TEST(Scheduler, UniformPerJobWeightMatchesCycleGlobalWeight) {
  // Jobs all carrying the config default must reproduce the pre-QoS
  // decision bit for bit (the uniform fast path).
  const auto plain = make_input(30, 4, 47);
  auto tagged = plain;
  for (auto& job : tagged.jobs) job.fidelity_weight = 0.5;
  SchedulerConfig config;
  config.fidelity_weight = 0.5;
  config.nsga2.seed = 13;
  const auto a = schedule_cycle(plain, config);
  const auto b = schedule_cycle(tagged, config);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.chosen.mean_jct, b.chosen.mean_jct);
}

TEST(Scheduler, FiltersJobsThatFitNowhere) {
  auto input = make_input(10, 2, 17);
  input.jobs[3].qubits = 100;  // fits nothing
  SchedulerConfig config;
  const auto decision = schedule_cycle(input, config);
  EXPECT_EQ(decision.assignment[3], -1);
  EXPECT_EQ(decision.filtered_jobs, (std::vector<std::size_t>{3}));
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    if (j != 3) EXPECT_GE(decision.assignment[j], 0);
  }
}

TEST(Scheduler, EmptyPendingReturnsEmptyDecision) {
  SchedulingInput input;
  input.qpus = {{"a", 27, 0.0, true}};
  SchedulerConfig config;
  const auto decision = schedule_cycle(input, config);
  EXPECT_TRUE(decision.assignment.empty());
  EXPECT_TRUE(decision.pareto_front.empty());
}

TEST(Scheduler, RejectsBadWeight) {
  const auto input = make_input(5, 2, 19);
  SchedulerConfig config;
  config.fidelity_weight = 1.5;
  EXPECT_THROW(schedule_cycle(input, config), std::invalid_argument);
}

TEST(Baselines, BestFidelityConcentratesLoad) {
  const auto input = make_input(50, 4, 23);
  const auto assignment = assign_best_fidelity_fcfs(input);
  // The synthetic input makes QPU 0 the clear fidelity winner.
  std::size_t on_qpu0 = 0;
  for (int a : assignment) {
    ASSERT_GE(a, 0);
    if (a == 0) ++on_qpu0;
  }
  EXPECT_GT(on_qpu0, 40u);  // hotspot behaviour (Fig. 2c)
}

TEST(Baselines, LeastBusySpreadsLoad) {
  auto input = make_input(40, 4, 29);
  for (auto& qpu : input.qpus) qpu.queue_wait_seconds = 0.0;
  const auto assignment = assign_least_busy(input);
  std::vector<std::size_t> counts(4, 0);
  for (int a : assignment) {
    ASSERT_GE(a, 0);
    ++counts[static_cast<std::size_t>(a)];
  }
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_GT(counts[q], 3u) << "qpu " << q << " starved";
  }
}

TEST(Baselines, RandomRespectsFeasibility) {
  auto input = make_input(30, 3, 31);
  input.jobs[5].qubits = 100;
  const auto assignment = assign_random_feasible(input, 7);
  EXPECT_EQ(assignment[5], -1);
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    if (j != 5) EXPECT_GE(assignment[j], 0);
  }
}

TEST(Trigger, FiresOnQueueThreshold) {
  ScheduleTrigger trigger(10, 120.0);
  EXPECT_FALSE(trigger.should_fire(5.0, 9));
  EXPECT_TRUE(trigger.should_fire(5.0, 10));
}

TEST(Trigger, FiresOnTimer) {
  ScheduleTrigger trigger(100, 120.0);
  EXPECT_FALSE(trigger.should_fire(119.0, 1));
  EXPECT_TRUE(trigger.should_fire(120.0, 1));
  trigger.notify_fired(120.0);
  EXPECT_FALSE(trigger.should_fire(200.0, 1));
  EXPECT_TRUE(trigger.should_fire(240.0, 1));
}

TEST(Trigger, NeverFiresOnEmptyQueue) {
  ScheduleTrigger trigger(10, 120.0);
  EXPECT_FALSE(trigger.should_fire(1000.0, 0));
}

TEST(Trigger, EmptyQueueStaysQuietEvenFarPastTheDeadline) {
  ScheduleTrigger trigger(1, 10.0);
  trigger.notify_fired(5.0);
  EXPECT_FALSE(trigger.should_fire(1e9, 0));  // nothing to schedule, no cycle
  EXPECT_TRUE(trigger.should_fire(1e9, 1));   // one job re-arms everything
}

TEST(Trigger, FiresExactlyAtTheTimerDeadline) {
  ScheduleTrigger trigger(100, 60.0);
  trigger.notify_fired(30.5);
  EXPECT_DOUBLE_EQ(trigger.next_timer_deadline(), 90.5);
  EXPECT_FALSE(trigger.should_fire(90.499, 1));
  EXPECT_TRUE(trigger.should_fire(90.5, 1));  // >=, not >: the boundary fires
}

TEST(Trigger, ThresholdFiringResetsTheTimer) {
  ScheduleTrigger trigger(5, 60.0);
  EXPECT_TRUE(trigger.should_fire(10.0, 5));  // threshold fire, timer not due
  trigger.notify_fired(10.0);
  EXPECT_FALSE(trigger.should_fire(69.9, 1));  // timer restarted at t=10
  EXPECT_TRUE(trigger.should_fire(70.0, 1));
}

TEST(Trigger, NextTimerDeadlineTracksRepeatedCycles) {
  ScheduleTrigger trigger(10, 120.0);
  EXPECT_DOUBLE_EQ(trigger.next_timer_deadline(), 120.0);
  trigger.notify_fired(50.0);
  EXPECT_DOUBLE_EQ(trigger.next_timer_deadline(), 170.0);
  trigger.notify_fired(250.0);  // a late threshold fire still resets fully
  EXPECT_DOUBLE_EQ(trigger.next_timer_deadline(), 370.0);
}

TEST(Trigger, ValidatesParameters) {
  EXPECT_THROW(ScheduleTrigger(0, 120.0), std::invalid_argument);
  EXPECT_THROW(ScheduleTrigger(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ScheduleTrigger(10, -5.0), std::invalid_argument);
}

TEST(Classical, FilterRemovesOverCommittedNodes) {
  auto nodes = make_node_pool(2, 0, 0);
  nodes[0].cores_used = 8;  // full
  ClassicalRequest req;
  req.cores = 4;
  const int pick = schedule_classical(nodes, req);
  EXPECT_EQ(pick, 1);
}

TEST(Classical, GpuRequestNeedsGpuNode) {
  const auto nodes = make_node_pool(3, 1, 0);
  const auto req = request_for_accelerator(mitigation::Accelerator::kGpu);
  const int pick = schedule_classical(nodes, req);
  ASSERT_GE(pick, 0);
  EXPECT_GT(nodes[static_cast<std::size_t>(pick)].gpus, 0);
}

TEST(Classical, NoFitReturnsMinusOne) {
  const auto nodes = make_node_pool(2, 0, 0);
  ClassicalRequest req;
  req.gpus = 1;
  EXPECT_EQ(schedule_classical(nodes, req), -1);
}

TEST(Classical, LeastAllocatedPrefersEmptierNode) {
  auto nodes = make_node_pool(2, 0, 0);
  nodes[0].cores_used = 6;
  nodes[1].cores_used = 0;
  ClassicalRequest req;
  req.cores = 1;
  req.memory_gb = 1.0;
  EXPECT_EQ(schedule_classical(nodes, req, least_allocated_score), 1);
  // Bin packing goes the other way.
  EXPECT_EQ(schedule_classical(nodes, req, most_allocated_score), 0);
}

TEST(Classical, FpgaPoolServesFpgaRequests) {
  const auto nodes = make_node_pool(1, 1, 2);
  const auto req = request_for_accelerator(mitigation::Accelerator::kFpga);
  const int pick = schedule_classical(nodes, req);
  ASSERT_GE(pick, 0);
  EXPECT_GT(nodes[static_cast<std::size_t>(pick)].fpgas, 0);
}

// Scaling property (Fig. 9c rationale): evaluation cost is O(N), so cycles
// with more QPUs but equal jobs should not blow up.
class SchedulerQpuSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SchedulerQpuSweep, HandlesClusterSize) {
  const auto input = make_input(30, GetParam(), 37);
  SchedulerConfig config;
  config.nsga2.seed = 41;
  const auto decision = schedule_cycle(input, config);
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    EXPECT_GE(decision.assignment[j], 0);
    EXPECT_LT(decision.assignment[j], static_cast<int>(GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(ClusterSizes, SchedulerQpuSweep, ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace qon::sched
