// Tests for the live health layer (src/obs/health.*, src/obs/slo.*): the
// Heartbeat/HealthMonitor watchdog verdict logic (idle-awareness, stall
// naming, probe passthrough, worst-of aggregation), the SLO burn-rate
// monitor (windowed burn math, bucket-ring recycling, the pending ->
// firing -> resolved state machine with hysteresis), the typed getHealth
// surface end to end, the render_health_json exporter, and the wedge
// death test: a fault-injected stall in the scheduler snapshot hook is
// detected and NAMED by getHealth long before any test timeout.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "obs/export.hpp"
#include "obs/health.hpp"
#include "obs/slo.hpp"

namespace qon {
namespace {

using namespace std::chrono_literals;

// ---- Heartbeat ---------------------------------------------------------------

TEST(Heartbeat, StartsNeverBeatenAndCountsBeats) {
  obs::Heartbeat beat;
  EXPECT_EQ(beat.count(), 0u);
  EXPECT_LT(beat.last_beat_seconds(), 0.0);  // negative = never

  beat.beat();
  beat.beat();
  EXPECT_EQ(beat.count(), 2u);
  const double age = obs::Heartbeat::now_seconds() - beat.last_beat_seconds();
  EXPECT_GE(age, 0.0);
  EXPECT_LT(age, 5.0);  // just beaten
}

// ---- HealthMonitor watchdog verdicts -----------------------------------------

TEST(HealthMonitor, IdleComponentWithoutBeatsIsHealthy) {
  obs::HealthMonitor monitor;
  obs::Heartbeat beat;  // never beaten
  obs::HealthMonitor::WatchdogOptions options;
  options.stall_budget_seconds = 0.001;
  options.busy = [] { return false; };  // no work -> silence is fine
  monitor.watch("idler", &beat, options);

  const auto components = monitor.check();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].component, "idler");
  EXPECT_EQ(components[0].status, api::HealthStatus::kHealthy);
  EXPECT_EQ(components[0].detail, "idle");
  EXPECT_EQ(monitor.overall(components), api::HealthStatus::kHealthy);
}

TEST(HealthMonitor, BusyComponentThatNeverBeatIsDegraded) {
  obs::HealthMonitor monitor;
  obs::Heartbeat beat;
  obs::HealthMonitor::WatchdogOptions options;
  options.stall_budget_seconds = 60.0;
  options.busy = [] { return true; };  // has work but no beat yet
  monitor.watch("starter", &beat, options);

  const auto components = monitor.check();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].status, api::HealthStatus::kDegraded);
}

TEST(HealthMonitor, StalledBusyComponentIsUnhealthyAndNamed) {
  obs::HealthMonitor monitor;
  obs::Heartbeat beat;
  beat.beat();
  obs::HealthMonitor::WatchdogOptions options;
  options.stall_budget_seconds = 0.0005;  // any scheduling delay exceeds it
  options.busy = [] { return true; };
  monitor.watch("wedged-loop", &beat, options);

  std::this_thread::sleep_for(5ms);  // let the heartbeat age past the budget
  const auto components = monitor.check();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].status, api::HealthStatus::kUnhealthy);
  EXPECT_EQ(components[0].component, "wedged-loop");
  EXPECT_NE(components[0].detail.find("stalled"), std::string::npos);
  EXPECT_EQ(components[0].heartbeats, 1u);
  EXPECT_GT(components[0].heartbeat_age_seconds, 0.0);
  EXPECT_EQ(monitor.overall(components), api::HealthStatus::kUnhealthy);
}

TEST(HealthMonitor, FreshBeatWithinBudgetIsHealthy) {
  obs::HealthMonitor monitor;
  obs::Heartbeat beat;
  obs::HealthMonitor::WatchdogOptions options;
  options.stall_budget_seconds = 300.0;
  options.busy = [] { return true; };
  monitor.watch("ticker", &beat, options);

  beat.beat();
  const auto components = monitor.check();
  ASSERT_EQ(components.size(), 1u);
  EXPECT_EQ(components[0].status, api::HealthStatus::kHealthy);
}

TEST(HealthMonitor, ProbeVerdictsPassThroughAndAggregateWorst) {
  obs::HealthMonitor monitor;
  obs::Heartbeat beat;
  beat.beat();
  obs::HealthMonitor::WatchdogOptions options;
  options.stall_budget_seconds = 300.0;
  monitor.watch("beating", &beat, options);
  monitor.probe("gate", [] {
    api::ComponentHealth health;
    health.component = "gate";
    health.status = api::HealthStatus::kDegraded;
    health.detail = "live 9 / limit 10";
    return health;
  });

  const auto components = monitor.check();
  ASSERT_EQ(components.size(), 2u);
  EXPECT_EQ(components[0].component, "beating");
  EXPECT_EQ(components[1].component, "gate");
  EXPECT_EQ(components[1].status, api::HealthStatus::kDegraded);
  EXPECT_EQ(components[1].detail, "live 9 / limit 10");
  EXPECT_EQ(monitor.overall(components), api::HealthStatus::kDegraded);
  EXPECT_EQ(monitor.overall({}), api::HealthStatus::kHealthy);
}

// ---- SloMonitor: burn math ---------------------------------------------------

std::array<double, api::kNumPriorities> slo_targets(double interactive,
                                                    double standard,
                                                    double batch) {
  std::array<double, api::kNumPriorities> targets{};
  targets[static_cast<std::size_t>(api::Priority::kInteractive)] = interactive;
  targets[static_cast<std::size_t>(api::Priority::kStandard)] = standard;
  targets[static_cast<std::size_t>(api::Priority::kBatch)] = batch;
  return targets;
}

obs::SloRule standard_rule() {
  obs::SloRule rule;
  rule.name = "standard-burn";
  rule.priority = api::Priority::kStandard;
  rule.attainment_target = 0.9;  // budget = 0.1 -> burn = 10 x bad fraction
  rule.fast_window_seconds = 300.0;
  rule.slow_window_seconds = 3600.0;
  rule.burn_threshold = 2.0;
  rule.clear_threshold = 1.0;
  rule.min_samples = 10;
  return rule;
}

TEST(SloMonitor, BurnIsBadFractionOverErrorBudget) {
  obs::SloMonitor slo(slo_targets(0.0, 100.0, 0.0), {standard_rule()});
  // 20 samples at t=1000: 15 within the 100 s target, 5 late/failed.
  for (int i = 0; i < 15; ++i) {
    slo.record(api::Priority::kStandard, 50.0, 1000.0, true);
  }
  for (int i = 0; i < 3; ++i) {
    slo.record(api::Priority::kStandard, 500.0, 1000.0, true);  // late
  }
  for (int i = 0; i < 2; ++i) {
    slo.record(api::Priority::kStandard, 10.0, 1000.0, false);  // failed
  }
  const auto burn = slo.burn(api::Priority::kStandard, 300.0, 0.9, 1000.0);
  EXPECT_EQ(burn.total, 20u);
  EXPECT_EQ(burn.good, 15u);
  EXPECT_NEAR(burn.rate, (5.0 / 20.0) / 0.1, 1e-9);  // 2.5x budget
  EXPECT_EQ(slo.recorded_total(), 20u);
}

TEST(SloMonitor, UntrackedClassIsIgnored) {
  obs::SloMonitor slo(slo_targets(0.0, 100.0, 0.0), {standard_rule()});
  slo.record(api::Priority::kBatch, 1.0, 100.0, true);  // no batch target
  EXPECT_EQ(slo.recorded_total(), 0u);
  const auto burn = slo.burn(api::Priority::kBatch, 300.0, 0.9, 100.0);
  EXPECT_EQ(burn.total, 0u);
  EXPECT_EQ(burn.rate, 0.0);
}

TEST(SloMonitor, SlidingWindowForgetsOldBuckets) {
  obs::SloMonitor slo(slo_targets(0.0, 100.0, 0.0), {standard_rule()});
  for (int i = 0; i < 10; ++i) {
    slo.record(api::Priority::kStandard, 500.0, 100.0, true);  // all bad
  }
  // Inside the fast window the burn is maximal...
  EXPECT_NEAR(slo.burn(api::Priority::kStandard, 300.0, 0.9, 150.0).rate, 10.0,
              1e-9);
  // ...and once the window slides past those buckets, nothing remains.
  const auto later = slo.burn(api::Priority::kStandard, 300.0, 0.9, 1000.0);
  EXPECT_EQ(later.total, 0u);
  EXPECT_EQ(later.rate, 0.0);
}

// ---- SloMonitor: alert state machine -----------------------------------------

TEST(SloMonitor, WalksPendingFiringResolvedInactive) {
  obs::SloMonitor slo(slo_targets(0.0, 100.0, 0.0), {standard_rule()});

  // t=100: 20 all-bad samples -> fast burn 10 >= 2, but the state machine
  // enters kPending first (multi-window rule: one fast breach never pages).
  for (int i = 0; i < 20; ++i) {
    slo.record(api::Priority::kStandard, 0.0, 100.0, false);
  }
  auto transitions = slo.evaluate(100.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].state, api::AlertState::kPending);
  EXPECT_EQ(transitions[0].rule, "standard-burn");
  EXPECT_GE(transitions[0].fast_burn, 2.0);

  // Still burning at the next evaluation: slow window also breaches -> firing.
  for (int i = 0; i < 20; ++i) {
    slo.record(api::Priority::kStandard, 0.0, 400.0, false);
  }
  transitions = slo.evaluate(400.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].state, api::AlertState::kFiring);

  // Recovery: the fast window slides clear of the bad buckets -> resolved.
  for (int i = 0; i < 20; ++i) {
    slo.record(api::Priority::kStandard, 10.0, 5000.0, true);
  }
  transitions = slo.evaluate(5000.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].state, api::AlertState::kResolved);

  // Resolved decays to inactive silently on the next evaluation.
  transitions = slo.evaluate(5300.0);
  EXPECT_TRUE(transitions.empty());
  const auto alerts = slo.alerts(5300.0);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].state, api::AlertState::kInactive);
}

TEST(SloMonitor, HysteresisHoldsFiringBetweenClearAndBurnThresholds) {
  obs::SloMonitor slo(slo_targets(0.0, 100.0, 0.0), {standard_rule()});
  // Drive to firing with an all-bad window.
  for (int i = 0; i < 40; ++i) {
    slo.record(api::Priority::kStandard, 0.0, 100.0, false);
  }
  slo.evaluate(100.0);
  slo.evaluate(160.0);
  ASSERT_EQ(slo.alerts(160.0)[0].state, api::AlertState::kFiring);

  // A window hovering at burn 1.5 (between clear 1.0 and threshold 2.0)
  // must NOT resolve the alert — that is the hysteresis band.
  for (int i = 0; i < 17; ++i) {
    slo.record(api::Priority::kStandard, 10.0, 700.0, true);
  }
  for (int i = 0; i < 3; ++i) {
    slo.record(api::Priority::kStandard, 500.0, 700.0, true);  // 15% bad
  }
  auto transitions = slo.evaluate(700.0);
  EXPECT_TRUE(transitions.empty());
  EXPECT_EQ(slo.alerts(700.0)[0].state, api::AlertState::kFiring);
}

TEST(SloMonitor, MinSamplesGateStopsEmptyWindowPaging) {
  obs::SloMonitor slo(slo_targets(0.0, 100.0, 0.0), {standard_rule()});
  // A single bad run in an otherwise empty window is burn 10 — but with
  // fewer than min_samples observations it must not even go pending.
  slo.record(api::Priority::kStandard, 0.0, 100.0, false);
  EXPECT_TRUE(slo.evaluate(100.0).empty());
  EXPECT_EQ(slo.alerts(100.0)[0].state, api::AlertState::kInactive);
}

TEST(SloMonitor, PendingFallsBackToInactiveWhenBurnClears) {
  obs::SloMonitor slo(slo_targets(0.0, 100.0, 0.0), {standard_rule()});
  for (int i = 0; i < 20; ++i) {
    slo.record(api::Priority::kStandard, 0.0, 100.0, false);
  }
  slo.evaluate(100.0);  // -> pending
  // The blip passes before the slow window ever breached: back to inactive.
  const auto transitions = slo.evaluate(5000.0);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].state, api::AlertState::kInactive);
}

// ---- getHealth end to end ----------------------------------------------------

workflow::ImageId deploy_quantum(api::QonductorClient& client,
                                 const std::string& name) {
  api::CreateWorkflowRequest create;
  create.name = name;
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(3), 64));
  auto created = client.createWorkflow(std::move(create));
  EXPECT_TRUE(created.ok()) << created.status().to_string();
  api::DeployRequest deploy;
  deploy.image = created->image;
  auto deployed = client.deploy(deploy);
  EXPECT_TRUE(deployed.ok()) << deployed.status().to_string();
  return created->image;
}

const api::ComponentHealth* find_component(
    const std::vector<api::ComponentHealth>& components,
    const std::string& name) {
  for (const auto& component : components) {
    if (component.component == name) return &component;
  }
  return nullptr;
}

TEST(GetHealth, QuiescentSystemReportsEveryComponentHealthy) {
  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 7;
  config.trajectory_width_limit = 0;
  config.scheduler_service.queue_threshold = 2;
  config.scheduler_service.linger = 5ms;
  config.health.slo_seconds[static_cast<std::size_t>(api::Priority::kStandard)] =
      3600.0;
  config.health.alert_rules.push_back(standard_rule());
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "health-happy");

  std::vector<api::InvokeRequest> requests(4);
  for (auto& request : requests) request.image = image;
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();
  for (auto& handle : *handles) {
    ASSERT_EQ(handle.wait(), api::RunStatus::kCompleted);
  }

  const auto health = client.getHealth();
  ASSERT_TRUE(health.ok()) << health.status().to_string();
  EXPECT_EQ(health->status, api::HealthStatus::kHealthy);
  for (const char* name :
       {"engine", "scheduler", "queue", "admission", "fleet"}) {
    const api::ComponentHealth* component =
        find_component(health->components, name);
    ASSERT_NE(component, nullptr) << "missing component " << name;
    EXPECT_EQ(component->status, api::HealthStatus::kHealthy)
        << name << ": " << component->detail;
  }
  // The engine and scheduler actually beat while settling the four runs.
  EXPECT_GT(find_component(health->components, "engine")->heartbeats, 0u);
  EXPECT_GT(find_component(health->components, "scheduler")->heartbeats, 0u);
  // The SLO monitor saw every settle; the quiet rule reports inactive.
  ASSERT_EQ(health->alerts.size(), 1u);
  EXPECT_EQ(health->alerts[0].rule, "standard-burn");
  EXPECT_EQ(health->alerts[0].state, api::AlertState::kInactive);

  // Exporter smoke: the JSON names every component and the alert rule.
  const std::string json = obs::render_health_json(*health);
  EXPECT_NE(json.find("\"status\": \"healthy\""), std::string::npos);
  EXPECT_NE(json.find("\"component\": \"scheduler\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"standard-burn\""), std::string::npos);
}

TEST(GetHealth, RejectsUnsupportedApiVersion) {
  core::QonductorConfig config;
  config.num_qpus = 1;
  api::QonductorClient client(config);
  api::GetHealthRequest request;
  request.api_version = api::kApiVersion + 1;
  EXPECT_EQ(client.getHealth(request).status().code(),
            api::StatusCode::kUnimplemented);
}

// ---- the wedge death test ----------------------------------------------------

// A scheduler cycle wedged inside its snapshot hook must be detected — and
// named — by getHealth within the (tiny) stall budget, not discovered as a
// hung 300 s ctest timeout. The fault injection point runs on the
// scheduler thread at the top of every cycle, before any engine lock.
TEST(GetHealth, WedgedSchedulerIsNamedUnhealthyWhileStalled) {
  std::atomic<bool> wedged{false};
  core::QonductorConfig config;
  config.num_qpus = 2;
  config.seed = 9;
  config.trajectory_width_limit = 0;
  config.scheduler_service.queue_threshold = 1;
  config.scheduler_service.linger = 5ms;
  config.scheduler_service.scheduler_stall_budget_seconds = 0.05;
  config.health.scheduler_fault_injection = [&] {
    while (wedged.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(1ms);
    }
  };
  api::QonductorClient client(config);
  const auto image = deploy_quantum(client, "health-wedge");

  // Healthy first: one run settles end to end.
  api::InvokeRequest request;
  request.image = image;
  auto warmup = client.invoke(request);
  ASSERT_TRUE(warmup.ok());
  ASSERT_EQ(warmup->wait(), api::RunStatus::kCompleted);

  // Wedge the scheduler, then park a task so the queue is demonstrably
  // non-empty (busy) while the cycle thread is stuck in the hook.
  wedged.store(true);
  auto parked = client.invoke(request);
  ASSERT_TRUE(parked.ok());

  // The stall verdict must arrive well before any test timeout: poll
  // getHealth for at most ~2 s against a 50 ms budget.
  bool named = false;
  for (int i = 0; i < 2000 && !named; ++i) {
    const auto health = client.getHealth();
    ASSERT_TRUE(health.ok());
    const api::ComponentHealth* scheduler =
        find_component(health->components, "scheduler");
    ASSERT_NE(scheduler, nullptr);
    if (health->status == api::HealthStatus::kUnhealthy &&
        scheduler->status == api::HealthStatus::kUnhealthy &&
        scheduler->detail.find("stalled") != std::string::npos) {
      named = true;
    }
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(named) << "wedged scheduler never reported unhealthy";

  // Release the wedge: the parked run settles and health recovers.
  wedged.store(false);
  ASSERT_EQ(parked->wait(), api::RunStatus::kCompleted);
}

}  // namespace
}  // namespace qon
