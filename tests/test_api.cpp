// Tests for the v1 typed/async API surface: Status + Result<T>, the
// request/response client facade, the non-blocking invoke() lifecycle
// (poll/wait/wait_for/cancel), batched invokeAll, typed error codes, API
// versioning, a concurrency smoke test, and a randomized lifecycle
// property test (every observed state sequence is a prefix walk of
// kPending -> kRunning -> terminal, and all terminal queries agree).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <iostream>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "api/client.hpp"
#include "circuit/library.hpp"
#include "common/rng.hpp"

namespace qon::api {
namespace {

using namespace std::chrono_literals;

core::QonductorConfig small_config() {
  core::QonductorConfig config;
  config.num_qpus = 3;
  config.seed = 4242;
  config.trajectory_width_limit = 8;
  return config;
}

/// A latch the on_task_start hook can block on: the test observes that a
/// task entered execution, does its assertions, then releases the run.
struct TaskGate {
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  std::atomic<bool> armed{true};  ///< only gate the first task that arrives
};

core::QonductorConfig gated_config(const std::shared_ptr<TaskGate>& gate) {
  auto config = small_config();
  config.on_task_start = [gate](RunId, const std::string&) {
    if (gate->armed.exchange(false)) {
      gate->entered.set_value();
      gate->release_future.wait();
    }
  };
  return config;
}

workflow::ImageId deploy_classical(QonductorClient& client, const std::string& name,
                                   int num_tasks = 1) {
  CreateWorkflowRequest request;
  request.name = name;
  for (int t = 0; t < num_tasks; ++t) {
    request.tasks.push_back(
        workflow::HybridTask::classical(name + "-t" + std::to_string(t), 0.1));
  }
  auto created = client.createWorkflow(request);
  EXPECT_TRUE(created.ok()) << created.status().to_string();
  DeployRequest deploy_request;
  deploy_request.image = created->image;
  auto deployed = client.deploy(deploy_request);
  EXPECT_TRUE(deployed.ok()) << deployed.status().to_string();
  return created->image;
}

// ---- Status / Result ---------------------------------------------------------

TEST(Status, DefaultIsOkAndFormats) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.to_string(), "OK");

  const Status missing = NotFound("image 7");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.code(), StatusCode::kNotFound);
  EXPECT_EQ(missing.to_string(), "NOT_FOUND: image 7");
  EXPECT_STREQ(status_code_name(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
}

TEST(ResultT, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good.status().ok());
  EXPECT_EQ(*good, 42);
  EXPECT_EQ(good.value_or(-1), 42);

  Result<int> bad = InvalidArgument("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(-1), -1);

  // An OK status without a value is a logic error, normalized to kInternal.
  Result<int> weird = Status::Ok();
  EXPECT_FALSE(weird.ok());
  EXPECT_EQ(weird.status().code(), StatusCode::kInternal);
}

TEST(Status, RetryAfterDetailRidesTheStatus) {
  Status shed = ResourceExhausted("admission gate shed batch-class run");
  EXPECT_FALSE(shed.retry_after_seconds().has_value());

  // set_retry_after composes with the canonical constructors…
  shed = ResourceExhausted("admission gate shed batch-class run").set_retry_after(5.0);
  ASSERT_TRUE(shed.retry_after_seconds().has_value());
  EXPECT_DOUBLE_EQ(*shed.retry_after_seconds(), 5.0);
  // …renders into the human form…
  EXPECT_NE(shed.to_string().find("[retry after"), std::string::npos) << shed.to_string();
  // …and participates in equality: same code+message, different hint.
  const Status same_text = ResourceExhausted("admission gate shed batch-class run");
  EXPECT_FALSE(shed == same_text);
  EXPECT_TRUE(shed == Status(shed));
  // OK statuses are unaffected.
  EXPECT_EQ(Status::Ok().to_string(), "OK");
}

// ---- async lifecycle ---------------------------------------------------------

TEST(AsyncInvoke, ReturnsBeforeExecutionCompletes) {
  auto gate = std::make_shared<TaskGate>();
  QonductorClient client(gated_config(gate));
  const auto image = deploy_classical(client, "async");

  InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();

  // invoke() came back while the run is still in flight.
  EXPECT_FALSE(run_status_terminal(handle->poll()));

  gate->entered.get_future().wait();
  EXPECT_EQ(handle->poll(), RunStatus::kRunning);

  gate->release.set_value();
  EXPECT_EQ(handle->wait(), RunStatus::kCompleted);

  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, RunStatus::kCompleted);
  ASSERT_EQ(result->tasks.size(), 1u);
  EXPECT_TRUE(result->error.ok());
  EXPECT_EQ(client.backend().monitor().workflow_status(handle->id()).value_or(""),
            "completed");
}

TEST(AsyncInvoke, WaitForTimesOutWhileInFlight) {
  auto gate = std::make_shared<TaskGate>();
  QonductorClient client(gated_config(gate));
  const auto image = deploy_classical(client, "timeout");

  InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  gate->entered.get_future().wait();

  auto waited = handle->wait_for(10ms);
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kDeadlineExceeded);

  gate->release.set_value();
  auto done = handle->wait_for(10s);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done, RunStatus::kCompleted);
}

TEST(AsyncInvoke, WorkflowResultsNonBlockingQuery) {
  auto gate = std::make_shared<TaskGate>();
  QonductorClient client(gated_config(gate));
  const auto image = deploy_classical(client, "nonblocking");

  InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  gate->entered.get_future().wait();

  WorkflowResultsRequest results_request;
  results_request.run = handle->id();
  results_request.wait = false;
  auto in_flight = client.workflowResults(results_request);
  ASSERT_FALSE(in_flight.ok());
  EXPECT_EQ(in_flight.status().code(), StatusCode::kUnavailable);

  gate->release.set_value();
  handle->wait();
  results_request.wait = true;
  auto done = client.workflowResults(results_request);
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(done->result.status, RunStatus::kCompleted);
}

TEST(AsyncInvoke, CancelMidRunStopsAtTaskBoundary) {
  auto gate = std::make_shared<TaskGate>();
  QonductorClient client(gated_config(gate));
  const auto image = deploy_classical(client, "cancel", /*num_tasks=*/3);

  InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  gate->entered.get_future().wait();  // task 0 is executing

  EXPECT_TRUE(handle->cancel());
  gate->release.set_value();

  EXPECT_EQ(handle->wait(), RunStatus::kCancelled);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, RunStatus::kCancelled);
  EXPECT_EQ(result->error.code(), StatusCode::kCancelled);
  // Task 0 completed before the cancellation took effect; tasks 1-2 never ran.
  EXPECT_EQ(result->tasks.size(), 1u);
  EXPECT_FALSE(handle->cancel());  // already terminal
  EXPECT_EQ(client.backend().monitor().workflow_status(handle->id()).value_or(""),
            "cancelled");
}

// A cancel that lands after the last task has executed must not relabel
// the finished work: the run completes (the engine's final bookkeeping
// event checks completion before cancellation, matching the pre-engine
// loop, which never re-checked cancel after the last task).
TEST(AsyncInvoke, CancelAfterLastTaskStillCompletes) {
  auto gate = std::make_shared<TaskGate>();
  QonductorClient client(gated_config(gate));
  const auto image = deploy_classical(client, "late-cancel", /*num_tasks=*/1);

  InvokeRequest request;
  request.image = image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  gate->entered.get_future().wait();  // the only task is executing

  EXPECT_TRUE(handle->cancel());  // not yet terminal, so cancel() is accepted
  gate->release.set_value();

  // The task finishes after the cancel request; with nothing left to
  // cancel, the run reports the completed work instead of kCancelled.
  EXPECT_EQ(handle->wait(), RunStatus::kCompleted);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, RunStatus::kCompleted);
  EXPECT_TRUE(result->error.ok());
  EXPECT_EQ(result->tasks.size(), 1u);
}

TEST(AsyncInvoke, CancelWhileQueuedRunsNothing) {
  auto gate = std::make_shared<TaskGate>();
  auto config = gated_config(gate);
  config.executor_threads = 1;  // one lane: the second run must queue
  QonductorClient client(config);
  const auto blocker = deploy_classical(client, "blocker");
  const auto queued = deploy_classical(client, "queued");

  InvokeRequest blocker_request;
  blocker_request.image = blocker;
  auto blocker_handle = client.invoke(blocker_request);
  ASSERT_TRUE(blocker_handle.ok());
  gate->entered.get_future().wait();  // the lane is now occupied

  InvokeRequest queued_request;
  queued_request.image = queued;
  auto queued_handle = client.invoke(queued_request);
  ASSERT_TRUE(queued_handle.ok());
  EXPECT_EQ(queued_handle->poll(), RunStatus::kPending);
  EXPECT_TRUE(queued_handle->cancel());

  gate->release.set_value();
  EXPECT_EQ(blocker_handle->wait(), RunStatus::kCompleted);
  EXPECT_EQ(queued_handle->wait(), RunStatus::kCancelled);
  auto result = queued_handle->result();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->tasks.empty());  // cancelled before any task ran
}

TEST(AsyncInvoke, QuantumWorkflowCompletesAsync) {
  QonductorClient client(small_config());
  CreateWorkflowRequest create;
  create.name = "ghz-async";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 1000));
  auto created = client.createWorkflow(create);
  ASSERT_TRUE(created.ok());
  DeployRequest deploy_request;
  deploy_request.image = created->image;
  ASSERT_TRUE(client.deploy(deploy_request).ok());

  InvokeRequest request;
  request.image = created->image;
  auto handle = client.invoke(request);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->wait(), RunStatus::kCompleted);
  auto result = handle->result();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tasks.size(), 1u);
  EXPECT_GT(result->tasks[0].fidelity, 0.0);
  EXPECT_LE(result->tasks[0].fidelity, 1.0);
  EXPECT_FALSE(result->tasks[0].resource.empty());
}

// ---- typed error codes -------------------------------------------------------

TEST(ApiErrors, CreateWorkflowRejectsEmptyAndBadConfig) {
  QonductorClient client(small_config());
  CreateWorkflowRequest empty;
  empty.name = "empty";
  auto created = client.createWorkflow(empty);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

TEST(ApiErrors, DeployUnknownImageIsNotFound) {
  QonductorClient client(small_config());
  DeployRequest request;
  request.image = 999;
  auto deployed = client.deploy(request);
  ASSERT_FALSE(deployed.ok());
  EXPECT_EQ(deployed.status().code(), StatusCode::kNotFound);
}

TEST(ApiErrors, DoubleDeployIsAlreadyExists) {
  QonductorClient client(small_config());
  const auto image = deploy_classical(client, "once");
  DeployRequest request;
  request.image = image;
  auto again = client.deploy(request);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kAlreadyExists);
}

TEST(ApiErrors, DeployOversizedCircuitIsResourceExhausted) {
  QonductorClient client(small_config());
  circuit::Circuit big(28);
  big.h(0);
  big.measure_all();
  CreateWorkflowRequest create;
  create.name = "too-big";
  create.tasks.push_back(workflow::HybridTask::quantum("big", big));
  auto created = client.createWorkflow(create);
  ASSERT_TRUE(created.ok());
  DeployRequest request;
  request.image = created->image;
  auto deployed = client.deploy(request);
  ASSERT_FALSE(deployed.ok());
  EXPECT_EQ(deployed.status().code(), StatusCode::kResourceExhausted);
}

TEST(ApiErrors, InvokeUndeployedIsFailedPrecondition) {
  QonductorClient client(small_config());
  CreateWorkflowRequest create;
  create.name = "undeployed";
  create.tasks.push_back(workflow::HybridTask::classical("only", 0.1));
  auto created = client.createWorkflow(create);
  ASSERT_TRUE(created.ok());

  InvokeRequest request;
  request.image = created->image;
  auto handle = client.invoke(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ApiErrors, InvokeUnknownImageIsNotFound) {
  QonductorClient client(small_config());
  InvokeRequest request;
  request.image = 12345;
  auto handle = client.invoke(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kNotFound);
}

TEST(ApiErrors, UnknownRunIsNotFound) {
  QonductorClient client(small_config());
  WorkflowStatusRequest status_request;
  status_request.run = 9999;
  auto status = client.workflowStatus(status_request);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), StatusCode::kNotFound);

  WorkflowResultsRequest results_request;
  results_request.run = 9999;
  auto results = client.workflowResults(results_request);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kNotFound);
}

TEST(ApiErrors, ListRunsZeroPageSizeIsInvalidArgument) {
  QonductorClient client(small_config());
  ListRunsRequest request;
  request.page_size = 0;  // used to be silently clamped to 1
  auto response = client.listRuns(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);

  // Oversized pages are clamped to the documented bound, not rejected.
  ListRunsRequest huge;
  huge.page_size = kMaxListRunsPageSize + 1;
  EXPECT_TRUE(client.listRuns(huge).ok());
}

// ---- per-job QoS preferences -------------------------------------------------

TEST(Preferences, BadValuesAreInvalidArgument) {
  QonductorClient client(small_config());
  const auto image = deploy_classical(client, "qos-bad");

  InvokeRequest request;
  request.image = image;
  request.preferences.fidelity_weight = 1.5;
  auto handle = client.invoke(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInvalidArgument);

  request.preferences.fidelity_weight = -0.1;
  EXPECT_EQ(client.invoke(request).status().code(), StatusCode::kInvalidArgument);

  request.preferences.fidelity_weight.reset();
  request.preferences.deadline_seconds = -1.0;
  EXPECT_EQ(client.invoke(request).status().code(), StatusCode::kInvalidArgument);

  // A priority smuggled past the enum (e.g. a wire layer) is rejected, not
  // used as an out-of-bounds lane index.
  request.preferences.deadline_seconds.reset();
  request.preferences.priority = static_cast<Priority>(17);
  EXPECT_EQ(client.invoke(request).status().code(), StatusCode::kInvalidArgument);
  request.preferences.priority = Priority::kStandard;

  // invokeAll validates the whole batch atomically: nothing starts.
  std::vector<InvokeRequest> batch(2);
  batch[0].image = image;
  batch[1].image = image;
  batch[1].preferences.fidelity_weight = 2.0;
  auto handles = client.invokeAll(batch);
  ASSERT_FALSE(handles.ok());
  EXPECT_EQ(handles.status().code(), StatusCode::kInvalidArgument);
}

TEST(Preferences, EchoedInRunInfoWithResolvedDefault) {
  auto config = small_config();
  config.fidelity_weight = 0.25;
  QonductorClient client(config);
  const auto image = deploy_classical(client, "qos-echo");

  // A request without preferences reproduces pre-QoS behavior: the echo
  // shows the deployment default, no deadline, standard priority.
  InvokeRequest plain;
  plain.image = image;
  auto plain_handle = client.invoke(plain);
  ASSERT_TRUE(plain_handle.ok());
  plain_handle->wait();
  auto plain_info = client.getRun(plain_handle->id());
  ASSERT_TRUE(plain_info.ok());
  ASSERT_TRUE(plain_info->preferences.fidelity_weight.has_value());
  EXPECT_DOUBLE_EQ(*plain_info->preferences.fidelity_weight, 0.25);
  EXPECT_FALSE(plain_info->preferences.deadline_seconds.has_value());
  EXPECT_EQ(plain_info->preferences.priority, Priority::kStandard);

  InvokeRequest tuned;
  tuned.image = image;
  tuned.preferences.fidelity_weight = 0.9;
  tuned.preferences.deadline_seconds = 1e6;
  tuned.preferences.priority = Priority::kInteractive;
  auto tuned_handle = client.invoke(tuned);
  ASSERT_TRUE(tuned_handle.ok());
  tuned_handle->wait();
  auto info = tuned_handle->info();  // the handle echoes too, not just getRun
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info->preferences.fidelity_weight.has_value());
  EXPECT_DOUBLE_EQ(*info->preferences.fidelity_weight, 0.9);
  ASSERT_TRUE(info->preferences.deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(*info->preferences.deadline_seconds, 1e6);
  EXPECT_EQ(info->preferences.priority, Priority::kInteractive);
  EXPECT_STREQ(priority_name(Priority::kInteractive), "interactive");
}

// Deadline-aware admission: a deadline at/before the fleet-clock frontier
// can never be met, so invoke() rejects it DEADLINE_EXCEEDED at submit time
// instead of parking the run until a scheduling cycle discovers the miss.
TEST(Preferences, UnmeetableDeadlineIsRejectedAtSubmitTime) {
  QonductorClient client(small_config());
  const auto image = deploy_classical(client, "dead-on-arrival");

  // The fleet clock starts at 0: a deadline of 0 lies AT the frontier.
  InvokeRequest request;
  request.image = image;
  request.preferences.deadline_seconds = 0.0;
  auto rejected = client.invoke(request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kDeadlineExceeded);

  // Nothing was parked or recorded: the run table is still empty.
  auto listed = client.listRuns();
  ASSERT_TRUE(listed.ok());
  EXPECT_TRUE(listed->runs.empty());

  // Advance the frontier by completing a run, then submit a deadline the
  // clock has already passed.
  InvokeRequest plain;
  plain.image = image;
  auto first = client.invoke(plain);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->wait(), RunStatus::kCompleted);
  const double frontier = client.backend().fleetNow();
  ASSERT_GT(frontier, 0.0);

  request.preferences.deadline_seconds = frontier / 2.0;
  EXPECT_EQ(client.invoke(request).status().code(), StatusCode::kDeadlineExceeded);

  // A deadline beyond the frontier is admitted normally.
  request.preferences.deadline_seconds = frontier + 1e6;
  auto admitted = client.invoke(request);
  ASSERT_TRUE(admitted.ok()) << admitted.status().to_string();
  EXPECT_EQ(admitted->wait(), RunStatus::kCompleted);

  // invokeAll stays atomic: one dead-on-arrival deadline rejects the whole
  // batch before anything starts.
  std::vector<InvokeRequest> batch(2);
  batch[0].image = image;
  batch[1].image = image;
  batch[1].preferences.deadline_seconds = frontier / 2.0;
  const auto runs_before = client.listRuns();
  ASSERT_TRUE(runs_before.ok());
  auto handles = client.invokeAll(batch);
  ASSERT_FALSE(handles.ok());
  EXPECT_EQ(handles.status().code(), StatusCode::kDeadlineExceeded);
  const auto runs_after = client.listRuns();
  ASSERT_TRUE(runs_after.ok());
  EXPECT_EQ(runs_after->runs.size(), runs_before->runs.size());
}

TEST(ApiVersioning, UnsupportedVersionIsUnimplemented) {
  QonductorClient client(small_config());
  EXPECT_EQ(QonductorClient::version(), kApiVersion);

  CreateWorkflowRequest create;
  create.api_version = kApiVersion + 1;
  create.name = "future";
  create.tasks.push_back(workflow::HybridTask::classical("t", 0.1));
  auto created = client.createWorkflow(create);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kUnimplemented);

  InvokeRequest invoke_request;
  invoke_request.api_version = 99;
  auto handle = client.invoke(invoke_request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kUnimplemented);

  GetAdmissionStatsRequest admission_request;
  admission_request.api_version = kApiVersion + 3;
  auto admission = client.getAdmissionStats(admission_request);
  ASSERT_FALSE(admission.ok());
  EXPECT_EQ(admission.status().code(), StatusCode::kUnimplemented);

  // The well-versioned default works even with the gate off: counters are
  // zero and max_live_runs echoes "disabled".
  auto stats = client.getAdmissionStats();
  ASSERT_TRUE(stats.ok()) << stats.status().to_string();
  EXPECT_EQ(stats->stats.max_live_runs, 0u);
  for (const auto shed : stats->stats.shed) EXPECT_EQ(shed, 0u);
}

// ---- batched invocation ------------------------------------------------------

TEST(InvokeAll, RunsTheWholeBatch) {
  QonductorClient client(small_config());
  const auto image = deploy_classical(client, "batch", /*num_tasks=*/2);

  std::vector<InvokeRequest> requests(3);
  for (auto& request : requests) request.image = image;
  auto handles = client.invokeAll(requests);
  ASSERT_TRUE(handles.ok()) << handles.status().to_string();
  ASSERT_EQ(handles->size(), 3u);
  std::set<RunId> ids;
  for (const auto& handle : *handles) {
    EXPECT_EQ(handle.wait(), RunStatus::kCompleted);
    ids.insert(handle.id());
  }
  EXPECT_EQ(ids.size(), 3u);  // distinct run ids
}

TEST(InvokeAll, ValidatesAtomically) {
  QonductorClient client(small_config());
  const auto image = deploy_classical(client, "valid");

  std::vector<InvokeRequest> requests(2);
  requests[0].image = image;
  requests[1].image = 777;  // unknown: the whole batch must be rejected
  auto handles = client.invokeAll(requests);
  ASSERT_FALSE(handles.ok());
  EXPECT_EQ(handles.status().code(), StatusCode::kNotFound);

  // Nothing was started: the next run id is still the first one.
  InvokeRequest single;
  single.image = image;
  auto handle = client.invoke(single);
  ASSERT_TRUE(handle.ok());
  EXPECT_EQ(handle->id(), 1u);
  handle->wait();
}

// ---- concurrency smoke test --------------------------------------------------

TEST(Concurrency, ManyClientsInvokeInParallel) {
  auto config = small_config();
  config.executor_threads = 4;
  QonductorClient client(config);
  const auto image = deploy_classical(client, "storm", /*num_tasks=*/2);

  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 8;
  std::vector<std::vector<RunHandle>> per_thread(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int c = 0; c < kThreads; ++c) {
    threads.emplace_back([&client, &per_thread, image, c] {
      for (int r = 0; r < kRunsPerThread; ++r) {
        InvokeRequest request;
        request.image = image;
        auto handle = client.invoke(request);
        ASSERT_TRUE(handle.ok()) << handle.status().to_string();
        per_thread[static_cast<std::size_t>(c)].push_back(*handle);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<RunId> ids;
  for (const auto& handles : per_thread) {
    ASSERT_EQ(handles.size(), static_cast<std::size_t>(kRunsPerThread));
    for (const auto& handle : handles) {
      EXPECT_EQ(handle.wait(), RunStatus::kCompleted);
      auto result = handle.result();
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->tasks.size(), 2u);
      ids.insert(handle.id());
    }
  }
  EXPECT_EQ(ids.size(), static_cast<std::size_t>(kThreads * kRunsPerThread));
}

// ---- executor shutdown (error table: UNAVAILABLE) ----------------------------

TEST(ApiErrors, ShutdownRejectsNewRunsAsUnavailable) {
  QonductorClient client(small_config());
  const auto image = deploy_classical(client, "drain");

  InvokeRequest request;
  request.image = image;
  auto pre = client.invoke(request);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->wait(), RunStatus::kCompleted);

  client.backend().shutdown();

  // New work is rejected with the typed UNAVAILABLE — single and batched.
  auto post = client.invoke(request);
  ASSERT_FALSE(post.ok());
  EXPECT_EQ(post.status().code(), StatusCode::kUnavailable);
  auto batch = client.invokeAll({request, request});
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);

  // Completed runs stay queryable through every surface.
  EXPECT_EQ(pre->poll(), RunStatus::kCompleted);
  auto info = client.getRun(pre->id());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->status, RunStatus::kCompleted);
}

TEST(ApiErrors, ShutdownMidRunDrainsQueuedWorkBeforeRejecting) {
  auto gate = std::make_shared<TaskGate>();
  auto config = gated_config(gate);
  config.executor_threads = 1;  // one lane: the second run must queue
  QonductorClient client(config);
  const auto image = deploy_classical(client, "mid-shutdown");

  InvokeRequest request;
  request.image = image;
  auto running = client.invoke(request);
  ASSERT_TRUE(running.ok());
  gate->entered.get_future().wait();  // the lane is now occupied
  auto queued = client.invoke(request);
  ASSERT_TRUE(queued.ok());

  // Shut down while one run executes and another waits in the queue. The
  // contract: accepted work drains to completion, nothing is dropped.
  std::thread shutter([&client] { client.backend().shutdown(); });
  gate->release.set_value();
  shutter.join();

  EXPECT_EQ(running->poll(), RunStatus::kCompleted);
  EXPECT_EQ(queued->poll(), RunStatus::kCompleted);

  auto late = client.invoke(request);
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

// ---- randomized lifecycle property test --------------------------------------

// For 500 randomly seeded runs (mixed images, random cancellations, jittered
// polling), every observed status sequence must be a prefix walk of
//   kPending -> kRunning -> {kCompleted | kCancelled}
// (each status rank non-decreasing, nothing after a terminal state), and
// once terminal, poll() / wait() / wait_for(0) / result() / info() must all
// agree on the outcome.
TEST(LifecycleProperty, StateSequencesArePrefixWalksAndTerminalQueriesAgree) {
  constexpr std::uint64_t kSeed = 20260728;  // change to reproduce a failure
  RecordProperty("seed", std::to_string(kSeed));
  std::cout << "LifecycleProperty seed = " << kSeed << "\n";
  Rng rng(kSeed);

  auto config = small_config();
  config.executor_threads = 4;
  config.retention.max_terminal_runs = 600;  // keep all 500 queryable
  QonductorClient client(config);
  const auto quick = deploy_classical(client, "prop-quick", /*num_tasks=*/1);
  const auto chained = deploy_classical(client, "prop-chained", /*num_tasks=*/3);

  const auto rank = [](RunStatus status) {
    if (status == RunStatus::kPending) return 0;
    if (status == RunStatus::kRunning) return 1;
    return 2;
  };

  constexpr int kRuns = 500;
  constexpr int kWave = 50;  // bound the number of simultaneous handles
  int completed = 0;
  int cancelled = 0;
  for (int wave = 0; wave < kRuns / kWave; ++wave) {
    std::vector<RunHandle> handles;
    std::vector<bool> asked_to_cancel;
    handles.reserve(kWave);
    for (int r = 0; r < kWave; ++r) {
      InvokeRequest request;
      request.image = rng.bernoulli(0.5) ? quick : chained;
      auto handle = client.invoke(request);
      ASSERT_TRUE(handle.ok()) << handle.status().to_string();
      const bool cancel = rng.bernoulli(0.3);
      // The cancel may lose the race with completion — both outcomes are
      // valid here, so the verdict is deliberately not asserted.
      if (cancel) (void)handle->cancel();
      handles.push_back(*std::move(handle));
      asked_to_cancel.push_back(cancel);
    }
    for (std::size_t h = 0; h < handles.size(); ++h) {
      const RunHandle& handle = handles[h];
      std::vector<RunStatus> observed{handle.poll()};
      while (!run_status_terminal(observed.back())) {
        if (rng.bernoulli(0.5)) std::this_thread::yield();
        const RunStatus next = handle.poll();
        if (next != observed.back()) observed.push_back(next);
      }
      for (std::size_t i = 1; i < observed.size(); ++i) {
        ASSERT_LT(rank(observed[i - 1]), 2)
            << "run " << handle.id() << ": status observed after a terminal state";
        ASSERT_GT(rank(observed[i]), rank(observed[i - 1]))
            << "run " << handle.id() << ": lifecycle walked backwards";
      }

      // After a terminal state, every query agrees on the outcome.
      const RunStatus final_status = observed.back();
      ASSERT_TRUE(run_status_terminal(final_status));
      EXPECT_EQ(handle.poll(), final_status);
      EXPECT_EQ(handle.wait(), final_status);
      auto waited = handle.wait_for(0ms);
      ASSERT_TRUE(waited.ok()) << waited.status().to_string();
      EXPECT_EQ(*waited, final_status);
      auto result = handle.result();
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->status, final_status);
      EXPECT_EQ(result->error.ok(), final_status == RunStatus::kCompleted);
      auto info = handle.info();
      ASSERT_TRUE(info.ok());
      EXPECT_EQ(info->status, final_status);
      EXPECT_GE(info->finished_at, info->submitted_at);

      // Only cancellation was injected, so failures are real bugs; a run
      // never asked to cancel must complete.
      ASSERT_NE(final_status, RunStatus::kFailed)
          << "run " << handle.id() << ": " << result->error.to_string();
      if (!asked_to_cancel[h]) {
        EXPECT_EQ(final_status, RunStatus::kCompleted);
      }
      (final_status == RunStatus::kCompleted ? completed : cancelled) += 1;
    }
  }
  std::cout << "LifecycleProperty: " << completed << " completed, " << cancelled
            << " cancelled\n";
  EXPECT_EQ(completed + cancelled, kRuns);
  EXPECT_GT(completed, 0);
}

}  // namespace
}  // namespace qon::api
