// Tests for basis decomposition (verified unitarily against the simulator),
// layout, routing legality, scheduling and the full transpile pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "circuit/library.hpp"
#include "qpu/fleet.hpp"
#include "simulator/metrics.hpp"
#include "simulator/statevector.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::transpiler {
namespace {

using circuit::Circuit;
using circuit::GateKind;

// Computes the full unitary matrix of a circuit (column c = action on basis
// state |c>), for small widths. Basis states are prepared with X gates.
std::vector<std::vector<sim::cplx>> circuit_unitary(const Circuit& circ) {
  const int n = circ.num_qubits();
  const std::size_t dim = std::size_t{1} << n;
  std::vector<std::vector<sim::cplx>> u(dim, std::vector<sim::cplx>(dim));
  for (std::size_t col = 0; col < dim; ++col) {
    sim::StateVector sv(n);
    for (int q = 0; q < n; ++q) {
      if (col & (std::size_t{1} << q)) {
        sv.apply_unitary_1q(q, sim::gate_unitary_1q(GateKind::kX, 0.0));
      }
    }
    sv.run(circ.without_measurements());
    for (std::size_t row = 0; row < dim; ++row) u[row][col] = sv.amplitudes()[row];
  }
  return u;
}

// True when U ~ V up to a global phase.
bool equal_up_to_phase(const std::vector<std::vector<sim::cplx>>& u,
                       const std::vector<std::vector<sim::cplx>>& v, double tol = 1e-9) {
  sim::cplx phase(0.0, 0.0);
  for (std::size_t r = 0; r < u.size() && std::abs(phase) < 0.5; ++r) {
    for (std::size_t c = 0; c < u.size() && std::abs(phase) < 0.5; ++c) {
      if (std::abs(u[r][c]) > 0.5) phase = v[r][c] / u[r][c];
    }
  }
  if (std::abs(std::abs(phase) - 1.0) > tol) return false;
  for (std::size_t r = 0; r < u.size(); ++r) {
    for (std::size_t c = 0; c < u.size(); ++c) {
      if (std::abs(u[r][c] * phase - v[r][c]) > tol) return false;
    }
  }
  return true;
}

qpu::QpuModel falcon_line_model(int width) {
  qpu::QpuModel model;
  model.name = "test-line";
  model.topology = qpu::Topology::line(width);
  model.basis_gates = qpu::falcon_basis();
  return model;
}

// Every single-gate circuit must decompose to a unitarily equivalent
// basis-only circuit.
class BasisDecomposition : public ::testing::TestWithParam<circuit::Gate> {};

TEST_P(BasisDecomposition, PreservesUnitary) {
  const auto gate = GetParam();
  const int width = gate.arity() == 2 ? 2 : 1;
  Circuit original(width);
  original.append(gate);
  const auto model = falcon_line_model(width);
  const Circuit lowered = decompose_to_basis(original, model);
  for (const auto& g : lowered.gates()) {
    EXPECT_TRUE(model.in_basis(g.kind)) << "non-basis gate survived: " << g.to_string();
  }
  EXPECT_TRUE(equal_up_to_phase(circuit_unitary(original), circuit_unitary(lowered)))
      << "decomposition changed semantics of " << gate.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BasisDecomposition,
    ::testing::Values(circuit::Gate{GateKind::kH, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kX, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kY, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kZ, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kS, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kSdg, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kT, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kTdg, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kSX, {0, 0}, 0.0},
                      circuit::Gate{GateKind::kRX, {0, 0}, 0.7},
                      circuit::Gate{GateKind::kRX, {0, 0}, -2.1},
                      circuit::Gate{GateKind::kRY, {0, 0}, 1.3},
                      circuit::Gate{GateKind::kRY, {0, 0}, -0.4},
                      circuit::Gate{GateKind::kRZ, {0, 0}, 0.9},
                      circuit::Gate{GateKind::kCX, {0, 1}, 0.0},
                      circuit::Gate{GateKind::kCX, {1, 0}, 0.0},
                      circuit::Gate{GateKind::kCZ, {0, 1}, 0.0},
                      circuit::Gate{GateKind::kSwap, {0, 1}, 0.0},
                      circuit::Gate{GateKind::kRZZ, {0, 1}, 1.1}));

TEST(BasisDecompositionWhole, RandomCircuitPreservesDistribution) {
  for (std::uint64_t seed : {1ULL, 5ULL, 9ULL}) {
    const Circuit original = circuit::random_circuit(4, 6, seed);
    const auto model = falcon_line_model(4);
    // Skip routing here: compare on all-to-all connectivity semantics.
    qpu::QpuModel full = model;
    full.topology = qpu::Topology::fully_connected(4);
    const Circuit lowered = decompose_to_basis(original, full);
    const auto d1 = sim::ideal_distribution(original);
    const auto d2 = sim::ideal_distribution(lowered);
    EXPECT_GT(sim::hellinger_fidelity(d1, d2), 1.0 - 1e-9) << "seed=" << seed;
  }
}

TEST(MergeRotations, CombinesAndDropsRz) {
  Circuit c(1);
  c.rz(0, 0.5);
  c.rz(0, 0.25);
  c.sx(0);
  c.rz(0, 1.0);
  c.rz(0, -1.0);
  const Circuit merged = merge_rotations(c);
  // 0.75 rz, sx, nothing (cancelled).
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged.gates()[0].kind, GateKind::kRZ);
  EXPECT_NEAR(merged.gates()[0].param, 0.75, 1e-12);
  EXPECT_EQ(merged.gates()[1].kind, GateKind::kSX);
}

TEST(MergeRotations, DoesNotMergeAcrossBarriers) {
  Circuit c(1);
  c.rz(0, 0.5);
  c.barrier();
  c.rz(0, 0.5);
  const Circuit merged = merge_rotations(c);
  EXPECT_EQ(merged.size(), 3u);
}

TEST(Layout, TrivialIsIdentity) {
  const auto l = trivial_layout(4);
  EXPECT_EQ(l.logical_to_physical, (std::vector<int>{0, 1, 2, 3}));
  const auto inv = l.physical_to_logical(6);
  EXPECT_EQ(inv[3], 3);
  EXPECT_EQ(inv[5], -1);
}

TEST(Layout, ChoosesConnectedRegion) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 3);
  const auto& backend = *fleet.backends[0];
  const Circuit c = circuit::ghz(12, false);
  const auto layout = choose_layout(c, backend);
  ASSERT_EQ(layout.logical_to_physical.size(), 12u);
  // All physical targets distinct and in range.
  std::set<int> used(layout.logical_to_physical.begin(), layout.logical_to_physical.end());
  EXPECT_EQ(used.size(), 12u);
  for (int p : used) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 27);
  }
}

TEST(Layout, RejectsOversizedCircuit) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 3);
  const Circuit c = circuit::ghz(28, false);
  EXPECT_THROW(choose_layout(c, *fleet.backends[0]), std::invalid_argument);
}

TEST(Routing, InsertsSwapsForDistantQubits) {
  const auto topo = qpu::Topology::line(4);
  Circuit c(4);
  c.cx(0, 3);
  const auto result = route(c, topo, trivial_layout(4));
  EXPECT_GT(result.swaps_inserted, 0u);
  EXPECT_TRUE(result.circuit.respects_coupling(topo.edges()));
}

TEST(Routing, AdjacentGateNeedsNoSwap) {
  const auto topo = qpu::Topology::line(4);
  Circuit c(4);
  c.cx(1, 2);
  const auto result = route(c, topo, trivial_layout(4));
  EXPECT_EQ(result.swaps_inserted, 0u);
}

TEST(Routing, TracksFinalLayout) {
  const auto topo = qpu::Topology::line(3);
  Circuit c(3);
  c.cx(0, 2);  // needs one swap on a 3-line
  const auto result = route(c, topo, trivial_layout(3));
  // Layout must be a permutation of physical qubits.
  std::set<int> finals(result.final_layout.begin(), result.final_layout.end());
  EXPECT_EQ(finals.size(), 3u);
}

// The heart of the transpiler contract: for any benchmark circuit the
// transpiled version is basis-only, coupling-legal and (for small circuits)
// measurement-equivalent to the original.
class TranspileProperty
    : public ::testing::TestWithParam<std::tuple<circuit::BenchmarkFamily, int, std::uint64_t>> {};

TEST_P(TranspileProperty, LegalAndSemanticallyEquivalent) {
  const auto [family, width, seed] = GetParam();
  const auto fleet = qpu::make_ibm_like_fleet(1, seed + 1);
  const auto& backend = *fleet.backends[0];
  const Circuit original = circuit::make_benchmark(family, width, seed);
  const auto result = transpile(original, backend);

  // 1. Basis-only.
  for (const auto& g : result.circuit.gates()) {
    EXPECT_TRUE(backend.model().in_basis(g.kind)) << g.to_string();
  }
  // 2. Coupling-legal.
  EXPECT_TRUE(result.circuit.respects_coupling(backend.topology().edges()));
  // 3. Schedule sanity.
  EXPECT_GT(result.schedule.duration, 0.0);
  // 4. Semantics: ideal measured distribution is preserved (clbits keep
  //    logical order). Only checked for small circuits.
  if (width <= 5) {
    const auto d_orig = sim::ideal_distribution(original);
    const auto d_phys = [&] {
      // Simulate only the active region by remapping physical -> compact.
      std::vector<int> compact_of(static_cast<std::size_t>(result.circuit.num_qubits()), -1);
      int n_active = 0;
      for (const auto& g : result.circuit.gates()) {
        for (int i = 0; i < g.arity(); ++i) {
          if (compact_of[static_cast<std::size_t>(g.qubit(i))] < 0) {
            compact_of[static_cast<std::size_t>(g.qubit(i))] = n_active++;
          }
        }
      }
      Circuit compact(n_active);
      for (const auto& g : result.circuit.gates()) {
        circuit::Gate mapped = g;
        for (int i = 0; i < g.arity(); ++i) {
          mapped.qubits[static_cast<std::size_t>(i)] =
              compact_of[static_cast<std::size_t>(g.qubit(i))];
        }
        compact.append(mapped);
      }
      return sim::ideal_distribution(compact);
    }();
    EXPECT_GT(sim::hellinger_fidelity(d_orig, d_phys), 1.0 - 1e-9)
        << circuit::benchmark_family_name(family) << " width=" << width << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Benchmarks, TranspileProperty,
    ::testing::Combine(::testing::Values(circuit::BenchmarkFamily::kGhz,
                                         circuit::BenchmarkFamily::kQft,
                                         circuit::BenchmarkFamily::kQaoa,
                                         circuit::BenchmarkFamily::kVqe,
                                         circuit::BenchmarkFamily::kBv,
                                         circuit::BenchmarkFamily::kWState,
                                         circuit::BenchmarkFamily::kRandom),
                       ::testing::Values(3, 5, 12),
                       ::testing::Values(2ULL, 17ULL)));

TEST(Schedule, DurationGrowsWithCircuitSize) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 5);
  const auto& backend = *fleet.backends[0];
  const auto small = transpile(circuit::ghz(4), backend);
  const auto large = transpile(circuit::ghz(16), backend);
  EXPECT_GT(large.schedule.duration, small.schedule.duration);
}

TEST(Schedule, RzIsFree) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 5);
  const auto& backend = *fleet.backends[0];
  Circuit c(backend.num_qubits());
  c.rz(0, 1.0);
  const auto sched = asap_schedule(c, backend);
  EXPECT_DOUBLE_EQ(sched.duration, 0.0);
}

TEST(Schedule, IdleTimeAccounted) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 5);
  const auto& backend = *fleet.backends[0];
  Circuit c(backend.num_qubits());
  // Qubit 1 waits while qubit 0 runs two sx gates, then a cx joins them.
  c.sx(0);
  c.sx(0);
  c.sx(1);
  c.cx(0, 1);
  const auto sched = asap_schedule(c, backend);
  EXPECT_GT(sched.qubit_idle[1], 0.0);
  EXPECT_TRUE(sched.qubit_active[0]);
  EXPECT_FALSE(sched.qubit_active[5]);
}

TEST(Schedule, JobRuntimeScalesWithShots) {
  ScheduleResult s;
  s.duration = 1e-4;
  EXPECT_NEAR(job_quantum_runtime(s, 1000), 1000 * (1e-4 + 250e-6), 1e-9);
  EXPECT_THROW(job_quantum_runtime(s, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qon::transpiler
