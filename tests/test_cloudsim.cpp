// Tests for the cloud simulation: the DES core, QPU workers, the load
// generator's workload statistics, and small end-to-end runs comparing the
// Qonductor policy with the FCFS baseline (the Fig. 6 relationships).

#include <gtest/gtest.h>

#include <cmath>

#include "cloudsim/event_queue.hpp"
#include "cloudsim/metrics.hpp"
#include "cloudsim/qpu_worker.hpp"
#include "cloudsim/simulation.hpp"
#include "cloudsim/workload.hpp"
#include "common/stats.hpp"

namespace qon::cloudsim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue events;
  std::vector<int> order;
  events.schedule_at(3.0, [&] { order.push_back(3); });
  events.schedule_at(1.0, [&] { order.push_back(1); });
  events.schedule_at(2.0, [&] { order.push_back(2); });
  events.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(events.now(), 10.0);
}

TEST(EventQueue, StableForSimultaneousEvents) {
  EventQueue events;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    events.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  events.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents) {
  EventQueue events;
  int fired = 0;
  events.schedule_at(1.0, [&] {
    ++fired;
    events.schedule_in(1.0, [&] { ++fired; });
  });
  events.run_until(5.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, HonorsHorizon) {
  EventQueue events;
  int fired = 0;
  events.schedule_at(5.0, [&] { ++fired; });
  events.run_until(4.0);
  EXPECT_EQ(fired, 0);
  events.run_until(6.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RejectsPastAndNull) {
  EventQueue events;
  events.run_until(10.0);
  EXPECT_THROW(events.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(events.schedule_in(-1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(events.schedule_at(11.0, nullptr), std::invalid_argument);
}

TEST(QpuWorker, ExecutesFifo) {
  EventQueue events;
  std::vector<std::uint64_t> completed;
  QpuWorker worker("w", &events, [&](const QpuJob& job, double, double) {
    completed.push_back(job.app_id);
  });
  worker.submit({1, 5.0});
  worker.submit({2, 5.0});
  worker.submit({3, 5.0});
  EXPECT_TRUE(worker.busy());
  EXPECT_EQ(worker.queue_length(), 2u);
  events.run_until(100.0);
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(worker.total_busy_seconds(), 15.0);
  EXPECT_EQ(worker.completed(), 3u);
}

TEST(QpuWorker, QueueWaitEstimates) {
  EventQueue events;
  QpuWorker worker("w", &events, nullptr);
  EXPECT_DOUBLE_EQ(worker.queue_wait(0.0), 0.0);
  worker.submit({1, 10.0});
  worker.submit({2, 4.0});
  EXPECT_DOUBLE_EQ(worker.queue_wait(0.0), 14.0);
  events.run_until(6.0);
  EXPECT_DOUBLE_EQ(worker.queue_wait(6.0), 8.0);  // 4 left of job1 + 4 of job2
}

TEST(QpuWorker, DrainReturnsOnlyUnstarted) {
  EventQueue events;
  std::vector<std::uint64_t> completed;
  QpuWorker worker("w", &events, [&](const QpuJob& job, double, double) {
    completed.push_back(job.app_id);
  });
  worker.submit({1, 10.0});
  worker.submit({2, 1.0});
  worker.submit({3, 1.0});
  const auto drained = worker.drain_unstarted();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].app_id, 2u);
  events.run_until(100.0);
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{1}));  // started job finishes
}

TEST(Workload, RateMatchesConfiguration) {
  WorkloadConfig config;
  config.jobs_per_hour = 1200.0;
  config.duration_hours = 2.0;
  config.seed = 3;
  const auto apps = generate_workload(config);
  // Poisson(2400) => ~2400 +/- 5 sigma.
  EXPECT_NEAR(static_cast<double>(apps.size()), 2400.0, 5.0 * std::sqrt(2400.0));
  for (std::size_t i = 1; i < apps.size(); ++i) {
    EXPECT_GE(apps[i].arrival_time, apps[i - 1].arrival_time);
  }
}

TEST(Workload, WidthsAndShotsWithinBounds) {
  WorkloadConfig config;
  config.seed = 7;
  config.duration_hours = 0.5;
  const auto apps = generate_workload(config);
  ASSERT_FALSE(apps.empty());
  for (const auto& app : apps) {
    EXPECT_GE(app.logical.num_qubits(), config.min_width);
    EXPECT_LE(app.logical.num_qubits(), config.max_width + 1);  // +1: BV ancilla
    EXPECT_GE(app.shots, config.min_shots);
    EXPECT_LE(app.shots, config.max_shots);
  }
}

TEST(Workload, MitigatedFractionApproximatelyHonored) {
  WorkloadConfig config;
  config.seed = 11;
  config.jobs_per_hour = 2000.0;
  config.mitigated_fraction = 0.5;
  const auto apps = generate_workload(config);
  std::size_t mitigated = 0;
  for (const auto& app : apps) {
    if (!app.spec.stack.empty()) ++mitigated;
  }
  const double fraction = static_cast<double>(mitigated) / static_cast<double>(apps.size());
  EXPECT_NEAR(fraction, 0.5, 0.06);
}

TEST(Workload, DiurnalRateStaysInMeasuredBand) {
  for (double t = 0.0; t < 24.0 * 3600.0; t += 1800.0) {
    const double rate = diurnal_rate(t, 1500.0);
    EXPECT_GE(rate, 1099.0);
    EXPECT_LE(rate, 2051.0);
  }
}

// Small but complete simulations. Kept light: 8 minutes of simulated
// arrivals at a few hundred jobs/hour over 4 QPUs.
class EndToEnd : public ::testing::Test {
 protected:
  static CloudSimConfig base_config(SchedulingPolicy policy) {
    CloudSimConfig config;
    config.workload.jobs_per_hour = 400.0;
    config.workload.duration_hours = 0.15;
    config.workload.seed = 99;
    config.num_qpus = 4;
    config.seed = 99;
    config.policy = policy;
    config.queue_trigger = 20;
    config.timer_trigger_seconds = 60.0;
    config.scheduler.nsga2.population_size = 32;
    config.scheduler.nsga2.max_generations = 20;
    return config;
  }
};

TEST_F(EndToEnd, AllAppsCompleteUnderBothPolicies) {
  for (const auto policy :
       {SchedulingPolicy::kQonductor, SchedulingPolicy::kBestFidelityFcfs}) {
    const auto result = run_cloud_simulation(base_config(policy));
    EXPECT_EQ(result.apps.size() + result.unscheduled_apps, result.generated_apps)
        << policy_name(policy);
    EXPECT_GT(result.apps.size(), 0u);
    for (const auto& app : result.apps) {
      EXPECT_GE(app.start, app.arrival);
      EXPECT_GE(app.quantum_done, app.start);
      EXPECT_GE(app.completion, app.quantum_done);
      EXPECT_GE(app.measured_fidelity, 0.0);
      EXPECT_LE(app.measured_fidelity, 1.0);
      EXPECT_GE(app.qpu, 0);
    }
  }
}

TEST_F(EndToEnd, QonductorReducesJctVersusFcfs) {
  const auto qonductor = run_cloud_simulation(base_config(SchedulingPolicy::kQonductor));
  const auto fcfs = run_cloud_simulation(base_config(SchedulingPolicy::kBestFidelityFcfs));
  // Fig. 6b: Qonductor's completion times are far below the FCFS baseline.
  EXPECT_LT(qonductor.mean_jct(), fcfs.mean_jct());
  // Fig. 6c: utilization rises because load spreads across all QPUs.
  EXPECT_GT(qonductor.mean_utilization(), fcfs.mean_utilization());
  // Fig. 6a: fidelity dips only slightly (allow a generous band here; the
  // bench reproduces the exact numbers).
  EXPECT_GT(qonductor.mean_fidelity(), fcfs.mean_fidelity() - 0.12);
}

TEST_F(EndToEnd, QonductorBalancesLoadAcrossQpus) {
  // Load balancing matters under contention (the paper's regime: queues of
  // thousands of seconds). Overload the 4-QPU fleet so concentrating on the
  // best QPU would explode JCTs.
  auto config = base_config(SchedulingPolicy::kQonductor);
  config.workload.jobs_per_hour = 3000.0;
  config.workload.duration_hours = 0.2;
  const auto result = run_cloud_simulation(config);
  const double total = sum(result.qpu_busy_seconds);
  ASSERT_GT(total, 0.0);
  // The hotspot share must stay far below FCFS's concentration (Fig. 8c).
  const double qonductor_max_share = max_of(result.qpu_busy_seconds) / total;
  auto fcfs_config = config;
  fcfs_config.policy = SchedulingPolicy::kBestFidelityFcfs;
  const auto fcfs = run_cloud_simulation(fcfs_config);
  const double fcfs_max_share = max_of(fcfs.qpu_busy_seconds) / sum(fcfs.qpu_busy_seconds);
  EXPECT_GT(fcfs_max_share, 0.5);  // hotspot behaviour
  EXPECT_LT(qonductor_max_share, fcfs_max_share - 0.1);
  // Every QPU participates under Qonductor.
  for (double busy : result.qpu_busy_seconds) EXPECT_GT(busy, 0.0);
}

TEST_F(EndToEnd, CyclesRecordStagesAndFronts) {
  const auto result = run_cloud_simulation(base_config(SchedulingPolicy::kQonductor));
  ASSERT_FALSE(result.cycles.empty());
  for (const auto& cycle : result.cycles) {
    EXPECT_GE(cycle.optimize_seconds, 0.0);
    EXPECT_LE(cycle.min_front_jct, cycle.max_front_jct + 1e-9);
    EXPECT_LE(cycle.min_front_fidelity, cycle.max_front_fidelity + 1e-9);
    // The chosen solution lies within the front's bounds.
    EXPECT_GE(cycle.chosen.mean_jct, cycle.min_front_jct - 1e-6);
    EXPECT_LE(cycle.chosen.mean_jct, cycle.max_front_jct + 1e-6);
  }
}

TEST_F(EndToEnd, MetricsSeriesAreWellFormed) {
  const auto result = run_cloud_simulation(base_config(SchedulingPolicy::kQonductor));
  const auto fid = fidelity_over_time(result, 60.0);
  const auto jct = mean_jct_over_time(result, 60.0);
  const auto util = utilization_over_time(result, 60.0);
  EXPECT_EQ(fid.time.size(), fid.value.size());
  EXPECT_EQ(jct.time.size(), util.time.size());
  for (double u : util.value) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 100.0 + 1e-9);
  }
  // Cumulative mean JCT is non-negative and finite.
  for (double v : jct.value) {
    EXPECT_GE(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
  }
  const auto queue = scheduler_queue_over_time(result);
  EXPECT_FALSE(queue.time.empty());
  EXPECT_NO_THROW(qpu_queue_over_time(result, 0));
  EXPECT_THROW(qpu_queue_over_time(result, 99), std::out_of_range);
}

TEST_F(EndToEnd, MoreQpusReduceJct) {
  // The Fig. 9a effect requires queueing pressure: saturate the small fleet.
  auto small = base_config(SchedulingPolicy::kQonductor);
  small.num_qpus = 2;
  small.workload.jobs_per_hour = 1600.0;
  auto large = small;
  large.num_qpus = 8;
  const auto r_small = run_cloud_simulation(small);
  const auto r_large = run_cloud_simulation(large);
  // Fig. 9a: mean JCT decreases as the cluster grows.
  EXPECT_LT(r_large.mean_jct(), r_small.mean_jct());
}

TEST_F(EndToEnd, CalibrationCrossoverReschedulesQueuedJobs) {
  auto config = base_config(SchedulingPolicy::kQonductor);
  config.calibration_interval_hours = 0.05;  // several crossovers in-window
  config.calibration_crossover = true;
  const auto result = run_cloud_simulation(config);
  // The run completes and apps still finish exactly once.
  EXPECT_EQ(result.apps.size() + result.unscheduled_apps, result.generated_apps);
  std::set<std::uint64_t> ids;
  for (const auto& app : result.apps) {
    EXPECT_TRUE(ids.insert(app.id).second) << "app completed twice";
  }
}

TEST_F(EndToEnd, DeterministicForFixedSeed) {
  const auto a = run_cloud_simulation(base_config(SchedulingPolicy::kQonductor));
  const auto b = run_cloud_simulation(base_config(SchedulingPolicy::kQonductor));
  ASSERT_EQ(a.apps.size(), b.apps.size());
  EXPECT_DOUBLE_EQ(a.mean_jct(), b.mean_jct());
  EXPECT_DOUBLE_EQ(a.mean_fidelity(), b.mean_fidelity());
}

}  // namespace
}  // namespace qon::cloudsim
