// Tests for the workflow programming model: tasks, DAG invariants, the
// chain builder and the workflow registry.

#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "workflow/dag.hpp"
#include "workflow/registry.hpp"
#include "workflow/task.hpp"

namespace qon::workflow {
namespace {

TEST(Task, QuantumConstructorCapturesCircuit) {
  auto task = HybridTask::quantum("qaoa", circuit::qaoa_maxcut(6, 1, 3), 2000);
  EXPECT_EQ(task.kind, TaskKind::kQuantum);
  EXPECT_EQ(task.circ.num_qubits(), 6);
  EXPECT_EQ(task.shots, 2000);
  EXPECT_EQ(task.min_qubits, 6);
  EXPECT_STREQ(task_kind_name(task.kind), "quantum");
}

TEST(Task, ClassicalConstructorSetsRequest) {
  auto task = HybridTask::classical("zne-inference", 1.5, mitigation::Accelerator::kGpu);
  EXPECT_EQ(task.kind, TaskKind::kClassical);
  EXPECT_DOUBLE_EQ(task.estimated_seconds, 1.5);
  EXPECT_EQ(task.request.gpus, 1);
}

TEST(Dag, AddTaskAndDependencies) {
  WorkflowDag dag;
  const auto a = dag.add_task(HybridTask::classical("pre", 0.1));
  const auto b = dag.add_task(HybridTask::quantum("run", circuit::ghz(3)));
  const auto c = dag.add_task(HybridTask::classical("post", 0.2));
  dag.add_dependency(a, b);
  dag.add_dependency(b, c);
  EXPECT_EQ(dag.size(), 3u);
  EXPECT_EQ(dag.dependencies(c), (std::vector<TaskId>{b}));
  EXPECT_TRUE(dag.reaches(a, c));
  EXPECT_FALSE(dag.reaches(c, a));
}

TEST(Dag, RejectsCyclesAndSelfEdges) {
  WorkflowDag dag;
  const auto a = dag.add_task(HybridTask::classical("a", 0.1));
  const auto b = dag.add_task(HybridTask::classical("b", 0.1));
  dag.add_dependency(a, b);
  EXPECT_THROW(dag.add_dependency(b, a), std::invalid_argument);  // cycle
  EXPECT_THROW(dag.add_dependency(a, a), std::invalid_argument);  // self
  EXPECT_THROW(dag.add_dependency(a, 99), std::invalid_argument); // unknown
}

TEST(Dag, TopologicalOrderRespectsEdges) {
  WorkflowDag dag;
  const auto a = dag.add_task(HybridTask::classical("a", 0.1));
  const auto b = dag.add_task(HybridTask::classical("b", 0.1));
  const auto c = dag.add_task(HybridTask::classical("c", 0.1));
  const auto d = dag.add_task(HybridTask::classical("d", 0.1));
  dag.add_dependency(a, c);
  dag.add_dependency(b, c);
  dag.add_dependency(c, d);
  const auto order = dag.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&order](TaskId t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos(a), pos(c));
  EXPECT_LT(pos(b), pos(c));
  EXPECT_LT(pos(c), pos(d));
}

TEST(Dag, ChainWorkflowIsLinear) {
  std::vector<HybridTask> tasks;
  tasks.push_back(HybridTask::classical("pre", 0.1));
  tasks.push_back(HybridTask::quantum("q", circuit::ghz(3)));
  tasks.push_back(HybridTask::classical("post", 0.1));
  const auto dag = chain_workflow(std::move(tasks));
  EXPECT_EQ(dag.size(), 3u);
  EXPECT_EQ(dag.edges().size(), 2u);
  const auto order = dag.topological_order();
  EXPECT_EQ(order, (std::vector<TaskId>{0, 1, 2}));
}

TEST(Registry, RegisterAndFetch) {
  WorkflowRegistry registry;
  const auto id = registry.register_image("qaoa-ready", chain_workflow({}), yaml::Node());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.get(id).name, "qaoa-ready");
  EXPECT_THROW(registry.get(id + 42), std::out_of_range);
}

TEST(Registry, FindIsNonThrowing) {
  WorkflowRegistry registry;
  const auto id = registry.register_image("lookup", chain_workflow({}), yaml::Node());
  const WorkflowImage* image = registry.find(id);
  ASSERT_NE(image, nullptr);
  EXPECT_EQ(image->name, "lookup");
  EXPECT_EQ(image->id, id);
  EXPECT_EQ(registry.find(id + 42), nullptr);
  // The registry is append-only: pointers survive later registrations.
  registry.register_image("later", chain_workflow({}), yaml::Node());
  EXPECT_EQ(registry.find(id), image);
}

TEST(Registry, FindByNameReturnsLatest) {
  WorkflowRegistry registry;
  registry.register_image("vqe", chain_workflow({}), yaml::Node());
  const auto second = registry.register_image("vqe", chain_workflow({}), yaml::Node());
  const auto found = registry.find_by_name("vqe");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, second);
  EXPECT_FALSE(registry.find_by_name("absent").has_value());
}

TEST(Registry, ListPreservesRegistrationOrder) {
  WorkflowRegistry registry;
  const auto a = registry.register_image("a", chain_workflow({}), yaml::Node());
  const auto b = registry.register_image("b", chain_workflow({}), yaml::Node());
  EXPECT_EQ(registry.list(), (std::vector<ImageId>{a, b}));
}

TEST(Registry, ImagesCarryDeploymentConfig) {
  WorkflowRegistry registry;
  const auto config = yaml::parse(
      "resources:\n"
      "  limits:\n"
      "    qubits: 20\n");
  const auto id = registry.register_image("with-config", chain_workflow({}), config);
  EXPECT_EQ(registry.get(id).config.at("resources").at("limits").at("qubits").as_int(), 20);
}

}  // namespace
}  // namespace qon::workflow
