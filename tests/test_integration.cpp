// Cross-module integration tests: the full pipeline from trained estimators
// through the cloud simulation, plan-driven workflow execution, and the
// replicated system monitor under the orchestrator.

#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "cloudsim/simulation.hpp"
#include "core/orchestrator.hpp"
#include "estimator/dataset.hpp"
#include "estimator/models.hpp"
#include "estimator/plans.hpp"
#include "qpu/fleet.hpp"

namespace qon {
namespace {

TEST(Integration, TrainedEstimatorsDriveTheCloudSimulation) {
  // Train estimators on one fleet archive, then run the simulation with the
  // regression models in the scheduling loop (the full §6 + §7 pipeline).
  auto fleet = qpu::make_ibm_like_fleet(4, 4242);
  estimator::ArchiveConfig archive_config;
  archive_config.num_runs = 500;
  archive_config.seed = 17;
  const auto archive = estimator::generate_run_archive(fleet, archive_config);

  estimator::FidelityEstimator fidelity_model;
  estimator::RuntimeEstimator runtime_model;
  ASSERT_GT(fidelity_model.train(archive).cv_r2, 0.5);
  ASSERT_GT(runtime_model.train(archive).cv_r2, 0.9);

  cloudsim::CloudSimConfig config;
  config.num_qpus = 4;
  config.seed = 4242;
  config.workload.jobs_per_hour = 300.0;
  config.workload.duration_hours = 0.1;
  config.workload.seed = 4242;
  config.queue_trigger = 15;
  config.fidelity_model = &fidelity_model;
  config.runtime_model = &runtime_model;
  const auto result = cloudsim::run_cloud_simulation(config);
  EXPECT_GT(result.apps.size(), 0u);
  for (const auto& app : result.apps) {
    EXPECT_GT(app.est_fidelity, 0.0);
    EXPECT_LE(app.est_fidelity, 1.0);
  }
}

TEST(Integration, ModelDrivenPlansAgreeWithFallbackDirection) {
  auto fleet = qpu::make_ibm_like_fleet(3, 99);
  estimator::ArchiveConfig archive_config;
  archive_config.num_runs = 500;
  archive_config.seed = 23;
  const auto archive = estimator::generate_run_archive(fleet, archive_config);
  estimator::FidelityEstimator fidelity_model;
  estimator::RuntimeEstimator runtime_model;
  fidelity_model.train(archive);
  runtime_model.train(archive);

  const auto templates = fleet.template_backends();
  const auto circ = circuit::qaoa_maxcut(10, 1, 3);
  const auto model_plans = estimator::generate_resource_plans(circ, templates, {},
                                                              &fidelity_model, &runtime_model);
  const auto fallback_plans = estimator::generate_resource_plans(circ, templates, {});
  ASSERT_FALSE(model_plans.pareto.empty());
  ASSERT_FALSE(fallback_plans.pareto.empty());
  // Both agree that mitigation raises fidelity relative to none (direction).
  auto fidelity_of = [](const estimator::PlanSet& plans, const std::string& name) {
    for (const auto& p : plans.all) {
      if (p.spec.to_string() == name && p.accelerator == mitigation::Accelerator::kCpu) {
        return p.est_fidelity;
      }
    }
    return -1.0;
  };
  EXPECT_GT(fidelity_of(model_plans, "zne"), fidelity_of(model_plans, "none"));
  EXPECT_GT(fidelity_of(fallback_plans, "zne"), fidelity_of(fallback_plans, "none"));
}

TEST(Integration, OrchestratorWithReplicatedMonitor) {
  core::QonductorConfig config;
  config.num_qpus = 3;
  config.seed = 77;
  config.replicated_monitor = true;  // system monitor backed by Raft (§4.1)
  core::Qonductor qonductor(config);
  EXPECT_TRUE(qonductor.monitor().replicated());

  api::CreateWorkflowRequest create;
  create.name = "replicated-run";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 1000));
  const auto created = qonductor.createWorkflow(std::move(create));
  ASSERT_TRUE(created.ok()) << created.status().to_string();
  api::DeployRequest deploy_request;
  deploy_request.image = created->image;
  ASSERT_TRUE(qonductor.deploy(deploy_request).ok());

  api::InvokeRequest invoke_request;
  invoke_request.image = created->image;
  const auto handle = qonductor.invoke(invoke_request);
  ASSERT_TRUE(handle.ok()) << handle.status().to_string();
  EXPECT_EQ(handle->wait(), core::WorkflowStatus::kCompleted);
  // The status was committed through the Raft-backed store.
  EXPECT_EQ(qonductor.monitor().workflow_status(handle->id()).value_or(""), "completed");
  // Fleet state is readable back from the replicated monitor.
  const auto info = qonductor.monitor().qpu(qonductor.fleet().backends[0]->name());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->qubits, 27);
}

TEST(Integration, ReservationsRemoveQpusFromScheduling) {
  // §7 "Priority access": reserved QPUs are treated as offline.
  sched::SchedulingInput input;
  input.qpus = {{"reserved", 27, 0.0, false}, {"open", 27, 500.0, true}};
  for (int j = 0; j < 10; ++j) {
    sched::QuantumJob job;
    job.id = static_cast<std::uint64_t>(j);
    job.qubits = 5;
    job.est_fidelity = {0.99, 0.6};  // reserved QPU would be far better
    job.est_exec_seconds = {1.0, 5.0};
    input.jobs.push_back(job);
  }
  const auto decision = sched::schedule_cycle(input, {});
  for (int a : decision.assignment) EXPECT_EQ(a, 1);  // only the open QPU
}

}  // namespace
}  // namespace qon
