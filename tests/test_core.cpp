// Tests for the core orchestrator: the system monitor (local and
// Raft-replicated), and the Table-2 API surface end to end — create,
// deploy, invoke, status, results, resource estimation and scheduling.
//
// These exercise the deprecated synchronous shims (invoke() blocking until
// the run finishes, errors thrown as std::invalid_argument/std::out_of_range)
// and pin their contract while call sites migrate; the v1 typed/async
// surface is covered by tests/test_api.cpp.

#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "core/orchestrator.hpp"
#include "core/system_monitor.hpp"

namespace qon::core {
namespace {

TEST(SystemMonitor, LocalPutGetErase) {
  SystemMonitor monitor(false);
  EXPECT_TRUE(monitor.put("k", "v"));
  EXPECT_EQ(monitor.get("k").value_or(""), "v");
  EXPECT_TRUE(monitor.erase("k"));
  EXPECT_FALSE(monitor.get("k").has_value());
  EXPECT_FALSE(monitor.replicated());
}

TEST(SystemMonitor, ReplicatedBackendWorks) {
  SystemMonitor monitor(true);
  EXPECT_TRUE(monitor.replicated());
  EXPECT_TRUE(monitor.put("qpu/x", "state"));
  EXPECT_EQ(monitor.get("qpu/x").value_or(""), "state");
}

TEST(SystemMonitor, QpuRoundTrip) {
  SystemMonitor monitor(false);
  QpuInfo info;
  info.name = "mumbai";
  info.qubits = 27;
  info.queue_length = 12;
  info.queue_wait_seconds = 345.5;
  info.mean_gate_error_2q = 0.011;
  info.calibration_cycle = 7;
  info.online = true;
  monitor.update_qpu(info);
  const auto read = monitor.qpu("mumbai");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->qubits, 27);
  EXPECT_EQ(read->queue_length, 12u);
  EXPECT_NEAR(read->queue_wait_seconds, 345.5, 1e-9);
  EXPECT_NEAR(read->mean_gate_error_2q, 0.011, 1e-9);
  EXPECT_EQ(read->calibration_cycle, 7u);
  EXPECT_EQ(monitor.qpu_names(), (std::vector<std::string>{"mumbai"}));
  EXPECT_FALSE(monitor.qpu("absent").has_value());
}

TEST(SystemMonitor, WorkflowStatusRoundTrip) {
  SystemMonitor monitor(false);
  monitor.set_workflow_status(42, "running");
  EXPECT_EQ(monitor.workflow_status(42).value_or(""), "running");
  EXPECT_FALSE(monitor.workflow_status(43).has_value());
}

class OrchestratorFixture : public ::testing::Test {
 protected:
  static QonductorConfig small_config() {
    QonductorConfig config;
    config.num_qpus = 3;
    config.seed = 4242;
    config.trajectory_width_limit = 8;
    return config;
  }
};

TEST_F(OrchestratorFixture, PublishesFleetToMonitor) {
  Qonductor orchestrator(small_config());
  EXPECT_EQ(orchestrator.monitor().qpu_names().size(), 3u);
  const auto info = orchestrator.monitor().qpu(orchestrator.fleet().backends[0]->name());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->qubits, 27);
}

TEST_F(OrchestratorFixture, CreateDeployInvokeLifecycle) {
  Qonductor orchestrator(small_config());

  // Listing-2-style hybrid workflow: pre-process, QAOA circuit, post-process.
  std::vector<workflow::HybridTask> tasks;
  tasks.push_back(workflow::HybridTask::classical("zne-prepare", 0.2));
  mitigation::MitigationSpec spec;
  spec.stack = {mitigation::Technique::kRem};
  tasks.push_back(workflow::HybridTask::quantum("qaoa", circuit::qaoa_maxcut(5, 1, 7), 2000, spec));
  tasks.push_back(workflow::HybridTask::classical("zne-inference", 0.4,
                                                  mitigation::Accelerator::kGpu));

  const auto image = orchestrator.createWorkflow(
      "qaoa-error-mitigated", std::move(tasks),
      "resources:\n  limits:\n    qubits: 5\n");
  EXPECT_EQ(orchestrator.listImages(), (std::vector<workflow::ImageId>{image}));

  EXPECT_EQ(orchestrator.deploy(image), image);
  const auto run = orchestrator.invoke(image);
  EXPECT_EQ(orchestrator.workflowStatus(run), WorkflowStatus::kCompleted);

  const auto& result = orchestrator.workflowResults(run);
  ASSERT_EQ(result.tasks.size(), 3u);
  EXPECT_EQ(result.tasks[0].kind, workflow::TaskKind::kClassical);
  EXPECT_EQ(result.tasks[1].kind, workflow::TaskKind::kQuantum);
  EXPECT_GT(result.tasks[1].fidelity, 0.2);
  EXPECT_LE(result.tasks[1].fidelity, 1.0);
  EXPECT_FALSE(result.tasks[1].counts.empty());  // small: trajectory-simulated
  EXPECT_FALSE(result.tasks[1].resource.empty());
  EXPECT_GT(result.total_cost_dollars, 0.0);
  EXPECT_GT(result.makespan_seconds, 0.0);
  // Tasks run in dependency order on the virtual clock.
  EXPECT_LE(result.tasks[0].end, result.tasks[1].start + 1e-9);
  EXPECT_LE(result.tasks[1].end, result.tasks[2].start + 1e-9);
}

TEST_F(OrchestratorFixture, InvokeRequiresDeploy) {
  Qonductor orchestrator(small_config());
  const auto image = orchestrator.createWorkflow(
      "undeployed", {workflow::HybridTask::classical("only", 0.1)});
  EXPECT_THROW(orchestrator.invoke(image), std::invalid_argument);
}

TEST_F(OrchestratorFixture, DeployRejectsOversizedCircuits) {
  Qonductor orchestrator(small_config());
  circuit::Circuit big(28);
  big.h(0);
  big.measure_all();
  const auto image = orchestrator.createWorkflow(
      "too-big", {workflow::HybridTask::quantum("big", big)});
  EXPECT_THROW(orchestrator.deploy(image), std::invalid_argument);
}

TEST_F(OrchestratorFixture, CreateWorkflowValidatesInput) {
  Qonductor orchestrator(small_config());
  EXPECT_THROW(orchestrator.createWorkflow("empty", {}), std::invalid_argument);
}

TEST_F(OrchestratorFixture, LargeCircuitsUseAnalyticModel) {
  Qonductor orchestrator(small_config());
  const auto image = orchestrator.createWorkflow(
      "wide", {workflow::HybridTask::quantum("qft20", circuit::qft(20), 1000)});
  orchestrator.deploy(image);
  const auto run = orchestrator.invoke(image);
  const auto& result = orchestrator.workflowResults(run);
  EXPECT_EQ(result.status, WorkflowStatus::kCompleted);
  EXPECT_TRUE(result.tasks[0].counts.empty());  // too wide for trajectories
  // A 20-qubit QFT is deep enough that its ESP can round to zero; only the
  // range invariant holds.
  EXPECT_GE(result.tasks[0].fidelity, 0.0);
  EXPECT_LE(result.tasks[0].fidelity, 1.0);
}

TEST_F(OrchestratorFixture, SequentialQuantumTasksQueueOnFleet) {
  Qonductor orchestrator(small_config());
  std::vector<workflow::HybridTask> tasks;
  tasks.push_back(workflow::HybridTask::quantum("first", circuit::ghz(4), 2000));
  tasks.push_back(workflow::HybridTask::quantum("second", circuit::ghz(4), 2000));
  const auto image = orchestrator.createWorkflow("pair", std::move(tasks));
  orchestrator.deploy(image);
  const auto run = orchestrator.invoke(image);
  const auto& result = orchestrator.workflowResults(run);
  ASSERT_EQ(result.tasks.size(), 2u);
  EXPECT_GE(result.tasks[1].start, result.tasks[0].end - 1e-9);
}

TEST_F(OrchestratorFixture, EstimateResourcesReturnsPlans) {
  Qonductor orchestrator(small_config());
  const auto plans = orchestrator.estimateResources(circuit::qaoa_maxcut(10, 1, 5));
  EXPECT_FALSE(plans.all.empty());
  EXPECT_FALSE(plans.recommended.empty());
  EXPECT_LE(plans.recommended.size(), 3u);
}

TEST_F(OrchestratorFixture, GenerateScheduleUsesHybridScheduler) {
  Qonductor orchestrator(small_config());
  sched::SchedulingInput input;
  for (const auto& backend : orchestrator.fleet().backends) {
    input.qpus.push_back({backend->name(), backend->num_qubits(), 0.0, true});
  }
  for (int j = 0; j < 10; ++j) {
    sched::QuantumJob job;
    job.id = static_cast<std::uint64_t>(j);
    job.qubits = 5;
    job.est_fidelity.assign(input.qpus.size(), 0.9);
    job.est_exec_seconds.assign(input.qpus.size(), 3.0);
    input.jobs.push_back(job);
  }
  const auto decision = orchestrator.generateSchedule(input);
  for (int a : decision.assignment) EXPECT_GE(a, 0);
}

TEST_F(OrchestratorFixture, WorkflowStatusUnknownRunThrows) {
  Qonductor orchestrator(small_config());
  EXPECT_THROW(orchestrator.workflowStatus(9999), std::out_of_range);
  EXPECT_THROW(orchestrator.workflowResults(9999), std::out_of_range);
}

TEST_F(OrchestratorFixture, MonitorTracksWorkflowStatus) {
  Qonductor orchestrator(small_config());
  const auto image = orchestrator.createWorkflow(
      "tracked", {workflow::HybridTask::classical("c", 0.1)});
  orchestrator.deploy(image);
  const auto run = orchestrator.invoke(image);
  EXPECT_EQ(orchestrator.monitor().workflow_status(run).value_or(""), "completed");
}

}  // namespace
}  // namespace qon::core
