// Tests for the core orchestrator: the system monitor (local and
// Raft-replicated), and the Table-2 API surface end to end — create,
// deploy, invoke, status, results, resource estimation and scheduling —
// exercised directly on core::Qonductor through the typed request/response
// surface (the former synchronous shims are gone). The client facade and
// the async lifecycle corners are covered by tests/test_api.cpp; the run
// table's retention policy by tests/test_run_table.cpp.

#include <gtest/gtest.h>

#include "circuit/library.hpp"
#include "core/orchestrator.hpp"
#include "core/system_monitor.hpp"

namespace qon::core {
namespace {

TEST(SystemMonitor, LocalPutGetErase) {
  SystemMonitor monitor(false);
  EXPECT_TRUE(monitor.put("k", "v"));
  EXPECT_EQ(monitor.get("k").value_or(""), "v");
  EXPECT_TRUE(monitor.erase("k"));
  EXPECT_FALSE(monitor.get("k").has_value());
  EXPECT_FALSE(monitor.replicated());
}

TEST(SystemMonitor, ReplicatedBackendWorks) {
  SystemMonitor monitor(true);
  EXPECT_TRUE(monitor.replicated());
  EXPECT_TRUE(monitor.put("qpu/x", "state"));
  EXPECT_EQ(monitor.get("qpu/x").value_or(""), "state");
}

TEST(SystemMonitor, QpuRoundTrip) {
  SystemMonitor monitor(false);
  QpuInfo info;
  info.name = "mumbai";
  info.qubits = 27;
  info.queue_length = 12;
  info.queue_wait_seconds = 345.5;
  info.mean_gate_error_2q = 0.011;
  info.calibration_cycle = 7;
  info.online = true;
  monitor.update_qpu(info);
  const auto read = monitor.qpu("mumbai");
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->qubits, 27);
  EXPECT_EQ(read->queue_length, 12u);
  EXPECT_NEAR(read->queue_wait_seconds, 345.5, 1e-9);
  EXPECT_NEAR(read->mean_gate_error_2q, 0.011, 1e-9);
  EXPECT_EQ(read->calibration_cycle, 7u);
  EXPECT_EQ(monitor.qpu_names(), (std::vector<std::string>{"mumbai"}));
  EXPECT_FALSE(monitor.qpu("absent").has_value());
}

TEST(SystemMonitor, AtomicFlagSettersAndDynamicPublishCompose) {
  SystemMonitor monitor(false);
  QpuInfo info;
  info.name = "mumbai";
  info.qubits = 27;
  monitor.update_qpu(info);

  // Field-level setters return the previous value and touch nothing else.
  EXPECT_EQ(monitor.set_qpu_reserved("mumbai", true), std::optional<bool>(false));
  EXPECT_EQ(monitor.set_qpu_reserved("mumbai", true), std::optional<bool>(true));
  EXPECT_EQ(monitor.set_qpu_online("mumbai", false), std::optional<bool>(true));
  EXPECT_FALSE(monitor.set_qpu_online("absent", false).has_value());
  EXPECT_FALSE(monitor.set_qpu_reserved("absent", true).has_value());

  // Republishing dynamic state preserves both flags.
  QpuInfo dynamic = info;
  dynamic.queue_wait_seconds = 99.0;
  monitor.publish_qpu_dynamic(dynamic);
  const auto read = monitor.qpu("mumbai");
  ASSERT_TRUE(read.has_value());
  EXPECT_NEAR(read->queue_wait_seconds, 99.0, 1e-9);
  EXPECT_FALSE(read->online);    // health flip survived the republish
  EXPECT_TRUE(read->reserved);   // reservation survived the republish
}

TEST(SystemMonitor, WorkflowStatusRoundTrip) {
  SystemMonitor monitor(false);
  monitor.set_workflow_status(42, "running");
  EXPECT_EQ(monitor.workflow_status(42).value_or(""), "running");
  EXPECT_FALSE(monitor.workflow_status(43).has_value());
  monitor.erase_workflow_status(42);
  EXPECT_FALSE(monitor.workflow_status(42).has_value());
}

class OrchestratorFixture : public ::testing::Test {
 protected:
  static QonductorConfig small_config() {
    QonductorConfig config;
    config.num_qpus = 3;
    config.seed = 4242;
    config.trajectory_width_limit = 8;
    return config;
  }

  /// createWorkflow through the typed surface; asserts success.
  static workflow::ImageId create(Qonductor& orchestrator, const std::string& name,
                                  std::vector<workflow::HybridTask> tasks,
                                  const std::string& yaml_config = "") {
    api::CreateWorkflowRequest request;
    request.name = name;
    request.tasks = std::move(tasks);
    request.yaml_config = yaml_config;
    auto created = orchestrator.createWorkflow(std::move(request));
    EXPECT_TRUE(created.ok()) << created.status().to_string();
    return created.ok() ? created->image : 0;
  }

  static void deploy(Qonductor& orchestrator, workflow::ImageId image) {
    api::DeployRequest request;
    request.image = image;
    auto deployed = orchestrator.deploy(request);
    ASSERT_TRUE(deployed.ok()) << deployed.status().to_string();
  }

  /// invoke + wait: the blocking convenience the old sync surface offered,
  /// now composed from the async primitives.
  static api::WorkflowResult invoke_and_wait(Qonductor& orchestrator,
                                             workflow::ImageId image) {
    api::InvokeRequest request;
    request.image = image;
    auto handle = orchestrator.invoke(request);
    EXPECT_TRUE(handle.ok()) << handle.status().to_string();
    if (!handle.ok()) return {};
    auto result = handle->result();
    EXPECT_TRUE(result.ok()) << result.status().to_string();
    return result.ok() ? *std::move(result) : api::WorkflowResult{};
  }
};

TEST_F(OrchestratorFixture, PublishesFleetToMonitor) {
  Qonductor orchestrator(small_config());
  EXPECT_EQ(orchestrator.monitor().qpu_names().size(), 3u);
  const auto info = orchestrator.monitor().qpu(orchestrator.fleet().backends[0]->name());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->qubits, 27);
}

TEST_F(OrchestratorFixture, CreateDeployInvokeLifecycle) {
  Qonductor orchestrator(small_config());

  // Listing-2-style hybrid workflow: pre-process, QAOA circuit, post-process.
  std::vector<workflow::HybridTask> tasks;
  tasks.push_back(workflow::HybridTask::classical("zne-prepare", 0.2));
  mitigation::MitigationSpec spec;
  spec.stack = {mitigation::Technique::kRem};
  tasks.push_back(workflow::HybridTask::quantum("qaoa", circuit::qaoa_maxcut(5, 1, 7), 2000, spec));
  tasks.push_back(workflow::HybridTask::classical("zne-inference", 0.4,
                                                  mitigation::Accelerator::kGpu));

  const auto image = create(orchestrator, "qaoa-error-mitigated", std::move(tasks),
                            "resources:\n  limits:\n    qubits: 5\n");
  EXPECT_EQ(orchestrator.listImages(), (std::vector<workflow::ImageId>{image}));
  deploy(orchestrator, image);

  const auto result = invoke_and_wait(orchestrator, image);
  EXPECT_EQ(result.status, WorkflowStatus::kCompleted);
  ASSERT_EQ(result.tasks.size(), 3u);
  EXPECT_EQ(result.tasks[0].kind, workflow::TaskKind::kClassical);
  EXPECT_EQ(result.tasks[1].kind, workflow::TaskKind::kQuantum);
  EXPECT_GT(result.tasks[1].fidelity, 0.2);
  EXPECT_LE(result.tasks[1].fidelity, 1.0);
  EXPECT_FALSE(result.tasks[1].counts.empty());  // small: trajectory-simulated
  EXPECT_FALSE(result.tasks[1].resource.empty());
  EXPECT_GT(result.total_cost_dollars, 0.0);
  EXPECT_GT(result.makespan_seconds, 0.0);
  // Tasks run in dependency order on the virtual clock.
  EXPECT_LE(result.tasks[0].end, result.tasks[1].start + 1e-9);
  EXPECT_LE(result.tasks[1].end, result.tasks[2].start + 1e-9);

  // The run's lifecycle record is queryable and stamped on the fleet clock.
  api::WorkflowStatusRequest status_request;
  status_request.run = result.run;
  auto status = orchestrator.workflowStatus(status_request);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->status, WorkflowStatus::kCompleted);
}

TEST_F(OrchestratorFixture, InvokeRequiresDeploy) {
  Qonductor orchestrator(small_config());
  const auto image = create(orchestrator, "undeployed",
                            {workflow::HybridTask::classical("only", 0.1)});
  api::InvokeRequest request;
  request.image = image;
  auto handle = orchestrator.invoke(request);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), api::StatusCode::kFailedPrecondition);
}

TEST_F(OrchestratorFixture, DeployRejectsOversizedCircuits) {
  Qonductor orchestrator(small_config());
  circuit::Circuit big(28);
  big.h(0);
  big.measure_all();
  const auto image = create(orchestrator, "too-big",
                            {workflow::HybridTask::quantum("big", big)});
  api::DeployRequest request;
  request.image = image;
  auto deployed = orchestrator.deploy(request);
  ASSERT_FALSE(deployed.ok());
  EXPECT_EQ(deployed.status().code(), api::StatusCode::kResourceExhausted);
}

TEST_F(OrchestratorFixture, CreateWorkflowValidatesInput) {
  Qonductor orchestrator(small_config());
  api::CreateWorkflowRequest request;
  request.name = "empty";
  auto created = orchestrator.createWorkflow(std::move(request));
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), api::StatusCode::kInvalidArgument);
}

TEST_F(OrchestratorFixture, LargeCircuitsUseAnalyticModel) {
  Qonductor orchestrator(small_config());
  const auto image = create(orchestrator, "wide",
                            {workflow::HybridTask::quantum("qft20", circuit::qft(20), 1000)});
  deploy(orchestrator, image);
  const auto result = invoke_and_wait(orchestrator, image);
  EXPECT_EQ(result.status, WorkflowStatus::kCompleted);
  ASSERT_EQ(result.tasks.size(), 1u);
  EXPECT_TRUE(result.tasks[0].counts.empty());  // too wide for trajectories
  // A 20-qubit QFT is deep enough that its ESP can round to zero; only the
  // range invariant holds.
  EXPECT_GE(result.tasks[0].fidelity, 0.0);
  EXPECT_LE(result.tasks[0].fidelity, 1.0);
}

TEST_F(OrchestratorFixture, SequentialQuantumTasksQueueOnFleet) {
  Qonductor orchestrator(small_config());
  std::vector<workflow::HybridTask> tasks;
  tasks.push_back(workflow::HybridTask::quantum("first", circuit::ghz(4), 2000));
  tasks.push_back(workflow::HybridTask::quantum("second", circuit::ghz(4), 2000));
  const auto image = create(orchestrator, "pair", std::move(tasks));
  deploy(orchestrator, image);
  const auto result = invoke_and_wait(orchestrator, image);
  ASSERT_EQ(result.tasks.size(), 2u);
  EXPECT_GE(result.tasks[1].start, result.tasks[0].end - 1e-9);
}

TEST_F(OrchestratorFixture, EstimateResourcesReturnsPlans) {
  Qonductor orchestrator(small_config());
  const auto plans = orchestrator.estimateResources(circuit::qaoa_maxcut(10, 1, 5));
  EXPECT_FALSE(plans.all.empty());
  EXPECT_FALSE(plans.recommended.empty());
  EXPECT_LE(plans.recommended.size(), 3u);
}

TEST_F(OrchestratorFixture, GenerateScheduleUsesHybridScheduler) {
  Qonductor orchestrator(small_config());
  sched::SchedulingInput input;
  for (const auto& backend : orchestrator.fleet().backends) {
    input.qpus.push_back({backend->name(), backend->num_qubits(), 0.0, true});
  }
  for (int j = 0; j < 10; ++j) {
    sched::QuantumJob job;
    job.id = static_cast<std::uint64_t>(j);
    job.qubits = 5;
    job.est_fidelity.assign(input.qpus.size(), 0.9);
    job.est_exec_seconds.assign(input.qpus.size(), 3.0);
    input.jobs.push_back(job);
  }
  const auto decision = orchestrator.generateSchedule(input);
  for (int a : decision.assignment) EXPECT_GE(a, 0);
}

TEST_F(OrchestratorFixture, UnknownRunIsNotFound) {
  Qonductor orchestrator(small_config());
  api::WorkflowStatusRequest status_request;
  status_request.run = 9999;
  auto status = orchestrator.workflowStatus(status_request);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.status().code(), api::StatusCode::kNotFound);

  api::GetRunRequest get_request;
  get_request.run = 9999;
  auto info = orchestrator.getRun(get_request);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), api::StatusCode::kNotFound);
}

TEST_F(OrchestratorFixture, MonitorTracksWorkflowStatus) {
  Qonductor orchestrator(small_config());
  const auto image = create(orchestrator, "tracked",
                            {workflow::HybridTask::classical("c", 0.1)});
  deploy(orchestrator, image);
  const auto result = invoke_and_wait(orchestrator, image);
  EXPECT_EQ(orchestrator.monitor().workflow_status(result.run).value_or(""), "completed");
}

TEST_F(OrchestratorFixture, RunInfoTimestampsFollowTheFleetClock) {
  Qonductor orchestrator(small_config());
  std::vector<workflow::HybridTask> tasks;
  tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 1000));
  tasks.push_back(workflow::HybridTask::classical("post", 0.2));
  const auto image = create(orchestrator, "stamped", std::move(tasks));
  deploy(orchestrator, image);
  const auto result = invoke_and_wait(orchestrator, image);

  api::GetRunRequest request;
  request.run = result.run;
  auto response = orchestrator.getRun(request);
  ASSERT_TRUE(response.ok()) << response.status().to_string();
  const api::RunInfo& info = response->info;
  EXPECT_EQ(info.run, result.run);
  EXPECT_EQ(info.image, image);
  EXPECT_EQ(info.status, WorkflowStatus::kCompleted);
  EXPECT_TRUE(info.error.ok());
  // submitted -> started -> finished is monotone on the fleet virtual
  // clock, and the finish stamp has caught up with the executed makespan.
  EXPECT_GE(info.submitted_at, 0.0);
  EXPECT_GE(info.started_at, info.submitted_at);
  EXPECT_GE(info.finished_at, info.started_at);
  EXPECT_GE(info.finished_at, result.makespan_seconds - 1e-9);
  EXPECT_GE(orchestrator.fleetNow(), info.finished_at);
}

TEST_F(OrchestratorFixture, ShutdownIsIdempotentAndKeepsQueriesWorking) {
  Qonductor orchestrator(small_config());
  const auto image = create(orchestrator, "pre-shutdown",
                            {workflow::HybridTask::classical("c", 0.1)});
  deploy(orchestrator, image);
  const auto result = invoke_and_wait(orchestrator, image);

  orchestrator.shutdown();
  orchestrator.shutdown();  // idempotent

  // Queries on existing runs keep answering after shutdown.
  api::GetRunRequest request;
  request.run = result.run;
  auto info = orchestrator.getRun(request);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->info.status, WorkflowStatus::kCompleted);

  // New work is rejected with the typed UNAVAILABLE, not an exception.
  api::InvokeRequest invoke_request;
  invoke_request.image = image;
  auto rejected = orchestrator.invoke(invoke_request);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), api::StatusCode::kUnavailable);
}

}  // namespace
}  // namespace qon::core
