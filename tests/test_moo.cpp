// Tests for the multi-objective optimization engine: dominance, fast
// non-dominated sort, crowding distance, NSGA-II convergence on a known
// bi-objective problem, and pseudo-weight MCDM selection.

#include <gtest/gtest.h>

#include <cmath>

#include "moo/mcdm.hpp"
#include "moo/nsga2.hpp"
#include "moo/problem.hpp"

namespace qon::moo {
namespace {

TEST(Dominance, StrictAndIncomparable) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {1.0, 3.0}));
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));  // incomparable
  EXPECT_FALSE(dominates({1.0, 1.0}, {1.0, 1.0}));  // equal: not strict
}

TEST(Dominance, NonDominatedIndices) {
  const std::vector<std::vector<double>> objs = {
      {1.0, 5.0}, {2.0, 3.0}, {3.0, 4.0}, {4.0, 1.0}};
  const auto front = non_dominated_indices(objs);
  // {3,4} is dominated by {2,3}; the rest are mutually incomparable.
  EXPECT_EQ(front, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(Sorting, FastNonDominatedSortRanks) {
  // A total-order chain: each point is dominated by everything better, so
  // the fronts peel off one at a time: 1.0 < 1.5 < 2.0 < 3.0.
  const std::vector<std::vector<double>> objs = {
      {1.0, 1.0},  // rank 0
      {2.0, 2.0},  // rank 2
      {3.0, 3.0},  // rank 3
      {1.5, 1.5},  // rank 1
  };
  const auto ranks = fast_non_dominated_sort(objs);
  EXPECT_EQ(ranks[0], 0u);
  EXPECT_EQ(ranks[1], 2u);
  EXPECT_EQ(ranks[2], 3u);
  EXPECT_EQ(ranks[3], 1u);

  // Two incomparable points share rank 0.
  const auto mixed = fast_non_dominated_sort({{1.0, 5.0}, {5.0, 1.0}, {6.0, 6.0}});
  EXPECT_EQ(mixed[0], 0u);
  EXPECT_EQ(mixed[1], 0u);
  EXPECT_EQ(mixed[2], 1u);
}

TEST(Sorting, CrowdingDistanceBoundariesInfinite) {
  const std::vector<std::vector<double>> objs = {
      {0.0, 4.0}, {1.0, 3.0}, {2.0, 2.0}, {3.0, 1.0}, {4.0, 0.0}};
  const std::vector<std::size_t> front = {0, 1, 2, 3, 4};
  const auto dist = crowding_distance(objs, front);
  EXPECT_TRUE(std::isinf(dist[0]));
  EXPECT_TRUE(std::isinf(dist[4]));
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(dist[i], 0.0);
    EXPECT_FALSE(std::isinf(dist[i]));
  }
}

// A classic discretized bi-objective: minimize (x^2, (x - K)^2) for integer
// x in [-50, 150] with K = 100. The Pareto set is x in [0, K].
class TwoParabolas : public IntegerProblem {
 public:
  std::size_t num_variables() const override { return 1; }
  int lower_bound(std::size_t) const override { return -50; }
  int upper_bound(std::size_t) const override { return 150; }
  std::size_t num_objectives() const override { return 2; }
  void evaluate(const std::vector<int>& genome, std::vector<double>& objectives) const override {
    const double x = genome[0];
    objectives.resize(2);
    objectives[0] = x * x;
    objectives[1] = (x - 100.0) * (x - 100.0);
  }
};

TEST(Nsga2, FindsParetoSetOfTwoParabolas) {
  TwoParabolas problem;
  Nsga2Config config;
  config.population_size = 60;
  config.max_generations = 80;
  config.seed = 5;
  const auto result = nsga2(problem, config);
  ASSERT_FALSE(result.front.empty());
  // Every front member must lie in the true Pareto set [0, 100].
  for (const auto& sol : result.front) {
    EXPECT_GE(sol.genome[0], 0);
    EXPECT_LE(sol.genome[0], 100);
  }
  // The front should cover a substantial spread of the set.
  int lo = 200;
  int hi = -200;
  for (const auto& sol : result.front) {
    lo = std::min(lo, sol.genome[0]);
    hi = std::max(hi, sol.genome[0]);
  }
  EXPECT_LT(lo, 25);
  EXPECT_GT(hi, 75);
}

TEST(Nsga2, FrontIsMutuallyNonDominated) {
  TwoParabolas problem;
  Nsga2Config config;
  config.seed = 11;
  const auto result = nsga2(problem, config);
  for (std::size_t i = 0; i < result.front.size(); ++i) {
    for (std::size_t j = 0; j < result.front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(result.front[i].objectives, result.front[j].objectives))
          << "front member " << i << " dominates " << j;
    }
  }
}

TEST(Nsga2, RespectsEvaluationBudget) {
  TwoParabolas problem;
  Nsga2Config config;
  config.population_size = 20;
  config.max_generations = 1000;
  config.max_evaluations = 200;
  config.tolerance = 0.0;  // disable tolerance termination
  const auto result = nsga2(problem, config);
  EXPECT_LE(result.evaluations, 240u);  // budget + at most one extra batch
}

TEST(Nsga2, ToleranceTerminationStopsEarly) {
  TwoParabolas problem;
  Nsga2Config config;
  config.population_size = 40;
  config.max_generations = 500;
  config.tolerance = 0.05;  // generous: should converge well before 500
  config.tolerance_window = 5;
  config.seed = 3;
  const auto result = nsga2(problem, config);
  EXPECT_TRUE(result.converged_by_tolerance);
  EXPECT_LT(result.generations, 500u);
}

TEST(Nsga2, DeterministicForFixedSeed) {
  TwoParabolas problem;
  Nsga2Config config;
  config.seed = 21;
  const auto a = nsga2(problem, config);
  const auto b = nsga2(problem, config);
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].genome, b.front[i].genome);
  }
}

TEST(Nsga2, ValidatesConfig) {
  TwoParabolas problem;
  Nsga2Config config;
  config.population_size = 2;
  EXPECT_THROW(nsga2(problem, config), std::invalid_argument);
}

// Constrained problem: only even genes are feasible; repair() enforces it.
class EvenOnly : public IntegerProblem {
 public:
  std::size_t num_variables() const override { return 3; }
  int lower_bound(std::size_t) const override { return 0; }
  int upper_bound(std::size_t) const override { return 10; }
  std::size_t num_objectives() const override { return 2; }
  void evaluate(const std::vector<int>& g, std::vector<double>& o) const override {
    o = {static_cast<double>(g[0] + g[1] + g[2]),
         30.0 - static_cast<double>(g[0] + g[1] + g[2])};
  }
  void repair(std::vector<int>& g) const override {
    IntegerProblem::repair(g);
    for (auto& x : g) x -= x % 2;
  }
};

TEST(Nsga2, RepairHookIsHonored) {
  EvenOnly problem;
  Nsga2Config config;
  config.seed = 9;
  const auto result = nsga2(problem, config);
  for (const auto& sol : result.front) {
    for (int gene : sol.genome) EXPECT_EQ(gene % 2, 0);
  }
}

TEST(Mcdm, PseudoWeightsRowsSumToOne) {
  const std::vector<std::vector<double>> front = {
      {0.0, 10.0}, {5.0, 5.0}, {10.0, 0.0}};
  const auto weights = pseudo_weights(front);
  ASSERT_EQ(weights.size(), 3u);
  for (const auto& row : weights) {
    double sum = 0.0;
    for (double w : row) sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Mcdm, ExtremePreferencesPickExtremeSolutions) {
  // Objective 0 = JCT, objective 1 = error; both minimized.
  const std::vector<std::vector<double>> front = {
      {0.0, 10.0},  // best JCT, worst error
      {5.0, 5.0},
      {10.0, 0.0},  // worst JCT, best error
  };
  // All weight on objective 0 -> the solution best in objective 0.
  EXPECT_EQ(select_by_pseudo_weight(front, {1.0, 0.0}), 0u);
  EXPECT_EQ(select_by_pseudo_weight(front, {0.0, 1.0}), 2u);
  EXPECT_EQ(select_by_pseudo_weight(front, {0.5, 0.5}), 1u);
}

TEST(Mcdm, DegenerateFrontFallsBackToUniform) {
  const std::vector<std::vector<double>> front = {{3.0, 3.0}, {3.0, 3.0}};
  const auto weights = pseudo_weights(front);
  EXPECT_NEAR(weights[0][0], 0.5, 1e-12);
  EXPECT_NO_THROW(select_by_pseudo_weight(front, {0.5, 0.5}));
}

TEST(Mcdm, ValidatesInput) {
  EXPECT_THROW(select_by_pseudo_weight(std::vector<std::vector<double>>{}, {0.5, 0.5}),
               std::invalid_argument);
  const std::vector<std::vector<double>> front = {{1.0, 2.0}};
  EXPECT_THROW(select_by_pseudo_weight(front, {1.0}), std::invalid_argument);
}

TEST(Mcdm, SelectEachServesHeterogeneousPreferences) {
  const std::vector<std::vector<double>> front = {
      {0.0, 10.0},  // best JCT, worst error
      {5.0, 5.0},
      {10.0, 0.0},  // worst JCT, best error
  };
  // One shared pseudo-weight computation, one pick per preference — must
  // agree with the single-preference selector on every row.
  const auto picks = select_each_by_pseudo_weight(
      front, {{1.0, 0.0}, {0.5, 0.5}, {0.0, 1.0}});
  EXPECT_EQ(picks, (std::vector<std::size_t>{0u, 1u, 2u}));
  EXPECT_TRUE(select_each_by_pseudo_weight(front, {}).empty());
  EXPECT_THROW(select_each_by_pseudo_weight({}, {{0.5, 0.5}}), std::invalid_argument);
  EXPECT_THROW(select_each_by_pseudo_weight(front, {{1.0}}), std::invalid_argument);
}

// Seed sweep: the scheduler's core engine must behave across seeds.
class Nsga2SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Nsga2SeedSweep, ParetoMembersStayFeasible) {
  TwoParabolas problem;
  Nsga2Config config;
  config.seed = GetParam();
  config.max_generations = 40;
  const auto result = nsga2(problem, config);
  ASSERT_FALSE(result.front.empty());
  for (const auto& sol : result.front) {
    EXPECT_GE(sol.genome[0], problem.lower_bound(0));
    EXPECT_LE(sol.genome[0], problem.upper_bound(0));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Nsga2SeedSweep, ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace qon::moo
