// Tests for the Raft consensus substrate (§4.1 fault tolerance): leader
// election, log replication, leader failover, partition behaviour and the
// replicated KV store that backs the system monitor.

#include <gtest/gtest.h>

#include <set>

#include "raft/cluster.hpp"
#include "raft/kv_store.hpp"
#include "raft/network.hpp"

namespace qon::raft {
namespace {

TEST(Network, DeliversWithBoundedDelay) {
  NetworkConfig config;
  config.min_delay_ticks = 2;
  config.max_delay_ticks = 4;
  SimNetwork net(config);
  net.send({0, 1, RequestVote{}});
  std::size_t delivered = 0;
  for (int t = 0; t < 10; ++t) delivered += net.tick().size();
  EXPECT_EQ(delivered, 1u);
}

TEST(Network, PartitionBlocksBothDirections) {
  SimNetwork net;
  net.partition(0, 1);
  net.send({0, 1, RequestVote{}});
  net.send({1, 0, RequestVote{}});
  std::size_t delivered = 0;
  for (int t = 0; t < 10; ++t) delivered += net.tick().size();
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(net.dropped(), 2u);
  net.heal();
  net.send({0, 1, RequestVote{}});
  delivered = 0;
  for (int t = 0; t < 10; ++t) delivered += net.tick().size();
  EXPECT_EQ(delivered, 1u);
}

TEST(Network, ValidatesConfig) {
  NetworkConfig bad;
  bad.min_delay_ticks = 0;
  EXPECT_THROW(SimNetwork{bad}, std::invalid_argument);
}

TEST(Cluster, ElectsExactlyOneLeader) {
  RaftCluster cluster(3);
  const auto leader = cluster.run_until_leader();
  ASSERT_TRUE(leader.has_value());
  // Let the heartbeats settle, then count leaders of the max term.
  cluster.run(50);
  std::size_t leaders = 0;
  Term max_term = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) max_term = std::max(max_term, cluster.node(i).term());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).role() == Role::kLeader && cluster.node(i).term() == max_term) {
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1u);
}

TEST(Cluster, RejectsEvenOrTinySizes) {
  EXPECT_THROW(RaftCluster(2), std::invalid_argument);
  EXPECT_THROW(RaftCluster(4), std::invalid_argument);
  EXPECT_THROW(RaftCluster(1), std::invalid_argument);
}

TEST(Cluster, ReplicatesCommandsToMajority) {
  RaftCluster cluster(3);
  ASSERT_TRUE(cluster.propose_and_commit("cmd-1"));
  ASSERT_TRUE(cluster.propose_and_commit("cmd-2"));
  cluster.run(100);
  // All live nodes applied the same sequence.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    ASSERT_GE(cluster.applied(i).size(), 2u) << "node " << i;
    EXPECT_EQ(cluster.applied(i)[0], "cmd-1");
    EXPECT_EQ(cluster.applied(i)[1], "cmd-2");
  }
}

TEST(Cluster, FailsOverWhenLeaderCrashes) {
  RaftCluster cluster(3);
  const auto first = cluster.run_until_leader();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(cluster.propose_and_commit("before-crash"));

  cluster.node(static_cast<std::size_t>(*first)).crash();
  // The remaining 2-of-3 quorum elects a new leader via heartbeat timeout.
  std::optional<NodeId> second;
  for (int i = 0; i < 3000 && !second; ++i) {
    cluster.step();
    const auto l = cluster.leader();
    if (l && *l != *first) second = l;
  }
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);
  // The new regime still commits.
  EXPECT_TRUE(cluster.propose_and_commit("after-crash"));
}

TEST(Cluster, CrashedMinorityDoesNotBlockCommits) {
  RaftCluster cluster(5);
  ASSERT_TRUE(cluster.run_until_leader().has_value());
  // Crash two non-leader nodes (f = 2 tolerated by 2f+1 = 5).
  const auto leader = *cluster.leader();
  int crashed = 0;
  for (std::size_t i = 0; i < cluster.size() && crashed < 2; ++i) {
    if (static_cast<NodeId>(i) != leader) {
      cluster.node(i).crash();
      ++crashed;
    }
  }
  EXPECT_TRUE(cluster.propose_and_commit("with-minority-down"));
}

TEST(Cluster, LogsStayConsistentAcrossFailover) {
  RaftCluster cluster(3);
  ASSERT_TRUE(cluster.propose_and_commit("a"));
  const auto first = *cluster.leader();
  cluster.node(static_cast<std::size_t>(first)).crash();
  for (int i = 0; i < 2000; ++i) {
    cluster.step();
    const auto l = cluster.leader();
    if (l && *l != first) break;
  }
  ASSERT_TRUE(cluster.propose_and_commit("b"));
  cluster.run(200);
  // Every live node's applied prefix is ["a", "b"].
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).crashed()) continue;
    ASSERT_GE(cluster.applied(i).size(), 2u);
    EXPECT_EQ(cluster.applied(i)[0], "a");
    EXPECT_EQ(cluster.applied(i)[1], "b");
  }
}

TEST(Cluster, RestartedNodeCatchesUp) {
  RaftCluster cluster(3);
  ASSERT_TRUE(cluster.propose_and_commit("x"));
  const auto leader = *cluster.leader();
  // Crash a follower, commit more, restart it.
  const std::size_t follower = static_cast<std::size_t>((leader + 1) % 3);
  cluster.node(follower).crash();
  ASSERT_TRUE(cluster.propose_and_commit("y"));
  cluster.node(follower).restart();
  cluster.run(400);
  ASSERT_GE(cluster.applied(follower).size(), 2u);
  EXPECT_EQ(cluster.applied(follower)[0], "x");
  EXPECT_EQ(cluster.applied(follower)[1], "y");
}

TEST(Cluster, TermsAreMonotonic) {
  RaftCluster cluster(3);
  cluster.run_until_leader();
  Term prev = 0;
  for (int i = 0; i < 200; ++i) {
    cluster.step();
    Term max_term = 0;
    for (std::size_t n = 0; n < cluster.size(); ++n) {
      max_term = std::max(max_term, cluster.node(n).term());
    }
    EXPECT_GE(max_term, prev);
    prev = max_term;
  }
}

TEST(KvStore, SetGetRoundTrip) {
  ReplicatedKvStore store(3);
  ASSERT_TRUE(store.set("qpu/mumbai", "queue=12"));
  const auto value = store.get("qpu/mumbai");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, "queue=12");
  EXPECT_FALSE(store.get("missing").has_value());
}

TEST(KvStore, OverwriteAndErase) {
  ReplicatedKvStore store(3);
  ASSERT_TRUE(store.set("k", "v1"));
  ASSERT_TRUE(store.set("k", "v2"));
  EXPECT_EQ(*store.get("k"), "v2");
  ASSERT_TRUE(store.erase("k"));
  EXPECT_FALSE(store.get("k").has_value());
}

TEST(KvStore, ValuesWithSpacesSurviveEncoding) {
  ReplicatedKvStore store(3);
  const std::string value = "status=running queue size=5 100%";
  ASSERT_TRUE(store.set("workflow/1", value));
  EXPECT_EQ(*store.get("workflow/1"), value);
}

TEST(KvStore, AllReplicasConverge) {
  ReplicatedKvStore store(3);
  ASSERT_TRUE(store.set("a", "1"));
  ASSERT_TRUE(store.set("b", "2"));
  store.cluster().run(200);
  store.materialize();
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(store.get("a", r).value_or(""), "1") << "replica " << r;
    EXPECT_EQ(store.get("b", r).value_or(""), "2") << "replica " << r;
    EXPECT_EQ(store.size(r), 2u);
  }
}

TEST(KvStore, EncodeDecodeInverse) {
  const std::string raw = "a b%c\nd";
  EXPECT_EQ(ReplicatedKvStore::decode(ReplicatedKvStore::encode(raw)), raw);
}

// Lossy-network sweep: consensus must still make progress under drops.
class LossyNetworkSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossyNetworkSweep, CommitsDespiteDrops) {
  NetworkConfig net;
  net.drop_probability = GetParam();
  RaftCluster cluster(3, RaftConfig{}, net, 123);
  ASSERT_TRUE(cluster.run_until_leader(5000).has_value());
  EXPECT_TRUE(cluster.propose_and_commit("lossy", 5000));
}

INSTANTIATE_TEST_SUITE_P(DropRates, LossyNetworkSweep, ::testing::Values(0.0, 0.05, 0.15));

}  // namespace
}  // namespace qon::raft
