// Tests for the campaign harness: the seeded arrival-process generators
// (determinism and empirical-rate sanity), the yamlite profile parser
// (happy path plus the malformed-profile INVALID_ARGUMENT surface), the
// streaming latency accumulator, the batched stats sink, the snapshot
// delta arithmetic, the bounded-ring drop counters (satellite of the
// no-silent-caps rule), and a small end-to-end campaign run twice to
// assert the lockstep determinism contract byte for byte.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/arrivals.hpp"
#include "campaign/driver.hpp"
#include "campaign/profile.hpp"
#include "campaign/report.hpp"
#include "campaign/sink.hpp"
#include "cloudsim/workload.hpp"
#include "common/rng.hpp"
#include "core/scheduler_service.hpp"
#include "obs/delta.hpp"
#include "obs/telemetry.hpp"

namespace qon::campaign {
namespace {

using namespace std::chrono_literals;

constexpr double kHour = 3600.0;

std::vector<double> arrivals_until(const ArrivalProcess& process, double horizon,
                                   Rng& rng) {
  std::vector<double> times;
  double t = 0.0;
  while ((t = process.next(t, horizon, rng)) < horizon) times.push_back(t);
  return times;
}

std::string temp_path(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + std::string(info->test_suite_name()) + "_" +
         info->name() + "_" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// ---- Arrival processes -------------------------------------------------------

TEST(CampaignArrivals, SeededStreamsReproduceBitForBit) {
  for (const ArrivalKind kind :
       {ArrivalKind::kPoisson, ArrivalKind::kDiurnal, ArrivalKind::kPareto,
        ArrivalKind::kFlashCrowd}) {
    ArrivalSpec spec;
    spec.kind = kind;
    spec.rate_per_hour = 900.0;
    spec.pareto_alpha = 1.6;
    const ArrivalProcess process(spec);
    Rng a(1234), b(1234), c(99);
    const auto first = arrivals_until(process, 6 * kHour, a);
    const auto second = arrivals_until(process, 6 * kHour, b);
    const auto other = arrivals_until(process, 6 * kHour, c);
    ASSERT_FALSE(first.empty()) << arrival_kind_name(kind);
    EXPECT_EQ(first, second) << arrival_kind_name(kind);
    EXPECT_NE(first, other) << arrival_kind_name(kind);
  }
}

TEST(CampaignArrivals, PoissonEmpiricalRateMatches) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPoisson;
  spec.rate_per_hour = 1500.0;
  const ArrivalProcess process(spec);
  Rng rng(7);
  const double hours = 24.0;
  const auto times = arrivals_until(process, hours * kHour, rng);
  const double expected = spec.rate_per_hour * hours;  // 36000
  // ~5 sigma of a Poisson(36000) count is under 1000.
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 1000.0);
}

TEST(CampaignArrivals, DiurnalRateStaysInsideTheMeasuredBand) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_per_hour = 1500.0;  // defaults give the 1100..2050 jobs/h band
  const ArrivalProcess process(spec);
  double lowest = 1e18;
  double highest = -1e18;
  for (double t = 0.0; t < 48 * kHour; t += 600.0) {
    const double rate = process.rate_at(t);
    lowest = std::min(lowest, rate);
    highest = std::max(highest, rate);
  }
  EXPECT_GE(lowest, 1100.0 - 1e-6);
  EXPECT_LE(highest, 2050.0 + 1e-6);
  EXPECT_NEAR(lowest, 1100.0, 5.0);   // the sinusoid reaches both ends
  EXPECT_NEAR(highest, 2050.0, 5.0);
  EXPECT_DOUBLE_EQ(process.max_rate_per_hour(), highest);
}

TEST(CampaignArrivals, DiurnalEmpiricalMeanTracksTheBandCenter) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_per_hour = 1500.0;
  const ArrivalProcess process(spec);
  Rng rng(11);
  const double hours = 48.0;  // whole periods, so the mean is the band center
  const auto times = arrivals_until(process, hours * kHour, rng);
  const double expected = (1100.0 + 2050.0) / 2.0 * hours;
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.05 * expected);
}

TEST(CampaignArrivals, CloudsimDiurnalRateDelegatesHere) {
  // Satellite contract: cloudsim::diurnal_rate and the campaign generator
  // are one implementation, so seeded cloudsim traces cannot drift.
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kDiurnal;
  spec.rate_per_hour = 1500.0;
  const ArrivalProcess process(spec);
  for (double t = 0.0; t < 36 * kHour; t += 1234.5) {
    EXPECT_DOUBLE_EQ(cloudsim::diurnal_rate(t, 1500.0), process.rate_at(t));
  }
}

TEST(CampaignArrivals, ParetoMeanRateMatchesWhenVarianceIsFinite) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPareto;
  spec.rate_per_hour = 1200.0;
  spec.pareto_alpha = 2.5;  // finite variance, so the empirical mean settles
  const ArrivalProcess process(spec);
  Rng rng(21);
  const double hours = 100.0;
  const auto times = arrivals_until(process, hours * kHour, rng);
  const double expected = spec.rate_per_hour * hours;
  EXPECT_NEAR(static_cast<double>(times.size()), expected, 0.05 * expected);
}

TEST(CampaignArrivals, ParetoGapsAreHeavyTailed) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kPareto;
  spec.rate_per_hour = 1200.0;
  spec.pareto_alpha = 1.6;
  const ArrivalProcess process(spec);
  Rng rng(31);
  const auto times = arrivals_until(process, 50 * kHour, rng);
  ASSERT_GT(times.size(), 1000u);
  const double mean_gap = kHour / spec.rate_per_hour;  // 3 s
  double max_gap = 0.0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    max_gap = std::max(max_gap, times[i] - times[i - 1]);
  }
  // An exponential process of the same mean essentially never produces a
  // 15x-mean gap in 60k draws without the heavy tail.
  EXPECT_GT(max_gap, 15.0 * mean_gap);
}

TEST(CampaignArrivals, FlashCrowdSpikesInsideTheWindow) {
  ArrivalSpec spec;
  spec.kind = ArrivalKind::kFlashCrowd;
  spec.rate_per_hour = 1000.0;
  spec.spike_start_hours = 1.0;
  spec.spike_duration_hours = 0.5;
  spec.spike_multiplier = 8.0;
  const ArrivalProcess process(spec);
  EXPECT_DOUBLE_EQ(process.rate_at(0.5 * kHour), 1000.0);
  EXPECT_DOUBLE_EQ(process.rate_at(1.25 * kHour), 8000.0);
  EXPECT_DOUBLE_EQ(process.rate_at(1.75 * kHour), 1000.0);
  EXPECT_DOUBLE_EQ(process.max_rate_per_hour(), 8000.0);

  Rng rng(41);
  const auto times = arrivals_until(process, 3 * kHour, rng);
  std::size_t inside = 0;
  for (const double t : times) {
    if (t >= 1.0 * kHour && t < 1.5 * kHour) ++inside;
  }
  const std::size_t outside = times.size() - inside;
  // Density ratio: 0.5 h of spike vs 2.5 h of baseline; expected
  // inside/outside counts 4000 vs 2500. Require a clear multiplier.
  const double inside_rate = static_cast<double>(inside) / 0.5;
  const double outside_rate = static_cast<double>(outside) / 2.5;
  EXPECT_GT(inside_rate, 4.0 * outside_rate);
}

TEST(CampaignArrivals, OutOfRangeSpecsThrow) {
  ArrivalSpec bad_rate;
  bad_rate.rate_per_hour = 0.0;
  EXPECT_THROW(ArrivalProcess{bad_rate}, std::invalid_argument);

  ArrivalSpec bad_alpha;
  bad_alpha.kind = ArrivalKind::kPareto;
  bad_alpha.pareto_alpha = 1.0;  // infinite mean gap
  EXPECT_THROW(ArrivalProcess{bad_alpha}, std::invalid_argument);

  ArrivalSpec bad_band;
  bad_band.kind = ArrivalKind::kDiurnal;
  bad_band.diurnal_low_ratio = 1.5;
  bad_band.diurnal_high_ratio = 0.5;
  EXPECT_THROW(ArrivalProcess{bad_band}, std::invalid_argument);

  ArrivalSpec bad_spike;
  bad_spike.kind = ArrivalKind::kFlashCrowd;
  bad_spike.spike_multiplier = 0.5;
  EXPECT_THROW(ArrivalProcess{bad_spike}, std::invalid_argument);
}

// ---- Profile parsing ---------------------------------------------------------

constexpr const char* kFullProfile = R"(
campaign:
  name: parse-full
  seed: 77
  duration_hours: 2.5
  target_runs: 5000
  stats_interval_seconds: 600
  pacing: lockstep
arrivals:
  process: pareto
  rate_per_hour: 1800
  pareto_alpha: 1.7
fleet:
  num_qpus: 8
  executor_threads: 1
  trajectory_width_limit: 6
  max_terminal_runs: 512
scheduler:
  queue_threshold: 64
  interval_seconds: 90
  queue_capacity: 2048
admission:
  max_live_runs: 256
  shed_batch_at: 0.5
  shed_standard_at: 0.8
tenants:
  - name: fast
    weight: 0.25
    priority: interactive
    circuit: qft
    width: 5
    shots: 256
    fidelity_weight: 0.9
    deadline_offset_seconds: 120
    deadline_offset_max_seconds: 480
  - name: bulk
    weight: 0.75
    priority: batch
    circuit: qaoa
    width: 10
    shots: 4096
slo:
  interactive_seconds: 300
  batch_seconds: 7200
churn:
  - at_hours: 2.0
    action: recalibrate
  - at_hours: 0.5
    action: qpu_offline
    qpu: lagos
)";

TEST(CampaignProfile, ParsesEverySection) {
  const auto parsed = parse_profile(kFullProfile);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const CampaignProfile& profile = *parsed;
  EXPECT_EQ(profile.name, "parse-full");
  EXPECT_EQ(profile.seed, 77u);
  EXPECT_DOUBLE_EQ(profile.duration_hours, 2.5);
  EXPECT_EQ(profile.target_runs, 5000u);
  EXPECT_DOUBLE_EQ(profile.stats_interval_seconds, 600.0);
  EXPECT_EQ(profile.pacing, PacingMode::kLockstep);

  EXPECT_EQ(profile.arrivals.kind, ArrivalKind::kPareto);
  EXPECT_DOUBLE_EQ(profile.arrivals.rate_per_hour, 1800.0);
  EXPECT_DOUBLE_EQ(profile.arrivals.pareto_alpha, 1.7);

  EXPECT_EQ(profile.num_qpus, 8u);
  EXPECT_EQ(profile.executor_threads, 1u);
  EXPECT_EQ(profile.trajectory_width_limit, 6);
  EXPECT_EQ(profile.max_terminal_runs, 512u);
  EXPECT_EQ(profile.scheduler.queue_threshold, 64u);
  EXPECT_EQ(profile.scheduler.queue_capacity, 2048u);
  EXPECT_EQ(profile.admission.max_live_runs, 256u);

  ASSERT_EQ(profile.tenants.size(), 2u);
  EXPECT_EQ(profile.tenants[0].name, "fast");
  EXPECT_EQ(profile.tenants[0].priority, api::Priority::kInteractive);
  EXPECT_EQ(profile.tenants[0].family, circuit::BenchmarkFamily::kQft);
  EXPECT_EQ(profile.tenants[0].width, 5);
  EXPECT_EQ(profile.tenants[0].shots, 256);
  ASSERT_TRUE(profile.tenants[0].fidelity_weight.has_value());
  EXPECT_DOUBLE_EQ(*profile.tenants[0].fidelity_weight, 0.9);
  EXPECT_DOUBLE_EQ(profile.tenants[0].deadline_offset_min_seconds, 120.0);
  EXPECT_DOUBLE_EQ(profile.tenants[0].deadline_offset_max_seconds, 480.0);
  EXPECT_FALSE(profile.tenants[1].fidelity_weight.has_value());

  EXPECT_DOUBLE_EQ(
      profile.slo_seconds[static_cast<std::size_t>(api::Priority::kInteractive)],
      300.0);
  EXPECT_DOUBLE_EQ(
      profile.slo_seconds[static_cast<std::size_t>(api::Priority::kBatch)], 7200.0);
  EXPECT_DOUBLE_EQ(
      profile.slo_seconds[static_cast<std::size_t>(api::Priority::kStandard)], 0.0);

  // Churn is sorted by virtual instant regardless of file order.
  ASSERT_EQ(profile.churn.size(), 2u);
  EXPECT_DOUBLE_EQ(profile.churn[0].at_seconds, 0.5 * kHour);
  EXPECT_EQ(profile.churn[0].action, ChurnAction::kQpuOffline);
  EXPECT_EQ(profile.churn[0].qpu, "lagos");
  EXPECT_DOUBLE_EQ(profile.churn[1].at_seconds, 2.0 * kHour);
  EXPECT_EQ(profile.churn[1].action, ChurnAction::kRecalibrate);
}

TEST(CampaignProfile, MinimalProfileGetsDefaults) {
  const auto parsed = parse_profile(R"(
tenants:
  - name: only
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->name, "campaign");
  EXPECT_EQ(parsed->pacing, PacingMode::kLockstep);
  EXPECT_EQ(parsed->arrivals.kind, ArrivalKind::kPoisson);
  EXPECT_EQ(parsed->num_qpus, 4u);
  EXPECT_EQ(parsed->tenants.size(), 1u);
  EXPECT_EQ(parsed->tenants[0].priority, api::Priority::kStandard);
}

void expect_invalid(const std::string& text, const std::string& needle) {
  const auto parsed = parse_profile(text);
  ASSERT_FALSE(parsed.ok()) << "expected failure mentioning '" << needle << "'";
  EXPECT_EQ(parsed.status().code(), api::StatusCode::kInvalidArgument);
  EXPECT_NE(parsed.status().message().find(needle), std::string::npos)
      << parsed.status().to_string();
}

TEST(CampaignProfile, MalformedProfilesSurfaceInvalidArgument) {
  // yamlite parse error (bad indentation inside a mapping).
  expect_invalid("campaign:\n  name: x\n bad: 1\n", "campaign profile");
  // Unknown keys at every level are rejected, not ignored.
  expect_invalid("tenants:\n  - name: t\nyolo: 1\n", "unknown key 'yolo'");
  expect_invalid("campaign:\n  velocity: 9\ntenants:\n  - name: t\n",
                 "unknown key 'velocity'");
  // Unknown enum values name the offender.
  expect_invalid("arrivals:\n  process: bursty\ntenants:\n  - name: t\n",
                 "unknown process 'bursty'");
  expect_invalid("tenants:\n  - name: t\n    priority: urgent\n",
                 "unknown priority 'urgent'");
  expect_invalid(
      "tenants:\n  - name: t\nchurn:\n  - at_hours: 1\n    action: explode\n",
      "unknown action 'explode'");
  // Structural and range violations.
  expect_invalid("campaign:\n  name: x\n", "tenants");
  expect_invalid("tenants:\n  - name: t\n    weight: 0\n", "weight");
  expect_invalid("tenants:\n  - name: t\n    width: 1\n", "width");
  expect_invalid("tenants:\n  - name: t\n    width: 28\n", "width");
  expect_invalid("campaign:\n  name: bad name!\ntenants:\n  - name: t\n", "name");
  expect_invalid(
      "campaign:\n  duration_hours: 0\ntenants:\n  - name: t\n", "duration");
  expect_invalid(
      "churn:\n  - at_hours: 1\n    action: qpu_offline\ntenants:\n  - name: t\n",
      "qpu");
  // The lockstep determinism contract is enforced structurally.
  expect_invalid(
      "fleet:\n  executor_threads: 2\ntenants:\n  - name: t\n", "lockstep");
  expect_invalid(
      "scheduler:\n  queue_threshold: 100\nadmission:\n  max_live_runs: 50\n"
      "tenants:\n  - name: t\n",
      "lockstep");
}

TEST(CampaignProfile, WindowedPacingLiftsTheLockstepConstraints) {
  const auto parsed = parse_profile(R"(
campaign:
  pacing: windowed
fleet:
  executor_threads: 4
tenants:
  - name: t
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->pacing, PacingMode::kWindowed);
  EXPECT_EQ(parsed->executor_threads, 4u);
}

TEST(CampaignProfile, AlertsSectionParsesRulesWithDefaults) {
  const auto parsed = parse_profile(R"(
tenants:
  - name: t
slo:
  interactive_seconds: 600
  standard_seconds: 1800
alerts:
  - name: interactive-burn
    priority: interactive
    attainment_target: 0.95
    fast_window_seconds: 600
    slow_window_seconds: 1800
    burn_threshold: 3.0
    clear_threshold: 0.5
    min_samples: 20
  - name: standard-burn
    priority: standard
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  ASSERT_EQ(parsed->alerts.size(), 2u);
  const obs::SloRule& tuned = parsed->alerts[0];
  EXPECT_EQ(tuned.name, "interactive-burn");
  EXPECT_EQ(tuned.priority, api::Priority::kInteractive);
  EXPECT_DOUBLE_EQ(tuned.attainment_target, 0.95);
  EXPECT_DOUBLE_EQ(tuned.fast_window_seconds, 600.0);
  EXPECT_DOUBLE_EQ(tuned.slow_window_seconds, 1800.0);
  EXPECT_DOUBLE_EQ(tuned.burn_threshold, 3.0);
  EXPECT_DOUBLE_EQ(tuned.clear_threshold, 0.5);
  EXPECT_EQ(tuned.min_samples, 20u);
  // Only name/priority given: the SloRule defaults fill the rest.
  const obs::SloRule& bare = parsed->alerts[1];
  EXPECT_EQ(bare.priority, api::Priority::kStandard);
  EXPECT_DOUBLE_EQ(bare.attainment_target, 0.99);
  EXPECT_EQ(bare.min_samples, 10u);
}

TEST(CampaignProfile, AlertValidationRejectsBrokenRules) {
  const std::string base = "tenants:\n  - name: t\nslo:\n  standard_seconds: 1800\n";
  // A rule over a class with no SLO target cannot define a burn rate.
  expect_invalid(base + "alerts:\n  - name: a\n    priority: batch\n",
                 "slo.batch_seconds");
  // Baseline sanity: the same rule on the SLO-carrying class parses fine.
  const auto ok = parse_profile(base + "alerts:\n  - name: a\n");
  EXPECT_TRUE(ok.ok()) << ok.status().to_string();
  // Range violations name the rule.
  expect_invalid(
      base + "alerts:\n  - name: a\n    attainment_target: 1.0\n", "attainment");
  expect_invalid(
      base + "alerts:\n  - name: a\n    fast_window_seconds: 900\n"
             "    slow_window_seconds: 600\n",
      "window");
  expect_invalid(
      base + "alerts:\n  - name: a\n    burn_threshold: 1.0\n"
             "    clear_threshold: 2.0\n",
      "clear_threshold");
  expect_invalid(base + "alerts:\n  - name: a\n    typo_knob: 1\n",
                 "unknown key 'typo_knob'");
  expect_invalid(base + "alerts:\n  - priority: standard\n", "name");
}

TEST(CampaignProfile, LoadProfileFileReportsNotFound) {
  const auto loaded = load_profile_file("/nonexistent/profile.yaml");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), api::StatusCode::kNotFound);
}

TEST(CampaignProfile, MakeOrchestratorConfigHardCodes) {
  const auto parsed = parse_profile(kFullProfile);
  ASSERT_TRUE(parsed.ok());
  const core::QonductorConfig config = make_orchestrator_config(*parsed);
  EXPECT_EQ(config.num_qpus, 8u);
  EXPECT_EQ(config.seed, 77u);
  EXPECT_FALSE(config.telemetry.tracing);  // bounded-memory contract
  EXPECT_TRUE(config.telemetry.metrics);
  EXPECT_EQ(config.retention.max_terminal_runs, 512u);
}

// ---- Latency accumulator -----------------------------------------------------

TEST(CampaignReport, LatencyAccumulatorQuantilesAndSloFraction) {
  LatencyAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(acc.fraction_below(1.0), 1.0);  // vacuous SLO holds

  for (int i = 1; i <= 1000; ++i) acc.observe(static_cast<double>(i));
  EXPECT_EQ(acc.count(), 1000u);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 1000.0);
  EXPECT_NEAR(acc.mean(), 500.5, 1e-9);
  // Bucket resolution is ~7.5%; allow 10%.
  EXPECT_NEAR(acc.quantile(0.5), 500.0, 50.0);
  EXPECT_NEAR(acc.quantile(0.9), 900.0, 90.0);
  EXPECT_DOUBLE_EQ(acc.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(acc.quantile(1.0), 1000.0);
  EXPECT_NEAR(acc.fraction_below(250.0), 0.25, 0.05);
  EXPECT_DOUBLE_EQ(acc.fraction_below(2000.0), 1.0);
  EXPECT_DOUBLE_EQ(acc.fraction_below(0.0001), 0.0);
}

// ---- Stats sink --------------------------------------------------------------

TEST(CampaignSink, JsonlRowsBatchAndFlushOnDestruction) {
  const std::string path = temp_path("stats.jsonl");
  {
    StatsSink sink(path, StatsFormat::kJsonl, {"a", "b"}, /*batch_rows=*/3);
    sink.append({"1", "2.5"});
    sink.append({"2", "3.5"});
    EXPECT_EQ(slurp(path), "");  // still buffered below the batch size
    sink.append({"3", "4.5"});   // third row completes the batch
    EXPECT_EQ(slurp(path),
              "{\"a\":1,\"b\":2.5}\n{\"a\":2,\"b\":3.5}\n{\"a\":3,\"b\":4.5}\n");
    sink.append({"4", "5.5"});
    EXPECT_EQ(sink.rows_written(), 4u);
  }  // destructor flushes the partial batch
  EXPECT_EQ(slurp(path),
            "{\"a\":1,\"b\":2.5}\n{\"a\":2,\"b\":3.5}\n{\"a\":3,\"b\":4.5}\n"
            "{\"a\":4,\"b\":5.5}\n");
  std::remove(path.c_str());
}

TEST(CampaignSink, CsvWritesHeaderAndRejectsArityMismatch) {
  const std::string path = temp_path("stats.csv");
  StatsSink sink(path, StatsFormat::kCsv, {"x", "y"}, 1);
  sink.append({"10", "20"});
  EXPECT_EQ(slurp(path), "x,y\n10,20\n");
  EXPECT_THROW(sink.append({"only-one"}), std::runtime_error);
  std::remove(path.c_str());
}

// ---- Snapshot deltas ---------------------------------------------------------

TEST(ObsDelta, CountersSubtractGaugesPassThrough) {
  api::MetricsSnapshot prev;
  api::MetricsSnapshot cur;
  api::MetricValue counter;
  counter.name = "t_total";
  counter.kind = api::MetricKind::kCounter;
  counter.value = 10.0;
  prev.metrics.push_back(counter);
  counter.value = 25.0;
  cur.metrics.push_back(counter);

  api::MetricValue gauge;
  gauge.name = "t_depth";
  gauge.kind = api::MetricKind::kGauge;
  gauge.value = 3.0;
  prev.metrics.push_back(gauge);
  gauge.value = 7.0;
  cur.metrics.push_back(gauge);

  api::MetricValue hist;
  hist.name = "t_seconds";
  hist.kind = api::MetricKind::kHistogram;
  hist.bucket_bounds = {1.0, 2.0};
  hist.bucket_counts = {2, 1};
  hist.inf_count = 1;
  hist.sum = 5.0;
  hist.count = 4;
  prev.metrics.push_back(hist);
  hist.bucket_counts = {5, 2};
  hist.inf_count = 2;
  hist.sum = 12.0;
  hist.count = 9;
  cur.metrics.push_back(hist);

  // Registered mid-interval: full current value survives.
  api::MetricValue fresh;
  fresh.name = "t_new_total";
  fresh.kind = api::MetricKind::kCounter;
  fresh.value = 4.0;
  cur.metrics.push_back(fresh);

  const api::MetricsSnapshot delta = obs::snapshot_delta(prev, cur);
  const api::MetricValue* d_counter = obs::find_metric(delta, "t_total");
  ASSERT_NE(d_counter, nullptr);
  EXPECT_DOUBLE_EQ(d_counter->value, 15.0);
  const api::MetricValue* d_gauge = obs::find_metric(delta, "t_depth");
  ASSERT_NE(d_gauge, nullptr);
  EXPECT_DOUBLE_EQ(d_gauge->value, 7.0);
  const api::MetricValue* d_hist = obs::find_metric(delta, "t_seconds");
  ASSERT_NE(d_hist, nullptr);
  EXPECT_EQ(d_hist->bucket_counts, (std::vector<std::uint64_t>{3, 1}));
  EXPECT_EQ(d_hist->inf_count, 1u);
  EXPECT_DOUBLE_EQ(d_hist->sum, 7.0);
  EXPECT_EQ(d_hist->count, 5u);
  const api::MetricValue* d_fresh = obs::find_metric(delta, "t_new_total");
  ASSERT_NE(d_fresh, nullptr);
  EXPECT_DOUBLE_EQ(d_fresh->value, 4.0);
  EXPECT_DOUBLE_EQ(obs::sum_metric_family(delta, "t_total"), 15.0);
}

// ---- Bounded-ring drop counters (no silent caps) -----------------------------

TEST(CampaignDropCounters, TraceSpanRingOverflowIsCounted) {
  obs::TelemetryConfig config;
  config.trace_spans_per_run = 1;
  obs::Telemetry telemetry(config);
  const obs::TraceContext trace = telemetry.tracer().start(1);
  for (int i = 0; i < 3; ++i) {
    trace->record(telemetry.tracer().point("p", static_cast<double>(i)));
  }
  const api::MetricsSnapshot snapshot = telemetry.snapshot(0.0);
  const api::MetricValue* dropped =
      obs::find_metric(snapshot, "qon_trace_spans_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value, 2.0);
}

TEST(CampaignDropCounters, CycleHistoryEvictionIsCounted) {
  // One-slot cycle history: every cycle past the first evicts one record.
  std::atomic<double> clock{0.0};
  core::SchedulerServiceHooks hooks;
  hooks.now = [&clock] { return clock.load(); };
  hooks.snapshot_qpus = [&clock](double advance_to) {
    double seen = clock.load();
    while (advance_to > seen && !clock.compare_exchange_weak(seen, advance_to)) {
    }
    return std::vector<sched::QpuState>{{"fake0", 27, 0.0, true}};
  };
  core::SchedulerServiceConfig config;
  config.queue_threshold = 1;
  config.linger = 10s;
  config.stats_cycle_history = 1;
  obs::Telemetry telemetry;
  core::SchedulerService service(config, 7, {}, hooks, &telemetry);
  for (api::RunId run = 1; run <= 3; ++run) {
    auto task = std::make_shared<core::PendingQuantumTask>();
    task->run = run;
    task->task_name = "t";
    task->qubits = 4;
    task->shots = 100;
    task->est_fidelity.assign(1, 0.9);
    task->est_exec_seconds.assign(1, 2.0);
    ASSERT_TRUE(service.enqueue(task));
    task->await();
    ASSERT_TRUE(task->error.ok()) << task->error.to_string();
  }
  EXPECT_EQ(service.stats().recent_cycles.size(), 1u);
  const api::MetricValue* dropped = obs::find_metric(
      telemetry.snapshot(0.0), "qon_sched_stats_cycles_dropped_total");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value, 2.0);
}

// ---- End-to-end determinism --------------------------------------------------

TEST(CampaignDriver, LockstepCampaignIsBytePerfectlyReproducible) {
  const auto parsed = parse_profile(R"(
campaign:
  name: e2e-tiny
  seed: 5
  duration_hours: 0.1
  stats_interval_seconds: 60
arrivals:
  process: poisson
  rate_per_hour: 1200
fleet:
  num_qpus: 2
scheduler:
  queue_threshold: 20
tenants:
  - name: mix-a
    weight: 0.6
    priority: standard
    circuit: ghz
    width: 4
    shots: 512
  - name: mix-b
    weight: 0.4
    priority: interactive
    circuit: qft
    width: 3
    shots: 256
slo:
  interactive_seconds: 600
  standard_seconds: 1800
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();

  const std::string first_path = temp_path("first.jsonl");
  const std::string second_path = temp_path("second.jsonl");
  CampaignOptions options;
  options.stats_path = first_path;
  const auto first = run_campaign(*parsed, options);
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  options.stats_path = second_path;
  const auto second = run_campaign(*parsed, options);
  ASSERT_TRUE(second.ok()) << second.status().to_string();

  // The whole campaign is a pure function of the profile: the streamed
  // stats match byte for byte and the virtual-domain report fields agree.
  const std::string first_stream = slurp(first_path);
  EXPECT_FALSE(first_stream.empty());
  EXPECT_EQ(first_stream, slurp(second_path));
  EXPECT_GT(first->arrivals, 0u);
  EXPECT_EQ(first->arrivals, first->admitted);
  EXPECT_EQ(first->completed + first->failed + first->cancelled, first->admitted);
  EXPECT_EQ(first->arrivals, second->arrivals);
  EXPECT_EQ(first->completed, second->completed);
  EXPECT_EQ(first->sched_cycles, second->sched_cycles);
  EXPECT_DOUBLE_EQ(first->virtual_duration_seconds,
                   second->virtual_duration_seconds);
  ASSERT_EQ(first->classes.size(), second->classes.size());
  for (std::size_t c = 0; c < first->classes.size(); ++c) {
    EXPECT_EQ(first->classes[c].completed, second->classes[c].completed);
    EXPECT_DOUBLE_EQ(first->classes[c].mean_latency_seconds,
                     second->classes[c].mean_latency_seconds);
    EXPECT_DOUBLE_EQ(first->classes[c].p99_seconds, second->classes[c].p99_seconds);
  }
  EXPECT_EQ(first->stats_rows, second->stats_rows);

  std::remove(first_path.c_str());
  std::remove(second_path.c_str());
}

}  // namespace
}  // namespace qon::campaign
