// Figure 2c — QPU load imbalance: pending jobs per QPU over a week when
// users follow the current-cloud practice of submitting to the highest-
// fidelity QPU (best-fidelity FCFS). Paper: up to ~100x queue difference
// across QPUs (mumbai vs kolkata on 26-11-23).

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "cloudsim/simulation.hpp"

int main() {
  using namespace qon;
  using namespace qon::cloudsim;
  bench::print_header("Figure 2c",
                      "QPU load imbalance under best-fidelity user behaviour (7 sampled days)");

  // One one-hour sample per day; calibration drifts between days (the fleet
  // is re-seeded per day to model the drifted calibration snapshot).
  const std::size_t kQpus = 5;
  TextTable table({"day", "q0", "q1", "q2", "q3", "q4", "max/min"});
  double worst_ratio = 1.0;
  std::vector<std::string> names;
  for (int day = 0; day < 7; ++day) {
    CloudSimConfig config;
    config.policy = SchedulingPolicy::kBestFidelityFcfs;
    config.num_qpus = kQpus;
    config.seed = 1700 + static_cast<std::uint64_t>(day);
    config.workload.jobs_per_hour = 900.0;
    config.workload.duration_hours = 0.35;
    config.workload.seed = 42 + static_cast<std::uint64_t>(day);
    const auto result = run_cloud_simulation(config);
    names = result.qpu_names;

    // Peak pending queue length per QPU during the day's window.
    std::vector<double> peak(kQpus, 0.0);
    for (const auto& sample : result.queue_samples) {
      for (std::size_t q = 0; q < kQpus; ++q) {
        peak[q] = std::max(peak[q], static_cast<double>(sample.qpu_queue_lengths[q]));
      }
    }
    const double hi = *std::max_element(peak.begin(), peak.end());
    const double lo = std::max(1.0, *std::min_element(peak.begin(), peak.end()));
    worst_ratio = std::max(worst_ratio, hi / lo);
    table.add_row({"day " + std::to_string(day + 1), TextTable::num(peak[0], 0),
                   TextTable::num(peak[1], 0), TextTable::num(peak[2], 0),
                   TextTable::num(peak[3], 0), TextTable::num(peak[4], 0),
                   TextTable::num(hi / lo, 1) + "x"});
  }
  table.print(std::cout, "peak pending jobs per QPU per day");
  std::cout << "QPU columns: ";
  for (std::size_t q = 0; q < names.size(); ++q) {
    std::cout << "q" << q << "=" << names[q] << (q + 1 < names.size() ? ", " : "\n");
  }

  bench::print_comparison("max pending-queue ratio across QPUs", "up to ~100x",
                          TextTable::num(worst_ratio, 0) + "x");
  return 0;
}
