// Figure 8c — QPU load as total active runtime per QPU for increasing
// workloads (1500/3000/4500 jobs/hour over one hour, 8 QPUs). Paper: nearly
// uniform distribution, max load difference 15.8% at 1500 j/h.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "cloudsim/simulation.hpp"
#include "common/stats.hpp"

int main() {
  using namespace qon;
  using namespace qon::cloudsim;
  bench::print_header("Figure 8c", "Per-QPU total runtime at 1500/3000/4500 jobs per hour");

  std::vector<std::string> names;
  std::vector<std::vector<double>> loads;
  std::vector<double> max_diff;
  for (const double rate : {1500.0, 3000.0, 4500.0}) {
    CloudSimConfig config;
    config.policy = SchedulingPolicy::kQonductor;
    config.num_qpus = 8;
    config.seed = 88;
    config.workload.jobs_per_hour = rate;
    config.workload.duration_hours = 0.5;
    config.workload.seed = 88;
    // Heavy batched jobs (the paper's fleet runs saturated: queues of
    // thousands of seconds). Balancing only shows once every QPU matters.
    config.workload.mean_shots = 30000.0;
    config.workload.stddev_shots = 10000.0;
    config.workload.max_shots = 60000;
    // A milder quality spread (the paper's ~38% Fig-2b band): with steeper
    // fleets the scheduler rationally starves the worst QPU.
    config.fleet_best_quality = 0.88;
    config.fleet_worst_quality = 1.18;
    config.scheduler.nsga2.population_size = 48;
    config.scheduler.nsga2.max_generations = 32;
    const auto result = run_cloud_simulation(config);
    names = result.qpu_names;
    loads.push_back(result.qpu_busy_seconds);
    const double hi = max_of(result.qpu_busy_seconds);
    const double lo = min_of(result.qpu_busy_seconds);
    max_diff.push_back((hi - lo) / hi);
  }

  TextTable table({"IBM QPU", "1500 j/h [s]", "3000 j/h [s]", "4500 j/h [s]"});
  for (std::size_t q = 0; q < names.size(); ++q) {
    table.add_row({names[q], TextTable::num(loads[0][q], 0), TextTable::num(loads[1][q], 0),
                   TextTable::num(loads[2][q], 0)});
  }
  table.print(std::cout, "total active runtime per QPU");

  bench::print_comparison("max load difference across QPUs @1500 j/h", "15.8%",
                          bench::pct(max_diff[0]));
  bench::print_comparison("max load difference @3000 j/h", "near-uniform",
                          bench::pct(max_diff[1]));
  bench::print_comparison("max load difference @4500 j/h", "near-uniform",
                          bench::pct(max_diff[2]));
  std::cout << "note: our devices differ in repetition delay (150-500 us), so equal job\n"
               "counts still yield unequal busy-seconds; the paper's simulated backends\n"
               "share identical timing. The qualitative claim -- every QPU carries load --\n"
               "is contrasted against the FCFS hotspot below.\n";

  // Contrast: best-fidelity FCFS concentrates essentially all load.
  {
    CloudSimConfig config;
    config.policy = SchedulingPolicy::kBestFidelityFcfs;
    config.num_qpus = 8;
    config.seed = 88;
    config.workload.jobs_per_hour = 1500.0;
    config.workload.duration_hours = 0.5;
    config.workload.seed = 88;
    config.workload.mean_shots = 30000.0;
    config.workload.stddev_shots = 10000.0;
    config.workload.max_shots = 60000;
    config.fleet_best_quality = 0.88;
    config.fleet_worst_quality = 1.18;
    const auto fcfs = run_cloud_simulation(config);
    double total = 0.0;
    double top = 0.0;
    for (double b : fcfs.qpu_busy_seconds) {
      total += b;
      top = std::max(top, b);
    }
    double qonductor_top = 0.0;
    double qonductor_total = 0.0;
    for (double b : loads[0]) {
      qonductor_total += b;
      qonductor_top = std::max(qonductor_top, b);
    }
    bench::print_comparison("hottest QPU's share of total load (Qonductor vs FCFS)",
                            "even vs hotspot (Fig. 2c)",
                            bench::pct(qonductor_top / qonductor_total) + " vs " +
                                bench::pct(top / std::max(total, 1e-9)));
  }
  return 0;
}
