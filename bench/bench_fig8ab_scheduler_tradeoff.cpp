// Figure 8a/b — Per-scheduling-cycle traces at 1500 jobs/hour, equal
// fidelity/JCT weights: the Pareto front's min/max JCT and fidelity
// bracketing the chosen solution. Paper: chosen JCT 34% below the maximum
// front (95th pct: 17.4%); chosen fidelity only 4% below the maximum.

#include <iostream>

#include "bench_util.hpp"
#include "cloudsim/simulation.hpp"
#include "common/stats.hpp"

int main() {
  using namespace qon;
  using namespace qon::cloudsim;
  bench::print_header("Figure 8a/b",
                      "Per-cycle Pareto bounds vs chosen solution (1500 j/h, equal weights)");

  CloudSimConfig config;
  config.policy = SchedulingPolicy::kQonductor;
  config.num_qpus = 8;
  config.seed = 808;
  config.workload.jobs_per_hour = 1500.0;
  config.workload.duration_hours = 1.0;
  config.workload.seed = 808;
  config.scheduler.fidelity_weight = 0.5;
  const auto result = run_cloud_simulation(config);

  TextTable table({"cycle", "min JCT", "chosen JCT", "max JCT", "min fid", "chosen fid",
                   "max fid"});
  std::vector<double> jct_reduction;     // chosen vs max front
  std::vector<double> fid_penalty;       // chosen vs max front
  std::vector<double> chosen_jcts;
  int cycle_no = 0;
  for (const auto& cycle : result.cycles) {
    if (cycle.jobs_scheduled == 0) continue;
    ++cycle_no;
    table.add_row({std::to_string(cycle_no), TextTable::num(cycle.min_front_jct, 0),
                   TextTable::num(cycle.chosen.mean_jct, 0),
                   TextTable::num(cycle.max_front_jct, 0),
                   TextTable::num(cycle.min_front_fidelity, 3),
                   TextTable::num(cycle.chosen.mean_fidelity(), 3),
                   TextTable::num(cycle.max_front_fidelity, 3)});
    if (cycle.max_front_jct > 0.0) {
      jct_reduction.push_back(1.0 - cycle.chosen.mean_jct / cycle.max_front_jct);
    }
    if (cycle.max_front_fidelity > 0.0) {
      fid_penalty.push_back(1.0 - cycle.chosen.mean_fidelity() / cycle.max_front_fidelity);
    }
    chosen_jcts.push_back(cycle.chosen.mean_jct);
  }
  table.print(std::cout, "scheduling cycles (JCT in seconds)");

  bench::print_comparison("mean chosen-JCT reduction vs max Pareto front", "34%",
                          bench::pct(mean(jct_reduction)));
  bench::print_comparison("95th pct chosen-JCT reduction vs max front", "17.4%",
                          bench::pct(percentile(jct_reduction, 5.0)));  // worst-case cycles
  bench::print_comparison("mean chosen-fidelity penalty vs max front", "4%",
                          bench::pct(mean(fid_penalty)));
  bench::print_comparison("95th pct chosen-fidelity penalty vs max front", "6%",
                          bench::pct(percentile(fid_penalty, 95.0)));
  return 0;
}
