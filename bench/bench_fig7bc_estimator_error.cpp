// Figure 7b/c — CDFs of fidelity and execution-time estimation error:
// Qonductor's regression estimator vs the numerical (calibration-product /
// duration-sum) baseline, evaluated on fresh executions against the hidden
// ground truth. Paper: ~75% of fidelity estimates err < 0.1; ~80% of
// runtime estimates err < 500 ms; regression beats numerical.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "estimator/dataset.hpp"
#include "estimator/execution_model.hpp"
#include "estimator/models.hpp"
#include "estimator/numerical.hpp"
#include "qpu/fleet.hpp"
#include "transpiler/transpiler.hpp"

int main() {
  using namespace qon;
  using namespace qon::estimator;
  bench::print_header("Figure 7b/c",
                      "Estimation-error CDFs: regression estimator vs numerical baseline");

  auto fleet = qpu::make_ibm_like_fleet(6, 909);
  ArchiveConfig archive_config;
  archive_config.num_runs = 2000;
  archive_config.seed = 31;
  const auto archive = generate_run_archive(fleet, archive_config);
  std::cout << "training archive: " << archive.size() << " runs\n";

  FidelityEstimator fidelity_model;
  RuntimeEstimator runtime_model;
  const auto fid_report = fidelity_model.train(archive);
  const auto run_report = runtime_model.train(archive);
  std::cout << "fidelity model: " << fid_report.selected_model
            << " (cv R^2 = " << TextTable::num(fid_report.cv_r2, 3) << ")\n";
  std::cout << "runtime model:  " << run_report.selected_model
            << " (cv R^2 = " << TextTable::num(run_report.cv_r2, 3) << ", log space)\n";
  bench::print_comparison("runtime model R^2", "0.998", TextTable::num(run_report.cv_r2, 3));
  bench::print_comparison("fidelity model R^2", "0.976", TextTable::num(fid_report.cv_r2, 3));

  // Fresh evaluation set executed against the hidden ground truth.
  Rng rng(77);
  const sim::HiddenNoise hidden(archive_config.seed ^ 0xdeadbeefULL, archive_config.hidden_sigma);
  const auto menu = mitigation::standard_mitigation_menu();
  const auto families = circuit::all_benchmark_families();
  std::vector<double> fid_err_model;
  std::vector<double> fid_err_numerical;
  std::vector<double> time_err_model_ms;
  std::vector<double> time_err_numerical_ms;
  for (int i = 0; i < 300; ++i) {
    const int width = static_cast<int>(rng.uniform_int(2, 24));
    const int shots = static_cast<int>(rng.uniform_int(1000, 8000));
    const auto circ = circuit::make_benchmark(
        families[static_cast<std::size_t>(rng.uniform_int(0, 7))], width, rng());
    const auto& backend =
        *fleet.backends[static_cast<std::size_t>(rng.uniform_int(0, 5))];
    if (circ.num_qubits() > backend.num_qubits()) continue;
    const auto& spec = menu[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(menu.size()) - 1))];
    const auto t = transpiler::transpile(circ, backend);
    const auto sig = mitigation::compute_signature(
        spec, static_cast<std::size_t>(circ.num_qubits()),
        static_cast<std::size_t>(t.circuit.depth()), t.circuit.two_qubit_gate_count(),
        static_cast<std::size_t>(t.circuit.num_clbits()),
        backend.calibration().mean_gate_error_2q(), mitigation::Accelerator::kCpu);
    const double true_fid = executed_fidelity(t.circuit, backend, sig, hidden,
                                              archive_config.crosstalk_factor, shots, rng);
    const double true_time = transpiler::job_quantum_runtime(t.schedule, shots, backend);

    const auto features = extract_features(t, shots, spec, backend);
    fid_err_model.push_back(std::abs(fidelity_model.estimate(features) - true_fid));
    fid_err_numerical.push_back(
        std::abs(numerical_fidelity_estimate(t.circuit, backend) - true_fid));
    time_err_model_ms.push_back(std::abs(runtime_model.estimate(features) - true_time) * 1e3);
    time_err_numerical_ms.push_back(
        std::abs(numerical_runtime_estimate(t, shots, backend) - true_time) * 1e3);
  }

  // CDF tables at fixed thresholds.
  TextTable fid_cdf({"fidelity error <=", "qonductor", "numerical"});
  for (const double threshold : {0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    fid_cdf.add_row({TextTable::num(threshold, 2), bench::pct(cdf_at(fid_err_model, threshold)),
                     bench::pct(cdf_at(fid_err_numerical, threshold))});
  }
  fid_cdf.print(std::cout, "Fig 7(b): CDF of fidelity estimation error");

  TextTable time_cdf({"runtime error <= [ms]", "qonductor", "numerical"});
  for (const double threshold : {100.0, 250.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    time_cdf.add_row({TextTable::num(threshold, 0),
                      bench::pct(cdf_at(time_err_model_ms, threshold)),
                      bench::pct(cdf_at(time_err_numerical_ms, threshold))});
  }
  time_cdf.print(std::cout, "Fig 7(c): CDF of execution-time estimation error");

  bench::print_comparison("fidelity estimates with error < 0.1", "~75%",
                          bench::pct(cdf_at(fid_err_model, 0.1)));
  bench::print_comparison("runtime estimates with error < 500 ms", "~80%",
                          bench::pct(cdf_at(time_err_model_ms, 500.0)));
  bench::print_comparison("regression beats numerical (mean |fidelity error|)",
                          "yes (Fig. 7b)",
                          TextTable::num(mean(fid_err_model), 4) + " vs " +
                              TextTable::num(mean(fid_err_numerical), 4));
  return 0;
}
