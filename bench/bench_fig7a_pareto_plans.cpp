// Figure 7a — Pareto front of the fidelity-runtime tradeoff across resource
// plans for a 20-qubit QAOA max-cut circuit. Each point is a unique plan
// (mitigation stack x accelerator x template QPU). Paper: the second-
// highest-fidelity plan has ~34.6% lower runtime for only ~3.6% less
// fidelity than the highest.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "estimator/plans.hpp"
#include "qpu/fleet.hpp"

int main() {
  using namespace qon;
  bench::print_header("Figure 7a",
                      "Resource-plan Pareto front for a 20-qubit QAOA max-cut circuit");

  const auto fleet = qpu::make_ibm_like_fleet(6, 2024);
  const auto templates = fleet.template_backends();
  const auto circ = circuit::qaoa_maxcut(20, 1, 11);
  const auto plans = estimator::generate_resource_plans(circ, templates, {});

  TextTable all_table({"plan", "accelerator", "est fidelity", "est runtime [s]", "cost [$]",
                       "pareto"});
  for (const auto& plan : plans.all) {
    const bool on_front =
        std::any_of(plans.pareto.begin(), plans.pareto.end(), [&plan](const auto& p) {
          return p.spec.to_string() == plan.spec.to_string() &&
                 p.accelerator == plan.accelerator &&
                 p.est_total_seconds == plan.est_total_seconds;
        });
    all_table.add_row({plan.spec.to_string(), mitigation::accelerator_name(plan.accelerator),
                       TextTable::num(plan.est_fidelity, 3),
                       TextTable::num(plan.est_total_seconds, 1),
                       TextTable::num(plan.est_cost_dollars, 2), on_front ? "*" : ""});
  }
  all_table.print(std::cout, "all generated plans (* = Pareto-optimal)");

  TextTable rec({"recommended plan", "est fidelity", "est runtime [s]"});
  for (const auto& plan : plans.recommended) {
    rec.add_row({plan.spec.to_string() + "/" + mitigation::accelerator_name(plan.accelerator),
                 TextTable::num(plan.est_fidelity, 3),
                 TextTable::num(plan.est_total_seconds, 1)});
  }
  rec.print(std::cout, "recommended (default: three)");

  // Paper observation: second-highest-fidelity point vs highest.
  auto pareto = plans.pareto;
  std::sort(pareto.begin(), pareto.end(),
            [](const auto& a, const auto& b) { return a.est_fidelity > b.est_fidelity; });
  if (pareto.size() >= 2) {
    const auto& best = pareto[0];
    const auto& second = pareto[1];
    bench::print_comparison(
        "2nd-highest-fidelity plan: runtime reduction vs highest", "34.6%",
        bench::pct(1.0 - second.est_total_seconds / best.est_total_seconds));
    bench::print_comparison("2nd-highest-fidelity plan: fidelity penalty", "3.6%",
                            bench::pct(1.0 - second.est_fidelity / best.est_fidelity));
  }
  return 0;
}
