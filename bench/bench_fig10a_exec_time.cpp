// Figure 10a — Mean execution time of the scheduled quantum jobs per cycle:
// the min/max Pareto front bounds and the chosen solution. Paper: the
// chosen solution achieves 63.4% lower mean execution time than the
// maximum Pareto front.

#include <iostream>

#include "bench_util.hpp"
#include "cloudsim/simulation.hpp"
#include "common/stats.hpp"

int main() {
  using namespace qon;
  using namespace qon::cloudsim;
  bench::print_header("Figure 10a",
                      "Mean execution time of scheduled jobs: Pareto bounds vs chosen");

  CloudSimConfig config;
  config.policy = SchedulingPolicy::kQonductor;
  config.num_qpus = 8;
  config.seed = 1010;
  config.workload.jobs_per_hour = 1500.0;
  config.workload.duration_hours = 1.0;
  config.workload.seed = 1010;
  const auto result = run_cloud_simulation(config);

  TextTable table({"cycle", "min front [s]", "chosen [s]", "max front [s]"});
  std::vector<double> reductions;
  int cycle_no = 0;
  for (const auto& cycle : result.cycles) {
    if (cycle.jobs_scheduled == 0) continue;
    ++cycle_no;
    table.add_row({std::to_string(cycle_no),
                   TextTable::num(cycle.min_front_exec_seconds, 2),
                   TextTable::num(cycle.chosen_exec_seconds, 2),
                   TextTable::num(cycle.max_front_exec_seconds, 2)});
    if (cycle.max_front_exec_seconds > 0.0) {
      reductions.push_back(1.0 - cycle.chosen_exec_seconds / cycle.max_front_exec_seconds);
    }
  }
  table.print(std::cout, "mean execution time per scheduling cycle");

  bench::print_comparison("chosen mean-exec-time reduction vs max Pareto front", "63.4%",
                          bench::pct(mean(reductions)));
  return 0;
}
