// QoS-isolation benchmark: a mixed-priority burst (equal thirds of
// kInteractive / kStandard / kBatch runs) floods the pending queue, and
// priority-ordered batch formation decides who rides the early scheduling
// cycles. Emits BENCH_qos_isolation.json with per-priority p50/p95 queue
// waits (virtual seconds between enqueue and dispatch) so future PRs can
// diff the isolation the priority classes actually deliver.

#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"

int main() {
  using namespace qon;
  bench::print_header("QoS isolation",
                      "Per-priority queue waits under a mixed-tenant burst");

  constexpr std::size_t kRuns = 120;
  core::QonductorConfig config;
  config.num_qpus = 6;
  config.seed = 4242;
  config.trajectory_width_limit = 0;  // analytic model: isolate scheduling cost
  config.executor_threads = kRuns;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 40;
  config.scheduler_service.max_batch_size = 40;  // a cycle can't take everyone…
  config.scheduler_service.linger = std::chrono::milliseconds(100);
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "qos-burst";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(5), 2000));
  const auto created = client.createWorkflow(std::move(create));
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return 1;
  }

  // …so the priority classes compete for early-cycle slots.
  std::vector<api::InvokeRequest> requests(kRuns);
  for (std::size_t i = 0; i < kRuns; ++i) {
    requests[i].image = created->image;
    requests[i].preferences.priority = static_cast<api::Priority>(i % api::kNumPriorities);
  }
  Stopwatch wall;
  const auto handles = client.invokeAll(requests);
  if (!handles.ok()) {
    std::cerr << handles.status().to_string() << "\n";
    return 1;
  }
  std::size_t completed = 0;
  for (const auto& handle : *handles) {
    if (handle.wait() == api::RunStatus::kCompleted) ++completed;
  }
  const double wall_seconds = wall.seconds();

  const auto response = client.getSchedulerStats();
  if (!response.ok()) {
    std::cerr << response.status().to_string() << "\n";
    return 1;
  }
  const api::SchedulerStats& stats = response->stats;

  TextTable table({"priority", "jobs", "wait p50 [s, virtual]", "wait p95 [s, virtual]"});
  std::string json_classes;
  for (std::size_t p = api::kNumPriorities; p-- > 0;) {
    const auto& waits = stats.recent_queue_waits_by_priority[p];
    const char* name = api::priority_name(static_cast<api::Priority>(p));
    const double p50 = waits.empty() ? 0.0 : percentile(waits, 50.0);
    const double p95 = waits.empty() ? 0.0 : percentile(waits, 95.0);
    table.add_row({name, std::to_string(waits.size()), TextTable::num(p50, 2),
                   TextTable::num(p95, 2)});
    if (!json_classes.empty()) json_classes += ",\n";
    json_classes += std::string("    \"") + name + "\": {\"jobs\": " +
                    std::to_string(waits.size()) + ", \"wait_p50_s\": " +
                    std::to_string(p50) + ", \"wait_p95_s\": " + std::to_string(p95) + "}";
  }
  table.print(std::cout, "per-priority queue waits");

  TextTable summary({"metric", "value"});
  summary.add_row({"runs completed", std::to_string(completed) + "/" + std::to_string(kRuns)});
  summary.add_row({"scheduling cycles", std::to_string(stats.cycles)});
  summary.add_row({"largest batch", std::to_string(stats.max_batch_size_seen)});
  summary.add_row({"overall wait p50 [s]",
                   TextTable::num(percentile(stats.recent_queue_waits, 50.0), 2)});
  summary.add_row({"burst wall time [s]", TextTable::num(wall_seconds, 2)});
  summary.print(std::cout, "mixed-priority burst");

  const std::string json_path = bench::artifact_path("BENCH_qos_isolation.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"qos_isolation\",\n"
       << "  \"runs\": " << kRuns << ",\n"
       << "  \"completed\": " << completed << ",\n"
       << "  \"qpus\": " << config.num_qpus << ",\n"
       << "  \"queue_threshold\": " << config.scheduler_service.queue_threshold << ",\n"
       << "  \"max_batch_size\": " << config.scheduler_service.max_batch_size << ",\n"
       << "  \"cycles\": " << stats.cycles << ",\n"
       << "  \"by_priority\": {\n"
       << json_classes << "\n"
       << "  },\n"
       << "  \"overall_wait_p50_s\": " << percentile(stats.recent_queue_waits, 50.0) << ",\n"
       << "  \"overall_wait_p95_s\": " << percentile(stats.recent_queue_waits, 95.0) << ",\n"
       << "  \"burst_wall_seconds\": " << wall_seconds << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  bench::print_comparison("priority classes shape who rides the early cycles",
                          "interactive p50 <= batch p50 (QoS isolation)",
                          std::to_string(stats.cycles) + " cycles / " +
                              std::to_string(kRuns) + " jobs");
  return 0;
}
