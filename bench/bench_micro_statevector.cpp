// Micro-benchmark: state-vector simulator gate throughput by register width
// and full noisy-trajectory execution, sizing the substrate behind the
// Fig. 2a/2b experiments.

#include <benchmark/benchmark.h>

#include "circuit/library.hpp"
#include "qpu/fleet.hpp"
#include "simulator/noise.hpp"
#include "simulator/statevector.hpp"
#include "transpiler/transpiler.hpp"

namespace {

using namespace qon;

void BM_GateApplication(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  sim::StateVector sv(width);
  const auto h = sim::gate_unitary_1q(circuit::GateKind::kH, 0.0);
  const auto cx = sim::gate_unitary_2q(circuit::GateKind::kCX, 0.0);
  int q = 0;
  for (auto _ : state) {
    sv.apply_unitary_1q(q, h);
    sv.apply_unitary_2q(q, (q + 1) % width, cx);
    q = (q + 1) % (width - 1);
    benchmark::DoNotOptimize(sv.amplitudes().data());
  }
  state.SetItemsProcessed(state.iterations() * 2);
}

BENCHMARK(BM_GateApplication)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_IdealDistributionGhz(benchmark::State& state) {
  const auto circ = circuit::ghz(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto dist = sim::ideal_distribution(circ);
    benchmark::DoNotOptimize(&dist);
  }
}

BENCHMARK(BM_IdealDistributionGhz)->Arg(8)->Arg(12)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_NoisyTrajectories(benchmark::State& state) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 5);
  const auto& backend = *fleet.backends[0];
  const auto t = transpiler::transpile(circuit::ghz(static_cast<int>(state.range(0))), backend);
  Rng rng(7);
  sim::TrajectoryOptions opts;
  opts.trajectories = 16;
  for (auto _ : state) {
    const auto counts =
        sim::run_noisy(t.circuit, backend, 1000, rng, sim::HiddenNoise::none(), opts);
    benchmark::DoNotOptimize(&counts);
  }
}

BENCHMARK(BM_NoisyTrajectories)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_Transpile(benchmark::State& state) {
  const auto fleet = qpu::make_ibm_like_fleet(1, 9);
  const auto& backend = *fleet.backends[0];
  const auto circ = circuit::qft(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto result = transpiler::transpile(circ, backend);
    benchmark::DoNotOptimize(&result);
  }
}

BENCHMARK(BM_Transpile)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
