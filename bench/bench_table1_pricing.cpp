// Table 1 — IBM Cloud pricing: $/task and $/hour per resource type, plus
// derived per-job cost examples showing the two-orders-of-magnitude gap
// between high-end VM hours and QPU hours that motivates Key Idea #2.

#include <iostream>

#include "bench_util.hpp"
#include "estimator/pricing.hpp"

int main() {
  using namespace qon;
  using estimator::PriceTable;
  using estimator::ResourceClass;

  bench::print_header("Table 1", "IBM Cloud pricing (model defaults within paper ranges)");

  const PriceTable prices;
  TextTable table({"Resource Type", "Price/Task", "Price/Hour"});
  table.add_row({"Standard VM", "$" + TextTable::num(prices.standard_vm_per_task, 2),
                 "$" + TextTable::num(prices.standard_vm_per_hour, 2)});
  table.add_row({"High-end VM", "$" + TextTable::num(prices.highend_vm_per_task, 2),
                 "$" + TextTable::num(prices.highend_vm_per_hour, 2)});
  table.add_row({"QPU", "$" + TextTable::num(prices.qpu_per_task, 2),
                 "$" + TextTable::num(prices.qpu_per_hour, 2)});
  table.print(std::cout, "Table 1: pricing");

  const double ratio = prices.qpu_per_hour / prices.highend_vm_per_hour;
  bench::print_comparison("QPU-hour / high-end-VM-hour",
                          "two orders of magnitude ('even high-end VM-hours cost two orders "
                          "of magnitude less than QPU-hours')",
                          TextTable::num(ratio, 0) + "x");

  // Derived per-job examples: 10 s of QPU + 60 s of classical post-processing.
  TextTable jobs({"job profile", "cost"});
  jobs.add_row({"10s QPU + 60s standard VM",
                "$" + TextTable::num(estimator::job_cost_dollars(
                          10.0, 60.0, mitigation::Accelerator::kCpu, prices), 3)});
  jobs.add_row({"10s QPU + 60s GPU (high-end VM)",
                "$" + TextTable::num(estimator::job_cost_dollars(
                          10.0, 60.0, mitigation::Accelerator::kGpu, prices), 3)});
  jobs.print(std::cout, "derived job costs");
  return 0;
}
