// Figure 10b — MCDM selection under different priorities on a synthetic
// queue of 100 random quantum jobs: prioritizing JCT, prioritizing
// fidelity, and balanced. Paper: JCT-priority gives 67% lower JCT than
// fidelity-priority; fidelity-priority gives 16% higher fidelity; balanced
// trades 6% fidelity for 54% lower JCT.

#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "sched/hybrid_scheduler.hpp"

namespace {

using namespace qon;

// 100 random jobs over 8 QPUs with a genuine fidelity-JCT conflict: the
// high-fidelity QPUs carry long queues (hotspot legacy), the noisy ones are
// idle.
sched::SchedulingInput make_queue(std::uint64_t seed) {
  Rng rng(seed);
  sched::SchedulingInput input;
  const std::size_t qpus = 8;
  for (std::size_t q = 0; q < qpus; ++q) {
    const double quality = static_cast<double>(q) / (qpus - 1);  // 0 = best
    sched::QpuState state;
    state.name = "qpu" + std::to_string(q);
    state.size = 27;
    state.queue_wait_seconds = (1.0 - quality) * 1200.0 + rng.uniform(0.0, 60.0);
    input.qpus.push_back(state);
  }
  for (std::size_t j = 0; j < 100; ++j) {
    sched::QuantumJob job;
    job.id = j;
    job.qubits = static_cast<int>(rng.uniform_int(2, 24));
    job.shots = 4000;
    for (std::size_t q = 0; q < qpus; ++q) {
      // ~16% best-to-worst fidelity spread, per the paper's observed gain.
      const double quality = static_cast<double>(q) / (qpus - 1);
      job.est_fidelity.push_back(
          std::max(0.05, 0.90 - 0.15 * quality - rng.uniform(0.0, 0.03)));
      job.est_exec_seconds.push_back(rng.uniform(2.0, 10.0));
    }
    input.jobs.push_back(std::move(job));
  }
  return input;
}

}  // namespace

int main() {
  using namespace qon;
  bench::print_header("Figure 10b",
                      "MCDM priorities over a 100-job queue: JCT vs fidelity vs balanced");

  const auto input = make_queue(123);
  TextTable table({"priority", "mean JCT [s]", "mean fidelity"});
  double jct_priority_jct = 0.0;
  double fid_priority_jct = 0.0;
  double fid_priority_fid = 0.0;
  double jct_priority_fid = 0.0;
  double balanced_jct = 0.0;
  double balanced_fid = 0.0;
  for (const auto& [label, weight] :
       std::vector<std::pair<std::string, double>>{{"JCT", 0.0},
                                                   {"balanced", 0.5},
                                                   {"fidelity", 1.0}}) {
    sched::SchedulerConfig config;
    config.fidelity_weight = weight;
    config.nsga2.seed = 5;
    config.nsga2.population_size = 96;
    config.nsga2.max_generations = 80;
    const auto decision = sched::schedule_cycle(input, config);
    table.add_row({label, TextTable::num(decision.chosen.mean_jct, 1),
                   TextTable::num(decision.chosen.mean_fidelity(), 3)});
    if (weight == 0.0) {
      jct_priority_jct = decision.chosen.mean_jct;
      jct_priority_fid = decision.chosen.mean_fidelity();
    } else if (weight == 1.0) {
      fid_priority_jct = decision.chosen.mean_jct;
      fid_priority_fid = decision.chosen.mean_fidelity();
    } else {
      balanced_jct = decision.chosen.mean_jct;
      balanced_fid = decision.chosen.mean_fidelity();
    }
  }
  table.print(std::cout, "chosen solutions by priority");

  bench::print_comparison("JCT-priority: JCT reduction vs fidelity-priority", "67%",
                          bench::pct(1.0 - jct_priority_jct / fid_priority_jct));
  bench::print_comparison("fidelity-priority: fidelity gain vs JCT-priority", "16%",
                          bench::pct(fid_priority_fid / jct_priority_fid - 1.0));
  bench::print_comparison("balanced: JCT reduction vs fidelity-priority", "54%",
                          bench::pct(1.0 - balanced_jct / fid_priority_jct));
  bench::print_comparison("balanced: fidelity penalty vs fidelity-priority", "6%",
                          bench::pct(1.0 - balanced_fid / fid_priority_fid));
  return 0;
}
