// Burst benchmark — the run engine's scale trajectory. Bursts of 1k and 5k
// concurrent runs are fanned out on executor_threads = 2 in batch and
// immediate mode; for each scenario we record p50/p95 end-to-end run
// latency (virtual seconds from submit to finish) and the engine's peak
// live-run count — the decoupling statistic: pre-engine, two executor
// threads meant at most two runs could park quantum tasks at once, so a
// 5000-run burst could not even form scheduling batches. Emits
// BENCH_burst.json so future scale PRs diff against this baseline.

#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

namespace {

struct Scenario {
  std::string mode;
  std::size_t runs = 0;
  std::size_t completed = 0;
  double latency_p50 = 0.0;  ///< virtual seconds, submit -> finish
  double latency_p95 = 0.0;
  std::size_t peak_live = 0;
  std::uint64_t engine_events = 0;
  std::uint64_t cycles = 0;
  std::size_t largest_batch = 0;
  double wall_seconds = 0.0;
};

Scenario run_burst(qon::api::SchedulingMode mode, std::size_t runs) {
  using namespace qon;
  core::QonductorConfig config;
  config.num_qpus = 8;
  config.seed = 4242;
  config.trajectory_width_limit = 0;  // analytic model: isolate orchestration cost
  config.executor_threads = 2;        // the whole point: a handful of workers
  config.retention.max_terminal_runs = runs + 8;
  config.scheduler_service.mode = mode;
  config.scheduler_service.queue_threshold = 200;
  config.scheduler_service.max_batch_size = 500;
  config.scheduler_service.queue_capacity = 0;  // the burst IS the bound here
  config.scheduler_service.linger = std::chrono::milliseconds(20);
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "burst";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 512));
  const auto created = client.createWorkflow(std::move(create));
  if (!created.ok()) throw std::runtime_error(created.status().to_string());
  api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    throw std::runtime_error(deployed.status().to_string());
  }

  std::vector<api::InvokeRequest> requests(runs);
  for (auto& request : requests) request.image = created->image;
  Stopwatch wall;
  const auto handles = client.invokeAll(requests);
  if (!handles.ok()) throw std::runtime_error(handles.status().to_string());

  Scenario scenario;
  scenario.mode = api::scheduling_mode_name(mode);
  scenario.runs = runs;
  std::vector<double> latencies;
  latencies.reserve(runs);
  for (const auto& handle : *handles) {
    if (handle.wait() == api::RunStatus::kCompleted) ++scenario.completed;
    const auto info = handle.info();
    if (info.ok() && info->finished_at >= info->submitted_at) {
      latencies.push_back(info->finished_at - info->submitted_at);
    }
  }
  scenario.wall_seconds = wall.seconds();
  scenario.latency_p50 = percentile(latencies, 50.0);
  scenario.latency_p95 = percentile(latencies, 95.0);
  scenario.peak_live = client.backend().runEngine().peak_live_runs();
  scenario.engine_events = client.backend().runEngine().events_dispatched();
  const auto stats = client.getSchedulerStats();
  if (stats.ok()) {
    scenario.cycles = stats->stats.cycles;
    scenario.largest_batch = stats->stats.max_batch_size_seen;
  }
  return scenario;
}

}  // namespace

int main() {
  using namespace qon;
  bench::print_header("Burst scaling",
                      "End-to-end run latency and peak live runs on 2 engine workers");

  std::vector<Scenario> scenarios;
  for (const std::size_t runs : {std::size_t{1000}, std::size_t{5000}}) {
    scenarios.push_back(run_burst(api::SchedulingMode::kBatch, runs));
    scenarios.push_back(run_burst(api::SchedulingMode::kImmediate, runs));
  }

  TextTable table({"mode", "runs", "completed", "latency p50 [s]", "latency p95 [s]",
                   "peak live", "cycles", "largest batch", "wall [s]"});
  for (const auto& s : scenarios) {
    table.add_row({s.mode, std::to_string(s.runs), std::to_string(s.completed),
                   TextTable::num(s.latency_p50, 2), TextTable::num(s.latency_p95, 2),
                   std::to_string(s.peak_live), std::to_string(s.cycles),
                   std::to_string(s.largest_batch), TextTable::num(s.wall_seconds, 2)});
  }
  table.print(std::cout, "burst scaling on executor_threads = 2");

  const std::string json_path = bench::artifact_path("BENCH_burst.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"burst\",\n  \"executor_threads\": 2,\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    json << "    {\"mode\": \"" << s.mode << "\", \"runs\": " << s.runs
         << ", \"completed\": " << s.completed
         << ", \"latency_p50_s\": " << s.latency_p50
         << ", \"latency_p95_s\": " << s.latency_p95
         << ", \"peak_live_runs\": " << s.peak_live
         << ", \"engine_events\": " << s.engine_events
         << ", \"cycles\": " << s.cycles
         << ", \"largest_batch\": " << s.largest_batch
         << ", \"wall_seconds\": " << s.wall_seconds << "}"
         << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << json_path << "\n";

  std::size_t batch_5k_peak = 0;
  for (const auto& s : scenarios) {
    if (s.mode == api::scheduling_mode_name(api::SchedulingMode::kBatch) &&
        s.runs == 5000) {
      batch_5k_peak = s.peak_live;
    }
  }
  bench::print_comparison(
      "thousands of live runs on two workers",
      "peak_live >> executor_threads in batch mode (engine decoupling)",
      std::to_string(batch_5k_peak) + " live runs at 5k burst");
  return 0;
}
