// Micro-benchmark: NSGA-II scheduling-core throughput. Supports the §7
// complexity claim that one Eq. 1 evaluation is O(N) in the number of jobs
// and independent of the number of QPUs.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "moo/nsga2.hpp"
#include "sched/problem.hpp"

namespace {

using namespace qon;

sched::SchedulingInput make_input(std::size_t jobs, std::size_t qpus) {
  Rng rng(3);
  sched::SchedulingInput input;
  for (std::size_t q = 0; q < qpus; ++q) {
    input.qpus.push_back({"q" + std::to_string(q), 27, rng.uniform(0.0, 500.0), true});
  }
  for (std::size_t j = 0; j < jobs; ++j) {
    sched::QuantumJob job;
    job.id = j;
    job.qubits = static_cast<int>(rng.uniform_int(2, 24));
    for (std::size_t q = 0; q < qpus; ++q) {
      job.est_fidelity.push_back(rng.uniform(0.2, 0.95));
      job.est_exec_seconds.push_back(rng.uniform(1.0, 10.0));
    }
    input.jobs.push_back(std::move(job));
  }
  return input;
}

void BM_Eq1Evaluation(benchmark::State& state) {
  const auto input = make_input(static_cast<std::size_t>(state.range(0)), 8);
  const sched::SchedulingProblem problem(input);
  Rng rng(5);
  std::vector<int> genome(input.jobs.size());
  for (auto& g : genome) g = static_cast<int>(rng.uniform_int(0, 7));
  problem.repair(genome);
  std::vector<double> objectives;
  for (auto _ : state) {
    problem.evaluate(genome, objectives);
    benchmark::DoNotOptimize(objectives.data());
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_Eq1Evaluation)->RangeMultiplier(2)->Range(32, 512)->Complexity(benchmark::oN);

void BM_Nsga2FullRun(benchmark::State& state) {
  const auto input = make_input(static_cast<std::size_t>(state.range(0)), 8);
  const sched::SchedulingProblem problem(input);
  moo::Nsga2Config config;
  config.population_size = 48;
  config.max_generations = 32;
  config.seed = 11;
  for (auto _ : state) {
    const auto result = moo::nsga2(problem, config);
    benchmark::DoNotOptimize(result.front.data());
  }
}

BENCHMARK(BM_Nsga2FullRun)->Arg(50)->Arg(100)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
