// Campaign harness entry point: load a profile, run it against the real
// orchestrator stack, stream per-interval stats, and write the final
// BENCH_campaign_<profile>.json report.
//
//   bench_campaign [profile.yaml]        (default: profiles/diurnal.yaml)
//
// Artifacts land in $QON_BENCH_DIR (CI's upload directory) or the working
// directory:
//   BENCH_campaign_<name>.json           final report
//   BENCH_campaign_<name>_stats.jsonl    per-interval stream
//
// With `pacing: lockstep` profiles, two runs produce byte-identical stats
// streams and identical reports modulo lines containing "wall" — the CI
// smoke job asserts exactly that.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "campaign/driver.hpp"

int main(int argc, char** argv) {
  using namespace qon;

  const std::string profile_path = argc > 1 ? argv[1] : "profiles/diurnal.yaml";
  const auto profile = campaign::load_profile_file(profile_path);
  if (!profile.ok()) {
    std::fprintf(stderr, "bench_campaign: %s\n", profile.status().to_string().c_str());
    return 1;
  }

  bench::print_header("campaign " + profile->name,
                      "profile-driven scenario campaign against the real "
                      "orchestrator (" +
                          std::string(campaign::arrival_kind_name(
                              profile->arrivals.kind)) +
                          " arrivals, pacing " +
                          campaign::pacing_mode_name(profile->pacing) + ")");

  campaign::CampaignOptions options;
  options.stats_path =
      bench::artifact_path("BENCH_campaign_" + profile->name + "_stats.jsonl");
  options.stats_format = campaign::StatsFormat::kJsonl;
  options.print_progress = true;
  // Only written when the profile has an `alerts:` section.
  options.alerts_path =
      bench::artifact_path("BENCH_campaign_" + profile->name + "_alerts.jsonl");

  const auto report = campaign::run_campaign(*profile, options);
  if (!report.ok()) {
    std::fprintf(stderr, "bench_campaign: %s\n", report.status().to_string().c_str());
    return 1;
  }

  campaign::print_slo_table(std::cout, *report);
  std::cout << "\narrivals " << report->arrivals << ", admitted " << report->admitted
            << ", shed " << report->shed << ", completed " << report->completed
            << ", failed " << report->failed << ", cycles " << report->sched_cycles
            << "\nvirtual duration " << report->virtual_duration_seconds / 3600.0
            << " h, wall " << report->wall_seconds << " s ("
            << (report->wall_seconds > 0.0
                    ? static_cast<double>(report->arrivals) / report->wall_seconds
                    : 0.0)
            << " runs/s wall)\n";

  const std::string report_path =
      bench::artifact_path("BENCH_campaign_" + profile->name + ".json");
  campaign::write_report_json(*report, report_path);
  std::cout << "report: " << report_path << "\nstats:  " << options.stats_path
            << " (" << report->stats_rows << " rows)\n";
  return 0;
}
