// Scheduler-service benchmark — the batch-scheduling job manager in the
// live serving path (not the cloudsim replay of Fig. 9b). A burst of
// concurrent runs floods the pending queue; the scheduler service batches
// them into hybrid-scheduler cycles. Emits BENCH_sched_service.json with
// p50/p95 queue wait (virtual seconds between enqueue and dispatch) and
// p50/p95 cycle latency (real seconds per scheduling cycle), so future PRs
// can diff the serving path's scheduling overhead against this baseline.

#include <cstddef>
#include <fstream>
#include <iostream>
#include <vector>

#include "api/client.hpp"
#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"

int main() {
  using namespace qon;
  bench::print_header("Scheduler service",
                      "Batch-scheduling serving path: queue wait and cycle latency");

  constexpr std::size_t kRuns = 160;
  core::QonductorConfig config;
  config.num_qpus = 8;
  config.seed = 1337;
  config.trajectory_width_limit = 0;  // analytic model: isolate scheduling cost
  config.executor_threads = kRuns;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 40;
  config.scheduler_service.max_batch_size = 64;
  config.scheduler_service.linger = std::chrono::milliseconds(100);
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "sched-service-burst";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(5), 2000));
  const auto created = client.createWorkflow(std::move(create));
  if (!created.ok()) {
    std::cerr << created.status().to_string() << "\n";
    return 1;
  }
  api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    std::cerr << deployed.status().to_string() << "\n";
    return 1;
  }

  std::vector<api::InvokeRequest> requests(kRuns);
  for (auto& request : requests) request.image = created->image;
  Stopwatch wall;
  const auto handles = client.invokeAll(requests);
  if (!handles.ok()) {
    std::cerr << handles.status().to_string() << "\n";
    return 1;
  }
  std::size_t completed = 0;
  for (const auto& handle : *handles) {
    if (handle.wait() == api::RunStatus::kCompleted) ++completed;
  }
  const double wall_seconds = wall.seconds();

  const auto response = client.getSchedulerStats();
  if (!response.ok()) {
    std::cerr << response.status().to_string() << "\n";
    return 1;
  }
  const api::SchedulerStats& stats = response->stats;

  std::vector<double> cycle_latency;
  std::vector<double> optimize_seconds;
  double batch_sum = 0.0;
  for (const auto& cycle : stats.recent_cycles) {
    cycle_latency.push_back(cycle.cycle_latency_seconds);
    optimize_seconds.push_back(cycle.optimize_seconds);
    batch_sum += static_cast<double>(cycle.batch_size);
  }
  const auto& waits = stats.recent_queue_waits;
  const double mean_batch =
      stats.cycles > 0 ? batch_sum / static_cast<double>(stats.cycles) : 0.0;

  TextTable table({"metric", "value"});
  table.add_row({"runs completed", std::to_string(completed) + "/" + std::to_string(kRuns)});
  table.add_row({"scheduling cycles", std::to_string(stats.cycles)});
  table.add_row({"mean batch size", TextTable::num(mean_batch, 1)});
  table.add_row({"largest batch", std::to_string(stats.max_batch_size_seen)});
  table.add_row({"queue high watermark", std::to_string(stats.queue_high_watermark)});
  table.add_row({"queue wait p50 [s, virtual]", TextTable::num(percentile(waits, 50.0), 2)});
  table.add_row({"queue wait p95 [s, virtual]", TextTable::num(percentile(waits, 95.0), 2)});
  table.add_row({"cycle latency p50 [ms]", TextTable::num(percentile(cycle_latency, 50.0) * 1e3, 2)});
  table.add_row({"cycle latency p95 [ms]", TextTable::num(percentile(cycle_latency, 95.0) * 1e3, 2)});
  table.add_row({"optimize stage p50 [ms]", TextTable::num(percentile(optimize_seconds, 50.0) * 1e3, 2)});
  table.add_row({"burst wall time [s]", TextTable::num(wall_seconds, 2)});
  table.print(std::cout, "batch serving path");

  // Machine-readable trajectory point for regression tracking.
  const std::string json_path = bench::artifact_path("BENCH_sched_service.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"sched_service\",\n"
       << "  \"runs\": " << kRuns << ",\n"
       << "  \"completed\": " << completed << ",\n"
       << "  \"qpus\": " << config.num_qpus << ",\n"
       << "  \"queue_threshold\": " << config.scheduler_service.queue_threshold << ",\n"
       << "  \"max_batch_size\": " << config.scheduler_service.max_batch_size << ",\n"
       << "  \"cycles\": " << stats.cycles << ",\n"
       << "  \"mean_batch_size\": " << mean_batch << ",\n"
       << "  \"largest_batch\": " << stats.max_batch_size_seen << ",\n"
       << "  \"queue_high_watermark\": " << stats.queue_high_watermark << ",\n"
       << "  \"queue_wait_p50_s\": " << percentile(waits, 50.0) << ",\n"
       << "  \"queue_wait_p95_s\": " << percentile(waits, 95.0) << ",\n"
       << "  \"cycle_latency_p50_s\": " << percentile(cycle_latency, 50.0) << ",\n"
       << "  \"cycle_latency_p95_s\": " << percentile(cycle_latency, 95.0) << ",\n"
       << "  \"optimize_p50_s\": " << percentile(optimize_seconds, 50.0) << ",\n"
       << "  \"burst_wall_seconds\": " << wall_seconds << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  bench::print_comparison("batch scheduling amortizes cycles over the burst",
                          "queue bounded, cycles >= 2 (Fig. 9b trigger behaviour)",
                          std::to_string(stats.cycles) + " cycles / " +
                              std::to_string(kRuns) + " jobs");
  return 0;
}
