// Figure 2a — Impact of circuit cutting: relative increase in classical
// runtime, quantum runtime and execution fidelity when 12- and 24-qubit
// circuits are cut in half and the fragments run sequentially on the same
// QPU. Paper (24q): classical ~2.5x, quantum ~12x, fidelity ~450x.
//
// Workload: QAOA over a clustered graph (two dense halves, one bridge
// edge) — the weakly-coupled structure circuit knitting targets. The
// fidelity gain comes from the fragments needing far less SWAP routing and
// idle time than the full-width circuit on the heavy-hex topology.

#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "mitigation/cutting.hpp"
#include "mitigation/pipeline.hpp"
#include "qpu/fleet.hpp"
#include "simulator/esp.hpp"
#include "transpiler/transpiler.hpp"

namespace {

using namespace qon;

// Two moderately dense clusters of size n/2 joined by a single bridge edge.
// Density 0.12 keeps the uncut 24-qubit fidelity around 1e-3..1e-4 — the
// regime where the paper observes the ~450x knitting uplift.
circuit::Graph clustered_graph(int n, std::uint64_t seed) {
  Rng rng(seed);
  circuit::Graph g;
  g.num_vertices = n;
  const int half = n / 2;
  auto add_cluster = [&](int lo, int hi) {
    // Connect a spanning chain first so each cluster is connected.
    for (int a = lo; a + 1 < hi; ++a) g.edges.emplace_back(a, a + 1);
    for (int a = lo; a < hi; ++a) {
      for (int b = a + 2; b < hi; ++b) {
        if (rng.bernoulli(0.12)) g.edges.emplace_back(a, b);
      }
    }
  };
  add_cluster(0, half);
  add_cluster(half, n);
  g.edges.emplace_back(half - 1, half);  // the single bridge
  return g;
}

struct CuttingImpact {
  double classical_x = 0.0;
  double quantum_x = 0.0;
  double fidelity_x = 0.0;
  std::size_t cuts = 0;
};

// Classical base processing (compilation + result aggregation) of one
// circuit execution; fragments pay it once each, plus knit reconstruction.
constexpr double kBaseClassicalSeconds = 0.6;

CuttingImpact measure(int width, std::uint64_t seed) {
  const auto fleet = qpu::make_ibm_like_fleet(1, seed);
  const auto& backend = *fleet.backends[0];
  const int shots = 4000;
  const auto circ = circuit::qaoa_maxcut(clustered_graph(width, seed), 1, seed);

  // --- baseline: the whole circuit -----------------------------------------
  const auto whole = transpiler::transpile(circ, backend);
  const double base_fid = sim::esp_fidelity(whole.circuit, backend, sim::HiddenNoise::none());
  const double base_qtime = transpiler::job_quantum_runtime(whole.schedule, shots);
  const double base_ctime = kBaseClassicalSeconds;

  // --- cut: two fragments, knitted ------------------------------------------
  // Cut exactly at the bridge: fragment = one cluster each.
  mitigation::CutPlan plan;
  for (int q = 0; q < width / 2; ++q) plan.group_a.push_back(q);
  for (int q = width / 2; q < width; ++q) plan.group_b.push_back(q);
  for (const auto& g : circ.gates()) {
    if (circuit::is_two_qubit(g.kind) &&
        (g.qubit(0) < width / 2) != (g.qubit(1) < width / 2)) {
      ++plan.crossing_gates;
    }
  }
  const auto cut = mitigation::cut_circuit(circ, plan);
  const auto frag_a = transpiler::transpile(cut.fragment_a, backend);
  const auto frag_b = transpiler::transpile(cut.fragment_b, backend);
  const double fid_a = sim::esp_fidelity(frag_a.circuit, backend, sim::HiddenNoise::none());
  const double fid_b = sim::esp_fidelity(frag_b.circuit, backend, sim::HiddenNoise::none());
  const double cut_fid = mitigation::knitted_fidelity(fid_a, fid_b, cut.plan.crossing_gates);
  // Per quasi-probability sampling round, both fragments execute
  // sequentially on the same QPU at full shots (gamma^2 = 9 per cut).
  const double cut_qtime =
      (transpiler::job_quantum_runtime(frag_a.schedule, shots) +
       transpiler::job_quantum_runtime(frag_b.schedule, shots)) *
      cut.sampling_overhead;
  const double knit_seconds = 2e-3 * static_cast<double>(cut.circuit_variants) *
                              static_cast<double>(circ.depth());
  const double cut_ctime = 2.0 * kBaseClassicalSeconds + knit_seconds;

  CuttingImpact impact;
  impact.classical_x = cut_ctime / base_ctime;
  impact.quantum_x = cut_qtime / base_qtime;
  impact.fidelity_x = cut_fid / std::max(base_fid, 1e-12);
  impact.cuts = cut.plan.crossing_gates;
  return impact;
}

}  // namespace

int main() {
  bench::print_header("Figure 2a",
                      "Circuit cutting: relative increase in classical runtime, quantum "
                      "runtime and fidelity (12q vs 24q)");

  qon::TextTable table(
      {"width", "cuts", "classical runtime (x)", "quantum runtime (x)", "fidelity (x)"});
  CuttingImpact impact24;
  for (const int width : {12, 24}) {
    const auto impact = measure(width, 7);
    if (width == 24) impact24 = impact;
    table.add_row({std::to_string(width) + " qubits", std::to_string(impact.cuts),
                   qon::TextTable::num(impact.classical_x, 2),
                   qon::TextTable::num(impact.quantum_x, 1),
                   qon::TextTable::num(impact.fidelity_x, 1)});
  }
  table.print(std::cout, "relative increase from cutting");

  bench::print_comparison("24q classical runtime increase", "~2.5x",
                          qon::TextTable::num(impact24.classical_x, 2) + "x");
  bench::print_comparison("24q quantum runtime increase", "~12x",
                          qon::TextTable::num(impact24.quantum_x, 1) + "x");
  bench::print_comparison("24q fidelity increase", "~450x",
                          qon::TextTable::num(impact24.fidelity_x, 0) + "x");
  return 0;
}
