// Figure 6 — End-to-end performance over one simulated hour at 1500
// applications/hour on 8 QPUs, Qonductor vs best-fidelity FCFS:
//   (a) mean fidelity (paper: Qonductor < 3% lower),
//   (b) mean completion time (paper: ~48% lower),
//   (c) mean QPU utilization (paper: ~66% higher).

#include <iostream>

#include "bench_util.hpp"
#include "cloudsim/metrics.hpp"
#include "cloudsim/simulation.hpp"

namespace {

qon::cloudsim::CloudSimConfig make_config(qon::cloudsim::SchedulingPolicy policy) {
  qon::cloudsim::CloudSimConfig config;
  config.policy = policy;
  config.num_qpus = 8;
  config.seed = 606;
  config.workload.jobs_per_hour = 1500.0;
  config.workload.duration_hours = 1.0;
  config.workload.seed = 606;
  config.queue_trigger = 100;
  config.timer_trigger_seconds = 120.0;
  config.scheduler.nsga2.population_size = 48;
  config.scheduler.nsga2.max_generations = 32;
  // Slightly fidelity-leaning MCDM preference: the paper's balanced point
  // sacrifices <3% fidelity; with our steeper fleet-quality spread that
  // corresponds to a 0.75 fidelity weight.
  config.scheduler.fidelity_weight = 0.75;
  return config;
}

}  // namespace

int main() {
  using namespace qon;
  using namespace qon::cloudsim;
  bench::print_header("Figure 6",
                      "End-to-end: 1h simulated, 1500 apps/h, 8 QPUs; Qonductor vs FCFS");

  const auto qonductor = run_cloud_simulation(make_config(SchedulingPolicy::kQonductor));
  const auto fcfs = run_cloud_simulation(make_config(SchedulingPolicy::kBestFidelityFcfs));

  const double bucket = 300.0;  // 5-minute buckets
  print_series(std::cout, "Fig 6(a): mean fidelity over time",
               {to_series(fidelity_over_time(qonductor, bucket), "qonductor"),
                to_series(fidelity_over_time(fcfs, bucket), "fcfs")},
               "time [s]", "fidelity");
  print_series(std::cout, "Fig 6(b): mean completion time over time",
               {to_series(mean_jct_over_time(qonductor, bucket), "qonductor"),
                to_series(mean_jct_over_time(fcfs, bucket), "fcfs")},
               "time [s]", "mean JCT [s]");
  print_series(std::cout, "Fig 6(c): mean QPU utilization over time",
               {to_series(utilization_over_time(qonductor, bucket), "qonductor"),
                to_series(utilization_over_time(fcfs, bucket), "fcfs")},
               "time [s]", "utilization [%]");

  TextTable summary({"metric", "qonductor", "fcfs"});
  summary.add_row({"completed apps", std::to_string(qonductor.apps.size()),
                   std::to_string(fcfs.apps.size())});
  summary.add_row({"mean fidelity", TextTable::num(qonductor.mean_fidelity(), 4),
                   TextTable::num(fcfs.mean_fidelity(), 4)});
  summary.add_row({"mean JCT [s]", TextTable::num(qonductor.mean_jct(), 1),
                   TextTable::num(fcfs.mean_jct(), 1)});
  summary.add_row({"mean utilization", bench::pct(qonductor.mean_utilization()),
                   bench::pct(fcfs.mean_utilization())});
  summary.print(std::cout, "aggregates");

  const double jct_reduction = 1.0 - qonductor.mean_jct() / fcfs.mean_jct();
  const double fid_penalty =
      (fcfs.mean_fidelity() - qonductor.mean_fidelity()) / fcfs.mean_fidelity();
  const double util_gain =
      qonductor.mean_utilization() / fcfs.mean_utilization() - 1.0;
  bench::print_comparison("mean JCT reduction vs FCFS", "~48%", bench::pct(jct_reduction));
  bench::print_comparison("fidelity penalty vs FCFS", "< 3%", bench::pct(fid_penalty));
  bench::print_comparison("QPU utilization gain vs FCFS", "~66%", bench::pct(util_gain));
  return 0;
}
