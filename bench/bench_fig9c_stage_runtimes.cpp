// Figure 9c — Runtime of the three scheduling stages (job pre-processing,
// optimization, selection) as the cluster grows from 4 to 16 QPUs, measured
// with google-benchmark. Paper: only pre-processing grows with QPU count;
// optimization and selection stay roughly constant.

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "sched/hybrid_scheduler.hpp"

namespace {

using namespace qon;

sched::SchedulingInput make_input(std::size_t jobs, std::size_t qpus, std::uint64_t seed) {
  Rng rng(seed);
  sched::SchedulingInput input;
  for (std::size_t q = 0; q < qpus; ++q) {
    input.qpus.push_back({"qpu" + std::to_string(q), 27, rng.uniform(0.0, 600.0), true});
  }
  for (std::size_t j = 0; j < jobs; ++j) {
    sched::QuantumJob job;
    job.id = j;
    job.qubits = static_cast<int>(rng.uniform_int(2, 24));
    job.shots = 4000;
    for (std::size_t q = 0; q < qpus; ++q) {
      job.est_fidelity.push_back(rng.uniform(0.3, 0.95));
      job.est_exec_seconds.push_back(rng.uniform(1.0, 12.0));
    }
    input.jobs.push_back(std::move(job));
  }
  return input;
}

void BM_ScheduleCycleStages(benchmark::State& state) {
  const auto qpus = static_cast<std::size_t>(state.range(0));
  const auto input = make_input(100, qpus, 42);
  sched::SchedulerConfig config;
  config.nsga2.population_size = 48;
  config.nsga2.max_generations = 32;
  config.nsga2.seed = 7;

  double preprocess = 0.0;
  double optimize = 0.0;
  double select = 0.0;
  std::size_t cycles = 0;
  for (auto _ : state) {
    const auto decision = sched::schedule_cycle(input, config);
    benchmark::DoNotOptimize(decision.assignment.data());
    preprocess += decision.preprocess_seconds;
    optimize += decision.optimize_seconds;
    select += decision.select_seconds;
    ++cycles;
  }
  state.counters["preprocess_s"] = preprocess / static_cast<double>(cycles);
  state.counters["optimize_s"] = optimize / static_cast<double>(cycles);
  state.counters["select_s"] = select / static_cast<double>(cycles);
}

BENCHMARK(BM_ScheduleCycleStages)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.2);

// The per-job pre-processing path in isolation: it scales with the number
// of QPUs because the estimates are gathered per (job, QPU) pair.
void BM_PreprocessOnly(benchmark::State& state) {
  const auto qpus = static_cast<std::size_t>(state.range(0));
  const auto input = make_input(100, qpus, 42);
  for (auto _ : state) {
    const auto pre = sched::preprocess_jobs(input);
    benchmark::DoNotOptimize(pre.compact.jobs.data());
  }
}

BENCHMARK(BM_PreprocessOnly)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
