// Telemetry overhead benchmark — the acceptance gate for the observability
// subsystem. The bench_burst 1k batch-mode configuration is run twice, with
// full telemetry (tracing + metrics) and with telemetry off, measuring
// per-invoke call latency (wall µs), end-to-end run latency (virtual
// seconds, submit -> finish) and burst throughput. The p95 end-to-end
// on/off ratio is the headline number: the budget is <= 5% regression.
// Emits BENCH_obs_overhead.json plus the telemetry-on run's exported
// artifacts — BENCH_obs_metrics.json (registry snapshot) and
// BENCH_obs_trace.jsonl (one run's Chrome trace_event timeline).

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "obs/export.hpp"

namespace {

constexpr std::size_t kRuns = 1000;

struct Scenario {
  std::string telemetry;
  std::size_t completed = 0;
  double invoke_p50_us = 0.0;  ///< wall latency of the invoke() call itself
  double invoke_p95_us = 0.0;
  double e2e_p50_s = 0.0;  ///< virtual seconds, submit -> finish
  double e2e_p95_s = 0.0;
  double wall_seconds = 0.0;
  double throughput = 0.0;  ///< completed runs per wall second
};

Scenario run_burst(bool telemetry_on, bool export_artifacts) {
  using namespace qon;
  core::QonductorConfig config;
  config.num_qpus = 8;
  config.seed = 4242;
  config.trajectory_width_limit = 0;  // analytic model: isolate orchestration cost
  config.executor_threads = 2;
  config.retention.max_terminal_runs = kRuns + 8;
  config.scheduler_service.queue_threshold = 200;
  config.scheduler_service.max_batch_size = 500;
  config.scheduler_service.queue_capacity = 0;
  config.scheduler_service.linger = std::chrono::milliseconds(20);
  config.telemetry.tracing = telemetry_on;
  config.telemetry.metrics = telemetry_on;
  config.telemetry.trace_runs = kRuns + 8;  // retain the whole burst
  if (telemetry_on) {
    // The health pillar rides the telemetry-on arm so the 5% budget also
    // covers watchdog heartbeats and per-settle SLO recording.
    config.health.slo_seconds[static_cast<std::size_t>(api::Priority::kStandard)] =
        3600.0;
    obs::SloRule rule;
    rule.name = "standard-burn";
    rule.priority = api::Priority::kStandard;
    config.health.alert_rules.push_back(std::move(rule));
  }
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "obs-overhead";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(4), 512));
  const auto created = client.createWorkflow(std::move(create));
  if (!created.ok()) throw std::runtime_error(created.status().to_string());
  api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    throw std::runtime_error(deployed.status().to_string());
  }

  // Individual invoke() calls so the front-door latency distribution is
  // observable — invokeAll would amortize it away.
  api::InvokeRequest request;
  request.image = created->image;
  std::vector<api::RunHandle> handles;
  handles.reserve(kRuns);
  std::vector<double> invoke_us;
  invoke_us.reserve(kRuns);
  Stopwatch wall;
  for (std::size_t i = 0; i < kRuns; ++i) {
    const auto call_start = std::chrono::steady_clock::now();
    auto handle = client.invoke(request);
    invoke_us.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - call_start)
                            .count());
    if (!handle.ok()) throw std::runtime_error(handle.status().to_string());
    handles.push_back(std::move(*handle));
  }

  Scenario scenario;
  scenario.telemetry = telemetry_on ? "on" : "off";
  std::vector<double> e2e;
  e2e.reserve(kRuns);
  for (const auto& handle : handles) {
    if (handle.wait() == api::RunStatus::kCompleted) ++scenario.completed;
    const auto info = handle.info();
    if (info.ok() && info->finished_at >= info->submitted_at) {
      e2e.push_back(info->finished_at - info->submitted_at);
    }
  }
  scenario.wall_seconds = wall.seconds();
  scenario.invoke_p50_us = percentile(invoke_us, 50.0);
  scenario.invoke_p95_us = percentile(invoke_us, 95.0);
  scenario.e2e_p50_s = percentile(e2e, 50.0);
  scenario.e2e_p95_s = percentile(e2e, 95.0);
  scenario.throughput =
      scenario.wall_seconds > 0.0 ? scenario.completed / scenario.wall_seconds : 0.0;

  if (telemetry_on && export_artifacts) {
    const auto metrics = client.getMetrics();
    if (metrics.ok()) {
      const std::string path = bench::artifact_path("BENCH_obs_metrics.json");
      std::ofstream out(path);
      out << obs::render_json(metrics->snapshot);
      std::cout << "wrote " << path << "\n";
    }
    const auto health = client.getHealth();
    if (health.ok()) {
      const std::string path = bench::artifact_path("BENCH_obs_health.json");
      std::ofstream out(path);
      out << obs::render_health_json(*health);
      std::cout << "wrote " << path << "\n";
    }
    api::GetRunTraceRequest trace_request;
    trace_request.run = handles.back().id();
    const auto trace = client.getRunTrace(trace_request);
    if (trace.ok()) {
      const std::string path = bench::artifact_path("BENCH_obs_trace.jsonl");
      std::ofstream out(path);
      out << obs::chrome_trace_events(trace->trace);
      std::cout << "wrote " << path << "\n";
    }
  }
  return scenario;
}

}  // namespace

int main() {
  using namespace qon;
  bench::print_header("Telemetry overhead",
                      "bench_burst 1k batch config, full telemetry vs telemetry off");

  // Interleave off/on/off/on and keep the better pair half to damp
  // machine-noise asymmetry in CI; report every measured scenario.
  std::vector<Scenario> scenarios;
  scenarios.push_back(run_burst(false, false));  // warm-up + off sample
  scenarios.push_back(run_burst(true, true));
  scenarios.push_back(run_burst(false, false));
  scenarios.push_back(run_burst(true, false));

  TextTable table({"telemetry", "completed", "invoke p50 [us]", "invoke p95 [us]",
                   "e2e p50 [s]", "e2e p95 [s]", "runs/s", "wall [s]"});
  for (const auto& s : scenarios) {
    table.add_row({s.telemetry, std::to_string(s.completed),
                   TextTable::num(s.invoke_p50_us, 1), TextTable::num(s.invoke_p95_us, 1),
                   TextTable::num(s.e2e_p50_s, 2), TextTable::num(s.e2e_p95_s, 2),
                   TextTable::num(s.throughput, 0), TextTable::num(s.wall_seconds, 2)});
  }
  table.print(std::cout, "telemetry on/off at 1k burst, executor_threads = 2");

  // Best-of-two per arm: the overhead claim should not hinge on one noisy run.
  const double off_p95 = std::min(scenarios[0].e2e_p95_s, scenarios[2].e2e_p95_s);
  const double on_p95 = std::min(scenarios[1].e2e_p95_s, scenarios[3].e2e_p95_s);
  const double ratio = off_p95 > 0.0 ? on_p95 / off_p95 : 1.0;

  const std::string json_path = bench::artifact_path("BENCH_obs_overhead.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"obs_overhead\",\n  \"runs\": " << kRuns
       << ",\n  \"executor_threads\": 2,\n  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    json << "    {\"telemetry\": \"" << s.telemetry << "\", \"completed\": " << s.completed
         << ", \"invoke_p50_us\": " << s.invoke_p50_us
         << ", \"invoke_p95_us\": " << s.invoke_p95_us
         << ", \"e2e_p50_s\": " << s.e2e_p50_s << ", \"e2e_p95_s\": " << s.e2e_p95_s
         << ", \"throughput_runs_per_s\": " << s.throughput
         << ", \"wall_seconds\": " << s.wall_seconds << "}"
         << (i + 1 < scenarios.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"e2e_p95_on_off_ratio\": " << ratio
       << ",\n  \"budget_ratio\": 1.05\n}\n";
  std::cout << "\nwrote " << json_path << "\n";

  bench::print_comparison("telemetry e2e p95 overhead", "<= 5% (budget)",
                          bench::pct(ratio - 1.0) + " (on/off ratio " +
                              TextTable::num(ratio, 3) + ")");
  return 0;
}
