// Figure 2b — Spatial performance variance: fidelity of a 12-qubit GHZ
// circuit on six same-model QPUs with independent calibrations.
// Paper: 38% fidelity spread between the best (auckland) and worst (algiers).

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "qpu/fleet.hpp"
#include "simulator/metrics.hpp"
#include "simulator/noise.hpp"
#include "transpiler/transpiler.hpp"

int main() {
  using namespace qon;
  bench::print_header("Figure 2b",
                      "Spatial variance: GHZ-12 Hellinger fidelity across six 27-qubit QPUs");

  // Quality band chosen so the GHZ-12 fidelity spread lands near the
  // paper's 38% (GHZ fidelity amplifies calibration differences).
  auto fleet = qpu::make_ibm_like_fleet(6, 2023, 0.85, 1.25);
  const auto circ = circuit::ghz(12);
  const auto ideal = sim::ideal_distribution(circ);
  Rng rng(7);
  const sim::HiddenNoise hidden(11, 0.2);

  TextTable table({"IBM QPU", "fidelity"});
  double best = 0.0;
  double worst = 1.0;
  for (const auto& backend : fleet.backends) {
    const auto transpiled = transpiler::transpile(circ, *backend);
    const auto counts = sim::run_noisy(transpiled.circuit, *backend, 4000, rng, hidden);
    const double fidelity = sim::hellinger_fidelity(counts, ideal);
    best = std::max(best, fidelity);
    worst = std::min(worst, fidelity);
    table.add_row({backend->name(), TextTable::num(fidelity, 3)});
  }
  table.print(std::cout, "GHZ-12 fidelity per QPU (trajectory simulation)");

  bench::print_comparison("best-to-worst fidelity difference", "38% (auckland vs algiers)",
                          bench::pct((best - worst) / std::max(best, 1e-9)));
  return 0;
}
