// Figure 9b — Scheduler pending-queue size as the workload scales from
// 1500 to 4500 jobs/hour (3x the measured IBM load, ~2.2x the IBM peak).
// Paper: the queue oscillates with the scheduling triggers but remains
// bounded at every load level.

#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "cloudsim/metrics.hpp"
#include "cloudsim/simulation.hpp"

int main() {
  using namespace qon;
  using namespace qon::cloudsim;
  bench::print_header("Figure 9b", "Scheduler queue size vs workload (1500/3000/4500 j/h)");

  std::vector<Series> series;
  TextTable table({"load [j/h]", "max queue", "mean queue", "cycles"});
  for (const double rate : {1500.0, 3000.0, 4500.0}) {
    CloudSimConfig config;
    config.policy = SchedulingPolicy::kQonductor;
    config.num_qpus = 8;
    config.seed = 990;
    config.workload.jobs_per_hour = rate;
    config.workload.duration_hours = 0.5;
    config.workload.seed = 990;
    config.queue_sample_interval_seconds = 30.0;
    config.scheduler.nsga2.population_size = 48;
    config.scheduler.nsga2.max_generations = 32;
    const auto result = run_cloud_simulation(config);
    const auto ts = scheduler_queue_over_time(result);
    series.push_back(to_series(ts, TextTable::num(rate, 0) + " j/h"));
    double max_q = 0.0;
    double sum_q = 0.0;
    for (double v : ts.value) {
      max_q = std::max(max_q, v);
      sum_q += v;
    }
    table.add_row({TextTable::num(rate, 0), TextTable::num(max_q, 0),
                   TextTable::num(sum_q / static_cast<double>(ts.value.size()), 1),
                   std::to_string(result.cycles.size())});
  }
  print_series(std::cout, "Fig 9(b): pending scheduler queue over time", series, "time [s]",
               "queue size");
  table.print(std::cout, "aggregate");

  bench::print_comparison("scheduler stable at 3x current load (4500 j/h)",
                          "yes (bounded oscillation)", "see max queue above");
  return 0;
}
