// Figure 9a — Mean JCT as the quantum cluster scales from 4 to 16 QPUs at
// 1500 jobs/hour. Paper: 8 QPUs improve mean JCT by 52.8% over 4; 16 QPUs
// by 81% (4.35x lower).

#include <iostream>

#include "bench_util.hpp"
#include "cloudsim/metrics.hpp"
#include "cloudsim/simulation.hpp"

int main() {
  using namespace qon;
  using namespace qon::cloudsim;
  bench::print_header("Figure 9a", "Mean JCT vs cluster size (4/8/16 QPUs, 1500 j/h)");

  std::vector<Series> series;
  std::vector<double> mean_jcts;
  for (const std::size_t qpus : {4u, 8u, 16u}) {
    CloudSimConfig config;
    config.policy = SchedulingPolicy::kQonductor;
    config.num_qpus = qpus;
    config.seed = 99;
    config.workload.jobs_per_hour = 1500.0;
    config.workload.duration_hours = 0.5;
    config.workload.seed = 99;
    config.scheduler.nsga2.population_size = 48;
    config.scheduler.nsga2.max_generations = 32;
    const auto result = run_cloud_simulation(config);
    series.push_back(to_series(mean_jct_over_time(result, 300.0),
                               std::to_string(qpus) + " QPUs"));
    mean_jcts.push_back(result.mean_jct());
  }
  print_series(std::cout, "Fig 9(a): mean JCT over time by cluster size", series, "time [s]",
               "mean JCT [s]");

  TextTable table({"QPUs", "mean JCT [s]", "improvement vs 4 QPUs"});
  table.add_row({"4", TextTable::num(mean_jcts[0], 1), "-"});
  table.add_row({"8", TextTable::num(mean_jcts[1], 1),
                 bench::pct(1.0 - mean_jcts[1] / mean_jcts[0])});
  table.add_row({"16", TextTable::num(mean_jcts[2], 1),
                 bench::pct(1.0 - mean_jcts[2] / mean_jcts[0])});
  table.print(std::cout, "aggregate");

  bench::print_comparison("JCT improvement 4 -> 8 QPUs", "52.8%",
                          bench::pct(1.0 - mean_jcts[1] / mean_jcts[0]));
  bench::print_comparison("JCT improvement 4 -> 16 QPUs", "81% (4.35x)",
                          bench::pct(1.0 - mean_jcts[2] / mean_jcts[0]));
  return 0;
}
