#pragma once
// Shared helpers for the figure/table reproduction harnesses: consistent
// headers and "paper vs measured" comparison rows, so bench output can be
// diffed against EXPERIMENTS.md.

#include <iostream>
#include <string>

#include "common/table.hpp"

namespace qon::bench {

inline void print_header(const std::string& experiment, const std::string& description) {
  std::cout << "\n################################################################\n"
            << "# " << experiment << "\n"
            << "# " << description << "\n"
            << "################################################################\n";
}

/// One "paper reports X, we measure Y" comparison line.
inline void print_comparison(const std::string& metric, const std::string& paper,
                             const std::string& measured) {
  TextTable t({"metric", "paper", "measured"});
  t.add_row({metric, paper, measured});
  t.print(std::cout);
}

inline std::string pct(double fraction, int precision = 1) {
  return TextTable::num(100.0 * fraction, precision) + "%";
}

}  // namespace qon::bench
