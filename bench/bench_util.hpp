#pragma once
// Shared helpers for the figure/table reproduction harnesses: consistent
// headers and "paper vs measured" comparison rows, so bench output can be
// diffed against EXPERIMENTS.md.

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hpp"

namespace qon::bench {

inline void print_header(const std::string& experiment, const std::string& description) {
  std::cout << "\n################################################################\n"
            << "# " << experiment << "\n"
            << "# " << description << "\n"
            << "################################################################\n";
}

/// One "paper reports X, we measure Y" comparison line.
inline void print_comparison(const std::string& metric, const std::string& paper,
                             const std::string& measured) {
  TextTable t({"metric", "paper", "measured"});
  t.add_row({metric, paper, measured});
  t.print(std::cout);
}

inline std::string pct(double fraction, int precision = 1) {
  return TextTable::num(100.0 * fraction, precision) + "%";
}

/// Where BENCH_*.json artifacts land: $QON_BENCH_DIR when set (CI points it
/// at the artifact upload directory), else the working directory — so local
/// runs keep their old behavior.
inline std::string artifact_path(const std::string& name) {
  const char* dir = std::getenv("QON_BENCH_DIR");
  if (dir == nullptr || *dir == '\0') return name;
  std::string path(dir);
  if (path.back() != '/') path += '/';
  return path + name;
}

}  // namespace qon::bench
