// Overload benchmark — the front door under a flood. 50k invocations (7:2:1
// batch:standard:interactive) are fired at a 4k-slot pending queue with the
// admission gate bounding live runs. The interesting numbers: the admission
// decision stays microseconds-flat for the interactive class even while the
// gate sheds batch work (invoke never blocks on queue capacity), and the
// engine workers ride the capacity waitlist instead of convoying in push
// (waitlist_parks > 0 is asserted — a zero means this bench stopped
// exercising the overload path and must be retuned). Emits
// BENCH_overload.json so future admission changes diff against this
// baseline.

#include <chrono>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/client.hpp"
#include "bench_util.hpp"
#include "circuit/library.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"

int main() {
  using namespace qon;
  bench::print_header("overload", "50k-run flood vs a 4k queue behind the admission gate");

  constexpr std::size_t kInvokes = 50000;
  core::QonductorConfig config;
  config.num_qpus = 8;
  config.seed = 20250807;
  config.trajectory_width_limit = 0;  // analytic model: isolate orchestration cost
  config.executor_threads = 4;
  config.scheduler_service.queue_capacity = 4096;
  config.scheduler_service.queue_threshold = 4096;  // cycles fire full or on linger
  config.scheduler_service.max_batch_size = 512;
  config.scheduler_service.linger = std::chrono::milliseconds(5);
  config.admission.max_live_runs = 6000;
  api::QonductorClient client(config);

  api::CreateWorkflowRequest create;
  create.name = "overload";
  create.tasks.push_back(workflow::HybridTask::quantum("ghz", circuit::ghz(3), 128));
  const auto created = client.createWorkflow(std::move(create));
  if (!created.ok()) throw std::runtime_error(created.status().to_string());
  api::DeployRequest deploy;
  deploy.image = created->image;
  if (const auto deployed = client.deploy(deploy); !deployed.ok()) {
    throw std::runtime_error(deployed.status().to_string());
  }

  // The flood: 7:2:1 batch:standard:interactive, per-invoke admission
  // latency sampled for the interactive class (the paper's latency-critical
  // tier — the gate must answer in microseconds whether it admits or sheds).
  std::vector<api::RunHandle> admitted;
  std::vector<double> interactive_us;
  interactive_us.reserve(kInvokes / 10 + 1);
  std::size_t shed_with_hint = 0;
  Stopwatch wall;
  for (std::size_t i = 0; i < kInvokes; ++i) {
    api::InvokeRequest request;
    request.image = created->image;
    const std::size_t slot = i % 10;
    request.preferences.priority = slot == 0   ? api::Priority::kInteractive
                                   : slot <= 2 ? api::Priority::kStandard
                                               : api::Priority::kBatch;
    const bool sample = request.preferences.priority == api::Priority::kInteractive;
    const auto before = std::chrono::steady_clock::now();
    auto handle = client.invoke(request);
    if (sample) {
      interactive_us.push_back(
          std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - before)
              .count());
    }
    if (handle.ok()) {
      admitted.push_back(*std::move(handle));
    } else if (handle.status().code() == api::StatusCode::kResourceExhausted &&
               handle.status().retry_after_seconds().has_value()) {
      ++shed_with_hint;
    } else {
      throw std::runtime_error("unexpected invoke failure: " + handle.status().to_string());
    }
  }
  const double flood_seconds = wall.seconds();

  std::size_t completed = 0;
  for (const auto& handle : admitted) {
    if (handle.wait() == api::RunStatus::kCompleted) ++completed;
  }
  const double drain_seconds = wall.seconds() - flood_seconds;

  const auto admission = client.getAdmissionStats();
  if (!admission.ok()) throw std::runtime_error(admission.status().to_string());
  const auto& stats = admission->stats;
  const auto lane = [](api::Priority p) { return static_cast<std::size_t>(p); };
  const std::uint64_t total_shed = stats.shed[lane(api::Priority::kBatch)] +
                                   stats.shed[lane(api::Priority::kStandard)] +
                                   stats.shed[lane(api::Priority::kInteractive)];

  TextTable table({"metric", "value"});
  table.add_row({"invocations", std::to_string(kInvokes)});
  table.add_row({"admitted", std::to_string(admitted.size())});
  table.add_row({"completed", std::to_string(completed)});
  table.add_row({"shed (batch)", std::to_string(stats.shed[lane(api::Priority::kBatch)])});
  table.add_row({"shed (standard)", std::to_string(stats.shed[lane(api::Priority::kStandard)])});
  table.add_row(
      {"shed (interactive)", std::to_string(stats.shed[lane(api::Priority::kInteractive)])});
  table.add_row({"interactive admit p50 [us]", TextTable::num(percentile(interactive_us, 50.0), 2)});
  table.add_row({"interactive admit p95 [us]", TextTable::num(percentile(interactive_us, 95.0), 2)});
  table.add_row({"waitlist parks", std::to_string(stats.waitlist_parks)});
  table.add_row({"waitlist high watermark", std::to_string(stats.waitlist_high_watermark)});
  table.add_row({"flood wall time [s]", TextTable::num(flood_seconds, 2)});
  table.add_row({"drain wall time [s]", TextTable::num(drain_seconds, 2)});
  table.print(std::cout, "overload front door");

  const std::string json_path = bench::artifact_path("BENCH_overload.json");
  std::ofstream json(json_path);
  json << "{\n"
       << "  \"bench\": \"overload\",\n"
       << "  \"invocations\": " << kInvokes << ",\n"
       << "  \"queue_capacity\": " << config.scheduler_service.queue_capacity << ",\n"
       << "  \"max_live_runs\": " << config.admission.max_live_runs << ",\n"
       << "  \"admitted\": " << admitted.size() << ",\n"
       << "  \"completed\": " << completed << ",\n"
       << "  \"shed_batch\": " << stats.shed[lane(api::Priority::kBatch)] << ",\n"
       << "  \"shed_standard\": " << stats.shed[lane(api::Priority::kStandard)] << ",\n"
       << "  \"shed_interactive\": " << stats.shed[lane(api::Priority::kInteractive)] << ",\n"
       << "  \"interactive_admit_p50_us\": " << percentile(interactive_us, 50.0) << ",\n"
       << "  \"interactive_admit_p95_us\": " << percentile(interactive_us, 95.0) << ",\n"
       << "  \"waitlist_parks\": " << stats.waitlist_parks << ",\n"
       << "  \"waitlist_high_watermark\": " << stats.waitlist_high_watermark << ",\n"
       << "  \"flood_wall_seconds\": " << flood_seconds << ",\n"
       << "  \"drain_wall_seconds\": " << drain_seconds << "\n"
       << "}\n";
  std::cout << "\nwrote " << json_path << "\n";

  bench::print_comparison("overload sheds instead of queueing unboundedly",
                          "graceful degradation under flood (Qonductor design goal)",
                          std::to_string(total_shed) + " shed, all with retry-after hints");

  // Sanity gates: the flood must actually exercise both overload paths.
  if (admitted.size() != completed) {
    std::cerr << "FAIL: " << (admitted.size() - completed) << " admitted runs did not complete\n";
    return 1;
  }
  if (total_shed == 0 || shed_with_hint != total_shed) {
    std::cerr << "FAIL: expected every shed to be RESOURCE_EXHAUSTED with a retry-after hint "
              << "(shed=" << total_shed << ", with-hint=" << shed_with_hint << ")\n";
    return 1;
  }
  if (stats.waitlist_parks == 0) {
    std::cerr << "FAIL: the flood never hit the capacity waitlist — overload path untested\n";
    return 1;
  }
  if (stats.waitlist_depth != 0) {
    std::cerr << "FAIL: " << stats.waitlist_depth << " tasks stranded on the waitlist\n";
    return 1;
  }
  return 0;
}
