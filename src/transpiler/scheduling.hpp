#pragma once
// ASAP scheduling of a physical circuit against a backend's calibrated gate
// durations. Produces the circuit duration (the quantum execution time of a
// single shot) and per-qubit busy/idle breakdowns used by the decoherence
// term of the fidelity estimators and by dynamical decoupling.

#include <vector>

#include "circuit/circuit.hpp"
#include "qpu/backend.hpp"

namespace qon::qpu {
class Backend;
}

namespace qon::transpiler {

/// Result of scheduling one circuit execution (single shot).
struct ScheduleResult {
  double duration = 0.0;               ///< critical-path length [s]
  std::vector<double> qubit_busy;      ///< per-physical-qubit active time [s]
  std::vector<double> qubit_idle;      ///< duration - busy, for active qubits
  std::vector<bool> qubit_active;      ///< touched by at least one gate
};

/// Gate duration according to `backend` calibration; rz/barrier are free.
double gate_duration(const circuit::Gate& gate, const qpu::Backend& backend);

/// ASAP-schedules `circ` (already physical / routed) on `backend`.
ScheduleResult asap_schedule(const circuit::Circuit& circ, const qpu::Backend& backend);

/// Total quantum runtime of a job: shots x (circuit duration + per-shot
/// reset/repetition overhead, IBM-like 250 us by default).
double job_quantum_runtime(const ScheduleResult& schedule, int shots,
                           double rep_delay = 250e-6);

/// Overload using the backend's calibrated repetition delay.
double job_quantum_runtime(const ScheduleResult& schedule, int shots,
                           const qpu::Backend& backend);

}  // namespace qon::transpiler
