#pragma once
// Initial qubit placement: maps logical circuit qubits onto a connected,
// low-error region of the physical device. Greedy heuristic in the spirit
// of Qiskit's noise-adaptive layout: seed at the best-quality physical
// qubit, grow a connected region preferring low two-qubit error couplers,
// then order logical qubits by interaction degree.

#include <vector>

#include "circuit/circuit.hpp"
#include "qpu/backend.hpp"

namespace qon::transpiler {

/// logical_to_physical[l] = physical qubit hosting logical qubit l.
struct Layout {
  std::vector<int> logical_to_physical;

  /// Inverse map sized to `num_physical`; unassigned physical slots get -1.
  std::vector<int> physical_to_logical(int num_physical) const;
};

/// Chooses a placement for `circ` on `backend`. Throws std::invalid_argument
/// when the circuit is wider than the device.
Layout choose_layout(const circuit::Circuit& circ, const qpu::Backend& backend);

/// Trivial identity layout (logical i -> physical i), for tests/ablations.
Layout trivial_layout(int num_logical);

}  // namespace qon::transpiler
