#include "transpiler/layout.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace qon::transpiler {

std::vector<int> Layout::physical_to_logical(int num_physical) const {
  std::vector<int> inverse(static_cast<std::size_t>(num_physical), -1);
  for (std::size_t l = 0; l < logical_to_physical.size(); ++l) {
    inverse[static_cast<std::size_t>(logical_to_physical[l])] = static_cast<int>(l);
  }
  return inverse;
}

Layout trivial_layout(int num_logical) {
  Layout layout;
  layout.logical_to_physical.resize(static_cast<std::size_t>(num_logical));
  std::iota(layout.logical_to_physical.begin(), layout.logical_to_physical.end(), 0);
  return layout;
}

namespace {

// Average error of the couplers incident to physical qubit p, combined with
// its readout error; lower is better.
double qubit_badness(const qpu::Backend& backend, int p) {
  const auto& cal = backend.calibration();
  const auto& adj = backend.topology().adjacency()[static_cast<std::size_t>(p)];
  double edge_err = 0.0;
  for (int n : adj) edge_err += cal.edge(p, n).gate_error_2q;
  if (!adj.empty()) edge_err /= static_cast<double>(adj.size());
  return edge_err + cal.qubits[static_cast<std::size_t>(p)].readout_error +
         cal.qubits[static_cast<std::size_t>(p)].gate_error_1q;
}

}  // namespace

Layout choose_layout(const circuit::Circuit& circ, const qpu::Backend& backend) {
  const int n_logical = circ.num_qubits();
  const int n_physical = backend.num_qubits();
  if (n_logical > n_physical) {
    throw std::invalid_argument("choose_layout: circuit wider than backend");
  }

  // 1. Grow a connected physical region of size n_logical, greedily adding
  //    the frontier qubit with the lowest badness.
  int seed = 0;
  double best = qubit_badness(backend, 0);
  for (int p = 1; p < n_physical; ++p) {
    const double b = qubit_badness(backend, p);
    if (b < best) {
      best = b;
      seed = p;
    }
  }
  std::vector<int> region{seed};
  std::vector<bool> in_region(static_cast<std::size_t>(n_physical), false);
  in_region[static_cast<std::size_t>(seed)] = true;
  while (static_cast<int>(region.size()) < n_logical) {
    int pick = -1;
    double pick_badness = 0.0;
    for (int r : region) {
      for (int nb : backend.topology().adjacency()[static_cast<std::size_t>(r)]) {
        if (in_region[static_cast<std::size_t>(nb)]) continue;
        const double b = qubit_badness(backend, nb);
        if (pick < 0 || b < pick_badness) {
          pick = nb;
          pick_badness = b;
        }
      }
    }
    if (pick < 0) {
      throw std::invalid_argument("choose_layout: device region not large enough (disconnected)");
    }
    region.push_back(pick);
    in_region[static_cast<std::size_t>(pick)] = true;
  }

  // 2. Order logical qubits by two-qubit interaction degree (descending) so
  //    hot qubits land on the earliest (best) region slots.
  std::vector<int> degree(static_cast<std::size_t>(n_logical), 0);
  for (const auto& g : circ.gates()) {
    if (circuit::is_two_qubit(g.kind)) {
      ++degree[static_cast<std::size_t>(g.qubit(0))];
      ++degree[static_cast<std::size_t>(g.qubit(1))];
    }
  }
  std::vector<int> logical_order(static_cast<std::size_t>(n_logical));
  std::iota(logical_order.begin(), logical_order.end(), 0);
  std::stable_sort(logical_order.begin(), logical_order.end(), [&degree](int a, int b) {
    return degree[static_cast<std::size_t>(a)] > degree[static_cast<std::size_t>(b)];
  });

  Layout layout;
  layout.logical_to_physical.assign(static_cast<std::size_t>(n_logical), -1);
  for (int i = 0; i < n_logical; ++i) {
    layout.logical_to_physical[static_cast<std::size_t>(logical_order[static_cast<std::size_t>(i)])] =
        region[static_cast<std::size_t>(i)];
  }
  return layout;
}

}  // namespace qon::transpiler
