#pragma once
// The full transpilation pipeline: basis decomposition -> layout -> routing
// -> SWAP lowering -> rotation merging -> scheduling. This is the C++
// stand-in for the Qiskit transpiler the paper relies on.

#include "circuit/circuit.hpp"
#include "qpu/backend.hpp"
#include "transpiler/basis.hpp"
#include "transpiler/layout.hpp"
#include "transpiler/routing.hpp"
#include "transpiler/scheduling.hpp"

namespace qon::transpiler {

/// A circuit compiled to one backend, with placement and timing metadata.
struct TranspileResult {
  circuit::Circuit circuit;          ///< physical, basis-only, coupling-legal
  std::vector<int> initial_layout;   ///< logical -> physical
  std::vector<int> final_layout;
  std::size_t swaps_inserted = 0;
  ScheduleResult schedule;           ///< ASAP timing on the target backend
};

/// Compiles `circ` for `backend`. Throws std::invalid_argument when the
/// circuit does not fit the device.
TranspileResult transpile(const circuit::Circuit& circ, const qpu::Backend& backend);

/// Variant with a caller-provided layout (ablation / tests).
TranspileResult transpile_with_layout(const circuit::Circuit& circ, const qpu::Backend& backend,
                                      const Layout& layout);

}  // namespace qon::transpiler
