#pragma once
// SWAP routing: makes every two-qubit gate act on adjacent physical qubits
// by inserting SWAP chains along shortest paths (Qiskit "basic swap" style),
// tracking the evolving logical->physical mapping.

#include <vector>

#include "circuit/circuit.hpp"
#include "qpu/topology.hpp"
#include "transpiler/layout.hpp"

namespace qon::transpiler {

/// Result of routing a logical circuit onto a topology.
struct RoutingResult {
  circuit::Circuit circuit;        ///< physical circuit (width = device size)
  std::vector<int> initial_layout; ///< logical -> physical before the first gate
  std::vector<int> final_layout;   ///< logical -> physical after the last gate
  std::size_t swaps_inserted = 0;
};

/// Routes `circ` (logical indices) onto `topology` starting from `layout`.
/// Measurement gates keep their classical-bit operand, so counts stay in
/// logical order regardless of where qubits end up.
RoutingResult route(const circuit::Circuit& circ, const qpu::Topology& topology,
                    const Layout& layout);

}  // namespace qon::transpiler
