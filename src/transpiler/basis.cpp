#include "transpiler/basis.hpp"

#include <cmath>
#include <stdexcept>

namespace qon::transpiler {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

constexpr double kPi = M_PI;

// Emits RX/RY as ZXZXZ Euler sequences derived from
// U3(theta, phi, lambda) = RZ(phi+pi) SX RZ(theta+pi) SX RZ(lambda)
// (up to global phase). Circuit order is right-to-left of the product.
void emit_u3(Circuit& out, int q, double theta, double phi, double lambda) {
  out.rz(q, lambda);
  out.sx(q);
  out.rz(q, theta + kPi);
  out.sx(q);
  out.rz(q, phi + kPi);
}

void emit_h(Circuit& out, int q) {
  // H = RZ(pi/2) SX RZ(pi/2) up to global phase.
  out.rz(q, kPi / 2.0);
  out.sx(q);
  out.rz(q, kPi / 2.0);
}

void lower_gate(Circuit& out, const Gate& g, const qpu::QpuModel& model) {
  if (model.in_basis(g.kind)) {
    out.append(g);
    return;
  }
  const int q = g.qubit(0);
  switch (g.kind) {
    case GateKind::kZ:
      out.rz(q, kPi);
      break;
    case GateKind::kS:
      out.rz(q, kPi / 2.0);
      break;
    case GateKind::kSdg:
      out.rz(q, -kPi / 2.0);
      break;
    case GateKind::kT:
      out.rz(q, kPi / 4.0);
      break;
    case GateKind::kTdg:
      out.rz(q, -kPi / 4.0);
      break;
    case GateKind::kH:
      emit_h(out, q);
      break;
    case GateKind::kY:
      // Y = X * RZ(pi) up to global phase (apply RZ first).
      out.rz(q, kPi);
      out.x(q);
      break;
    case GateKind::kX:
      // Reachable only if X is not native: X = SX SX.
      out.sx(q);
      out.sx(q);
      break;
    case GateKind::kRX:
      emit_u3(out, q, g.param, -kPi / 2.0, kPi / 2.0);
      break;
    case GateKind::kRY:
      emit_u3(out, q, g.param, 0.0, 0.0);
      break;
    case GateKind::kCZ:
      // CZ = (I ⊗ H) CX (I ⊗ H).
      emit_h(out, g.qubit(1));
      out.cx(g.qubit(0), g.qubit(1));
      emit_h(out, g.qubit(1));
      break;
    case GateKind::kSwap:
      out.cx(g.qubit(0), g.qubit(1));
      out.cx(g.qubit(1), g.qubit(0));
      out.cx(g.qubit(0), g.qubit(1));
      break;
    case GateKind::kRZZ:
      out.cx(g.qubit(0), g.qubit(1));
      out.rz(g.qubit(1), g.param);
      out.cx(g.qubit(0), g.qubit(1));
      break;
    default:
      throw std::invalid_argument("decompose_to_basis: cannot lower gate " + g.to_string());
  }
}

}  // namespace

Circuit decompose_to_basis(const Circuit& input, const qpu::QpuModel& model) {
  Circuit out(input.num_qubits(), input.name());
  bool changed = true;
  Circuit current = input;
  // Iterate to a fixed point: some lowerings (e.g. SWAP -> CX when CX is
  // itself non-native) produce gates that need another pass. Two passes
  // suffice for every basis we ship; the loop guards against regressions.
  int rounds = 0;
  while (changed) {
    if (++rounds > 4) throw std::logic_error("decompose_to_basis: lowering did not converge");
    changed = false;
    Circuit next(current.num_qubits(), current.name());
    for (const auto& g : current.gates()) {
      const std::size_t before = next.size();
      lower_gate(next, g, model);
      if (next.size() != before + 1 || !(next.gates().back() == g)) changed = true;
    }
    current = std::move(next);
  }
  out = merge_rotations(current);
  return out;
}

Circuit merge_rotations(const Circuit& input) {
  Circuit out(input.num_qubits(), input.name());
  // pending[q] holds an accumulated RZ angle not yet emitted.
  std::vector<double> pending(static_cast<std::size_t>(input.num_qubits()), 0.0);
  auto flush = [&out, &pending](int q) {
    double& angle = pending[static_cast<std::size_t>(q)];
    // Normalize into (-2pi, 2pi); drop exact zeros.
    angle = std::fmod(angle, 2.0 * M_PI);
    if (std::abs(angle) > 1e-12) out.rz(q, angle);
    angle = 0.0;
  };
  for (const auto& g : input.gates()) {
    if (g.kind == GateKind::kRZ) {
      pending[static_cast<std::size_t>(g.qubit(0))] += g.param;
      continue;
    }
    if (g.kind == GateKind::kBarrier) {
      for (int q = 0; q < input.num_qubits(); ++q) flush(q);
      out.append(g);
      continue;
    }
    for (int i = 0; i < g.arity(); ++i) flush(g.qubit(i));
    out.append(g);
  }
  for (int q = 0; q < input.num_qubits(); ++q) flush(q);
  return out;
}

}  // namespace qon::transpiler
