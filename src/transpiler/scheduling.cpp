#include "transpiler/scheduling.hpp"

#include <algorithm>
#include <stdexcept>

namespace qon::transpiler {

using circuit::GateKind;

double gate_duration(const circuit::Gate& gate, const qpu::Backend& backend) {
  const auto& cal = backend.calibration();
  switch (gate.kind) {
    case GateKind::kRZ:
    case GateKind::kBarrier:
    case GateKind::kI:
      return 0.0;  // rz is virtual on IBM hardware
    case GateKind::kMeasure:
      return cal.qubits[static_cast<std::size_t>(gate.qubit(0))].readout_duration;
    case GateKind::kDelay:
      return gate.param;
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSwap:
    case GateKind::kRZZ:
      return cal.edge(gate.qubit(0), gate.qubit(1)).gate_duration_2q;
    default:
      return cal.qubits[static_cast<std::size_t>(gate.qubit(0))].gate_duration_1q;
  }
}

ScheduleResult asap_schedule(const circuit::Circuit& circ, const qpu::Backend& backend) {
  if (circ.num_qubits() > backend.num_qubits()) {
    throw std::invalid_argument("asap_schedule: circuit wider than backend");
  }
  const auto n = static_cast<std::size_t>(circ.num_qubits());
  ScheduleResult result;
  result.qubit_busy.assign(n, 0.0);
  result.qubit_idle.assign(n, 0.0);
  result.qubit_active.assign(n, false);

  std::vector<double> ready(n, 0.0);  // earliest start time per qubit
  for (const auto& g : circ.gates()) {
    if (g.kind == GateKind::kBarrier) {
      const double sync = *std::max_element(ready.begin(), ready.end());
      std::fill(ready.begin(), ready.end(), sync);
      continue;
    }
    const double dur = gate_duration(g, backend);
    double start = 0.0;
    for (int i = 0; i < g.arity(); ++i) {
      start = std::max(start, ready[static_cast<std::size_t>(g.qubit(i))]);
    }
    const double finish = start + dur;
    for (int i = 0; i < g.arity(); ++i) {
      const auto q = static_cast<std::size_t>(g.qubit(i));
      ready[q] = finish;
      result.qubit_busy[q] += dur;
      result.qubit_active[q] = true;
    }
    result.duration = std::max(result.duration, finish);
  }
  for (std::size_t q = 0; q < n; ++q) {
    result.qubit_idle[q] = result.qubit_active[q] ? result.duration - result.qubit_busy[q] : 0.0;
  }
  return result;
}

double job_quantum_runtime(const ScheduleResult& schedule, int shots, double rep_delay) {
  if (shots <= 0) throw std::invalid_argument("job_quantum_runtime: shots must be > 0");
  return static_cast<double>(shots) * (schedule.duration + rep_delay);
}

double job_quantum_runtime(const ScheduleResult& schedule, int shots,
                           const qpu::Backend& backend) {
  return job_quantum_runtime(schedule, shots, backend.calibration().rep_delay);
}

}  // namespace qon::transpiler
