#include "transpiler/routing.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace qon::transpiler {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

// Shortest path between physical qubits via BFS.
std::vector<int> shortest_path(const qpu::Topology& topology, int from, int to) {
  std::vector<int> parent(static_cast<std::size_t>(topology.num_qubits()), -1);
  std::queue<int> frontier;
  frontier.push(from);
  parent[static_cast<std::size_t>(from)] = from;
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    if (u == to) break;
    for (int v : topology.adjacency()[static_cast<std::size_t>(u)]) {
      if (parent[static_cast<std::size_t>(v)] >= 0) continue;
      parent[static_cast<std::size_t>(v)] = u;
      frontier.push(v);
    }
  }
  if (parent[static_cast<std::size_t>(to)] < 0) {
    throw std::invalid_argument("route: physical qubits disconnected");
  }
  std::vector<int> path{to};
  while (path.back() != from) path.push_back(parent[static_cast<std::size_t>(path.back())]);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

RoutingResult route(const Circuit& circ, const qpu::Topology& topology, const Layout& layout) {
  if (layout.logical_to_physical.size() != static_cast<std::size_t>(circ.num_qubits())) {
    throw std::invalid_argument("route: layout size mismatch");
  }
  RoutingResult result;
  result.initial_layout = layout.logical_to_physical;
  result.circuit = Circuit(topology.num_qubits(), circ.name());

  // l2p[l] = physical position of logical qubit l (evolves as we swap).
  std::vector<int> l2p = layout.logical_to_physical;

  auto physical_of = [&l2p](int logical) { return l2p[static_cast<std::size_t>(logical)]; };
  auto swap_physical = [&](int pa, int pb) {
    // Update the logical->physical map after a physical SWAP(pa, pb).
    for (auto& p : l2p) {
      if (p == pa) {
        p = pb;
      } else if (p == pb) {
        p = pa;
      }
    }
  };

  for (const auto& g : circ.gates()) {
    if (g.kind == GateKind::kBarrier) {
      result.circuit.append(g);
      continue;
    }
    if (g.kind == GateKind::kMeasure) {
      result.circuit.measure(physical_of(g.qubit(0)), g.qubits[1]);
      continue;
    }
    if (!circuit::is_two_qubit(g.kind)) {
      Gate mapped = g;
      mapped.qubits[0] = physical_of(g.qubit(0));
      result.circuit.append(mapped);
      continue;
    }
    // Two-qubit gate: walk the control toward the target until adjacent.
    int pa = physical_of(g.qubit(0));
    int pb = physical_of(g.qubit(1));
    if (!topology.connected(pa, pb)) {
      const auto path = shortest_path(topology, pa, pb);
      // Swap along the path, leaving the moving qubit adjacent to pb.
      for (std::size_t i = 0; i + 2 < path.size(); ++i) {
        result.circuit.swap(path[i], path[i + 1]);
        swap_physical(path[i], path[i + 1]);
        ++result.swaps_inserted;
      }
      pa = physical_of(g.qubit(0));
      pb = physical_of(g.qubit(1));
    }
    Gate mapped = g;
    mapped.qubits[0] = pa;
    mapped.qubits[1] = pb;
    result.circuit.append(mapped);
  }
  result.final_layout = l2p;
  return result;
}

}  // namespace qon::transpiler
