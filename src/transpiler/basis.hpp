#pragma once
// Basis translation: lowers arbitrary IR gates to a backend's native basis
// (the Falcon-like {RZ, SX, X, CX} by default), plus a peephole pass that
// merges adjacent RZ rotations. All decompositions are exact up to global
// phase and are verified against the state-vector simulator in tests.

#include "circuit/circuit.hpp"
#include "qpu/backend.hpp"

namespace qon::transpiler {

/// Rewrites `input` so every gate is in `model.basis_gates` (measure,
/// barrier, delay and id always pass through). Throws std::invalid_argument
/// if a gate cannot be lowered to the target basis.
circuit::Circuit decompose_to_basis(const circuit::Circuit& input, const qpu::QpuModel& model);

/// Merges consecutive RZ gates on the same qubit and removes zero-angle
/// rotations. Safe on any circuit; used after decomposition.
circuit::Circuit merge_rotations(const circuit::Circuit& input);

}  // namespace qon::transpiler
