#include "transpiler/transpiler.hpp"

namespace qon::transpiler {

TranspileResult transpile_with_layout(const circuit::Circuit& circ, const qpu::Backend& backend,
                                      const Layout& layout) {
  // 1. Lower to the native basis so routing only sees CX as 2q gate.
  const circuit::Circuit lowered = decompose_to_basis(circ, backend.model());
  // 2. Route on the coupling map.
  RoutingResult routed = route(lowered, backend.topology(), layout);
  // 3. The inserted SWAPs are not basis gates; lower them and re-merge.
  circuit::Circuit physical = decompose_to_basis(routed.circuit, backend.model());

  TranspileResult result;
  result.initial_layout = std::move(routed.initial_layout);
  result.final_layout = std::move(routed.final_layout);
  result.swaps_inserted = routed.swaps_inserted;
  result.schedule = asap_schedule(physical, backend);
  result.circuit = std::move(physical);
  return result;
}

TranspileResult transpile(const circuit::Circuit& circ, const qpu::Backend& backend) {
  return transpile_with_layout(circ, backend, choose_layout(circ, backend));
}

}  // namespace qon::transpiler
