#include "workflow/registry.hpp"

#include <stdexcept>

namespace qon::workflow {

ImageId WorkflowRegistry::register_image(std::string name, WorkflowDag dag, yaml::Node config) {
  WorkflowImage image;
  image.id = next_id_++;
  image.name = std::move(name);
  image.dag = std::move(dag);
  image.config = std::move(config);
  const ImageId id = image.id;
  images_.emplace(id, std::move(image));
  return id;
}

const WorkflowImage* WorkflowRegistry::find(ImageId id) const {
  const auto it = images_.find(id);
  return it == images_.end() ? nullptr : &it->second;
}

const WorkflowImage& WorkflowRegistry::get(ImageId id) const {
  const WorkflowImage* image = find(id);
  if (image == nullptr) throw std::out_of_range("WorkflowRegistry::get: unknown image");
  return *image;
}

std::optional<ImageId> WorkflowRegistry::find_by_name(const std::string& name) const {
  std::optional<ImageId> latest;
  for (const auto& [id, image] : images_) {
    if (image.name == name) latest = id;
  }
  return latest;
}

std::vector<ImageId> WorkflowRegistry::list() const {
  std::vector<ImageId> ids;
  ids.reserve(images_.size());
  for (const auto& [id, image] : images_) {
    (void)image;
    ids.push_back(id);
  }
  return ids;
}

}  // namespace qon::workflow
