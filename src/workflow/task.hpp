#pragma once
// Hybrid task model (§5): a workflow is a DAG of quantum tasks (circuits to
// execute) and classical tasks (pre/post-processing steps with resource
// requests), mirroring the paper's Listing 2 composition of error
// mitigation stages around a QAOA circuit.

#include <string>

#include "circuit/circuit.hpp"
#include "mitigation/pipeline.hpp"
#include "sched/classical_scheduler.hpp"

namespace qon::workflow {

enum class TaskKind { kQuantum, kClassical };

const char* task_kind_name(TaskKind kind);

/// One node of a hybrid workflow.
struct HybridTask {
  TaskKind kind = TaskKind::kClassical;
  std::string name;

  // Quantum payload.
  circuit::Circuit circ;
  int shots = 4000;
  int min_qubits = 0;  ///< client constraint ("qubits: 20" in Listing 1)
  mitigation::MitigationSpec mitigation;

  // Classical payload.
  sched::ClassicalRequest request;
  mitigation::Accelerator accelerator = mitigation::Accelerator::kCpu;
  double estimated_seconds = 0.0;  ///< classical work estimate

  /// Convenience constructors.
  static HybridTask quantum(std::string name, circuit::Circuit circ, int shots = 4000,
                            mitigation::MitigationSpec spec = {});
  static HybridTask classical(std::string name, double estimated_seconds,
                              mitigation::Accelerator accelerator = mitigation::Accelerator::kCpu);
};

}  // namespace qon::workflow
