#pragma once
// Workflow DAG (§5 "Workflow image generation"): G = (V, E) where V are the
// classical and quantum steps and E the control/data-flow dependencies.
// The job manager executes tasks in a dependency-respecting order.

#include <cstddef>
#include <vector>

#include "workflow/task.hpp"

namespace qon::workflow {

using TaskId = std::size_t;

class WorkflowDag {
 public:
  /// Adds a task; returns its id.
  TaskId add_task(HybridTask task);

  /// Declares that `to` depends on `from` (from must finish first).
  /// Throws std::invalid_argument on unknown ids, self-edges, or edges that
  /// would create a cycle.
  void add_dependency(TaskId from, TaskId to);

  std::size_t size() const { return tasks_.size(); }
  const HybridTask& task(TaskId id) const;
  HybridTask& task(TaskId id);
  const std::vector<std::pair<TaskId, TaskId>>& edges() const { return edges_; }

  /// Direct dependencies of a task.
  std::vector<TaskId> dependencies(TaskId id) const;

  /// A topological order (Kahn); throws std::logic_error if cyclic (cannot
  /// normally happen because add_dependency rejects cycles).
  std::vector<TaskId> topological_order() const;

  /// True when an edge path leads from `from` to `to`.
  bool reaches(TaskId from, TaskId to) const;

 private:
  std::vector<HybridTask> tasks_;
  std::vector<std::pair<TaskId, TaskId>> edges_;
};

/// Builds a sequential chain DAG from an ordered task list (the default
/// structure createWorkflow produces from a linear program).
WorkflowDag chain_workflow(std::vector<HybridTask> tasks);

}  // namespace qon::workflow
