#include "workflow/task.hpp"

namespace qon::workflow {

const char* task_kind_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kQuantum: return "quantum";
    case TaskKind::kClassical: return "classical";
  }
  return "?";
}

HybridTask HybridTask::quantum(std::string name, circuit::Circuit circ, int shots,
                               mitigation::MitigationSpec spec) {
  HybridTask task;
  task.kind = TaskKind::kQuantum;
  task.name = std::move(name);
  task.circ = std::move(circ);
  task.shots = shots;
  task.mitigation = std::move(spec);
  task.min_qubits = task.circ.num_qubits();
  return task;
}

HybridTask HybridTask::classical(std::string name, double estimated_seconds,
                                 mitigation::Accelerator accelerator) {
  HybridTask task;
  task.kind = TaskKind::kClassical;
  task.name = std::move(name);
  task.estimated_seconds = estimated_seconds;
  task.accelerator = accelerator;
  task.request = sched::request_for_accelerator(accelerator);
  return task;
}

}  // namespace qon::workflow
