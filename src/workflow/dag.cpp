#include "workflow/dag.hpp"

#include <queue>
#include <stdexcept>

namespace qon::workflow {

TaskId WorkflowDag::add_task(HybridTask task) {
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

const HybridTask& WorkflowDag::task(TaskId id) const {
  if (id >= tasks_.size()) throw std::out_of_range("WorkflowDag::task");
  return tasks_[id];
}

HybridTask& WorkflowDag::task(TaskId id) {
  if (id >= tasks_.size()) throw std::out_of_range("WorkflowDag::task");
  return tasks_[id];
}

bool WorkflowDag::reaches(TaskId from, TaskId to) const {
  std::vector<bool> visited(tasks_.size(), false);
  std::queue<TaskId> frontier;
  frontier.push(from);
  visited[from] = true;
  while (!frontier.empty()) {
    const TaskId u = frontier.front();
    frontier.pop();
    if (u == to) return true;
    for (const auto& [a, b] : edges_) {
      if (a == u && !visited[b]) {
        visited[b] = true;
        frontier.push(b);
      }
    }
  }
  return false;
}

void WorkflowDag::add_dependency(TaskId from, TaskId to) {
  if (from >= tasks_.size() || to >= tasks_.size()) {
    throw std::invalid_argument("WorkflowDag::add_dependency: unknown task");
  }
  if (from == to) throw std::invalid_argument("WorkflowDag::add_dependency: self-edge");
  if (reaches(to, from)) {
    throw std::invalid_argument("WorkflowDag::add_dependency: would create a cycle");
  }
  edges_.emplace_back(from, to);
}

std::vector<TaskId> WorkflowDag::dependencies(TaskId id) const {
  std::vector<TaskId> deps;
  for (const auto& [from, to] : edges_) {
    if (to == id) deps.push_back(from);
  }
  return deps;
}

std::vector<TaskId> WorkflowDag::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size(), 0);
  for (const auto& [from, to] : edges_) {
    (void)from;
    ++in_degree[to];
  }
  std::queue<TaskId> ready;
  for (TaskId t = 0; t < tasks_.size(); ++t) {
    if (in_degree[t] == 0) ready.push(t);
  }
  std::vector<TaskId> order;
  while (!ready.empty()) {
    const TaskId t = ready.front();
    ready.pop();
    order.push_back(t);
    for (const auto& [from, to] : edges_) {
      if (from == t && --in_degree[to] == 0) ready.push(to);
    }
  }
  if (order.size() != tasks_.size()) {
    throw std::logic_error("WorkflowDag::topological_order: cycle detected");
  }
  return order;
}

WorkflowDag chain_workflow(std::vector<HybridTask> tasks) {
  WorkflowDag dag;
  TaskId prev = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const TaskId id = dag.add_task(std::move(tasks[i]));
    if (i > 0) dag.add_dependency(prev, id);
    prev = id;
  }
  return dag;
}

}  // namespace qon::workflow
