#pragma once
// Hybrid workflow images and the workflow registry (§5): packaged,
// reusable, distributable workflow definitions keyed by image id. Images
// bundle the task DAG with the YAML deployment configuration (Listing 1).

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "workflow/dag.hpp"
#include "yamlite/yamlite.hpp"

namespace qon::workflow {

using ImageId = std::uint64_t;

/// A packaged hybrid workflow.
struct WorkflowImage {
  ImageId id = 0;
  std::string name;
  WorkflowDag dag;
  yaml::Node config;  ///< deployment configuration (accelerator/QPU prefs)
};

/// In-memory image repository.
class WorkflowRegistry {
 public:
  /// Registers an image and assigns its id. Names need not be unique;
  /// lookup by name returns the latest registration.
  ImageId register_image(std::string name, WorkflowDag dag, yaml::Node config);

  /// Fetch by id; nullptr when absent. The registry is append-only, so the
  /// returned pointer stays valid for the registry's lifetime.
  const WorkflowImage* find(ImageId id) const;

  /// @deprecated Compat wrapper over find(); throws std::out_of_range when
  /// absent.
  const WorkflowImage& get(ImageId id) const;

  /// Latest image registered under `name`, if any.
  std::optional<ImageId> find_by_name(const std::string& name) const;

  /// All registered images, oldest first.
  std::vector<ImageId> list() const;

  std::size_t size() const { return images_.size(); }

 private:
  std::map<ImageId, WorkflowImage> images_;
  ImageId next_id_ = 1;
};

}  // namespace qon::workflow
