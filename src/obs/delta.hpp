#pragma once
// Snapshot arithmetic for periodic metric streaming: interval deltas
// between two api::MetricsSnapshot readings and lookup by (name, labels).
// The campaign driver samples the registry once per stats interval and
// streams the *differences* — counters and histogram buckets subtract,
// gauges pass through — so long campaigns never accumulate per-run state.

#include <string>

#include "api/types.hpp"

namespace qon::obs {

/// The change from `prev` to `cur`: counters, histogram bucket counts,
/// sums and counts are subtracted; gauges take the current reading.
/// Metrics are matched by (name, labels); a metric present only in `cur`
/// (registered mid-interval) contributes its full current value. Metrics
/// present only in `prev` are dropped (registrations never disappear in
/// practice — the registry hands out stable pointers).
api::MetricsSnapshot snapshot_delta(const api::MetricsSnapshot& prev,
                                    const api::MetricsSnapshot& cur);

/// Finds a metric by exact (name, labels) match; nullptr when absent.
const api::MetricValue* find_metric(const api::MetricsSnapshot& snapshot,
                                    const std::string& name,
                                    const std::string& labels = "");

/// Sums `value` over every metric in the family `name`, across all label
/// sets — e.g. total runs finished regardless of terminal status.
double sum_metric_family(const api::MetricsSnapshot& snapshot,
                         const std::string& name);

}  // namespace qon::obs
