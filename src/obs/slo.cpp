#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace qon::obs {

namespace {

std::size_t priority_index(api::Priority priority) {
  return static_cast<std::size_t>(priority);
}

}  // namespace

SloMonitor::SloMonitor(std::array<double, api::kNumPriorities> slo_seconds,
                       std::vector<SloRule> rules, double bucket_seconds)
    : bucket_seconds_(bucket_seconds > 0.0 ? bucket_seconds : 60.0),
      slo_seconds_(slo_seconds) {
  // Ring must span the longest window a rule can ask for, plus one bucket
  // of slack so the partially filled "current" bucket never evicts the
  // oldest one still inside the window.
  double longest = 3600.0;
  for (const SloRule& rule : rules) {
    longest = std::max({longest, rule.fast_window_seconds,
                        rule.slow_window_seconds});
  }
  const std::size_t size =
      static_cast<std::size_t>(std::ceil(longest / bucket_seconds_)) + 1;
  MutexLock lock(mutex_);
  for (auto& ring : rings_) {
    ring.assign(size, Bucket{});
  }
  rules_.reserve(rules.size());
  for (SloRule& rule : rules) {
    RuleState state;
    state.rule = std::move(rule);
    rules_.push_back(std::move(state));
  }
}

void SloMonitor::record(api::Priority priority, double latency_seconds,
                        double now_virtual, bool completed) {
  const std::size_t p = priority_index(priority);
  if (p >= api::kNumPriorities || slo_seconds_[p] <= 0.0) {
    return;  // untracked class
  }
  const bool good = completed && latency_seconds <= slo_seconds_[p];
  const std::int64_t index =
      static_cast<std::int64_t>(std::floor(std::max(0.0, now_virtual) /
                                           bucket_seconds_));
  MutexLock lock(mutex_);
  auto& ring = rings_[p];
  Bucket& bucket = ring[static_cast<std::size_t>(index) % ring.size()];
  if (bucket.index != index) {
    bucket.index = index;  // slot recycled from a lap ago (or first use)
    bucket.good = 0;
    bucket.total = 0;
  }
  bucket.total += 1;
  if (good) {
    bucket.good += 1;
  }
  recorded_ += 1;
}

SloMonitor::Burn SloMonitor::burn_locked(api::Priority priority,
                                         double window_seconds, double target,
                                         double now_virtual) const {
  Burn burn;
  const std::size_t p = priority_index(priority);
  if (p >= api::kNumPriorities) {
    return burn;
  }
  const auto& ring = rings_[p];
  for (const Bucket& bucket : ring) {
    if (bucket.index < 0) {
      continue;
    }
    const double start = static_cast<double>(bucket.index) * bucket_seconds_;
    // Count buckets overlapping (now - window, now]; stale slots a lap
    // behind fail the first test and are skipped.
    if (start <= now_virtual && start + bucket_seconds_ > now_virtual - window_seconds) {
      burn.good += bucket.good;
      burn.total += bucket.total;
    }
  }
  if (burn.total > 0) {
    const double budget = std::max(1e-9, 1.0 - target);
    const double bad = static_cast<double>(burn.total - burn.good);
    burn.rate = (bad / static_cast<double>(burn.total)) / budget;
  }
  return burn;
}

SloMonitor::Burn SloMonitor::burn(api::Priority priority, double window_seconds,
                                  double target, double now_virtual) const {
  MutexLock lock(mutex_);
  return burn_locked(priority, window_seconds, target, now_virtual);
}

std::vector<AlertTransition> SloMonitor::evaluate(double now_virtual) {
  std::vector<AlertTransition> transitions;
  MutexLock lock(mutex_);
  for (RuleState& state : rules_) {
    const SloRule& rule = state.rule;
    const Burn fast = burn_locked(rule.priority, rule.fast_window_seconds,
                                  rule.attainment_target, now_virtual);
    const Burn slow = burn_locked(rule.priority, rule.slow_window_seconds,
                                  rule.attainment_target, now_virtual);
    const auto transition = [&](api::AlertState next) {
      state.state = next;
      state.since_virtual = now_virtual;
      AlertTransition event;
      event.rule = rule.name;
      event.priority = rule.priority;
      event.state = next;
      event.at_virtual = now_virtual;
      event.fast_burn = fast.rate;
      event.slow_burn = slow.rate;
      transitions.push_back(std::move(event));
    };
    switch (state.state) {
      case api::AlertState::kResolved:
        // A resolved alert decays silently; then fall through to be
        // re-armed in the same evaluation if the burn is back.
        state.state = api::AlertState::kInactive;
        [[fallthrough]];
      case api::AlertState::kInactive:
        if (fast.total >= rule.min_samples && fast.rate >= rule.burn_threshold) {
          transition(api::AlertState::kPending);
        }
        break;
      case api::AlertState::kPending:
        if (fast.rate >= rule.burn_threshold &&
            slow.rate >= rule.burn_threshold) {
          transition(api::AlertState::kFiring);
        } else if (fast.rate < rule.clear_threshold) {
          transition(api::AlertState::kInactive);
        }
        break;
      case api::AlertState::kFiring:
        if (fast.rate < rule.clear_threshold) {
          transition(api::AlertState::kResolved);
        }
        break;
    }
  }
  return transitions;
}

std::vector<api::AlertInfo> SloMonitor::alerts(double now_virtual) const {
  std::vector<api::AlertInfo> out;
  MutexLock lock(mutex_);
  out.reserve(rules_.size());
  for (const RuleState& state : rules_) {
    const SloRule& rule = state.rule;
    api::AlertInfo info;
    info.rule = rule.name;
    info.priority = rule.priority;
    info.state = state.state;
    info.fast_burn = burn_locked(rule.priority, rule.fast_window_seconds,
                                 rule.attainment_target, now_virtual)
                         .rate;
    info.slow_burn = burn_locked(rule.priority, rule.slow_window_seconds,
                                 rule.attainment_target, now_virtual)
                         .rate;
    info.since_virtual = state.since_virtual;
    out.push_back(std::move(info));
  }
  return out;
}

std::uint64_t SloMonitor::recorded_total() const {
  MutexLock lock(mutex_);
  return recorded_;
}

}  // namespace qon::obs
