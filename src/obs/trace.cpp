#include "obs/trace.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace qon::obs {

RunTraceBuffer::RunTraceBuffer(api::RunId run, std::size_t capacity,
                               Counter* drop_counter)
    : run_(run),
      capacity_(std::max<std::size_t>(1, capacity)),
      drop_counter_(drop_counter) {}

void RunTraceBuffer::record(api::TraceSpan span) {
  MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    // Wrapped: overwrite the oldest slot and advance the ring head.
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % capacity_;
    if (drop_counter_ != nullptr) drop_counter_->inc();
  }
  ++recorded_;
}

api::RunTrace RunTraceBuffer::snapshot() const {
  api::RunTrace out;
  out.run = run_;
  MutexLock lock(mutex_);
  out.recorded = recorded_;
  out.dropped = recorded_ - ring_.size();
  out.spans.reserve(ring_.size());
  // Oldest-first: from the ring head around; before wrap, next_ is 0 and
  // this is a plain copy.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.spans.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

Tracer::Tracer(std::size_t max_runs, std::size_t spans_per_run, TraceSink sink,
               Counter* span_drop_counter)
    : max_runs_(std::max<std::size_t>(1, max_runs)),
      spans_per_run_(spans_per_run),
      sink_(std::move(sink)),
      span_drop_counter_(span_drop_counter),
      epoch_(std::chrono::steady_clock::now()) {}

TraceContext Tracer::start(api::RunId run) {
  auto buffer =
      std::make_shared<RunTraceBuffer>(run, spans_per_run_, span_drop_counter_);
  MutexLock lock(mutex_);
  traces_[run] = buffer;
  order_.push_back(run);
  while (traces_.size() > max_runs_) {
    traces_.erase(order_.front());
    order_.pop_front();
  }
  return buffer;
}

void Tracer::finalize(const TraceContext& trace) const {
  if (sink_ && trace) sink_(trace->snapshot());
}

api::Result<api::RunTrace> Tracer::trace(api::RunId run) const {
  MutexLock lock(mutex_);
  const auto it = traces_.find(run);
  if (it == traces_.end()) {
    return api::NotFound("getRunTrace: no trace for run " + std::to_string(run) +
                         " (unknown id, or evicted from the trace retention window)");
  }
  return it->second->snapshot();
}

api::TraceSpan Tracer::point(const char* name, double virtual_now,
                             std::string detail) const {
  api::TraceSpan span;
  span.name = name;
  span.detail = std::move(detail);
  span.virtual_start = virtual_now;
  span.virtual_end = virtual_now;
  span.wall_start_us = wall_now_us();
  span.wall_end_us = span.wall_start_us;
  return span;
}

api::TraceSpan Tracer::span(const char* name, double virtual_start, double virtual_end,
                            double wall_start_us, std::string detail) const {
  api::TraceSpan span;
  span.name = name;
  span.detail = std::move(detail);
  span.virtual_start = virtual_start;
  span.virtual_end = virtual_end;
  span.wall_start_us = wall_start_us;
  span.wall_end_us = wall_now_us();
  return span;
}

}  // namespace qon::obs
