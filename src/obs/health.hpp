#pragma once
// Liveness watchdogs — the active half of the health pillar (the fourth
// pillar of src/obs/, next to metrics, traces and exporters). Components
// own a Heartbeat and stamp it from their hot loops (scheduler thread per
// wake, engine workers per event, queue drains per cycle); the
// HealthMonitor derives a stall verdict AT CHECK TIME from heartbeat age
// vs. a configured budget. Nothing here blocks a hot path: a beat is two
// relaxed atomic stores, and a wedged component is detected — and named —
// by the next getHealth() instead of surfacing as a hung CI job.
//
// Idle-awareness: a component with nothing to do stops beating, which must
// not read as a stall. Every watchdog can carry a `busy` probe (e.g. "the
// pending queue is non-empty"); a quiet heartbeat is only a stall verdict
// while the probe says there is work the component should be consuming.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "api/types.hpp"
#include "common/thread_safety.hpp"

namespace qon::obs {

/// One component's monotonic liveness counter. beat() is wait-free (two
/// relaxed stores) and safe from any thread; readers see the count and the
/// wall instant of the most recent beat.
class Heartbeat {
 public:
  /// Wall seconds on the process-wide steady clock (the watchdog clock:
  /// stall budgets are real-time budgets, never virtual time).
  static double now_seconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void beat() {
    last_beat_.store(now_seconds(), std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Steady-clock instant of the last beat; negative = never beaten.
  double last_beat_seconds() const {
    return last_beat_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> last_beat_{-1.0};
};

/// Aggregates per-component verdicts for the v1 getHealth surface. Two
/// kinds of entries:
///   watch()  — a Heartbeat plus a stall budget (and an optional `busy`
///              probe); verdict derived from heartbeat age at check time.
///   probe()  — an arbitrary callback producing a ComponentHealth (used
///              for components whose health is a state predicate, e.g. the
///              admission gate's live-vs-limit or the fleet's online count).
///
/// Lock discipline: registration and the entry-list copy take the kHealth
/// mutex; the busy/probe callbacks run OUTSIDE it, so they may take any
/// component lock regardless of rank (the fleet probe nests under the
/// kMonitor mutex, rank 500 < kHealth 570, which would deadlock-rank if
/// held). check() is safe from any thread, concurrent with beats.
class HealthMonitor {
 public:
  struct WatchdogOptions {
    /// Wall seconds of heartbeat silence tolerated while busy. Must be > 0.
    double stall_budget_seconds = 60.0;
    /// Optional: "does this component currently have work?". A silent
    /// heartbeat with no work is kHealthy ("idle"), never a stall.
    std::function<bool()> busy;
  };

  /// Registers a watchdog over an externally owned heartbeat. `heartbeat`
  /// must outlive every later check() call (components register themselves
  /// at construction and are checked only while alive).
  void watch(std::string component, const Heartbeat* heartbeat,
             WatchdogOptions options);

  /// Registers a callback-probed component, polled at check() time.
  void probe(std::string component,
             std::function<api::ComponentHealth()> callback);

  /// One verdict per registered component, registration order. Watchdogs
  /// are judged against `Heartbeat::now_seconds()` at call time.
  std::vector<api::ComponentHealth> check() const;

  /// Worst severity across verdicts; kHealthy when `components` is empty.
  static api::HealthStatus overall(
      const std::vector<api::ComponentHealth>& components);

 private:
  struct Watchdog {
    std::string component;
    const Heartbeat* heartbeat = nullptr;
    WatchdogOptions options;
  };
  struct Probe {
    std::string component;
    std::function<api::ComponentHealth()> callback;
  };
  struct Entry {
    bool is_watchdog = true;
    Watchdog watchdog;
    Probe probe;
  };

  mutable Mutex mutex_{LockRank::kHealth, "health_monitor"};
  std::vector<Entry> entries_ GUARDED_BY(mutex_);
};

}  // namespace qon::obs
