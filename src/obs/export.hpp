#pragma once
// Exporters — the third pillar of the telemetry subsystem. Pure renderers
// over the typed api snapshots (no locks, no registry access), so they can
// run anywhere: the v1 getMetrics response feeds render_prometheus /
// render_json, and a finished run's api::RunTrace feeds the Chrome
// trace_event JSONL writer (load the file's events as a JSON array in
// chrome://tracing or Perfetto).

#include <string>

#include "api/types.hpp"
#include "obs/trace.hpp"

namespace qon::obs {

/// Prometheus text exposition (version 0.0.4): one HELP/TYPE header per
/// family, counters/gauges as single samples, histograms as cumulative
/// `le`-labeled buckets plus `_sum` / `_count`.
std::string render_prometheus(const api::MetricsSnapshot& snapshot);

/// The snapshot as a JSON document (CI artifact format): clocks plus one
/// object per metric in registration order.
std::string render_json(const api::MetricsSnapshot& snapshot);

/// The v1 getHealth response as a JSON document (CI artifact / probe
/// endpoint format): overall status, one object per component verdict, one
/// per SLO alert rule.
std::string render_health_json(const api::GetHealthResponse& health);

/// The trace as Chrome trace_event JSONL: one event object per line —
/// complete ("X") events for closed spans, instant ("i") events for point
/// spans — with ts/dur in wall µs, pid 1 and the run id as tid. Wrap the
/// concatenated lines in [...] (make_jsonl_file_sink does not; a consumer
/// joins lines with commas) to get a Chrome-loadable array. The fleet
/// virtual clock rides along in each event's args.
std::string chrome_trace_events(const api::RunTrace& trace);

/// A TraceSink appending chrome_trace_events() of every finished run to
/// `path` (created on first write). Internally serialized — settle runs on
/// concurrent engine workers.
TraceSink make_jsonl_file_sink(std::string path);

}  // namespace qon::obs
