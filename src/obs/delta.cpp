#include "obs/delta.hpp"

#include <unordered_map>

namespace qon::obs {

namespace {

std::string metric_key(const api::MetricValue& metric) {
  return metric.name + '{' + metric.labels + '}';
}

}  // namespace

api::MetricsSnapshot snapshot_delta(const api::MetricsSnapshot& prev,
                                    const api::MetricsSnapshot& cur) {
  std::unordered_map<std::string, const api::MetricValue*> prev_by_key;
  prev_by_key.reserve(prev.metrics.size());
  for (const auto& metric : prev.metrics) prev_by_key[metric_key(metric)] = &metric;

  api::MetricsSnapshot delta;
  delta.taken_at_virtual = cur.taken_at_virtual;
  delta.taken_at_wall_us = cur.taken_at_wall_us;
  delta.metrics.reserve(cur.metrics.size());
  for (const auto& metric : cur.metrics) {
    api::MetricValue d = metric;
    const auto it = prev_by_key.find(metric_key(metric));
    if (it != prev_by_key.end()) {
      const api::MetricValue& before = *it->second;
      switch (metric.kind) {
        case api::MetricKind::kCounter:
          d.value = metric.value - before.value;
          break;
        case api::MetricKind::kGauge:
          break;  // gauges are instantaneous: keep the current reading
        case api::MetricKind::kHistogram: {
          for (std::size_t i = 0;
               i < d.bucket_counts.size() && i < before.bucket_counts.size(); ++i) {
            d.bucket_counts[i] -= before.bucket_counts[i];
          }
          d.inf_count = metric.inf_count - before.inf_count;
          d.sum = metric.sum - before.sum;
          d.count = metric.count - before.count;
          break;
        }
      }
    }
    delta.metrics.push_back(std::move(d));
  }
  return delta;
}

const api::MetricValue* find_metric(const api::MetricsSnapshot& snapshot,
                                    const std::string& name,
                                    const std::string& labels) {
  for (const auto& metric : snapshot.metrics) {
    if (metric.name == name && metric.labels == labels) return &metric;
  }
  return nullptr;
}

double sum_metric_family(const api::MetricsSnapshot& snapshot,
                         const std::string& name) {
  double total = 0.0;
  for (const auto& metric : snapshot.metrics) {
    if (metric.name == name) total += metric.value;
  }
  return total;
}

}  // namespace qon::obs
