#include "obs/export.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "common/thread_safety.hpp"

namespace qon::obs {

namespace {

/// Minimal JSON string escape: the span/metric names and details are
/// code-authored, but a detail may legitimately carry quotes or backslashes
/// (e.g. a status message).
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double value) {
  std::ostringstream out;
  out << value;  // %g-style: compact, round-trips the magnitudes we emit
  return out.str();
}

/// `name{labels}` or `name{labels,extra}` — merging the pre-rendered label
/// set with a renderer-added label (the histogram `le`).
std::string series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

}  // namespace

std::string render_prometheus(const api::MetricsSnapshot& snapshot) {
  std::ostringstream out;
  std::string last_family;  // one HELP/TYPE header per family
  for (const auto& metric : snapshot.metrics) {
    if (metric.name != last_family) {
      out << "# HELP " << metric.name << " " << metric.help << "\n";
      out << "# TYPE " << metric.name << " " << api::metric_kind_name(metric.kind)
          << "\n";
      last_family = metric.name;
    }
    switch (metric.kind) {
      case api::MetricKind::kCounter:
      case api::MetricKind::kGauge:
        out << series(metric.name, metric.labels) << " " << format_number(metric.value)
            << "\n";
        break;
      case api::MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < metric.bucket_bounds.size(); ++i) {
          cumulative += metric.bucket_counts[i];
          out << series(metric.name + "_bucket", metric.labels,
                        "le=\"" + format_number(metric.bucket_bounds[i]) + "\"")
              << " " << cumulative << "\n";
        }
        out << series(metric.name + "_bucket", metric.labels, "le=\"+Inf\"") << " "
            << metric.count << "\n";
        out << series(metric.name + "_sum", metric.labels) << " "
            << format_number(metric.sum) << "\n";
        out << series(metric.name + "_count", metric.labels) << " " << metric.count
            << "\n";
        break;
      }
    }
  }
  return out.str();
}

std::string render_json(const api::MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "{\n  \"taken_at_virtual_s\": " << format_number(snapshot.taken_at_virtual)
      << ",\n  \"taken_at_wall_us\": " << format_number(snapshot.taken_at_wall_us)
      << ",\n  \"metrics\": [\n";
  for (std::size_t m = 0; m < snapshot.metrics.size(); ++m) {
    const auto& metric = snapshot.metrics[m];
    out << "    {\"name\": \"" << json_escape(metric.name) << "\", \"kind\": \""
        << api::metric_kind_name(metric.kind) << "\"";
    if (!metric.labels.empty()) {
      out << ", \"labels\": \"" << json_escape(metric.labels) << "\"";
    }
    if (metric.kind == api::MetricKind::kHistogram) {
      out << ", \"sum\": " << format_number(metric.sum) << ", \"count\": " << metric.count
          << ", \"buckets\": [";
      for (std::size_t i = 0; i < metric.bucket_bounds.size(); ++i) {
        out << (i != 0 ? ", " : "") << "{\"le\": " << format_number(metric.bucket_bounds[i])
            << ", \"n\": " << metric.bucket_counts[i] << "}";
      }
      out << (metric.bucket_bounds.empty() ? "" : ", ")
          << "{\"le\": \"+Inf\", \"n\": " << metric.inf_count << "}]";
    } else {
      out << ", \"value\": " << format_number(metric.value);
    }
    out << "}" << (m + 1 < snapshot.metrics.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string render_health_json(const api::GetHealthResponse& health) {
  std::ostringstream out;
  out << "{\n  \"status\": \"" << api::health_status_name(health.status)
      << "\",\n  \"components\": [\n";
  for (std::size_t i = 0; i < health.components.size(); ++i) {
    const auto& component = health.components[i];
    out << "    {\"component\": \"" << json_escape(component.component)
        << "\", \"status\": \"" << api::health_status_name(component.status)
        << "\", \"detail\": \"" << json_escape(component.detail)
        << "\", \"heartbeats\": " << component.heartbeats
        << ", \"heartbeat_age_seconds\": "
        << format_number(component.heartbeat_age_seconds) << "}"
        << (i + 1 < health.components.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"alerts\": [\n";
  for (std::size_t i = 0; i < health.alerts.size(); ++i) {
    const auto& alert = health.alerts[i];
    out << "    {\"rule\": \"" << json_escape(alert.rule) << "\", \"priority\": \""
        << api::priority_name(alert.priority) << "\", \"state\": \""
        << api::alert_state_name(alert.state)
        << "\", \"fast_burn\": " << format_number(alert.fast_burn)
        << ", \"slow_burn\": " << format_number(alert.slow_burn)
        << ", \"since_virtual_s\": " << format_number(alert.since_virtual) << "}"
        << (i + 1 < health.alerts.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string chrome_trace_events(const api::RunTrace& trace) {
  std::ostringstream out;
  for (const auto& span : trace.spans) {
    const bool instant = span.wall_end_us <= span.wall_start_us;
    out << "{\"name\": \"" << json_escape(span.name) << "\", \"ph\": \""
        << (instant ? "i" : "X") << "\", \"ts\": " << format_number(span.wall_start_us);
    if (instant) {
      out << ", \"s\": \"t\"";  // thread-scoped instant
    } else {
      out << ", \"dur\": " << format_number(span.wall_end_us - span.wall_start_us);
    }
    out << ", \"pid\": 1, \"tid\": " << trace.run << ", \"args\": {\"virtual_start_s\": "
        << format_number(span.virtual_start)
        << ", \"virtual_end_s\": " << format_number(span.virtual_end);
    if (!span.detail.empty()) {
      out << ", \"detail\": \"" << json_escape(span.detail) << "\"";
    }
    out << "}}\n";
  }
  return out.str();
}

TraceSink make_jsonl_file_sink(std::string path) {
  // Settles happen on concurrent engine workers, so the file appends are
  // serialized by a sink-owned lock. Unranked leaf: the sink is invoked
  // outside all component locks (finalize's contract) and takes none.
  struct SinkState {
    Mutex mutex{LockRank::kUnranked, "jsonl_file_sink"};
    std::ofstream file;
  };
  auto state = std::make_shared<SinkState>();
  state->file.open(path, std::ios::out | std::ios::trunc);
  return [state](const api::RunTrace& trace) {
    const std::string events = chrome_trace_events(trace);
    MutexLock lock(state->mutex);
    state->file << events;
    state->file.flush();
  };
}

}  // namespace qon::obs
