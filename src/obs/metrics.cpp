#include "obs/metrics.hpp"

#include <algorithm>

namespace qon::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  // First bucket whose inclusive upper bound admits the value — the
  // Prometheus `le` convention (value == bound lands IN the bucket).
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  if (it == bounds_.end()) {
    inf_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
        1, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

void Histogram::read(api::MetricValue& out) const {
  out.bucket_bounds = bounds_;
  out.bucket_counts.resize(bounds_.size());
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    out.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.inf_count = inf_.load(std::memory_order_relaxed);
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
}

MetricsRegistry::Entry* MetricsRegistry::find_locked(const std::string& name,
                                                     const std::string& labels) {
  for (auto& entry : entries_) {
    if (entry.name == name && entry.labels == labels) return &entry;
  }
  return nullptr;
}

Counter* MetricsRegistry::counter(const std::string& name, const std::string& help,
                                  const std::string& labels) {
  MutexLock lock(mutex_);
  if (Entry* existing = find_locked(name, labels)) return existing->counter.get();
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.kind = api::MetricKind::kCounter;
  entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const std::string& labels) {
  MutexLock lock(mutex_);
  if (Entry* existing = find_locked(name, labels)) return existing->gauge.get();
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.kind = api::MetricKind::kGauge;
  entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name, const std::string& help,
                                      std::vector<double> bounds,
                                      const std::string& labels) {
  MutexLock lock(mutex_);
  if (Entry* existing = find_locked(name, labels)) return existing->histogram.get();
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.kind = api::MetricKind::kHistogram;
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return entry.histogram.get();
}

void MetricsRegistry::gauge_fn(const std::string& name, const std::string& help,
                               std::function<double()> fn, const std::string& labels) {
  MutexLock lock(mutex_);
  if (find_locked(name, labels) != nullptr) return;
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.kind = api::MetricKind::kGauge;
  entry.poll = std::move(fn);
}

void MetricsRegistry::counter_fn(const std::string& name, const std::string& help,
                                 std::function<double()> fn, const std::string& labels) {
  MutexLock lock(mutex_);
  if (find_locked(name, labels) != nullptr) return;
  Entry& entry = entries_.emplace_back();
  entry.name = name;
  entry.help = help;
  entry.labels = labels;
  entry.kind = api::MetricKind::kCounter;
  entry.poll = std::move(fn);
}

api::MetricsSnapshot MetricsRegistry::snapshot() const {
  api::MetricsSnapshot out;
  MutexLock lock(mutex_);
  out.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    api::MetricValue value;
    value.name = entry.name;
    value.help = entry.help;
    value.labels = entry.labels;
    value.kind = entry.kind;
    if (entry.poll) {
      value.value = entry.poll();
    } else if (entry.counter) {
      value.value = static_cast<double>(entry.counter->value());
    } else if (entry.gauge) {
      value.value = entry.gauge->value();
    } else if (entry.histogram) {
      entry.histogram->read(value);
    }
    out.metrics.push_back(std::move(value));
  }
  return out;
}

}  // namespace qon::obs
