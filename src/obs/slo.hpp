#pragma once
// Online SLO burn-rate tracking — the second half of the health pillar.
// Settled runs feed a per-priority-class sliding-window SLI ring (windowed
// good/total counts on the fleet VIRTUAL clock, so campaign alert
// timelines are deterministic); burn-rate rules evaluate two windows (the
// SRE fast/slow multi-window pattern) and drive a
// pending -> firing -> resolved alert state machine with hysteresis:
//
//   burn = (bad / total) / (1 - attainment_target)
//
// burn == 1 consumes the error budget exactly at the sustainable rate;
// a rule fires when BOTH windows burn at >= burn_threshold (the fast
// window for responsiveness, the slow window to reject blips) and resolves
// when the fast window drops below clear_threshold (< burn_threshold, so
// a rate hovering at the threshold cannot flap the alert).
//
// Everything is virtual-time driven and lock-cheap: record() is a bucket
// increment under the kSlo mutex, evaluate() sums at most
// slow_window/bucket buckets per rule. The campaign driver owns one
// monitor fed from its deterministic reap order; the orchestrator owns
// another fed from settle_run for the live getHealth surface.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "api/types.hpp"
#include "common/thread_safety.hpp"

namespace qon::obs {

/// One multi-window burn-rate rule over a priority class's SLO.
struct SloRule {
  std::string name;  ///< names the alert in timelines and getHealth
  api::Priority priority = api::Priority::kStandard;
  /// Target fraction of runs inside the class SLO, in (0, 1); the error
  /// budget is 1 - attainment_target.
  double attainment_target = 0.99;
  double fast_window_seconds = 300.0;   ///< virtual; responsiveness window
  double slow_window_seconds = 3600.0;  ///< virtual; blip-rejection window
  /// Fire when both windows burn at >= this multiple of the budget rate.
  double burn_threshold = 2.0;
  /// Resolve when the fast burn drops below this (must be <= burn_threshold;
  /// strictly smaller gives hysteresis).
  double clear_threshold = 1.0;
  /// Minimum fast-window sample count before any verdict — a single bad
  /// run in an empty window must not page.
  std::uint64_t min_samples = 10;
};

/// One alert state transition, emitted by evaluate() in rule order — the
/// campaign driver streams these as the deterministic alert timeline.
struct AlertTransition {
  std::string rule;
  api::Priority priority = api::Priority::kStandard;
  api::AlertState state = api::AlertState::kInactive;  ///< state ENTERED
  double at_virtual = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
};

class SloMonitor {
 public:
  /// `slo_seconds[p]` is the class latency target (0 = class untracked);
  /// `bucket_seconds` is the SLI ring granularity (virtual seconds).
  SloMonitor(std::array<double, api::kNumPriorities> slo_seconds,
             std::vector<SloRule> rules, double bucket_seconds = 60.0);

  /// Feed one settled run at its terminal virtual instant. Good means the
  /// run completed within its class target; failed/cancelled runs and late
  /// completions burn budget. No-op for untracked classes.
  void record(api::Priority priority, double latency_seconds,
              double now_virtual, bool completed);

  /// Advance every rule's state machine to `now_virtual`; returns the
  /// transitions that happened (rule order, possibly empty). A kResolved
  /// rule decays to kInactive silently on its next evaluation.
  std::vector<AlertTransition> evaluate(double now_virtual);

  /// Current per-rule alert states (registration order) with burns as of
  /// `now_virtual` — the getHealth view.
  std::vector<api::AlertInfo> alerts(double now_virtual) const;

  /// Windowed burn rate of one class, for tests and ad-hoc introspection.
  struct Burn {
    double rate = 0.0;
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  Burn burn(api::Priority priority, double window_seconds, double target,
            double now_virtual) const;

  std::uint64_t recorded_total() const;

 private:
  struct Bucket {
    std::int64_t index = -1;  ///< floor(virtual / bucket_seconds); -1 = empty
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  struct RuleState {
    SloRule rule;
    api::AlertState state = api::AlertState::kInactive;
    double since_virtual = 0.0;  ///< instant of the last transition
  };

  Burn burn_locked(api::Priority priority, double window_seconds,
                   double target, double now_virtual) const REQUIRES(mutex_);

  const double bucket_seconds_;
  const std::array<double, api::kNumPriorities> slo_seconds_;

  mutable Mutex mutex_{LockRank::kSlo, "slo_monitor"};
  /// Per-class ring sized for the longest rule window.
  std::array<std::vector<Bucket>, api::kNumPriorities> rings_ GUARDED_BY(mutex_);
  std::vector<RuleState> rules_ GUARDED_BY(mutex_);
  std::uint64_t recorded_ GUARDED_BY(mutex_) = 0;
};

}  // namespace qon::obs
