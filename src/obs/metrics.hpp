#pragma once
// Central metrics registry — the second pillar of the telemetry subsystem.
//
// Components register named counters, gauges and fixed-bucket histograms
// once (at construction, behind the ranked registry mutex) and keep the
// returned stable pointer; every hot-path update is then a lock-free atomic
// on the instrument itself — an increment on the invoke() or settle path
// never touches a mutex. Callback instruments (gauge_fn / counter_fn) wrap
// values that already live behind a component's own lock (queue depth,
// engine live runs): they are polled only at snapshot time, and the
// registry's rank (LockRank::kMetrics) sits BELOW those component locks so
// the poll nests legally.
//
// snapshot() reads every instrument in one pass under the registry lock,
// which is what makes ratios computed from a single getMetrics call
// (prep-cache hit rate, per-class shed fraction) coherent with each other —
// the satellite fix for the previously scattered accessors that each read
// their counter at a different instant.
//
// Naming convention (see ROADMAP.md "Observability"): families are
// `qon_<component>_<noun>[_total|_seconds]`, labels are pre-rendered
// `key="value"` strings (e.g. priority="batch") — one instrument per label
// set, registered adjacently so the Prometheus renderer emits one
// HELP/TYPE header per family.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/types.hpp"
#include "common/thread_safety.hpp"

namespace qon::obs {

/// Adds `delta` to an atomic double via a CAS loop (fetch_add on
/// floating-point atomics is C++20 but not reliably lowered everywhere).
inline void atomic_add(std::atomic<double>& target, double delta) {
  double observed = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(observed, observed + delta,
                                       std::memory_order_relaxed)) {
  }
}

/// Monotone event counter. inc() is a single relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time value that can move both ways.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with Prometheus `le` semantics: an observation
/// lands in the FIRST bucket whose (inclusive) upper bound is >= the value;
/// observations above the last bound count toward +Inf. Buckets are chosen
/// at registration and never change, so observe() is a bucket search plus
/// three relaxed atomics — no lock.
class Histogram {
 public:
  /// `bounds` are the inclusive upper bounds, sorted + deduplicated here.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Fills the bucket/sum/count fields of `out` (non-cumulative buckets).
  void read(api::MetricValue& out) const;

 private:
  std::vector<double> bounds_;
  /// One slot per bound; unique_ptr-owned array because std::atomic is not
  /// movable and the bucket count is a runtime value.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> inf_{0};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// The registry: owns every instrument, hands out stable pointers, and
/// serves the one-pass snapshot. Registration is idempotent on
/// (name, labels): re-registering returns the existing instrument, so two
/// components describing the same series share it instead of colliding.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `labels` is the pre-rendered label set (e.g. `priority="batch"`),
  /// empty for an unlabeled series. Pointers stay valid for the registry's
  /// lifetime.
  Counter* counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge* gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  Histogram* histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, const std::string& labels = "");

  /// Callback instruments: `fn` is invoked at snapshot time under the
  /// registry lock, so it may acquire component locks ranked above
  /// LockRank::kMetrics (queue, engine, scheduler stats) but nothing below.
  /// The callback must outlive the registry or never be polled after its
  /// component dies (the orchestrator destroys the registry last).
  void gauge_fn(const std::string& name, const std::string& help,
                std::function<double()> fn, const std::string& labels = "");
  void counter_fn(const std::string& name, const std::string& help,
                  std::function<double()> fn, const std::string& labels = "");

  /// Every instrument read in one pass, in registration order. The caller
  /// (obs::Telemetry) stamps the snapshot's clocks.
  api::MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::string labels;
    api::MetricKind kind = api::MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> poll;  ///< callback instruments only
  };

  Entry* find_locked(const std::string& name, const std::string& labels)
      REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kMetrics, "MetricsRegistry::mutex_"};
  /// deque: grows without invalidating Entry addresses (instruments are
  /// unique_ptr-owned anyway, but the poll callbacks live in the Entry).
  std::deque<Entry> entries_ GUARDED_BY(mutex_);
};

}  // namespace qon::obs
