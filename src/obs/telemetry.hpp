#pragma once
// The telemetry bundle: one MetricsRegistry + one Tracer + the knobs that
// gate them, owned by the orchestrator (declared early, so it outlives the
// engine and the scheduler service whose draining runs still record into
// it). Components receive a Telemetry& / Telemetry* and register their
// instruments at construction; the config gates the optional surfaces:
//
//   - tracing:  off -> no TraceContext is ever created, every record site
//               short-circuits on the null pointer; getRunTrace returns
//               FAILED_PRECONDITION.
//   - metrics:  gates the OPTIONAL observations (latency/stage histograms).
//               Counters and callback gauges backing the pre-existing stats
//               surfaces (getSchedulerStats / getAdmissionStats /
//               prepCacheHits) are ALWAYS maintained — those surfaces must
//               not change behavior with telemetry off.

#include <cstddef>

#include "api/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qon::obs {

struct TelemetryConfig {
  /// Per-run lifecycle tracing (spans + getRunTrace).
  bool tracing = true;
  /// Histogram observations (run latency, cycle stages). Counters backing
  /// the legacy stats surfaces are unaffected by this knob.
  bool metrics = true;
  /// How many run traces the tracer retains (oldest-started evicted first).
  std::size_t trace_runs = 1024;
  /// Span-ring capacity per run; older spans drop once exceeded.
  std::size_t trace_spans_per_run = 128;
  /// Invoked with each finished run's trace at settle time, outside all
  /// locks (e.g. obs::make_jsonl_file_sink). Must be thread-safe.
  TraceSink trace_sink;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {})
      : config_(std::move(config)),
        // registry_ precedes tracer_ in declaration order, so handing the
        // tracer a registry counter here is construction-order safe.
        tracer_(config_.trace_runs, config_.trace_spans_per_run, config_.trace_sink,
                registry_.counter("qon_trace_spans_dropped_total",
                                  "Trace spans dropped from full per-run rings")) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  const TelemetryConfig& config() const { return config_; }
  bool tracing_enabled() const { return config_.tracing; }
  bool metrics_enabled() const { return config_.metrics; }

  /// One-pass registry snapshot stamped with both clocks.
  api::MetricsSnapshot snapshot(double virtual_now) const {
    api::MetricsSnapshot out = registry_.snapshot();
    out.taken_at_virtual = virtual_now;
    out.taken_at_wall_us = tracer_.wall_now_us();
    return out;
  }

 private:
  const TelemetryConfig config_;
  MetricsRegistry registry_;
  Tracer tracer_;
};

}  // namespace qon::obs
