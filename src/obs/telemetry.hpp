#pragma once
// The telemetry bundle: one MetricsRegistry + one Tracer + the knobs that
// gate them, owned by the orchestrator (declared early, so it outlives the
// engine and the scheduler service whose draining runs still record into
// it). Components receive a Telemetry& / Telemetry* and register their
// instruments at construction; the config gates the optional surfaces:
//
//   - tracing:  off -> no TraceContext is ever created, every record site
//               short-circuits on the null pointer; getRunTrace returns
//               FAILED_PRECONDITION.
//   - metrics:  gates the OPTIONAL observations (latency/stage histograms).
//               Counters and callback gauges backing the pre-existing stats
//               surfaces (getSchedulerStats / getAdmissionStats /
//               prepCacheHits) are ALWAYS maintained — those surfaces must
//               not change behavior with telemetry off.

#include <chrono>
#include <cstddef>
#include <string>

#include "api/types.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace qon::obs {

/// Pre-rendered label set of the `qon_build_info` gauge: the Prometheus
/// build-info idiom (constant value 1; the information IS the labels), so
/// dashboards and incident timelines can correlate a metrics change with
/// the binary that produced it.
inline std::string build_info_labels() {
  std::string compiler =
#if defined(__clang__)
      "clang " __VERSION__;
#elif defined(__GNUC__)
      "gcc " __VERSION__;
#else
      "unknown";
#endif
  for (char& c : compiler) {
    if (c == '"' || c == '\\') c = '\'';  // keep the label set parseable
  }
  const char* build =
#ifdef NDEBUG
      "release";
#else
      "debug";
#endif
  return "version=\"v" + std::to_string(api::kApiVersion) + "\",compiler=\"" +
         compiler + "\",build=\"" + build + "\"";
}

struct TelemetryConfig {
  /// Per-run lifecycle tracing (spans + getRunTrace).
  bool tracing = true;
  /// Histogram observations (run latency, cycle stages). Counters backing
  /// the legacy stats surfaces are unaffected by this knob.
  bool metrics = true;
  /// How many run traces the tracer retains (oldest-started evicted first).
  std::size_t trace_runs = 1024;
  /// Span-ring capacity per run; older spans drop once exceeded.
  std::size_t trace_spans_per_run = 128;
  /// Invoked with each finished run's trace at settle time, outside all
  /// locks (e.g. obs::make_jsonl_file_sink). Must be thread-safe.
  TraceSink trace_sink;
};

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config = {})
      : config_(std::move(config)),
        // registry_ precedes tracer_ in declaration order, so handing the
        // tracer a registry counter here is construction-order safe.
        tracer_(config_.trace_runs, config_.trace_spans_per_run, config_.trace_sink,
                registry_.counter("qon_trace_spans_dropped_total",
                                  "Trace spans dropped from full per-run rings")),
        snapshot_duration_(registry_.histogram(
            "qon_metrics_snapshot_duration_seconds",
            "Wall time of one registry snapshot pass (exporter self-observation)",
            {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1})) {
    registry_.gauge("qon_build_info", "Build identity (value is constant 1)",
                    build_info_labels())
        ->set(1.0);
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }

  const TelemetryConfig& config() const { return config_; }
  bool tracing_enabled() const { return config_.tracing; }
  bool metrics_enabled() const { return config_.metrics; }

  /// One-pass registry snapshot stamped with both clocks. The pass itself
  /// is timed into qon_metrics_snapshot_duration_seconds — observed AFTER
  /// the read, so each sample shows up in the NEXT snapshot (the exporter
  /// cannot observe its own in-flight cost).
  api::MetricsSnapshot snapshot(double virtual_now) const {
    const auto start = std::chrono::steady_clock::now();
    api::MetricsSnapshot out = registry_.snapshot();
    snapshot_duration_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    out.taken_at_virtual = virtual_now;
    out.taken_at_wall_us = tracer_.wall_now_us();
    return out;
  }

 private:
  const TelemetryConfig config_;
  MetricsRegistry registry_;
  Tracer tracer_;
  Histogram* const snapshot_duration_;
};

}  // namespace qon::obs
