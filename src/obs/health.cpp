#include "obs/health.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace qon::obs {

namespace {

std::string format_age(double seconds) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(3);
  out << seconds;
  return out.str();
}

}  // namespace

void HealthMonitor::watch(std::string component, const Heartbeat* heartbeat,
                          WatchdogOptions options) {
  Entry entry;
  entry.is_watchdog = true;
  entry.watchdog.component = std::move(component);
  entry.watchdog.heartbeat = heartbeat;
  entry.watchdog.options = std::move(options);
  MutexLock lock(mutex_);
  entries_.push_back(std::move(entry));
}

void HealthMonitor::probe(std::string component,
                          std::function<api::ComponentHealth()> callback) {
  Entry entry;
  entry.is_watchdog = false;
  entry.probe.component = std::move(component);
  entry.probe.callback = std::move(callback);
  MutexLock lock(mutex_);
  entries_.push_back(std::move(entry));
}

std::vector<api::ComponentHealth> HealthMonitor::check() const {
  // Copy the entry list out of the lock: busy/probe callbacks take
  // component locks of arbitrary rank and must not nest under kHealth.
  std::vector<Entry> entries;
  {
    MutexLock lock(mutex_);
    entries = entries_;
  }
  const double now = Heartbeat::now_seconds();
  std::vector<api::ComponentHealth> verdicts;
  verdicts.reserve(entries.size());
  for (const Entry& entry : entries) {
    if (!entry.is_watchdog) {
      api::ComponentHealth verdict = entry.probe.callback();
      verdict.component = entry.probe.component;
      verdicts.push_back(std::move(verdict));
      continue;
    }
    const Watchdog& dog = entry.watchdog;
    api::ComponentHealth verdict;
    verdict.component = dog.component;
    verdict.heartbeats = dog.heartbeat->count();
    const double last = dog.heartbeat->last_beat_seconds();
    const double age = last < 0.0 ? -1.0 : std::max(0.0, now - last);
    verdict.heartbeat_age_seconds = age;
    const bool busy = !dog.options.busy || dog.options.busy();
    if (!busy) {
      // No work to consume: a quiet heartbeat is rest, not a stall.
      verdict.status = api::HealthStatus::kHealthy;
      verdict.detail = "idle";
    } else if (last < 0.0) {
      // Busy but never beaten: the component has work it never started on.
      // Fresh construction races land here briefly; treat as degraded, not
      // unhealthy, until a full stall budget of silence confirms the wedge.
      verdict.status = api::HealthStatus::kDegraded;
      verdict.detail = "busy but no heartbeat recorded yet";
    } else if (age > dog.options.stall_budget_seconds) {
      verdict.status = api::HealthStatus::kUnhealthy;
      verdict.detail = dog.component + " stalled: last heartbeat " +
                       format_age(age) + " s ago (budget " +
                       format_age(dog.options.stall_budget_seconds) + " s)";
    } else {
      verdict.status = api::HealthStatus::kHealthy;
      verdict.detail = "beating (" + format_age(age) + " s ago)";
    }
    verdicts.push_back(std::move(verdict));
  }
  return verdicts;
}

api::HealthStatus HealthMonitor::overall(
    const std::vector<api::ComponentHealth>& components) {
  api::HealthStatus worst = api::HealthStatus::kHealthy;
  for (const api::ComponentHealth& component : components) {
    if (static_cast<int>(component.status) > static_cast<int>(worst)) {
      worst = component.status;
    }
  }
  return worst;
}

}  // namespace qon::obs
