#pragma once
// Run-lifecycle tracing — the first pillar of the telemetry subsystem.
//
// Every run carries a TraceContext (a shared_ptr to its RunTraceBuffer) on
// its RunContinuation and on each parked PendingQuantumTask; a null context
// means tracing is off and every record call is skipped at the call site.
// Spans stamp BOTH clocks — the fleet virtual clock (simulated seconds) and
// a steady wall clock (µs since the tracer's construction) — so a reader
// can answer "where did run 4711's 90 ms go?" in either domain.
//
// Writer model: a span is recorded either by the engine worker currently
// driving the run (one event per run is in flight at a time) or by the
// scheduler thread BEFORE it settles the run's parked task — the
// settlement happens-before edge then orders those writes against the
// resume step's. The per-buffer mutex therefore mostly guards writers
// against concurrent READERS (getRunTrace, the export sink); the one
// genuine writer/writer window — a parking step's trailing engine_step
// span racing the resume on another worker — interleaves safely under it.
//
// Each buffer is a bounded ring: a run recording more spans than the ring
// holds drops the oldest and counts them, so a pathological run cannot grow
// memory without bound. The tracer itself retains at most `max_runs`
// traces, evicting oldest-started first — getRunTrace on an evicted (or
// never-traced) id is NOT_FOUND, mirroring the run table's retention
// contract.

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "api/result.hpp"
#include "api/types.hpp"
#include "common/thread_safety.hpp"

namespace qon::obs {

class Counter;

/// The bounded span ring of one run.
class RunTraceBuffer {
 public:
  /// `drop_counter`, when set, counts spans evicted from the full ring
  /// (no-silent-caps: qon_trace_spans_dropped_total in the registry).
  RunTraceBuffer(api::RunId run, std::size_t capacity,
                 Counter* drop_counter = nullptr);

  /// Appends a span, dropping the oldest once `capacity` is exceeded.
  void record(api::TraceSpan span);

  /// The retained spans in record order, plus the drop accounting.
  api::RunTrace snapshot() const;

  api::RunId run() const { return run_; }

 private:
  const api::RunId run_;
  const std::size_t capacity_;
  Counter* const drop_counter_;  ///< null = uncounted (standalone buffers)
  mutable Mutex mutex_{LockRank::kTraceBuffer, "RunTraceBuffer::mutex_"};
  /// Ring storage: `next_` is the oldest slot once the ring has wrapped.
  std::vector<api::TraceSpan> ring_ GUARDED_BY(mutex_);
  std::size_t next_ GUARDED_BY(mutex_) = 0;
  std::uint64_t recorded_ GUARDED_BY(mutex_) = 0;
};

/// Carried on RunContinuation / PendingQuantumTask; null = tracing off.
using TraceContext = std::shared_ptr<RunTraceBuffer>;

/// Invoked with a finished run's trace at settle time (outside all locks).
using TraceSink = std::function<void(const api::RunTrace&)>;

/// Owns every live trace buffer and the bounded retention window.
class Tracer {
 public:
  /// Retains at most `max_runs` traces (oldest-started evicted first);
  /// each ring holds `spans_per_run` spans. `sink`, when set, receives each
  /// finished run's trace from finalize(). `span_drop_counter`, when set,
  /// counts ring-evicted spans across every buffer this tracer creates.
  Tracer(std::size_t max_runs, std::size_t spans_per_run, TraceSink sink = nullptr,
         Counter* span_drop_counter = nullptr);

  /// Creates + registers the buffer for `run`, evicting the oldest trace
  /// beyond the retention bound (an evicted in-flight run keeps recording
  /// into its buffer through the shared_ptr; only the lookup is gone).
  TraceContext start(api::RunId run);

  /// Feeds the finished trace to the sink (if configured). The trace stays
  /// queryable until evicted by later start() calls.
  void finalize(const TraceContext& trace) const;

  /// The retained trace of `run`; kNotFound for unknown / evicted ids.
  api::Result<api::RunTrace> trace(api::RunId run) const;

  /// Wall clock in µs since this tracer was constructed (steady).
  double wall_now_us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// A point span (start == end on both clocks) stamped `virtual_now` /
  /// wall-now. Convenience for the lifecycle-edge call sites.
  api::TraceSpan point(const char* name, double virtual_now,
                       std::string detail = "") const;
  /// A closed span: [virtual_start, virtual_end] × [wall_start_us, wall-now].
  api::TraceSpan span(const char* name, double virtual_start, double virtual_end,
                      double wall_start_us, std::string detail = "") const;

 private:
  const std::size_t max_runs_;
  const std::size_t spans_per_run_;
  const TraceSink sink_;
  Counter* const span_drop_counter_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable Mutex mutex_{LockRank::kTracer, "Tracer::mutex_"};
  std::unordered_map<api::RunId, TraceContext> traces_ GUARDED_BY(mutex_);
  std::deque<api::RunId> order_ GUARDED_BY(mutex_);  ///< start order, oldest first
};

}  // namespace qon::obs
