#pragma once
// Fleet factory: builds an IBM-like heterogeneous set of named 27-qubit
// heavy-hex backends with distinct quality factors (the persistent
// performance spread behind Fig. 2b) and a shared drift process.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "qpu/backend.hpp"

namespace qon::qpu {

/// A fleet of QPU backends plus the model registry and drift process.
struct Fleet {
  std::vector<std::shared_ptr<const QpuModel>> models;
  std::vector<std::shared_ptr<Backend>> backends;
  CalibrationDrift drift{CalibrationProfile{}};

  /// Backend lookup by name; throws std::out_of_range when absent.
  std::shared_ptr<Backend> backend(const std::string& name) const;

  /// One template backend per model, averaging current calibrations.
  std::vector<Backend> template_backends() const;

  /// Advances every backend one calibration cycle.
  void recalibrate_all(Rng& rng, double timestamp);
};

/// The paper's recurring IBM device names, in the order used by Fig. 8c.
const std::vector<std::string>& ibm_device_names();

/// Builds `count` 27-qubit Falcon-like backends. Quality factors are spaced
/// log-uniformly in [best_quality, worst_quality] and shuffled by seed, so
/// fleets exhibit the ~38% best-to-worst fidelity spread of Fig. 2b.
Fleet make_ibm_like_fleet(std::size_t count, std::uint64_t seed, double best_quality = 0.72,
                          double worst_quality = 1.55);

}  // namespace qon::qpu
