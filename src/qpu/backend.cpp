#include "qpu/backend.hpp"

#include <algorithm>
#include <stdexcept>

namespace qon::qpu {

bool QpuModel::in_basis(circuit::GateKind kind) const {
  using circuit::GateKind;
  if (kind == GateKind::kMeasure || kind == GateKind::kBarrier || kind == GateKind::kDelay ||
      kind == GateKind::kI) {
    return true;
  }
  return std::find(basis_gates.begin(), basis_gates.end(), kind) != basis_gates.end();
}

std::vector<circuit::GateKind> falcon_basis() {
  using circuit::GateKind;
  return {GateKind::kRZ, GateKind::kSX, GateKind::kX, GateKind::kCX};
}

Backend::Backend(std::string name, std::shared_ptr<const QpuModel> model,
                 CalibrationData calibration, CalibrationProfile profile)
    : name_(std::move(name)),
      model_(std::move(model)),
      calibration_(std::move(calibration)),
      profile_(profile) {
  if (!model_) throw std::invalid_argument("Backend: null model");
  if (calibration_.qubits.size() != static_cast<std::size_t>(model_->topology.num_qubits())) {
    throw std::invalid_argument("Backend: calibration width mismatch");
  }
}

void Backend::recalibrate(const CalibrationDrift& drift, Rng& rng, double timestamp) {
  calibration_ = drift.next(calibration_, rng);
  calibration_.timestamp = timestamp;
}

Backend make_template_backend(const std::shared_ptr<const QpuModel>& model,
                              const std::vector<const Backend*>& backends) {
  if (backends.empty()) {
    throw std::invalid_argument("make_template_backend: no backends to average");
  }
  for (const Backend* b : backends) {
    if (b->model().name != model->name) {
      throw std::invalid_argument("make_template_backend: model mismatch: " + b->name());
    }
  }
  const double n = static_cast<double>(backends.size());
  CalibrationData avg = backends.front()->calibration();
  for (std::size_t q = 0; q < avg.qubits.size(); ++q) {
    QubitCalibration acc{};
    acc.t1 = acc.t2 = acc.readout_error = acc.gate_error_1q = 0.0;
    acc.readout_duration = acc.gate_duration_1q = 0.0;
    for (const Backend* b : backends) {
      const auto& qc = b->calibration().qubits[q];
      acc.t1 += qc.t1;
      acc.t2 += qc.t2;
      acc.readout_error += qc.readout_error;
      acc.gate_error_1q += qc.gate_error_1q;
      acc.readout_duration += qc.readout_duration;
      acc.gate_duration_1q += qc.gate_duration_1q;
    }
    acc.t1 /= n;
    acc.t2 /= n;
    acc.readout_error /= n;
    acc.gate_error_1q /= n;
    acc.readout_duration /= n;
    acc.gate_duration_1q /= n;
    avg.qubits[q] = acc;
  }
  for (auto& [edge, ec] : avg.edges) {
    EdgeCalibration acc{};
    acc.gate_error_2q = acc.gate_duration_2q = 0.0;
    for (const Backend* b : backends) {
      const auto& other = b->calibration().edge(edge.first, edge.second);
      acc.gate_error_2q += other.gate_error_2q;
      acc.gate_duration_2q += other.gate_duration_2q;
    }
    acc.gate_error_2q /= n;
    acc.gate_duration_2q /= n;
    ec = acc;
  }
  double rep_delay = 0.0;
  for (const Backend* b : backends) rep_delay += b->calibration().rep_delay;
  avg.rep_delay = rep_delay / n;
  CalibrationProfile profile = backends.front()->profile();
  profile.quality = 1.0;  // templates represent the model average
  profile.rep_delay = avg.rep_delay;
  return Backend("template-" + model->name, model, std::move(avg), profile);
}

}  // namespace qon::qpu
