#include "qpu/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon::qpu {

namespace {

// Clamps an error probability into a sane range.
double clamp_error(double p) { return std::clamp(p, 1e-6, 0.5); }

}  // namespace

const EdgeCalibration& CalibrationData::edge(int a, int b) const {
  if (a > b) std::swap(a, b);
  const auto it = edges.find({a, b});
  if (it == edges.end()) throw std::out_of_range("CalibrationData::edge: unknown coupler");
  return it->second;
}

EdgeCalibration& CalibrationData::edge(int a, int b) {
  if (a > b) std::swap(a, b);
  const auto it = edges.find({a, b});
  if (it == edges.end()) throw std::out_of_range("CalibrationData::edge: unknown coupler");
  return it->second;
}

double CalibrationData::mean_gate_error_2q() const {
  if (edges.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& [k, v] : edges) {
    (void)k;
    acc += v.gate_error_2q;
  }
  return acc / static_cast<double>(edges.size());
}

double CalibrationData::mean_gate_error_1q() const {
  if (qubits.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& q : qubits) acc += q.gate_error_1q;
  return acc / static_cast<double>(qubits.size());
}

double CalibrationData::mean_readout_error() const {
  if (qubits.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& q : qubits) acc += q.readout_error;
  return acc / static_cast<double>(qubits.size());
}

double CalibrationData::mean_t1() const {
  if (qubits.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& q : qubits) acc += q.t1;
  return acc / static_cast<double>(qubits.size());
}

double CalibrationData::mean_t2() const {
  if (qubits.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& q : qubits) acc += q.t2;
  return acc / static_cast<double>(qubits.size());
}

CalibrationData sample_calibration(const Topology& topology, const CalibrationProfile& profile,
                                   Rng& rng) {
  CalibrationData cal;
  cal.qubits.resize(static_cast<std::size_t>(topology.num_qubits()));
  const double s = profile.dispersion;
  for (auto& q : cal.qubits) {
    q.gate_error_1q = clamp_error(profile.median_gate_error_1q * profile.quality *
                                  rng.lognormal(0.0, s));
    q.readout_error = clamp_error(profile.median_readout_error * profile.quality *
                                  rng.lognormal(0.0, s));
    // Coherence improves as quality improves (divide by quality).
    q.t1 = profile.median_t1 / profile.quality * rng.lognormal(0.0, s);
    q.t2 = std::min(profile.median_t2 / profile.quality * rng.lognormal(0.0, s), 2.0 * q.t1);
    q.gate_duration_1q = 35e-9;
    q.readout_duration = 750e-9;
  }
  for (const auto& e : topology.edges()) {
    EdgeCalibration ec;
    ec.gate_error_2q = clamp_error(profile.median_gate_error_2q * profile.quality *
                                   rng.lognormal(0.0, s));
    ec.gate_duration_2q = 300e-9 * rng.lognormal(0.0, 0.2);
    cal.edges[e] = ec;
  }
  cal.cycle = 0;
  cal.timestamp = 0.0;
  cal.rep_delay = profile.rep_delay;
  return cal;
}

CalibrationDrift::CalibrationDrift(CalibrationProfile profile, double sigma, double reversion)
    : profile_(profile), sigma_(sigma), reversion_(reversion) {
  if (sigma < 0.0) throw std::invalid_argument("CalibrationDrift: negative sigma");
  if (reversion < 0.0 || reversion > 1.0) {
    throw std::invalid_argument("CalibrationDrift: reversion must be in [0, 1]");
  }
}

double CalibrationDrift::drift_value(double current, double median, Rng& rng) const {
  // Geometric mean-reversion toward the profile median with log-normal jitter.
  const double log_target =
      (1.0 - reversion_) * std::log(current) + reversion_ * std::log(median);
  return std::exp(log_target + rng.normal(0.0, sigma_));
}

CalibrationData CalibrationDrift::next(const CalibrationData& current, Rng& rng) const {
  CalibrationData out = current;
  const double q = profile_.quality;
  for (auto& qc : out.qubits) {
    qc.gate_error_1q = clamp_error(drift_value(qc.gate_error_1q, profile_.median_gate_error_1q * q, rng));
    qc.readout_error = clamp_error(drift_value(qc.readout_error, profile_.median_readout_error * q, rng));
    qc.t1 = drift_value(qc.t1, profile_.median_t1 / q, rng);
    qc.t2 = std::min(drift_value(qc.t2, profile_.median_t2 / q, rng), 2.0 * qc.t1);
  }
  for (auto& [k, ec] : out.edges) {
    (void)k;
    ec.gate_error_2q = clamp_error(drift_value(ec.gate_error_2q, profile_.median_gate_error_2q * q, rng));
  }
  ++out.cycle;
  return out;
}

}  // namespace qon::qpu
