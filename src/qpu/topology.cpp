#include "qpu/topology.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace qon::qpu {

Topology::Topology(int num_qubits, std::vector<std::pair<int, int>> edges)
    : num_qubits_(num_qubits) {
  if (num_qubits <= 0) throw std::invalid_argument("Topology: num_qubits must be > 0");
  adjacency_.assign(static_cast<std::size_t>(num_qubits), {});
  for (auto [a, b] : edges) {
    if (a == b) throw std::invalid_argument("Topology: self-loop");
    if (a < 0 || b < 0 || a >= num_qubits || b >= num_qubits) {
      throw std::out_of_range("Topology: edge endpoint out of range");
    }
    if (a > b) std::swap(a, b);
    edges_.emplace_back(a, b);
  }
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  for (auto [a, b] : edges_) {
    adjacency_[static_cast<std::size_t>(a)].push_back(b);
    adjacency_[static_cast<std::size_t>(b)].push_back(a);
  }
}

bool Topology::connected(int a, int b) const {
  if (a > b) std::swap(a, b);
  return std::binary_search(edges_.begin(), edges_.end(), std::make_pair(a, b));
}

int Topology::distance(int a, int b) const {
  if (a < 0 || b < 0 || a >= num_qubits_ || b >= num_qubits_) {
    throw std::out_of_range("Topology::distance");
  }
  if (a == b) return 0;
  std::vector<int> dist(static_cast<std::size_t>(num_qubits_), -1);
  std::queue<int> frontier;
  dist[static_cast<std::size_t>(a)] = 0;
  frontier.push(a);
  while (!frontier.empty()) {
    const int u = frontier.front();
    frontier.pop();
    for (int v : adjacency_[static_cast<std::size_t>(u)]) {
      if (dist[static_cast<std::size_t>(v)] >= 0) continue;
      dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
      if (v == b) return dist[static_cast<std::size_t>(v)];
      frontier.push(v);
    }
  }
  return -1;
}

std::vector<std::vector<int>> Topology::distance_matrix() const {
  std::vector<std::vector<int>> m(static_cast<std::size_t>(num_qubits_),
                                  std::vector<int>(static_cast<std::size_t>(num_qubits_), -1));
  for (int s = 0; s < num_qubits_; ++s) {
    auto& dist = m[static_cast<std::size_t>(s)];
    std::queue<int> frontier;
    dist[static_cast<std::size_t>(s)] = 0;
    frontier.push(s);
    while (!frontier.empty()) {
      const int u = frontier.front();
      frontier.pop();
      for (int v : adjacency_[static_cast<std::size_t>(u)]) {
        if (dist[static_cast<std::size_t>(v)] >= 0) continue;
        dist[static_cast<std::size_t>(v)] = dist[static_cast<std::size_t>(u)] + 1;
        frontier.push(v);
      }
    }
  }
  return m;
}

bool Topology::is_connected() const {
  if (num_qubits_ == 0) return false;
  const auto row = distance_matrix()[0];
  return std::find(row.begin(), row.end(), -1) == row.end();
}

Topology Topology::line(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  return Topology(num_qubits, std::move(edges));
}

Topology Topology::ring(int num_qubits) {
  if (num_qubits < 3) throw std::invalid_argument("Topology::ring: need >= 3 qubits");
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < num_qubits; ++q) edges.emplace_back(q, q + 1);
  edges.emplace_back(0, num_qubits - 1);
  return Topology(num_qubits, std::move(edges));
}

Topology Topology::grid(int rows, int cols) {
  if (rows < 1 || cols < 1) throw std::invalid_argument("Topology::grid: bad shape");
  std::vector<std::pair<int, int>> edges;
  auto idx = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(idx(r, c), idx(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(idx(r, c), idx(r + 1, c));
    }
  }
  return Topology(rows * cols, std::move(edges));
}

Topology Topology::heavy_hex_falcon27() {
  // Undirected coupling map of IBM Falcon r5.11 (e.g. ibmq_mumbai).
  static const std::vector<std::pair<int, int>> kEdges = {
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
      {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
      {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}};
  return Topology(27, kEdges);
}

Topology Topology::fully_connected(int num_qubits) {
  std::vector<std::pair<int, int>> edges;
  for (int a = 0; a < num_qubits; ++a) {
    for (int b = a + 1; b < num_qubits; ++b) edges.emplace_back(a, b);
  }
  return Topology(num_qubits, std::move(edges));
}

}  // namespace qon::qpu
