#pragma once
// QPU qubit-connectivity topologies. Provides the generic families (line,
// ring, grid) plus the 27-qubit IBM-Falcon heavy-hex coupling map used by
// the paper's QPUs (mumbai, kolkata, cairo, ...).

#include <string>
#include <utility>
#include <vector>

namespace qon::qpu {

/// Undirected coupling graph over qubits 0..num_qubits-1. Edges are stored
/// as (a, b) with a < b, sorted lexicographically.
class Topology {
 public:
  Topology() = default;
  Topology(int num_qubits, std::vector<std::pair<int, int>> edges);

  int num_qubits() const { return num_qubits_; }
  const std::vector<std::pair<int, int>>& edges() const { return edges_; }

  /// True if (a, b) is a coupler (order-insensitive).
  bool connected(int a, int b) const;

  /// Neighbor lists indexed by qubit.
  const std::vector<std::vector<int>>& adjacency() const { return adjacency_; }

  /// BFS hop distance between qubits; -1 if disconnected.
  int distance(int a, int b) const;

  /// All-pairs BFS distance matrix (row-major num_qubits x num_qubits).
  std::vector<std::vector<int>> distance_matrix() const;

  /// True when the coupling graph is connected.
  bool is_connected() const;

  // -- factory functions ----------------------------------------------------
  static Topology line(int num_qubits);
  static Topology ring(int num_qubits);
  static Topology grid(int rows, int cols);
  /// The 27-qubit heavy-hex map of IBM Falcon r5.11 processors.
  static Topology heavy_hex_falcon27();
  /// Fully connected graph (trapped-ion-style all-to-all).
  static Topology fully_connected(int num_qubits);

 private:
  int num_qubits_ = 0;
  std::vector<std::pair<int, int>> edges_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace qon::qpu
