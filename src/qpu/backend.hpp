#pragma once
// QPU backends: a named device with a model (topology + basis gates), a
// mutable calibration snapshot, and the static metadata the system monitor
// publishes. Template backends average the calibration of all same-model
// devices (§6 "QPU transpilation").

#include <memory>
#include <string>
#include <vector>

#include "circuit/gate.hpp"
#include "qpu/calibration.hpp"
#include "qpu/topology.hpp"

namespace qon::qpu {

/// A QPU model (product line): topology + basis gate set + model name.
/// Several backends may share a model, as Falcon-r5 devices do at IBM.
struct QpuModel {
  std::string name;        ///< e.g. "falcon-r5"
  Topology topology;
  std::vector<circuit::GateKind> basis_gates;  ///< e.g. {RZ, SX, X, CX}

  bool in_basis(circuit::GateKind kind) const;
};

/// The default Falcon-like basis {RZ, SX, X, CX} (+ measure/barrier/delay,
/// which are always legal).
std::vector<circuit::GateKind> falcon_basis();

/// A concrete QPU device.
class Backend {
 public:
  Backend(std::string name, std::shared_ptr<const QpuModel> model, CalibrationData calibration,
          CalibrationProfile profile);

  const std::string& name() const { return name_; }
  const QpuModel& model() const { return *model_; }
  std::shared_ptr<const QpuModel> model_ptr() const { return model_; }
  int num_qubits() const { return model_->topology.num_qubits(); }
  const Topology& topology() const { return model_->topology; }

  const CalibrationData& calibration() const { return calibration_; }
  void set_calibration(CalibrationData cal) { calibration_ = std::move(cal); }

  /// The quality envelope this backend's calibrations are drawn from.
  const CalibrationProfile& profile() const { return profile_; }

  /// Advances one calibration cycle in place using the given drift process.
  void recalibrate(const CalibrationDrift& drift, Rng& rng, double timestamp);

 private:
  std::string name_;
  std::shared_ptr<const QpuModel> model_;
  CalibrationData calibration_;
  CalibrationProfile profile_;
};

/// Builds a template backend for `model`: same topology/basis, calibration
/// values averaged across `backends` (which must share the model). Used by
/// the resource estimator for scalable coarse-grained estimation.
Backend make_template_backend(const std::shared_ptr<const QpuModel>& model,
                              const std::vector<const Backend*>& backends);

}  // namespace qon::qpu
