#include "qpu/fleet.hpp"

#include <cmath>
#include <stdexcept>

namespace qon::qpu {

std::shared_ptr<Backend> Fleet::backend(const std::string& name) const {
  for (const auto& b : backends) {
    if (b->name() == name) return b;
  }
  throw std::out_of_range("Fleet::backend: unknown backend: " + name);
}

std::vector<Backend> Fleet::template_backends() const {
  std::vector<Backend> out;
  for (const auto& model : models) {
    std::vector<const Backend*> same_model;
    for (const auto& b : backends) {
      if (b->model().name == model->name) same_model.push_back(b.get());
    }
    if (!same_model.empty()) out.push_back(make_template_backend(model, same_model));
  }
  return out;
}

void Fleet::recalibrate_all(Rng& rng, double timestamp) {
  for (auto& b : backends) b->recalibrate(drift, rng, timestamp);
}

const std::vector<std::string>& ibm_device_names() {
  static const std::vector<std::string> kNames = {
      "auckland", "lagos",  "cairo",     "hanoi",   "kolkata", "mumbai",
      "guadalupe", "nairobi", "algiers", "perth",   "jakarta", "quito",
      "belem",    "manila", "santiago",  "bogota",  "lima",    "quebec",
      "osaka",    "brisbane"};
  return kNames;
}

Fleet make_ibm_like_fleet(std::size_t count, std::uint64_t seed, double best_quality,
                          double worst_quality) {
  // Defaults yield a fleet whose mean 2q-error spreads ~2x best-to-worst,
  // reproducing the ~38% GHZ-12 fidelity spread of Fig. 2b.
  if (count == 0) throw std::invalid_argument("make_ibm_like_fleet: count must be > 0");
  if (!(best_quality > 0.0) || !(worst_quality >= best_quality)) {
    throw std::invalid_argument("make_ibm_like_fleet: bad quality range");
  }
  Rng rng(seed);

  Fleet fleet;
  auto model = std::make_shared<QpuModel>();
  model->name = "falcon-r5";
  model->topology = Topology::heavy_hex_falcon27();
  model->basis_gates = falcon_basis();
  fleet.models.push_back(model);

  // Log-uniformly spaced quality factors, shuffled so the name order does
  // not correlate with quality.
  std::vector<double> qualities(count);
  for (std::size_t i = 0; i < count; ++i) {
    const double t = count == 1 ? 0.5 : static_cast<double>(i) / static_cast<double>(count - 1);
    qualities[i] = std::exp(std::log(best_quality) +
                            t * (std::log(worst_quality) - std::log(best_quality)));
  }
  rng.shuffle(qualities);

  const auto& names = ibm_device_names();
  for (std::size_t i = 0; i < count; ++i) {
    CalibrationProfile profile;
    profile.quality = qualities[i];
    // Devices differ in reset/repetition rates: 150-500 us per shot.
    profile.rep_delay = rng.uniform(150e-6, 500e-6);
    CalibrationData cal = sample_calibration(model->topology, profile, rng);
    std::string name =
        i < names.size() ? names[i] : "qpu" + std::to_string(i);
    fleet.backends.push_back(
        std::make_shared<Backend>(std::move(name), model, std::move(cal), profile));
  }
  fleet.drift = CalibrationDrift(CalibrationProfile{});
  return fleet;
}

}  // namespace qon::qpu
