#pragma once
// Per-QPU calibration data: the error rates, coherence times and durations
// that periodic calibration procedures publish (§2.1). Calibration is the
// *information surface* the estimator and scheduler see; the simulator's
// ground-truth noise is derived from it plus hidden perturbations.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "qpu/topology.hpp"

namespace qon::qpu {

/// Calibration record for one physical qubit.
struct QubitCalibration {
  double t1 = 100e-6;             ///< relaxation time [s]
  double t2 = 80e-6;              ///< dephasing time [s]
  double readout_error = 0.02;    ///< P(flip) on measurement
  double gate_error_1q = 3e-4;    ///< depolarizing error per sx/x gate
  double readout_duration = 750e-9;  ///< [s]
  double gate_duration_1q = 35e-9;   ///< [s] (rz is virtual: 0 error, 0 time)
};

/// Calibration record for one coupler (two-qubit gate).
struct EdgeCalibration {
  double gate_error_2q = 1e-2;   ///< depolarizing error per cx
  double gate_duration_2q = 300e-9;  ///< [s]
};

/// Full calibration snapshot of a QPU at one calibration cycle.
struct CalibrationData {
  std::vector<QubitCalibration> qubits;
  std::map<std::pair<int, int>, EdgeCalibration> edges;  ///< keyed (a<b)
  std::uint64_t cycle = 0;      ///< calibration cycle counter
  double timestamp = 0.0;       ///< simulated time of the calibration [s]
  /// Per-shot reset/repetition overhead [s]; devices differ substantially
  /// (IBM defaults around 250 us), which is why execution time varies
  /// across QPUs for the same circuit (Fig. 10a).
  double rep_delay = 250e-6;

  /// Looks up edge calibration order-insensitively; throws on unknown edge.
  const EdgeCalibration& edge(int a, int b) const;
  EdgeCalibration& edge(int a, int b);

  double mean_gate_error_2q() const;
  double mean_gate_error_1q() const;
  double mean_readout_error() const;
  double mean_t1() const;
  double mean_t2() const;
};

/// Quality envelope from which fresh calibrations are sampled. `quality`
/// scales all error rates multiplicatively (< 1 = better-than-average QPU),
/// producing the persistent spatial variance of Fig. 2b.
struct CalibrationProfile {
  double quality = 1.0;
  double median_gate_error_2q = 9e-3;
  double median_gate_error_1q = 2.8e-4;
  double median_readout_error = 1.8e-2;
  double median_t1 = 120e-6;
  double median_t2 = 95e-6;
  /// Log-normal spread (sigma of ln) across qubits/edges within one QPU.
  double dispersion = 0.35;
  /// Device repetition delay [s] (sampled per backend by the fleet factory).
  double rep_delay = 250e-6;
};

/// Samples a complete calibration snapshot for `topology` under `profile`.
CalibrationData sample_calibration(const Topology& topology, const CalibrationProfile& profile,
                                   Rng& rng);

/// Temporal drift process (§2.1 "can fluctuate unpredictably between
/// calibration cycles"): produces the next cycle's calibration by jittering
/// every rate log-normally around its current value while mean-reverting
/// toward the profile median.
class CalibrationDrift {
 public:
  /// `sigma` is the per-cycle log-normal jitter; `reversion` in [0,1] pulls
  /// values back toward the profile (0 = pure random walk).
  CalibrationDrift(CalibrationProfile profile, double sigma = 0.18, double reversion = 0.35);

  CalibrationData next(const CalibrationData& current, Rng& rng) const;

  const CalibrationProfile& profile() const { return profile_; }

 private:
  double drift_value(double current, double median, Rng& rng) const;

  CalibrationProfile profile_;
  double sigma_;
  double reversion_;
};

}  // namespace qon::qpu
