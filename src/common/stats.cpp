#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon {

double sum(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> cdf;
  cdf.reserve(xs.size());
  const double n = static_cast<double>(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    cdf.push_back({xs[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double cdf_at(const std::vector<double>& xs, double threshold) {
  if (xs.empty()) return 0.0;
  std::size_t below = 0;
  for (double x : xs) {
    if (x <= threshold) ++below;
  }
  return static_cast<double>(below) / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  if (n_ == 0) throw std::logic_error("RunningStats::min: empty");
  return min_;
}

double RunningStats::max() const {
  if (n_ == 0) throw std::logic_error("RunningStats::max: empty");
  return max_;
}

void TimeWeightedAverage::record(double now, double value) {
  if (!started_) {
    started_ = true;
    first_time_ = last_time_ = now;
    last_value_ = value;
    return;
  }
  if (now < last_time_) throw std::invalid_argument("TimeWeightedAverage: time went backwards");
  weighted_sum_ += last_value_ * (now - last_time_);
  last_time_ = now;
  last_value_ = value;
}

double TimeWeightedAverage::average(double fallback) const {
  const double span = last_time_ - first_time_;
  if (span <= 0.0) return started_ ? last_value_ : fallback;
  return weighted_sum_ / span;
}

}  // namespace qon
