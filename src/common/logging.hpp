#pragma once
// Minimal leveled logger. Components log through a named Logger; the global
// level gates output so benchmarks stay quiet by default.

#include <sstream>
#include <string>

namespace qon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets / reads the process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Converts a level to its display tag ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

/// Named logger; cheap to construct, stateless apart from the name.
class Logger {
 public:
  explicit Logger(std::string name) : name_(std::move(name)) {}

  void debug(const std::string& msg) const { log(LogLevel::kDebug, msg); }
  void info(const std::string& msg) const { log(LogLevel::kInfo, msg); }
  void warn(const std::string& msg) const { log(LogLevel::kWarn, msg); }
  void error(const std::string& msg) const { log(LogLevel::kError, msg); }

  /// Emits `msg` at `level` if it passes the global gate. Thread-safe.
  void log(LogLevel level, const std::string& msg) const;

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace qon
