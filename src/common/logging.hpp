#pragma once
// Minimal leveled logger with structured context. Components log through a
// named Logger; the global level gates output so benchmarks stay quiet by
// default. Messages may carry key=value fields (run ids, verdicts,
// counters) so log lines correlate with the obs tracer's spans:
//
//   logger.debug("run settled", {{"run", id}, {"status", "completed"}});
//     -> [DEBUG] orchestrator: run settled run=42 status=completed
//
// Building a field list has real cost (std::to_string per numeric field),
// so hot-path call sites guard with Logger::enabled(level) before
// constructing the initializer list.
//
// Bootstrap: the global level initializes from the QON_LOG_LEVEL
// environment variable (debug|info|warn|error|off, case-insensitive;
// anything else keeps the kWarn default), so examples and benches can be
// made verbose without recompiling. set_log_level() still overrides at
// runtime.

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>

namespace qon {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets / reads the process-wide minimum level that is actually emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Converts a level to its display tag ("DEBUG", "INFO", ...).
const char* log_level_name(LogLevel level);

/// Parses a QON_LOG_LEVEL value (case-insensitive level name); `fallback`
/// for null / unrecognized input.
LogLevel parse_log_level(const char* text, LogLevel fallback);

/// One key=value field of a structured log line. Arithmetic values are
/// formatted on construction (integers exactly, floating point %g-style).
struct LogField {
  std::string key;
  std::string value;

  LogField(std::string k, std::string v) : key(std::move(k)), value(std::move(v)) {}
  LogField(std::string k, const char* v) : key(std::move(k)), value(v) {}
  template <typename T, std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  LogField(std::string k, T v) : key(std::move(k)) {
    if constexpr (std::is_same_v<T, bool>) {
      value = v ? "true" : "false";
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream out;
      out << v;
      value = out.str();
    } else {
      value = std::to_string(v);
    }
  }
};

/// Named logger; cheap to construct, stateless apart from the name.
class Logger {
 public:
  explicit Logger(std::string name) : name_(std::move(name)) {}

  void debug(const std::string& msg) const { log(LogLevel::kDebug, msg); }
  void info(const std::string& msg) const { log(LogLevel::kInfo, msg); }
  void warn(const std::string& msg) const { log(LogLevel::kWarn, msg); }
  void error(const std::string& msg) const { log(LogLevel::kError, msg); }

  void debug(const std::string& msg, std::initializer_list<LogField> fields) const {
    log(LogLevel::kDebug, msg, fields);
  }
  void info(const std::string& msg, std::initializer_list<LogField> fields) const {
    log(LogLevel::kInfo, msg, fields);
  }
  void warn(const std::string& msg, std::initializer_list<LogField> fields) const {
    log(LogLevel::kWarn, msg, fields);
  }
  void error(const std::string& msg, std::initializer_list<LogField> fields) const {
    log(LogLevel::kError, msg, fields);
  }

  /// Emits `msg` at `level` if it passes the global gate. Thread-safe.
  void log(LogLevel level, const std::string& msg) const;
  /// Structured form: `msg key=value ...` — fields in argument order.
  void log(LogLevel level, const std::string& msg,
           std::initializer_list<LogField> fields) const;

  /// Whether `level` would be emitted right now — guard field construction
  /// on hot paths: `if (Logger::enabled(LogLevel::kDebug)) log.debug(...)`.
  static bool enabled(LogLevel level) {
    return static_cast<int>(level) >= static_cast<int>(log_level());
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// Sampling guard for hot-path log sites: lets one call through out of
/// every `every` and reports how many were suppressed since the last
/// emission, so an overload flood (thousands of admission sheds per
/// second) cannot convoy every worker on the kLogging mutex:
///
///   static LogRateLimiter limiter(100);
///   if (std::uint64_t skipped = 0; limiter.allow(&skipped)) {
///     log.warn("admission gate shed run", {..., {"suppressed", skipped}});
///   }
///
/// Wait-free: one relaxed fetch_add per call. Deliberately count-based
/// rather than time-based so suppression is deterministic under test.
class LogRateLimiter {
 public:
  explicit LogRateLimiter(std::uint64_t every) : every_(every > 0 ? every : 1) {}

  /// True on calls 1, every+1, 2*every+1, ...; when true, `*suppressed`
  /// (if given) is the number of calls swallowed since the last allowed one
  /// (0 on the first).
  bool allow(std::uint64_t* suppressed = nullptr) {
    const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
    if (n % every_ != 0) {
      return false;
    }
    if (suppressed != nullptr) {
      *suppressed = n == 0 ? 0 : every_ - 1;
    }
    return true;
  }

  std::uint64_t total() const { return count_.load(std::memory_order_relaxed); }

 private:
  const std::uint64_t every_;
  std::atomic<std::uint64_t> count_{0};
};

}  // namespace qon
