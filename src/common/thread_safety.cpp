#include "common/thread_safety.hpp"

#if QON_LOCK_RANK_CHECKS

#include <cstdio>
#include <cstdlib>

namespace qon::lock_rank {
namespace {

// Per-thread stack of held locks. Fixed-size: the deepest legal chain is
// one lock per rank tier (a dozen), so 32 leaves slack for tests; blowing
// the cap is itself a hierarchy bug and dies with the same diagnostic
// machinery. thread_local POD — no dynamic allocation on lock paths.
struct Held {
  const void* mutex;
  LockRank rank;
  const char* name;
};

constexpr int kMaxHeld = 32;
thread_local Held t_held[kMaxHeld];
thread_local int t_held_count = 0;

[[noreturn]] void die(const char* what, const void* mutex, LockRank rank,
                      const char* name) {
  std::fprintf(stderr,
               "qon lock-rank violation: %s acquiring %s (rank %d, %p); held:\n",
               what, name, static_cast<int>(rank), mutex);
  for (int i = 0; i < t_held_count; ++i) {
    std::fprintf(stderr, "  [%d] %s (rank %d, %p)\n", i, t_held[i].name,
                 static_cast<int>(t_held[i].rank), t_held[i].mutex);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void note_acquire(const void* mutex, LockRank rank, const char* name) {
  for (int i = 0; i < t_held_count; ++i) {
    if (t_held[i].mutex == mutex) {
      die("recursive lock", mutex, rank, name);
    }
  }
  if (rank != LockRank::kUnranked) {
    for (int i = 0; i < t_held_count; ++i) {
      const LockRank held = t_held[i].rank;
      // Strictly increasing: equal ranks are also a violation, so two
      // same-tier locks can never nest in either order.
      if (held != LockRank::kUnranked && held >= rank) {
        die("lock-order inversion", mutex, rank, name);
      }
    }
  }
  if (t_held_count >= kMaxHeld) {
    die("held-lock stack overflow", mutex, rank, name);
  }
  t_held[t_held_count++] = Held{mutex, rank, name};
}

void note_release(const void* mutex) {
  // Non-LIFO release is legal (condition_variable_any::wait unlocks the
  // waited mutex from mid-stack): remove wherever it is.
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mutex == mutex) {
      for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
      --t_held_count;
      return;
    }
  }
  // Releasing a never-acquired mutex: tolerated silently. std::mutex makes
  // it UB anyway, and aborting here would fire on exotic-but-legal patterns
  // (ownership transferred between threads), which the checker doesn't model.
}

int held_count() { return t_held_count; }

}  // namespace qon::lock_rank

#else

namespace qon::lock_rank {
void note_acquire(const void*, LockRank, const char*) {}
void note_release(const void*) {}
int held_count() { return 0; }
}  // namespace qon::lock_rank

#endif  // QON_LOCK_RANK_CHECKS
