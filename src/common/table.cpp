#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace qon {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  if (!title.empty()) os << "== " << title << " ==\n";
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void print_series(std::ostream& os, const std::string& title, const std::vector<Series>& series,
                  const std::string& x_label, const std::string& y_label, int precision) {
  os << "== " << title << " ==\n";
  for (const auto& s : series) {
    os << "-- series: " << s.name << " --\n";
    TextTable t({x_label, y_label});
    const std::size_t n = std::min(s.x.size(), s.y.size());
    for (std::size_t i = 0; i < n; ++i) {
      t.add_row({TextTable::num(s.x[i], precision), TextTable::num(s.y[i], precision)});
    }
    t.print(os);
  }
}

}  // namespace qon
