#include "common/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace qon {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t r;
  do {
    r = (*this)();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::exponential(double lambda) {
  if (lambda <= 0.0) throw std::invalid_argument("Rng::exponential: lambda must be > 0");
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("Rng::weighted_index: all weights zero");
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace qon
