#pragma once
// Descriptive statistics used by the metrics pipeline and the benchmark
// harnesses: means, percentiles, CDFs, histograms and streaming accumulators.

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace qon {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double stddev(const std::vector<double>& xs);

/// Population variance helper used by stddev.
double variance(const std::vector<double>& xs);

/// Median (linear-interpolated percentile 50).
double median(std::vector<double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Sorts a copy.
double percentile(std::vector<double> xs, double p);

/// Minimum / maximum; throw std::invalid_argument on empty input.
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Sum of all elements.
double sum(const std::vector<double>& xs);

/// One point of an empirical CDF.
struct CdfPoint {
  double value;        ///< sample value (x axis)
  double probability;  ///< P(X <= value) (y axis)
};

/// Empirical CDF of the samples, one point per sample (sorted ascending).
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// Fraction of samples <= threshold.
double cdf_at(const std::vector<double>& xs, double threshold);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; samples outside
/// the range are clamped into the first/last bucket.
struct Histogram {
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<std::size_t>& counts() const { return counts_; }
  std::size_t total() const { return total_; }

  /// Midpoint of bucket i.
  double bucket_center(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< sample variance (n-1)
  double stddev() const;
  double min() const;  ///< throws if empty
  double max() const;  ///< throws if empty

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted average of a piecewise-constant signal, e.g. queue length
/// or utilization over simulated time.
class TimeWeightedAverage {
 public:
  /// Records that the signal held `value` from the previous timestamp until
  /// `now`. Timestamps must be non-decreasing.
  void record(double now, double value);

  /// Average over the observed interval; `fallback` if nothing was recorded.
  double average(double fallback = 0.0) const;

  double elapsed() const { return last_time_ - first_time_; }

 private:
  bool started_ = false;
  double first_time_ = 0.0;
  double last_time_ = 0.0;
  double last_value_ = 0.0;
  double weighted_sum_ = 0.0;
};

}  // namespace qon
