#pragma once
// Deterministic pseudo-random number generation for the whole system.
//
// Every stochastic component in Qonductor (load generator, noise trajectories,
// NSGA-II operators, calibration drift, ...) draws from an explicitly seeded
// Rng instance so that simulations and tests are reproducible bit-for-bit.
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded via
// splitmix64 so that small seed integers produce well-mixed state.

#include <cstdint>
#include <vector>

namespace qon {

/// Deterministic random number generator (xoshiro256**).
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with <random> distributions, but the member helpers below are preferred
/// as they are portable across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed. Two Rngs with equal seeds
  /// produce identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint64_t poisson(double mean);

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each parallel
  /// worker / simulation entity its own stream.
  Rng split();

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qon
