#pragma once
// ASCII table / series printers used by the benchmark harnesses to emit the
// rows and data series that correspond to the paper's tables and figures.

#include <iosfwd>
#include <string>
#include <vector>

namespace qon {

/// Column-aligned ASCII table with an optional title.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the decimal point.
  static std::string num(double value, int precision = 3);

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os, const std::string& title = "") const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// A named (x, y) series; `print_series` emits aligned columns suitable for
/// plotting or diffing, mirroring a figure's line/bars.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

/// Prints all series over a shared x header. Series may have distinct x
/// vectors; each series is printed as its own block.
void print_series(std::ostream& os, const std::string& title, const std::vector<Series>& series,
                  const std::string& x_label = "x", const std::string& y_label = "y",
                  int precision = 3);

}  // namespace qon
