#include "common/logging.hpp"

#include <atomic>
#include <iostream>

#include "common/thread_safety.hpp"

namespace qon {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
// Innermost leaf of the lock hierarchy: log() may be called while holding
// any other lock in the system.
Mutex g_io_mutex{LockRank::kLogging, "logging::g_io_mutex"};
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& msg) const {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(g_io_mutex);
  std::cerr << "[" << log_level_name(level) << "] " << name_ << ": " << msg << "\n";
}

}  // namespace qon
