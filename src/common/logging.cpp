#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

#include "common/thread_safety.hpp"

namespace qon {

LogLevel parse_log_level(const char* text, LogLevel fallback) {
  if (text == nullptr) return fallback;
  std::string lowered;
  for (const char* p = text; *p != '\0'; ++p) {
    lowered += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  if (lowered == "debug") return LogLevel::kDebug;
  if (lowered == "info") return LogLevel::kInfo;
  if (lowered == "warn" || lowered == "warning") return LogLevel::kWarn;
  if (lowered == "error") return LogLevel::kError;
  if (lowered == "off" || lowered == "none") return LogLevel::kOff;
  return fallback;
}

namespace {
/// Bootstrap: QON_LOG_LEVEL picks the initial gate (default kWarn), so a
/// bench or example turns verbose without recompiling. set_log_level()
/// overrides at runtime.
std::atomic<int> g_level{
    static_cast<int>(parse_log_level(std::getenv("QON_LOG_LEVEL"), LogLevel::kWarn))};
// Innermost leaf of the lock hierarchy: log() may be called while holding
// any other lock in the system.
Mutex g_io_mutex{LockRank::kLogging, "logging::g_io_mutex"};
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& msg) const {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(g_io_mutex);
  std::cerr << "[" << log_level_name(level) << "] " << name_ << ": " << msg << "\n";
}

void Logger::log(LogLevel level, const std::string& msg,
                 std::initializer_list<LogField> fields) const {
  if (static_cast<int>(level) < g_level.load()) return;
  std::string line = msg;
  for (const auto& field : fields) {
    line += " ";
    line += field.key;
    line += "=";
    line += field.value;
  }
  MutexLock lock(g_io_mutex);
  std::cerr << "[" << log_level_name(level) << "] " << name_ << ": " << line << "\n";
}

}  // namespace qon
