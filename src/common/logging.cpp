#include "common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace qon {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_io_mutex;
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& msg) const {
  if (static_cast<int>(level) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_io_mutex);
  std::cerr << "[" << log_level_name(level) << "] " << name_ << ": " << msg << "\n";
}

}  // namespace qon
