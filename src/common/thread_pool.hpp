#pragma once
// Work-sharing thread pool and a blocked parallel_for, in the spirit of the
// OpenMP "parallel for" worksharing construct: parallelism is explicit, the
// caller owns the decomposition, and the pool never spawns threads behind
// the caller's back.
//
// Used to parallelize NSGA-II population evaluation, Monte-Carlo noise
// trajectories and state-vector gate application.

#include <atomic>
#include <cstddef>
#include <functional>
#include <future>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/thread_safety.hpp"

namespace qon {

/// Fixed-size thread pool. submit() accepts any nullary callable and
/// returns a std::future of its result type for value/exception
/// propagation.
///
/// Shutdown contract: once shutdown() begins (explicitly or via the
/// destructor), every task already accepted still runs to completion, and
/// every later submission is rejected deterministically — try_submit()
/// returns nullopt, submit() throws. A submission can never race the worker
/// join into being silently dropped: acceptance and the stop flag are
/// decided under one lock, and workers drain the queue before exiting.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Stops accepting work, runs everything already queued, and joins the
  /// workers. Idempotent and safe to call concurrently with submissions.
  void shutdown() EXCLUDES(mutex_, join_mutex_);

  /// True once shutdown has begun; any subsequent submission is rejected.
  bool stopping() const { return stopping_.load(std::memory_order_acquire); }

  /// Enqueues a task unless the pool is shutting down; nullopt means the
  /// task was rejected and will never run. The future yields the task's
  /// return value and rethrows any task exception.
  template <typename F>
  std::optional<std::future<std::invoke_result_t<std::decay_t<F>>>> try_submit(F&& f)
      EXCLUDES(mutex_) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      MutexLock lock(mutex_);
      if (stopping_.load(std::memory_order_relaxed)) return std::nullopt;
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// try_submit() for call sites that treat a shut-down pool as a logic
  /// error: throws std::logic_error on rejection.
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& f) EXCLUDES(mutex_) {
    auto fut = try_submit(std::forward<F>(f));
    if (!fut) throw std::logic_error("ThreadPool::submit after shutdown");
    return std::move(*fut);
  }

 private:
  void worker_loop() EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_{LockRank::kThreadPool, "ThreadPool::mutex_"};
  std::queue<std::function<void()>> tasks_ GUARDED_BY(mutex_);
  CondVar cv_;
  /// Written under mutex_ (ordering vs. task acceptance); atomic so
  /// stopping() can be read without the lock.
  std::atomic<bool> stopping_{false};
  /// Serializes concurrent shutdown() calls.
  Mutex join_mutex_{LockRank::kShutdownJoin, "ThreadPool::join_mutex_"};
  bool joined_ GUARDED_BY(join_mutex_) = false;
};

/// Process-wide default pool (lazily constructed).
ThreadPool& global_thread_pool();

/// Splits [begin, end) into contiguous blocks and runs `body(lo, hi)` for
/// each block on the pool. Blocks on completion; rethrows the first task
/// exception. Runs inline when the range is small or the pool has 1 thread.
void parallel_for_blocked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          ThreadPool* pool = nullptr, std::size_t min_block = 1024);

/// Element-wise convenience wrapper over parallel_for_blocked.
void parallel_for_each_index(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             ThreadPool* pool = nullptr, std::size_t min_block = 1024);

}  // namespace qon
