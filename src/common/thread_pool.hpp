#pragma once
// Work-sharing thread pool and a blocked parallel_for, in the spirit of the
// OpenMP "parallel for" worksharing construct: parallelism is explicit, the
// caller owns the decomposition, and the pool never spawns threads behind
// the caller's back.
//
// Used to parallelize NSGA-II population evaluation, Monte-Carlo noise
// trajectories and state-vector gate application.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace qon {

/// Fixed-size thread pool. submit() accepts any nullary callable and
/// returns a std::future of its result type for value/exception
/// propagation.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the returned future yields the task's return value
  /// and rethrows any task exception.
  template <typename F>
  std::future<std::invoke_result_t<std::decay_t<F>>> submit(F&& f) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) throw std::logic_error("ThreadPool::submit after shutdown");
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed).
ThreadPool& global_thread_pool();

/// Splits [begin, end) into contiguous blocks and runs `body(lo, hi)` for
/// each block on the pool. Blocks on completion; rethrows the first task
/// exception. Runs inline when the range is small or the pool has 1 thread.
void parallel_for_blocked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          ThreadPool* pool = nullptr, std::size_t min_block = 1024);

/// Element-wise convenience wrapper over parallel_for_blocked.
void parallel_for_each_index(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             ThreadPool* pool = nullptr, std::size_t min_block = 1024);

}  // namespace qon
