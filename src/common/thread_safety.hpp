#pragma once
// Compile-time concurrency verification for the whole serving stack.
//
// Two layers, one header:
//
//  1. **Clang Thread Safety Analysis macros** (`GUARDED_BY`, `REQUIRES`,
//     `ACQUIRE`/`RELEASE`, …) over `-Wthread-safety`: every mutex-owning
//     class annotates which fields its lock guards and which private
//     helpers require it, so an unguarded access or a lock-discipline
//     violation is a *compile error* under Clang (the `static-analysis` CI
//     job builds with `-Wthread-safety -Werror`). Under GCC the attributes
//     expand to nothing — the annotations are free documentation.
//
//  2. **A ranked mutex wrapper with runtime deadlock detection**:
//     `qon::Mutex` carries a `CAPABILITY` attribute (so the analysis sees
//     every acquisition) and a static `LockRank`. Each thread tracks the
//     ranks it holds; acquiring a mutex whose rank is not strictly greater
//     than every held rank aborts with a diagnostic naming both locks.
//     A potential ABBA deadlock therefore dies deterministically on first
//     execution of *either* arm — no unlucky interleaving required — and
//     the 300 s ctest timeouts never have to catch a silent hang.
//
// The global rank order (see ROADMAP.md "Concurrency invariants") is the
// acquired-before order: a thread may only acquire strictly increasing
// ranks. Outer (coarse, long-held) locks rank low; leaf locks rank high.
//
// Checking is ON by default in every build type — the cost is a handful of
// thread-local loads/stores per acquisition, noise against the mutex
// operation itself — so the Release tier-1 suite, TSAN and ASan jobs all
// enforce the hierarchy. Define QON_LOCK_RANK_CHECKS=0 to compile it out.

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---- Clang Thread Safety Analysis attribute macros ---------------------------
// Standard spelling (LLVM docs / Abseil); expand to nothing on non-Clang
// compilers so GCC builds see plain classes.

#if defined(__clang__) && !defined(SWIG)
#define QON_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define QON_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#ifndef CAPABILITY
#define CAPABILITY(x) QON_THREAD_ANNOTATION__(capability(x))
#endif
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY QON_THREAD_ANNOTATION__(scoped_lockable)
#endif
#ifndef GUARDED_BY
#define GUARDED_BY(x) QON_THREAD_ANNOTATION__(guarded_by(x))
#endif
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) QON_THREAD_ANNOTATION__(pt_guarded_by(x))
#endif
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) QON_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) QON_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#endif
#ifndef REQUIRES
#define REQUIRES(...) QON_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  QON_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE
#define ACQUIRE(...) QON_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) QON_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) QON_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) QON_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#endif
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) QON_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#endif
#ifndef EXCLUDES
#define EXCLUDES(...) QON_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#endif
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) QON_THREAD_ANNOTATION__(assert_capability(x))
#endif
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) QON_THREAD_ANNOTATION__(lock_returned(x))
#endif
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS QON_THREAD_ANNOTATION__(no_thread_safety_analysis)
#endif

// ---- lock-rank deadlock detection --------------------------------------------

#ifndef QON_LOCK_RANK_CHECKS
#define QON_LOCK_RANK_CHECKS 1
#endif

namespace qon {

/// The global lock hierarchy: every Mutex in the codebase is constructed
/// with one of these ranks, and a thread may only acquire a mutex whose
/// rank is STRICTLY greater than every rank it already holds (two distinct
/// mutexes of the same rank are never held together; re-acquiring the same
/// mutex is always fatal). Outer locks rank low, leaves rank high. The
/// ordering edges that force this ranking are documented per entry and in
/// ROADMAP.md "Concurrency invariants" — extend the enum there first when
/// adding a lock.
enum class LockRank : int {
  /// Opts out of hierarchy checking (recursion is still fatal). For locks
  /// whose nesting is externally constrained (none in-tree today).
  kUnranked = 0,

  /// Qonductor::engine_mutex_ — the data-plane execution lock (fleet
  /// virtual clock, shared RNG, hidden noise). Outermost: scheduling
  /// snapshots and quantum execution acquire the reservation, monitor and
  /// thread-pool locks inside it.
  kEngine = 100,
  /// Qonductor::reservations_mutex_ — §7 reservation windows. Inside
  /// kEngine (expire_reservations runs under the snapshot's engine lock),
  /// outside kMonitor (the flag flip happens under it).
  kReservations = 200,
  /// api::RunState::mutex — one per run record. Outside kRunTable
  /// (settle_run calls mark_terminal under the record lock) and outside
  /// kMonitor (a mark_terminal eviction erases monitor entries).
  kRunState = 300,
  /// core::RunTable::mutex_ — the run-record table structure.
  kRunTable = 400,
  /// core::SystemMonitor::mutex_ — serializes the KV backend. Inside
  /// kEngine, kReservations and kRunState (see above); a leaf otherwise.
  kMonitor = 500,
  /// obs::MetricsRegistry::mutex_ — metric registration + snapshot. Must
  /// rank BELOW kPendingQueue/kRunEngine/kSchedulerStats: snapshot() polls
  /// callback gauges (queue depth, engine live runs) that acquire those
  /// locks while the registry lock is held. Hot-path increments are
  /// lock-free atomics and never touch this mutex.
  kMetrics = 550,
  /// obs::SloMonitor::mutex_ — SLI bucket rings + alert rule states.
  /// Above kMetrics so a registry snapshot's callback gauges may read SLO
  /// state under the registry lock; below the component locks so record()
  /// from the settle path (which holds none of them) stays a leaf in
  /// practice.
  kSlo = 560,
  /// obs::HealthMonitor::mutex_ — the watchdog/probe entry list. Held only
  /// for registration and the entry-list copy; verdict callbacks run
  /// OUTSIDE it (the fleet probe takes kMonitor=500, which would otherwise
  /// rank-invert).
  kHealth = 570,
  /// core::PendingQueue::mutex_ — the scheduler service's pending queue.
  /// Never held while settling a task (settlement happens after take).
  kPendingQueue = 600,
  /// core::PendingQueue::waitlist_mutex_ — the queue-capacity waitlist.
  /// Inside kPendingQueue: offer() decides full-vs-queued and the drain
  /// paths (take_batch/take_expired/remove/close) promote waiters under the
  /// queue lock, so waitlist membership and capacity change atomically.
  /// Outside kPendingTask: waitlisted items are never settled under it.
  kQueueWaitlist = 620,
  /// core::PendingQuantumTask::mutex_ — one per parked task; settlement
  /// observers fire outside it (they acquire kRunEngine).
  kPendingTask = 650,
  /// core::RunEngine::mutex_ — the event queue + live-run accounting.
  /// Acquired by settlement callbacks after kPendingTask is released; the
  /// step function runs outside it.
  kRunEngine = 700,
  /// core::SchedulerService::stats_mutex_ — stats ring buffers. Leaf.
  kSchedulerStats = 750,
  /// Qonductor::registry_mutex_ — registry + deployment flags. Leaf.
  kRegistry = 800,
  /// Qonductor::prep_cache_mutex_ — transpile/estimate cache. Leaf.
  kPrepCache = 850,
  /// obs::Tracer::mutex_ — the run-id -> trace-buffer map. Outside
  /// kTraceBuffer: getRunTrace snapshots a buffer while holding the map
  /// lock. High rank so lookups may run while holding any scheduler or
  /// engine lock (none do today, but recording must never rank-invert).
  kTracer = 860,
  /// obs::RunTraceBuffer::mutex_ — one per-run span ring. Near-leaf:
  /// spans are recorded from engine workers and the scheduler thread while
  /// those components hold their own (lower-ranked) locks, and the only
  /// lock ever taken inside it is kLogging.
  kTraceBuffer = 880,
  /// ThreadPool::mutex_ — task queue of the worksharing pool. Inside
  /// kEngine: NSGA-II fitness evaluation and state-vector simulation
  /// parallel_for under the engine lock.
  kThreadPool = 900,
  /// join_mutex_ of ThreadPool / RunEngine / SchedulerService — serializes
  /// concurrent shutdown(); held only while joining, after the component's
  /// own lock is released.
  kShutdownJoin = 950,
  /// The logging I/O lock — the innermost leaf, so diagnostics can be
  /// emitted while holding anything.
  kLogging = 1000,
};

namespace lock_rank {
/// Validates `rank` against this thread's held set and records the
/// acquisition. Aborts (after a stderr diagnostic naming both locks) on a
/// hierarchy violation or a recursive acquisition. Compiled out when
/// QON_LOCK_RANK_CHECKS=0.
void note_acquire(const void* mutex, LockRank rank, const char* name);
/// Forgets an acquisition recorded by note_acquire (release order need not
/// be LIFO — a condition-variable wait releases mid-stack).
void note_release(const void* mutex);
/// How many locks this thread currently holds (test introspection).
int held_count();
}  // namespace lock_rank

/// std::mutex with a thread-safety capability attribute and a static lock
/// rank. Every mutex in the concurrent surface is one of these: the Clang
/// analysis sees each acquisition at compile time, and the rank checker
/// turns a hierarchy violation into a deterministic abort at runtime.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kUnranked, const char* name = "Mutex")
      : rank_(rank), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
#if QON_LOCK_RANK_CHECKS
    // Checked BEFORE blocking: the ABBA arm that would complete the cycle
    // dies here instead of deadlocking inside m_.lock().
    lock_rank::note_acquire(this, rank_, name_);
#endif
    m_.lock();
  }

  void unlock() RELEASE() {
    m_.unlock();
#if QON_LOCK_RANK_CHECKS
    lock_rank::note_release(this);
#endif
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex m_;
  const LockRank rank_;
  const char* const name_;
};

/// RAII lock over Mutex — the std::lock_guard of the annotated world, with
/// a scoped-capability attribute so the analysis tracks the critical
/// section's extent.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over Mutex. Waits take the Mutex itself (the caller
/// holds it, per REQUIRES); the underlying condition_variable_any calls
/// Mutex::lock/unlock around the block, so the rank checker's held set
/// stays exact across the wait. Call sites spell predicates as explicit
/// `while (!pred) cv.wait(mu);` loops — the analysis can then verify the
/// predicate's guarded reads in the holding function instead of losing
/// them inside a lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& rel)
      REQUIRES(mu) {
    return cv_.wait_for(mu, rel);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(Mutex& mu,
                            const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace qon
