#include "common/thread_pool.hpp"

#include <algorithm>

namespace qon {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lock(mutex_);
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  MutexLock join_lock(join_mutex_);
  if (joined_) return;
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  joined_ = true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_.load(std::memory_order_relaxed) && tasks_.empty()) {
        cv_.wait(mutex_);
      }
      if (tasks_.empty()) return;  // only reachable when stopping
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for_blocked(std::size_t begin, std::size_t end,
                          const std::function<void(std::size_t, std::size_t)>& body,
                          ThreadPool* pool, std::size_t min_block) {
  if (begin >= end) return;
  if (pool == nullptr) pool = &global_thread_pool();
  const std::size_t n = end - begin;
  const std::size_t workers = pool->size();
  if (workers <= 1 || n <= min_block) {
    body(begin, end);
    return;
  }
  const std::size_t blocks = std::min(workers, (n + min_block - 1) / min_block);
  const std::size_t block_size = (n + blocks - 1) / blocks;
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * block_size;
    const std::size_t hi = std::min(end, lo + block_size);
    if (lo >= hi) break;
    futures.push_back(pool->submit([lo, hi, &body] { body(lo, hi); }));
  }
  for (auto& f : futures) f.get();
}

void parallel_for_each_index(std::size_t begin, std::size_t end,
                             const std::function<void(std::size_t)>& body,
                             ThreadPool* pool, std::size_t min_block) {
  parallel_for_blocked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      pool, min_block);
}

}  // namespace qon
