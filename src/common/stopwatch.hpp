#pragma once
// Wall-clock stopwatch for measuring real (not simulated) runtimes, e.g. the
// scheduler-stage timings of Fig. 9c.

#include <chrono>

namespace qon {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qon
