#pragma once
// Versioned client facade over the orchestrator — the surface a remote SDK
// would bind to. Every call (1) checks the request's api_version against
// what this build speaks (kUnimplemented on mismatch, instead of silently
// misreading fields) and (2) guarantees that no exception escapes: stray
// throws from lower layers surface as StatusCode::kInternal.
//
//   api::QonductorClient client(config);
//   auto image = client.createWorkflow({.name = "qaoa", .tasks = ...});
//   client.deploy({.image = image->image});
//   auto handle = client.invoke({.image = image->image});
//   handle->wait();

#include <memory>
#include <vector>

#include "api/result.hpp"
#include "api/run_handle.hpp"
#include "api/types.hpp"
#include "core/orchestrator.hpp"

namespace qon::api {

class QonductorClient {
 public:
  /// Stands up an orchestrator owned by the client.
  explicit QonductorClient(core::QonductorConfig config = {});
  /// Wraps an existing orchestrator (non-owning); `backend` must outlive
  /// the client.
  explicit QonductorClient(core::Qonductor& backend);

  /// The API version this client speaks.
  static constexpr std::uint32_t version() { return kApiVersion; }

  // -- Table 2 user-facing API --------------------------------------------------
  /// Taken by value: pass an rvalue to hand the task circuits over without
  /// a deep copy.
  Result<CreateWorkflowResponse> createWorkflow(CreateWorkflowRequest request);
  Result<DeployResponse> deploy(const DeployRequest& request);
  Result<RunHandle> invoke(const InvokeRequest& request);
  Result<std::vector<RunHandle>> invokeAll(const std::vector<InvokeRequest>& requests);
  Result<WorkflowStatusResponse> workflowStatus(const WorkflowStatusRequest& request) const;
  Result<WorkflowResultsResponse> workflowResults(const WorkflowResultsRequest& request) const;
  Result<ListImagesResponse> listImages(const ListImagesRequest& request = {}) const;

  // -- run-table queries --------------------------------------------------------
  /// Lifecycle record of one run (state, virtual-clock timestamps, error);
  /// kNotFound for unknown or retention-evicted run ids.
  Result<GetRunResponse> getRun(const GetRunRequest& request) const;
  /// Convenience overload for the common "by id" lookup.
  Result<RunInfo> getRun(RunId run) const;
  /// Pages over the orchestrator's bounded run table (state/image filters,
  /// run-id-ordered pagination).
  Result<ListRunsResponse> listRuns(const ListRunsRequest& request = {}) const;
  /// Effective scheduler-service config plus cycle/queue statistics: cycle
  /// count, batch sizes, pending-queue depth, per-priority queue waits and
  /// the Fig. 9c per-stage timings of recent scheduling cycles.
  Result<GetSchedulerStatsResponse> getSchedulerStats(
      const GetSchedulerStatsRequest& request = {}) const;
  /// Front-door admission counters (accepted/shed per priority class, live
  /// runs vs the configured bound) plus the pending queue's capacity-
  /// waitlist statistics.
  Result<GetAdmissionStatsResponse> getAdmissionStats(
      const GetAdmissionStatsRequest& request = {}) const;

  // -- observability ------------------------------------------------------------
  /// The retained lifecycle trace of one run: ordered spans submit -> settle
  /// stamped with the fleet virtual clock AND wall µs. kNotFound for unknown
  /// or trace-retention-evicted ids; kFailedPrecondition with tracing off.
  Result<GetRunTraceResponse> getRunTrace(const GetRunTraceRequest& request) const;
  /// One coherent snapshot of every registered metric — feed it to
  /// obs::render_prometheus / obs::render_json.
  Result<GetMetricsResponse> getMetrics(const GetMetricsRequest& request = {}) const;
  /// Aggregated live health: per-component liveness verdicts and SLO
  /// burn-rate alert states rolled up into kHealthy/kDegraded/kUnhealthy.
  /// Never blocks on a wedged component (verdicts derive from heartbeat
  /// age) — feed it to obs::render_health_json.
  Result<GetHealthResponse> getHealth(const GetHealthRequest& request = {}) const;

  // -- QPU reservations (§7) ----------------------------------------------------
  /// Takes a QPU out of scheduling rotation; jobs already parked in the
  /// pending queue avoid it from the very next cycle.
  Result<ReserveQpuResponse> reserveQpu(const ReserveQpuRequest& request);
  /// Returns a reserved QPU to rotation.
  Result<ReleaseQpuResponse> releaseQpu(const ReleaseQpuRequest& request);

  // -- control-plane passthroughs (typed, non-throwing) -------------------------
  Result<estimator::PlanSet> estimateResources(const circuit::Circuit& circ) const;
  Result<sched::ScheduleDecision> generateSchedule(const sched::SchedulingInput& input) const;

  /// Escape hatch to the wrapped orchestrator (introspection, monitor).
  core::Qonductor& backend() { return *backend_; }
  const core::Qonductor& backend() const { return *backend_; }

 private:
  Status check_version(std::uint32_t requested, const char* method) const;

  std::unique_ptr<core::Qonductor> owned_;  ///< set iff constructed from config
  core::Qonductor* backend_;
};

}  // namespace qon::api
