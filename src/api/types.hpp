#pragma once
// Versioned wire-facing types of the Table-2 control-plane API. Every
// request struct carries `api_version` so the surface can evolve without
// breaking callers: the client facade rejects versions it does not speak
// (kUnimplemented) instead of silently misinterpreting fields.
//
// The run lifecycle (RunStatus) and the execution report (WorkflowResult)
// live here too — they are part of the public surface, and qon::core
// aliases them for the orchestrator internals.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "simulator/statevector.hpp"
#include "workflow/registry.hpp"
#include "workflow/task.hpp"

namespace qon::api {

/// The API version this library speaks. Bump on incompatible changes to the
/// request/response structs below; the client facade refuses newer versions.
inline constexpr std::uint32_t kApiVersion = 1;

using RunId = std::uint64_t;

/// Scheduling priority class of one run. The pending queue forms batches
/// in priority order — kInteractive jobs take a cycle's slots before
/// kStandard, which take them before kBatch — FIFO within a class.
enum class Priority { kBatch, kStandard, kInteractive };

inline constexpr std::size_t kNumPriorities = 3;

const char* priority_name(Priority priority);

/// Per-job QoS preferences carried on InvokeRequest (Table 2's
/// "customizable resource estimation" as an API, not a process-global
/// knob). Every field defaults to the pre-existing behavior, so callers
/// that omit the struct are unaffected.
struct JobPreferences {
  /// MCDM fidelity-vs-JCT preference in [0, 1] for this job's quantum
  /// tasks: 1 = maximize fidelity, 0 = minimize completion time. Unset =
  /// the deployment default (QonductorConfig::fidelity_weight).
  std::optional<double> fidelity_weight;
  /// Absolute deadline on the fleet virtual clock, in seconds. A quantum
  /// task still parked in the pending queue when a scheduling cycle fires
  /// past this instant fails DEADLINE_EXCEEDED instead of being scheduled
  /// (it never consumes a QPU). Unset = no deadline.
  std::optional<double> deadline_seconds;
  /// Batch-formation priority class of the run's quantum tasks.
  Priority priority = Priority::kStandard;
};

/// Lifecycle of an invoked workflow run. Terminal states are kCompleted,
/// kFailed and kCancelled; RunHandle::wait() blocks until one is reached.
enum class RunStatus { kPending, kRunning, kCompleted, kFailed, kCancelled };

const char* run_status_name(RunStatus status);

inline bool run_status_terminal(RunStatus status) {
  return status == RunStatus::kCompleted || status == RunStatus::kFailed ||
         status == RunStatus::kCancelled;
}

/// Per-task execution record in a finished workflow run.
struct TaskResult {
  std::string name;
  workflow::TaskKind kind = workflow::TaskKind::kClassical;
  std::string resource;  ///< QPU or classical node name
  double start = 0.0;
  double end = 0.0;
  double fidelity = 0.0;  ///< quantum tasks only
  double cost_dollars = 0.0;
  sim::Counts counts;  ///< populated for small quantum tasks
};

/// Execution report for one run. `error` is non-OK iff status is kFailed
/// or kCancelled.
struct WorkflowResult {
  RunId run = 0;
  RunStatus status = RunStatus::kPending;
  std::vector<TaskResult> tasks;
  double makespan_seconds = 0.0;
  double total_cost_dollars = 0.0;
  double min_fidelity = 1.0;  ///< the binding fidelity across quantum tasks
  Status error;               ///< why the run failed / was cancelled
};

/// Point-in-time view of one run in the control plane's run table — what
/// getRun() / listRuns() return. Timestamps are on the fleet's virtual
/// clock (seconds); a phase that has not happened yet reads -1.
struct RunInfo {
  RunId run = 0;
  workflow::ImageId image = 0;
  RunStatus status = RunStatus::kPending;
  double submitted_at = -1.0;  ///< virtual clock when the run was queued
  double started_at = -1.0;    ///< virtual clock at kPending -> kRunning
  double finished_at = -1.0;   ///< virtual clock at the terminal transition
  Status error;                ///< non-OK iff status is kFailed / kCancelled
  /// The run's effective QoS preferences: what the request carried, with
  /// fidelity_weight resolved against the deployment default.
  JobPreferences preferences;
};

// ---- requests / responses ----------------------------------------------------

struct CreateWorkflowRequest {
  std::uint32_t api_version = kApiVersion;
  std::string name;
  std::vector<workflow::HybridTask> tasks;
  std::string yaml_config;  ///< Listing-1 deployment configuration, optional
};

struct CreateWorkflowResponse {
  workflow::ImageId image = 0;
};

struct DeployRequest {
  std::uint32_t api_version = kApiVersion;
  workflow::ImageId image = 0;
};

struct DeployResponse {
  workflow::ImageId image = 0;
};

struct InvokeRequest {
  std::uint32_t api_version = kApiVersion;
  workflow::ImageId image = 0;
  /// Per-run QoS: MCDM preference, deadline and priority. Defaults
  /// reproduce the pre-QoS behavior (config fidelity_weight, no deadline,
  /// kStandard). Out-of-range values are rejected INVALID_ARGUMENT.
  JobPreferences preferences;
};

struct WorkflowStatusRequest {
  std::uint32_t api_version = kApiVersion;
  RunId run = 0;
};

struct WorkflowStatusResponse {
  RunId run = 0;
  RunStatus status = RunStatus::kPending;
};

struct WorkflowResultsRequest {
  std::uint32_t api_version = kApiVersion;
  RunId run = 0;
  /// Block until the run reaches a terminal state. When false and the run
  /// is still in flight, workflowResults() returns kUnavailable.
  bool wait = true;
};

struct WorkflowResultsResponse {
  WorkflowResult result;
};

struct ListImagesRequest {
  std::uint32_t api_version = kApiVersion;
};

struct ListImagesResponse {
  std::vector<workflow::ImageId> images;
};

struct GetRunRequest {
  std::uint32_t api_version = kApiVersion;
  RunId run = 0;
};

struct GetRunResponse {
  RunInfo info;
};

/// Largest page listRuns hands out; bigger requests are clamped to this
/// bound (a page is materialized as typed RunInfo values, so the bound
/// caps per-request work on a hot control plane).
inline constexpr std::size_t kMaxListRunsPageSize = 1000;

/// Query over the run table, in ascending run-id order. Runs evicted under
/// the retention policy no longer appear (and getRun() on them is
/// kNotFound) — the table is bounded by design.
struct ListRunsRequest {
  std::uint32_t api_version = kApiVersion;
  /// Keep only runs currently in this state, e.g. RunStatus::kRunning.
  std::optional<RunStatus> status;
  /// Keep only runs of this image; 0 = any image.
  workflow::ImageId image = 0;
  /// Resume after this run id (the previous response's next_page_token).
  RunId page_token = 0;
  /// Max runs per page. 0 is rejected INVALID_ARGUMENT (it used to be
  /// silently clamped to 1); values above kMaxListRunsPageSize are clamped
  /// to that bound.
  std::size_t page_size = 100;
};

struct ListRunsResponse {
  std::vector<RunInfo> runs;
  /// Pass as the next request's page_token; 0 when the listing is complete.
  RunId next_page_token = 0;
};

// ---- QPU reservations (§7) ---------------------------------------------------

/// Takes a QPU out of scheduling rotation by setting the monitor's
/// reservation flag (distinct from the `online` health flag): in-flight
/// scheduling cycles snapshot both at cycle start, so a reservation made
/// while jobs are parked is honored by the very next cycle.
/// ALREADY_EXISTS when the QPU is already reserved; NOT_FOUND for
/// unknown names.
struct ReserveQpuRequest {
  std::uint32_t api_version = kApiVersion;
  std::string qpu;  ///< monitor name, e.g. "ibm_like_0"
  /// Reservation time window: when set (> 0, else INVALID_ARGUMENT), the
  /// reservation auto-releases once a scheduling cycle fires at or after
  /// `fleetNow() + duration_seconds` on the fleet virtual clock — the
  /// releasing cycle already schedules onto the QPU. An explicit
  /// releaseQpu() before the deadline ends the window early. Unset = the
  /// reservation holds until releaseQpu() (pre-window behavior).
  std::optional<double> duration_seconds;
};

struct ReserveQpuResponse {
  std::string qpu;
  /// Fleet-clock instant the window expires; unset for an open-ended
  /// reservation.
  std::optional<double> release_at;
};

/// Returns a reserved QPU to scheduling rotation (a QPU that is also
/// offline for health reasons stays out). FAILED_PRECONDITION when the
/// QPU was not reserved; NOT_FOUND for unknown names.
struct ReleaseQpuRequest {
  std::uint32_t api_version = kApiVersion;
  std::string qpu;
};

struct ReleaseQpuResponse {
  std::string qpu;
};

// ---- scheduler service (§7 job manager) --------------------------------------

/// How the orchestrator dispatches quantum tasks to the fleet.
///   kBatch     — the default: tasks queue in the scheduler service and are
///                assigned per scheduling cycle by the hybrid scheduler
///                (queue-threshold OR timer trigger, §7).
///   kImmediate — the pre-batching fallback: each task runs a single-job
///                scheduling cycle inline and executes straight away.
enum class SchedulingMode { kBatch, kImmediate };

const char* scheduling_mode_name(SchedulingMode mode);

/// Effective scheduler-service configuration, echoed by getSchedulerStats
/// so clients can see which knobs a deployment runs with.
struct SchedulerConfigView {
  SchedulingMode mode = SchedulingMode::kBatch;
  std::size_t queue_threshold = 0;  ///< trigger: fire at this queue size
  double interval_seconds = 0.0;    ///< trigger: timer on the fleet clock
  std::size_t queue_capacity = 0;   ///< pending-queue bound; 0 = unbounded
  std::size_t max_batch_size = 0;   ///< jobs per cycle cap; 0 = no cap
  double aging_seconds = 0.0;       ///< priority-aging budget; 0 = off
};

/// What fired a scheduling cycle: the queue-size threshold, the (virtual)
/// timer deadline, or the final shutdown drain.
enum class CycleTrigger { kThreshold, kTimer, kFlush };

const char* cycle_trigger_name(CycleTrigger trigger);

/// One scheduling cycle as observed by the scheduler service. Stage
/// timings are the Fig. 9c breakdown (preprocess / optimize / select).
struct SchedulerCycleInfo {
  std::uint64_t cycle = 0;       ///< 1-based cycle index
  double fired_at = 0.0;         ///< fleet virtual clock when the cycle fired
  CycleTrigger trigger = CycleTrigger::kThreshold;
  std::size_t batch_size = 0;    ///< jobs handed to the hybrid scheduler
  std::size_t scheduled = 0;     ///< jobs assigned to a QPU
  std::size_t filtered = 0;      ///< infeasible jobs (failed RESOURCE_EXHAUSTED)
  std::size_t expired = 0;       ///< parked past deadline (failed DEADLINE_EXCEEDED)
  std::size_t queue_depth_after = 0;  ///< pending jobs left behind
  double preprocess_seconds = 0.0;
  double optimize_seconds = 0.0;
  double select_seconds = 0.0;
  double cycle_latency_seconds = 0.0;     ///< wall clock, whole cycle
  double mean_queue_wait_seconds = 0.0;   ///< virtual wait of this batch
};

/// Aggregate counters plus a bounded history of recent cycles and per-job
/// queue waits (virtual seconds between enqueue and dispatch).
struct SchedulerStats {
  std::uint64_t cycles = 0;
  std::uint64_t jobs_scheduled = 0;
  std::uint64_t jobs_filtered = 0;
  std::uint64_t jobs_expired = 0;        ///< deadline-expired while parked
  std::size_t queue_depth = 0;           ///< pending jobs right now
  std::size_t queue_high_watermark = 0;  ///< Fig. 9b stability statistic
  std::size_t max_batch_size_seen = 0;
  std::vector<SchedulerCycleInfo> recent_cycles;  ///< oldest first, bounded
  std::vector<double> recent_queue_waits;         ///< per-job, bounded
  /// Per-priority queue-wait histories, indexed by Priority cast to
  /// size_t — the QoS-isolation view of recent_queue_waits.
  std::array<std::vector<double>, kNumPriorities> recent_queue_waits_by_priority;
};

struct GetSchedulerStatsRequest {
  std::uint32_t api_version = kApiVersion;
};

struct GetSchedulerStatsResponse {
  SchedulerConfigView config;
  SchedulerStats stats;
};

// ---- admission control (overload shedding at invoke) -------------------------

/// Counters of the front-door admission gate plus the pending queue's
/// capacity waitlist. Per-class arrays are indexed by Priority cast to
/// size_t, like the scheduler-stats histories.
struct AdmissionStats {
  std::array<std::uint64_t, kNumPriorities> accepted{};  ///< runs admitted
  std::array<std::uint64_t, kNumPriorities> shed{};      ///< RESOURCE_EXHAUSTED at invoke
  std::size_t live_runs = 0;      ///< non-terminal runs right now
  std::size_t max_live_runs = 0;  ///< configured bound; 0 = gate disabled
  /// Engine-side overload relief: quantum tasks parked on the pending
  /// queue's capacity waitlist instead of blocking an engine worker.
  std::size_t waitlist_depth = 0;           ///< parked right now
  std::size_t waitlist_high_watermark = 0;  ///< deepest ever observed
  std::uint64_t waitlist_parks = 0;         ///< total offers that waitlisted
};

struct GetAdmissionStatsRequest {
  std::uint32_t api_version = kApiVersion;
};

struct GetAdmissionStatsResponse {
  AdmissionStats stats;
};

// ---- observability: run-lifecycle traces (obs::Tracer) -----------------------

/// One lifecycle edge of a run, stamped on BOTH clocks: the fleet virtual
/// clock (simulated seconds) and the wall clock (microseconds since the
/// tracer's construction, steady). Point events have start == end on both
/// clocks. The span taxonomy (names and what each detail carries) is
/// documented in ROADMAP.md "Observability".
struct TraceSpan {
  std::string name;    ///< e.g. "submit", "queue_wait", "qpu_exec", "settle"
  std::string detail;  ///< free-form context: verdict, QPU, cycle index, ...
  double virtual_start = 0.0;  ///< fleet virtual clock, seconds
  double virtual_end = 0.0;
  double wall_start_us = 0.0;  ///< wall clock, µs since the tracer epoch
  double wall_end_us = 0.0;
};

/// The ring-buffered trace of one run: spans in record order (oldest
/// first). When a run records more spans than the per-run ring holds, the
/// oldest are dropped — `recorded` keeps the true total, so
/// `dropped = recorded - spans.size()` tells a reader the trace is partial.
struct RunTrace {
  RunId run = 0;
  std::vector<TraceSpan> spans;
  std::uint64_t recorded = 0;  ///< spans ever recorded, including dropped
  std::uint64_t dropped = 0;   ///< spans lost to ring wraparound
};

/// kNotFound for unknown ids and for traces evicted from the tracer's
/// bounded retention window; kFailedPrecondition when tracing is disabled.
struct GetRunTraceRequest {
  std::uint32_t api_version = kApiVersion;
  RunId run = 0;
};

struct GetRunTraceResponse {
  RunTrace trace;
};

// ---- observability: metrics snapshot (obs::MetricsRegistry) ------------------

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* metric_kind_name(MetricKind kind);

/// One metric as captured by a registry snapshot. Counters and gauges use
/// `value`; histograms use the bucket/sum/count fields. `bucket_counts[i]`
/// is the NON-cumulative count of observations with
/// value <= bucket_bounds[i] (and > the previous bound) — the Prometheus
/// renderer accumulates them into the exposition's cumulative `le` series.
struct MetricValue {
  std::string name;    ///< family name, e.g. "qon_admission_accepted_total"
  std::string help;
  std::string labels;  ///< pre-rendered label set, e.g. priority="batch"
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;  ///< counter / gauge reading
  std::vector<double> bucket_bounds;          ///< inclusive upper bounds (le)
  std::vector<std::uint64_t> bucket_counts;   ///< per-bucket, non-cumulative
  std::uint64_t inf_count = 0;  ///< observations above the last bound
  double sum = 0.0;             ///< sum of all observations
  std::uint64_t count = 0;      ///< total observations
};

/// Every registered metric read in ONE pass under the registry lock, so
/// ratios computed from a single snapshot (prep-cache hit rate, shed
/// fraction) are coherent with each other.
struct MetricsSnapshot {
  double taken_at_virtual = 0.0;  ///< fleet virtual clock, seconds
  double taken_at_wall_us = 0.0;  ///< µs since the telemetry epoch
  std::vector<MetricValue> metrics;  ///< registration order
};

struct GetMetricsRequest {
  std::uint32_t api_version = kApiVersion;
};

struct GetMetricsResponse {
  MetricsSnapshot snapshot;
};

// ---- observability: health (obs::HealthMonitor / obs::SloMonitor) ------------

/// Severity-ordered: aggregation takes the numeric worst across components,
/// so the enumerator order IS the severity order.
enum class HealthStatus { kHealthy, kDegraded, kUnhealthy };

const char* health_status_name(HealthStatus status);

/// Lifecycle of one SLO burn-rate alert rule:
/// kInactive -> kPending (fast window breached) -> kFiring (fast AND slow
/// breached) -> kResolved (fast back under the clear threshold) -> kInactive.
enum class AlertState { kInactive, kPending, kFiring, kResolved };

const char* alert_state_name(AlertState state);

/// One component's verdict as derived by the health monitor at check time.
struct ComponentHealth {
  std::string component;  ///< e.g. "scheduler", "engine", "queue", "fleet"
  HealthStatus status = HealthStatus::kHealthy;
  std::string detail;  ///< human-readable reason, names the component on stall
  std::uint64_t heartbeats = 0;  ///< lifetime beat count (0 for probes)
  /// Wall seconds since the last heartbeat; negative = never beaten or not
  /// a watchdog-backed component.
  double heartbeat_age_seconds = -1.0;
};

/// One burn-rate rule's live state, with burns as of the evaluation instant.
struct AlertInfo {
  std::string rule;
  Priority priority = Priority::kStandard;
  AlertState state = AlertState::kInactive;
  double fast_burn = 0.0;  ///< budget-burn multiple over the fast window
  double slow_burn = 0.0;  ///< budget-burn multiple over the slow window
  double since_virtual = 0.0;  ///< virtual instant of the last transition
};

struct GetHealthRequest {
  std::uint32_t api_version = kApiVersion;
};

/// Aggregated live-health view: worst component severity (raised to at
/// least kDegraded while any alert is firing), the per-component verdicts,
/// and the current alert states.
struct GetHealthResponse {
  HealthStatus status = HealthStatus::kHealthy;
  std::vector<ComponentHealth> components;
  std::vector<AlertInfo> alerts;
};

}  // namespace qon::api
