#pragma once
// Versioned wire-facing types of the Table-2 control-plane API. Every
// request struct carries `api_version` so the surface can evolve without
// breaking callers: the client facade rejects versions it does not speak
// (kUnimplemented) instead of silently misinterpreting fields.
//
// The run lifecycle (RunStatus) and the execution report (WorkflowResult)
// live here too — they are part of the public surface, and qon::core
// aliases them for the orchestrator internals.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "simulator/statevector.hpp"
#include "workflow/registry.hpp"
#include "workflow/task.hpp"

namespace qon::api {

/// The API version this library speaks. Bump on incompatible changes to the
/// request/response structs below; the client facade refuses newer versions.
inline constexpr std::uint32_t kApiVersion = 1;

using RunId = std::uint64_t;

/// Lifecycle of an invoked workflow run. Terminal states are kCompleted,
/// kFailed and kCancelled; RunHandle::wait() blocks until one is reached.
enum class RunStatus { kPending, kRunning, kCompleted, kFailed, kCancelled };

const char* run_status_name(RunStatus status);

inline bool run_status_terminal(RunStatus status) {
  return status == RunStatus::kCompleted || status == RunStatus::kFailed ||
         status == RunStatus::kCancelled;
}

/// Per-task execution record in a finished workflow run.
struct TaskResult {
  std::string name;
  workflow::TaskKind kind = workflow::TaskKind::kClassical;
  std::string resource;  ///< QPU or classical node name
  double start = 0.0;
  double end = 0.0;
  double fidelity = 0.0;  ///< quantum tasks only
  double cost_dollars = 0.0;
  sim::Counts counts;  ///< populated for small quantum tasks
};

/// Execution report for one run. `error` is non-OK iff status is kFailed
/// or kCancelled.
struct WorkflowResult {
  RunId run = 0;
  RunStatus status = RunStatus::kPending;
  std::vector<TaskResult> tasks;
  double makespan_seconds = 0.0;
  double total_cost_dollars = 0.0;
  double min_fidelity = 1.0;  ///< the binding fidelity across quantum tasks
  Status error;               ///< why the run failed / was cancelled
};

/// Point-in-time view of one run in the control plane's run table — what
/// getRun() / listRuns() return. Timestamps are on the fleet's virtual
/// clock (seconds); a phase that has not happened yet reads -1.
struct RunInfo {
  RunId run = 0;
  workflow::ImageId image = 0;
  RunStatus status = RunStatus::kPending;
  double submitted_at = -1.0;  ///< virtual clock when the run was queued
  double started_at = -1.0;    ///< virtual clock at kPending -> kRunning
  double finished_at = -1.0;   ///< virtual clock at the terminal transition
  Status error;                ///< non-OK iff status is kFailed / kCancelled
};

// ---- requests / responses ----------------------------------------------------

struct CreateWorkflowRequest {
  std::uint32_t api_version = kApiVersion;
  std::string name;
  std::vector<workflow::HybridTask> tasks;
  std::string yaml_config;  ///< Listing-1 deployment configuration, optional
};

struct CreateWorkflowResponse {
  workflow::ImageId image = 0;
};

struct DeployRequest {
  std::uint32_t api_version = kApiVersion;
  workflow::ImageId image = 0;
};

struct DeployResponse {
  workflow::ImageId image = 0;
};

struct InvokeRequest {
  std::uint32_t api_version = kApiVersion;
  workflow::ImageId image = 0;
};

struct WorkflowStatusRequest {
  std::uint32_t api_version = kApiVersion;
  RunId run = 0;
};

struct WorkflowStatusResponse {
  RunId run = 0;
  RunStatus status = RunStatus::kPending;
};

struct WorkflowResultsRequest {
  std::uint32_t api_version = kApiVersion;
  RunId run = 0;
  /// Block until the run reaches a terminal state. When false and the run
  /// is still in flight, workflowResults() returns kUnavailable.
  bool wait = true;
};

struct WorkflowResultsResponse {
  WorkflowResult result;
};

struct ListImagesRequest {
  std::uint32_t api_version = kApiVersion;
};

struct ListImagesResponse {
  std::vector<workflow::ImageId> images;
};

struct GetRunRequest {
  std::uint32_t api_version = kApiVersion;
  RunId run = 0;
};

struct GetRunResponse {
  RunInfo info;
};

/// Query over the run table, in ascending run-id order. Runs evicted under
/// the retention policy no longer appear (and getRun() on them is
/// kNotFound) — the table is bounded by design.
struct ListRunsRequest {
  std::uint32_t api_version = kApiVersion;
  /// Keep only runs currently in this state, e.g. RunStatus::kRunning.
  std::optional<RunStatus> status;
  /// Keep only runs of this image; 0 = any image.
  workflow::ImageId image = 0;
  /// Resume after this run id (the previous response's next_page_token).
  RunId page_token = 0;
  /// Max runs per page; clamped to at least 1.
  std::size_t page_size = 100;
};

struct ListRunsResponse {
  std::vector<RunInfo> runs;
  /// Pass as the next request's page_token; 0 when the listing is complete.
  RunId next_page_token = 0;
};

}  // namespace qon::api
