#include "api/status.hpp"

namespace qon::api {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "?";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out = std::string(status_code_name(code_)) + ": " + message_;
  if (retry_after_seconds_) {
    out += " [retry after " + std::to_string(*retry_after_seconds_) + " s]";
  }
  return out;
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExists(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}
Status Unavailable(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
Status Unimplemented(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace qon::api
