#pragma once
// Client-side handle for an in-flight workflow run. invoke() returns a
// RunHandle immediately; the DAG executes on the orchestrator's executor
// pool. Handles are cheap to copy (a shared_ptr to the run record) and
// stay valid after the orchestrator retires — queries keep answering from
// the shared record.
//
//   auto handle = *qonductor.invoke({.image = image});
//   while (!run_status_terminal(handle.poll())) do_other_work();
//   auto result = handle.result();

#include <chrono>
#include <functional>
#include <memory>

#include "api/result.hpp"
#include "api/types.hpp"
#include "common/thread_safety.hpp"

namespace qon::api {

/// Shared record of one run, written by the orchestrator's executor and
/// read by any number of handles. All mutable fields are guarded by
/// `mutex`; `cv` is notified on every status transition.
struct RunState {
  RunId id = 0;
  workflow::ImageId image = 0;
  /// Effective QoS preferences (request values with fidelity_weight
  /// resolved against the deployment default). Written once before the
  /// record is shared; immutable afterwards.
  JobPreferences preferences;

  mutable Mutex mutex{LockRank::kRunState, "RunState::mutex"};
  mutable CondVar cv;
  RunStatus status GUARDED_BY(mutex) = RunStatus::kPending;
  bool cancel_requested GUARDED_BY(mutex) = false;
  WorkflowResult result GUARDED_BY(mutex);  ///< stable once `status` is terminal
  /// Set by the executor while the run's quantum task is parked in the
  /// scheduler service's pending queue; cancel() invokes it (outside this
  /// mutex) so a queued-then-cancelled run stops immediately instead of
  /// waiting to be dispatched.
  std::function<void()> unpark GUARDED_BY(mutex);
  // Lifecycle timestamps on the fleet virtual clock; -1 until the phase
  // happens. Stamped by the orchestrator at each transition.
  double submitted_at GUARDED_BY(mutex) = -1.0;
  double started_at GUARDED_BY(mutex) = -1.0;
  double finished_at GUARDED_BY(mutex) = -1.0;
};

class RunHandle {
 public:
  /// An empty handle: valid() is false, poll()/wait() report kFailed
  /// (there is no run to observe), and Result-returning queries
  /// (wait_for, result) return kNotFound.
  RunHandle() = default;
  explicit RunHandle(std::shared_ptr<RunState> state) : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  RunId id() const { return state_ ? state_->id : 0; }
  workflow::ImageId image() const { return state_ ? state_->image : 0; }

  /// Non-blocking status snapshot.
  RunStatus poll() const;

  /// Blocks until the run reaches a terminal state and returns it.
  RunStatus wait() const;

  /// wait() with a deadline; kDeadlineExceeded when the run is still in
  /// flight after `timeout`.
  Result<RunStatus> wait_for(std::chrono::milliseconds timeout) const;

  /// Requests cooperative cancellation: the executor stops before the next
  /// task boundary and the run ends kCancelled. A quantum task parked in
  /// the scheduler service's pending queue is pulled out immediately — the
  /// run does not wait to be dispatched. Returns false when the run had
  /// already reached a terminal state (nothing to cancel) — callers must
  /// check, hence [[nodiscard]]: dropping the result hides a lost race
  /// with completion.
  [[nodiscard]] bool cancel() const;

  /// Blocks until terminal, then returns the execution report. The report
  /// of a failed/cancelled run is still a value — its `status` and `error`
  /// fields say what happened. Only an empty handle is an error (kNotFound).
  Result<WorkflowResult> result() const;

  /// Non-blocking snapshot of the run's lifecycle record (state, virtual-
  /// clock timestamps, error status) — the same view getRun() serves. Keeps
  /// answering after the run is evicted from the orchestrator's run table.
  Result<RunInfo> info() const;

 private:
  std::shared_ptr<RunState> state_;
};

}  // namespace qon::api
