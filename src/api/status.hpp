#pragma once
// Typed error layer of the user-facing API: a canonical status-code space
// (gRPC-style) plus a Status value carrying code + human-readable message.
// No exception crosses the qon::api boundary — every fallible operation
// returns a Status or a Result<T> (result.hpp).

#include <optional>
#include <string>

namespace qon::api {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,     ///< malformed request (empty workflow, bad config)
  kNotFound,            ///< unknown image / run id
  kAlreadyExists,       ///< e.g. deploying an image twice
  kFailedPrecondition,  ///< e.g. invoking an image that was never deployed
  kResourceExhausted,   ///< no QPU / classical node can host the task
  kCancelled,           ///< run cancelled by the client
  kDeadlineExceeded,    ///< wait_for() timed out
  kUnavailable,         ///< result not ready yet (non-blocking query)
  kUnimplemented,       ///< request from an unsupported API version
  kInternal,            ///< execution failure inside the data plane
};

const char* status_code_name(StatusCode code);

/// [[nodiscard]] at class level: silently dropping a returned Status is
/// exactly the failure mode the typed-error boundary exists to prevent.
class [[nodiscard]] Status {
 public:
  /// Default-constructed status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Retry-after detail: set on RESOURCE_EXHAUSTED shed responses from the
  /// admission gate so clients can back off for a concrete interval instead
  /// of guessing. Absent on every other status.
  const std::optional<double>& retry_after_seconds() const {
    return retry_after_seconds_;
  }
  /// Attaches the retry-after hint; returns *this so canonical constructors
  /// compose: `ResourceExhausted(msg).set_retry_after(5.0)`.
  Status& set_retry_after(double seconds) {
    retry_after_seconds_ = seconds;
    return *this;
  }

  /// "FAILED_PRECONDITION: image 3 is not deployed" (or "OK"); a retry-after
  /// detail renders as a trailing " [retry after N s]".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_ &&
           a.retry_after_seconds_ == b.retry_after_seconds_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
  std::optional<double> retry_after_seconds_;
};

// Canonical constructors, one per non-OK code.
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status FailedPrecondition(std::string message);
Status ResourceExhausted(std::string message);
Status Cancelled(std::string message);
Status DeadlineExceeded(std::string message);
Status Unavailable(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);

}  // namespace qon::api
