#include "api/types.hpp"

namespace qon::api {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kPending: return "pending";
    case RunStatus::kRunning: return "running";
    case RunStatus::kCompleted: return "completed";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kCancelled: return "cancelled";
  }
  return "?";
}

const char* priority_name(Priority priority) {
  switch (priority) {
    case Priority::kBatch: return "batch";
    case Priority::kStandard: return "standard";
    case Priority::kInteractive: return "interactive";
  }
  return "?";
}

const char* cycle_trigger_name(CycleTrigger trigger) {
  switch (trigger) {
    case CycleTrigger::kThreshold: return "threshold";
    case CycleTrigger::kTimer: return "timer";
    case CycleTrigger::kFlush: return "flush";
  }
  return "?";
}

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

const char* health_status_name(HealthStatus status) {
  switch (status) {
    case HealthStatus::kHealthy: return "healthy";
    case HealthStatus::kDegraded: return "degraded";
    case HealthStatus::kUnhealthy: return "unhealthy";
  }
  return "?";
}

const char* alert_state_name(AlertState state) {
  switch (state) {
    case AlertState::kInactive: return "inactive";
    case AlertState::kPending: return "pending";
    case AlertState::kFiring: return "firing";
    case AlertState::kResolved: return "resolved";
  }
  return "?";
}

const char* scheduling_mode_name(SchedulingMode mode) {
  switch (mode) {
    case SchedulingMode::kBatch: return "batch";
    case SchedulingMode::kImmediate: return "immediate";
  }
  return "?";
}

}  // namespace qon::api
