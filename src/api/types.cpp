#include "api/types.hpp"

namespace qon::api {

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kPending: return "pending";
    case RunStatus::kRunning: return "running";
    case RunStatus::kCompleted: return "completed";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kCancelled: return "cancelled";
  }
  return "?";
}

}  // namespace qon::api
