#pragma once
// Expected-style Result<T>: either a value or a non-OK Status. The
// error-return half of the typed API boundary (status.hpp has the codes).
//
//   api::Result<RunHandle> handle = qonductor.invoke(request);
//   if (!handle.ok()) { log(handle.status().to_string()); return; }
//   handle->wait();

#include <cstdlib>
#include <optional>
#include <utility>

#include "api/status.hpp"

namespace qon::api {

/// [[nodiscard]] at class level: a dropped Result is a dropped error — the
/// whole point of the no-exceptions API boundary is that every failure is
/// visible at the call site.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Success. Implicit so functions can `return value;`.
  Result(T value) : value_(std::move(value)) {}

  /// Failure. Implicit so functions can `return NotFound(...);`.
  /// A status that is OK but carries no value is a logic error and is
  /// normalized to kInternal.
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) status_ = Internal("Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// OK when a value is present.
  const Status& status() const { return status_; }

  /// Value access requires ok(); violating that aborts (the API layer never
  /// throws, and silently fabricating a value would hide the error).
  T& value() & { check(); return *value_; }
  const T& value() const& { check(); return *value_; }
  T&& value() && { check(); return *std::move(value_); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  void check() const {
    if (!ok()) std::abort();  // accessing value() of an error Result
  }

  std::optional<T> value_;
  Status status_;  ///< OK iff value_ is set
};

}  // namespace qon::api
