#include "api/run_handle.hpp"

namespace qon::api {

RunStatus RunHandle::poll() const {
  if (!state_) return RunStatus::kFailed;
  MutexLock lock(state_->mutex);
  return state_->status;
}

RunStatus RunHandle::wait() const {
  if (!state_) return RunStatus::kFailed;
  MutexLock lock(state_->mutex);
  while (!run_status_terminal(state_->status)) state_->cv.wait(state_->mutex);
  return state_->status;
}

Result<RunStatus> RunHandle::wait_for(std::chrono::milliseconds timeout) const {
  if (!state_) return NotFound("wait_for: empty run handle");
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(state_->mutex);
  while (!run_status_terminal(state_->status)) {
    if (state_->cv.wait_until(state_->mutex, deadline) == std::cv_status::timeout &&
        !run_status_terminal(state_->status)) {
      return DeadlineExceeded("run " + std::to_string(state_->id) +
                              " still in flight after timeout");
    }
  }
  return state_->status;
}

bool RunHandle::cancel() const {
  if (!state_) return false;
  std::function<void()> unpark;
  {
    MutexLock lock(state_->mutex);
    if (run_status_terminal(state_->status)) return false;
    state_->cancel_requested = true;
    unpark = state_->unpark;
  }
  // Outside the record lock: the hook fails the parked pending task and
  // removes it from the scheduler service's queue, both self-synchronized.
  if (unpark) unpark();
  return true;
}

Result<WorkflowResult> RunHandle::result() const {
  if (!state_) return NotFound("result: empty run handle");
  MutexLock lock(state_->mutex);
  while (!run_status_terminal(state_->status)) state_->cv.wait(state_->mutex);
  return state_->result;
}

Result<RunInfo> RunHandle::info() const {
  if (!state_) return NotFound("info: empty run handle");
  RunInfo info;
  info.run = state_->id;
  info.image = state_->image;
  info.preferences = state_->preferences;
  MutexLock lock(state_->mutex);
  info.status = state_->status;
  info.submitted_at = state_->submitted_at;
  info.started_at = state_->started_at;
  info.finished_at = state_->finished_at;
  if (run_status_terminal(state_->status)) info.error = state_->result.error;
  return info;
}

}  // namespace qon::api
