#include "api/run_handle.hpp"

namespace qon::api {

RunStatus RunHandle::poll() const {
  if (!state_) return RunStatus::kFailed;
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->status;
}

RunStatus RunHandle::wait() const {
  if (!state_) return RunStatus::kFailed;
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return run_status_terminal(state_->status); });
  return state_->status;
}

Result<RunStatus> RunHandle::wait_for(std::chrono::milliseconds timeout) const {
  if (!state_) return NotFound("wait_for: empty run handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  const bool done = state_->cv.wait_for(
      lock, timeout, [this] { return run_status_terminal(state_->status); });
  if (!done) {
    return DeadlineExceeded("run " + std::to_string(state_->id) +
                            " still in flight after timeout");
  }
  return state_->status;
}

bool RunHandle::cancel() const {
  if (!state_) return false;
  std::function<void()> unpark;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (run_status_terminal(state_->status)) return false;
    state_->cancel_requested = true;
    unpark = state_->unpark;
  }
  // Outside the record lock: the hook fails the parked pending task and
  // removes it from the scheduler service's queue, both self-synchronized.
  if (unpark) unpark();
  return true;
}

Result<WorkflowResult> RunHandle::result() const {
  if (!state_) return NotFound("result: empty run handle");
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->cv.wait(lock, [this] { return run_status_terminal(state_->status); });
  return state_->result;
}

Result<RunInfo> RunHandle::info() const {
  if (!state_) return NotFound("info: empty run handle");
  RunInfo info;
  info.run = state_->id;
  info.image = state_->image;
  info.preferences = state_->preferences;
  std::lock_guard<std::mutex> lock(state_->mutex);
  info.status = state_->status;
  info.submitted_at = state_->submitted_at;
  info.started_at = state_->started_at;
  info.finished_at = state_->finished_at;
  if (run_status_terminal(state_->status)) info.error = state_->result.error;
  return info;
}

}  // namespace qon::api
