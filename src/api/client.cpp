#include "api/client.hpp"

namespace qon::api {

QonductorClient::QonductorClient(core::QonductorConfig config)
    : owned_(std::make_unique<core::Qonductor>(std::move(config))), backend_(owned_.get()) {}

QonductorClient::QonductorClient(core::Qonductor& backend) : backend_(&backend) {}

Status QonductorClient::check_version(std::uint32_t requested, const char* method) const {
  if (requested == kApiVersion) return Status::Ok();
  return Unimplemented(std::string(method) + ": request api_version " +
                       std::to_string(requested) + " not supported (this build speaks v" +
                       std::to_string(kApiVersion) + ")");
}

Result<CreateWorkflowResponse> QonductorClient::createWorkflow(CreateWorkflowRequest request) {
  if (Status v = check_version(request.api_version, "createWorkflow"); !v.ok()) return v;
  try {
    return backend_->createWorkflow(std::move(request));
  } catch (const std::exception& e) {
    return Internal(std::string("createWorkflow: ") + e.what());
  }
}

Result<DeployResponse> QonductorClient::deploy(const DeployRequest& request) {
  if (Status v = check_version(request.api_version, "deploy"); !v.ok()) return v;
  try {
    return backend_->deploy(request);
  } catch (const std::exception& e) {
    return Internal(std::string("deploy: ") + e.what());
  }
}

Result<RunHandle> QonductorClient::invoke(const InvokeRequest& request) {
  if (Status v = check_version(request.api_version, "invoke"); !v.ok()) return v;
  try {
    return backend_->invoke(request);
  } catch (const std::exception& e) {
    return Internal(std::string("invoke: ") + e.what());
  }
}

Result<std::vector<RunHandle>> QonductorClient::invokeAll(
    const std::vector<InvokeRequest>& requests) {
  for (const auto& request : requests) {
    if (Status v = check_version(request.api_version, "invokeAll"); !v.ok()) return v;
  }
  try {
    return backend_->invokeAll(requests);
  } catch (const std::exception& e) {
    return Internal(std::string("invokeAll: ") + e.what());
  }
}

Result<WorkflowStatusResponse> QonductorClient::workflowStatus(
    const WorkflowStatusRequest& request) const {
  if (Status v = check_version(request.api_version, "workflowStatus"); !v.ok()) return v;
  try {
    return backend_->workflowStatus(request);
  } catch (const std::exception& e) {
    return Internal(std::string("workflowStatus: ") + e.what());
  }
}

Result<WorkflowResultsResponse> QonductorClient::workflowResults(
    const WorkflowResultsRequest& request) const {
  if (Status v = check_version(request.api_version, "workflowResults"); !v.ok()) return v;
  try {
    return backend_->workflowResults(request);
  } catch (const std::exception& e) {
    return Internal(std::string("workflowResults: ") + e.what());
  }
}

Result<GetRunResponse> QonductorClient::getRun(const GetRunRequest& request) const {
  if (Status v = check_version(request.api_version, "getRun"); !v.ok()) return v;
  try {
    return backend_->getRun(request);
  } catch (const std::exception& e) {
    return Internal(std::string("getRun: ") + e.what());
  }
}

Result<RunInfo> QonductorClient::getRun(RunId run) const {
  GetRunRequest request;
  request.run = run;
  auto response = getRun(request);
  if (!response.ok()) return response.status();
  return std::move(response->info);
}

Result<ListRunsResponse> QonductorClient::listRuns(const ListRunsRequest& request) const {
  if (Status v = check_version(request.api_version, "listRuns"); !v.ok()) return v;
  try {
    return backend_->listRuns(request);
  } catch (const std::exception& e) {
    return Internal(std::string("listRuns: ") + e.what());
  }
}

Result<GetSchedulerStatsResponse> QonductorClient::getSchedulerStats(
    const GetSchedulerStatsRequest& request) const {
  if (Status v = check_version(request.api_version, "getSchedulerStats"); !v.ok()) return v;
  try {
    return backend_->getSchedulerStats(request);
  } catch (const std::exception& e) {
    return Internal(std::string("getSchedulerStats: ") + e.what());
  }
}

Result<GetAdmissionStatsResponse> QonductorClient::getAdmissionStats(
    const GetAdmissionStatsRequest& request) const {
  if (Status v = check_version(request.api_version, "getAdmissionStats"); !v.ok()) return v;
  try {
    return backend_->getAdmissionStats(request);
  } catch (const std::exception& e) {
    return Internal(std::string("getAdmissionStats: ") + e.what());
  }
}

Result<GetRunTraceResponse> QonductorClient::getRunTrace(
    const GetRunTraceRequest& request) const {
  if (Status v = check_version(request.api_version, "getRunTrace"); !v.ok()) return v;
  try {
    return backend_->getRunTrace(request);
  } catch (const std::exception& e) {
    return Internal(std::string("getRunTrace: ") + e.what());
  }
}

Result<GetMetricsResponse> QonductorClient::getMetrics(
    const GetMetricsRequest& request) const {
  if (Status v = check_version(request.api_version, "getMetrics"); !v.ok()) return v;
  try {
    return backend_->getMetrics(request);
  } catch (const std::exception& e) {
    return Internal(std::string("getMetrics: ") + e.what());
  }
}

Result<GetHealthResponse> QonductorClient::getHealth(
    const GetHealthRequest& request) const {
  if (Status v = check_version(request.api_version, "getHealth"); !v.ok()) return v;
  try {
    return backend_->getHealth(request);
  } catch (const std::exception& e) {
    return Internal(std::string("getHealth: ") + e.what());
  }
}

Result<ReserveQpuResponse> QonductorClient::reserveQpu(const ReserveQpuRequest& request) {
  if (Status v = check_version(request.api_version, "reserveQpu"); !v.ok()) return v;
  try {
    return backend_->reserveQpu(request);
  } catch (const std::exception& e) {
    return Internal(std::string("reserveQpu: ") + e.what());
  }
}

Result<ReleaseQpuResponse> QonductorClient::releaseQpu(const ReleaseQpuRequest& request) {
  if (Status v = check_version(request.api_version, "releaseQpu"); !v.ok()) return v;
  try {
    return backend_->releaseQpu(request);
  } catch (const std::exception& e) {
    return Internal(std::string("releaseQpu: ") + e.what());
  }
}

Result<ListImagesResponse> QonductorClient::listImages(const ListImagesRequest& request) const {
  if (Status v = check_version(request.api_version, "listImages"); !v.ok()) return v;
  try {
    ListImagesResponse response;
    response.images = backend_->listImages();
    return response;
  } catch (const std::exception& e) {
    return Internal(std::string("listImages: ") + e.what());
  }
}

Result<estimator::PlanSet> QonductorClient::estimateResources(const circuit::Circuit& circ) const {
  try {
    return backend_->estimateResources(circ);
  } catch (const std::exception& e) {
    return Internal(std::string("estimateResources: ") + e.what());
  }
}

Result<sched::ScheduleDecision> QonductorClient::generateSchedule(
    const sched::SchedulingInput& input) const {
  try {
    return backend_->generateSchedule(input);
  } catch (const std::exception& e) {
    return Internal(std::string("generateSchedule: ") + e.what());
  }
}

}  // namespace qon::api
