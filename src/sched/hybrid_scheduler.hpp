#pragma once
// The Qonductor hybrid scheduler (§7, Fig. 5): three stages —
//   (a) job pre-processing: filter infeasible jobs, gather estimates;
//   (b) optimization: NSGA-II over Eq. 1 produces a Pareto front;
//   (c) selection: pseudo-weight MCDM. With a uniform preference the whole
//       batch takes one Pareto-optimal schedule; jobs carrying their own
//       QuantumJob::fidelity_weight each take their placement from the
//       front schedule closest to their preference, so one cycle serves
//       heterogeneous fidelity/JCT tradeoffs. The composite is feasible
//       per job but is a recombination NSGA-II never evaluated — several
//       JCT-preferring jobs can pick the same fast QPU from different
//       front schedules and serialize there; its objectives are
//       re-evaluated for the report, and a repair/re-selection pass is a
//       ROADMAP open item.
// Per-stage wall-clock timings are recorded (Fig. 9c).

#include <vector>

#include "moo/mcdm.hpp"
#include "moo/nsga2.hpp"
#include "sched/job.hpp"
#include "sched/problem.hpp"

namespace qon::sched {

/// Scheduler priorities: preference = (p_fidelity, p_jct), p1 + p2 = 1.
struct SchedulerConfig {
  moo::Nsga2Config nsga2;
  double fidelity_weight = 0.5;  ///< balanced by default
  SchedulerConfig() {
    nsga2.population_size = 64;
    nsga2.max_generations = 48;
    nsga2.tolerance_window = 6;
  }
};

/// Objective pair of one candidate schedule.
struct ObjectivePoint {
  double mean_jct = 0.0;
  double mean_error = 0.0;  ///< 1 - mean fidelity
  double mean_fidelity() const { return 1.0 - mean_error; }
};

/// Output of one scheduling cycle.
struct ScheduleDecision {
  /// assignment[i] = QPU index for input.jobs[i]; -1 for filtered jobs
  /// (jobs no online QPU can host).
  std::vector<int> assignment;
  /// Indices of input jobs that could not be scheduled.
  std::vector<std::size_t> filtered_jobs;

  ObjectivePoint chosen;
  std::vector<ObjectivePoint> pareto_front;  ///< full front (Fig. 8a/b, 10b)
  double chosen_mean_exec_seconds = 0.0;     ///< Fig. 10a
  double min_front_exec_seconds = 0.0;
  double max_front_exec_seconds = 0.0;

  // Stage wall-clock timings [s] (Fig. 9c).
  double preprocess_seconds = 0.0;
  double optimize_seconds = 0.0;
  double select_seconds = 0.0;

  std::size_t nsga2_generations = 0;
  std::size_t nsga2_evaluations = 0;
};

/// Pre-processing helper (stage a): splits jobs into schedulable vs
/// filtered (no online QPU fits) and returns a compacted input.
struct PreprocessResult {
  SchedulingInput compact;
  std::vector<std::size_t> kept_indices;     ///< into the original job list
  std::vector<std::size_t> filtered_indices;
};
PreprocessResult preprocess_jobs(const SchedulingInput& input);

/// Runs one full scheduling cycle.
ScheduleDecision schedule_cycle(const SchedulingInput& input, const SchedulerConfig& config);

}  // namespace qon::sched
