#pragma once
// The scheduling optimization problem of Eq. 1: decision variable x_i is
// the QPU assigned to job i; objectives are mean JCT and mean error
// (1 - mean fidelity), both minimized, subject to q_i <= s_{x_i}.

#include "moo/problem.hpp"
#include "sched/job.hpp"

namespace qon::sched {

/// Eq. 1 as a moo::IntegerProblem. Pre-computes each job's feasible QPU set
/// (size + online filters); repair() snaps infeasible genes to the nearest
/// feasible QPU. Jobs with no feasible QPU must be filtered out before
/// construction (see preprocess_jobs).
class SchedulingProblem : public moo::IntegerProblem {
 public:
  explicit SchedulingProblem(const SchedulingInput& input);

  std::size_t num_variables() const override;
  int lower_bound(std::size_t i) const override;
  int upper_bound(std::size_t i) const override;
  std::size_t num_objectives() const override { return 2; }

  /// objectives[0] = mean JCT (Eq. 1 f1), objectives[1] = mean error (f2).
  void evaluate(const std::vector<int>& genome,
                std::vector<double>& objectives) const override;

  void repair(std::vector<int>& genome) const override;

  /// Mean execution time of the assignment (Fig. 10a's metric).
  double mean_execution_time(const std::vector<int>& genome) const;

  const SchedulingInput& input() const { return *input_; }

 private:
  bool feasible_on(std::size_t job, int qpu) const;

  const SchedulingInput* input_;
  std::vector<std::vector<int>> feasible_;  ///< per-job feasible QPU indices
};

}  // namespace qon::sched
