#include "sched/classical_scheduler.hpp"

#include <algorithm>

namespace qon::sched {

bool node_fits(const ClassicalNode& node, const ClassicalRequest& request) {
  return node.cores - node.cores_used >= request.cores &&
         node.memory_gb - node.memory_gb_used >= request.memory_gb &&
         node.gpus - node.gpus_used >= request.gpus &&
         node.fpgas - node.fpgas_used >= request.fpgas;
}

double least_allocated_score(const ClassicalNode& node, const ClassicalRequest& request) {
  const double cpu_free =
      static_cast<double>(node.cores - node.cores_used - request.cores) /
      std::max(node.cores, 1);
  const double mem_free =
      (node.memory_gb - node.memory_gb_used - request.memory_gb) /
      std::max(node.memory_gb, 1.0);
  return 0.5 * (cpu_free + mem_free);
}

double most_allocated_score(const ClassicalNode& node, const ClassicalRequest& request) {
  return 1.0 - least_allocated_score(node, request);
}

int schedule_classical(const std::vector<ClassicalNode>& nodes, const ClassicalRequest& request,
                       const ScoringPolicy& policy) {
  int best = -1;
  double best_score = 0.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!node_fits(nodes[i], request)) continue;  // stage 1: filter
    const double score = policy(nodes[i], request);  // stage 2: score
    if (best < 0 || score > best_score) {
      best = static_cast<int>(i);
      best_score = score;
    }
  }
  return best;
}

std::vector<ClassicalNode> make_node_pool(std::size_t standard, std::size_t highend,
                                          std::size_t fpga_nodes) {
  std::vector<ClassicalNode> pool;
  for (std::size_t i = 0; i < standard; ++i) {
    ClassicalNode n;
    n.name = "vm-std-" + std::to_string(i);
    n.cores = 8;
    n.memory_gb = 32.0;
    pool.push_back(n);
  }
  for (std::size_t i = 0; i < highend; ++i) {
    ClassicalNode n;
    n.name = "vm-gpu-" + std::to_string(i);
    n.cores = 64;
    n.memory_gb = 512.0;
    n.gpus = 4;
    pool.push_back(n);
  }
  for (std::size_t i = 0; i < fpga_nodes; ++i) {
    ClassicalNode n;
    n.name = "vm-fpga-" + std::to_string(i);
    n.cores = 16;
    n.memory_gb = 64.0;
    n.fpgas = 2;
    pool.push_back(n);
  }
  return pool;
}

ClassicalRequest request_for_accelerator(mitigation::Accelerator accelerator) {
  ClassicalRequest req;
  switch (accelerator) {
    case mitigation::Accelerator::kCpu:
      req.cores = 4;
      req.memory_gb = 16.0;
      break;
    case mitigation::Accelerator::kGpu:
      req.cores = 8;
      req.memory_gb = 64.0;
      req.gpus = 1;
      break;
    case mitigation::Accelerator::kFpga:
      req.cores = 4;
      req.memory_gb = 16.0;
      req.fpgas = 1;
      break;
  }
  return req;
}

}  // namespace qon::sched
