#include "sched/baselines.hpp"

#include <cmath>

namespace qon::sched {

namespace {

bool feasible(const QuantumJob& job, const QpuState& qpu, std::size_t q) {
  return qpu.online && job.qubits <= qpu.size && q < job.est_exec_seconds.size() &&
         std::isfinite(job.est_exec_seconds[q]);
}

}  // namespace

std::vector<int> assign_best_fidelity_fcfs(const SchedulingInput& input) {
  std::vector<int> assignment(input.jobs.size(), -1);
  std::vector<double> waits;
  waits.reserve(input.qpus.size());
  for (const auto& q : input.qpus) waits.push_back(q.queue_wait_seconds);

  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    const auto& job = input.jobs[j];
    int best = -1;
    double best_fid = -1.0;
    for (std::size_t q = 0; q < input.qpus.size(); ++q) {
      if (!feasible(job, input.qpus[q], q)) continue;
      if (job.est_fidelity[q] > best_fid) {
        best_fid = job.est_fidelity[q];
        best = static_cast<int>(q);
      }
    }
    assignment[j] = best;
    if (best >= 0) waits[static_cast<std::size_t>(best)] += job.est_exec_seconds[static_cast<std::size_t>(best)];
  }
  return assignment;
}

std::vector<int> assign_least_busy(const SchedulingInput& input) {
  std::vector<int> assignment(input.jobs.size(), -1);
  std::vector<double> waits;
  waits.reserve(input.qpus.size());
  for (const auto& q : input.qpus) waits.push_back(q.queue_wait_seconds);

  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    const auto& job = input.jobs[j];
    int best = -1;
    double best_wait = 0.0;
    for (std::size_t q = 0; q < input.qpus.size(); ++q) {
      if (!feasible(job, input.qpus[q], q)) continue;
      if (best < 0 || waits[q] < best_wait) {
        best_wait = waits[q];
        best = static_cast<int>(q);
      }
    }
    assignment[j] = best;
    if (best >= 0) {
      waits[static_cast<std::size_t>(best)] +=
          job.est_exec_seconds[static_cast<std::size_t>(best)];
    }
  }
  return assignment;
}

std::vector<int> assign_random_feasible(const SchedulingInput& input, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<int> assignment(input.jobs.size(), -1);
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    std::vector<int> options;
    for (std::size_t q = 0; q < input.qpus.size(); ++q) {
      if (feasible(input.jobs[j], input.qpus[q], q)) options.push_back(static_cast<int>(q));
    }
    if (!options.empty()) {
      assignment[j] = options[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
    }
  }
  return assignment;
}

}  // namespace qon::sched
