#include "sched/problem.hpp"

#include <cmath>
#include <stdexcept>

namespace qon::sched {

SchedulingProblem::SchedulingProblem(const SchedulingInput& input) : input_(&input) {
  if (input.jobs.empty()) throw std::invalid_argument("SchedulingProblem: no jobs");
  if (input.qpus.empty()) throw std::invalid_argument("SchedulingProblem: no QPUs");
  feasible_.resize(input.jobs.size());
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    const auto& job = input.jobs[j];
    if (job.est_fidelity.size() != input.qpus.size() ||
        job.est_exec_seconds.size() != input.qpus.size()) {
      throw std::invalid_argument("SchedulingProblem: estimate arity mismatch for job " +
                                  std::to_string(job.id));
    }
    for (std::size_t q = 0; q < input.qpus.size(); ++q) {
      const auto& qpu = input.qpus[q];
      if (qpu.online && job.qubits <= qpu.size &&
          std::isfinite(job.est_exec_seconds[q])) {
        feasible_[j].push_back(static_cast<int>(q));
      }
    }
    if (feasible_[j].empty()) {
      throw std::invalid_argument("SchedulingProblem: job " + std::to_string(job.id) +
                                  " has no feasible QPU (filter it first)");
    }
  }
}

std::size_t SchedulingProblem::num_variables() const { return input_->jobs.size(); }

int SchedulingProblem::lower_bound(std::size_t) const { return 0; }

int SchedulingProblem::upper_bound(std::size_t) const {
  return static_cast<int>(input_->qpus.size()) - 1;
}

bool SchedulingProblem::feasible_on(std::size_t job, int qpu) const {
  for (int q : feasible_[job]) {
    if (q == qpu) return true;
  }
  return false;
}

void SchedulingProblem::repair(std::vector<int>& genome) const {
  moo::IntegerProblem::repair(genome);  // clamp to [0, Q-1]
  for (std::size_t j = 0; j < genome.size(); ++j) {
    if (feasible_on(j, genome[j])) continue;
    // Snap to the nearest feasible QPU index (deterministic).
    int best = feasible_[j].front();
    int best_dist = std::abs(best - genome[j]);
    for (int q : feasible_[j]) {
      const int d = std::abs(q - genome[j]);
      if (d < best_dist) {
        best = q;
        best_dist = d;
      }
    }
    genome[j] = best;
  }
}

void SchedulingProblem::evaluate(const std::vector<int>& genome,
                                 std::vector<double>& objectives) const {
  const auto& jobs = input_->jobs;
  const auto& qpus = input_->qpus;
  const std::size_t n = jobs.size();
  if (genome.size() != n) throw std::invalid_argument("SchedulingProblem: genome size");

  // Eq. 1, computed in O(N + Q): the co-assignment sum
  //   sum_k t_k [x_i == x_k]
  // is the per-QPU total execution time of the assignment.
  std::vector<double> qpu_exec(qpus.size(), 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    qpu_exec[static_cast<std::size_t>(genome[k])] +=
        jobs[k].est_exec_seconds[static_cast<std::size_t>(genome[k])];
  }
  double jct_sum = 0.0;
  double error_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto q = static_cast<std::size_t>(genome[i]);
    jct_sum += qpus[q].queue_wait_seconds + qpu_exec[q];
    error_sum += 1.0 - jobs[i].est_fidelity[q];
  }
  objectives.resize(2);
  objectives[0] = jct_sum / static_cast<double>(n);
  objectives[1] = error_sum / static_cast<double>(n);
}

double SchedulingProblem::mean_execution_time(const std::vector<int>& genome) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < genome.size(); ++i) {
    acc += input_->jobs[i].est_exec_seconds[static_cast<std::size_t>(genome[i])];
  }
  return acc / static_cast<double>(genome.size());
}

}  // namespace qon::sched
