#pragma once
// Classical-job scheduling: the standard Kubernetes two-stage
// filtering-scoring algorithm (§7). Nodes advertise cores / memory /
// accelerators; jobs request them; filtering removes incompatible nodes and
// pluggable scoring policies rank the rest.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mitigation/pipeline.hpp"

namespace qon::sched {

/// A classical worker node (VM) in the cluster.
struct ClassicalNode {
  std::string name;
  int cores = 8;
  double memory_gb = 32.0;
  int gpus = 0;
  int fpgas = 0;

  // Current allocations.
  int cores_used = 0;
  double memory_gb_used = 0.0;
  int gpus_used = 0;
  int fpgas_used = 0;

  double cpu_utilization() const {
    return cores > 0 ? static_cast<double>(cores_used) / cores : 1.0;
  }
};

/// Resource request of a classical task (Listing 1 style).
struct ClassicalRequest {
  int cores = 1;
  double memory_gb = 4.0;
  int gpus = 0;
  int fpgas = 0;
};

/// Scoring policy: higher is better; only called on nodes passing filters.
using ScoringPolicy = std::function<double(const ClassicalNode&, const ClassicalRequest&)>;

/// Default policy: least-allocated (prefer the emptiest node), the
/// Kubernetes default behaviour.
double least_allocated_score(const ClassicalNode& node, const ClassicalRequest& request);

/// Alternative policy: most-allocated (bin-packing).
double most_allocated_score(const ClassicalNode& node, const ClassicalRequest& request);

/// True when `node` can host `request` right now.
bool node_fits(const ClassicalNode& node, const ClassicalRequest& request);

/// Two-stage filter + score; returns the chosen node index or -1.
int schedule_classical(const std::vector<ClassicalNode>& nodes, const ClassicalRequest& request,
                       const ScoringPolicy& policy = least_allocated_score);

/// Builds a heterogeneous node pool: `standard` 8-core VMs, `highend`
/// 64-core VMs with GPUs, `fpga_nodes` FPGA-carrying nodes.
std::vector<ClassicalNode> make_node_pool(std::size_t standard, std::size_t highend,
                                          std::size_t fpga_nodes);

/// Request implied by a mitigation accelerator choice.
ClassicalRequest request_for_accelerator(mitigation::Accelerator accelerator);

}  // namespace qon::sched
