#include "sched/triggers.hpp"

#include <stdexcept>

namespace qon::sched {

ScheduleTrigger::ScheduleTrigger(std::size_t queue_threshold, double interval_seconds)
    : threshold_(queue_threshold), interval_(interval_seconds) {
  if (queue_threshold == 0) {
    throw std::invalid_argument("ScheduleTrigger: queue_threshold must be > 0");
  }
  if (interval_seconds <= 0.0) {
    throw std::invalid_argument("ScheduleTrigger: interval must be > 0");
  }
}

bool ScheduleTrigger::should_fire(double now, std::size_t queue_size) const {
  if (queue_size == 0) return false;
  if (queue_size >= threshold_) return true;
  return now - last_fire_ >= interval_;
}

void ScheduleTrigger::notify_fired(double now) { last_fire_ = now; }

}  // namespace qon::sched
