#include "sched/hybrid_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "sched/baselines.hpp"

namespace qon::sched {

PreprocessResult preprocess_jobs(const SchedulingInput& input) {
  PreprocessResult result;
  result.compact.qpus = input.qpus;
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    const auto& job = input.jobs[j];
    bool feasible = false;
    for (std::size_t q = 0; q < input.qpus.size(); ++q) {
      if (input.qpus[q].online && job.qubits <= input.qpus[q].size &&
          q < job.est_exec_seconds.size() && std::isfinite(job.est_exec_seconds[q])) {
        feasible = true;
        break;
      }
    }
    if (feasible) {
      result.compact.jobs.push_back(job);
      result.kept_indices.push_back(j);
    } else {
      result.filtered_indices.push_back(j);
    }
  }
  return result;
}

ScheduleDecision schedule_cycle(const SchedulingInput& input, const SchedulerConfig& config) {
  if (config.fidelity_weight < 0.0 || config.fidelity_weight > 1.0) {
    throw std::invalid_argument("schedule_cycle: fidelity_weight must be in [0, 1]");
  }
  for (const auto& job : input.jobs) {
    // Negated form so NaN is rejected too.
    if (job.fidelity_weight &&
        !(*job.fidelity_weight >= 0.0 && *job.fidelity_weight <= 1.0)) {
      throw std::invalid_argument("schedule_cycle: job " + std::to_string(job.id) +
                                  " fidelity_weight must be in [0, 1]");
    }
  }
  ScheduleDecision decision;
  decision.assignment.assign(input.jobs.size(), -1);

  // ---- stage (a): job pre-processing --------------------------------------
  Stopwatch sw;
  const PreprocessResult pre = preprocess_jobs(input);
  decision.filtered_jobs = pre.filtered_indices;
  decision.preprocess_seconds = sw.seconds();
  if (pre.compact.jobs.empty()) return decision;

  // ---- stage (b): multi-objective optimization ----------------------------
  sw.reset();
  const SchedulingProblem problem(pre.compact);
  // Seed NSGA-II with the heuristic extremes so the front always covers the
  // best-fidelity and least-busy corners of the objective space.
  auto nsga2_config = config.nsga2;
  nsga2_config.initial_genomes.push_back(assign_best_fidelity_fcfs(pre.compact));
  nsga2_config.initial_genomes.push_back(assign_least_busy(pre.compact));
  const auto result = moo::nsga2(problem, nsga2_config);
  decision.optimize_seconds = sw.seconds();
  decision.nsga2_generations = result.generations;
  decision.nsga2_evaluations = result.evaluations;
  if (result.front.empty()) {
    throw std::logic_error("schedule_cycle: NSGA-II returned an empty front");
  }

  // ---- stage (c): MCDM selection -------------------------------------------
  sw.reset();
  // Preference vectors over (JCT, error): a job's fidelity_weight applies
  // to the error objective, the rest to JCT. Jobs without their own weight
  // use the cycle-wide default.
  std::vector<double> job_weights;
  job_weights.reserve(pre.compact.jobs.size());
  bool uniform = true;
  for (const auto& job : pre.compact.jobs) {
    job_weights.push_back(job.fidelity_weight.value_or(config.fidelity_weight));
    if (job_weights.back() != job_weights.front()) uniform = false;
  }

  std::vector<int> chosen_genome(pre.compact.jobs.size(), 0);
  if (uniform) {
    // One preference for the whole batch: pick a single Pareto-optimal
    // schedule (the pre-QoS behavior when every job uses the default).
    const std::vector<double> preference = {1.0 - job_weights.front(),
                                            job_weights.front()};
    const std::size_t pick = moo::select_by_pseudo_weight(result.front, preference);
    chosen_genome = result.front[pick].genome;
    decision.chosen.mean_jct = result.front[pick].objectives[0];
    decision.chosen.mean_error = result.front[pick].objectives[1];
  } else {
    // Heterogeneous preferences: each job takes its placement from the
    // front schedule whose pseudo-weights sit closest to its own
    // preference, so tenants in one cycle land on different Pareto points.
    std::vector<std::vector<double>> objs;
    objs.reserve(result.front.size());
    for (const auto& sol : result.front) objs.push_back(sol.objectives);
    std::vector<std::vector<double>> preferences;
    preferences.reserve(job_weights.size());
    for (const double w : job_weights) preferences.push_back({1.0 - w, w});
    const auto picks = moo::select_each_by_pseudo_weight(objs, preferences);
    for (std::size_t c = 0; c < chosen_genome.size(); ++c) {
      chosen_genome[c] = result.front[picks[c]].genome[c];
    }
    // The composite is feasible per job (every front genome is) but need
    // not coincide with a front member — evaluate it for the report.
    std::vector<double> chosen_objectives;
    problem.evaluate(chosen_genome, chosen_objectives);
    decision.chosen.mean_jct = chosen_objectives[0];
    decision.chosen.mean_error = chosen_objectives[1];
  }
  decision.select_seconds = sw.seconds();
  decision.chosen_mean_exec_seconds = problem.mean_execution_time(chosen_genome);

  double min_exec = std::numeric_limits<double>::infinity();
  double max_exec = 0.0;
  for (const auto& sol : result.front) {
    decision.pareto_front.push_back({sol.objectives[0], sol.objectives[1]});
    const double exec = problem.mean_execution_time(sol.genome);
    min_exec = std::min(min_exec, exec);
    max_exec = std::max(max_exec, exec);
  }
  decision.min_front_exec_seconds = min_exec;
  decision.max_front_exec_seconds = max_exec;

  // Scatter the compact assignment back to original job positions.
  for (std::size_t c = 0; c < chosen_genome.size(); ++c) {
    decision.assignment[pre.kept_indices[c]] = chosen_genome[c];
  }
  return decision;
}

}  // namespace qon::sched
