#include "sched/hybrid_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/stopwatch.hpp"
#include "sched/baselines.hpp"

namespace qon::sched {

PreprocessResult preprocess_jobs(const SchedulingInput& input) {
  PreprocessResult result;
  result.compact.qpus = input.qpus;
  for (std::size_t j = 0; j < input.jobs.size(); ++j) {
    const auto& job = input.jobs[j];
    bool feasible = false;
    for (std::size_t q = 0; q < input.qpus.size(); ++q) {
      if (input.qpus[q].online && job.qubits <= input.qpus[q].size &&
          q < job.est_exec_seconds.size() && std::isfinite(job.est_exec_seconds[q])) {
        feasible = true;
        break;
      }
    }
    if (feasible) {
      result.compact.jobs.push_back(job);
      result.kept_indices.push_back(j);
    } else {
      result.filtered_indices.push_back(j);
    }
  }
  return result;
}

ScheduleDecision schedule_cycle(const SchedulingInput& input, const SchedulerConfig& config) {
  if (config.fidelity_weight < 0.0 || config.fidelity_weight > 1.0) {
    throw std::invalid_argument("schedule_cycle: fidelity_weight must be in [0, 1]");
  }
  ScheduleDecision decision;
  decision.assignment.assign(input.jobs.size(), -1);

  // ---- stage (a): job pre-processing --------------------------------------
  Stopwatch sw;
  const PreprocessResult pre = preprocess_jobs(input);
  decision.filtered_jobs = pre.filtered_indices;
  decision.preprocess_seconds = sw.seconds();
  if (pre.compact.jobs.empty()) return decision;

  // ---- stage (b): multi-objective optimization ----------------------------
  sw.reset();
  const SchedulingProblem problem(pre.compact);
  // Seed NSGA-II with the heuristic extremes so the front always covers the
  // best-fidelity and least-busy corners of the objective space.
  auto nsga2_config = config.nsga2;
  nsga2_config.initial_genomes.push_back(assign_best_fidelity_fcfs(pre.compact));
  nsga2_config.initial_genomes.push_back(assign_least_busy(pre.compact));
  const auto result = moo::nsga2(problem, nsga2_config);
  decision.optimize_seconds = sw.seconds();
  decision.nsga2_generations = result.generations;
  decision.nsga2_evaluations = result.evaluations;
  if (result.front.empty()) {
    throw std::logic_error("schedule_cycle: NSGA-II returned an empty front");
  }

  // ---- stage (c): MCDM selection -------------------------------------------
  sw.reset();
  // Preference vector over (JCT, error): fidelity_weight applies to the
  // error objective, the rest to JCT.
  const std::vector<double> preference = {1.0 - config.fidelity_weight,
                                          config.fidelity_weight};
  const std::size_t pick = moo::select_by_pseudo_weight(result.front, preference);
  decision.select_seconds = sw.seconds();

  const auto& chosen = result.front[pick];
  decision.chosen.mean_jct = chosen.objectives[0];
  decision.chosen.mean_error = chosen.objectives[1];
  decision.chosen_mean_exec_seconds = problem.mean_execution_time(chosen.genome);

  double min_exec = std::numeric_limits<double>::infinity();
  double max_exec = 0.0;
  for (const auto& sol : result.front) {
    decision.pareto_front.push_back({sol.objectives[0], sol.objectives[1]});
    const double exec = problem.mean_execution_time(sol.genome);
    min_exec = std::min(min_exec, exec);
    max_exec = std::max(max_exec, exec);
  }
  decision.min_front_exec_seconds = min_exec;
  decision.max_front_exec_seconds = max_exec;

  // Scatter the compact assignment back to original job positions.
  for (std::size_t c = 0; c < chosen.genome.size(); ++c) {
    decision.assignment[pre.kept_indices[c]] = chosen.genome[c];
  }
  return decision;
}

}  // namespace qon::sched
