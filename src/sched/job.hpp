#pragma once
// Scheduling-facing job model. The hybrid scheduler does not need circuits —
// it consumes the per-(job, QPU) fidelity and execution-time estimates the
// resource estimator produced (fetched from the system monitor in the full
// system), plus each job's qubit requirement.

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

namespace qon::sched {

/// One quantum job awaiting placement.
struct QuantumJob {
  std::uint64_t id = 0;
  int qubits = 0;            ///< q_i: maximum qubits required
  int shots = 0;
  double arrival_time = 0.0; ///< [s] simulated submission time
  /// Per-job MCDM preference in [0, 1] (1 = fidelity, 0 = JCT). Jobs in
  /// one cycle may carry different preferences: selection then picks each
  /// job's placement from the Pareto-front schedule closest to its own
  /// preference. Unset = the cycle-wide SchedulerConfig::fidelity_weight.
  std::optional<double> fidelity_weight;

  /// Per-QPU estimates, indexed by QPU position in SchedulingInput::qpus.
  /// Infeasible QPUs carry fidelity 0 / infinite time.
  std::vector<double> est_fidelity;
  std::vector<double> est_exec_seconds;
};

/// Static + dynamic QPU state the scheduler sees.
struct QpuState {
  std::string name;
  int size = 0;                 ///< s_x: number of qubits
  double queue_wait_seconds = 0.0;  ///< w_x: current approximate queue wait
  /// Schedulable: the snapshot folds health AND §7 reservation into this
  /// flag (a QPU is offered only when online and not reserved).
  bool online = true;
};

/// A batch scheduling request (one scheduling cycle).
struct SchedulingInput {
  std::vector<QuantumJob> jobs;
  std::vector<QpuState> qpus;
};

/// Sentinel execution time for infeasible placements.
inline constexpr double kInfeasibleTime = std::numeric_limits<double>::infinity();

}  // namespace qon::sched
