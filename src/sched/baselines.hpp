#pragma once
// Baseline scheduling policies:
//  * best-fidelity FCFS — the paper's baseline: each job goes to the
//    highest-estimated-fidelity QPU that fits (the user behaviour that
//    creates the Fig. 2c hotspots), served first-come-first-serve;
//  * least-busy — the Qiskit least_busy policy (minimize queue wait);
//  * random feasible — control.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sched/job.hpp"

namespace qon::sched {

/// Per-job QPU choice (or -1 when no QPU fits). Queue waits in `input` are
/// treated as live state: each assignment adds its execution time to the
/// chosen QPU's wait so later jobs see the queue growing.
std::vector<int> assign_best_fidelity_fcfs(const SchedulingInput& input);

std::vector<int> assign_least_busy(const SchedulingInput& input);

std::vector<int> assign_random_feasible(const SchedulingInput& input, std::uint64_t seed);

}  // namespace qon::sched
