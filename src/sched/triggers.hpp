#pragma once
// Scheduling triggers (§7): a scheduling cycle fires when the pending queue
// reaches a size threshold (default 100) OR a timer elapses (default 120 s),
// whichever comes first.

#include <cstddef>

namespace qon::sched {

class ScheduleTrigger {
 public:
  ScheduleTrigger(std::size_t queue_threshold = 100, double interval_seconds = 120.0);

  /// Returns true when a cycle should fire at simulated time `now` with the
  /// given pending-queue size. Call notify_fired() after running the cycle.
  bool should_fire(double now, std::size_t queue_size) const;

  /// Records that a cycle ran at `now` (resets the timer).
  void notify_fired(double now);

  /// Simulated time of the next timer-based firing.
  double next_timer_deadline() const { return last_fire_ + interval_; }

  std::size_t queue_threshold() const { return threshold_; }
  double interval_seconds() const { return interval_; }

 private:
  std::size_t threshold_;
  double interval_;
  double last_fire_ = 0.0;
};

}  // namespace qon::sched
