#include "mitigation/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "mitigation/pec.hpp"

namespace qon::mitigation {

namespace {

// Model constants: residual error fraction per technique (multiplicative on
// 1 - fidelity) and classical cost bases. See DESIGN.md §4.
constexpr double kZneResidual = 0.55;
constexpr double kPecResidual = 0.35;
constexpr double kRemResidual = 0.85;
constexpr double kDdResidual = 0.92;
constexpr double kTwirlResidual = 0.96;

// Classical cost bases (seconds, CPU): per circuit instance generated and
// per unit of post-processing work.
constexpr double kPreprocessPerInstance = 2e-3;
constexpr double kZneInferenceBase = 0.05;
constexpr double kPecCombineBase = 0.08;
constexpr double kRemInversionPerOutcomeDim = 2e-6;  // x 2^clbits (capped)
constexpr double kKnitPerVariant = 4e-3;

}  // namespace

const char* technique_name(Technique t) {
  switch (t) {
    case Technique::kZne: return "zne";
    case Technique::kPec: return "pec";
    case Technique::kRem: return "rem";
    case Technique::kDd: return "dd";
    case Technique::kTwirling: return "twirling";
    case Technique::kCutting: return "cutting";
  }
  return "?";
}

const char* accelerator_name(Accelerator a) {
  switch (a) {
    case Accelerator::kCpu: return "cpu";
    case Accelerator::kGpu: return "gpu";
    case Accelerator::kFpga: return "fpga";
  }
  return "?";
}

double accelerator_speedup(Accelerator a) {
  switch (a) {
    case Accelerator::kCpu: return 1.0;
    case Accelerator::kGpu: return 8.0;   // circuit-knitting tensor work
    case Accelerator::kFpga: return 4.0;  // readout classification pipelines
  }
  return 1.0;
}

bool MitigationSpec::uses(Technique t) const {
  return std::find(stack.begin(), stack.end(), t) != stack.end();
}

std::string MitigationSpec::to_string() const {
  if (stack.empty()) return "none";
  std::ostringstream oss;
  for (std::size_t i = 0; i < stack.size(); ++i) {
    if (i) oss << "+";
    oss << technique_name(stack[i]);
  }
  return oss.str();
}

MitigationSignature compute_signature(const MitigationSpec& spec, std::size_t num_qubits,
                                      std::size_t depth, std::size_t two_qubit_gates,
                                      std::size_t num_clbits, double mean_gate_error_2q,
                                      Accelerator accelerator) {
  MitigationSignature sig;
  const double speedup = accelerator_speedup(accelerator);

  for (const Technique t : spec.stack) {
    switch (t) {
      case Technique::kZne: {
        const double factors = static_cast<double>(spec.zne.noise_factors.size());
        double scale_sum = 0.0;
        for (double s : spec.zne.noise_factors) scale_sum += s;
        sig.circuit_instances *= factors;
        sig.quantum_runtime_multiplier *= std::max(scale_sum, 1.0);
        sig.classical_postprocess_seconds += kZneInferenceBase / speedup;
        sig.error_residual *= kZneResidual;
        break;
      }
      case Technique::kPec: {
        // Overhead grows with circuit size; cap it so the scheduler still
        // sees PEC as an (expensive) option rather than infinity.
        const double per_gate_gamma2 =
            std::pow(pec_gamma(std::min(mean_gate_error_2q, 0.4)), 2.0);
        const double overhead =
            std::min(std::pow(per_gate_gamma2, static_cast<double>(two_qubit_gates)), 64.0);
        sig.circuit_instances *= std::min(overhead, 32.0);
        sig.quantum_runtime_multiplier *= overhead;
        sig.classical_postprocess_seconds += kPecCombineBase * overhead / speedup;
        sig.error_residual *= kPecResidual;
        break;
      }
      case Technique::kRem: {
        // Two calibration circuits amortized, plus tensored inversion.
        sig.circuit_instances += 2.0;
        sig.quantum_runtime_multiplier *= 1.05;
        const double dim = std::pow(2.0, std::min<std::size_t>(num_clbits, 20));
        sig.classical_postprocess_seconds += kRemInversionPerOutcomeDim * dim / speedup;
        sig.error_residual *= kRemResidual;
        break;
      }
      case Technique::kDd: {
        // Pulses add a little quantum time; benefit enters via the residual
        // and the delay-dephasing factor consumed by the noise/ESP models.
        sig.quantum_runtime_multiplier *= 1.02;
        sig.error_residual *= kDdResidual;
        sig.delay_dephasing_residual =
            std::min(sig.delay_dephasing_residual, spec.dd.dephasing_residual);
        break;
      }
      case Technique::kTwirling: {
        sig.circuit_instances *= static_cast<double>(std::max<std::size_t>(spec.twirl_instances, 1));
        // Shots are split across twirls; only per-instance overhead remains.
        sig.quantum_runtime_multiplier *= 1.1;
        sig.error_residual *= kTwirlResidual;
        break;
      }
      case Technique::kCutting: {
        // Cut count estimate: crossing gates scale with 2q density across a
        // balanced bipartition; conservatively 1 + 2q/(4*width).
        const std::size_t cuts =
            1 + two_qubit_gates / std::max<std::size_t>(4 * num_qubits, 1);
        sig.cut_count = cuts;
        sig.cuts_circuit = true;
        // Sampling overhead is capped at two effective cuts (81x), mirroring
        // production knitting toolboxes that refuse runs beyond a sampling
        // budget; beyond that the scheduler would never pick the plan anyway.
        const double variants = std::min(std::pow(4.0, static_cast<double>(cuts)), 16.0);
        sig.circuit_instances *= variants;
        sig.quantum_runtime_multiplier *= std::min(std::pow(9.0, static_cast<double>(cuts)), 81.0);
        sig.classical_postprocess_seconds += kKnitPerVariant * variants *
                                             static_cast<double>(std::max<std::size_t>(depth, 1)) /
                                             speedup;
        // Fidelity benefit comes from narrower fragments (handled by the
        // estimator recomputing ESP on fragments); the residual here only
        // carries the per-cut reconstruction penalty.
        sig.error_residual *= 1.0;
        break;
      }
    }
  }
  sig.classical_preprocess_seconds +=
      kPreprocessPerInstance * sig.circuit_instances *
      (1.0 + static_cast<double>(depth) / 256.0);
  return sig;
}

double mitigated_fidelity(double base_fidelity, const MitigationSignature& signature) {
  const double f = 1.0 - (1.0 - base_fidelity) * signature.error_residual;
  return std::clamp(f, 0.0, 1.0);
}

std::vector<MitigationSpec> standard_mitigation_menu() {
  std::vector<MitigationSpec> menu;
  menu.push_back({});  // none

  MitigationSpec dd;
  dd.stack = {Technique::kDd};
  menu.push_back(dd);

  MitigationSpec rem_dd;
  rem_dd.stack = {Technique::kRem, Technique::kDd};
  menu.push_back(rem_dd);

  MitigationSpec twirl_rem;
  twirl_rem.stack = {Technique::kTwirling, Technique::kRem};
  menu.push_back(twirl_rem);

  MitigationSpec zne;
  zne.stack = {Technique::kZne};
  menu.push_back(zne);

  MitigationSpec zne_rem_dd;
  zne_rem_dd.stack = {Technique::kZne, Technique::kRem, Technique::kDd};
  menu.push_back(zne_rem_dd);

  MitigationSpec pec;
  pec.stack = {Technique::kPec};
  menu.push_back(pec);

  MitigationSpec cutting;
  cutting.stack = {Technique::kCutting};
  menu.push_back(cutting);

  MitigationSpec cutting_zne;
  cutting_zne.stack = {Technique::kCutting, Technique::kZne};
  menu.push_back(cutting_zne);

  return menu;
}

}  // namespace qon::mitigation
