#pragma once
// Stacked mitigation pipeline (§6 "Error mitigation"): a MitigationSpec
// lists the techniques applied to a job; compute_signature() turns it into
// the resource signature the estimator and scheduler consume — how many
// circuit instances run, how much quantum runtime multiplies, what the
// classical pre/post-processing costs on a given accelerator, and what
// fraction of the base error survives.
//
// The residual-error constants are model parameters (documented here and in
// DESIGN.md) chosen to reproduce the paper's qualitative uplift ordering:
// PEC > ZNE > REM > DD > twirling, with costs ordered the same way.

#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "mitigation/cutting.hpp"
#include "mitigation/dd.hpp"
#include "mitigation/zne.hpp"
#include "qpu/backend.hpp"

namespace qon::mitigation {

/// Techniques the orchestrator can stack.
enum class Technique { kZne, kPec, kRem, kDd, kTwirling, kCutting };

const char* technique_name(Technique t);

/// Classical accelerators available for pre/post-processing (paper Fig. 1).
enum class Accelerator { kCpu, kGpu, kFpga };

const char* accelerator_name(Accelerator a);

/// Post-processing speedup of an accelerator relative to CPU.
double accelerator_speedup(Accelerator a);

/// A stacked mitigation configuration.
struct MitigationSpec {
  std::vector<Technique> stack;
  ZneConfig zne;
  DdConfig dd;
  std::size_t twirl_instances = 8;
  double cut_penalty = 0.02;

  bool uses(Technique t) const;
  std::string to_string() const;
};

/// Resource signature of a mitigation stack applied to one circuit.
struct MitigationSignature {
  double circuit_instances = 1.0;          ///< generated circuit count
  double quantum_runtime_multiplier = 1.0; ///< on top of shots x duration
  double classical_preprocess_seconds = 0.0;
  double classical_postprocess_seconds = 0.0;
  double error_residual = 1.0;             ///< multiplies (1 - fidelity)
  std::size_t cut_count = 0;               ///< wire/gate cuts (0 = uncut)
  bool cuts_circuit = false;
  double delay_dephasing_residual = 1.0;   ///< DD suppression, for noise/ESP
};

/// Computes the signature of `spec` for a circuit with the given metrics.
/// `two_qubit_gates`/`depth`/`num_qubits`/`num_clbits` describe the
/// transpiled circuit; `mean_gate_error_2q` parameterizes the PEC overhead.
MitigationSignature compute_signature(const MitigationSpec& spec, std::size_t num_qubits,
                                      std::size_t depth, std::size_t two_qubit_gates,
                                      std::size_t num_clbits, double mean_gate_error_2q,
                                      Accelerator accelerator);

/// Applies a signature's residual to a base (unmitigated) fidelity:
/// f' = 1 - (1 - f) * residual, clamped to [0, 1].
double mitigated_fidelity(double base_fidelity, const MitigationSignature& signature);

/// All stacks the resource estimator enumerates when generating plans,
/// ordered roughly by cost (none first).
std::vector<MitigationSpec> standard_mitigation_menu();

}  // namespace qon::mitigation
