#include "mitigation/rem.hpp"

#include <cmath>
#include <stdexcept>

namespace qon::mitigation {

using circuit::Circuit;

std::vector<Confusion> measure_confusion(const qpu::Backend& backend,
                                         const std::vector<int>& physical_qubits, int shots,
                                         Rng& rng, const sim::HiddenNoise& hidden) {
  if (physical_qubits.empty()) {
    throw std::invalid_argument("measure_confusion: no qubits");
  }
  const int n = static_cast<int>(physical_qubits.size());

  // Calibration circuit 1: prepare |0...0>, measure (clbit i <- qubit i).
  Circuit zeros(backend.num_qubits(), "rem-cal0");
  for (int i = 0; i < n; ++i) {
    // A virtual rz keeps the qubit "active" without affecting its state, so
    // the trajectory runner includes it in the compacted register.
    zeros.rz(physical_qubits[static_cast<std::size_t>(i)], 0.0);
    zeros.measure(physical_qubits[static_cast<std::size_t>(i)], i);
  }
  // Calibration circuit 2: prepare |1...1>.
  Circuit ones(backend.num_qubits(), "rem-cal1");
  for (int i = 0; i < n; ++i) {
    ones.x(physical_qubits[static_cast<std::size_t>(i)]);
    ones.measure(physical_qubits[static_cast<std::size_t>(i)], i);
  }

  sim::TrajectoryOptions opts;
  opts.gate_noise = false;  // isolate readout errors, like real REM calibration
  opts.idle_noise = false;
  const auto counts0 = sim::run_noisy(zeros, backend, shots, rng, hidden, opts);
  const auto counts1 = sim::run_noisy(ones, backend, shots, rng, hidden, opts);

  std::vector<Confusion> confusion(static_cast<std::size_t>(n));
  std::uint64_t total0 = 0;
  std::uint64_t total1 = 0;
  std::vector<std::uint64_t> flips0(static_cast<std::size_t>(n), 0);
  std::vector<std::uint64_t> flips1(static_cast<std::size_t>(n), 0);
  for (const auto& [outcome, c] : counts0) {
    total0 += c;
    for (int i = 0; i < n; ++i) {
      if (outcome & (1ULL << i)) flips0[static_cast<std::size_t>(i)] += c;
    }
  }
  for (const auto& [outcome, c] : counts1) {
    total1 += c;
    for (int i = 0; i < n; ++i) {
      if (!(outcome & (1ULL << i))) flips1[static_cast<std::size_t>(i)] += c;
    }
  }
  for (int i = 0; i < n; ++i) {
    confusion[static_cast<std::size_t>(i)].p01 =
        static_cast<double>(flips0[static_cast<std::size_t>(i)]) / static_cast<double>(total0);
    confusion[static_cast<std::size_t>(i)].p10 =
        static_cast<double>(flips1[static_cast<std::size_t>(i)]) / static_cast<double>(total1);
  }
  return confusion;
}

std::vector<Confusion> calibration_confusion(const qpu::Backend& backend,
                                             const std::vector<int>& physical_qubits) {
  std::vector<Confusion> out;
  out.reserve(physical_qubits.size());
  for (int p : physical_qubits) {
    const double e = backend.calibration().qubits[static_cast<std::size_t>(p)].readout_error;
    out.push_back({e, e});
  }
  return out;
}

std::map<std::uint64_t, double> apply_rem(const std::map<std::uint64_t, double>& distribution,
                                          const std::vector<Confusion>& confusion,
                                          int num_clbits) {
  if (num_clbits <= 0 || num_clbits > 20) {
    throw std::invalid_argument("apply_rem: num_clbits must be in 1..20");
  }
  if (confusion.size() < static_cast<std::size_t>(num_clbits)) {
    throw std::invalid_argument("apply_rem: confusion vector too short");
  }
  const std::size_t dim = std::size_t{1} << num_clbits;
  std::vector<double> dense(dim, 0.0);
  for (const auto& [outcome, p] : distribution) {
    if (outcome >= dim) throw std::invalid_argument("apply_rem: outcome exceeds register");
    dense[outcome] = p;
  }

  // Apply the 2x2 inverse confusion along each clbit axis. The confusion
  // matrix per bit is M = [[1-p01, p10], [p01, 1-p10]] (column = prepared);
  // its inverse is applied as a tensored linear map.
  for (int bit = 0; bit < num_clbits; ++bit) {
    const auto& c = confusion[static_cast<std::size_t>(bit)];
    const double det = 1.0 - c.p01 - c.p10;
    if (std::abs(det) < 1e-9) {
      throw std::invalid_argument("apply_rem: confusion matrix is singular");
    }
    const double inv00 = (1.0 - c.p10) / det;
    const double inv01 = -c.p10 / det;
    const double inv10 = -c.p01 / det;
    const double inv11 = (1.0 - c.p01) / det;
    const std::size_t mask = std::size_t{1} << bit;
    for (std::size_t i = 0; i < dim; ++i) {
      if (i & mask) continue;
      const double v0 = dense[i];
      const double v1 = dense[i | mask];
      dense[i] = inv00 * v0 + inv01 * v1;
      dense[i | mask] = inv10 * v0 + inv11 * v1;
    }
  }

  // Clip negatives, renormalize, and sparsify.
  double total = 0.0;
  for (double& v : dense) {
    if (v < 0.0) v = 0.0;
    total += v;
  }
  std::map<std::uint64_t, double> out;
  if (total <= 0.0) return out;
  for (std::size_t i = 0; i < dim; ++i) {
    if (dense[i] > 1e-15) out[i] = dense[i] / total;
  }
  return out;
}

}  // namespace qon::mitigation
