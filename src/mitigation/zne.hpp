#pragma once
// Zero-Noise Extrapolation: executes a circuit at amplified noise levels
// (via unitary folding, which lengthens the circuit without changing its
// logic) and extrapolates the expectation value back to the zero-noise
// limit with a pluggable factory (Linear / Richardson / Exponential).

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qon::mitigation {

/// Globally folds the unitary part of `circ`: scale 1 -> C, 3 -> C C† C,
/// 5 -> C C† C C† C ... Non-odd-integer scales fold a suffix of gates
/// (partial folding), giving a fractional effective scale. Measurements are
/// re-appended at the end. Requires scale >= 1.
circuit::Circuit fold_global(const circuit::Circuit& circ, double scale);

/// Extrapolation factory interface: fit (scale, value) samples, predict
/// the value at scale 0.
class ExtrapolationFactory {
 public:
  virtual ~ExtrapolationFactory() = default;
  virtual double extrapolate(const std::vector<double>& scales,
                             const std::vector<double>& values) const = 0;
  virtual std::string name() const = 0;
};

/// Least-squares straight line through the samples, evaluated at 0.
class LinearFactory : public ExtrapolationFactory {
 public:
  double extrapolate(const std::vector<double>& scales,
                     const std::vector<double>& values) const override;
  std::string name() const override { return "linear"; }
};

/// Richardson extrapolation: exact polynomial through all points, order
/// n-1, evaluated at 0 (Lagrange form).
class RichardsonFactory : public ExtrapolationFactory {
 public:
  double extrapolate(const std::vector<double>& scales,
                     const std::vector<double>& values) const override;
  std::string name() const override { return "richardson"; }
};

/// Exponential decay model v(s) = a * exp(-b s) + c with c fixed to the
/// asymptote 0 (two-parameter fit in log space); falls back to linear when
/// values change sign.
class ExpFactory : public ExtrapolationFactory {
 public:
  double extrapolate(const std::vector<double>& scales,
                     const std::vector<double>& values) const override;
  std::string name() const override { return "exp"; }
};

/// ZNE configuration: which noise factors to run and how to extrapolate.
struct ZneConfig {
  std::vector<double> noise_factors = {1.0, 3.0, 5.0};
  std::shared_ptr<ExtrapolationFactory> factory = std::make_shared<RichardsonFactory>();
};

/// The folded circuit instances for every configured noise factor.
std::vector<circuit::Circuit> zne_circuits(const circuit::Circuit& circ, const ZneConfig& config);

/// Runs the full ZNE loop given an executor that returns the expectation
/// value of some observable for a (folded) circuit.
double zne_expectation(const circuit::Circuit& circ, const ZneConfig& config,
                       const std::function<double(const circuit::Circuit&)>& executor);

}  // namespace qon::mitigation
