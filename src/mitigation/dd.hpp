#pragma once
// Dynamical Decoupling: fills idle windows of a scheduled physical circuit
// with pulse pairs (XpXm: X followed by X, net identity) separated by
// delays. The inserted pulses are real gates (they cost gate error and
// duration); the *benefit* — suppression of dephasing during protected idle
// time — is modelled by the dephasing-suppression factor consumed by the
// trajectory runner and ESP model (see DESIGN.md, decision 1).

#include <string>

#include "circuit/circuit.hpp"
#include "qpu/backend.hpp"

namespace qon::mitigation {

/// Supported pulse sequences.
enum class DdSequence {
  kXpXm,  ///< X - X (net identity, echoes low-frequency dephasing)
  kXyXy,  ///< X - Y - X - Y (suppresses both axes, costs 4 pulses)
};

const char* dd_sequence_name(DdSequence seq);

struct DdConfig {
  DdSequence sequence = DdSequence::kXpXm;
  /// Idle windows shorter than this are left untouched [s].
  double min_idle_window = 100e-9;
  /// Fraction of Z (dephasing) idle noise surviving on protected qubits;
  /// exposed so the noise model and ESP stay consistent.
  double dephasing_residual = 0.35;
};

/// Result of a DD insertion pass.
struct DdResult {
  circuit::Circuit circuit;    ///< with pulse pairs + delays inserted
  std::size_t pulses_inserted = 0;
  double protected_idle_seconds = 0.0;  ///< total idle time now under DD
};

/// Inserts DD sequences into every idle window of `physical` longer than
/// `config.min_idle_window`, using `backend` durations for scheduling.
DdResult insert_dd(const circuit::Circuit& physical, const qpu::Backend& backend,
                   const DdConfig& config = {});

}  // namespace qon::mitigation
