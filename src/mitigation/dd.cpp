#include "mitigation/dd.hpp"

#include <algorithm>
#include <stdexcept>

#include "transpiler/scheduling.hpp"

namespace qon::mitigation {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

const char* dd_sequence_name(DdSequence seq) {
  switch (seq) {
    case DdSequence::kXpXm:
      return "XpXm";
    case DdSequence::kXyXy:
      return "XYXY";
  }
  return "?";
}

DdResult insert_dd(const Circuit& physical, const qpu::Backend& backend, const DdConfig& config) {
  if (config.min_idle_window <= 0.0) {
    throw std::invalid_argument("insert_dd: min_idle_window must be > 0");
  }
  const auto& cal = backend.calibration();
  DdResult result;
  result.circuit = Circuit(physical.num_qubits(), physical.name() + "_dd");

  const int pulses =
      config.sequence == DdSequence::kXpXm ? 2 : 4;

  std::vector<double> ready(static_cast<std::size_t>(physical.num_qubits()), 0.0);
  std::vector<bool> active(static_cast<std::size_t>(physical.num_qubits()), false);
  for (const auto& g : physical.gates()) {
    if (g.kind == GateKind::kBarrier) {
      const double sync = *std::max_element(ready.begin(), ready.end());
      std::fill(ready.begin(), ready.end(), sync);
      result.circuit.append(g);
      continue;
    }
    const double dur = transpiler::gate_duration(g, backend);
    double start = 0.0;
    for (int i = 0; i < g.arity(); ++i) {
      start = std::max(start, ready[static_cast<std::size_t>(g.qubit(i))]);
    }
    // Pad idle gaps on each operand with the DD sequence before the gate.
    for (int i = 0; i < g.arity(); ++i) {
      const int q = g.qubit(i);
      const double gap = start - ready[static_cast<std::size_t>(q)];
      const double pulse_dur =
          cal.qubits[static_cast<std::size_t>(q)].gate_duration_1q * pulses;
      if (active[static_cast<std::size_t>(q)] && gap > config.min_idle_window &&
          gap > pulse_dur) {
        // Split the remaining idle evenly into (pulses + 1) delay segments.
        const double segment = (gap - pulse_dur) / static_cast<double>(pulses + 1);
        for (int p = 0; p < pulses; ++p) {
          result.circuit.delay(q, segment);
          if (config.sequence == DdSequence::kXpXm || p % 2 == 0) {
            result.circuit.x(q);
          } else {
            result.circuit.y(q);
          }
        }
        result.circuit.delay(q, segment);
        result.pulses_inserted += static_cast<std::size_t>(pulses);
        result.protected_idle_seconds += gap;
      }
      active[static_cast<std::size_t>(q)] = true;
    }
    result.circuit.append(g);
    const double finish = start + dur;
    for (int i = 0; i < g.arity(); ++i) {
      ready[static_cast<std::size_t>(g.qubit(i))] = finish;
    }
  }
  return result;
}

}  // namespace qon::mitigation
