#include "mitigation/pec.hpp"

#include <cmath>
#include <stdexcept>

namespace qon::mitigation {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

double pec_gamma(double error_probability) {
  if (error_probability < 0.0 || error_probability >= 1.0) {
    throw std::invalid_argument("pec_gamma: error probability out of range");
  }
  return (1.0 + error_probability / 2.0) / (1.0 - error_probability);
}

double pec_sampling_overhead(const Circuit& physical, const qpu::Backend& backend) {
  const auto& cal = backend.calibration();
  double overhead = 1.0;
  for (const auto& g : physical.gates()) {
    double err = 0.0;
    switch (g.kind) {
      case GateKind::kCX:
      case GateKind::kCZ:
      case GateKind::kSwap:
      case GateKind::kRZZ:
        err = cal.edge(g.qubit(0), g.qubit(1)).gate_error_2q;
        break;
      case GateKind::kSX:
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kS:
      case GateKind::kSdg:
      case GateKind::kT:
      case GateKind::kTdg:
        err = cal.qubits[static_cast<std::size_t>(g.qubit(0))].gate_error_1q;
        break;
      default:
        continue;  // rz/measure/barrier/delay carry no PEC cost
    }
    const double gamma = pec_gamma(std::min(err, 0.5));
    overhead *= gamma * gamma;
    if (overhead > 1e12) return 1e12;  // saturate: PEC infeasible here
  }
  return overhead;
}

std::vector<PecInstance> pec_instances(const Circuit& physical, const qpu::Backend& backend,
                                       std::size_t count, std::uint64_t seed) {
  if (count == 0) throw std::invalid_argument("pec_instances: need >= 1 instance");
  const auto& cal = backend.calibration();
  Rng rng(seed);
  std::vector<PecInstance> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    PecInstance inst;
    inst.circuit = Circuit(physical.num_qubits(), physical.name() + "_pec");
    inst.sign = 1;
    for (const auto& g : physical.gates()) {
      inst.circuit.append(g);
      double err = 0.0;
      const bool two_q = circuit::is_two_qubit(g.kind);
      if (two_q) {
        err = cal.edge(g.qubit(0), g.qubit(1)).gate_error_2q;
      } else if (g.kind == GateKind::kSX || g.kind == GateKind::kX || g.kind == GateKind::kRX ||
                 g.kind == GateKind::kRY || g.kind == GateKind::kH || g.kind == GateKind::kY) {
        err = cal.qubits[static_cast<std::size_t>(g.qubit(0))].gate_error_1q;
      } else {
        continue;
      }
      // The inverse channel applies a compensating Pauli with probability
      // ~err/(1+err) and flips the quasi-probability sign when it does.
      const double p_insert = std::min(err, 0.5) / (1.0 + std::min(err, 0.5));
      if (!rng.bernoulli(p_insert)) continue;
      inst.sign = -inst.sign;
      auto random_pauli = [&rng]() -> GateKind {
        switch (rng.uniform_int(0, 2)) {
          case 0: return GateKind::kX;
          case 1: return GateKind::kY;
          default: return GateKind::kZ;
        }
      };
      inst.circuit.append({random_pauli(), {g.qubit(0), 0}, 0.0});
      if (two_q) inst.circuit.append({random_pauli(), {g.qubit(1), 0}, 0.0});
    }
    out.push_back(std::move(inst));
  }
  return out;
}

}  // namespace qon::mitigation
