#include "mitigation/cutting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qon::mitigation {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

CutPlan plan_bipartition(const Circuit& circ) {
  const int n = circ.num_qubits();
  if (n < 2) throw std::invalid_argument("plan_bipartition: need >= 2 qubits");
  const int balance_slack = 1;
  const int mid = n / 2;

  CutPlan best;
  std::size_t best_crossing = static_cast<std::size_t>(-1);
  for (int k = std::max(1, mid - balance_slack); k <= std::min(n - 1, mid + balance_slack); ++k) {
    std::size_t crossing = 0;
    for (const auto& g : circ.gates()) {
      if (!circuit::is_two_qubit(g.kind)) continue;
      const bool a0 = g.qubit(0) < k;
      const bool a1 = g.qubit(1) < k;
      if (a0 != a1) ++crossing;
    }
    if (crossing < best_crossing) {
      best_crossing = crossing;
      best.group_a.clear();
      best.group_b.clear();
      for (int q = 0; q < k; ++q) best.group_a.push_back(q);
      for (int q = k; q < n; ++q) best.group_b.push_back(q);
      best.crossing_gates = crossing;
    }
  }
  return best;
}

namespace {

// Extracts the sub-circuit acting on `group`, remapping qubits to 0..|g|-1
// and dropping gates that cross the cut. Measure clbits are preserved.
Circuit extract_fragment(const Circuit& circ, const std::vector<int>& group,
                         const char* suffix) {
  std::vector<int> local(static_cast<std::size_t>(circ.num_qubits()), -1);
  for (std::size_t i = 0; i < group.size(); ++i) {
    local[static_cast<std::size_t>(group[i])] = static_cast<int>(i);
  }
  Circuit frag(static_cast<int>(group.size()), circ.name() + suffix);
  for (const auto& g : circ.gates()) {
    if (g.kind == GateKind::kBarrier) {
      frag.barrier();
      continue;
    }
    bool in_group = true;
    for (int i = 0; i < g.arity(); ++i) {
      if (local[static_cast<std::size_t>(g.qubit(i))] < 0) in_group = false;
    }
    if (!in_group) continue;  // crossing or other-fragment gate
    Gate mapped = g;
    for (int i = 0; i < g.arity(); ++i) {
      mapped.qubits[static_cast<std::size_t>(i)] =
          local[static_cast<std::size_t>(g.qubit(i))];
    }
    frag.append(mapped);  // measure keeps its original clbit
  }
  return frag;
}

}  // namespace

CutResult cut_circuit(const Circuit& circ, const CutPlan& plan) {
  if (plan.group_a.empty() || plan.group_b.empty()) {
    throw std::invalid_argument("cut_circuit: both groups must be non-empty");
  }
  CutResult result;
  result.plan = plan;
  result.fragment_a = extract_fragment(circ, plan.group_a, "_cutA");
  result.fragment_b = extract_fragment(circ, plan.group_b, "_cutB");
  const double cuts = static_cast<double>(plan.crossing_gates);
  result.sampling_overhead = std::min(std::pow(9.0, cuts), 1e9);
  result.circuit_variants =
      static_cast<std::size_t>(std::min(std::pow(4.0, cuts), 4096.0));
  if (result.circuit_variants == 0) result.circuit_variants = 1;
  return result;
}

CutResult cut_circuit(const Circuit& circ) { return cut_circuit(circ, plan_bipartition(circ)); }

std::map<std::uint64_t, double> knit_distributions(
    const std::map<std::uint64_t, double>& dist_a,
    const std::map<std::uint64_t, double>& dist_b) {
  std::map<std::uint64_t, double> out;
  for (const auto& [ka, pa] : dist_a) {
    for (const auto& [kb, pb] : dist_b) {
      if ((ka & kb) != 0) {
        throw std::invalid_argument("knit_distributions: fragments share clbits");
      }
      out[ka | kb] += pa * pb;
    }
  }
  return out;
}

double knitted_fidelity(double fidelity_a, double fidelity_b, std::size_t cuts,
                        double per_cut_penalty) {
  const double base = fidelity_a * fidelity_b;
  return base * std::pow(1.0 - per_cut_penalty, static_cast<double>(cuts));
}

}  // namespace qon::mitigation
