#pragma once
// Probabilistic Error Cancellation: represents the inverse of each gate's
// depolarizing noise channel as a quasi-probability mixture of Pauli
// insertions. Executing sampled instances with sign weights cancels the
// noise in expectation at a sampling cost of gamma² per gate.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qpu/backend.hpp"

namespace qon::mitigation {

/// One sampled PEC instance: a circuit with random Pauli insertions and the
/// sign of its quasi-probability weight.
struct PecInstance {
  circuit::Circuit circuit;
  int sign = 1;  ///< +1 or -1
};

/// gamma of the inverse depolarizing channel with error probability p:
/// gamma = (1 + p/2) / (1 - p) for the Pauli-twirled single/two-qubit case
/// (approximation; grows as errors grow).
double pec_gamma(double error_probability);

/// Total sampling overhead of a physical circuit on a backend:
/// prod_over_gates gamma(err_g)^2. This is the shot-count multiplier needed
/// to keep estimator variance constant.
double pec_sampling_overhead(const circuit::Circuit& physical, const qpu::Backend& backend);

/// Samples `count` PEC instances of `physical`. Each noisy gate is followed,
/// with probability proportional to its quasi-probability mass, by a random
/// Pauli insertion that flips the instance sign.
std::vector<PecInstance> pec_instances(const circuit::Circuit& physical,
                                       const qpu::Backend& backend, std::size_t count,
                                       std::uint64_t seed);

}  // namespace qon::mitigation
