#include "mitigation/zne.hpp"

#include <cmath>
#include <stdexcept>

#include "mlcore/matrix.hpp"

namespace qon::mitigation {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

Circuit fold_global(const Circuit& circ, double scale) {
  if (scale < 1.0) throw std::invalid_argument("fold_global: scale must be >= 1");
  const Circuit unitary = circ.without_measurements();
  const Circuit inverse = unitary.inverse();

  Circuit out(circ.num_qubits(), circ.name() + "_zne");
  out.extend(unitary);

  // Whole folds: each (C† C) pair adds 2 to the effective scale.
  const int whole_pairs = static_cast<int>((scale - 1.0) / 2.0);
  for (int k = 0; k < whole_pairs; ++k) {
    out.extend(inverse);
    out.extend(unitary);
  }
  // Partial fold for the remainder: fold the last `fraction` of gates once.
  const double remainder = scale - 1.0 - 2.0 * whole_pairs;
  if (remainder > 1e-9) {
    const auto& gates = unitary.gates();
    const auto n_fold = static_cast<std::size_t>(
        std::lround(remainder / 2.0 * static_cast<double>(gates.size())));
    if (n_fold > 0) {
      // Fold the suffix S: append S† then S.
      Circuit suffix(circ.num_qubits());
      for (std::size_t i = gates.size() - n_fold; i < gates.size(); ++i) {
        suffix.append(gates[i]);
      }
      out.extend(suffix.inverse());
      out.extend(suffix);
    }
  }
  // Re-append the original measurements.
  for (const auto& g : circ.gates()) {
    if (g.kind == GateKind::kMeasure) out.append(g);
  }
  return out;
}

double LinearFactory::extrapolate(const std::vector<double>& scales,
                                  const std::vector<double>& values) const {
  if (scales.size() != values.size() || scales.size() < 2) {
    throw std::invalid_argument("LinearFactory: need >= 2 samples");
  }
  ml::Matrix a(scales.size(), 2);
  for (std::size_t i = 0; i < scales.size(); ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = scales[i];
  }
  const auto beta = ml::qr_least_squares(a, values);
  return beta[0];  // intercept = value at scale 0
}

double RichardsonFactory::extrapolate(const std::vector<double>& scales,
                                      const std::vector<double>& values) const {
  if (scales.size() != values.size() || scales.empty()) {
    throw std::invalid_argument("RichardsonFactory: empty samples");
  }
  // Lagrange interpolation evaluated at 0.
  double result = 0.0;
  for (std::size_t i = 0; i < scales.size(); ++i) {
    double weight = 1.0;
    for (std::size_t j = 0; j < scales.size(); ++j) {
      if (i == j) continue;
      const double denom = scales[i] - scales[j];
      if (std::abs(denom) < 1e-12) {
        throw std::invalid_argument("RichardsonFactory: duplicate scales");
      }
      weight *= (0.0 - scales[j]) / denom;
    }
    result += weight * values[i];
  }
  return result;
}

double ExpFactory::extrapolate(const std::vector<double>& scales,
                               const std::vector<double>& values) const {
  if (scales.size() != values.size() || scales.size() < 2) {
    throw std::invalid_argument("ExpFactory: need >= 2 samples");
  }
  // Fit ln v = ln a - b s; requires all values strictly one-signed.
  bool all_positive = true;
  for (double v : values) {
    if (v <= 1e-12) all_positive = false;
  }
  if (!all_positive) return LinearFactory().extrapolate(scales, values);
  ml::Matrix a(scales.size(), 2);
  std::vector<double> logs(values.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = scales[i];
    logs[i] = std::log(values[i]);
  }
  const auto beta = ml::qr_least_squares(a, logs);
  return std::exp(beta[0]);
}

std::vector<Circuit> zne_circuits(const Circuit& circ, const ZneConfig& config) {
  if (config.noise_factors.empty()) {
    throw std::invalid_argument("zne_circuits: no noise factors");
  }
  std::vector<Circuit> out;
  out.reserve(config.noise_factors.size());
  for (double s : config.noise_factors) out.push_back(fold_global(circ, s));
  return out;
}

double zne_expectation(const Circuit& circ, const ZneConfig& config,
                       const std::function<double(const Circuit&)>& executor) {
  if (!config.factory) throw std::invalid_argument("zne_expectation: null factory");
  std::vector<double> values;
  values.reserve(config.noise_factors.size());
  for (const auto& folded : zne_circuits(circ, config)) {
    values.push_back(executor(folded));
  }
  return config.factory->extrapolate(config.noise_factors, values);
}

}  // namespace qon::mitigation
