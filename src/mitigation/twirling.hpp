#pragma once
// Pauli twirling: wraps every CX with uniformly random Pauli pairs chosen so
// the net unitary is unchanged (the closing pair is the CX-conjugate of the
// opening pair). Averaging over twirled instances converts coherent noise
// into stochastic Pauli noise.

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace qon::mitigation {

/// Returns one twirled instance of `circ` (unitarily equivalent up to
/// global phase). Only kCX gates are twirled; other gates pass through.
circuit::Circuit pauli_twirl(const circuit::Circuit& circ, Rng& rng);

/// Returns `instances` independent twirls (instances >= 1).
std::vector<circuit::Circuit> pauli_twirl_instances(const circuit::Circuit& circ,
                                                    std::size_t instances, std::uint64_t seed);

}  // namespace qon::mitigation
