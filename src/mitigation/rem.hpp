#pragma once
// Readout Error Mitigation: estimates per-qubit confusion matrices from
// calibration circuits (all-zeros / all-ones preparations executed through
// the noisy simulator) and applies the tensored inverse to measured
// distributions, clipping negative quasi-probabilities and renormalizing.

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "qpu/backend.hpp"
#include "simulator/noise.hpp"

namespace qon::mitigation {

/// Per-qubit symmetric-ish confusion matrix:
/// p01 = P(read 1 | prepared 0), p10 = P(read 0 | prepared 1).
struct Confusion {
  double p01 = 0.0;
  double p10 = 0.0;
};

/// Estimates confusion for the given *physical* qubits of `backend` by
/// executing |0...0> and |1...1> calibration circuits with `shots` shots.
std::vector<Confusion> measure_confusion(const qpu::Backend& backend,
                                         const std::vector<int>& physical_qubits, int shots,
                                         Rng& rng, const sim::HiddenNoise& hidden);

/// Ideal confusion straight from the published calibration (flip symmetric).
std::vector<Confusion> calibration_confusion(const qpu::Backend& backend,
                                             const std::vector<int>& physical_qubits);

/// Applies the tensored inverse confusion to a measured distribution over
/// `num_clbits` classical bits (clbit i corrected by confusion[i]).
/// Negative corrected probabilities are clipped to 0 and the result is
/// renormalized. Requires num_clbits <= 20.
std::map<std::uint64_t, double> apply_rem(const std::map<std::uint64_t, double>& distribution,
                                          const std::vector<Confusion>& confusion,
                                          int num_clbits);

}  // namespace qon::mitigation
