#include "mitigation/twirling.hpp"

#include <stdexcept>

namespace qon::mitigation {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

namespace {

// Pauli in symplectic (x, z) representation: (0,0)=I (1,0)=X (0,1)=Z (1,1)=Y.
struct PauliBits {
  bool x = false;
  bool z = false;
};

void append_pauli(Circuit& out, int qubit, const PauliBits& p) {
  if (p.x && p.z) {
    out.y(qubit);
  } else if (p.x) {
    out.x(qubit);
  } else if (p.z) {
    out.z(qubit);
  }
}

}  // namespace

Circuit pauli_twirl(const Circuit& circ, Rng& rng) {
  Circuit out(circ.num_qubits(), circ.name() + "_twirl");
  for (const auto& g : circ.gates()) {
    if (g.kind != GateKind::kCX) {
      out.append(g);
      continue;
    }
    const int control = g.qubit(0);
    const int target = g.qubit(1);
    PauliBits pc{rng.bernoulli(0.5), rng.bernoulli(0.5)};
    PauliBits pt{rng.bernoulli(0.5), rng.bernoulli(0.5)};
    // Conjugate (pc ⊗ pt) through CX: X propagates control -> target,
    // Z propagates target -> control (up to a global sign, which is a
    // global phase when applied as gates).
    PauliBits qc = pc;
    PauliBits qt = pt;
    qt.x = qt.x != pc.x;
    qc.z = qc.z != pt.z;

    append_pauli(out, control, pc);
    append_pauli(out, target, pt);
    out.append(g);
    append_pauli(out, control, qc);
    append_pauli(out, target, qt);
  }
  return out;
}

std::vector<Circuit> pauli_twirl_instances(const Circuit& circ, std::size_t instances,
                                           std::uint64_t seed) {
  if (instances == 0) throw std::invalid_argument("pauli_twirl_instances: need >= 1");
  Rng rng(seed);
  std::vector<Circuit> out;
  out.reserve(instances);
  for (std::size_t i = 0; i < instances; ++i) out.push_back(pauli_twirl(circ, rng));
  return out;
}

}  // namespace qon::mitigation
