#pragma once
// Circuit cutting (knitting): bipartitions a circuit's qubits, removes the
// crossing two-qubit gates, and executes the two fragments independently.
// Each removed gate is accounted as one quasi-probability cut with sampling
// overhead 9 (the QPD gamma² of CX), multiplying quantum runtime and
// classical reconstruction cost — the resource signature of Fig. 2a.
//
// Reconstruction here is the tensor-product combination of fragment
// distributions; it is exact when the crossing gates act trivially in the
// executed state (e.g. QAOA edges across a weak bipartition) and otherwise
// approximate. The fidelity *benefit* of cutting comes from the fragments
// being narrower and shallower — which the ESP/trajectory models capture
// directly — minus a per-cut reconstruction penalty.

#include <cstdint>
#include <map>
#include <vector>

#include "circuit/circuit.hpp"

namespace qon::mitigation {

/// A planned bipartition of circuit qubits.
struct CutPlan {
  std::vector<int> group_a;  ///< logical qubits of fragment A
  std::vector<int> group_b;
  std::size_t crossing_gates = 0;  ///< two-qubit gates spanning the cut
};

/// Plans a contiguous bipartition (qubits [0, k) vs [k, n)), choosing the
/// split point k that minimizes crossing two-qubit gates while keeping the
/// halves within one qubit of balanced.
CutPlan plan_bipartition(const circuit::Circuit& circ);

/// The two fragments of a cut.
struct CutResult {
  circuit::Circuit fragment_a;  ///< width = |group_a|
  circuit::Circuit fragment_b;
  CutPlan plan;
  /// Sampling overhead gamma^2 per cut: 9^crossing_gates (capped at 1e9).
  double sampling_overhead = 1.0;
  /// Number of fragment-circuit variants to execute (4^cuts, capped 4096).
  std::size_t circuit_variants = 1;
};

/// Cuts `circ` according to `plan` (or an auto plan). Measurement clbits
/// keep their original logical indices so reconstruction can reassemble the
/// full register.
CutResult cut_circuit(const circuit::Circuit& circ, const CutPlan& plan);
CutResult cut_circuit(const circuit::Circuit& circ);

/// Tensor-product reconstruction of the full-register distribution from
/// fragment distributions (keys already in full-register clbit space).
std::map<std::uint64_t, double> knit_distributions(
    const std::map<std::uint64_t, double>& dist_a,
    const std::map<std::uint64_t, double>& dist_b);

/// Fidelity model of a knitted execution: the product of fragment
/// fidelities times a per-cut penalty (default 2% per cut) reflecting
/// reconstruction variance.
double knitted_fidelity(double fidelity_a, double fidelity_b, std::size_t cuts,
                        double per_cut_penalty = 0.02);

}  // namespace qon::mitigation
