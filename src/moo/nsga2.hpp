#pragma once
// NSGA-II (Deb et al. 2002) over integer genomes, customized per §7 of the
// paper: random-integer initialization, crossover spread sampled from an
// exponential distribution, polynomial mutation in a parent's vicinity, and
// termination by generation/evaluation caps plus a sliding-window tolerance
// test over a sequence of generations.

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "moo/problem.hpp"

namespace qon::moo {

/// Algorithm configuration; defaults follow the paper's scheduler setup.
struct Nsga2Config {
  std::size_t population_size = 80;
  std::size_t max_generations = 60;
  std::size_t max_evaluations = 20000;
  double crossover_prob = 0.9;
  double crossover_rate_per_gene = 0.5;
  double exponential_lambda = 3.0;  ///< crossover spread ~ Exp(lambda)
  double mutation_prob_per_gene = -1.0;  ///< <0 means 1/num_variables
  double mutation_eta = 20.0;            ///< polynomial mutation index
  std::size_t tolerance_window = 8;      ///< generations in the sliding window
  double tolerance = 1e-4;               ///< relative ideal-point improvement
  std::uint64_t seed = 1;
  bool parallel_evaluation = false;      ///< evaluate population on the pool
  /// Heuristic genomes injected into the initial population (repaired
  /// first). Seeding the extremes (e.g. best-fidelity / least-busy
  /// assignments) guarantees the front covers the corners of the objective
  /// space that random initialization rarely reaches.
  std::vector<std::vector<int>> initial_genomes;
};

/// One member of the final front.
struct Solution {
  std::vector<int> genome;
  std::vector<double> objectives;
};

/// Result of a run: the non-dominated front plus bookkeeping.
struct Nsga2Result {
  std::vector<Solution> front;        ///< rank-0 solutions (deduplicated)
  std::size_t generations = 0;
  std::size_t evaluations = 0;
  bool converged_by_tolerance = false;
};

/// Runs NSGA-II on `problem`. The returned front is sorted by the first
/// objective (ascending) for deterministic downstream selection.
Nsga2Result nsga2(const IntegerProblem& problem, const Nsga2Config& config);

/// Exposed for testing: fast non-dominated sort. Returns per-individual rank
/// (0 = best front).
std::vector<std::size_t> fast_non_dominated_sort(
    const std::vector<std::vector<double>>& objectives);

/// Exposed for testing: crowding distance within one front (index list into
/// `objectives`). Boundary points get +inf.
std::vector<double> crowding_distance(const std::vector<std::vector<double>>& objectives,
                                      const std::vector<std::size_t>& front);

}  // namespace qon::moo
