#include "moo/nsga2.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace qon::moo {

namespace {

struct Individual {
  std::vector<int> genome;
  std::vector<double> objectives;
  std::size_t rank = 0;
  double crowding = 0.0;
};

}  // namespace

std::vector<std::size_t> fast_non_dominated_sort(
    const std::vector<std::vector<double>>& objectives) {
  const std::size_t n = objectives.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::size_t> rank(n, 0);

  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(objectives[p], objectives[q])) {
        dominated_by[p].push_back(q);
      } else if (dominates(objectives[q], objectives[p])) {
        ++domination_count[p];
      }
    }
  }
  std::vector<std::size_t> current;
  for (std::size_t p = 0; p < n; ++p) {
    if (domination_count[p] == 0) {
      rank[p] = 0;
      current.push_back(p);
    }
  }
  std::size_t level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : current) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) {
          rank[q] = level + 1;
          next.push_back(q);
        }
      }
    }
    ++level;
    current = std::move(next);
  }
  return rank;
}

std::vector<double> crowding_distance(const std::vector<std::vector<double>>& objectives,
                                      const std::vector<std::size_t>& front) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> distance(front.size(), 0.0);
  if (front.empty()) return distance;
  const std::size_t m_count = objectives[front[0]].size();
  std::vector<std::size_t> order(front.size());
  for (std::size_t m = 0; m < m_count; ++m) {
    for (std::size_t i = 0; i < front.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return objectives[front[a]][m] < objectives[front[b]][m];
    });
    distance[order.front()] = inf;
    distance[order.back()] = inf;
    const double span =
        objectives[front[order.back()]][m] - objectives[front[order.front()]][m];
    if (span <= 0.0) continue;
    for (std::size_t i = 1; i + 1 < order.size(); ++i) {
      distance[order[i]] += (objectives[front[order[i + 1]]][m] -
                             objectives[front[order[i - 1]]][m]) /
                            span;
    }
  }
  return distance;
}

namespace {

// Binary tournament: lower rank wins; ties broken by larger crowding.
const Individual& tournament(const std::vector<Individual>& pop, Rng& rng) {
  const auto& a = pop[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
  const auto& b = pop[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
  if (a.rank != b.rank) return a.rank < b.rank ? a : b;
  return a.crowding >= b.crowding ? a : b;
}

// Crossover with exponentially distributed spread (paper §7): children are
// placed at 0.5((1±beta) p1 + (1∓beta) p2) with beta ~ Exp(lambda), rounded
// back to integers.
void exponential_crossover(const std::vector<int>& p1, const std::vector<int>& p2,
                           std::vector<int>& c1, std::vector<int>& c2,
                           const Nsga2Config& cfg, Rng& rng) {
  c1 = p1;
  c2 = p2;
  if (!rng.bernoulli(cfg.crossover_prob)) return;
  for (std::size_t i = 0; i < p1.size(); ++i) {
    if (!rng.bernoulli(cfg.crossover_rate_per_gene)) continue;
    const double beta = rng.exponential(cfg.exponential_lambda);
    const double a = static_cast<double>(p1[i]);
    const double b = static_cast<double>(p2[i]);
    const double child1 = 0.5 * ((1.0 + beta) * a + (1.0 - beta) * b);
    const double child2 = 0.5 * ((1.0 - beta) * a + (1.0 + beta) * b);
    c1[i] = static_cast<int>(std::lround(child1));
    c2[i] = static_cast<int>(std::lround(child2));
  }
}

// Polynomial mutation (Deb): perturbs within the parent's vicinity with a
// polynomial probability distribution of index eta.
void polynomial_mutation(std::vector<int>& genome, const IntegerProblem& problem,
                         const Nsga2Config& cfg, Rng& rng) {
  const double p_gene = cfg.mutation_prob_per_gene > 0.0
                            ? cfg.mutation_prob_per_gene
                            : 1.0 / static_cast<double>(genome.size());
  for (std::size_t i = 0; i < genome.size(); ++i) {
    if (!rng.bernoulli(p_gene)) continue;
    const double lo = problem.lower_bound(i);
    const double hi = problem.upper_bound(i);
    if (hi <= lo) continue;
    const double x = genome[i];
    const double u = rng.uniform();
    const double eta = cfg.mutation_eta;
    double delta;
    if (u < 0.5) {
      delta = std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0;
    } else {
      delta = 1.0 - std::pow(2.0 * (1.0 - u), 1.0 / (eta + 1.0));
    }
    genome[i] = static_cast<int>(std::lround(x + delta * (hi - lo)));
  }
}

void evaluate_population(std::vector<Individual>& pop, const IntegerProblem& problem,
                         bool parallel, std::size_t& evaluations) {
  if (parallel && pop.size() > 1) {
    parallel_for_each_index(
        0, pop.size(),
        [&pop, &problem](std::size_t i) { problem.evaluate(pop[i].genome, pop[i].objectives); },
        nullptr, 1);
  } else {
    for (auto& ind : pop) problem.evaluate(ind.genome, ind.objectives);
  }
  evaluations += pop.size();
}

void assign_ranks_and_crowding(std::vector<Individual>& pop) {
  std::vector<std::vector<double>> objs(pop.size());
  for (std::size_t i = 0; i < pop.size(); ++i) objs[i] = pop[i].objectives;
  const auto ranks = fast_non_dominated_sort(objs);
  std::size_t max_rank = 0;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    pop[i].rank = ranks[i];
    max_rank = std::max(max_rank, ranks[i]);
  }
  for (std::size_t r = 0; r <= max_rank; ++r) {
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < pop.size(); ++i) {
      if (pop[i].rank == r) front.push_back(i);
    }
    const auto dist = crowding_distance(objs, front);
    for (std::size_t k = 0; k < front.size(); ++k) pop[front[k]].crowding = dist[k];
  }
}

}  // namespace

Nsga2Result nsga2(const IntegerProblem& problem, const Nsga2Config& config) {
  if (problem.num_variables() == 0) {
    throw std::invalid_argument("nsga2: problem has no variables");
  }
  if (config.population_size < 4) {
    throw std::invalid_argument("nsga2: population_size must be >= 4");
  }
  Rng rng(config.seed);
  Nsga2Result result;

  // Random-integer initialization within bounds, with caller-provided
  // heuristic seeds occupying the first slots.
  std::vector<Individual> pop(config.population_size);
  for (std::size_t p = 0; p < pop.size(); ++p) {
    auto& ind = pop[p];
    ind.genome.resize(problem.num_variables());
    ind.objectives.resize(problem.num_objectives());
    if (p < config.initial_genomes.size() &&
        config.initial_genomes[p].size() == problem.num_variables()) {
      ind.genome = config.initial_genomes[p];
    } else {
      for (std::size_t i = 0; i < ind.genome.size(); ++i) {
        ind.genome[i] = static_cast<int>(
            rng.uniform_int(problem.lower_bound(i), problem.upper_bound(i)));
      }
    }
    problem.repair(ind.genome);
  }
  evaluate_population(pop, problem, config.parallel_evaluation, result.evaluations);
  assign_ranks_and_crowding(pop);

  // Sliding-window tolerance bookkeeping: track the ideal point (per-
  // objective minima) over the last `tolerance_window` generations.
  std::vector<std::vector<double>> ideal_history;
  auto ideal_point = [&pop] {
    std::vector<double> ideal = pop[0].objectives;
    for (const auto& ind : pop) {
      for (std::size_t m = 0; m < ideal.size(); ++m) {
        ideal[m] = std::min(ideal[m], ind.objectives[m]);
      }
    }
    return ideal;
  };
  ideal_history.push_back(ideal_point());

  for (std::size_t gen = 0; gen < config.max_generations; ++gen) {
    if (result.evaluations >= config.max_evaluations) break;
    ++result.generations;

    // Offspring via tournament + exponential crossover + polynomial mutation.
    std::vector<Individual> offspring;
    offspring.reserve(config.population_size);
    while (offspring.size() < config.population_size) {
      const auto& p1 = tournament(pop, rng);
      const auto& p2 = tournament(pop, rng);
      Individual c1;
      Individual c2;
      c1.objectives.resize(problem.num_objectives());
      c2.objectives.resize(problem.num_objectives());
      exponential_crossover(p1.genome, p2.genome, c1.genome, c2.genome, config, rng);
      polynomial_mutation(c1.genome, problem, config, rng);
      polynomial_mutation(c2.genome, problem, config, rng);
      problem.repair(c1.genome);
      problem.repair(c2.genome);
      offspring.push_back(std::move(c1));
      if (offspring.size() < config.population_size) offspring.push_back(std::move(c2));
    }
    evaluate_population(offspring, problem, config.parallel_evaluation, result.evaluations);

    // Environmental selection over parents + offspring.
    std::vector<Individual> merged;
    merged.reserve(pop.size() + offspring.size());
    for (auto& ind : pop) merged.push_back(std::move(ind));
    for (auto& ind : offspring) merged.push_back(std::move(ind));
    assign_ranks_and_crowding(merged);
    std::sort(merged.begin(), merged.end(), [](const Individual& a, const Individual& b) {
      if (a.rank != b.rank) return a.rank < b.rank;
      return a.crowding > b.crowding;
    });
    merged.resize(config.population_size);
    pop = std::move(merged);
    assign_ranks_and_crowding(pop);

    // Tolerance termination over the sliding window.
    ideal_history.push_back(ideal_point());
    if (ideal_history.size() > config.tolerance_window) {
      ideal_history.erase(ideal_history.begin());
      const auto& oldest = ideal_history.front();
      const auto& latest = ideal_history.back();
      double rel_improvement = 0.0;
      for (std::size_t m = 0; m < latest.size(); ++m) {
        const double denom = std::max(std::abs(oldest[m]), 1e-12);
        rel_improvement = std::max(rel_improvement, (oldest[m] - latest[m]) / denom);
      }
      if (rel_improvement < config.tolerance) {
        result.converged_by_tolerance = true;
        break;
      }
    }
  }

  // Extract the deduplicated rank-0 front.
  for (const auto& ind : pop) {
    if (ind.rank != 0) continue;
    const bool duplicate =
        std::any_of(result.front.begin(), result.front.end(),
                    [&ind](const Solution& s) { return s.genome == ind.genome; });
    if (!duplicate) result.front.push_back({ind.genome, ind.objectives});
  }
  std::sort(result.front.begin(), result.front.end(), [](const Solution& a, const Solution& b) {
    return a.objectives[0] < b.objectives[0];
  });
  return result;
}

}  // namespace qon::moo
