#include "moo/problem.hpp"

#include <algorithm>

namespace qon::moo {

void IntegerProblem::repair(std::vector<int>& genome) const {
  for (std::size_t i = 0; i < genome.size(); ++i) {
    genome[i] = std::clamp(genome[i], lower_bound(i), upper_bound(i));
  }
}

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  bool strictly_better = false;
  for (std::size_t m = 0; m < a.size(); ++m) {
    if (a[m] > b[m]) return false;
    if (a[m] < b[m]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::size_t> non_dominated_indices(
    const std::vector<std::vector<double>>& objectives) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < objectives.size() && !dominated; ++j) {
      if (i != j && dominates(objectives[j], objectives[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace qon::moo
