#pragma once
// Multiple-Criteria Decision-Making over a Pareto front via pseudo-weights
// (paper Eq. 2): each solution's weight vector measures its relative
// position in objective space; the solution whose weights are closest to a
// caller preference vector is selected.

#include <vector>

#include "moo/nsga2.hpp"

namespace qon::moo {

/// Pseudo-weight matrix for a front of objective vectors (all minimized):
/// w_i(x) = norm_dist_to_worst_i(x) / sum_m norm_dist_to_worst_m(x).
/// Rows sum to 1. Degenerate objectives (max == min) contribute 0.
std::vector<std::vector<double>> pseudo_weights(
    const std::vector<std::vector<double>>& front_objectives);

/// Index of the front member whose pseudo-weight vector has minimal
/// Euclidean distance to `preference` (which should sum to ~1).
/// Throws std::invalid_argument on an empty front.
std::size_t select_by_pseudo_weight(const std::vector<std::vector<double>>& front_objectives,
                                    const std::vector<double>& preference);

/// One selection per preference vector, sharing a single pseudo-weight
/// computation over the front — the per-job MCDM of a scheduling cycle
/// whose jobs carry heterogeneous preferences. Returns one front index per
/// entry of `preferences`. Throws std::invalid_argument on an empty front
/// or a preference arity mismatch.
std::vector<std::size_t> select_each_by_pseudo_weight(
    const std::vector<std::vector<double>>& front_objectives,
    const std::vector<std::vector<double>>& preferences);

/// Convenience overload for a Solution front.
std::size_t select_by_pseudo_weight(const std::vector<Solution>& front,
                                    const std::vector<double>& preference);

}  // namespace qon::moo
