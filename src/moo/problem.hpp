#pragma once
// Multi-objective optimization problem interface. Qonductor's scheduling
// problem (Eq. 1) is an integer-assignment problem: variable i is the QPU
// index assigned to job i. All objectives are minimized.

#include <cstddef>
#include <vector>

namespace qon::moo {

/// An integer-vector multi-objective minimization problem.
class IntegerProblem {
 public:
  virtual ~IntegerProblem() = default;

  /// Number of decision variables (genome length).
  virtual std::size_t num_variables() const = 0;

  /// Inclusive bounds for variable i.
  virtual int lower_bound(std::size_t i) const = 0;
  virtual int upper_bound(std::size_t i) const = 0;

  /// Number of objectives (all minimized).
  virtual std::size_t num_objectives() const = 0;

  /// Evaluates a genome; must fill `objectives` (size num_objectives()).
  /// Infeasible assignments should be repaired or penalized here.
  virtual void evaluate(const std::vector<int>& genome,
                        std::vector<double>& objectives) const = 0;

  /// Optional repair hook: clamp/adjust a genome into feasibility.
  /// Default: clamp to bounds.
  virtual void repair(std::vector<int>& genome) const;
};

/// True when objective vector `a` Pareto-dominates `b` (<= everywhere,
/// < somewhere).
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the non-dominated members of `objectives`.
std::vector<std::size_t> non_dominated_indices(
    const std::vector<std::vector<double>>& objectives);

}  // namespace qon::moo
