#include "moo/mcdm.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace qon::moo {

std::vector<std::vector<double>> pseudo_weights(
    const std::vector<std::vector<double>>& front_objectives) {
  if (front_objectives.empty()) return {};
  const std::size_t m_count = front_objectives[0].size();
  std::vector<double> f_min(m_count, std::numeric_limits<double>::infinity());
  std::vector<double> f_max(m_count, -std::numeric_limits<double>::infinity());
  for (const auto& f : front_objectives) {
    for (std::size_t m = 0; m < m_count; ++m) {
      f_min[m] = std::min(f_min[m], f[m]);
      f_max[m] = std::max(f_max[m], f[m]);
    }
  }
  std::vector<std::vector<double>> weights(front_objectives.size(),
                                           std::vector<double>(m_count, 0.0));
  for (std::size_t i = 0; i < front_objectives.size(); ++i) {
    double total = 0.0;
    for (std::size_t m = 0; m < m_count; ++m) {
      const double span = f_max[m] - f_min[m];
      // Normalized distance to the worst value of objective m.
      weights[i][m] = span > 0.0 ? (f_max[m] - front_objectives[i][m]) / span : 0.0;
      total += weights[i][m];
    }
    if (total > 0.0) {
      for (auto& w : weights[i]) w /= total;
    } else {
      // Fully degenerate front: uniform weights.
      for (auto& w : weights[i]) w = 1.0 / static_cast<double>(m_count);
    }
  }
  return weights;
}

namespace {

std::size_t nearest_by_weight(const std::vector<std::vector<double>>& weights,
                              const std::vector<double>& preference) {
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < weights.size(); ++i) {
    double d2 = 0.0;
    for (std::size_t m = 0; m < preference.size(); ++m) {
      d2 += (weights[i][m] - preference[m]) * (weights[i][m] - preference[m]);
    }
    if (d2 < best_dist) {
      best_dist = d2;
      best = i;
    }
  }
  return best;
}

}  // namespace

std::size_t select_by_pseudo_weight(const std::vector<std::vector<double>>& front_objectives,
                                    const std::vector<double>& preference) {
  if (front_objectives.empty()) {
    throw std::invalid_argument("select_by_pseudo_weight: empty front");
  }
  if (preference.size() != front_objectives[0].size()) {
    throw std::invalid_argument("select_by_pseudo_weight: preference arity mismatch");
  }
  return nearest_by_weight(pseudo_weights(front_objectives), preference);
}

std::vector<std::size_t> select_each_by_pseudo_weight(
    const std::vector<std::vector<double>>& front_objectives,
    const std::vector<std::vector<double>>& preferences) {
  if (front_objectives.empty()) {
    throw std::invalid_argument("select_each_by_pseudo_weight: empty front");
  }
  const auto weights = pseudo_weights(front_objectives);
  std::vector<std::size_t> picks;
  picks.reserve(preferences.size());
  for (const auto& preference : preferences) {
    if (preference.size() != front_objectives[0].size()) {
      throw std::invalid_argument("select_each_by_pseudo_weight: preference arity mismatch");
    }
    picks.push_back(nearest_by_weight(weights, preference));
  }
  return picks;
}

std::size_t select_by_pseudo_weight(const std::vector<Solution>& front,
                                    const std::vector<double>& preference) {
  std::vector<std::vector<double>> objs;
  objs.reserve(front.size());
  for (const auto& s : front) objs.push_back(s.objectives);
  return select_by_pseudo_weight(objs, preference);
}

}  // namespace qon::moo
