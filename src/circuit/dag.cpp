#include "circuit/dag.hpp"

#include <algorithm>
#include <numeric>

namespace qon::circuit {

CircuitDag::CircuitDag(const Circuit& circuit) {
  const auto& gates = circuit.gates();
  const std::size_t n = gates.size();
  succ_.assign(n, {});
  pred_.assign(n, {});
  layer_.assign(n, 0);

  // last_writer[q] = index of the last gate that touched qubit q; npos if none.
  constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> last_writer(static_cast<std::size_t>(circuit.num_qubits()), npos);

  auto add_edge = [this](std::size_t from, std::size_t to) {
    if (std::find(succ_[from].begin(), succ_[from].end(), to) == succ_[from].end()) {
      succ_[from].push_back(to);
      pred_[to].push_back(from);
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = gates[i];
    if (g.kind == GateKind::kBarrier) {
      // Depends on every open wire; becomes the new writer of all wires.
      for (auto& w : last_writer) {
        if (w != npos) add_edge(w, i);
        w = i;
      }
      continue;
    }
    for (int k = 0; k < g.arity(); ++k) {
      auto& w = last_writer[static_cast<std::size_t>(g.qubit(k))];
      if (w != npos) add_edge(w, i);
      w = i;
    }
  }

  // ASAP layering over the DAG (gate order is topological).
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t lvl = 0;
    for (std::size_t p : pred_[i]) lvl = std::max(lvl, layer_[p] + 1);
    layer_[i] = lvl;
    layer_count_ = std::max(layer_count_, lvl + 1);
  }
  if (n == 0) layer_count_ = 0;
}

std::vector<std::vector<std::size_t>> CircuitDag::layered_nodes() const {
  std::vector<std::vector<std::size_t>> out(layer_count_);
  for (std::size_t i = 0; i < layer_.size(); ++i) out[layer_[i]].push_back(i);
  return out;
}

std::vector<std::size_t> CircuitDag::topological_order() const {
  std::vector<std::size_t> order(succ_.size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace qon::circuit
