#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>

namespace qon::circuit {

namespace {

std::string trim(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

// Evaluates a parameter expression: NUMBER, [-]pi, NUM*pi, pi/NUM,
// NUM*pi/NUM, or a plain float.
double eval_param(std::string expr, std::size_t line) {
  expr = trim(expr);
  if (expr.empty()) throw QasmParseError("empty parameter", line);
  double sign = 1.0;
  if (expr[0] == '-') {
    sign = -1.0;
    expr = trim(expr.substr(1));
  }
  double numerator = 1.0;
  double denominator = 1.0;
  const auto star = expr.find('*');
  if (star != std::string::npos) {
    numerator = std::stod(trim(expr.substr(0, star)));
    expr = trim(expr.substr(star + 1));
  }
  const auto slash = expr.find('/');
  if (slash != std::string::npos) {
    denominator = std::stod(trim(expr.substr(slash + 1)));
    expr = trim(expr.substr(0, slash));
  }
  double base;
  if (expr == "pi") {
    base = M_PI;
  } else {
    std::size_t used = 0;
    base = std::stod(expr, &used);
    if (used != expr.size()) throw QasmParseError("bad parameter: " + expr, line);
  }
  return sign * numerator * base / denominator;
}

// Parses "q[3]" -> 3, validating the register name.
int parse_ref(const std::string& token, const std::string& reg, std::size_t line) {
  const std::string t = trim(token);
  const auto open = t.find('[');
  const auto close = t.find(']');
  if (open == std::string::npos || close == std::string::npos || close < open ||
      trim(t.substr(0, open)) != reg) {
    throw QasmParseError("expected " + reg + "[i], got: " + t, line);
  }
  return std::stoi(t.substr(open + 1, close - open - 1));
}

const std::map<std::string, GateKind>& gate_names() {
  static const std::map<std::string, GateKind> kMap = {
      {"id", GateKind::kI},   {"x", GateKind::kX},       {"y", GateKind::kY},
      {"z", GateKind::kZ},    {"h", GateKind::kH},       {"s", GateKind::kS},
      {"sdg", GateKind::kSdg},{"t", GateKind::kT},       {"tdg", GateKind::kTdg},
      {"sx", GateKind::kSX},  {"rx", GateKind::kRX},     {"ry", GateKind::kRY},
      {"rz", GateKind::kRZ},  {"cx", GateKind::kCX},     {"cz", GateKind::kCZ},
      {"swap", GateKind::kSwap}, {"rzz", GateKind::kRZZ}, {"delay", GateKind::kDelay}};
  return kMap;
}

}  // namespace

Circuit parse_qasm(const std::string& text) {
  std::istringstream in(text);
  std::string raw;
  std::size_t line_no = 0;
  int num_qubits = 0;
  Circuit circuit;
  bool have_qreg = false;

  while (std::getline(in, raw)) {
    ++line_no;
    const auto comment = raw.find("//");
    if (comment != std::string::npos) raw = raw.substr(0, comment);
    std::string line = trim(raw);
    if (line.empty()) continue;
    if (line.back() != ';') throw QasmParseError("missing ';'", line_no);
    line = trim(line.substr(0, line.size() - 1));

    if (line.rfind("OPENQASM", 0) == 0 || line.rfind("include", 0) == 0) continue;
    if (line.rfind("qreg", 0) == 0) {
      if (have_qreg) throw QasmParseError("multiple qregs unsupported", line_no);
      num_qubits = parse_ref(trim(line.substr(4)), "q", line_no);
      if (num_qubits <= 0) throw QasmParseError("qreg must be non-empty", line_no);
      circuit = Circuit(num_qubits, "qasm");
      have_qreg = true;
      continue;
    }
    if (line.rfind("creg", 0) == 0) continue;  // classical width is implicit
    if (!have_qreg) throw QasmParseError("statement before qreg", line_no);

    if (line.rfind("barrier", 0) == 0) {
      circuit.barrier();
      continue;
    }
    if (line.rfind("measure", 0) == 0) {
      const auto arrow = line.find("->");
      if (arrow == std::string::npos) throw QasmParseError("measure needs '->'", line_no);
      const int q = parse_ref(trim(line.substr(7, arrow - 7)), "q", line_no);
      const int c = parse_ref(trim(line.substr(arrow + 2)), "c", line_no);
      circuit.measure(q, c);
      continue;
    }

    // Gate statement: NAME[(params)] q[i][, q[j]]
    std::string head = line;
    std::string param_text;
    const auto paren = line.find('(');
    std::size_t operands_at;
    if (paren != std::string::npos) {
      const auto close = line.find(')', paren);
      if (close == std::string::npos) throw QasmParseError("unbalanced '('", line_no);
      head = trim(line.substr(0, paren));
      param_text = line.substr(paren + 1, close - paren - 1);
      operands_at = close + 1;
    } else {
      const auto space = line.find(' ');
      if (space == std::string::npos) throw QasmParseError("gate without operands", line_no);
      head = trim(line.substr(0, space));
      operands_at = space + 1;
    }
    const auto it = gate_names().find(head);
    if (it == gate_names().end()) throw QasmParseError("unknown gate: " + head, line_no);

    Gate gate;
    gate.kind = it->second;
    if (is_parameterized(gate.kind)) {
      gate.param = eval_param(param_text, line_no);
    } else if (!param_text.empty()) {
      throw QasmParseError("unexpected parameter for " + head, line_no);
    }
    const std::string operands = line.substr(operands_at);
    const auto comma = operands.find(',');
    if (gate_arity(gate.kind) == 2) {
      if (comma == std::string::npos) throw QasmParseError(head + " needs two operands", line_no);
      gate.qubits[0] = parse_ref(operands.substr(0, comma), "q", line_no);
      gate.qubits[1] = parse_ref(operands.substr(comma + 1), "q", line_no);
    } else {
      if (comma != std::string::npos) throw QasmParseError(head + " takes one operand", line_no);
      gate.qubits[0] = parse_ref(operands, "q", line_no);
    }
    circuit.append(gate);
  }
  if (!have_qreg) throw QasmParseError("no qreg declared", 0);
  return circuit;
}

}  // namespace qon::circuit
