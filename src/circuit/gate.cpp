#include "circuit/gate.hpp"

#include <sstream>

namespace qon::circuit {

const char* gate_name(GateKind kind) {
  switch (kind) {
    case GateKind::kI: return "id";
    case GateKind::kX: return "x";
    case GateKind::kY: return "y";
    case GateKind::kZ: return "z";
    case GateKind::kH: return "h";
    case GateKind::kS: return "s";
    case GateKind::kSdg: return "sdg";
    case GateKind::kT: return "t";
    case GateKind::kTdg: return "tdg";
    case GateKind::kSX: return "sx";
    case GateKind::kRX: return "rx";
    case GateKind::kRY: return "ry";
    case GateKind::kRZ: return "rz";
    case GateKind::kCX: return "cx";
    case GateKind::kCZ: return "cz";
    case GateKind::kSwap: return "swap";
    case GateKind::kRZZ: return "rzz";
    case GateKind::kMeasure: return "measure";
    case GateKind::kBarrier: return "barrier";
    case GateKind::kDelay: return "delay";
  }
  return "?";
}

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kBarrier:
      return 0;
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kSwap:
    case GateKind::kRZZ:
      return 2;
    default:
      return 1;
  }
}

bool is_two_qubit(GateKind kind) { return gate_arity(kind) == 2; }

bool is_parameterized(GateKind kind) {
  switch (kind) {
    case GateKind::kRX:
    case GateKind::kRY:
    case GateKind::kRZ:
    case GateKind::kRZZ:
    case GateKind::kDelay:
      return true;
    default:
      return false;
  }
}

std::string Gate::to_string() const {
  std::ostringstream oss;
  oss << gate_name(kind);
  if (is_parameterized(kind)) oss << "(" << param << ")";
  if (arity() >= 1) oss << " q" << qubits[0];
  if (arity() == 2) oss << ", q" << qubits[1];
  return oss.str();
}

}  // namespace qon::circuit
