#pragma once
// Gate-level intermediate representation. Qonductor circuits are sequences
// of Gate records over integer qubit indices; the transpiler lowers them to
// a backend basis ({RZ, SX, X, CX} for our IBM-Falcon-like models) and the
// simulator interprets them as unitaries / measurements.

#include <array>
#include <cstdint>
#include <string>

namespace qon::circuit {

/// Supported gate kinds. One-qubit rotations carry an angle in `param`;
/// kDelay carries a duration in seconds.
enum class GateKind : std::uint8_t {
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSX,   // sqrt(X)
  kRX,   // param = angle
  kRY,
  kRZ,
  kCX,   // control, target
  kCZ,
  kSwap,
  kRZZ,  // two-qubit ZZ rotation, param = angle
  kMeasure,
  kBarrier,  // synchronization only; applies to all qubits
  kDelay,    // param = duration in seconds, used by dynamical decoupling
};

/// Display name, e.g. "cx".
const char* gate_name(GateKind kind);

/// Number of qubit operands (0 for barrier, 1 or 2 otherwise).
int gate_arity(GateKind kind);

/// True for kCX, kCZ, kSwap, kRZZ.
bool is_two_qubit(GateKind kind);

/// True for parameterized rotations (kRX, kRY, kRZ, kRZZ) and kDelay.
bool is_parameterized(GateKind kind);

/// One gate application. For two-qubit gates, qubit(0) is the control (for
/// kCX) and qubit(1) the target.
struct Gate {
  GateKind kind = GateKind::kI;
  std::array<int, 2> qubits{{0, 0}};
  double param = 0.0;

  int qubit(int i) const { return qubits[static_cast<std::size_t>(i)]; }
  int arity() const { return gate_arity(kind); }

  /// Human-readable form, e.g. "rz(1.5708) q3" or "cx q0, q1".
  std::string to_string() const;

  bool operator==(const Gate& other) const = default;
};

}  // namespace qon::circuit
