#pragma once
// Benchmark-circuit generator library, standing in for MQT Bench (§8.1):
// GHZ, QFT, QAOA Max-Cut, hardware-efficient VQE ansatz, Bernstein-Vazirani,
// W-state, Grover-style amplification and random layered circuits, all
// parameterised by width / depth / seed.

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qon::circuit {

/// GHZ state preparation (H + CX chain) with terminal measurements.
Circuit ghz(int num_qubits, bool measure = true);

/// Quantum Fourier Transform (with controlled-phase lowered to CX/RZ) and
/// final qubit-order swaps. Optionally measured.
Circuit qft(int num_qubits, bool measure = true);

/// An undirected graph for QAOA instances.
struct Graph {
  int num_vertices = 0;
  std::vector<std::pair<int, int>> edges;
};

/// Random graph where each edge is present with probability `edge_prob`.
/// Guarantees connectivity by first adding a random spanning chain.
Graph random_graph(int num_vertices, double edge_prob, std::uint64_t seed);

/// QAOA Max-Cut ansatz over `graph` with `layers` (p) rounds and
/// deterministic pseudo-random angles; measured.
Circuit qaoa_maxcut(const Graph& graph, int layers, std::uint64_t seed);

/// Convenience: QAOA over a random graph of the given width.
Circuit qaoa_maxcut(int num_qubits, int layers, std::uint64_t seed);

/// Hardware-efficient VQE ansatz: RY rotation layers interleaved with
/// linear-chain CX entanglers; measured.
Circuit vqe_ansatz(int num_qubits, int layers, std::uint64_t seed);

/// Bernstein-Vazirani for an n-bit secret (uses n data qubits + 1 ancilla);
/// measured on the data register.
Circuit bernstein_vazirani(const std::vector<bool>& secret);

/// W-state preparation via cascaded controlled-RY rotations; measured.
Circuit w_state(int num_qubits, bool measure = true);

/// Grover-style amplitude amplification skeleton: `iterations` rounds of a
/// phase-flip oracle on a marked bitstring followed by the diffusion
/// operator. Exact for <= 2 qubits; for wider circuits the multi-controlled
/// phase is approximated by a CZ ladder (structural workload only).
Circuit grover_like(int num_qubits, int iterations, std::uint64_t seed);

/// Random layered circuit: each layer applies random 1q rotations and pairs
/// random adjacent-free 2q gates with probability `two_qubit_prob`.
Circuit random_circuit(int num_qubits, int depth, std::uint64_t seed, double two_qubit_prob = 0.4);

/// The algorithm families the workload generator samples from.
enum class BenchmarkFamily : std::uint8_t {
  kGhz,
  kQft,
  kQaoa,
  kVqe,
  kBv,
  kWState,
  kGrover,
  kRandom,
};

const char* benchmark_family_name(BenchmarkFamily family);

/// All families, for sweeps.
std::vector<BenchmarkFamily> all_benchmark_families();

/// Samples a benchmark circuit of the given family and width (seeded).
Circuit make_benchmark(BenchmarkFamily family, int num_qubits, std::uint64_t seed);

}  // namespace qon::circuit
