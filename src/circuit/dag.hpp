#pragma once
// Dependency-DAG view of a circuit: gates are nodes, edges connect each gate
// to the next gate acting on a shared qubit. Provides ASAP layering, which
// the transpiler's scheduler and the workflow manager both use.

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"

namespace qon::circuit {

/// Immutable DAG over the gates of a circuit (barriers become
/// synchronization nodes that depend on every open wire).
class CircuitDag {
 public:
  explicit CircuitDag(const Circuit& circuit);

  std::size_t node_count() const { return succ_.size(); }

  /// Direct successors / predecessors of gate node i (indices into
  /// circuit.gates()).
  const std::vector<std::size_t>& successors(std::size_t i) const { return succ_[i]; }
  const std::vector<std::size_t>& predecessors(std::size_t i) const { return pred_[i]; }

  /// ASAP layer index per gate (layer 0 = no predecessors).
  const std::vector<std::size_t>& layers() const { return layer_; }

  /// Number of ASAP layers (equals circuit depth counting barriers as
  /// zero-duration sync points).
  std::size_t layer_count() const { return layer_count_; }

  /// Gates grouped by layer, preserving circuit order within a layer.
  std::vector<std::vector<std::size_t>> layered_nodes() const;

  /// A topological order (here: original gate order, which is always
  /// topological for a sequential gate list).
  std::vector<std::size_t> topological_order() const;

 private:
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> pred_;
  std::vector<std::size_t> layer_;
  std::size_t layer_count_ = 0;
};

}  // namespace qon::circuit
