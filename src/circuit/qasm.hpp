#pragma once
// OpenQASM 2.0 subset parser — the inverse of Circuit::to_qasm(), so
// circuits round-trip through text. Supports the gate set this library
// emits (id/x/y/z/h/s/sdg/t/tdg/sx/rx/ry/rz/cx/cz/swap/rzz), measure with
// explicit classical bits, barrier, and "pi"-expressions in parameters
// (pi, -pi/2, 2*pi, 0.25*pi, ...). Comments (//) are ignored.
//
// Not supported (throws ParseError): custom gate definitions, if-statements,
// opaque gates, multiple registers.

#include <stdexcept>
#include <string>

#include "circuit/circuit.hpp"

namespace qon::circuit {

class QasmParseError : public std::runtime_error {
 public:
  QasmParseError(const std::string& what, std::size_t line)
      : std::runtime_error("qasm:" + std::to_string(line) + ": " + what), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses an OpenQASM 2.0 subset document into a Circuit.
Circuit parse_qasm(const std::string& text);

}  // namespace qon::circuit
