#include "circuit/circuit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace qon::circuit {

Circuit::Circuit(int num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name)) {
  if (num_qubits <= 0) throw std::invalid_argument("Circuit: num_qubits must be > 0");
}

void Circuit::append(const Gate& gate) {
  const int arity = gate.arity();
  for (int i = 0; i < arity; ++i) {
    const int q = gate.qubit(i);
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("Circuit::append: qubit index out of range: " + gate.to_string());
    }
  }
  if (arity == 2 && gate.qubit(0) == gate.qubit(1)) {
    throw std::invalid_argument("Circuit::append: duplicate operand qubits: " + gate.to_string());
  }
  gates_.push_back(gate);
}

void Circuit::extend(const Circuit& other) {
  if (other.num_qubits_ > num_qubits_) {
    throw std::invalid_argument("Circuit::extend: other circuit is wider");
  }
  for (const auto& g : other.gates_) append(g);
}

void Circuit::measure_all() {
  for (int q = 0; q < num_qubits_; ++q) measure(q);
}

int Circuit::depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
  int max_level = 0;
  for (const auto& g : gates_) {
    if (g.kind == GateKind::kBarrier) {
      const int sync = *std::max_element(level.begin(), level.end());
      std::fill(level.begin(), level.end(), sync);
      continue;
    }
    int start = 0;
    for (int i = 0; i < g.arity(); ++i) {
      start = std::max(start, level[static_cast<std::size_t>(g.qubit(i))]);
    }
    const int finish = start + 1;
    for (int i = 0; i < g.arity(); ++i) {
      level[static_cast<std::size_t>(g.qubit(i))] = finish;
    }
    max_level = std::max(max_level, finish);
  }
  return max_level;
}

std::size_t Circuit::two_qubit_gate_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (is_two_qubit(g.kind)) ++n;
  }
  return n;
}

std::size_t Circuit::operation_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.kind != GateKind::kBarrier && g.kind != GateKind::kMeasure) ++n;
  }
  return n;
}

std::size_t Circuit::measurement_count() const {
  std::size_t n = 0;
  for (const auto& g : gates_) {
    if (g.kind == GateKind::kMeasure) ++n;
  }
  return n;
}

int Circuit::num_clbits() const {
  int width = 0;
  for (const auto& g : gates_) {
    if (g.kind == GateKind::kMeasure) width = std::max(width, g.qubits[1] + 1);
  }
  return width;
}

std::map<std::string, std::size_t> Circuit::gate_counts() const {
  std::map<std::string, std::size_t> counts;
  for (const auto& g : gates_) ++counts[gate_name(g.kind)];
  return counts;
}

bool Circuit::respects_coupling(const std::vector<std::pair<int, int>>& edges) const {
  auto connected = [&edges](int a, int b) {
    if (a > b) std::swap(a, b);
    return std::find(edges.begin(), edges.end(), std::make_pair(a, b)) != edges.end();
  };
  for (const auto& g : gates_) {
    if (!is_two_qubit(g.kind)) continue;
    if (!connected(g.qubit(0), g.qubit(1))) return false;
  }
  return true;
}

Circuit Circuit::without_measurements() const {
  Circuit out(num_qubits_, name_);
  for (const auto& g : gates_) {
    if (g.kind != GateKind::kMeasure) out.gates_.push_back(g);
  }
  return out;
}

Circuit Circuit::remapped(const std::vector<int>& mapping, int new_width) const {
  if (mapping.size() != static_cast<std::size_t>(num_qubits_)) {
    throw std::invalid_argument("Circuit::remapped: mapping size mismatch");
  }
  Circuit out(new_width, name_);
  for (const auto& g : gates_) {
    Gate mapped = g;
    for (int i = 0; i < g.arity(); ++i) {
      const int target = mapping[static_cast<std::size_t>(g.qubit(i))];
      if (target < 0 || target >= new_width) {
        throw std::out_of_range("Circuit::remapped: mapped index out of range");
      }
      mapped.qubits[static_cast<std::size_t>(i)] = target;
    }
    out.gates_.push_back(mapped);
  }
  return out;
}

Circuit Circuit::inverse() const {
  Circuit out(num_qubits_, name_ + "_dg");
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it) {
    Gate g = *it;
    switch (g.kind) {
      case GateKind::kMeasure:
      case GateKind::kBarrier:
        continue;
      case GateKind::kS:
        g.kind = GateKind::kSdg;
        break;
      case GateKind::kSdg:
        g.kind = GateKind::kS;
        break;
      case GateKind::kT:
        g.kind = GateKind::kTdg;
        break;
      case GateKind::kTdg:
        g.kind = GateKind::kT;
        break;
      case GateKind::kSX:
        // SX⁻¹ = RX(-π/2) up to global phase.
        g.kind = GateKind::kRX;
        g.param = -M_PI / 2.0;
        break;
      case GateKind::kRX:
      case GateKind::kRY:
      case GateKind::kRZ:
      case GateKind::kRZZ:
        g.param = -g.param;
        break;
      case GateKind::kI:
      case GateKind::kX:
      case GateKind::kY:
      case GateKind::kZ:
      case GateKind::kH:
      case GateKind::kCX:
      case GateKind::kCZ:
      case GateKind::kSwap:
      case GateKind::kDelay:
        break;  // self-inverse (delay is noise-only, keep as-is)
    }
    out.gates_.push_back(g);
  }
  return out;
}

std::string Circuit::to_qasm() const {
  std::ostringstream oss;
  oss << "OPENQASM 2.0;\n";
  oss << "qreg q[" << num_qubits_ << "];\n";
  oss << "creg c[" << num_qubits_ << "];\n";
  for (const auto& g : gates_) {
    switch (g.kind) {
      case GateKind::kBarrier:
        oss << "barrier q;\n";
        break;
      case GateKind::kMeasure:
        oss << "measure q[" << g.qubit(0) << "] -> c[" << g.qubits[1] << "];\n";
        break;
      default:
        oss << gate_name(g.kind);
        if (is_parameterized(g.kind)) oss << "(" << g.param << ")";
        oss << " q[" << g.qubit(0) << "]";
        if (g.arity() == 2) oss << ", q[" << g.qubit(1) << "]";
        oss << ";\n";
    }
  }
  return oss.str();
}

}  // namespace qon::circuit
