#include "circuit/library.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace qon::circuit {

Circuit ghz(int num_qubits, bool measure) {
  Circuit c(num_qubits, "ghz" + std::to_string(num_qubits));
  c.h(0);
  for (int q = 1; q < num_qubits; ++q) c.cx(q - 1, q);
  if (measure) c.measure_all();
  return c;
}

namespace {

// Controlled phase CP(theta) lowered to {RZ, CX}: standard decomposition
// CP(t) = RZ(t/2) on control, RZ(t/2) on target, CX, RZ(-t/2) target, CX.
void controlled_phase(Circuit& c, int control, int target, double theta) {
  c.rz(control, theta / 2.0);
  c.rz(target, theta / 2.0);
  c.cx(control, target);
  c.rz(target, -theta / 2.0);
  c.cx(control, target);
}

// Controlled-RY via two CX and half-angle RYs.
void controlled_ry(Circuit& c, int control, int target, double theta) {
  c.ry(target, theta / 2.0);
  c.cx(control, target);
  c.ry(target, -theta / 2.0);
  c.cx(control, target);
}

}  // namespace

Circuit qft(int num_qubits, bool measure) {
  Circuit c(num_qubits, "qft" + std::to_string(num_qubits));
  for (int q = 0; q < num_qubits; ++q) {
    c.h(q);
    for (int k = q + 1; k < num_qubits; ++k) {
      controlled_phase(c, k, q, M_PI / std::pow(2.0, k - q));
    }
  }
  for (int q = 0; q < num_qubits / 2; ++q) c.swap(q, num_qubits - 1 - q);
  if (measure) c.measure_all();
  return c;
}

Graph random_graph(int num_vertices, double edge_prob, std::uint64_t seed) {
  if (num_vertices < 2) throw std::invalid_argument("random_graph: need >= 2 vertices");
  Rng rng(seed);
  Graph g;
  g.num_vertices = num_vertices;
  // Spanning chain over a random permutation guarantees connectivity.
  std::vector<int> perm(static_cast<std::size_t>(num_vertices));
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);
  auto add_edge = [&g](int a, int b) {
    if (a > b) std::swap(a, b);
    const auto e = std::make_pair(a, b);
    if (std::find(g.edges.begin(), g.edges.end(), e) == g.edges.end()) g.edges.push_back(e);
  };
  for (int i = 0; i + 1 < num_vertices; ++i) add_edge(perm[i], perm[i + 1]);
  for (int a = 0; a < num_vertices; ++a) {
    for (int b = a + 1; b < num_vertices; ++b) {
      if (rng.bernoulli(edge_prob)) add_edge(a, b);
    }
  }
  return g;
}

Circuit qaoa_maxcut(const Graph& graph, int layers, std::uint64_t seed) {
  if (layers < 1) throw std::invalid_argument("qaoa_maxcut: layers must be >= 1");
  Rng rng(seed);
  Circuit c(graph.num_vertices, "qaoa" + std::to_string(graph.num_vertices));
  for (int q = 0; q < graph.num_vertices; ++q) c.h(q);
  for (int p = 0; p < layers; ++p) {
    const double gamma = rng.uniform(0.0, M_PI);
    const double beta = rng.uniform(0.0, M_PI / 2.0);
    for (const auto& [a, b] : graph.edges) c.rzz(a, b, 2.0 * gamma);
    for (int q = 0; q < graph.num_vertices; ++q) c.rx(q, 2.0 * beta);
  }
  c.measure_all();
  return c;
}

Circuit qaoa_maxcut(int num_qubits, int layers, std::uint64_t seed) {
  return qaoa_maxcut(random_graph(num_qubits, 0.3, seed ^ 0xabcdefULL), layers, seed);
}

Circuit vqe_ansatz(int num_qubits, int layers, std::uint64_t seed) {
  if (layers < 1) throw std::invalid_argument("vqe_ansatz: layers must be >= 1");
  Rng rng(seed);
  Circuit c(num_qubits, "vqe" + std::to_string(num_qubits));
  for (int p = 0; p < layers; ++p) {
    for (int q = 0; q < num_qubits; ++q) c.ry(q, rng.uniform(-M_PI, M_PI));
    for (int q = 0; q + 1 < num_qubits; ++q) c.cx(q, q + 1);
  }
  for (int q = 0; q < num_qubits; ++q) c.ry(q, rng.uniform(-M_PI, M_PI));
  c.measure_all();
  return c;
}

Circuit bernstein_vazirani(const std::vector<bool>& secret) {
  const int n = static_cast<int>(secret.size());
  if (n < 1) throw std::invalid_argument("bernstein_vazirani: empty secret");
  Circuit c(n + 1, "bv" + std::to_string(n));
  const int ancilla = n;
  c.x(ancilla);
  c.h(ancilla);
  for (int q = 0; q < n; ++q) c.h(q);
  for (int q = 0; q < n; ++q) {
    if (secret[static_cast<std::size_t>(q)]) c.cx(q, ancilla);
  }
  for (int q = 0; q < n; ++q) c.h(q);
  for (int q = 0; q < n; ++q) c.measure(q);
  return c;
}

Circuit w_state(int num_qubits, bool measure) {
  if (num_qubits < 1) throw std::invalid_argument("w_state: need >= 1 qubit");
  Circuit c(num_qubits, "wstate" + std::to_string(num_qubits));
  c.x(0);
  // Cascade: distribute amplitude from qubit k to k+1 with angle chosen so
  // each basis state |...1...> carries weight 1/n.
  for (int k = 0; k < num_qubits - 1; ++k) {
    const double remaining = static_cast<double>(num_qubits - k);
    const double theta = 2.0 * std::acos(std::sqrt(1.0 / remaining));
    controlled_ry(c, k, k + 1, theta);
    c.cx(k + 1, k);
  }
  if (measure) c.measure_all();
  return c;
}

Circuit grover_like(int num_qubits, int iterations, std::uint64_t seed) {
  if (num_qubits < 2) throw std::invalid_argument("grover_like: need >= 2 qubits");
  Rng rng(seed);
  std::vector<bool> marked(static_cast<std::size_t>(num_qubits));
  for (auto&& b : marked) b = rng.bernoulli(0.5);

  Circuit c(num_qubits, "grover" + std::to_string(num_qubits));
  for (int q = 0; q < num_qubits; ++q) c.h(q);
  auto multi_cz = [&c, num_qubits] {
    // Exact CZ for 2 qubits; CZ ladder approximation beyond (see header).
    if (num_qubits == 2) {
      c.cz(0, 1);
    } else {
      for (int q = 0; q + 1 < num_qubits; ++q) c.cz(q, q + 1);
    }
  };
  for (int it = 0; it < iterations; ++it) {
    // Oracle: phase flip on the marked string.
    for (int q = 0; q < num_qubits; ++q) {
      if (!marked[static_cast<std::size_t>(q)]) c.x(q);
    }
    multi_cz();
    for (int q = 0; q < num_qubits; ++q) {
      if (!marked[static_cast<std::size_t>(q)]) c.x(q);
    }
    // Diffusion: H X (multi-CZ) X H.
    for (int q = 0; q < num_qubits; ++q) c.h(q);
    for (int q = 0; q < num_qubits; ++q) c.x(q);
    multi_cz();
    for (int q = 0; q < num_qubits; ++q) c.x(q);
    for (int q = 0; q < num_qubits; ++q) c.h(q);
  }
  c.measure_all();
  return c;
}

Circuit random_circuit(int num_qubits, int depth, std::uint64_t seed, double two_qubit_prob) {
  if (depth < 1) throw std::invalid_argument("random_circuit: depth must be >= 1");
  Rng rng(seed);
  Circuit c(num_qubits, "random" + std::to_string(num_qubits));
  for (int layer = 0; layer < depth; ++layer) {
    std::vector<int> free_qubits(static_cast<std::size_t>(num_qubits));
    std::iota(free_qubits.begin(), free_qubits.end(), 0);
    rng.shuffle(free_qubits);
    std::size_t i = 0;
    while (i < free_qubits.size()) {
      if (i + 1 < free_qubits.size() && rng.bernoulli(two_qubit_prob)) {
        c.cx(free_qubits[i], free_qubits[i + 1]);
        i += 2;
      } else {
        const int q = free_qubits[i];
        switch (rng.uniform_int(0, 3)) {
          case 0: c.rx(q, rng.uniform(-M_PI, M_PI)); break;
          case 1: c.ry(q, rng.uniform(-M_PI, M_PI)); break;
          case 2: c.rz(q, rng.uniform(-M_PI, M_PI)); break;
          default: c.h(q); break;
        }
        i += 1;
      }
    }
  }
  c.measure_all();
  return c;
}

const char* benchmark_family_name(BenchmarkFamily family) {
  switch (family) {
    case BenchmarkFamily::kGhz: return "ghz";
    case BenchmarkFamily::kQft: return "qft";
    case BenchmarkFamily::kQaoa: return "qaoa";
    case BenchmarkFamily::kVqe: return "vqe";
    case BenchmarkFamily::kBv: return "bv";
    case BenchmarkFamily::kWState: return "wstate";
    case BenchmarkFamily::kGrover: return "grover";
    case BenchmarkFamily::kRandom: return "random";
  }
  return "?";
}

std::vector<BenchmarkFamily> all_benchmark_families() {
  return {BenchmarkFamily::kGhz,    BenchmarkFamily::kQft,    BenchmarkFamily::kQaoa,
          BenchmarkFamily::kVqe,    BenchmarkFamily::kBv,     BenchmarkFamily::kWState,
          BenchmarkFamily::kGrover, BenchmarkFamily::kRandom};
}

Circuit make_benchmark(BenchmarkFamily family, int num_qubits, std::uint64_t seed) {
  if (num_qubits < 2) throw std::invalid_argument("make_benchmark: need >= 2 qubits");
  Rng rng(seed);
  switch (family) {
    case BenchmarkFamily::kGhz:
      return ghz(num_qubits);
    case BenchmarkFamily::kQft:
      return qft(num_qubits);
    case BenchmarkFamily::kQaoa:
      return qaoa_maxcut(num_qubits, 1 + static_cast<int>(rng.uniform_int(0, 2)), seed);
    case BenchmarkFamily::kVqe:
      return vqe_ansatz(num_qubits, 1 + static_cast<int>(rng.uniform_int(0, 2)), seed);
    case BenchmarkFamily::kBv: {
      std::vector<bool> secret(static_cast<std::size_t>(num_qubits - 1));
      for (auto&& b : secret) b = rng.bernoulli(0.5);
      return bernstein_vazirani(secret);
    }
    case BenchmarkFamily::kWState:
      return w_state(num_qubits);
    case BenchmarkFamily::kGrover:
      return grover_like(num_qubits, 1 + static_cast<int>(rng.uniform_int(0, 1)), seed);
    case BenchmarkFamily::kRandom:
      return random_circuit(num_qubits, 3 + static_cast<int>(rng.uniform_int(0, 7)), seed);
  }
  throw std::logic_error("make_benchmark: unknown family");
}

}  // namespace qon::circuit
