#pragma once
// The Circuit IR: an ordered gate list over `num_qubits` qubits, plus the
// structural metrics (depth, two-qubit count, ...) the estimator and
// scheduler consume.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qon::circuit {

/// A quantum circuit. Gates execute in list order; the DAG/layer view is
/// derived on demand (see dag.hpp).
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits, std::string name = "circuit");

  int num_qubits() const { return num_qubits_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Gate>& gates() const { return gates_; }
  std::size_t size() const { return gates_.size(); }
  bool empty() const { return gates_.empty(); }

  /// Appends a raw gate; validates qubit indices.
  void append(const Gate& gate);
  /// Appends all gates of `other` (same width required).
  void extend(const Circuit& other);

  // -- builder helpers ------------------------------------------------------
  void i(int q) { append({GateKind::kI, {q, 0}, 0.0}); }
  void x(int q) { append({GateKind::kX, {q, 0}, 0.0}); }
  void y(int q) { append({GateKind::kY, {q, 0}, 0.0}); }
  void z(int q) { append({GateKind::kZ, {q, 0}, 0.0}); }
  void h(int q) { append({GateKind::kH, {q, 0}, 0.0}); }
  void s(int q) { append({GateKind::kS, {q, 0}, 0.0}); }
  void sdg(int q) { append({GateKind::kSdg, {q, 0}, 0.0}); }
  void t(int q) { append({GateKind::kT, {q, 0}, 0.0}); }
  void tdg(int q) { append({GateKind::kTdg, {q, 0}, 0.0}); }
  void sx(int q) { append({GateKind::kSX, {q, 0}, 0.0}); }
  void rx(int q, double theta) { append({GateKind::kRX, {q, 0}, theta}); }
  void ry(int q, double theta) { append({GateKind::kRY, {q, 0}, theta}); }
  void rz(int q, double theta) { append({GateKind::kRZ, {q, 0}, theta}); }
  void cx(int control, int target) { append({GateKind::kCX, {control, target}, 0.0}); }
  void cz(int a, int b) { append({GateKind::kCZ, {a, b}, 0.0}); }
  void swap(int a, int b) { append({GateKind::kSwap, {a, b}, 0.0}); }
  void rzz(int a, int b, double theta) { append({GateKind::kRZZ, {a, b}, theta}); }
  /// Measures qubit q into classical bit `clbit` (default: clbit = q).
  /// For kMeasure gates, qubits[1] stores the classical bit; the transpiler
  /// remaps the qubit operand but preserves the classical bit, so counts
  /// remain keyed by logical qubit order.
  void measure(int q, int clbit = -1) {
    append({GateKind::kMeasure, {q, clbit < 0 ? q : clbit}, 0.0});
  }
  void barrier() { append({GateKind::kBarrier, {0, 0}, 0.0}); }
  void delay(int q, double seconds) { append({GateKind::kDelay, {q, 0}, seconds}); }

  /// Appends a measurement on every qubit.
  void measure_all();

  // -- metrics --------------------------------------------------------------
  /// Circuit depth: the longest chain of dependent gates. Barriers
  /// synchronize all qubits; measure/delay count as regular slots.
  int depth() const;

  /// Number of two-qubit gates.
  std::size_t two_qubit_gate_count() const;

  /// Number of non-barrier, non-measure gates.
  std::size_t operation_count() const;

  /// Number of measurement gates.
  std::size_t measurement_count() const;

  /// Width of the classical register: 1 + the largest classical bit any
  /// measurement writes to (0 when unmeasured).
  int num_clbits() const;

  /// Per-gate-kind counts (keyed by display name).
  std::map<std::string, std::size_t> gate_counts() const;

  /// True if every multi-qubit gate's operand pair appears in `edges`
  /// (undirected adjacency given as sorted pair list).
  bool respects_coupling(const std::vector<std::pair<int, int>>& edges) const;

  // -- transformations ------------------------------------------------------
  /// Returns a copy with all measurements removed (used before unitary
  /// simulation and by noise-scaling passes that fold unitaries only).
  Circuit without_measurements() const;

  /// Returns the circuit with qubit q replaced by mapping[q]. `new_width`
  /// must cover the mapped indices.
  Circuit remapped(const std::vector<int>& mapping, int new_width) const;

  /// Adjoint of the unitary part (reversed order, inverted gates).
  /// Measurements/barriers are dropped. Throws for non-invertible kinds.
  Circuit inverse() const;

  /// OpenQASM-2-style dump (for debugging / golden tests).
  std::string to_qasm() const;

 private:
  int num_qubits_ = 0;
  std::string name_ = "circuit";
  std::vector<Gate> gates_;
};

}  // namespace qon::circuit
