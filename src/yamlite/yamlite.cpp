#include "yamlite/yamlite.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace qon::yaml {

namespace {

struct Line {
  std::size_t number = 0;  // 1-based
  std::size_t indent = 0;
  std::string content;  // trimmed, comment-stripped, non-empty
};

std::string strip_comment(const std::string& s) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (c == '#' && !in_single && !in_double && (i == 0 || std::isspace(static_cast<unsigned char>(s[i - 1])))) {
      return s.substr(0, i);
    }
  }
  return s;
}

std::string rtrim(std::string s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.pop_back();
  return s;
}

std::string ltrim(std::string s) {
  std::size_t i = 0;
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  return s.substr(i);
}

std::string unquote(const std::string& s) {
  if (s.size() >= 2 && ((s.front() == '"' && s.back() == '"') || (s.front() == '\'' && s.back() == '\''))) {
    return s.substr(1, s.size() - 2);
  }
  return s;
}

std::vector<Line> tokenize(const std::string& text) {
  std::vector<Line> lines;
  std::istringstream in(text);
  std::string raw;
  std::size_t number = 0;
  while (std::getline(in, raw)) {
    ++number;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    std::size_t indent = 0;
    while (indent < raw.size() && raw[indent] == ' ') ++indent;
    if (indent < raw.size() && raw[indent] == '\t') {
      throw ParseError("tab indentation is not allowed", number);
    }
    std::string content = rtrim(strip_comment(raw.substr(indent)));
    if (content.empty()) continue;
    lines.push_back({number, indent, std::move(content)});
  }
  return lines;
}

// Splits "key: value" at the first ':' that is followed by space/EOL and is
// outside quotes. Returns false if the line has no mapping separator.
bool split_key_value(const std::string& s, std::string& key, std::string& value) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    if (c == '"' && !in_single) in_double = !in_double;
    if (c == ':' && !in_single && !in_double && (i + 1 == s.size() || s[i + 1] == ' ')) {
      key = rtrim(s.substr(0, i));
      value = ltrim(i + 1 < s.size() ? s.substr(i + 1) : "");
      return true;
    }
  }
  return false;
}

class Parser {
 public:
  explicit Parser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  Node parse_document() {
    if (lines_.empty()) return Node();
    Node root = parse_block(lines_.front().indent);
    if (pos_ != lines_.size()) {
      throw ParseError("unexpected trailing content", lines_[pos_].number);
    }
    return root;
  }

 private:
  // Parses a block (mapping or sequence) whose items sit at exactly `indent`.
  Node parse_block(std::size_t indent) {
    const Line& first = lines_[pos_];
    if (first.content.rfind("- ", 0) == 0 || first.content == "-") {
      return parse_sequence(indent);
    }
    return parse_mapping(indent);
  }

  Node parse_sequence(std::size_t indent) {
    Node seq = Node::make_sequence();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           (lines_[pos_].content.rfind("- ", 0) == 0 || lines_[pos_].content == "-")) {
      const Line line = lines_[pos_];
      std::string rest = line.content == "-" ? "" : ltrim(line.content.substr(2));
      ++pos_;
      if (rest.empty()) {
        // Item body is the following deeper block.
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          seq.push_back(parse_block(lines_[pos_].indent));
        } else {
          seq.push_back(Node());
        }
        continue;
      }
      std::string key, value;
      if (split_key_value(rest, key, value)) {
        // "- key: value" starts an inline mapping whose further keys are
        // indented past the dash.
        Node map = Node::make_mapping();
        add_mapping_entry(map, key, value, indent + 2, line.number);
        while (pos_ < lines_.size() && lines_[pos_].indent > indent &&
               !(lines_[pos_].content.rfind("- ", 0) == 0 && lines_[pos_].indent == indent)) {
          const Line& follow = lines_[pos_];
          std::string k2, v2;
          if (!split_key_value(follow.content, k2, v2)) {
            throw ParseError("expected key: value inside list item mapping", follow.number);
          }
          ++pos_;
          add_mapping_entry(map, k2, v2, follow.indent, follow.number);
        }
        seq.push_back(std::move(map));
      } else {
        seq.push_back(Node(unquote(rest)));
      }
    }
    return seq;
  }

  Node parse_mapping(std::size_t indent) {
    Node map = Node::make_mapping();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
      const Line line = lines_[pos_];
      if (line.content.rfind("- ", 0) == 0 || line.content == "-") break;
      std::string key, value;
      if (!split_key_value(line.content, key, value)) {
        throw ParseError("expected 'key: value'", line.number);
      }
      ++pos_;
      add_mapping_entry(map, key, value, indent, line.number);
    }
    return map;
  }

  // Installs key -> (scalar | nested block) into `map`.
  void add_mapping_entry(Node& map, const std::string& key, const std::string& value,
                         std::size_t indent, std::size_t line_number) {
    if (key.empty()) throw ParseError("empty mapping key", line_number);
    if (!value.empty()) {
      map[unquote(key)] = Node(unquote(value));
      return;
    }
    // Value is the following deeper block, a sequence at the *same* indent
    // (YAML allows "key:\n- item" without extra indentation), or null.
    const bool deeper = pos_ < lines_.size() && lines_[pos_].indent > indent;
    const bool same_level_sequence =
        pos_ < lines_.size() && lines_[pos_].indent == indent &&
        (lines_[pos_].content.rfind("- ", 0) == 0 || lines_[pos_].content == "-");
    if (deeper || same_level_sequence) {
      map[unquote(key)] = parse_block(lines_[pos_].indent);
    } else {
      map[unquote(key)] = Node();
    }
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

const Node& null_node() {
  static const Node n;
  return n;
}

}  // namespace

const std::string& Node::as_string() const {
  if (!is_scalar()) throw std::logic_error("yamlite: node is not a scalar");
  return scalar_;
}

long long Node::as_int() const {
  const std::string& s = as_string();
  std::size_t used = 0;
  long long v = std::stoll(s, &used);
  if (used != s.size()) throw std::logic_error("yamlite: not an integer: " + s);
  return v;
}

double Node::as_double() const {
  const std::string& s = as_string();
  std::size_t used = 0;
  double v = std::stod(s, &used);
  if (used != s.size()) throw std::logic_error("yamlite: not a number: " + s);
  return v;
}

bool Node::as_bool() const {
  const std::string& s = as_string();
  if (s == "true" || s == "True" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "False" || s == "no" || s == "off") return false;
  throw std::logic_error("yamlite: not a boolean: " + s);
}

std::string Node::as_string_or(const std::string& fallback) const {
  return is_scalar() ? scalar_ : fallback;
}

long long Node::as_int_or(long long fallback) const { return is_scalar() ? as_int() : fallback; }

double Node::as_double_or(double fallback) const { return is_scalar() ? as_double() : fallback; }

const std::vector<Node>& Node::items() const {
  if (!is_sequence()) throw std::logic_error("yamlite: node is not a sequence");
  return sequence_;
}

std::vector<Node>& Node::items() {
  if (!is_sequence()) throw std::logic_error("yamlite: node is not a sequence");
  return sequence_;
}

void Node::push_back(Node n) {
  if (is_null()) kind_ = Kind::kSequence;
  if (!is_sequence()) throw std::logic_error("yamlite: push_back on non-sequence");
  sequence_.push_back(std::move(n));
}

std::size_t Node::size() const {
  if (is_sequence()) return sequence_.size();
  if (is_mapping()) return mapping_.size();
  return 0;
}

const Node& Node::at(const std::string& key) const {
  if (!is_mapping()) throw std::logic_error("yamlite: node is not a mapping");
  for (const auto& [k, v] : mapping_) {
    if (k == key) return v;
  }
  throw std::out_of_range("yamlite: missing key: " + key);
}

const Node& Node::get(const std::string& key) const {
  if (!is_mapping()) return null_node();
  for (const auto& [k, v] : mapping_) {
    if (k == key) return v;
  }
  return null_node();
}

bool Node::has(const std::string& key) const {
  if (!is_mapping()) return false;
  for (const auto& [k, v] : mapping_) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

Node& Node::operator[](const std::string& key) {
  if (is_null()) kind_ = Kind::kMapping;
  if (!is_mapping()) throw std::logic_error("yamlite: operator[] on non-mapping");
  for (auto& [k, v] : mapping_) {
    if (k == key) return v;
  }
  mapping_.emplace_back(key, Node());
  return mapping_.back().second;
}

const std::vector<std::pair<std::string, Node>>& Node::entries() const {
  if (!is_mapping()) throw std::logic_error("yamlite: node is not a mapping");
  return mapping_;
}

std::string Node::dump(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::ostringstream out;
  switch (kind_) {
    case Kind::kNull:
      break;
    case Kind::kScalar:
      out << pad << scalar_ << "\n";
      break;
    case Kind::kSequence:
      for (const auto& item : sequence_) {
        if (item.is_scalar()) {
          out << pad << "- " << item.scalar_ << "\n";
        } else {
          out << pad << "-\n" << item.dump(indent + 2);
        }
      }
      break;
    case Kind::kMapping:
      for (const auto& [k, v] : mapping_) {
        if (v.is_scalar()) {
          out << pad << k << ": " << v.scalar_ << "\n";
        } else if (v.is_null()) {
          out << pad << k << ":\n";
        } else {
          out << pad << k << ":\n" << v.dump(indent + 2);
        }
      }
      break;
  }
  return out.str();
}

Node parse(const std::string& text) {
  Parser parser(tokenize(text));
  return parser.parse_document();
}

}  // namespace qon::yaml
