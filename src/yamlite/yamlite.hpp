#pragma once
// yamlite: a small indentation-based YAML-subset parser, sufficient for
// Qonductor deployment configuration files (paper Listing 1): nested maps,
// block lists ("- item"), scalars, '#' comments and quoted strings.
//
// Not supported (by design): anchors, multi-document streams, flow
// collections, multi-line scalars. Parse errors throw ParseError with a
// 1-based line number.

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace qon::yaml {

/// Error thrown on malformed input; `line` is 1-based.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& what, std::size_t line)
      : std::runtime_error("yamlite:" + std::to_string(line) + ": " + what), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// A YAML node: scalar, sequence or mapping. Mappings preserve insertion
/// order for deterministic emission.
class Node {
 public:
  enum class Kind { kNull, kScalar, kSequence, kMapping };

  Node() : kind_(Kind::kNull) {}
  explicit Node(std::string scalar) : kind_(Kind::kScalar), scalar_(std::move(scalar)) {}

  static Node make_sequence() {
    Node n;
    n.kind_ = Kind::kSequence;
    return n;
  }
  static Node make_mapping() {
    Node n;
    n.kind_ = Kind::kMapping;
    return n;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_scalar() const { return kind_ == Kind::kScalar; }
  bool is_sequence() const { return kind_ == Kind::kSequence; }
  bool is_mapping() const { return kind_ == Kind::kMapping; }

  /// Scalar accessors; throw std::logic_error when the node is not a scalar
  /// or the conversion fails.
  const std::string& as_string() const;
  long long as_int() const;
  double as_double() const;
  bool as_bool() const;

  /// Scalar accessors with defaults for missing/null nodes.
  std::string as_string_or(const std::string& fallback) const;
  long long as_int_or(long long fallback) const;
  double as_double_or(double fallback) const;

  /// Sequence access.
  const std::vector<Node>& items() const;
  std::vector<Node>& items();
  void push_back(Node n);
  std::size_t size() const;

  /// Mapping access. `at` throws std::out_of_range on a missing key;
  /// `get` returns a shared null node instead. `has` tests membership.
  const Node& at(const std::string& key) const;
  const Node& get(const std::string& key) const;
  bool has(const std::string& key) const;
  Node& operator[](const std::string& key);  ///< inserts when missing (mapping only)
  const std::vector<std::pair<std::string, Node>>& entries() const;

  /// Serializes the node back to yamlite text (round-trippable).
  std::string dump(int indent = 0) const;

 private:
  Kind kind_;
  std::string scalar_;
  std::vector<Node> sequence_;
  std::vector<std::pair<std::string, Node>> mapping_;
};

/// Parses a yamlite document. Empty input yields a null node.
Node parse(const std::string& text);

}  // namespace qon::yaml
