#pragma once
// System monitor (§4.1): the datastore persisting the complete system state
// — worker/QPU static and dynamic information, workflow statuses and
// results. Backed either by a plain local map (fast path for simulation)
// or by the Raft-replicated KV store (2f+1 quorum, §4.1 fault tolerance).

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_safety.hpp"
#include "raft/kv_store.hpp"

namespace qon::core {

/// QPU record published by worker-node device managers.
struct QpuInfo {
  std::string name;
  int qubits = 0;
  std::size_t queue_length = 0;
  double queue_wait_seconds = 0.0;
  double mean_gate_error_2q = 0.0;
  std::uint64_t calibration_cycle = 0;
  /// Health: false means the device manager took the QPU down (faults,
  /// maintenance). Distinct from `reserved` — releasing a reservation
  /// must not bring a faulted QPU back into rotation.
  bool online = true;
  /// §7 reservation (reserveQpu/releaseQpu). Scheduling snapshots offer a
  /// QPU only when it is online AND not reserved.
  bool reserved = false;
};

/// Thread-safe: workflow executors, device managers and control-plane
/// queries hit the monitor concurrently; one internal mutex serializes
/// access to whichever backend is active.
class SystemMonitor {
 public:
  /// `replicated` switches to the Raft-backed store (slower, fault
  /// tolerant); the local map is the default for simulations.
  explicit SystemMonitor(bool replicated = false, std::size_t replicas = 3);

  // -- raw KV ----------------------------------------------------------------
  bool put(const std::string& key, const std::string& value);
  std::optional<std::string> get(const std::string& key) const;
  bool erase(const std::string& key);

  // -- QPU state ---------------------------------------------------------------
  void update_qpu(const QpuInfo& info);
  /// Publishes dynamic state (queue, calibration) while preserving the
  /// stored health and reservation flags — atomic with the flag setters
  /// below, unlike a read-modify-write through qpu()/update_qpu().
  void publish_qpu_dynamic(const QpuInfo& info);
  /// Atomically flips only the health flag; returns the previous value,
  /// nullopt for unknown names. The blessed device-manager path: an
  /// external qpu()→update_qpu() read-modify-write can lose concurrent
  /// flag writes.
  std::optional<bool> set_qpu_online(const std::string& name, bool online);
  /// Atomically flips only the §7 reservation flag (reserveQpu/releaseQpu
  /// sit on top); same contract as set_qpu_online.
  std::optional<bool> set_qpu_reserved(const std::string& name, bool reserved);
  std::optional<QpuInfo> qpu(const std::string& name) const;
  std::vector<std::string> qpu_names() const;

  // -- workflow state ---------------------------------------------------------
  void set_workflow_status(std::uint64_t run_id, const std::string& status);
  std::optional<std::string> workflow_status(std::uint64_t run_id) const;
  /// Drops a run's status record; called when the run table evicts the run
  /// so the monitor's footprint stays bounded alongside it.
  void erase_workflow_status(std::uint64_t run_id);

  bool replicated() const {
    // store_ is immutable after construction, but the lock keeps the
    // guarded_by contract uniform (this is a cold query path).
    MutexLock lock(mutex_);
    return store_ != nullptr;
  }

 private:
  // Backend access with mutex_ already held.
  bool put_unlocked(const std::string& key, const std::string& value) REQUIRES(mutex_);
  std::optional<std::string> get_unlocked(const std::string& key) const
      REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kMonitor, "SystemMonitor::mutex_"};
  // Exactly one of these is active. The ReplicatedKvStore (and the whole
  // raft:: simulation under it) is thread-compatible, not thread-safe —
  // every access is serialized behind mutex_ here.
  std::map<std::string, std::string> local_ GUARDED_BY(mutex_);
  std::unique_ptr<raft::ReplicatedKvStore> store_ GUARDED_BY(mutex_);
  std::vector<std::string> qpu_names_ GUARDED_BY(mutex_);  ///< registration order
};

}  // namespace qon::core
