#include "core/run_engine.hpp"

#include <algorithm>

namespace qon::core {

RunEngine::RunEngine(std::size_t workers, Step step,
                     std::function<void()> on_event)
    : step_(std::move(step)), on_event_(std::move(on_event)) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

RunEngine::~RunEngine() { shutdown(); }

void RunEngine::post(std::shared_ptr<RunContinuation> run) {
  // The notify happens under the lock on purpose: a resume posted by an
  // external settlement callback may be the event that lets the engine
  // drain and be destroyed, and a notify outside the lock could still be
  // touching cv_ when the destructor tears it down. Under the lock, the
  // worker cannot pop the event (and the run cannot finish) until this
  // thread has fully left the engine.
  MutexLock lock(mutex_);
  queue_.push_back(std::move(run));
  cv_.notify_one();
}

bool RunEngine::submit(std::shared_ptr<RunContinuation> run) {
  MutexLock lock(mutex_);  // see post() on the locked notify
  if (closed_) return false;
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  queue_.push_back(std::move(run));
  cv_.notify_one();
  return true;
}

void RunEngine::resume(std::shared_ptr<RunContinuation> run) {
  // Deliberately ignores closed_: a resume always belongs to a live run,
  // and live runs must drain through shutdown, not get stranded by it.
  post(std::move(run));
}

void RunEngine::worker_loop() {
  for (;;) {
    std::shared_ptr<RunContinuation> run;
    {
      MutexLock lock(mutex_);
      // Exit only when no event can ever arrive again: submissions are
      // closed and every live run has finished (all events belong to live
      // runs, so an empty queue then stays empty).
      while (queue_.empty() && !(closed_ && live_ == 0)) cv_.wait(mutex_);
      if (queue_.empty()) return;
      run = std::move(queue_.front());
      queue_.pop_front();
      ++events_;
    }
    // Beat before the step: a wedge inside step_ leaves a stale heartbeat
    // that ages past the stall budget instead of a fresh one masking it.
    if (on_event_) on_event_();
    const StepOutcome outcome = step_(run);
    if (outcome == StepOutcome::kProgress) {
      // Repost to the back of the queue: N runnable runs round-robin over
      // the workers one node at a time instead of running to completion.
      post(std::move(run));
    } else if (outcome == StepOutcome::kFinished) {
      MutexLock lock(mutex_);
      --live_;
      if (closed_ && live_ == 0) {
        cv_.notify_all();       // idle workers may now exit
        drained_cv_.notify_all();
      }
    }
    // kParked: the run's settlement callback will resume() it. Dropping our
    // reference here is the whole point — the worker is free for other runs.
  }
}

void RunEngine::shutdown() {
  {
    MutexLock lock(mutex_);
    closed_ = true;
    cv_.notify_all();
    while (live_ != 0) drained_cv_.wait(mutex_);
  }
  MutexLock join_lock(join_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t RunEngine::live_runs() const {
  MutexLock lock(mutex_);
  return live_;
}

std::size_t RunEngine::peak_live_runs() const {
  MutexLock lock(mutex_);
  return peak_live_;
}

std::uint64_t RunEngine::events_dispatched() const {
  MutexLock lock(mutex_);
  return events_;
}

RunEngine::EngineStats RunEngine::stats() const {
  MutexLock lock(mutex_);
  return EngineStats{live_, peak_live_, events_, queue_.size()};
}

}  // namespace qon::core
