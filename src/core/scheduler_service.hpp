#pragma once
// The scheduler service (§7, Fig. 5): Qonductor's batch-scheduling job
// manager in the serving path. Quantum tasks from in-flight runs are parked
// in a bounded PendingQueue; a dedicated scheduler thread fires *scheduling
// cycles* through sched::ScheduleTrigger — when the queue reaches the size
// threshold OR the timer elapses, both evaluated against the fleet virtual
// clock — batches the queue into one sched::SchedulingInput, runs the
// hybrid scheduler (NSGA-II Pareto optimization + MCDM selection), and
// completes each pending task with its assigned QPU. Jobs the scheduler
// filters as infeasible (no online QPU fits) fail with RESOURCE_EXHAUSTED.
//
// Per-job QoS (api::JobPreferences) is honored here: batches form in
// priority order (kInteractive > kStandard > kBatch), each job carries its
// own MCDM fidelity weight into the cycle, and a task still parked when a
// cycle fires at or past its deadline fails DEADLINE_EXCEEDED at cycle
// start — it never consumes a batch slot or a QPU.
//
// Virtual-vs-real time: the trigger's threshold and interval live on the
// fleet virtual clock, but the service must make progress in real time even
// when nothing advances that clock. `linger` is the real-time grace a
// sub-threshold batch gets to fill up; when it expires, the service models
// the wait as the virtual timer elapsing — it advances the fleet clock to
// the trigger's deadline and fires a timer cycle.
//
// shutdown() drains: the queue is closed, one final flush cycle dispatches
// everything still parked, and only then is the scheduler thread joined.
// The orchestrator shuts the service down after its executor pool, so runs
// draining through the pool can still get their tasks scheduled.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "api/status.hpp"
#include "api/types.hpp"
#include "common/rng.hpp"
#include "common/thread_safety.hpp"
#include "core/pending_queue.hpp"
#include "obs/health.hpp"
#include "obs/telemetry.hpp"
#include "sched/hybrid_scheduler.hpp"
#include "sched/triggers.hpp"

namespace qon::core {

/// Knobs of the batch-scheduling job manager. Validated by
/// validate_scheduler_config() so bad values surface as a typed
/// INVALID_ARGUMENT through the API instead of the ScheduleTrigger
/// constructor's std::invalid_argument crossing the boundary.
struct SchedulerServiceConfig {
  api::SchedulingMode mode = api::SchedulingMode::kBatch;
  /// ScheduleTrigger: fire when the pending queue reaches this size…
  std::size_t queue_threshold = 100;
  /// …or when this many virtual seconds passed since the last cycle.
  double interval_seconds = 120.0;
  /// Pending-queue bound; producers block while it is full. 0 = unbounded.
  std::size_t queue_capacity = 4096;
  /// Max jobs per cycle; the surplus stays queued for the next cycle.
  /// 0 = schedule the whole queue at once.
  std::size_t max_batch_size = 0;
  /// Real-time grace for a sub-threshold batch to fill before the virtual
  /// timer fires (see the header comment on virtual-vs-real time).
  std::chrono::milliseconds linger{2};
  /// Priority aging: a parked kBatch/kStandard job whose virtual queue
  /// wait exceeds this many seconds competes one lane above its own for a
  /// capped cycle's batch slots (PendingQueue::take_batch), so a sustained
  /// interactive stream cannot starve the lower lanes indefinitely.
  /// 0 = off (strict priority order, the default).
  double aging_seconds = 0.0;
  /// How many per-cycle records getSchedulerStats retains (ring buffer).
  std::size_t stats_cycle_history = 256;
  /// How many per-job queue-wait samples getSchedulerStats retains.
  std::size_t stats_wait_history = 8192;
  /// Liveness watchdog budgets (wall seconds; see obs/health.hpp). The
  /// scheduler budget bounds heartbeat silence of the scheduler thread
  /// while work is pending; the queue budget bounds silence of the drain
  /// path (cycles firing without taking a batch). Only consulted when the
  /// service is constructed with a HealthMonitor.
  double scheduler_stall_budget_seconds = 60.0;
  double queue_stall_budget_seconds = 120.0;
};

/// Rejects out-of-range knobs with kInvalidArgument; kOk otherwise.
api::Status validate_scheduler_config(const SchedulerServiceConfig& config);

/// The effective-config echo getSchedulerStats serves.
api::SchedulerConfigView to_config_view(const SchedulerServiceConfig& config);

/// Callbacks tying the service to the orchestrator's engine, bundled so the
/// service stays unit-testable against fakes.
struct SchedulerServiceHooks {
  /// Advances the fleet virtual clock to at least `advance_to` and returns
  /// the QPU states (sizes, queue waits relative to the new now, online
  /// flags) the cycle schedules against. Runs under the engine lock.
  std::function<std::vector<sched::QpuState>(double advance_to)> snapshot_qpus;
  /// Lock-free read of the fleet clock frontier.
  std::function<double()> now;
};

/// The job manager: owns the pending queue, the trigger and the scheduler
/// thread. Thread-safe: any number of producers enqueue; stats() may be
/// called concurrently from query paths.
class SchedulerService {
 public:
  /// Precondition: validate_scheduler_config(config).ok() — the trigger
  /// constructed here throws on bad knobs. `cycle_config` carries the MCDM
  /// preference and NSGA-II parameters; its nsga2.seed is re-rolled from
  /// `seed` every cycle. `telemetry`, when given, must outlive the service
  /// (the orchestrator declares its Telemetry before the service); null
  /// falls back to a private bundle so standalone/unit-test construction
  /// keeps working.
  /// `health`, when given, must outlive the service; the service registers
  /// "scheduler" and "queue" watchdogs over its own heartbeats (the
  /// monitor only dereferences them from check(), and the orchestrator
  /// declares its HealthMonitor before the service).
  SchedulerService(SchedulerServiceConfig config, std::uint64_t seed,
                   sched::SchedulerConfig cycle_config, SchedulerServiceHooks hooks,
                   obs::Telemetry* telemetry = nullptr,
                   obs::HealthMonitor* health = nullptr);
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Hands a prepared task to the scheduler; blocks while the queue is at
  /// capacity. False when the service is shutting down (the task was not
  /// queued and never will be).
  bool enqueue(const std::shared_ptr<PendingQuantumTask>& task);

  /// Non-blocking enqueue for engine workers: a full queue parks the task
  /// on the capacity waitlist (promoted FIFO-by-priority as cycles free
  /// slots) instead of blocking the calling thread. kClosed means the
  /// service is shutting down and the task was not accepted.
  PendingQueue::Offer offer(const std::shared_ptr<PendingQuantumTask>& task);

  /// Capacity-waitlist introspection for getAdmissionStats.
  std::size_t waitlist_depth() const { return queue_.waitlist_depth(); }
  std::size_t waitlist_high_watermark() const {
    return queue_.waitlist_high_watermark();
  }
  std::uint64_t waitlist_parks() const { return queue_.waitlist_parks(); }

  /// Current pending-queue depth. Cheap (one lock, no ring copies) —
  /// the campaign driver's lockstep pacing polls this per admitted run,
  /// where stats() with its bounded-history copies would dominate.
  std::size_t queue_depth() const { return queue_.size(); }

  /// Pulls a parked task out of the pending queue (cancellation path).
  /// The caller is expected to have settled the task already — fail() wins
  /// over any later cycle completion — so this only frees the queue slot.
  /// False when the task was never queued or a cycle already took it.
  bool remove_pending(const std::shared_ptr<PendingQuantumTask>& task);

  /// Closes the queue, lets the scheduler thread flush the final cycle(s),
  /// and joins it. Idempotent and safe to call concurrently.
  void shutdown();

  /// Snapshot of the aggregate counters + bounded histories. The aggregate
  /// totals (cycles / scheduled / filtered / expired, queue depth and
  /// watermark) are views over the metrics-registry instruments; the
  /// bounded rings stay local. Shape and semantics are unchanged from the
  /// pre-registry implementation.
  api::SchedulerStats stats() const;

  const SchedulerServiceConfig& config() const { return config_; }

  /// The registry/tracer this service records into (the orchestrator's
  /// bundle, or the private fallback).
  obs::Telemetry& telemetry() const { return *telemetry_; }

 private:
  void run_loop();
  void run_cycle(double fired_at, api::CycleTrigger fired_by);
  /// Fails every task in `overdue` with DEADLINE_EXCEEDED at virtual time
  /// `now`. Callers must account the cycle in stats_ first — an executor
  /// observing the failure is guaranteed to find it in getSchedulerStats.
  void fail_expired(const std::vector<PendingQueue::Item>& overdue, double now);
  /// Accounts a cycle that dispatched nothing (every taken job expired or
  /// settled sideways): bumps the cycle counter and records the history
  /// entry, without a scheduler call.
  void record_empty_cycle(double fired_at, api::CycleTrigger fired_by,
                          std::size_t expired, double latency_seconds);
  /// Stamps the cycle index into `info` and appends it to the bounded
  /// recent_cycles history. Bumps the cycle counter — the index IS the
  /// counter value (single scheduler thread, so the read-after-inc is the
  /// incremented value).
  void append_cycle_locked(api::SchedulerCycleInfo& info) REQUIRES(stats_mutex_);
  /// Records the queue_wait span (enqueue -> verdict, both clocks) into a
  /// settling item's trace ring. Must run BEFORE complete()/fail() — the
  /// settlement edge is what publishes the span to the resuming run.
  void record_queue_wait(const PendingQueue::Item& item, double now,
                         std::string verdict) const;

  const SchedulerServiceConfig config_;
  const sched::SchedulerConfig cycle_config_;
  const SchedulerServiceHooks hooks_;

  /// Fallback bundle when the constructor got no external telemetry;
  /// telemetry_ is the one every record site uses. Declared before the
  /// instruments and the thread: both reference it.
  const std::unique_ptr<obs::Telemetry> owned_telemetry_;
  obs::Telemetry* const telemetry_;

  // Registry instruments (stable pointers; see obs/metrics.hpp). The
  // counters back stats() and are always maintained; the stage histograms
  // are gated on Telemetry::metrics_enabled().
  obs::Counter* const cycles_total_;
  obs::Counter* const jobs_scheduled_total_;
  obs::Counter* const jobs_filtered_total_;
  obs::Counter* const jobs_expired_total_;
  // No-silent-caps: the bounded stats rings drop their oldest entries once
  // full; these count every drop so a reader of recent_cycles /
  // recent_queue_waits can tell a quiet system from a saturated ring.
  obs::Counter* const stats_cycles_dropped_total_;
  obs::Counter* const stats_waits_dropped_total_;
  obs::Histogram* const cycle_preprocess_seconds_;
  obs::Histogram* const cycle_optimize_seconds_;
  obs::Histogram* const cycle_select_seconds_;
  obs::Histogram* const cycle_latency_seconds_;

  // Owned by the scheduler thread once it starts: the trigger's last-fire
  // state and the RNG feeding per-cycle NSGA-II seeds.
  sched::ScheduleTrigger trigger_;
  Rng rng_;

  PendingQueue queue_;

  // Liveness: the scheduler thread beats cycle_beat_ once per wake (cycle
  // AND linger wakeup) and drain_beat_ once per batch/expiry drain;
  // in_cycle_ is true from a wake until its cycle returns, so the busy
  // probe reports work-in-progress even after take_batch emptied the queue
  // (a wedge inside the QPU-snapshot hook must not read as "idle").
  obs::Heartbeat cycle_beat_;
  obs::Heartbeat drain_beat_;
  std::atomic<bool> in_cycle_{false};

  mutable Mutex stats_mutex_{LockRank::kSchedulerStats, "SchedulerService::stats_mutex_"};
  api::SchedulerStats stats_ GUARDED_BY(stats_mutex_);

  /// Serializes concurrent shutdown() calls.
  Mutex join_mutex_{LockRank::kShutdownJoin, "SchedulerService::join_mutex_"};
  /// Declared last: no member may be destroyed while the thread still runs
  /// (the destructor shuts down and joins first).
  std::thread thread_;
};

}  // namespace qon::core
