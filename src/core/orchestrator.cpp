#include "core/orchestrator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/logging.hpp"
#include "estimator/execution_model.hpp"
#include "simulator/metrics.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::core {

namespace {

const Logger& orch_log() {
  static const Logger log("orchestrator");
  return log;
}

/// Run end-to-end latency bounds (virtual seconds): runs span sub-second
/// interactive circuits to hour-scale batch workflows.
std::vector<double> run_latency_bounds() {
  return {1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0};
}

std::string priority_label(std::size_t p) {
  return std::string("priority=\"") +
         api::priority_name(static_cast<api::Priority>(p)) + "\"";
}

}  // namespace

const char* workflow_status_name(WorkflowStatus status) {
  return api::run_status_name(status);
}

api::Status validate_admission_config(const AdmissionConfig& config) {
  if (config.max_live_runs == 0) return api::Status::Ok();  // gate disabled
  // The negated comparisons also reject NaN.
  if (!(config.shed_batch_at > 0.0 && config.shed_batch_at <= 1.0)) {
    return api::InvalidArgument(
        "admission config: shed_batch_at must be in (0, 1]");
  }
  if (!(config.shed_standard_at > 0.0 && config.shed_standard_at <= 1.0)) {
    return api::InvalidArgument(
        "admission config: shed_standard_at must be in (0, 1]");
  }
  if (config.shed_batch_at > config.shed_standard_at) {
    // The shedding order IS the priority order: batch must never outlive
    // standard under load.
    return api::InvalidArgument(
        "admission config: shed_batch_at must be <= shed_standard_at");
  }
  if (!(config.retry_after_seconds > 0.0)) {
    return api::InvalidArgument(
        "admission config: retry_after_seconds must be > 0");
  }
  return api::Status::Ok();
}

Qonductor::Qonductor(QonductorConfig config)
    : config_(config),
      rng_(config.seed),
      hidden_(config.seed ^ 0x9d17ULL, config.hidden_sigma),
      fleet_(qpu::make_ibm_like_fleet(config.num_qpus, config.seed ^ 0xf1ee7ULL)),
      nodes_(sched::make_node_pool(config.classical_standard_nodes,
                                   config.classical_highend_nodes,
                                   config.classical_fpga_nodes)),
      monitor_(config.replicated_monitor),
      run_table_(config.retention),
      telemetry_(config.telemetry) {
  templates_ = fleet_.template_backends();
  // GC follows the record: when the run table evicts a terminal run, its
  // status entry leaves the system monitor too.
  run_table_.set_eviction_observer(
      [this](RunId run) { monitor_.erase_workflow_status(run); });
  {
    // Construction is single-threaded, but qpu_available_at_ and the fleet
    // publish are engine-guarded state: taking the (uncontended) engine
    // lock keeps the guarded_by/REQUIRES contract true at every call site
    // instead of carving out a trust-me exception for the constructor.
    MutexLock lock(engine_mutex_);
    qpu_available_at_.assign(fleet_.backends.size(), 0.0);
    publish_fleet_state();
  }

  // Registry instruments, registered family-by-family so the Prometheus
  // renderer emits one HELP/TYPE header per family. The returned pointers
  // are stable for the registry's lifetime; every hot-path update is a
  // single relaxed atomic.
  {
    auto& registry = telemetry_.registry();
    prep_cache_hits_ = registry.counter(
        "qon_prep_cache_hits_total",
        "Prep-cache lookups served from a cached per-backend transpile");
    prep_cache_misses_ = registry.counter(
        "qon_prep_cache_misses_total", "Prep-cache lookups that transpiled fresh");
    for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
      admission_accepted_[p] = registry.counter(
          "qon_admission_accepted_total",
          "Runs admitted through the front-door gate", priority_label(p));
    }
    for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
      admission_shed_[p] = registry.counter(
          "qon_admission_shed_total",
          "Runs shed RESOURCE_EXHAUSTED by the front-door gate", priority_label(p));
    }
    for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
      run_latency_seconds_[p] = registry.histogram(
          "qon_run_latency_seconds",
          "Run end-to-end virtual latency, submit to settle",
          run_latency_bounds(), priority_label(p));
    }
    for (const api::RunStatus status :
         {api::RunStatus::kCompleted, api::RunStatus::kFailed,
          api::RunStatus::kCancelled}) {
      runs_finished_total_[static_cast<std::size_t>(status)] = registry.counter(
          "qon_runs_finished_total", "Settled runs per terminal status",
          std::string("status=\"") + api::run_status_name(status) + "\"");
    }
  }

  // Scheduler knobs are validated here, once, so the ScheduleTrigger's
  // std::invalid_argument never crosses the API boundary: a bad config
  // parks invoke()/invokeAll() on the stored INVALID_ARGUMENT instead.
  init_status_ = validate_scheduler_config(config_.scheduler_service);
  if (init_status_.ok()) {
    init_status_ = validate_admission_config(config_.admission);
  }
  if (init_status_.ok() &&
      (config_.fidelity_weight < 0.0 || config_.fidelity_weight > 1.0)) {
    init_status_ = api::InvalidArgument(
        "QonductorConfig: fidelity_weight must be in [0, 1]");
  }
  if (init_status_.ok() && config_.scheduler_service.mode == SchedulingMode::kBatch) {
    sched::SchedulerConfig cycle_config;
    cycle_config.fidelity_weight = config_.fidelity_weight;
    SchedulerServiceHooks hooks;
    hooks.now = [this] { return fleetNow(); };
    hooks.snapshot_qpus = [this](double advance_to) {
      // The test-only wedge-injection point: BEFORE the engine lock, so a
      // blocked hook wedges only the scheduler thread, not the data plane.
      if (config_.health.scheduler_fault_injection) {
        config_.health.scheduler_fault_injection();
      }
      MutexLock lock(engine_mutex_);
      advance_fleet_clock(advance_to);
      const double now = fleet_clock_.load(std::memory_order_relaxed);
      // Reservation time windows expire at cycle boundaries: release due
      // QPUs before snapshotting so this very cycle schedules onto them.
      expire_reservations(now);
      return snapshot_qpu_states_locked(now);
    };
    scheduler_service_ = std::make_shared<SchedulerService>(
        config_.scheduler_service, config_.seed ^ 0x5c4edULL, cycle_config,
        std::move(hooks), &telemetry_, &health_);
  }

  // Live-health wiring: the SLO monitor (when targets/rules configure one),
  // the engine watchdog, and the probe-backed components. Registered before
  // the engine exists is fine — verdicts are only derived at check() time,
  // and the busy probe handles the (momentary) null engine.
  {
    bool track_slo = !config_.health.alert_rules.empty();
    for (const double target : config_.health.slo_seconds) {
      track_slo = track_slo || target > 0.0;
    }
    if (track_slo) {
      slo_ = std::make_unique<obs::SloMonitor>(config_.health.slo_seconds,
                                               config_.health.alert_rules);
    }
    obs::HealthMonitor::WatchdogOptions engine_dog;
    engine_dog.stall_budget_seconds = config_.health.engine_stall_budget_seconds;
    engine_dog.busy = [this] {
      return engine_ != nullptr && engine_->stats().queue_depth > 0;
    };
    health_.watch("engine", &engine_beat_, std::move(engine_dog));
    health_.probe("admission", [this] {
      api::ComponentHealth verdict;
      if (config_.admission.max_live_runs == 0) {
        verdict.detail = "gate disabled";
        return verdict;
      }
      const std::size_t live = engine_ ? engine_->stats().live_runs : 0;
      const std::size_t limit = config_.admission.max_live_runs;
      verdict.detail = "live " + std::to_string(live) + " / limit " +
                       std::to_string(limit);
      if (live >= limit) verdict.status = api::HealthStatus::kDegraded;
      return verdict;
    });
    health_.probe("fleet", [this] {
      api::ComponentHealth verdict;
      std::size_t online = 0;
      std::size_t reserved = 0;
      for (const auto& backend : fleet_.backends) {
        const auto qpu = monitor_.qpu(backend->name());
        if (qpu && qpu->reserved) ++reserved;
        if (qpu && qpu->online && !qpu->reserved) ++online;
      }
      const std::size_t total = fleet_.backends.size();
      verdict.detail = std::to_string(online) + "/" + std::to_string(total) +
                       " QPUs schedulable (" + std::to_string(reserved) +
                       " reserved)";
      if (online == 0) {
        verdict.status = api::HealthStatus::kUnhealthy;
        verdict.detail = "fleet has no schedulable QPU: " + verdict.detail;
      } else if (online + reserved < total) {
        verdict.status = api::HealthStatus::kDegraded;
      }
      return verdict;
    });
    telemetry_.registry().counter_fn(
        "qon_health_heartbeats_total",
        "Liveness heartbeats stamped by the engine workers",
        [this] { return static_cast<double>(engine_beat_.count()); },
        R"(component="engine")");
  }

  // Last: the engine's workers call step_run, which uses every member
  // above (including the scheduler service parked tasks resume through).
  engine_ = std::make_unique<RunEngine>(
      std::max<std::size_t>(1, config_.executor_threads),
      [this](const std::shared_ptr<RunContinuation>& cont) { return step_run(cont); },
      [this] { engine_beat_.beat(); });
  // Engine gauges poll one coherent EngineStats sample each (the engine's
  // lock ranks above kMetrics, so the poll nests legally under snapshot()).
  telemetry_.registry().gauge_fn(
      "qon_engine_live_runs", "In-flight (non-terminal) runs in the engine",
      [this] { return static_cast<double>(engine_->stats().live_runs); });
  telemetry_.registry().gauge_fn(
      "qon_engine_peak_live_runs", "Largest live-run count ever observed",
      [this] { return static_cast<double>(engine_->stats().peak_live_runs); });
  telemetry_.registry().counter_fn(
      "qon_engine_events_total",
      "Step events dispatched (submits + reposts + resumes)",
      [this] { return static_cast<double>(engine_->stats().events_dispatched); });
}

// Default: engine_ is declared last, so it is destroyed first and drains
// every live run while the scheduler service (declared just before it) is
// still firing the cycles their parked tasks resume through; the service
// then flushes and joins.
Qonductor::~Qonductor() = default;

void Qonductor::shutdown() {
  // Order matters: draining the engine first lets live runs keep parking
  // quantum tasks in the (still live) scheduler service and resuming off
  // its cycles; the service then drains its pending queue with a final
  // flush cycle.
  engine_->shutdown();
  if (scheduler_service_) scheduler_service_->shutdown();
}

void Qonductor::advance_fleet_clock(double up_to) {
  // Callers hold engine_mutex_, so a plain read-modify-write is race-free;
  // the atomic store publishes the frontier to lock-free readers.
  if (up_to > fleet_clock_.load(std::memory_order_relaxed)) {
    fleet_clock_.store(up_to, std::memory_order_release);
  }
}

void Qonductor::advanceFleetClock(double up_to) {
  MutexLock lock(engine_mutex_);
  advance_fleet_clock(up_to);
}

void Qonductor::recalibrateFleet() {
  MutexLock lock(engine_mutex_);
  fleet_.recalibrate_all(rng_, fleet_clock_.load(std::memory_order_relaxed));
  publish_fleet_state();
}

void Qonductor::publish_fleet_state() {
  for (std::size_t q = 0; q < fleet_.backends.size(); ++q) {
    const auto& backend = *fleet_.backends[q];
    QpuInfo info;
    info.name = backend.name();
    info.qubits = backend.num_qubits();
    info.queue_wait_seconds = qpu_available_at_[q];
    info.mean_gate_error_2q = backend.calibration().mean_gate_error_2q();
    info.calibration_cycle = backend.calibration().cycle;
    // Health and reservation are owned by set_qpu_online/set_qpu_reserved;
    // the monitor merges them in atomically so a concurrent reserve or
    // fault cannot be lost to this republish.
    monitor_.publish_qpu_dynamic(info);
  }
}

std::vector<sched::QpuState> Qonductor::snapshot_qpu_states_locked(
    double reference) const {
  std::vector<sched::QpuState> states;
  states.reserve(fleet_.backends.size());
  for (std::size_t q = 0; q < fleet_.backends.size(); ++q) {
    sched::QpuState state;
    state.name = fleet_.backends[q]->name();
    state.size = fleet_.backends[q]->num_qubits();
    state.queue_wait_seconds = std::max(0.0, qpu_available_at_[q] - reference);
    // A QPU is schedulable only when healthy AND not reserved (§7).
    const QpuInfo info = monitor_.qpu(state.name).value_or(QpuInfo{});
    state.online = info.online && !info.reserved;
    states.push_back(std::move(state));
  }
  return states;
}

// ---- v1 request/response surface ---------------------------------------------

api::Result<api::CreateWorkflowResponse> Qonductor::createWorkflow(
    api::CreateWorkflowRequest request) {
  if (request.tasks.empty()) {
    return api::InvalidArgument("createWorkflow: workflow has no tasks");
  }
  yaml::Node config;
  if (!request.yaml_config.empty()) {
    try {
      config = yaml::parse(request.yaml_config);
    } catch (const std::exception& e) {
      return api::InvalidArgument(std::string("createWorkflow: bad deployment config: ") +
                                  e.what());
    }
  }
  api::CreateWorkflowResponse response;
  {
    MutexLock lock(registry_mutex_);
    response.image = registry_.register_image(
        std::move(request.name), workflow::chain_workflow(std::move(request.tasks)),
        std::move(config));
  }
  return response;
}

api::Result<api::DeployResponse> Qonductor::deploy(const api::DeployRequest& request) {
  MutexLock lock(registry_mutex_);
  const workflow::WorkflowImage* img = registry_.find(request.image);
  if (img == nullptr) {
    return api::NotFound("deploy: unknown image " + std::to_string(request.image));
  }
  const auto it = deployed_.find(request.image);
  if (it != deployed_.end() && it->second) {
    return api::AlreadyExists("deploy: image " + std::to_string(request.image) +
                              " is already deployed");
  }
  // Validate quantum tasks against the fleet (client QPU-size constraints).
  for (workflow::TaskId t = 0; t < img->dag.size(); ++t) {
    const auto& task = img->dag.task(t);
    if (task.kind != workflow::TaskKind::kQuantum) continue;
    bool fits = false;
    for (const auto& backend : fleet_.backends) {
      if (task.circ.num_qubits() <= backend->num_qubits()) fits = true;
    }
    if (!fits) {
      return api::ResourceExhausted("deploy: task '" + task.name + "' fits no QPU");
    }
  }
  deployed_[request.image] = true;
  api::DeployResponse response;
  response.image = request.image;
  return response;
}

namespace {

api::Status validate_preferences(const api::JobPreferences& preferences) {
  // The negated comparisons also reject NaN.
  if (preferences.fidelity_weight &&
      !(*preferences.fidelity_weight >= 0.0 && *preferences.fidelity_weight <= 1.0)) {
    return api::InvalidArgument(
        "invoke: preferences.fidelity_weight must be in [0, 1]");
  }
  if (preferences.deadline_seconds && !(*preferences.deadline_seconds >= 0.0)) {
    return api::InvalidArgument(
        "invoke: preferences.deadline_seconds must be >= 0 (fleet virtual clock)");
  }
  // The priority later indexes kNumPriorities-sized lanes/stats arrays, so
  // an enum value smuggled in from a wire layer must be rejected here.
  if (static_cast<std::size_t>(preferences.priority) >= api::kNumPriorities) {
    return api::InvalidArgument("invoke: preferences.priority is not a valid Priority");
  }
  return api::Status::Ok();
}

}  // namespace

api::JobPreferences Qonductor::effective_preferences(
    const api::JobPreferences& requested) const {
  api::JobPreferences effective = requested;
  if (!effective.fidelity_weight) effective.fidelity_weight = config_.fidelity_weight;
  return effective;
}

api::Status Qonductor::validate_invoke(const api::InvokeRequest& request,
                                       const workflow::WorkflowImage** image_out) const {
  if (api::Status status = validate_preferences(request.preferences); !status.ok()) {
    return status;
  }
  // Deadline-aware admission: a deadline at/before the fleet-clock
  // frontier is dead on arrival — dispatch happens at or after the
  // frontier, so such a deadline has zero scheduling slack. Every
  // dispatch-time check (take_expired, the mid-batch filter, the immediate
  // path) uses the same inclusive boundary: dispatch exactly at the
  // deadline is a miss. Rejecting at submit beats parking the job until a
  // scheduling cycle discovers the miss.
  // Part of validation, so invokeAll stays atomic: one dead-on-arrival
  // deadline rejects the whole batch.
  if (request.preferences.deadline_seconds) {
    const double frontier = fleetNow();
    if (*request.preferences.deadline_seconds <= frontier) {
      return api::DeadlineExceeded(
          "invoke: deadline t=" + std::to_string(*request.preferences.deadline_seconds) +
          " s lies at/before the fleet clock frontier t=" + std::to_string(frontier) +
          " s — unmeetable at submit time");
    }
  }
  MutexLock lock(registry_mutex_);
  const workflow::WorkflowImage* img = registry_.find(request.image);
  if (img == nullptr) {
    return api::NotFound("invoke: unknown image " + std::to_string(request.image));
  }
  const auto it = deployed_.find(request.image);
  if (it == deployed_.end() || !it->second) {
    return api::FailedPrecondition("invoke: image " + std::to_string(request.image) +
                                   " is not deployed");
  }
  *image_out = img;  // registry is append-only: the pointer stays valid
  return api::Status::Ok();
}

api::Result<api::RunHandle> Qonductor::start_run(const workflow::WorkflowImage* image,
                                                 api::JobPreferences preferences) {
  const api::Priority priority = preferences.priority;
  auto state = std::make_shared<api::RunState>();
  state->image = image->id;
  state->preferences = std::move(preferences);
  const double submitted_at = fleetNow();
  {
    // The record is not shared with any other thread until insert() below,
    // but submitted_at is guarded state: the (uncontended) record lock
    // keeps the guarded_by contract uniform outside the constructor.
    MutexLock lock(state->mutex);
    state->submitted_at = submitted_at;
  }
  const RunId run = run_table_.insert(state);
  monitor_.set_workflow_status(run, api::run_status_name(api::RunStatus::kPending));
  auto cont = std::make_shared<RunContinuation>();
  cont->state = state;
  cont->image = image;
  cont->order = image->dag.topological_order();
  cont->finish.assign(image->dag.size(), 0.0);
  cont->result.run = run;
  if (telemetry_.tracing_enabled()) {
    // The trace starts before the engine submit so the submit point is
    // always the first span, even if the first engine step runs instantly.
    cont->trace = telemetry_.tracer().start(run);
    cont->trace->record(telemetry_.tracer().point(
        "submit", submitted_at, "image=" + std::to_string(image->id)));
    cont->trace->record(telemetry_.tracer().point(
        "admitted", submitted_at,
        std::string("priority=") + api::priority_name(priority)));
  }
  if (!engine_->submit(std::move(cont))) {
    // The engine rejected the run (shutdown). Retract the record and fail
    // the state so no waiter can block forever on a run that will never
    // execute.
    run_table_.erase(run);
    {
      MutexLock lock(state->mutex);
      state->status = api::RunStatus::kFailed;
      state->finished_at = fleetNow();
      state->result.run = run;
      state->result.status = api::RunStatus::kFailed;
      state->result.error = api::Unavailable("executor shutting down");
    }
    state->cv.notify_all();
    monitor_.erase_workflow_status(run);
    return api::Unavailable("invoke: run engine is shutting down, run " +
                            std::to_string(run) + " rejected");
  }
  return api::RunHandle(state);
}

std::size_t Qonductor::admission_limit(api::Priority priority) const {
  const std::size_t max = config_.admission.max_live_runs;
  const auto share = [max](double fraction) {
    // Round to nearest, floored at 1: a tiny bound must still admit at
    // least one run of every class when the system is idle.
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(fraction * static_cast<double>(max) + 0.5));
  };
  switch (priority) {
    case api::Priority::kBatch: return share(config_.admission.shed_batch_at);
    case api::Priority::kStandard: return share(config_.admission.shed_standard_at);
    case api::Priority::kInteractive: break;
  }
  return max;  // interactive: only a fully loaded system sheds it
}

api::Status Qonductor::admit_run(api::Priority priority, std::size_t already_admitted) {
  if (config_.admission.max_live_runs == 0) return api::Status::Ok();  // gate off
  // `already_admitted` counts earlier entries of the same invokeAll batch:
  // they are not live in the engine yet, but admitting the batch must not
  // overshoot the bound by its own length.
  const std::size_t live = engine_->live_runs() + already_admitted;
  const std::size_t limit = admission_limit(priority);
  if (live < limit) return api::Status::Ok();
  admission_shed_[static_cast<std::size_t>(priority)]->inc();
  // Rate-limited: during a flash crowd every rejected invoke lands here, and
  // thousands of identical lines would convoy the callers on the logging
  // mutex. One line per 100 sheds, carrying the suppressed count.
  static LogRateLimiter shed_limiter(100);
  if (std::uint64_t suppressed = 0;
      Logger::enabled(LogLevel::kInfo) && shed_limiter.allow(&suppressed)) {
    orch_log().info("admission gate shed run", {{"priority", api::priority_name(priority)},
                                                {"live", live},
                                                {"limit", limit},
                                                {"suppressed", suppressed}});
  }
  return api::ResourceExhausted(
             "invoke: admission gate shed " +
             std::string(api::priority_name(priority)) + "-class run (" +
             std::to_string(live) + " live runs >= class limit " +
             std::to_string(limit) + " of max " +
             std::to_string(config_.admission.max_live_runs) + ")")
      .set_retry_after(config_.admission.retry_after_seconds);
}

api::Result<api::RunHandle> Qonductor::invoke(const api::InvokeRequest& request) {
  if (!init_status_.ok()) return init_status_;
  const workflow::WorkflowImage* img = nullptr;
  if (api::Status status = validate_invoke(request, &img); !status.ok()) return status;
  // Overload shedding after validation: a malformed request stays a
  // validation error even under load, and a shed response always means the
  // request itself was viable.
  if (api::Status status = admit_run(request.preferences.priority, 0); !status.ok()) {
    return status;
  }
  auto handle = start_run(img, effective_preferences(request.preferences));
  if (handle.ok()) {
    admission_accepted_[static_cast<std::size_t>(request.preferences.priority)]->inc();
  }
  return handle;
}

api::Result<std::vector<api::RunHandle>> Qonductor::invokeAll(
    const std::vector<api::InvokeRequest>& requests) {
  if (!init_status_.ok()) return init_status_;
  // Validate the whole batch before starting anything: an invalid entry
  // rejects the batch atomically.
  std::vector<const workflow::WorkflowImage*> images(requests.size(), nullptr);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (api::Status status = validate_invoke(requests[i], &images[i]); !status.ok()) {
      return api::Status(status.code(), "invokeAll[" + std::to_string(i) + "]: " +
                                            status.message());
    }
  }
  // Second pre-flight pass: the batch is admitted atomically too, counting
  // its own earlier entries against the bound so a 1000-run batch cannot
  // blow through a 100-run gate in one call.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (api::Status status = admit_run(requests[i].preferences.priority, i);
        !status.ok()) {
      api::Status prefixed(status.code(), "invokeAll[" + std::to_string(i) +
                                              "]: " + status.message());
      if (status.retry_after_seconds()) {
        prefixed.set_retry_after(*status.retry_after_seconds());
      }
      return prefixed;
    }
  }
  std::vector<api::RunHandle> handles;
  handles.reserve(requests.size());
  for (std::size_t i = 0; i < images.size(); ++i) {
    auto handle = start_run(images[i], effective_preferences(requests[i].preferences));
    if (!handle.ok()) {
      // Only reachable when the executor shuts down mid-batch. Runs queued
      // before the failure keep executing and stay queryable by run id; the
      // failed run itself was retracted by start_run.
      return api::Status(handle.status().code(), "invokeAll[" + std::to_string(i) +
                                                     "]: " + handle.status().message());
    }
    admission_accepted_[static_cast<std::size_t>(requests[i].preferences.priority)]->inc();
    handles.push_back(*std::move(handle));
  }
  return handles;
}

api::Result<api::RunHandle> Qonductor::runHandle(RunId run) const {
  auto state = run_table_.find(run);
  if (!state) {
    return api::NotFound("runHandle: unknown run " + std::to_string(run));
  }
  return api::RunHandle(std::move(state));
}

api::Result<api::GetRunResponse> Qonductor::getRun(const api::GetRunRequest& request) const {
  auto state = run_table_.find(request.run);
  if (!state) {
    return api::NotFound("getRun: unknown run " + std::to_string(request.run));
  }
  auto info = api::RunHandle(std::move(state)).info();
  if (!info.ok()) return info.status();
  api::GetRunResponse response;
  response.info = *std::move(info);
  return response;
}

api::Result<api::ListRunsResponse> Qonductor::listRuns(
    const api::ListRunsRequest& request) const {
  if (request.page_size == 0) {
    // Used to be silently clamped to 1 — a caller asking for nothing got
    // one run back. Reject malformed paging instead.
    return api::InvalidArgument("listRuns: page_size must be >= 1 (at most " +
                                std::to_string(api::kMaxListRunsPageSize) + ")");
  }
  const std::size_t page_size = std::min(request.page_size, api::kMaxListRunsPageSize);
  api::ListRunsResponse response;
  // The table is bounded by the retention policy, so snapshotting the tail
  // beyond the page token is cheap; filters apply to the live status.
  for (const auto& state : run_table_.list_after(request.page_token)) {
    auto info = api::RunHandle(state).info();
    if (!info.ok()) continue;  // unreachable: table states are never empty
    if (request.status.has_value() && info->status != *request.status) continue;
    if (request.image != 0 && info->image != request.image) continue;
    if (response.runs.size() == page_size) {
      // One more match exists beyond this page: hand out a resume token.
      response.next_page_token = response.runs.back().run;
      break;
    }
    response.runs.push_back(*std::move(info));
  }
  return response;
}

api::Result<api::GetSchedulerStatsResponse> Qonductor::getSchedulerStats(
    const api::GetSchedulerStatsRequest&) const {
  api::GetSchedulerStatsResponse response;
  response.config = to_config_view(config_.scheduler_service);
  if (scheduler_service_) response.stats = scheduler_service_->stats();
  return response;
}

api::Result<api::GetAdmissionStatsResponse> Qonductor::getAdmissionStats(
    const api::GetAdmissionStatsRequest&) const {
  api::GetAdmissionStatsResponse response;
  // A view over the same registry counters getMetrics exports — shape and
  // semantics unchanged from the pre-registry atomics.
  for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
    response.stats.accepted[p] = admission_accepted_[p]->value();
    response.stats.shed[p] = admission_shed_[p]->value();
  }
  response.stats.live_runs = engine_->live_runs();
  response.stats.max_live_runs = config_.admission.max_live_runs;
  if (scheduler_service_) {
    response.stats.waitlist_depth = scheduler_service_->waitlist_depth();
    response.stats.waitlist_high_watermark =
        scheduler_service_->waitlist_high_watermark();
    response.stats.waitlist_parks = scheduler_service_->waitlist_parks();
  }
  return response;
}

api::Result<api::GetRunTraceResponse> Qonductor::getRunTrace(
    const api::GetRunTraceRequest& request) const {
  if (!telemetry_.tracing_enabled()) {
    return api::FailedPrecondition(
        "getRunTrace: tracing is disabled (QonductorConfig::telemetry.tracing)");
  }
  auto trace = telemetry_.tracer().trace(request.run);
  if (!trace.ok()) return trace.status();
  api::GetRunTraceResponse response;
  response.trace = *std::move(trace);
  return response;
}

api::Result<api::GetMetricsResponse> Qonductor::getMetrics(
    const api::GetMetricsRequest&) const {
  api::GetMetricsResponse response;
  response.snapshot = telemetry_.snapshot(fleetNow());
  return response;
}

api::Result<api::GetHealthResponse> Qonductor::getHealth(
    const api::GetHealthRequest&) const {
  api::GetHealthResponse response;
  response.components = health_.check();
  response.status = obs::HealthMonitor::overall(response.components);
  if (slo_) {
    const double now = fleetNow();
    // Advancing the alert state machines here makes getHealth the live
    // evaluation point (the campaign driver runs its own monitor on its
    // stats cadence instead, for determinism).
    for (const obs::AlertTransition& transition : slo_->evaluate(now)) {
      orch_log().warn("slo alert transition",
                      {{"rule", transition.rule},
                       {"priority", api::priority_name(transition.priority)},
                       {"state", api::alert_state_name(transition.state)},
                       {"t", transition.at_virtual},
                       {"fast_burn", transition.fast_burn},
                       {"slow_burn", transition.slow_burn}});
    }
    response.alerts = slo_->alerts(now);
    for (const api::AlertInfo& alert : response.alerts) {
      if (alert.state == api::AlertState::kFiring &&
          response.status == api::HealthStatus::kHealthy) {
        // A firing burn-rate alert is trouble even when every component
        // beats: the service is alive but not meeting its SLOs.
        response.status = api::HealthStatus::kDegraded;
      }
    }
  }
  return response;
}

api::Result<api::ReserveQpuResponse> Qonductor::reserveQpu(
    const api::ReserveQpuRequest& request) {
  if (request.duration_seconds && !(*request.duration_seconds > 0.0)) {
    // The negated comparison also rejects NaN.
    return api::InvalidArgument(
        "reserveQpu: duration_seconds must be > 0 (omit for an open-ended reservation)");
  }
  // reservations_mutex_ spans the flag flip AND the window-map update, so
  // the reservation epoch and its deadline change together: an expiry
  // sweep can never observe (and release) a half-installed reservation.
  // The monitor's own mutex nests inside; the flag flip itself stays
  // atomic against publish_fleet_state and device-manager health writes.
  MutexLock lock(reservations_mutex_);
  const auto previous = monitor_.set_qpu_reserved(request.qpu, true);
  if (!previous) {
    return api::NotFound("reserveQpu: unknown QPU '" + request.qpu + "'");
  }
  if (*previous) {
    return api::AlreadyExists("reserveQpu: QPU '" + request.qpu +
                              "' is already reserved");
  }
  api::ReserveQpuResponse response;
  response.qpu = request.qpu;
  if (request.duration_seconds) {
    // Time-windowed reservation: scheduled for auto-release by the first
    // scheduling snapshot taken at/after the virtual deadline.
    const double release_at = fleetNow() + *request.duration_seconds;
    reservation_release_at_[request.qpu] = release_at;
    response.release_at = release_at;
  }
  return response;
}

api::Result<api::ReleaseQpuResponse> Qonductor::releaseQpu(
    const api::ReleaseQpuRequest& request) {
  // Clears only the reservation: a QPU the device manager took offline
  // for health reasons stays out of rotation. Under reservations_mutex_
  // (see reserveQpu) so the flag and the window deadline change together —
  // an explicit release ends any time window early, and a later
  // reservation never inherits a stale deadline.
  MutexLock lock(reservations_mutex_);
  const auto previous = monitor_.set_qpu_reserved(request.qpu, false);
  if (!previous) {
    return api::NotFound("releaseQpu: unknown QPU '" + request.qpu + "'");
  }
  if (!*previous) {
    return api::FailedPrecondition("releaseQpu: QPU '" + request.qpu +
                                   "' is not reserved");
  }
  reservation_release_at_.erase(request.qpu);
  api::ReleaseQpuResponse response;
  response.qpu = request.qpu;
  return response;
}

void Qonductor::expire_reservations(double now) {
  // The flag write happens inside reservations_mutex_, like reserveQpu/
  // releaseQpu: erasing the window and releasing the flag must be one
  // atomic step, or a releaseQpu+reserveQpu pair interleaved between them
  // would have its brand-new reservation silently released by this sweep.
  MutexLock lock(reservations_mutex_);
  for (auto it = reservation_release_at_.begin();
       it != reservation_release_at_.end();) {
    if (it->second <= now) {
      monitor_.set_qpu_reserved(it->first, false);
      it = reservation_release_at_.erase(it);
    } else {
      ++it;
    }
  }
}

api::Result<api::WorkflowStatusResponse> Qonductor::workflowStatus(
    const api::WorkflowStatusRequest& request) const {
  auto handle = runHandle(request.run);
  if (!handle.ok()) {
    return api::NotFound("workflowStatus: unknown run " + std::to_string(request.run));
  }
  api::WorkflowStatusResponse response;
  response.run = request.run;
  response.status = handle->poll();
  return response;
}

api::Result<api::WorkflowResultsResponse> Qonductor::workflowResults(
    const api::WorkflowResultsRequest& request) const {
  auto handle = runHandle(request.run);
  if (!handle.ok()) {
    return api::NotFound("workflowResults: unknown run " + std::to_string(request.run));
  }
  if (!request.wait && !api::run_status_terminal(handle->poll())) {
    return api::Unavailable("workflowResults: run " + std::to_string(request.run) +
                            " still in flight");
  }
  auto result = handle->result();  // blocks until terminal
  if (!result.ok()) return result.status();
  api::WorkflowResultsResponse response;
  response.result = *std::move(result);
  return response;
}

// ---- control/data-plane operations -------------------------------------------

estimator::PlanSet Qonductor::estimateResources(const circuit::Circuit& circ) const {
  return estimator::generate_resource_plans(circ, templates_, config_.plan_config);
}

sched::ScheduleDecision Qonductor::generateSchedule(const sched::SchedulingInput& input) const {
  sched::SchedulerConfig scheduler;
  scheduler.fidelity_weight = config_.fidelity_weight;
  return sched::schedule_cycle(input, scheduler);
}

std::vector<workflow::ImageId> Qonductor::listImages() const {
  MutexLock lock(registry_mutex_);
  return registry_.list();
}

// ---- data-plane execution (run-engine state machine) -------------------------

StepOutcome Qonductor::settle_run(const std::shared_ptr<RunContinuation>& cont) {
  const std::shared_ptr<api::RunState>& state = cont->state;
  const RunId run = state->id;
  const api::RunStatus terminal = cont->result.status;  // moved below
  cont->result.run = run;
  // The monitor write must precede mark_terminal: the instant the run is
  // GC-eligible a concurrent eviction may erase the monitor entry, and a
  // later write would resurrect it unerasable.
  monitor_.set_workflow_status(run, api::run_status_name(terminal));
  double submitted_at = 0.0;
  {
    MutexLock lock(state->mutex);
    submitted_at = state->submitted_at;
  }
  // The run's terminal virtual instant derives from its OWN events — the
  // task makespan for executed nodes, the cycle-verdict instant for a task
  // failed in scheduling — never from the fleet frontier: the frontier
  // advances with unrelated runs' executions, so reading it here would make
  // finished_at (and the latency histogram) depend on how many other runs'
  // engine events happened to be processed first. Runs that settle without
  // any virtual event of their own (cancelled before start, submit-time
  // failures) fall back to the frontier.
  double finished_at = std::max(cont->result.makespan_seconds, cont->settle_hint);
  if (finished_at <= 0.0) finished_at = fleetNow();
  finished_at = std::max(finished_at, submitted_at);
  // Terminal telemetry BEFORE the status flip: a client returning from
  // wait() (or polling the terminal status) is guaranteed the finished
  // counter, the latency sample and the settle span are already recorded —
  // a getMetrics/getRunTrace right after wait() never sees a settled run
  // missing from the registry.
  runs_finished_total_[static_cast<std::size_t>(terminal)]->inc();
  if (telemetry_.metrics_enabled()) {
    run_latency_seconds_[static_cast<std::size_t>(state->preferences.priority)]
        ->observe(std::max(0.0, finished_at - submitted_at));
  }
  if (slo_) {
    // The SLI feed: every terminal run, at its own terminal instant on the
    // virtual clock. Failed/cancelled runs burn budget regardless of speed.
    slo_->record(state->preferences.priority,
                 std::max(0.0, finished_at - submitted_at), finished_at,
                 terminal == api::RunStatus::kCompleted);
  }
  if (cont->trace) {
    cont->trace->record(telemetry_.tracer().point("settle", finished_at,
                                                  api::run_status_name(terminal)));
  }
  {
    MutexLock lock(state->mutex);
    state->result = std::move(cont->result);
    state->status = state->result.status;
    state->finished_at = finished_at;
    // Inside the state lock: a client that observes the terminal status
    // (poll/wait/result all take this lock) is guaranteed the run is
    // already GC-eligible in the table — listRuns/getRun never lag.
    run_table_.mark_terminal(run);
  }
  state->cv.notify_all();
  if (cont->trace) {
    // Outside all component locks, per the sink contract.
    telemetry_.tracer().finalize(cont->trace);
  }
  if (Logger::enabled(LogLevel::kDebug)) {
    orch_log().debug("run settled", {{"run", run},
                                     {"status", api::run_status_name(terminal)},
                                     {"latency_s", finished_at - submitted_at}});
  }
  return StepOutcome::kFinished;
}

StepOutcome Qonductor::settle_task_failure(const std::shared_ptr<RunContinuation>& cont,
                                           const std::string& task_name,
                                           const api::Status& status) {
  if (status.code() == api::StatusCode::kCancelled) {
    // The task was pulled out of the pending queue by cancel() (or refused
    // to start): the run ends kCancelled, not kFailed.
    cont->result.status = api::RunStatus::kCancelled;
    cont->result.error = api::Cancelled("run cancelled by client");
  } else {
    cont->result.status = api::RunStatus::kFailed;
    cont->result.error = api::Status(
        status.code(), "task '" + task_name + "' failed: " + status.message());
  }
  return settle_run(cont);
}

void Qonductor::record_task_result(RunContinuation& cont, workflow::TaskId node,
                                   TaskResult tr) {
  cont.finish[node] = tr.end;
  cont.result.makespan_seconds = std::max(cont.result.makespan_seconds, tr.end);
  cont.result.total_cost_dollars += tr.cost_dollars;
  if (tr.kind == workflow::TaskKind::kQuantum) {
    cont.result.min_fidelity = std::min(cont.result.min_fidelity, tr.fidelity);
  }
  cont.result.tasks.push_back(std::move(tr));
  ++cont.cursor;
}

StepOutcome Qonductor::step_run(const std::shared_ptr<RunContinuation>& cont) {
  // Capture the context up front: after a parking step registers its
  // settlement callback, `cont` may already be resuming on another worker
  // and must not be dereferenced again (the span ring locks internally).
  const obs::TraceContext trace = cont->trace;
  if (!trace) return step_run_impl(cont);
  const double virtual_start = fleetNow();
  const double wall_start = telemetry_.tracer().wall_now_us();
  const StepOutcome outcome = step_run_impl(cont);
  if (outcome != StepOutcome::kFinished) {
    // The finishing step's settle point stays the trace's last span (and
    // the sink already exported it from settle_run).
    trace->record(telemetry_.tracer().span(
        "engine_step", virtual_start, fleetNow(), wall_start,
        outcome == StepOutcome::kParked ? "parked" : "progress"));
  }
  return outcome;
}

StepOutcome Qonductor::step_run_impl(const std::shared_ptr<RunContinuation>& cont) {
  const std::shared_ptr<api::RunState>& state = cont->state;
  const RunId run = state->id;

  if (!cont->started) {
    // First event: kPending -> kRunning, or cancel-before-start.
    bool cancelled_before_start = false;
    {
      MutexLock lock(state->mutex);
      if (state->cancel_requested) {
        cancelled_before_start = true;
      } else {
        state->status = api::RunStatus::kRunning;
        state->started_at = fleetNow();
      }
    }
    if (cancelled_before_start) {
      cont->result.status = api::RunStatus::kCancelled;
      cont->result.error = api::Cancelled("run cancelled before execution started");
      return settle_run(cont);
    }
    state->cv.notify_all();
    monitor_.set_workflow_status(run, api::run_status_name(api::RunStatus::kRunning));
    cont->started = true;
  }

  if (cont->parked) {
    // Resume event: collect the settled quantum task's verdict. The park
    // context moves out first — whatever happens next, this continuation
    // is no longer "mid-quantum-task".
    const std::shared_ptr<PendingQuantumTask> pending = std::move(cont->parked);
    const std::shared_ptr<const QuantumTaskPrep> prep = std::move(cont->parked_prep);
    const double ready_at = cont->parked_ready;
    cont->parked = nullptr;
    cont->parked_prep = nullptr;
    {
      MutexLock lock(state->mutex);
      state->unpark = nullptr;
    }
    const workflow::TaskId node = cont->order[cont->cursor];
    const auto& task = cont->image->dag.task(node);
    if (!pending->error.ok()) {
      // Resume-with-error: cancel ends the run kCancelled; a cycle verdict
      // (DEADLINE_EXCEEDED / RESOURCE_EXHAUSTED / UNAVAILABLE) ends it
      // kFailed. Results of nodes that already ran stay in the report;
      // this node contributes only the error. The verdict instant becomes
      // the run's virtual finish time (no task executed to move makespan).
      cont->settle_hint = std::max(cont->settle_hint, pending->dispatched_at);
      return settle_task_failure(cont, task.name, pending->error);
    }
    if (cont->trace) {
      // The cycle's verdict fields are stable after settlement (see
      // pending_queue.hpp) — stamp the dispatch edge at the cycle's own
      // virtual fire time.
      cont->trace->record(telemetry_.tracer().point(
          "dispatch", pending->dispatched_at,
          "qpu=" + std::to_string(pending->assigned_qpu)));
    }
    try {
      const double exec_wall_start =
          cont->trace ? telemetry_.tracer().wall_now_us() : 0.0;
      TaskResult tr;
      {
        MutexLock lock(engine_mutex_);
        tr = execute_quantum_locked(
            task, *prep, static_cast<std::size_t>(pending->assigned_qpu), ready_at,
            pending->dispatched_at);
      }
      if (cont->trace) {
        cont->trace->record(telemetry_.tracer().span(
            "qpu_exec", tr.start, tr.end, exec_wall_start, "resource=" + tr.resource));
      }
      record_task_result(*cont, node, std::move(tr));
    } catch (const std::exception& e) {
      return settle_task_failure(cont, task.name, api::Internal(e.what()));
    }
    return StepOutcome::kProgress;
  }

  // Completion is checked BEFORE cooperative cancellation: once the last
  // node has executed there is no work left to cancel, and a cancel()
  // that races the final bookkeeping event must not relabel a fully
  // executed run kCancelled (the pre-engine loop never re-checked cancel
  // after the last task either).
  if (cont->cursor == cont->order.size()) {
    cont->result.status = api::RunStatus::kCompleted;
    return settle_run(cont);
  }

  // Cooperative cancellation at every remaining task boundary.
  bool cancelled = false;
  {
    MutexLock lock(state->mutex);
    cancelled = state->cancel_requested;
  }
  if (cancelled) {
    cont->result.status = api::RunStatus::kCancelled;
    cont->result.error = api::Cancelled("run cancelled by client");
    return settle_run(cont);
  }

  const workflow::TaskId node = cont->order[cont->cursor];
  const auto& task = cont->image->dag.task(node);
  if (config_.on_task_start) config_.on_task_start(run, task.name);
  double ready = 0.0;
  for (const workflow::TaskId dep : cont->image->dag.dependencies(node)) {
    ready = std::max(ready, cont->finish[dep]);
  }
  try {
    if (task.kind == workflow::TaskKind::kQuantum && scheduler_service_) {
      // Batch path (§7): the task parks in the pending queue with a resume
      // callback; no worker blocks on the scheduling cycle.
      return park_quantum_task(cont, task, ready);
    }
    const double exec_wall_start =
        cont->trace ? telemetry_.tracer().wall_now_us() : 0.0;
    api::Result<TaskResult> executed = task.kind == workflow::TaskKind::kQuantum
                                           ? run_quantum_immediate(state, task, ready)
                                           : run_classical_task(task, ready);
    if (!executed.ok()) {
      return settle_task_failure(cont, task.name, executed.status());
    }
    if (cont->trace) {
      cont->trace->record(telemetry_.tracer().span(
          task.kind == workflow::TaskKind::kQuantum ? "qpu_exec" : "task_classical",
          executed->start, executed->end, exec_wall_start,
          "resource=" + executed->resource));
    }
    record_task_result(*cont, node, *std::move(executed));
  } catch (const std::exception& e) {
    return settle_task_failure(cont, task.name, api::Internal(e.what()));
  }
  return StepOutcome::kProgress;
}

std::uint64_t Qonductor::calibration_fingerprint() const {
  // FNV-style combine over per-backend calibration cycles: any single
  // recalibration moves the fingerprint and invalidates the prep cache.
  std::uint64_t fp = 1469598103934665603ULL;
  for (const auto& backend : fleet_.backends) {
    fp ^= backend->calibration().cycle + 0x9e3779b97f4a7c15ULL + (fp << 6) + (fp >> 2);
  }
  return fp;
}

std::shared_ptr<const QuantumTaskPrep> Qonductor::prepare_quantum_task(
    const workflow::HybridTask& task) const {
  // Pure function of the (immutable) circuit, the backends and their
  // calibrations — so a burst of runs of one image shares a single prep
  // instead of re-transpiling per run. Keyed by the task's address: the
  // registry is append-only, so task addresses are stable and unique.
  const std::uint64_t fingerprint = calibration_fingerprint();
  {
    MutexLock lock(prep_cache_mutex_);
    if (fingerprint != prep_cache_fingerprint_) {
      prep_cache_.clear();  // fleet recalibrated: every estimate is stale
      prep_cache_order_.clear();
      prep_cache_fingerprint_ = fingerprint;
    }
    const auto it = prep_cache_.find(&task);
    if (it != prep_cache_.end()) {
      prep_cache_hits_->inc();
      return it->second;
    }
  }
  prep_cache_misses_->inc();

  auto prep = std::make_shared<QuantumTaskPrep>();
  prep->transpiled.reserve(fleet_.backends.size());
  for (const auto& backend : fleet_.backends) {
    prep->transpiled.push_back(transpiler::transpile(task.circ, *backend));
    const auto& t = prep->transpiled.back();
    const auto sig = mitigation::compute_signature(
        task.mitigation, static_cast<std::size_t>(task.circ.num_qubits()),
        static_cast<std::size_t>(t.circuit.depth()), t.circuit.two_qubit_gate_count(),
        static_cast<std::size_t>(t.circuit.num_clbits()),
        backend->calibration().mean_gate_error_2q(), task.accelerator);
    prep->est_fidelity.push_back(estimator::predicted_fidelity(t.circuit, *backend, sig));
    prep->est_exec_seconds.push_back(
        transpiler::job_quantum_runtime(t.schedule, task.shots, *backend) *
        sig.quantum_runtime_multiplier);
  }

  MutexLock lock(prep_cache_mutex_);
  if (fingerprint != prep_cache_fingerprint_) {
    // Recalibrated while we were transpiling: serve this prep to the
    // caller (its estimates matched the inputs it saw) but don't cache it.
    return prep;
  }
  // Concurrent executors may have prepared the same task; keep the first.
  const auto [it, inserted] = prep_cache_.emplace(&task, std::move(prep));
  if (inserted) {
    prep_cache_order_.push_back(&task);
    while (prep_cache_.size() > kPrepCacheCapacity) {
      // The registry is unbounded; the cache is not. Evict oldest first.
      prep_cache_.erase(prep_cache_order_.front());
      prep_cache_order_.pop_front();
    }
  }
  return it->second;
}

TaskResult Qonductor::execute_quantum_locked(const workflow::HybridTask& task,
                                             const QuantumTaskPrep& prep, std::size_t q,
                                             double ready_at, double not_before) {
  const auto& backend = *fleet_.backends[q];
  const auto& chosen = prep.transpiled[q];

  TaskResult result;
  result.name = task.name;
  result.kind = workflow::TaskKind::kQuantum;
  result.resource = backend.name();
  result.start = std::max({ready_at, qpu_available_at_[q], not_before});
  result.end = result.start + prep.est_exec_seconds[q];
  qpu_available_at_[q] = result.end;

  // Count active qubits to decide between exact trajectory simulation and
  // the analytic ground-truth model.
  std::vector<bool> active(static_cast<std::size_t>(chosen.circuit.num_qubits()), false);
  int n_active = 0;
  for (const auto& g : chosen.circuit.gates()) {
    for (int i = 0; i < g.arity(); ++i) {
      if (!active[static_cast<std::size_t>(g.qubit(i))]) {
        active[static_cast<std::size_t>(g.qubit(i))] = true;
        ++n_active;
      }
    }
  }
  const auto sig = mitigation::compute_signature(
      task.mitigation, static_cast<std::size_t>(task.circ.num_qubits()),
      static_cast<std::size_t>(chosen.circuit.depth()), chosen.circuit.two_qubit_gate_count(),
      static_cast<std::size_t>(chosen.circuit.num_clbits()),
      backend.calibration().mean_gate_error_2q(), task.accelerator);
  if (n_active <= config_.trajectory_width_limit && !sig.cuts_circuit) {
    sim::TrajectoryOptions opts;
    opts.delay_dephasing_residual = sig.delay_dephasing_residual;
    result.counts = sim::run_noisy(chosen.circuit, backend, task.shots, rng_, hidden_, opts);
    const double raw =
        sim::hellinger_fidelity(result.counts, sim::ideal_distribution(task.circ));
    result.fidelity = mitigation::mitigated_fidelity(raw, sig);
  } else {
    result.fidelity = estimator::executed_fidelity(chosen.circuit, backend, sig, hidden_,
                                                   1.08, task.shots, rng_);
  }
  result.cost_dollars = estimator::job_cost_dollars(
      prep.est_exec_seconds[q],
      sig.classical_preprocess_seconds + sig.classical_postprocess_seconds, task.accelerator,
      config_.plan_config.prices);
  advance_fleet_clock(result.end);
  publish_fleet_state();
  return result;
}

StepOutcome Qonductor::park_quantum_task(const std::shared_ptr<RunContinuation>& cont,
                                         const workflow::HybridTask& task,
                                         double ready_at) {
  const std::shared_ptr<api::RunState>& state = cont->state;
  // Effective per-run QoS: fidelity_weight was resolved at invoke().
  const api::JobPreferences& prefs = state->preferences;
  std::shared_ptr<const QuantumTaskPrep> prep = prepare_quantum_task(task);

  auto pending = std::make_shared<PendingQuantumTask>();
  pending->run = state->id;
  pending->task_name = task.name;
  pending->qubits = task.circ.num_qubits();
  pending->shots = task.shots;
  pending->ready_at = ready_at;
  pending->enqueued_at = fleetNow();
  // Resolved by effective_preferences() at invoke(): always set here.
  pending->fidelity_weight = *prefs.fidelity_weight;
  pending->deadline_seconds = prefs.deadline_seconds;
  pending->priority = prefs.priority;
  pending->est_fidelity = prep->est_fidelity;
  pending->est_exec_seconds = prep->est_exec_seconds;
  if (cont->trace) {
    // Request-half fields: the scheduler thread reads them under the same
    // happens-before as the rest (the queue's lock hand-off) and records
    // queue_wait / cycle-stage spans into the ring before settlement.
    pending->trace = cont->trace;
    pending->enqueued_wall_us = telemetry_.tracer().wall_now_us();
    cont->trace->record(telemetry_.tracer().point(
        "park", pending->enqueued_at,
        "task=" + task.name + " priority=" + api::priority_name(prefs.priority)));
  }
  if (Logger::enabled(LogLevel::kDebug)) {
    orch_log().debug("quantum task parked",
                     {{"run", state->id},
                      {"task", task.name},
                      {"priority", api::priority_name(prefs.priority)}});
  }

  // Expose the parked task to cancel(): failing it and pulling it out of
  // the queue resumes the run immediately instead of at dispatch. fail()
  // is first-writer-wins, so a racing cycle completion is a no-op.
  {
    MutexLock lock(state->mutex);
    if (state->cancel_requested) {
      cont->result.status = api::RunStatus::kCancelled;
      cont->result.error = api::Cancelled("run cancelled by client");
    } else {
      state->unpark = [service = std::weak_ptr<SchedulerService>(scheduler_service_),
                       pending] {
        pending->fail(api::Cancelled("run cancelled while parked in the pending queue"),
                      pending->enqueued_at);
        if (auto live = service.lock()) live->remove_pending(pending);
      };
    }
  }
  if (!cont->result.error.ok()) return settle_run(cont);

  // Park context before the settlement callback goes live: the instant
  // on_settled is registered, a racing settlement (cycle dispatch, cancel,
  // queue close) may resume the continuation on another worker — nothing
  // below this point may touch `cont` except through the engine.
  cont->parked = pending;
  cont->parked_prep = std::move(prep);
  cont->parked_ready = ready_at;
  pending->on_settled([this, cont] { engine_->resume(cont); });

  // Non-blocking hand-off: a full queue waitlists the task (promoted into
  // the queue FIFO-by-priority as cycles free capacity) instead of blocking
  // this engine worker — one flooded queue must not convoy the whole
  // event-driven engine.
  const PendingQueue::Offer offer = scheduler_service_->offer(pending);
  if (offer == PendingQueue::Offer::kClosed) {
    // The closing queue rejected the offer: settle the task sideways so the
    // resume event fires. If a concurrent cancel() settled it first, the
    // cancel verdict stands (first writer wins) and the run ends
    // kCancelled as cancel()'s true return promised.
    pending->fail(api::Unavailable("park_quantum_task: scheduler service is shutting down"),
                  pending->enqueued_at);
    return StepOutcome::kParked;
  }
  if (offer == PendingQueue::Offer::kWaitlisted) {
    // Rate-limited: under sustained overload every park lands here, and
    // per-event warn lines would convoy the engine workers on the logging
    // mutex — the very convoy the waitlist exists to avoid.
    static LogRateLimiter waitlist_limiter(100);
    if (std::uint64_t suppressed = 0;
        Logger::enabled(LogLevel::kWarn) && waitlist_limiter.allow(&suppressed)) {
      orch_log().warn("pending queue full, task waitlisted",
                      {{"run", pending->run},
                       {"task", pending->task_name},
                       {"suppressed", suppressed}});
    }
  }
  if (pending->settled()) {
    // cancel() fired between installing the hook and the push, so its
    // queue removal was a no-op and we just enqueued a settled ghost:
    // reclaim the slot before it counts toward thresholds/capacity.
    scheduler_service_->remove_pending(pending);
  }
  return StepOutcome::kParked;
}

api::Result<TaskResult> Qonductor::run_quantum_immediate(
    const std::shared_ptr<api::RunState>& state, const workflow::HybridTask& task,
    double ready_at) {
  const RunId run = state->id;
  // Effective per-run QoS: fidelity_weight was resolved at invoke().
  const api::JobPreferences& prefs = state->preferences;
  const std::shared_ptr<const QuantumTaskPrep> prep = prepare_quantum_task(task);

  // A single-job scheduling cycle inline, with queue waits measured
  // relative to the task's own ready time. Reservation windows expire
  // against the monotone fleet-clock frontier only — one job's late DAG
  // ready time must not release a window early for every concurrent run.
  MutexLock lock(engine_mutex_);
  expire_reservations(fleet_clock_.load(std::memory_order_relaxed));
  if (prefs.deadline_seconds) {
    // Dispatch-time deadline check, mirroring the batch path: dispatch
    // happens at the fleet frontier (or the task's ready time, whichever
    // is later), and a task at or past its deadline must not consume a QPU
    // — dispatching exactly at the deadline leaves zero slack, the same
    // inclusive boundary the submit-time admission and cycle expiry use.
    const double dispatch_at =
        std::max(ready_at, fleet_clock_.load(std::memory_order_relaxed));
    if (*prefs.deadline_seconds <= dispatch_at) {
      return api::DeadlineExceeded(
          "run_quantum_immediate: task '" + task.name + "' missed its deadline (t=" +
          std::to_string(*prefs.deadline_seconds) + " s, dispatched at t=" +
          std::to_string(dispatch_at) + " s)");
    }
  }
  sched::SchedulingInput input;
  input.qpus = snapshot_qpu_states_locked(ready_at);
  sched::QuantumJob job;
  job.id = run;
  job.qubits = task.circ.num_qubits();
  job.shots = task.shots;
  job.fidelity_weight = *prefs.fidelity_weight;  // resolved at invoke()
  job.est_fidelity = prep->est_fidelity;
  job.est_exec_seconds = prep->est_exec_seconds;
  input.jobs.push_back(std::move(job));

  sched::SchedulerConfig scheduler;
  scheduler.fidelity_weight = config_.fidelity_weight;
  scheduler.nsga2.seed = rng_();
  const auto decision = sched::schedule_cycle(input, scheduler);
  if (decision.assignment.empty() || decision.assignment[0] < 0) {
    return api::ResourceExhausted("run_quantum_immediate: task '" + task.name +
                                  "' fits no online QPU in the fleet");
  }
  return execute_quantum_locked(task, *prep,
                                static_cast<std::size_t>(decision.assignment[0]),
                                ready_at, 0.0);
}

api::Result<TaskResult> Qonductor::run_classical_task(const workflow::HybridTask& task,
                                                      double ready_at) {
  const int node = sched::schedule_classical(nodes_, task.request);
  if (node < 0) {
    return api::ResourceExhausted("run_classical_task: no classical node fits '" +
                                  task.name + "'");
  }
  TaskResult result;
  result.name = task.name;
  result.kind = workflow::TaskKind::kClassical;
  result.resource = nodes_[static_cast<std::size_t>(node)].name;
  result.start = ready_at;  // abundant classical capacity: no queueing
  result.end = ready_at + task.estimated_seconds / mitigation::accelerator_speedup(task.accelerator);
  result.cost_dollars = estimator::job_cost_dollars(0.0, result.end - result.start,
                                                    task.accelerator,
                                                    config_.plan_config.prices);
  MutexLock lock(engine_mutex_);
  advance_fleet_clock(result.end);
  return result;
}

}  // namespace qon::core
