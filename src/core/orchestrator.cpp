#include "core/orchestrator.hpp"

#include <algorithm>
#include <stdexcept>

#include "estimator/execution_model.hpp"
#include "simulator/metrics.hpp"
#include "transpiler/transpiler.hpp"

namespace qon::core {

const char* workflow_status_name(WorkflowStatus status) {
  switch (status) {
    case WorkflowStatus::kPending: return "pending";
    case WorkflowStatus::kRunning: return "running";
    case WorkflowStatus::kCompleted: return "completed";
    case WorkflowStatus::kFailed: return "failed";
  }
  return "?";
}

Qonductor::Qonductor(QonductorConfig config)
    : config_(config),
      rng_(config.seed),
      hidden_(config.seed ^ 0x9d17ULL, config.hidden_sigma),
      fleet_(qpu::make_ibm_like_fleet(config.num_qpus, config.seed ^ 0xf1ee7ULL)),
      nodes_(sched::make_node_pool(config.classical_standard_nodes,
                                   config.classical_highend_nodes,
                                   config.classical_fpga_nodes)),
      monitor_(config.replicated_monitor) {
  templates_ = fleet_.template_backends();
  qpu_available_at_.assign(fleet_.backends.size(), 0.0);
  publish_fleet_state();
}

void Qonductor::publish_fleet_state() {
  for (std::size_t q = 0; q < fleet_.backends.size(); ++q) {
    const auto& backend = *fleet_.backends[q];
    QpuInfo info;
    info.name = backend.name();
    info.qubits = backend.num_qubits();
    info.queue_wait_seconds = qpu_available_at_[q];
    info.mean_gate_error_2q = backend.calibration().mean_gate_error_2q();
    info.calibration_cycle = backend.calibration().cycle;
    monitor_.update_qpu(info);
  }
}

workflow::ImageId Qonductor::createWorkflow(const std::string& name,
                                            std::vector<workflow::HybridTask> tasks,
                                            const std::string& yaml_config) {
  if (tasks.empty()) throw std::invalid_argument("createWorkflow: no tasks");
  yaml::Node config = yaml_config.empty() ? yaml::Node() : yaml::parse(yaml_config);
  return registry_.register_image(name, workflow::chain_workflow(std::move(tasks)),
                                  std::move(config));
}

workflow::ImageId Qonductor::deploy(workflow::ImageId image) {
  const auto& img = registry_.get(image);  // throws on unknown image
  // Validate quantum tasks against the fleet (client QPU-size constraints).
  for (workflow::TaskId t = 0; t < img.dag.size(); ++t) {
    const auto& task = img.dag.task(t);
    if (task.kind != workflow::TaskKind::kQuantum) continue;
    bool fits = false;
    for (const auto& backend : fleet_.backends) {
      if (task.circ.num_qubits() <= backend->num_qubits()) fits = true;
    }
    if (!fits) {
      throw std::invalid_argument("deploy: task '" + task.name + "' fits no QPU");
    }
  }
  deployed_[image] = true;
  return image;
}

estimator::PlanSet Qonductor::estimateResources(const circuit::Circuit& circ) const {
  return estimator::generate_resource_plans(circ, templates_, config_.plan_config);
}

sched::ScheduleDecision Qonductor::generateSchedule(const sched::SchedulingInput& input) const {
  sched::SchedulerConfig scheduler;
  scheduler.fidelity_weight = config_.fidelity_weight;
  return sched::schedule_cycle(input, scheduler);
}

TaskResult Qonductor::run_quantum_task(const workflow::HybridTask& task, double ready_at) {
  // 1. Single-job scheduling cycle across the fleet (queue waits = current
  //    availability relative to the task's ready time).
  sched::SchedulingInput input;
  for (std::size_t q = 0; q < fleet_.backends.size(); ++q) {
    sched::QpuState state;
    state.name = fleet_.backends[q]->name();
    state.size = fleet_.backends[q]->num_qubits();
    state.queue_wait_seconds = std::max(0.0, qpu_available_at_[q] - ready_at);
    input.qpus.push_back(state);
  }
  sched::QuantumJob job;
  job.id = next_run_;
  job.qubits = task.circ.num_qubits();
  job.shots = task.shots;

  std::vector<transpiler::TranspileResult> transpiled;
  transpiled.reserve(fleet_.backends.size());
  for (const auto& backend : fleet_.backends) {
    transpiled.push_back(transpiler::transpile(task.circ, *backend));
    const auto& t = transpiled.back();
    const auto sig = mitigation::compute_signature(
        task.mitigation, static_cast<std::size_t>(task.circ.num_qubits()),
        static_cast<std::size_t>(t.circuit.depth()), t.circuit.two_qubit_gate_count(),
        static_cast<std::size_t>(t.circuit.num_clbits()),
        backend->calibration().mean_gate_error_2q(), task.accelerator);
    job.est_fidelity.push_back(estimator::predicted_fidelity(t.circuit, *backend, sig));
    job.est_exec_seconds.push_back(transpiler::job_quantum_runtime(t.schedule, task.shots, *backend) *
                                   sig.quantum_runtime_multiplier);
  }
  input.jobs.push_back(job);

  sched::SchedulerConfig scheduler;
  scheduler.fidelity_weight = config_.fidelity_weight;
  scheduler.nsga2.seed = rng_();
  const auto decision = sched::schedule_cycle(input, scheduler);
  if (decision.assignment.empty() || decision.assignment[0] < 0) {
    throw std::runtime_error("run_quantum_task: no QPU available for '" + task.name + "'");
  }
  const auto q = static_cast<std::size_t>(decision.assignment[0]);
  const auto& backend = *fleet_.backends[q];
  const auto& chosen = transpiled[q];

  // 2. Execute on the chosen backend.
  TaskResult result;
  result.name = task.name;
  result.kind = workflow::TaskKind::kQuantum;
  result.resource = backend.name();
  result.start = std::max(ready_at, qpu_available_at_[q]);
  result.end = result.start + job.est_exec_seconds[q];
  qpu_available_at_[q] = result.end;

  // Count active qubits to decide between exact trajectory simulation and
  // the analytic ground-truth model.
  std::vector<bool> active(static_cast<std::size_t>(chosen.circuit.num_qubits()), false);
  int n_active = 0;
  for (const auto& g : chosen.circuit.gates()) {
    for (int i = 0; i < g.arity(); ++i) {
      if (!active[static_cast<std::size_t>(g.qubit(i))]) {
        active[static_cast<std::size_t>(g.qubit(i))] = true;
        ++n_active;
      }
    }
  }
  const auto sig = mitigation::compute_signature(
      task.mitigation, static_cast<std::size_t>(task.circ.num_qubits()),
      static_cast<std::size_t>(chosen.circuit.depth()), chosen.circuit.two_qubit_gate_count(),
      static_cast<std::size_t>(chosen.circuit.num_clbits()),
      backend.calibration().mean_gate_error_2q(), task.accelerator);
  if (n_active <= config_.trajectory_width_limit && !sig.cuts_circuit) {
    sim::TrajectoryOptions opts;
    opts.delay_dephasing_residual = sig.delay_dephasing_residual;
    result.counts = sim::run_noisy(chosen.circuit, backend, task.shots, rng_, hidden_, opts);
    const double raw =
        sim::hellinger_fidelity(result.counts, sim::ideal_distribution(task.circ));
    result.fidelity = mitigation::mitigated_fidelity(raw, sig);
  } else {
    result.fidelity = estimator::executed_fidelity(chosen.circuit, backend, sig, hidden_,
                                                   1.08, task.shots, rng_);
  }
  result.cost_dollars = estimator::job_cost_dollars(
      job.est_exec_seconds[q],
      sig.classical_preprocess_seconds + sig.classical_postprocess_seconds, task.accelerator,
      config_.plan_config.prices);
  publish_fleet_state();
  return result;
}

TaskResult Qonductor::run_classical_task(const workflow::HybridTask& task, double ready_at) {
  const int node = sched::schedule_classical(nodes_, task.request);
  if (node < 0) {
    throw std::runtime_error("run_classical_task: no node fits '" + task.name + "'");
  }
  TaskResult result;
  result.name = task.name;
  result.kind = workflow::TaskKind::kClassical;
  result.resource = nodes_[static_cast<std::size_t>(node)].name;
  result.start = ready_at;  // abundant classical capacity: no queueing
  result.end = ready_at + task.estimated_seconds / mitigation::accelerator_speedup(task.accelerator);
  result.cost_dollars = estimator::job_cost_dollars(0.0, result.end - result.start,
                                                    task.accelerator,
                                                    config_.plan_config.prices);
  return result;
}

RunId Qonductor::invoke(workflow::ImageId image) {
  const auto it = deployed_.find(image);
  if (it == deployed_.end() || !it->second) {
    throw std::invalid_argument("invoke: image not deployed");
  }
  const auto& img = registry_.get(image);
  const RunId run = next_run_++;
  monitor_.set_workflow_status(run, workflow_status_name(WorkflowStatus::kRunning));

  WorkflowResult result;
  result.run = run;
  result.status = WorkflowStatus::kRunning;
  std::vector<double> finish(img.dag.size(), 0.0);
  try {
    for (const workflow::TaskId t : img.dag.topological_order()) {
      double ready = 0.0;
      for (const workflow::TaskId dep : img.dag.dependencies(t)) {
        ready = std::max(ready, finish[dep]);
      }
      const auto& task = img.dag.task(t);
      TaskResult tr = task.kind == workflow::TaskKind::kQuantum
                          ? run_quantum_task(task, ready)
                          : run_classical_task(task, ready);
      finish[t] = tr.end;
      result.makespan_seconds = std::max(result.makespan_seconds, tr.end);
      result.total_cost_dollars += tr.cost_dollars;
      if (tr.kind == workflow::TaskKind::kQuantum) {
        result.min_fidelity = std::min(result.min_fidelity, tr.fidelity);
      }
      result.tasks.push_back(std::move(tr));
    }
    result.status = WorkflowStatus::kCompleted;
  } catch (const std::exception&) {
    result.status = WorkflowStatus::kFailed;
  }
  monitor_.set_workflow_status(run, workflow_status_name(result.status));
  runs_[run] = std::move(result);
  return run;
}

WorkflowStatus Qonductor::workflowStatus(RunId run) const {
  const auto it = runs_.find(run);
  if (it == runs_.end()) throw std::out_of_range("workflowStatus: unknown run");
  return it->second.status;
}

const WorkflowResult& Qonductor::workflowResults(RunId run) const {
  const auto it = runs_.find(run);
  if (it == runs_.end()) throw std::out_of_range("workflowResults: unknown run");
  return it->second;
}

std::vector<workflow::ImageId> Qonductor::listImages() const { return registry_.list(); }

}  // namespace qon::core
