#pragma once
// Event-driven run engine: continuation-based DAG execution so thousands of
// in-flight runs are driven by a handful of worker threads.
//
// The pre-engine executor dedicated one blocked thread to every in-flight
// run: in batch mode the thread parked inside PendingQuantumTask::await()
// until a scheduling cycle dispatched the task, so `executor_threads`
// (default 2) bounded how many jobs a cycle could even see. The engine
// inverts that model. Each run is an explicit state machine — a
// RunContinuation holding the next-DAG-node cursor, per-node finish times
// and the accumulated WorkflowResult — and a small worker pool drives those
// machines through an event queue:
//
//   - submit() posts the run's first step event;
//   - a worker pops an event and advances the run by one DAG node via the
//     owner-provided step function;
//   - a classical task (or an immediate-mode quantum task) executes inside
//     the step and the worker reposts the continuation (kProgress), so
//     concurrent runs interleave fairly instead of one run monopolizing a
//     worker;
//   - a batch-mode quantum task *registers a completion callback* with the
//     scheduler service's pending queue and returns kParked — no thread
//     blocks. When the scheduling cycle settles the task (dispatch, filter,
//     deadline expiry, cancel), the callback posts a resume() event and any
//     worker picks the run back up;
//   - kFinished retires the run (the stepper has already settled its
//     record).
//
// One event per run is in flight at a time: submit posts one, every step
// posts at most one follow-up, and a parked run's only path back is the
// single resume() its settlement callback fires — so a continuation is
// never stepped concurrently and its fields need no lock of their own.
//
// Shutdown contract (mirrors the old executor pool): shutdown() closes
// submissions — submit() returns false, the caller fails the run
// UNAVAILABLE — then waits until every live run drains. Parked runs drain
// too: the scheduler service stays up while the engine shuts down, its
// linger/flush cycles settle the parked tasks, and the resulting resume
// events run to completion on the still-live workers. Only then are the
// workers joined.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "api/run_handle.hpp"
#include "common/thread_safety.hpp"
#include "api/types.hpp"
#include "core/pending_queue.hpp"
#include "workflow/registry.hpp"

namespace qon::obs {
// Per-run span ring (obs/trace.hpp); continuations carry it as an opaque
// pointer so the engine layer stays free of obs includes.
class RunTraceBuffer;
}  // namespace qon::obs

namespace qon::core {

// Per-backend transpile + estimate bundle (defined in orchestrator.hpp); a
// parked continuation pins the prep its resume step will execute with.
struct QuantumTaskPrep;

/// What one step of a run's state machine did.
enum class StepOutcome {
  kProgress,  ///< one node finished; the engine reposts the continuation
  kParked,    ///< waiting on an external completion; resume() brings it back
  kFinished,  ///< the run reached a terminal state (stepper settled it)
};

/// The explicit state machine of one in-flight run. Owned by the engine's
/// event queue between steps; only ever touched by the single in-flight
/// event, so the fields are unsynchronized by design (see header comment).
struct RunContinuation {
  std::shared_ptr<api::RunState> state;
  const workflow::WorkflowImage* image = nullptr;
  std::vector<workflow::TaskId> order;  ///< topological execution order
  std::size_t cursor = 0;               ///< next node in `order`
  std::vector<double> finish;           ///< per-node finish times (fleet clock)
  api::WorkflowResult result;           ///< accumulated execution report
  bool started = false;                 ///< kPending -> kRunning happened

  /// Per-run span ring, created at submit time by the orchestrator's
  /// tracer (null when tracing is off). Shares the continuation's
  /// synchronization story: only the single in-flight event records into
  /// it through this pointer, and the buffer itself locks internally for
  /// the concurrent getRunTrace reader.
  std::shared_ptr<obs::RunTraceBuffer> trace;

  // Park context: set before the quantum task enters the pending queue and
  // collected by the resume step. `parked` doubles as the "this step is a
  // resume" flag.
  std::shared_ptr<PendingQuantumTask> parked;
  std::shared_ptr<const QuantumTaskPrep> parked_prep;
  double parked_ready = 0.0;  ///< DAG-dependency ready time of the parked node

  /// Latest virtual instant produced by the run's own events that is not
  /// already covered by result.makespan_seconds — e.g. the scheduling-cycle
  /// verdict time of a task that failed without executing. settle_run()
  /// derives finished_at from the run's own events instead of the fleet
  /// frontier, which moves with unrelated runs' executions.
  double settle_hint = 0.0;
};

/// The worker pool + event queue driving every run's state machine. The
/// step function is supplied by the owner (the orchestrator; tests use
/// fakes) and must not throw — task-level failures are part of the run's
/// state machine, not the engine's.
class RunEngine {
 public:
  using Step = std::function<StepOutcome(const std::shared_ptr<RunContinuation>&)>;

  /// Spawns `workers` threads (min 1) executing `step` on queued events.
  /// `on_event`, when set, is invoked by the dispatching worker once per
  /// popped event BEFORE the step runs, outside the engine lock — the
  /// orchestrator stamps its engine liveness heartbeat here, so a step
  /// function that wedges is already past its final beat and ages out.
  RunEngine(std::size_t workers, Step step, std::function<void()> on_event = {});
  ~RunEngine();

  RunEngine(const RunEngine&) = delete;
  RunEngine& operator=(const RunEngine&) = delete;

  /// Registers the run as live and posts its first step event. False once
  /// shutdown() has begun — the run was not accepted and never will be.
  bool submit(std::shared_ptr<RunContinuation> run);

  /// Posts a resume event for a parked run. Accepted even during the
  /// shutdown drain (a live run must always be able to come back) — only
  /// new submissions are refused.
  void resume(std::shared_ptr<RunContinuation> run);

  /// Closes submissions, waits until every live run reaches kFinished
  /// (parked runs return via resume() as their waits settle), and joins the
  /// workers. Idempotent and safe to call concurrently.
  void shutdown();

  std::size_t workers() const { return workers_.size(); }
  /// Runs submitted and not yet finished — parked runs count.
  std::size_t live_runs() const;
  /// Largest live_runs() ever observed: the decoupling statistic — with the
  /// engine it can exceed the worker count by orders of magnitude.
  std::size_t peak_live_runs() const;
  /// Step events dispatched so far (submits + reposts + resumes).
  std::uint64_t events_dispatched() const;

  /// One coherent sample of the three statistics above. The individual
  /// accessors each take the lock separately, so reading them back-to-back
  /// can observe e.g. a peak smaller than the concurrently-updated live
  /// count; registry gauges snapshot through here instead.
  struct EngineStats {
    std::size_t live_runs = 0;
    std::size_t peak_live_runs = 0;
    std::uint64_t events_dispatched = 0;
    /// Events queued and not yet popped — the engine's "has work" signal.
    /// Distinct from live_runs: a parked run is live but demands nothing of
    /// the workers, so the health watchdog keys its busy-probe off this.
    std::size_t queue_depth = 0;
  };
  EngineStats stats() const;

 private:
  void worker_loop() EXCLUDES(mutex_);
  void post(std::shared_ptr<RunContinuation> run) EXCLUDES(mutex_);

  const Step step_;
  /// Liveness hook, called once per dispatched event outside mutex_.
  const std::function<void()> on_event_;

  mutable Mutex mutex_{LockRank::kRunEngine, "RunEngine::mutex_"};
  CondVar cv_;          ///< workers waiting for events
  CondVar drained_cv_;  ///< shutdown() waiting for live_ == 0
  std::deque<std::shared_ptr<RunContinuation>> queue_ GUARDED_BY(mutex_);
  std::size_t live_ GUARDED_BY(mutex_) = 0;
  std::size_t peak_live_ GUARDED_BY(mutex_) = 0;
  std::uint64_t events_ GUARDED_BY(mutex_) = 0;
  bool closed_ GUARDED_BY(mutex_) = false;

  /// Serializes concurrent shutdown() calls; never held together with
  /// mutex_ (the drain wait finishes before the join begins).
  Mutex join_mutex_{LockRank::kShutdownJoin, "RunEngine::join_mutex_"};
  /// Declared last: no member may be destroyed while a worker still runs.
  std::vector<std::thread> workers_;
};

}  // namespace qon::core
