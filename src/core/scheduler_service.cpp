#include "core/scheduler_service.hpp"

#include <algorithm>
#include <utility>

#include "common/stopwatch.hpp"

namespace qon::core {

api::Status validate_scheduler_config(const SchedulerServiceConfig& config) {
  if (config.queue_threshold == 0) {
    return api::InvalidArgument("scheduler config: queue_threshold must be > 0");
  }
  if (!(config.interval_seconds > 0.0)) {
    return api::InvalidArgument("scheduler config: interval_seconds must be > 0");
  }
  if (config.linger.count() < 0) {
    return api::InvalidArgument("scheduler config: linger must be >= 0");
  }
  if (config.queue_capacity != 0 && config.queue_capacity < config.queue_threshold) {
    // The queue could never reach the threshold: every cycle would silently
    // degrade to a timer fire with a full interval of virtual queue wait.
    return api::InvalidArgument(
        "scheduler config: queue_capacity must be 0 (unbounded) or >= queue_threshold");
  }
  return api::Status::Ok();
}

api::SchedulerConfigView to_config_view(const SchedulerServiceConfig& config) {
  api::SchedulerConfigView view;
  view.mode = config.mode;
  view.queue_threshold = config.queue_threshold;
  view.interval_seconds = config.interval_seconds;
  view.queue_capacity = config.queue_capacity;
  view.max_batch_size = config.max_batch_size;
  return view;
}

SchedulerService::SchedulerService(SchedulerServiceConfig config, std::uint64_t seed,
                                   sched::SchedulerConfig cycle_config,
                                   SchedulerServiceHooks hooks)
    : config_(config),
      cycle_config_(cycle_config),
      hooks_(std::move(hooks)),
      trigger_(config.queue_threshold, config.interval_seconds),
      rng_(seed),
      queue_(config.queue_capacity) {
  thread_ = std::thread([this] { run_loop(); });
}

SchedulerService::~SchedulerService() { shutdown(); }

bool SchedulerService::enqueue(const std::shared_ptr<PendingQuantumTask>& task) {
  return queue_.push(task);
}

void SchedulerService::shutdown() {
  queue_.close();
  std::lock_guard<std::mutex> lock(join_mutex_);
  if (thread_.joinable()) thread_.join();
}

api::SchedulerStats SchedulerService::stats() const {
  api::SchedulerStats snapshot;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.queue_depth = queue_.size();
  snapshot.queue_high_watermark = queue_.high_watermark();
  return snapshot;
}

void SchedulerService::run_loop() {
  for (;;) {
    const auto wake = queue_.wait_for_batch(trigger_.queue_threshold(), config_.linger);
    if (wake == PendingQueue::Wake::kClosed) break;

    // The wake reason IS the cycle's trigger — re-deriving it from a fresh
    // queue-size read would race late producers.
    double fired_at = hooks_.now();
    api::CycleTrigger fired_by = api::CycleTrigger::kThreshold;
    if (wake == PendingQueue::Wake::kFlush) {
      // Shutdown drain: fire immediately at the current virtual time, no
      // clock warp — the queue must empty, not wait for a deadline.
      fired_by = api::CycleTrigger::kFlush;
    } else if (wake == PendingQueue::Wake::kLinger) {
      fired_by = api::CycleTrigger::kTimer;
      if (!trigger_.should_fire(fired_at, queue_.size())) {
        // Below the threshold and before the deadline on the virtual clock,
        // but the real-time linger elapsed: model the wait as the virtual
        // timer running out (the clock is advanced in run_cycle's snapshot).
        fired_at = std::max(fired_at, trigger_.next_timer_deadline());
      }
    }
    run_cycle(fired_at, fired_by);
  }
}

void SchedulerService::run_cycle(double fired_at, api::CycleTrigger fired_by) {
  Stopwatch cycle_clock;
  auto batch = queue_.take_batch(config_.max_batch_size);
  if (batch.empty()) return;

  // Advance the fleet clock to the fire time and snapshot the QPU states
  // (under the engine lock on the orchestrator side); the frontier may
  // already be past fired_at, so re-read it as the cycle's dispatch time.
  sched::SchedulingInput input;
  input.qpus = hooks_.snapshot_qpus(fired_at);
  const double now = std::max(fired_at, hooks_.now());

  input.jobs.reserve(batch.size());
  for (const auto& item : batch) {
    sched::QuantumJob job;
    job.id = item->run;
    job.qubits = item->qubits;
    job.shots = item->shots;
    job.arrival_time = item->enqueued_at;
    job.est_fidelity = item->est_fidelity;
    job.est_exec_seconds = item->est_exec_seconds;
    input.jobs.push_back(std::move(job));
  }

  auto cycle_config = cycle_config_;
  cycle_config.nsga2.seed = rng_();
  sched::ScheduleDecision decision;
  api::Status cycle_error;
  try {
    decision = sched::schedule_cycle(input, cycle_config);
  } catch (const std::exception& e) {
    // Defensive: config knobs were validated up front, so a throw here is a
    // scheduler bug — fail the whole batch with a typed status rather than
    // leaving executors parked forever.
    cycle_error = api::Internal(std::string("scheduling cycle failed: ") + e.what());
  }

  // Classify the batch first so the cycle is fully accounted in stats_
  // BEFORE any waiter wakes: an executor observing its task dispatched is
  // guaranteed to find the dispatching cycle in getSchedulerStats.
  std::size_t scheduled = 0;
  std::size_t filtered = 0;
  double wait_sum = 0.0;
  std::vector<double> waits;
  waits.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double wait = std::max(0.0, now - batch[i]->enqueued_at);
    wait_sum += wait;
    waits.push_back(wait);
    if (cycle_error.ok() && decision.assignment[i] >= 0) {
      ++scheduled;
    } else if (cycle_error.ok()) {
      ++filtered;
    }
  }
  trigger_.notify_fired(now);

  api::SchedulerCycleInfo info;
  info.fired_at = now;
  info.trigger = fired_by;
  info.batch_size = batch.size();
  info.scheduled = scheduled;
  info.filtered = filtered;
  info.queue_depth_after = queue_.size();
  info.preprocess_seconds = decision.preprocess_seconds;
  info.optimize_seconds = decision.optimize_seconds;
  info.select_seconds = decision.select_seconds;
  info.cycle_latency_seconds = cycle_clock.seconds();
  info.mean_queue_wait_seconds = wait_sum / static_cast<double>(batch.size());

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    info.cycle = ++stats_.cycles;
    stats_.jobs_scheduled += scheduled;
    stats_.jobs_filtered += filtered;
    stats_.max_batch_size_seen = std::max(stats_.max_batch_size_seen, batch.size());
    stats_.recent_cycles.push_back(info);
    if (stats_.recent_cycles.size() > config_.stats_cycle_history) {
      stats_.recent_cycles.erase(stats_.recent_cycles.begin());
    }
    stats_.recent_queue_waits.insert(stats_.recent_queue_waits.end(), waits.begin(),
                                     waits.end());
    if (stats_.recent_queue_waits.size() > config_.stats_wait_history) {
      stats_.recent_queue_waits.erase(
          stats_.recent_queue_waits.begin(),
          stats_.recent_queue_waits.begin() +
              static_cast<std::ptrdiff_t>(stats_.recent_queue_waits.size() -
                                          config_.stats_wait_history));
    }
  }

  // Now wake the executors: assigned tasks proceed to their QPU, filtered
  // jobs fail their run with the typed RESOURCE_EXHAUSTED.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (!cycle_error.ok()) {
      batch[i]->fail(cycle_error, now);
    } else if (decision.assignment[i] < 0) {
      batch[i]->fail(api::ResourceExhausted("scheduling cycle: task '" +
                                            batch[i]->task_name +
                                            "' fits no online QPU in the fleet"),
                     now);
    } else {
      batch[i]->complete(decision.assignment[i], now);
    }
  }
}

}  // namespace qon::core
