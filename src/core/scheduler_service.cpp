#include "core/scheduler_service.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hpp"
#include "common/stopwatch.hpp"

namespace qon::core {

namespace {

const Logger& scheduler_log() {
  static const Logger log("scheduler");
  return log;
}

/// Stage/latency histogram bounds: scheduling cycles run 0.1 ms – seconds
/// depending on batch size and NSGA-II generations.
std::vector<double> stage_bounds() {
  return {0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0};
}

}  // namespace

api::Status validate_scheduler_config(const SchedulerServiceConfig& config) {
  if (config.queue_threshold == 0) {
    return api::InvalidArgument("scheduler config: queue_threshold must be > 0");
  }
  if (!(config.interval_seconds > 0.0)) {
    return api::InvalidArgument("scheduler config: interval_seconds must be > 0");
  }
  if (config.linger.count() < 0) {
    return api::InvalidArgument("scheduler config: linger must be >= 0");
  }
  if (config.queue_capacity != 0 && config.queue_capacity < config.queue_threshold) {
    // The queue could never reach the threshold: every cycle would silently
    // degrade to a timer fire with a full interval of virtual queue wait.
    return api::InvalidArgument(
        "scheduler config: queue_capacity must be 0 (unbounded) or >= queue_threshold");
  }
  if (!(config.aging_seconds >= 0.0)) {  // the negation also rejects NaN
    return api::InvalidArgument(
        "scheduler config: aging_seconds must be >= 0 (0 disables aging)");
  }
  return api::Status::Ok();
}

api::SchedulerConfigView to_config_view(const SchedulerServiceConfig& config) {
  api::SchedulerConfigView view;
  view.mode = config.mode;
  view.queue_threshold = config.queue_threshold;
  view.interval_seconds = config.interval_seconds;
  view.queue_capacity = config.queue_capacity;
  view.max_batch_size = config.max_batch_size;
  view.aging_seconds = config.aging_seconds;
  return view;
}

SchedulerService::SchedulerService(SchedulerServiceConfig config, std::uint64_t seed,
                                   sched::SchedulerConfig cycle_config,
                                   SchedulerServiceHooks hooks, obs::Telemetry* telemetry,
                                   obs::HealthMonitor* health)
    : config_(config),
      cycle_config_(cycle_config),
      hooks_(std::move(hooks)),
      owned_telemetry_(telemetry ? nullptr : std::make_unique<obs::Telemetry>()),
      telemetry_(telemetry ? telemetry : owned_telemetry_.get()),
      cycles_total_(telemetry_->registry().counter(
          "qon_sched_cycles_total", "Scheduling cycles fired (any trigger)")),
      jobs_scheduled_total_(telemetry_->registry().counter(
          "qon_sched_jobs_scheduled_total", "Jobs assigned a QPU by a cycle")),
      jobs_filtered_total_(telemetry_->registry().counter(
          "qon_sched_jobs_filtered_total", "Jobs rejected as fitting no online QPU")),
      jobs_expired_total_(telemetry_->registry().counter(
          "qon_sched_jobs_expired_total", "Jobs failed DEADLINE_EXCEEDED while parked")),
      stats_cycles_dropped_total_(telemetry_->registry().counter(
          "qon_sched_stats_cycles_dropped_total",
          "Cycle records evicted from the bounded recent_cycles ring")),
      stats_waits_dropped_total_(telemetry_->registry().counter(
          "qon_sched_stats_waits_dropped_total",
          "Queue-wait samples evicted from the bounded recent_queue_waits rings")),
      cycle_preprocess_seconds_(telemetry_->registry().histogram(
          "qon_sched_cycle_preprocess_seconds",
          "Wall time of the cycle's preprocessing (filter) stage", stage_bounds())),
      cycle_optimize_seconds_(telemetry_->registry().histogram(
          "qon_sched_cycle_optimize_seconds",
          "Wall time of the cycle's NSGA-II optimization stage", stage_bounds())),
      cycle_select_seconds_(telemetry_->registry().histogram(
          "qon_sched_cycle_select_seconds",
          "Wall time of the cycle's MCDM selection stage", stage_bounds())),
      cycle_latency_seconds_(telemetry_->registry().histogram(
          "qon_sched_cycle_latency_seconds",
          "End-to-end wall time of one scheduling cycle", stage_bounds())),
      trigger_(config.queue_threshold, config.interval_seconds),
      rng_(seed),
      queue_(config.queue_capacity) {
  // Callback gauges poll component state behind its own lock at snapshot
  // time; legal because kPendingQueue/kQueueWaitlist rank above kMetrics.
  // `this` outlives the registry only in the owned-bundle case, but the
  // orchestrator destroys its Telemetry after the service either way.
  auto& registry = telemetry_->registry();
  registry.gauge_fn("qon_sched_queue_depth", "Pending-queue depth right now",
                    [this] { return static_cast<double>(queue_.size()); });
  registry.gauge_fn("qon_sched_queue_high_watermark",
                    "Largest pending-queue depth ever observed",
                    [this] { return static_cast<double>(queue_.high_watermark()); });
  registry.gauge_fn("qon_sched_waitlist_depth",
                    "Capacity-waitlist depth right now",
                    [this] { return static_cast<double>(queue_.waitlist_depth()); });
  registry.gauge_fn("qon_sched_waitlist_high_watermark",
                    "Largest capacity-waitlist depth ever observed",
                    [this] { return static_cast<double>(queue_.waitlist_high_watermark()); });
  registry.counter_fn("qon_sched_waitlist_parks_total",
                      "Offers parked on the capacity waitlist",
                      [this] { return static_cast<double>(queue_.waitlist_parks()); });
  registry.gauge_fn("qon_queue_oldest_wait_seconds",
                    "Virtual-clock age of the oldest parked job (0 when empty)",
                    [this] { return queue_.oldest_wait_seconds(hooks_.now()); });
  if (health != nullptr) {
    registry.counter_fn("qon_health_heartbeats_total",
                        "Liveness heartbeats stamped by the scheduler thread",
                        [this] { return static_cast<double>(cycle_beat_.count()); },
                        R"(component="scheduler")");
    registry.counter_fn("qon_health_heartbeats_total",
                        "Liveness heartbeats stamped by the queue drain path",
                        [this] { return static_cast<double>(drain_beat_.count()); },
                        R"(component="queue")");
    obs::HealthMonitor::WatchdogOptions scheduler_dog;
    scheduler_dog.stall_budget_seconds = config_.scheduler_stall_budget_seconds;
    scheduler_dog.busy = [this] {
      return in_cycle_.load(std::memory_order_relaxed) || queue_.size() > 0;
    };
    health->watch("scheduler", &cycle_beat_, std::move(scheduler_dog));
    obs::HealthMonitor::WatchdogOptions queue_dog;
    queue_dog.stall_budget_seconds = config_.queue_stall_budget_seconds;
    queue_dog.busy = [this] {
      return queue_.size() > 0 || queue_.waitlist_depth() > 0;
    };
    health->watch("queue", &drain_beat_, std::move(queue_dog));
  }
  // Thread start stays LAST: every instrument/watchdog registration above
  // must be visible before the first cycle can beat or be polled.
  thread_ = std::thread([this] { run_loop(); });
}

SchedulerService::~SchedulerService() { shutdown(); }

bool SchedulerService::enqueue(const std::shared_ptr<PendingQuantumTask>& task) {
  return queue_.push(task);
}

PendingQueue::Offer SchedulerService::offer(
    const std::shared_ptr<PendingQuantumTask>& task) {
  return queue_.offer(task);
}

bool SchedulerService::remove_pending(const std::shared_ptr<PendingQuantumTask>& task) {
  return queue_.remove(task);
}

void SchedulerService::shutdown() {
  queue_.close();
  MutexLock lock(join_mutex_);
  if (thread_.joinable()) thread_.join();
}

api::SchedulerStats SchedulerService::stats() const {
  api::SchedulerStats snapshot;
  {
    MutexLock lock(stats_mutex_);
    snapshot = stats_;
  }
  // The aggregate totals live in the metrics registry now; this surface is
  // a view over the same instruments getMetrics exports. Counters are
  // bumped under stats_mutex_ together with the ring appends, so a reader
  // woken by a settlement still finds the settling cycle here.
  snapshot.cycles = cycles_total_->value();
  snapshot.jobs_scheduled = jobs_scheduled_total_->value();
  snapshot.jobs_filtered = jobs_filtered_total_->value();
  snapshot.jobs_expired = jobs_expired_total_->value();
  snapshot.queue_depth = queue_.size();
  snapshot.queue_high_watermark = queue_.high_watermark();
  return snapshot;
}

void SchedulerService::run_loop() {
  for (;;) {
    const auto wake = queue_.wait_for_batch(trigger_.queue_threshold(), config_.linger);
    // Beat once per wake (threshold, linger AND flush), before the cycle:
    // a wedge inside run_cycle ages this beat past the stall budget while
    // in_cycle_ keeps the busy probe true even after take_batch empties
    // the queue.
    cycle_beat_.beat();
    if (wake == PendingQueue::Wake::kClosed) break;
    in_cycle_.store(true, std::memory_order_relaxed);

    // The wake reason IS the cycle's trigger — re-deriving it from a fresh
    // queue-size read would race late producers.
    double fired_at = hooks_.now();
    api::CycleTrigger fired_by = api::CycleTrigger::kThreshold;
    if (wake == PendingQueue::Wake::kFlush) {
      // Shutdown drain: fire immediately at the current virtual time, no
      // clock warp — the queue must empty, not wait for a deadline.
      fired_by = api::CycleTrigger::kFlush;
    } else if (wake == PendingQueue::Wake::kLinger) {
      fired_by = api::CycleTrigger::kTimer;
      if (!trigger_.should_fire(fired_at, queue_.size())) {
        // Below the threshold and before the deadline on the virtual clock,
        // but the real-time linger elapsed: model the wait as the virtual
        // timer running out (the clock is advanced in run_cycle's snapshot).
        fired_at = std::max(fired_at, trigger_.next_timer_deadline());
      }
    }
    run_cycle(fired_at, fired_by);
    in_cycle_.store(false, std::memory_order_relaxed);
  }
}

void SchedulerService::record_queue_wait(const PendingQueue::Item& item, double now,
                                         std::string verdict) const {
  if (!item->trace) return;
  api::TraceSpan span;
  span.name = "queue_wait";
  span.detail = std::move(verdict);
  span.virtual_start = item->enqueued_at;
  span.virtual_end = now;
  span.wall_start_us = item->enqueued_wall_us;
  span.wall_end_us = telemetry_->tracer().wall_now_us();
  item->trace->record(std::move(span));
}

void SchedulerService::fail_expired(const std::vector<PendingQueue::Item>& overdue,
                                    double now) {
  // Callers account the cycle in stats_ BEFORE this wakes any executor: a
  // client that observes its run DEADLINE_EXCEEDED must already find the
  // expiry in getSchedulerStats.
  for (const auto& item : overdue) {
    record_queue_wait(item, now, "expired");
    item->fail(api::DeadlineExceeded(
                   "scheduling cycle: task '" + item->task_name + "' of run " +
                       std::to_string(item->run) + " missed its deadline (t=" +
                       std::to_string(*item->deadline_seconds) +
                       " s, cycle dispatched at t=" + std::to_string(now) + " s)"),
               now);
  }
}

void SchedulerService::append_cycle_locked(api::SchedulerCycleInfo& info) {
  cycles_total_->inc();
  info.cycle = cycles_total_->value();
  stats_.recent_cycles.push_back(info);
  if (stats_.recent_cycles.size() > config_.stats_cycle_history) {
    stats_.recent_cycles.erase(stats_.recent_cycles.begin());
    stats_cycles_dropped_total_->inc();
  }
}

void SchedulerService::record_empty_cycle(double fired_at, api::CycleTrigger fired_by,
                                          std::size_t expired, double latency_seconds) {
  trigger_.notify_fired(fired_at);
  api::SchedulerCycleInfo info;
  info.fired_at = fired_at;
  info.trigger = fired_by;
  info.expired = expired;
  info.queue_depth_after = queue_.size();
  info.cycle_latency_seconds = latency_seconds;
  if (telemetry_->metrics_enabled()) {
    cycle_latency_seconds_->observe(latency_seconds);
  }
  MutexLock lock(stats_mutex_);
  jobs_expired_total_->inc(expired);
  append_cycle_locked(info);
}

void SchedulerService::run_cycle(double fired_at, api::CycleTrigger fired_by) {
  Stopwatch cycle_clock;
  // QoS deadlines are enforced before batch formation: a job that can no
  // longer meet its deadline must not consume a batch slot or a QPU. The
  // overdue items are only *failed* after the cycle is accounted below.
  auto overdue = queue_.take_expired(fired_at);
  auto batch = queue_.take_batch(config_.max_batch_size, fired_at, config_.aging_seconds);
  // The drain heartbeat: this cycle pulled whatever the queue held.
  drain_beat_.beat();
  // Items settled sideways (a cancelled run's task raced a cycle taking
  // it) are dropped; their runs already carry a terminal status.
  const auto settled = [](const PendingQueue::Item& item) { return item->settled(); };
  batch.erase(std::remove_if(batch.begin(), batch.end(), settled), batch.end());
  overdue.erase(std::remove_if(overdue.begin(), overdue.end(), settled), overdue.end());
  if (batch.empty() && overdue.empty()) return;
  if (batch.empty()) {
    // Nothing to dispatch, but the cycle still happened: advance the
    // fleet clock to the fire time (the snapshot is discarded) so expiry
    // verdicts and later cycles observe a monotonic virtual clock — a run
    // failed for missing t=10 must not finish at t=0.
    hooks_.snapshot_qpus(fired_at);
    record_empty_cycle(fired_at, fired_by, overdue.size(), cycle_clock.seconds());
    fail_expired(overdue, fired_at);
    return;
  }

  // Advance the fleet clock to the fire time and snapshot the QPU states
  // (under the engine lock on the orchestrator side); the frontier may
  // already be past fired_at, so re-read it as the cycle's dispatch time.
  sched::SchedulingInput input;
  input.qpus = hooks_.snapshot_qpus(fired_at);
  const double now = std::max(fired_at, hooks_.now());

  // The fleet frontier may have advanced past fired_at while we
  // snapshotted: a batch member whose deadline fell inside that window
  // must fail now rather than execute past its deadline.
  {
    const auto overdue_begin = std::partition(
        batch.begin(), batch.end(), [now](const PendingQueue::Item& item) {
          // Inclusive boundary, matching take_expired and the submit-time
          // admission check: dispatch exactly at the deadline is a miss.
          return !(item->deadline_seconds && *item->deadline_seconds <= now);
        });
    overdue.insert(overdue.end(), overdue_begin, batch.end());
    batch.erase(overdue_begin, batch.end());
    if (batch.empty()) {
      record_empty_cycle(now, fired_by, overdue.size(), cycle_clock.seconds());
      fail_expired(overdue, now);
      return;
    }
  }
  const std::size_t expired = overdue.size();

  input.jobs.reserve(batch.size());
  for (const auto& item : batch) {
    sched::QuantumJob job;
    job.id = item->run;
    job.qubits = item->qubits;
    job.shots = item->shots;
    job.arrival_time = item->enqueued_at;
    // Already resolved against the deployment default by the orchestrator:
    // MCDM selects this job's Pareto point per its own preference.
    job.fidelity_weight = item->fidelity_weight;
    job.est_fidelity = item->est_fidelity;
    job.est_exec_seconds = item->est_exec_seconds;
    input.jobs.push_back(std::move(job));
  }

  auto cycle_config = cycle_config_;
  cycle_config.nsga2.seed = rng_();
  sched::ScheduleDecision decision;
  api::Status cycle_error;
  try {
    decision = sched::schedule_cycle(input, cycle_config);
  } catch (const std::exception& e) {
    // Defensive: config knobs were validated up front, so a throw here is a
    // scheduler bug — fail the whole batch with a typed status rather than
    // leaving executors parked forever.
    cycle_error = api::Internal(std::string("scheduling cycle failed: ") + e.what());
  }

  // Classify the batch first so the cycle is fully accounted in stats_
  // BEFORE any waiter wakes: an executor observing its task dispatched is
  // guaranteed to find the dispatching cycle in getSchedulerStats.
  std::size_t scheduled = 0;
  std::size_t filtered = 0;
  double wait_sum = 0.0;
  std::vector<double> waits;
  std::array<std::vector<double>, api::kNumPriorities> waits_by_priority;
  waits.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double wait = std::max(0.0, now - batch[i]->enqueued_at);
    wait_sum += wait;
    waits.push_back(wait);
    waits_by_priority[static_cast<std::size_t>(batch[i]->priority)].push_back(wait);
    if (cycle_error.ok() && decision.assignment[i] >= 0) {
      ++scheduled;
    } else if (cycle_error.ok()) {
      ++filtered;
    }
  }
  trigger_.notify_fired(now);

  api::SchedulerCycleInfo info;
  info.fired_at = now;
  info.trigger = fired_by;
  info.batch_size = batch.size();
  info.scheduled = scheduled;
  info.filtered = filtered;
  info.expired = expired;
  info.queue_depth_after = queue_.size();
  info.preprocess_seconds = decision.preprocess_seconds;
  info.optimize_seconds = decision.optimize_seconds;
  info.select_seconds = decision.select_seconds;
  info.cycle_latency_seconds = cycle_clock.seconds();
  info.mean_queue_wait_seconds = wait_sum / static_cast<double>(batch.size());

  {
    MutexLock lock(stats_mutex_);
    jobs_scheduled_total_->inc(scheduled);
    jobs_filtered_total_->inc(filtered);
    jobs_expired_total_->inc(expired);
    stats_.max_batch_size_seen = std::max(stats_.max_batch_size_seen, batch.size());
    append_cycle_locked(info);
    const auto append_bounded = [limit = config_.stats_wait_history,
                                 dropped = stats_waits_dropped_total_](
                                    std::vector<double>& history,
                                    const std::vector<double>& samples) {
      history.insert(history.end(), samples.begin(), samples.end());
      if (history.size() > limit) {
        const std::size_t evicted = history.size() - limit;
        history.erase(history.begin(), history.begin() +
                                           static_cast<std::ptrdiff_t>(evicted));
        dropped->inc(evicted);
      }
    };
    append_bounded(stats_.recent_queue_waits, waits);
    for (std::size_t p = 0; p < api::kNumPriorities; ++p) {
      append_bounded(stats_.recent_queue_waits_by_priority[p], waits_by_priority[p]);
    }
  }

  if (telemetry_->metrics_enabled()) {
    cycle_preprocess_seconds_->observe(decision.preprocess_seconds);
    cycle_optimize_seconds_->observe(decision.optimize_seconds);
    cycle_select_seconds_->observe(decision.select_seconds);
    cycle_latency_seconds_->observe(info.cycle_latency_seconds);
  }
  if (Logger::enabled(LogLevel::kDebug)) {
    scheduler_log().debug("cycle complete",
                          {{"cycle", info.cycle},
                           {"trigger", api::cycle_trigger_name(fired_by)},
                           {"batch", batch.size()},
                           {"scheduled", scheduled},
                           {"filtered", filtered},
                           {"expired", expired}});
  }

  // Cycle-stage wall window, reconstructed backwards from this instant:
  // MCDM selection just ended, NSGA-II before it, preprocessing first. Each
  // batch member gets the stage spans of the cycle that decided it — the
  // stages happened at one virtual instant (`now`), so only the wall clock
  // spreads them out.
  const double stages_end_us = telemetry_->tracer().wall_now_us();
  const double select_us = decision.select_seconds * 1e6;
  const double optimize_us = decision.optimize_seconds * 1e6;
  const double preprocess_us = decision.preprocess_seconds * 1e6;
  const std::string cycle_tag = "cycle=" + std::to_string(info.cycle);
  const auto stage_span = [&](const char* name, double wall_start,
                              double wall_end) {
    api::TraceSpan span;
    span.name = name;
    span.detail = cycle_tag;
    span.virtual_start = now;
    span.virtual_end = now;
    span.wall_start_us = wall_start;
    span.wall_end_us = wall_end;
    return span;
  };

  // Now wake the executors: deadline-expired jobs fail DEADLINE_EXCEEDED,
  // assigned tasks proceed to their QPU, filtered jobs fail their run
  // with the typed RESOURCE_EXHAUSTED. Spans are recorded per item BEFORE
  // its settlement — the settlement edge publishes them to the resume step.
  fail_expired(overdue, now);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->trace && cycle_error.ok()) {
      const bool dispatched = decision.assignment[i] >= 0;
      record_queue_wait(batch[i], now,
                        dispatched ? "dispatched qpu=" +
                                         std::to_string(decision.assignment[i])
                                   : "filtered");
      batch[i]->trace->record(stage_span(
          "cycle_preprocess", stages_end_us - select_us - optimize_us - preprocess_us,
          stages_end_us - select_us - optimize_us));
      batch[i]->trace->record(stage_span("cycle_optimize",
                                         stages_end_us - select_us - optimize_us,
                                         stages_end_us - select_us));
      batch[i]->trace->record(
          stage_span("cycle_select", stages_end_us - select_us, stages_end_us));
    } else if (batch[i]->trace) {
      record_queue_wait(batch[i], now, "failed: " + cycle_error.message());
    }
    if (!cycle_error.ok()) {
      batch[i]->fail(cycle_error, now);
    } else if (decision.assignment[i] < 0) {
      batch[i]->fail(api::ResourceExhausted("scheduling cycle: task '" +
                                            batch[i]->task_name +
                                            "' fits no online QPU in the fleet"),
                     now);
    } else {
      if (Logger::enabled(LogLevel::kDebug)) {
        scheduler_log().debug("task dispatched", {{"run", batch[i]->run},
                                                  {"task", batch[i]->task_name},
                                                  {"qpu", decision.assignment[i]}});
      }
      batch[i]->complete(decision.assignment[i], now);
    }
  }
}

}  // namespace qon::core
