#pragma once
// The Qonductor orchestrator: control plane (API server + resource
// estimator + hybrid scheduler + job manager), data plane (workflow manager
// + registry) and worker nodes (QPU fleet + classical node pool) assembled
// into the user-facing API of Table 2:
//
//   createWorkflow  — package hybrid code into a workflow image  (User->CP)
//   deploy          — register the image for execution           (User->CP)
//   invoke          — run a deployed image                       (User->CP)
//   workflowStatus / workflowResults — query execution           (User->CP)
//   listImages      — registry contents                          (CP->DP)
//   estimateResources — resource plans for a circuit             (CP->CP)
//   generateSchedule  — hybrid schedule for a job batch          (CP->CP)

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/system_monitor.hpp"
#include "estimator/plans.hpp"
#include "qpu/fleet.hpp"
#include "sched/hybrid_scheduler.hpp"
#include "simulator/noise.hpp"
#include "workflow/registry.hpp"

namespace qon::core {

using RunId = std::uint64_t;

enum class WorkflowStatus { kPending, kRunning, kCompleted, kFailed };

const char* workflow_status_name(WorkflowStatus status);

/// Per-task execution record in a finished workflow run.
struct TaskResult {
  std::string name;
  workflow::TaskKind kind = workflow::TaskKind::kClassical;
  std::string resource;  ///< QPU or classical node name
  double start = 0.0;
  double end = 0.0;
  double fidelity = 0.0;       ///< quantum tasks only
  double cost_dollars = 0.0;
  sim::Counts counts;          ///< populated for small quantum tasks
};

struct WorkflowResult {
  RunId run = 0;
  WorkflowStatus status = WorkflowStatus::kPending;
  std::vector<TaskResult> tasks;
  double makespan_seconds = 0.0;
  double total_cost_dollars = 0.0;
  double min_fidelity = 1.0;  ///< the binding fidelity across quantum tasks
};

struct QonductorConfig {
  std::size_t num_qpus = 4;
  std::uint64_t seed = 2025;
  double fidelity_weight = 0.5;       ///< MCDM preference
  estimator::PlanConfig plan_config;
  bool replicated_monitor = false;    ///< Raft-backed system monitor
  std::size_t classical_standard_nodes = 8;
  std::size_t classical_highend_nodes = 2;
  std::size_t classical_fpga_nodes = 1;
  double hidden_sigma = 0.25;         ///< ground-truth perturbation
  /// Trajectory-simulate quantum tasks whose active width fits (exact
  /// counts + Hellinger fidelity); larger tasks use the analytic model.
  int trajectory_width_limit = 12;
};

/// The orchestrator facade. Execution is simulated synchronously: invoke()
/// walks the workflow DAG, schedules each task on the fleet / node pool,
/// and advances a per-run virtual clock.
class Qonductor {
 public:
  explicit Qonductor(QonductorConfig config = {});

  // -- Table 2: user-facing API ------------------------------------------------
  workflow::ImageId createWorkflow(const std::string& name,
                                   std::vector<workflow::HybridTask> tasks,
                                   const std::string& yaml_config = "");
  /// Marks an image deployable after validating its configuration; returns
  /// the same id for invocation.
  workflow::ImageId deploy(workflow::ImageId image);
  RunId invoke(workflow::ImageId image);
  WorkflowStatus workflowStatus(RunId run) const;
  const WorkflowResult& workflowResults(RunId run) const;

  // -- Table 2: control/data-plane operations ----------------------------------
  std::vector<workflow::ImageId> listImages() const;
  estimator::PlanSet estimateResources(const circuit::Circuit& circ) const;
  sched::ScheduleDecision generateSchedule(const sched::SchedulingInput& input) const;

  // -- introspection -------------------------------------------------------------
  const qpu::Fleet& fleet() const { return fleet_; }
  SystemMonitor& monitor() { return monitor_; }
  const std::vector<sched::ClassicalNode>& nodes() const { return nodes_; }

 private:
  TaskResult run_quantum_task(const workflow::HybridTask& task, double ready_at);
  TaskResult run_classical_task(const workflow::HybridTask& task, double ready_at);
  void publish_fleet_state();

  QonductorConfig config_;
  Rng rng_;
  sim::HiddenNoise hidden_;
  qpu::Fleet fleet_;
  std::vector<qpu::Backend> templates_;
  std::vector<sched::ClassicalNode> nodes_;
  workflow::WorkflowRegistry registry_;
  std::map<workflow::ImageId, bool> deployed_;
  SystemMonitor monitor_;
  std::map<RunId, WorkflowResult> runs_;
  RunId next_run_ = 1;
  std::vector<double> qpu_available_at_;
};

}  // namespace qon::core
