#pragma once
// The Qonductor orchestrator: control plane (API server + resource
// estimator + hybrid scheduler + job manager), data plane (workflow manager
// + registry) and worker nodes (QPU fleet + classical node pool) assembled
// into the user-facing API of Table 2:
//
//   createWorkflow  — package hybrid code into a workflow image  (User->CP)
//   deploy          — register the image for execution           (User->CP)
//   invoke          — run a deployed image                       (User->CP)
//   workflowStatus / workflowResults — query execution           (User->CP)
//   listRuns / getRun — query the run table                      (User->CP)
//   listImages      — registry contents                          (CP->DP)
//   estimateResources — resource plans for a circuit             (CP->CP)
//   generateSchedule  — hybrid schedule for a job batch          (CP->CP)
//
// Invocation is asynchronous: invoke() validates the request, enqueues the
// run on the executor pool and returns an api::RunHandle immediately; the
// workflow DAG executes off-thread against the fleet's virtual clock. All
// error paths on the request/response surface return api::Status — no
// exception crosses the API boundary.
//
// Quantum dispatch is batch-scheduled (§7): by default each quantum task
// parks in the scheduler service's pending queue, and a dedicated scheduler
// thread fires scheduling cycles (queue threshold OR timer on the fleet
// virtual clock) that assign whole batches via the hybrid scheduler.
// getSchedulerStats exposes the cycle history; SchedulingMode::kImmediate
// restores the old greedy per-task path. Tasks no online QPU can host fail
// their run with the typed RESOURCE_EXHAUSTED.
//
// Every run carries api::JobPreferences (per-job MCDM fidelity weight, an
// optional fleet-clock deadline, a priority class): batches form in
// priority order, MCDM picks each job's Pareto point per its own weight,
// and a task still parked when a cycle fires past its deadline fails
// DEADLINE_EXCEEDED without consuming a QPU. reserveQpu/releaseQpu expose
// the §7 reservation flag as a typed surface over the system monitor.
//
// Run records live in a bounded RunTable: terminal runs are garbage-
// collected under QonductorConfig::retention (LRU + TTL), so a long-lived
// orchestrator serving sustained traffic holds a bounded amount of run
// state. In-flight runs are never evicted, and an api::RunHandle keeps
// answering after its record ages out of the table.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/result.hpp"
#include "api/run_handle.hpp"
#include "api/types.hpp"
#include "common/thread_pool.hpp"
#include "core/run_table.hpp"
#include "core/scheduler_service.hpp"
#include "core/system_monitor.hpp"
#include "estimator/plans.hpp"
#include "qpu/fleet.hpp"
#include "sched/hybrid_scheduler.hpp"
#include "simulator/noise.hpp"
#include "transpiler/transpiler.hpp"
#include "workflow/registry.hpp"

namespace qon::core {

using RunId = api::RunId;

// The run lifecycle and execution report are part of the public API
// surface (api/types.hpp); core aliases them for backward compatibility.
using WorkflowStatus = api::RunStatus;
using TaskResult = api::TaskResult;
using WorkflowResult = api::WorkflowResult;
using SchedulingMode = api::SchedulingMode;

const char* workflow_status_name(WorkflowStatus status);

struct QonductorConfig {
  std::size_t num_qpus = 4;
  std::uint64_t seed = 2025;
  /// Deployment-default MCDM preference; a run's
  /// api::JobPreferences::fidelity_weight overrides it per job.
  double fidelity_weight = 0.5;
  estimator::PlanConfig plan_config;
  bool replicated_monitor = false;    ///< Raft-backed system monitor
  std::size_t classical_standard_nodes = 8;
  std::size_t classical_highend_nodes = 2;
  std::size_t classical_fpga_nodes = 1;
  double hidden_sigma = 0.25;         ///< ground-truth perturbation
  /// Trajectory-simulate quantum tasks whose active width fits (exact
  /// counts + Hellinger fidelity); larger tasks use the analytic model.
  int trajectory_width_limit = 12;
  /// Executor pool width: how many workflow runs make progress in parallel.
  /// In kBatch mode a run's executor thread parks while its quantum task
  /// waits for a scheduling cycle, so this also bounds how many jobs can
  /// sit in the pending queue at once.
  std::size_t executor_threads = 2;
  /// The batch-scheduling job manager (mode, trigger thresholds, queue
  /// bound — see core::SchedulerServiceConfig). Invalid knobs surface as
  /// INVALID_ARGUMENT from invoke(), never as an exception.
  SchedulerServiceConfig scheduler_service;
  /// Garbage collection of terminal run records (see core::RunTable).
  RunRetentionPolicy retention;
  /// Observer called by the executor right before each task runs (tracing,
  /// test instrumentation). Must be thread-safe; called outside all locks.
  std::function<void(RunId, const std::string&)> on_task_start;
};

/// The orchestrator facade. invoke() is asynchronous: the workflow DAG is
/// executed on the executor pool, scheduling each task on the fleet / node
/// pool and advancing the shared virtual clock under the engine lock.
/// Concurrent clients are safe: registry, run table, monitor and fleet
/// clock are each synchronized.
class Qonductor {
 public:
  explicit Qonductor(QonductorConfig config = {});
  ~Qonductor();

  // -- Table 2: user-facing API (v1, typed statuses, async invoke) -------------
  /// Taken by value: pass an rvalue to hand the task circuits over without
  /// a deep copy.
  api::Result<api::CreateWorkflowResponse> createWorkflow(api::CreateWorkflowRequest request);
  api::Result<api::DeployResponse> deploy(const api::DeployRequest& request);
  /// Returns as soon as the run is queued; execution proceeds off-thread.
  /// kUnavailable once shutdown() has begun.
  api::Result<api::RunHandle> invoke(const api::InvokeRequest& request);
  /// Atomic batch: validates every request first, then queues all runs;
  /// on any validation error nothing is started.
  api::Result<std::vector<api::RunHandle>> invokeAll(const std::vector<api::InvokeRequest>& requests);
  api::Result<api::WorkflowStatusResponse> workflowStatus(const api::WorkflowStatusRequest& request) const;
  api::Result<api::WorkflowResultsResponse> workflowResults(const api::WorkflowResultsRequest& request) const;
  /// Lifecycle record of one run: state, virtual-clock timestamps, error.
  /// kNotFound for unknown ids — including runs evicted under `retention`.
  api::Result<api::GetRunResponse> getRun(const api::GetRunRequest& request) const;
  /// Pages over the run table in run-id order with optional state/image
  /// filters; see api::ListRunsRequest.
  api::Result<api::ListRunsResponse> listRuns(const api::ListRunsRequest& request) const;
  /// The scheduler service's effective config and cycle/queue statistics
  /// (cycle count, batch sizes, queue depth, Fig. 9c stage timings). In
  /// kImmediate mode the stats are all-zero.
  api::Result<api::GetSchedulerStatsResponse> getSchedulerStats(
      const api::GetSchedulerStatsRequest& request) const;
  /// Takes a QPU out of scheduling rotation (§7 reservations) via the
  /// monitor's reservation flag — separate from the `online` health flag,
  /// so reservations and device-manager faults compose. Scheduling
  /// snapshots honor both, so jobs already parked in the pending queue
  /// avoid the QPU from the very next cycle. kNotFound for unknown names;
  /// kAlreadyExists when already reserved.
  api::Result<api::ReserveQpuResponse> reserveQpu(const api::ReserveQpuRequest& request);
  /// Returns a reserved QPU to rotation (an unhealthy QPU stays out).
  /// kFailedPrecondition when the QPU was not reserved.
  api::Result<api::ReleaseQpuResponse> releaseQpu(const api::ReleaseQpuRequest& request);
  /// Handle for an already-started run (e.g. a run id received over the
  /// wire); kNotFound for unknown ids.
  api::Result<api::RunHandle> runHandle(RunId run) const;

  /// Stops accepting new runs (subsequent invoke() returns kUnavailable),
  /// finishes every run already queued — including one final scheduling
  /// cycle that drains the pending queue — and joins the executor pool and
  /// the scheduler thread. Idempotent; queries keep working after shutdown.
  void shutdown();

  // -- Table 2: control/data-plane operations ----------------------------------
  std::vector<workflow::ImageId> listImages() const;
  estimator::PlanSet estimateResources(const circuit::Circuit& circ) const;
  sched::ScheduleDecision generateSchedule(const sched::SchedulingInput& input) const;

  // -- introspection -------------------------------------------------------------
  const qpu::Fleet& fleet() const { return fleet_; }
  SystemMonitor& monitor() { return monitor_; }
  const std::vector<sched::ClassicalNode>& nodes() const { return nodes_; }
  /// The run table backing getRun/listRuns (eviction counters, sweep()).
  /// Non-const like monitor(): mutating it is an owner-level operation.
  RunTable& runTable() { return run_table_; }
  /// Current frontier of the fleet's virtual clock, in seconds: the latest
  /// task-completion time any resource has reached.
  double fleetNow() const { return fleet_clock_.load(std::memory_order_acquire); }
  /// Transpile/estimate cache effectiveness (see prepare_quantum_task):
  /// hits are runs that re-used a burst sibling's per-backend prep.
  std::uint64_t prepCacheHits() const {
    return prep_cache_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t prepCacheMisses() const {
    return prep_cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  /// Per-backend transpilation + resource estimates for one quantum task —
  /// everything a scheduling cycle needs to know about the job, computed
  /// outside the engine lock (the inputs are immutable).
  struct QuantumTaskPrep {
    std::vector<transpiler::TranspileResult> transpiled;
    std::vector<double> est_fidelity;
    std::vector<double> est_exec_seconds;
  };

  api::Status validate_invoke(const api::InvokeRequest& request,
                              const workflow::WorkflowImage** image_out) const;
  /// The request's preferences with fidelity_weight resolved against the
  /// deployment default — what the run record stores and RunInfo echoes.
  api::JobPreferences effective_preferences(const api::JobPreferences& requested) const;
  api::Result<api::RunHandle> start_run(const workflow::WorkflowImage* image,
                                        api::JobPreferences preferences);
  void execute_run(const std::shared_ptr<api::RunState>& state,
                   const workflow::WorkflowImage* image);
  api::Result<TaskResult> run_quantum_task(const std::shared_ptr<api::RunState>& state,
                                           const workflow::HybridTask& task,
                                           double ready_at);
  api::Result<TaskResult> run_classical_task(const workflow::HybridTask& task,
                                             double ready_at);
  std::shared_ptr<const QuantumTaskPrep> prepare_quantum_task(
      const workflow::HybridTask& task) const;
  /// Hash of every backend's calibration cycle — the freshness half of the
  /// prep-cache key (a recalibration invalidates all cached preps).
  std::uint64_t calibration_fingerprint() const;
  /// Executes the prepared task on backend `q`; requires engine_mutex_.
  /// `not_before` floors the start time at the dispatching cycle's fire
  /// time (0 in immediate mode).
  TaskResult execute_quantum_locked(const workflow::HybridTask& task,
                                    const QuantumTaskPrep& prep, std::size_t q,
                                    double ready_at, double not_before);
  /// QPU states for a scheduling input (queue waits relative to
  /// `reference`, online flags from the monitor); requires engine_mutex_.
  std::vector<sched::QpuState> snapshot_qpu_states_locked(double reference) const;
  void publish_fleet_state();
  void advance_fleet_clock(double up_to);

  QonductorConfig config_;
  Rng rng_;
  sim::HiddenNoise hidden_;
  qpu::Fleet fleet_;
  std::vector<qpu::Backend> templates_;
  std::vector<sched::ClassicalNode> nodes_;
  workflow::WorkflowRegistry registry_;
  std::map<workflow::ImageId, bool> deployed_;
  SystemMonitor monitor_;
  /// Owns the run records; mutable because lookups refresh LRU recency.
  /// Declared before executor_ so in-flight runs can use it during drain.
  mutable RunTable run_table_;
  std::vector<double> qpu_available_at_;
  /// Monotone frontier of the virtual clock, advanced by the executor under
  /// engine_mutex_ and read lock-free when stamping run lifecycle times.
  std::atomic<double> fleet_clock_{0.0};

  /// Guards registry_ + deployed_. The registry is append-only, so image
  /// pointers obtained under this lock stay valid for the orchestrator's
  /// lifetime.
  mutable std::mutex registry_mutex_;
  /// Serializes data-plane task execution: the fleet virtual clock
  /// (qpu_available_at_), the shared RNG and the hidden-noise model.
  std::mutex engine_mutex_;

  /// Verdict of construction-time config validation; a non-OK value is
  /// returned by invoke()/invokeAll() so bad scheduler knobs surface as a
  /// typed status instead of an exception crossing the API boundary.
  api::Status init_status_;
  /// The batch-scheduling job manager (null in kImmediate mode or when the
  /// config failed validation). Declared before executor_: runs draining
  /// through the pool during destruction still park tasks here, so the
  /// service must outlive the pool. Shared so a parked run's cancel hook
  /// can hold a weak reference that outlives the orchestrator safely.
  std::shared_ptr<SchedulerService> scheduler_service_;

  /// Cache of per-backend transpilation + estimates keyed by task identity
  /// (registry task addresses are stable — the registry is append-only)
  /// and invalidated wholesale when the fleet calibration fingerprint
  /// moves. A burst of runs of one image transpiles its circuits once.
  /// Bounded: at most kPrepCacheCapacity tasks, oldest-inserted evicted
  /// first — the registry is unbounded, so the cache must not mirror it.
  static constexpr std::size_t kPrepCacheCapacity = 512;
  mutable std::mutex prep_cache_mutex_;
  mutable std::map<const workflow::HybridTask*, std::shared_ptr<const QuantumTaskPrep>>
      prep_cache_;
  mutable std::deque<const workflow::HybridTask*> prep_cache_order_;  ///< FIFO eviction
  mutable std::uint64_t prep_cache_fingerprint_ = 0;  ///< guarded by prep_cache_mutex_
  mutable std::atomic<std::uint64_t> prep_cache_hits_{0};
  mutable std::atomic<std::uint64_t> prep_cache_misses_{0};

  /// Declared last so it is destroyed first: the destructor drains queued
  /// runs while every other member is still alive.
  std::unique_ptr<ThreadPool> executor_;
};

}  // namespace qon::core
